// The ndvpack storage layer's contract: a packed table is the same table.
// CSV -> pack -> mmap columns must equal the heap columns value-for-value
// and hash-for-hash (including NaN / -0.0 canonicalization and strings
// with embedded quotes/newlines), AnalyzeTable over mapped columns must be
// thread-count invariant and bit-identical to the heap path, and the
// deserializer must reject every corruption with a Status, never a crash.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/stats_catalog.h"
#include "storage/mapped_column.h"
#include "storage/ndvpack.h"
#include "storage/table_loader.h"
#include "table/csv.h"
#include "table/table.h"

namespace ndv {
namespace {

// Copies serialized bytes into an 8-byte-aligned buffer (ParsePack's
// alignment contract) and keeps them alive for the returned views.
class AlignedImage {
 public:
  explicit AlignedImage(const std::string& bytes)
      : words_((bytes.size() + 7) / 8) {
    if (!bytes.empty()) {
      std::memcpy(words_.data(), bytes.data(), bytes.size());
    }
    size_ = bytes.size();
  }

  std::span<const uint8_t> bytes() const {
    return {reinterpret_cast<const uint8_t*>(words_.data()), size_};
  }

 private:
  std::vector<uint64_t> words_;
  size_t size_ = 0;
};

Table MakeMixedTable() {
  Table table;
  table.AddColumn("ints", std::make_unique<Int64Column>(std::vector<int64_t>{
                              0, -1, 42, std::numeric_limits<int64_t>::min(),
                              std::numeric_limits<int64_t>::max(), 42, 7}));
  table.AddColumn(
      "doubles",
      std::make_unique<DoubleColumn>(std::vector<double>{
          0.0, -0.0, 1.5, std::numeric_limits<double>::quiet_NaN(),
          -std::numeric_limits<double>::quiet_NaN(),
          std::numeric_limits<double>::infinity(), -2.25}));
  table.AddColumn(
      "strings",
      std::make_unique<StringColumn>(std::vector<std::string>{
          "", "plain", "comma,inside", "quote\"inside", "line\nbreak",
          "plain", "unicode \xc3\xa9"}));
  return table;
}

void ExpectTablesEqual(const Table& expected, const Table& actual) {
  ASSERT_EQ(expected.NumRows(), actual.NumRows());
  ASSERT_EQ(expected.NumColumns(), actual.NumColumns());
  for (int64_t c = 0; c < expected.NumColumns(); ++c) {
    SCOPED_TRACE("column " + expected.column_name(c));
    EXPECT_EQ(expected.column_name(c), actual.column_name(c));
    const Column& a = expected.column(c);
    const Column& b = actual.column(c);
    ASSERT_EQ(a.type(), b.type());
    ASSERT_EQ(a.size(), b.size());
    // Hash-for-hash: both per-row and through the batch kernels.
    const std::vector<uint64_t> hashes_a = a.HashAll();
    const std::vector<uint64_t> hashes_b = b.HashAll();
    EXPECT_EQ(hashes_a, hashes_b);
    for (int64_t row = 0; row < a.size(); ++row) {
      ASSERT_EQ(a.HashAt(row), b.HashAt(row)) << "row " << row;
      ASSERT_EQ(a.ValueToString(row), b.ValueToString(row)) << "row " << row;
    }
  }
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(NdvPackTest, MixedTableRoundTripsThroughBuffer) {
  const Table table = MakeMixedTable();
  const std::string bytes = SerializePack(table);
  const AlignedImage image(bytes);

  const auto view = ParsePack(image.bytes());
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->row_count, 7u);
  ASSERT_EQ(view->columns.size(), 3u);

  const Table mapped = TableFromPack(*view, nullptr);
  ExpectTablesEqual(table, mapped);
}

TEST(NdvPackTest, SerializeIsAFixedPoint) {
  const Table table = MakeMixedTable();
  const std::string first = SerializePack(table);
  const AlignedImage image(first);
  const auto view = ParsePack(image.bytes());
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  // Repacking the mapped columns reproduces the image byte-for-byte.
  const std::string second = SerializePack(TableFromPack(*view, nullptr));
  EXPECT_EQ(first, second);
}

TEST(NdvPackTest, CsvToPackToMmapEqualsHeapColumns) {
  // Quoted fields, embedded commas, quotes, and newlines all survive the
  // CSV -> heap -> pack -> mmap pipeline.
  const std::string csv =
      "id,score,label\n"
      "1,0.5,alpha\n"
      "2,-0.0,\"comma, embedded\"\n"
      "3,2.25,\"line\nbreak\"\n"
      "4,0.5,\"double\"\"quote\"\n"
      "5,0.0,alpha\n";
  const auto heap = ReadCsvInferredOrStatus(csv);
  ASSERT_TRUE(heap.ok()) << heap.status().ToString();
  ASSERT_EQ(heap->column(0).type(), ColumnType::kInt64);
  ASSERT_EQ(heap->column(1).type(), ColumnType::kDouble);
  ASSERT_EQ(heap->column(2).type(), ColumnType::kString);

  const std::string path = TempPath("csv_roundtrip.ndvpack");
  ASSERT_TRUE(WritePackFile(*heap, path).ok());
  const auto mapped = OpenPackFile(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ExpectTablesEqual(*heap, *mapped);
}

TEST(NdvPackTest, EmptyTableRoundTrips) {
  const Table empty;
  const std::string bytes = SerializePack(empty);
  const AlignedImage image(bytes);
  const auto view = ParsePack(image.bytes());
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->row_count, 0u);
  EXPECT_TRUE(view->columns.empty());
  EXPECT_EQ(TableFromPack(*view, nullptr).NumRows(), 0);
}

TEST(NdvPackTest, ZeroRowColumnsRoundTrip) {
  Table table;
  table.AddColumn("i", std::make_unique<Int64Column>(std::vector<int64_t>{}));
  table.AddColumn("s", std::make_unique<StringColumn>(
                           std::vector<std::string>{}));
  const std::string bytes = SerializePack(table);
  const AlignedImage image(bytes);
  const auto view = ParsePack(image.bytes());
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  const Table mapped = TableFromPack(*view, nullptr);
  EXPECT_EQ(mapped.NumRows(), 0);
  EXPECT_EQ(mapped.NumColumns(), 2);
  ExpectTablesEqual(table, mapped);
}

TEST(NdvPackTest, AnalyzeTableBitIdenticalHeapVsMappedAtAnyThreadCount) {
  // A larger synthetic table so sampling actually exercises the columns.
  std::vector<int64_t> ints;
  std::vector<double> doubles;
  std::vector<std::string> strings;
  Rng rng(7);
  for (int64_t i = 0; i < 20000; ++i) {
    ints.push_back(static_cast<int64_t>(rng.NextBounded(512)));
    doubles.push_back(
        static_cast<double>(rng.NextBounded(97)) / 8.0);
    strings.push_back("v" + std::to_string(rng.NextBounded(300)));
  }
  Table heap;
  heap.AddColumn("i", std::make_unique<Int64Column>(std::move(ints)));
  heap.AddColumn("d", std::make_unique<DoubleColumn>(std::move(doubles)));
  heap.AddColumn("s", std::make_unique<StringColumn>(strings));

  const std::string path = TempPath("analyze_invariance.ndvpack");
  ASSERT_TRUE(WritePackFile(heap, path).ok());
  const auto mapped = OpenPackFile(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  AnalyzeOptions options;
  options.sample_fraction = 0.05;
  options.seed = 99;
  for (const bool exact : {false, true}) {
    options.exact = exact;
    options.threads = 1;
    const StatsCatalog heap_catalog = AnalyzeTable(heap, options);
    const std::string heap_serialized = heap_catalog.Serialize();
    for (const int threads : {1, 2, 3, 8}) {
      options.threads = threads;
      const StatsCatalog mapped_catalog = AnalyzeTable(*mapped, options);
      EXPECT_EQ(heap_serialized, mapped_catalog.Serialize())
          << "exact=" << exact << " threads=" << threads;
    }
  }
}

TEST(NdvPackTest, ExactDistinctMatchesAcrossStorage) {
  const Table table = MakeMixedTable();
  const std::string bytes = SerializePack(table);
  const AlignedImage image(bytes);
  const auto view = ParsePack(image.bytes());
  ASSERT_TRUE(view.ok());
  const Table mapped = TableFromPack(*view, nullptr);
  for (int64_t c = 0; c < table.NumColumns(); ++c) {
    EXPECT_EQ(ExactDistinctHashSet(table.column(c)),
              ExactDistinctHashSet(mapped.column(c)));
    EXPECT_EQ(ExactDistinctSorted(table.column(c)),
              ExactDistinctSorted(mapped.column(c)));
  }
}

TEST(NdvPackTest, LoadTableAutoDetectsBothFormats) {
  const Table table = MakeMixedTable();
  const std::string pack_path = TempPath("auto_detect.ndvpack");
  ASSERT_TRUE(WritePackFile(table, pack_path).ok());
  const auto from_pack = LoadTableAuto(pack_path);
  ASSERT_TRUE(from_pack.ok()) << from_pack.status().ToString();
  ExpectTablesEqual(table, *from_pack);

  // CSV with only the string column (CSV re-infers types; strings are the
  // format-stable case).
  const std::string csv_path = TempPath("auto_detect.csv");
  {
    std::string csv = "label\n\"a,b\"\nplain\n\"q\"\"q\"\n";
    FILE* f = fopen(csv_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fwrite(csv.data(), 1, csv.size(), f);
    fclose(f);
  }
  const auto from_csv = LoadTableAuto(csv_path);
  ASSERT_TRUE(from_csv.ok()) << from_csv.status().ToString();
  EXPECT_EQ(from_csv->NumRows(), 3);
  EXPECT_EQ(from_csv->column(0).ValueToString(0), "a,b");

  const auto missing = LoadTableAuto(TempPath("does_not_exist.anything"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

// ------------------------------------------------------------------------
// Rejection: every corruption yields a Status, never a crash or over-read.

std::string ValidImage() { return SerializePack(MakeMixedTable()); }

StatusCode ParseCodeOf(const std::string& bytes) {
  const AlignedImage image(bytes);
  const auto view = ParsePack(image.bytes());
  return view.ok() ? StatusCode::kOk : view.status().code();
}

TEST(NdvPackRejectTest, BadMagic) {
  std::string bytes = ValidImage();
  bytes[0] = 'X';
  EXPECT_EQ(ParseCodeOf(bytes), StatusCode::kInvalidArgument);
}

TEST(NdvPackRejectTest, TruncationAtEveryBoundary) {
  const std::string bytes = ValidImage();
  for (const size_t keep :
       {size_t{0}, size_t{7}, size_t{39}, size_t{47}, bytes.size() / 2,
        bytes.size() - 9, bytes.size() - 1}) {
    const StatusCode code = ParseCodeOf(bytes.substr(0, keep));
    EXPECT_NE(code, StatusCode::kOk) << "kept " << keep << " bytes";
  }
}

TEST(NdvPackRejectTest, EveryByteFlipIsRejectedOrHarmless) {
  // The trailing checksum makes any single-byte corruption detectable.
  const std::string bytes = ValidImage();
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x41);
    EXPECT_NE(ParseCodeOf(mutated), StatusCode::kOk) << "flip at byte " << i;
  }
}

TEST(NdvPackRejectTest, UnsupportedVersion) {
  std::string bytes = ValidImage();
  bytes[8] = 2;  // version field
  // Re-stamp the checksum so the version check is what fires.
  const uint64_t sum = PackChecksum(
      {reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size() - 8});
  std::memcpy(bytes.data() + bytes.size() - 8, &sum, 8);
  EXPECT_EQ(ParseCodeOf(bytes), StatusCode::kInvalidArgument);
}

TEST(NdvPackRejectTest, NotAPackFileThroughOpen) {
  const std::string path = TempPath("not_a_pack.ndvpack");
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fputs("NDVPACK1 but then garbage", f);
  fclose(f);
  const auto opened = OpenPackFile(path);
  ASSERT_FALSE(opened.ok());
  // The error names the path for the operator.
  EXPECT_NE(opened.status().message().find(path), std::string::npos);
}

}  // namespace
}  // namespace ndv
