#include "estimators/hybrid.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/gee.h"
#include "core/hybgee.h"
#include "estimators/jackknife.h"
#include "estimators/shlosser.h"
#include "profile/frequency_profile.h"

namespace ndv {
namespace {

SampleSummary LowSkewSummary() {
  // 50 classes each observed 4 times: perfectly uniform sample.
  return MakeSummary(100000, std::vector<int64_t>{0, 0, 0, 50});
}

SampleSummary HighSkewSummary() {
  // One class with 1000 observations plus 50 singletons.
  std::vector<int64_t> f(1000, 0);
  f[0] = 50;
  f[999] = 1;
  return MakeSummary(100000, f);
}

TEST(HybSkewTest, LowSkewUsesSmoothedJackknife) {
  const SampleSummary summary = LowSkewSummary();
  HybSkew hybrid;
  EXPECT_FALSE(hybrid.WouldUseHighSkewBranch(summary));
  EXPECT_DOUBLE_EQ(hybrid.Estimate(summary),
                   SmoothedJackknife().Estimate(summary));
}

TEST(HybSkewTest, HighSkewUsesShlosser) {
  const SampleSummary summary = HighSkewSummary();
  HybSkew hybrid;
  EXPECT_TRUE(hybrid.WouldUseHighSkewBranch(summary));
  EXPECT_DOUBLE_EQ(hybrid.Estimate(summary), Shlosser().Estimate(summary));
}

TEST(HybGeeTest, LowSkewMatchesHybSkew) {
  const SampleSummary summary = LowSkewSummary();
  EXPECT_DOUBLE_EQ(HybGee().Estimate(summary), HybSkew().Estimate(summary));
  EXPECT_FALSE(HybGee().WouldUseGeeBranch(summary));
}

TEST(HybGeeTest, HighSkewUsesGee) {
  const SampleSummary summary = HighSkewSummary();
  HybGee hybrid;
  EXPECT_TRUE(hybrid.WouldUseGeeBranch(summary));
  EXPECT_DOUBLE_EQ(hybrid.Estimate(summary), Gee().Estimate(summary));
}

TEST(HybVarTest, ZeroCvUsesUj1) {
  const SampleSummary summary = LowSkewSummary();
  HybVar hybrid;
  EXPECT_EQ(hybrid.SelectedBranch(summary), 0);
  EXPECT_DOUBLE_EQ(hybrid.Estimate(summary),
                   UnsmoothedJackknife1().Estimate(summary));
}

TEST(HybVarTest, ModerateCvUsesStabilizedJackknife) {
  // Mild skew: some repeats but no monster class.
  const SampleSummary summary =
      MakeSummary(100000, std::vector<int64_t>{100, 30, 10, 5, 2});
  HybVar hybrid;
  EXPECT_EQ(hybrid.SelectedBranch(summary), 1);
  EXPECT_DOUBLE_EQ(hybrid.Estimate(summary),
                   StabilizedJackknife(50).Estimate(summary));
}

TEST(HybVarTest, ExtremeCvUsesModifiedShlosser) {
  const SampleSummary summary = HighSkewSummary();
  HybVar hybrid;
  EXPECT_EQ(hybrid.SelectedBranch(summary), 2);
  EXPECT_DOUBLE_EQ(hybrid.Estimate(summary),
                   ModifiedShlosser().Estimate(summary));
}

TEST(HybVarTest, CutoffShiftsBranchBoundary) {
  const SampleSummary summary =
      MakeSummary(100000, std::vector<int64_t>{100, 30, 10, 5, 2});
  // With a tiny cutoff the same sample routes to modified Shlosser.
  EXPECT_EQ(HybVar(1e-6).SelectedBranch(summary), 2);
}

TEST(HybridInstabilityTest, BranchesDisagreeNearBoundary) {
  // The paper's criticism: the two branches of a hybrid return very
  // different values, so flipping the test flips the estimate. Verify the
  // ingredients differ materially on a moderately skewed sample.
  std::vector<int64_t> f(40, 0);
  f[0] = 30;
  f[39] = 2;
  const SampleSummary summary = MakeSummary(100000, f);
  const double sj = SmoothedJackknife().Estimate(summary);
  const double sh = Shlosser().Estimate(summary);
  EXPECT_GT(std::max(sj, sh) / std::min(sj, sh), 1.1);
}

}  // namespace
}  // namespace ndv
