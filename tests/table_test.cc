#include "table/table.h"

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

namespace ndv {
namespace {

TEST(Int64ColumnTest, HashEqualityMirrorsValueEquality) {
  Int64Column column({1, 2, 1, 3});
  EXPECT_EQ(column.size(), 4);
  EXPECT_EQ(column.HashAt(0), column.HashAt(2));
  EXPECT_NE(column.HashAt(0), column.HashAt(1));
  EXPECT_EQ(column.type(), ColumnType::kInt64);
  EXPECT_EQ(column.ValueToString(3), "3");
}

TEST(DoubleColumnTest, NegativeZeroCanonicalized) {
  DoubleColumn column({0.0, -0.0, 1.5});
  EXPECT_EQ(column.HashAt(0), column.HashAt(1));
  EXPECT_NE(column.HashAt(0), column.HashAt(2));
}

TEST(DoubleColumnTest, NansCollapseToOneClass) {
  const double nan1 = std::nan("1");
  const double nan2 = std::nan("2");
  DoubleColumn column({nan1, nan2});
  EXPECT_EQ(column.HashAt(0), column.HashAt(1));
}

TEST(StringColumnTest, DictionaryDedupes) {
  StringColumn column(std::vector<std::string>{"a", "b", "a", "c", "b"});
  EXPECT_EQ(column.size(), 5);
  EXPECT_EQ(column.dictionary_size(), 3);
  EXPECT_EQ(column.HashAt(0), column.HashAt(2));
  EXPECT_NE(column.HashAt(0), column.HashAt(1));
  EXPECT_EQ(column.ValueToString(3), "c");
}

TEST(StringColumnTest, PrebuiltDictionary) {
  StringColumn column({"x", "y"}, {0, 1, 1, 0});
  EXPECT_EQ(column.size(), 4);
  EXPECT_EQ(column.HashAt(0), column.HashAt(3));
  EXPECT_EQ(column.ValueToString(1), "y");
}

TEST(StringColumnTest, RejectsOutOfRangeCodes) {
  EXPECT_DEATH(StringColumn({"only"}, {0, 1}), "code");
}

TEST(HashBytesTest, DistinctStringsDistinctHashes) {
  EXPECT_NE(HashBytes("alpha"), HashBytes("beta"));
  EXPECT_EQ(HashBytes("gamma"), HashBytes("gamma"));
  EXPECT_NE(HashBytes(""), HashBytes(std::string_view("\0", 1)));
}

TEST(TableTest, AddColumnsAndLookup) {
  Table table;
  table.AddColumn("a", std::make_unique<Int64Column>(std::vector<int64_t>{1, 2}));
  table.AddColumn("b", std::make_unique<DoubleColumn>(std::vector<double>{0.5, 1.5}));
  EXPECT_EQ(table.NumRows(), 2);
  EXPECT_EQ(table.NumColumns(), 2);
  EXPECT_EQ(table.FindColumn("b"), 1);
  EXPECT_EQ(table.FindColumn("missing"), -1);
  EXPECT_EQ(table.column_name(0), "a");
  EXPECT_EQ(table.column(0).size(), 2);
}

TEST(TableTest, RejectsRaggedColumns) {
  Table table;
  table.AddColumn("a", std::make_unique<Int64Column>(std::vector<int64_t>{1, 2}));
  EXPECT_DEATH(
      table.AddColumn("b", std::make_unique<Int64Column>(
                               std::vector<int64_t>{1, 2, 3})),
      "rows");
}

TEST(ExactDistinctTest, BothCountersAgree) {
  Int64Column column({5, 5, 7, 9, 9, 9, 11});
  EXPECT_EQ(ExactDistinctHashSet(column), 4);
  EXPECT_EQ(ExactDistinctSorted(column), 4);
}

TEST(ExactDistinctTest, AllSameAndAllDistinct) {
  Int64Column same(std::vector<int64_t>(100, 42));
  EXPECT_EQ(ExactDistinctHashSet(same), 1);
  std::vector<int64_t> distinct(100);
  for (int64_t i = 0; i < 100; ++i) distinct[static_cast<size_t>(i)] = i;
  Int64Column unique_col(distinct);
  EXPECT_EQ(ExactDistinctHashSet(unique_col), 100);
  EXPECT_EQ(ExactDistinctSorted(unique_col), 100);
}

}  // namespace
}  // namespace ndv
