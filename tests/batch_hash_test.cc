// Batch hashing (HashRange / HashSlice / HashAll) must be bit-identical to
// the per-row HashAt path for every column type, and the parallel exact-NDV
// scan must return the same count at every thread count.

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "table/column.h"
#include "table/multi_column.h"
#include "table/table.h"

namespace ndv {
namespace {

// Checks out[i] == HashAt(...) for HashSlice over several sub-ranges,
// HashRange over a shuffled gather list, and HashAll.
void ExpectBatchMatchesPerRow(const Column& column) {
  const int64_t n = column.size();
  ASSERT_GT(n, 0);

  // HashAll == HashAt for every row.
  const std::vector<uint64_t> all = column.HashAll();
  ASSERT_EQ(all.size(), static_cast<size_t>(n));
  for (int64_t row = 0; row < n; ++row) {
    ASSERT_EQ(all[static_cast<size_t>(row)], column.HashAt(row))
        << "HashAll mismatch at row " << row;
  }

  // HashSlice over sub-ranges, including empty and full.
  const int64_t mid = n / 2;
  const std::vector<std::pair<int64_t, int64_t>> ranges = {
      {0, n}, {0, 0}, {n, n}, {0, mid}, {mid, n}, {n / 3, 2 * n / 3}};
  for (const auto& [begin, end] : ranges) {
    std::vector<uint64_t> out(static_cast<size_t>(end - begin), 0);
    column.HashSlice(begin, end, out.data());
    for (int64_t i = 0; i < end - begin; ++i) {
      ASSERT_EQ(out[static_cast<size_t>(i)], column.HashAt(begin + i))
          << "HashSlice [" << begin << ", " << end << ") mismatch at offset "
          << i;
    }
  }

  // HashRange over a gather list with repeats and non-monotone order.
  Rng rng(31);
  std::vector<int64_t> rows;
  rows.reserve(257);
  for (int i = 0; i < 257; ++i) {
    rows.push_back(static_cast<int64_t>(rng.NextBounded(
        static_cast<uint64_t>(n))));
  }
  std::vector<uint64_t> out(rows.size(), 0);
  column.HashRange(rows, out.data());
  for (size_t i = 0; i < rows.size(); ++i) {
    ASSERT_EQ(out[i], column.HashAt(rows[i]))
        << "HashRange mismatch at gather index " << i;
  }
}

TEST(BatchHashTest, Int64ColumnMatchesHashAt) {
  Rng rng(41);
  std::vector<int64_t> values;
  for (int i = 0; i < 10000; ++i) {
    values.push_back(static_cast<int64_t>(rng.NextU64()));
  }
  values.push_back(0);
  values.push_back(-1);
  values.push_back(std::numeric_limits<int64_t>::min());
  values.push_back(std::numeric_limits<int64_t>::max());
  ExpectBatchMatchesPerRow(Int64Column(std::move(values)));
}

TEST(BatchHashTest, DoubleColumnMatchesHashAt) {
  Rng rng(43);
  std::vector<double> values;
  for (int i = 0; i < 10000; ++i) {
    values.push_back(rng.NextDouble() * 1e9 - 5e8);
  }
  // The canonicalized cases: signed zeros and every flavor of NaN must go
  // through the same normalization in both the scalar and batch paths.
  values.push_back(0.0);
  values.push_back(-0.0);
  values.push_back(std::numeric_limits<double>::quiet_NaN());
  values.push_back(-std::numeric_limits<double>::quiet_NaN());
  values.push_back(std::numeric_limits<double>::signaling_NaN());
  values.push_back(std::numeric_limits<double>::infinity());
  values.push_back(-std::numeric_limits<double>::infinity());
  values.push_back(std::numeric_limits<double>::denorm_min());
  const DoubleColumn column(std::move(values));
  ExpectBatchMatchesPerRow(column);

  // The canonicalization itself: -0.0 == +0.0, all NaNs are one class.
  const DoubleColumn zeros({0.0, -0.0});
  EXPECT_EQ(zeros.HashAt(0), zeros.HashAt(1));
  const DoubleColumn nans({std::numeric_limits<double>::quiet_NaN(),
                           -std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::signaling_NaN()});
  EXPECT_EQ(nans.HashAt(0), nans.HashAt(1));
  EXPECT_EQ(nans.HashAt(0), nans.HashAt(2));
}

TEST(BatchHashTest, StringColumnMatchesHashAt) {
  Rng rng(47);
  std::vector<std::string> values;
  for (int i = 0; i < 8000; ++i) {
    values.push_back("value_" + std::to_string(rng.NextBounded(500)));
  }
  values.push_back("");
  values.push_back(std::string(1000, 'x'));
  ExpectBatchMatchesPerRow(StringColumn(values));
}

TEST(BatchHashTest, CombinedColumnMatchesHashAt) {
  Rng rng(53);
  std::vector<int64_t> ints;
  std::vector<double> doubles;
  std::vector<std::string> strings;
  for (int i = 0; i < 5000; ++i) {
    ints.push_back(static_cast<int64_t>(rng.NextBounded(100)));
    doubles.push_back(static_cast<double>(rng.NextBounded(50)));
    strings.push_back("s" + std::to_string(rng.NextBounded(20)));
  }
  const Int64Column a(std::move(ints));
  const DoubleColumn b(std::move(doubles));
  const StringColumn c(strings);
  const CombinedColumn combined({&a, &b, &c});
  ExpectBatchMatchesPerRow(combined);
}

TEST(BatchHashTest, CombinedColumnLargerThanCombineBlock) {
  // Exercise the block-buffered combine path across multiple blocks plus a
  // ragged tail (block size is 1024 internally).
  Rng rng(59);
  std::vector<int64_t> a_vals;
  std::vector<int64_t> b_vals;
  for (int i = 0; i < 3 * 1024 + 7; ++i) {
    a_vals.push_back(static_cast<int64_t>(rng.NextU64()));
    b_vals.push_back(static_cast<int64_t>(rng.NextU64()));
  }
  const Int64Column a(std::move(a_vals));
  const Int64Column b(std::move(b_vals));
  ExpectBatchMatchesPerRow(CombinedColumn({&a, &b}));
}

TEST(ParallelExactNdvTest, ThreadCountDoesNotChangeTheAnswer) {
  // Big enough to cross the parallel-scan threshold (2 * 65536 rows).
  Rng rng(61);
  std::vector<int64_t> values;
  constexpr int64_t kRows = 300000;
  values.reserve(kRows);
  for (int64_t i = 0; i < kRows; ++i) {
    values.push_back(static_cast<int64_t>(rng.NextBounded(90000)));
  }
  const Int64Column column(std::move(values));

  const int64_t serial = ExactDistinctHashSet(column, 1);
  const int64_t sorted = ExactDistinctSorted(column);
  EXPECT_EQ(serial, sorted);
  for (int threads : {2, 3, 4, 8}) {
    EXPECT_EQ(ExactDistinctHashSet(column, threads), serial)
        << "threads=" << threads;
  }
  // threads=0 resolves via NDV_THREADS / hardware concurrency; still equal.
  EXPECT_EQ(ExactDistinctHashSet(column, 0), serial);
}

TEST(ParallelExactNdvTest, SmallColumnsStaySerialAndCorrect) {
  const Int64Column column({1, 2, 3, 2, 1});
  for (int threads : {0, 1, 4}) {
    EXPECT_EQ(ExactDistinctHashSet(column, threads), 3);
  }
  const Int64Column empty(std::vector<int64_t>{});
  EXPECT_EQ(ExactDistinctHashSet(empty, 8), 0);
}

}  // namespace
}  // namespace ndv
