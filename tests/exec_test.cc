#include <vector>

#include <gtest/gtest.h>

#include "core/all_estimators.h"
#include "datagen/zipf.h"
#include "exec/aggregate.h"
#include "exec/planner.h"
#include "table/column_sampling.h"
#include "table/table.h"

namespace ndv {
namespace {

TEST(AggregateTest, HashAndSortAgreeOnCounts) {
  Int64Column column({3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5});
  std::vector<GroupCount> hash_result;
  std::vector<GroupCount> sort_result;
  const AggregateStats hash_stats = HashAggregateCount(column, &hash_result);
  const AggregateStats sort_stats = SortAggregateCount(column, &sort_result);
  EXPECT_EQ(hash_stats.groups, 7);  // {3,1,4,5,9,2,6}
  EXPECT_EQ(sort_stats.groups, 7);
  EXPECT_EQ(hash_stats.rows, 11);
  EXPECT_EQ(sort_stats.rows, 11);
  EXPECT_TRUE(SameGroupCounts(hash_result, sort_result));
}

TEST(AggregateTest, GroupCountsAreRight) {
  Int64Column column({7, 7, 7, 8});
  std::vector<GroupCount> result;
  HashAggregateCount(column, &result);
  ASSERT_EQ(result.size(), 2u);
  int64_t total = 0;
  for (const GroupCount& group : result) total += group.rows;
  EXPECT_EQ(total, 4);
}

TEST(AggregateTest, MatchesExactDistinctOnZipfData) {
  ZipfColumnOptions options;
  options.rows = 50000;
  options.z = 1.0;
  options.dup_factor = 10;
  const auto column = MakeZipfColumn(options);
  const AggregateStats hash_stats = HashAggregateCount(*column);
  const AggregateStats sort_stats = SortAggregateCount(*column);
  EXPECT_EQ(hash_stats.groups, ExactDistinctHashSet(*column));
  EXPECT_EQ(hash_stats.groups, sort_stats.groups);
  // peak_group_table_entries is the true peak table capacity: a power of
  // two, at least as large as the group count, never loaded past 3/4.
  EXPECT_GE(hash_stats.peak_group_table_entries, hash_stats.groups);
  EXPECT_EQ(hash_stats.peak_group_table_entries &
                (hash_stats.peak_group_table_entries - 1),
            0);
  EXPECT_GT(hash_stats.group_table_load_factor, 0.0);
  EXPECT_LE(hash_stats.group_table_load_factor, 0.75);
  EXPECT_EQ(sort_stats.peak_group_table_entries, 0);
  EXPECT_EQ(sort_stats.group_table_load_factor, 0.0);
}

TEST(PlannerTest, StrategySelectionAgainstBudget) {
  EXPECT_EQ(ChooseAggStrategy(500.0, 1000), AggStrategy::kHash);
  EXPECT_EQ(ChooseAggStrategy(1500.0, 1000), AggStrategy::kSort);
  EXPECT_EQ(ChooseAggStrategy(1000.0, 1000), AggStrategy::kHash);
}

TEST(PlannerTest, CostModelShape) {
  // In budget: hash is cheaper than sort for large inputs.
  EXPECT_LT(AggregateCost(AggStrategy::kHash, 1000000, 100, 1000),
            AggregateCost(AggStrategy::kSort, 1000000, 100, 1000));
  // Over budget: the spill penalty makes hash lose.
  EXPECT_GT(AggregateCost(AggStrategy::kHash, 1000000, 50000, 1000),
            AggregateCost(AggStrategy::kSort, 1000000, 50000, 1000));
}

TEST(PlannerTest, OracleMatchesCostModel) {
  EXPECT_EQ(OracleAggStrategy(1000000, 100, 1000), AggStrategy::kHash);
  EXPECT_EQ(OracleAggStrategy(1000000, 50000, 1000), AggStrategy::kSort);
}

TEST(PlannerTest, StrategyNames) {
  EXPECT_EQ(AggStrategyName(AggStrategy::kHash), "hash-agg");
  EXPECT_EQ(AggStrategyName(AggStrategy::kSort), "sort-agg");
}

TEST(EvaluatePlanChoiceTest, GoodEstimateZeroRegret) {
  // D = 305 fits a 10K budget comfortably: any sane estimate picks hash
  // and regret is 1.
  ZipfColumnOptions options;
  options.rows = 100000;
  options.z = 1.0;
  options.dup_factor = 1000;  // D = 305-ish, heavily duplicated
  const auto column = MakeZipfColumn(options);
  const int64_t actual = ExactDistinctHashSet(*column);
  Rng rng(3);
  const SampleSummary summary = SampleColumnFraction(*column, 0.01, rng);
  const auto estimator = MakeEstimatorByName("AE");
  const PlanOutcome outcome =
      EvaluatePlanChoice(*estimator, summary, actual, 10000);
  EXPECT_EQ(outcome.chosen, AggStrategy::kHash);
  EXPECT_EQ(outcome.oracle, AggStrategy::kHash);
  EXPECT_DOUBLE_EQ(outcome.regret, 1.0);
}

TEST(EvaluatePlanChoiceTest, UnderestimateCausesSpillRegret) {
  // Force an underestimate by using the sample count d as the "estimator"
  // on data whose D far exceeds the budget.
  class SampleCountEstimator final : public Estimator {
   public:
    std::string_view name() const override { return "d"; }
    double Estimate(const SampleSummary& summary) const override {
      return static_cast<double>(summary.d());
    }
  };
  ZipfColumnOptions options;
  options.rows = 100000;
  options.z = 0.0;
  options.dup_factor = 2;  // D = 50000: hash would spill a 4K budget
  const auto column = MakeZipfColumn(options);
  const int64_t actual = ExactDistinctHashSet(*column);
  Rng rng(5);
  const SampleSummary summary = SampleColumnFraction(*column, 0.02, rng);
  const SampleCountEstimator underestimator;
  ASSERT_LT(underestimator.Estimate(summary), 4000.0);  // d ~ 2000
  const PlanOutcome outcome =
      EvaluatePlanChoice(underestimator, summary, actual, 4000);
  EXPECT_EQ(outcome.chosen, AggStrategy::kHash);   // fooled
  EXPECT_EQ(outcome.oracle, AggStrategy::kSort);   // truth says spill
  EXPECT_GT(outcome.regret, 1.0);
}

TEST(EvaluatePlanChoiceTest, AccurateEstimatorAvoidsTheTrap) {
  // Same workload: AE sees through the duplication and picks sort.
  ZipfColumnOptions options;
  options.rows = 100000;
  options.z = 0.0;
  options.dup_factor = 2;
  const auto column = MakeZipfColumn(options);
  const int64_t actual = ExactDistinctHashSet(*column);
  Rng rng(5);
  const SampleSummary summary = SampleColumnFraction(*column, 0.02, rng);
  const auto estimator = MakeEstimatorByName("AE");
  const PlanOutcome outcome =
      EvaluatePlanChoice(*estimator, summary, actual, 4000);
  EXPECT_EQ(outcome.chosen, AggStrategy::kSort);
  EXPECT_DOUBLE_EQ(outcome.regret, 1.0);
}

}  // namespace
}  // namespace ndv
