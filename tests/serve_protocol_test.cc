#include "serve/protocol.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"

namespace ndv {
namespace {

ColumnStats MakeStats() {
  ColumnStats stats;
  stats.column_name = "age|weird\nname";
  stats.table_rows = 1000000;
  stats.sample_rows = 10000;
  stats.sample_distinct = 812;
  stats.estimate = 950.5;
  stats.lower = 812.0;
  stats.upper = 81200.0;
  stats.method = "GEE";
  stats.coverage = 0.97;
  stats.degraded = true;
  return stats;
}

TEST(ServeProtocolTest, GetStatsRoundTrips) {
  Message request;
  request.type = MessageType::kGetStats;
  request.request_id = 77;
  request.column = "user_id";
  const auto decoded = DecodeMessage(EncodeMessage(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, MessageType::kGetStats);
  EXPECT_EQ(decoded->request_id, 77u);
  EXPECT_EQ(decoded->column, "user_id");
}

TEST(ServeProtocolTest, AnalyzeRoundTrips) {
  for (const bool force : {false, true}) {
    Message request;
    request.type = MessageType::kAnalyze;
    request.request_id = 5;
    request.force = force;
    const auto decoded = DecodeMessage(EncodeMessage(request));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->type, MessageType::kAnalyze);
    EXPECT_EQ(decoded->force, force);
  }
}

TEST(ServeProtocolTest, StatsReplyRoundTripsEveryField) {
  Message reply;
  reply.type = MessageType::kStatsReply;
  reply.request_id = 1234567890123ull;
  reply.epoch = 42;
  reply.stale = true;
  reply.stats = MakeStats();
  const auto decoded = DecodeMessage(EncodeMessage(reply));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, MessageType::kStatsReply);
  EXPECT_EQ(decoded->request_id, 1234567890123ull);
  EXPECT_EQ(decoded->epoch, 42u);
  EXPECT_TRUE(decoded->stale);
  const ColumnStats& stats = decoded->stats;
  EXPECT_EQ(stats.column_name, "age|weird\nname");
  EXPECT_EQ(stats.table_rows, 1000000);
  EXPECT_EQ(stats.sample_rows, 10000);
  EXPECT_EQ(stats.sample_distinct, 812);
  EXPECT_DOUBLE_EQ(stats.estimate, 950.5);
  EXPECT_DOUBLE_EQ(stats.lower, 812.0);
  EXPECT_DOUBLE_EQ(stats.upper, 81200.0);
  EXPECT_EQ(stats.method, "GEE");
  EXPECT_DOUBLE_EQ(stats.coverage, 0.97);
  EXPECT_TRUE(stats.degraded);
}

TEST(ServeProtocolTest, ListReplyRoundTrips) {
  Message reply;
  reply.type = MessageType::kListReply;
  reply.epoch = 9;
  reply.columns = {"a", "", "with|pipe", std::string(1000, 'x')};
  const auto decoded = DecodeMessage(EncodeMessage(reply));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->columns, reply.columns);
  EXPECT_EQ(decoded->epoch, 9u);
}

TEST(ServeProtocolTest, ErrorRoundTripsThroughStatus) {
  const Status original = UnavailableError("overloaded: back off");
  Message error = ErrorMessage(original);
  error.request_id = 3;
  const auto decoded = DecodeMessage(EncodeMessage(error));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const Status restored = StatusFromError(*decoded);
  EXPECT_EQ(restored.code(), StatusCode::kUnavailable);
  EXPECT_EQ(restored.message(), "overloaded: back off");
}

TEST(ServeProtocolTest, TruncatedPayloadIsDataLossNotCrash) {
  Message reply;
  reply.type = MessageType::kStatsReply;
  reply.stats = MakeStats();
  const std::string payload = EncodeMessage(reply);
  // Every proper prefix must decode to a typed error, never abort.
  for (size_t len = 0; len < payload.size(); ++len) {
    const auto decoded = DecodeMessage(payload.substr(0, len));
    ASSERT_FALSE(decoded.ok()) << "prefix of length " << len << " decoded";
    EXPECT_TRUE(decoded.status().code() == StatusCode::kDataLoss ||
                decoded.status().code() == StatusCode::kInvalidArgument)
        << decoded.status().ToString();
  }
}

TEST(ServeProtocolTest, TrailingGarbageIsDataLoss) {
  Message request;
  request.type = MessageType::kList;
  const auto decoded = DecodeMessage(EncodeMessage(request) + "extra");
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(ServeProtocolTest, UnknownMessageTypeIsInvalidArgument) {
  Message request;
  request.type = MessageType::kList;
  std::string payload = EncodeMessage(request);
  payload[0] = '\x63';  // No such message type.
  const auto decoded = DecodeMessage(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServeProtocolTest, FrameRoundTripsThroughExtract) {
  std::string wire;
  ASSERT_TRUE(AppendFrame(&wire, "hello").ok());
  ASSERT_TRUE(AppendFrame(&wire, "").ok());
  ASSERT_TRUE(AppendFrame(&wire, std::string(1000, 'z')).ok());

  auto first = ExtractFrame(&wire);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  EXPECT_EQ(**first, "hello");
  auto second = ExtractFrame(&wire);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->has_value());
  EXPECT_EQ(**second, "");
  auto third = ExtractFrame(&wire);
  ASSERT_TRUE(third.ok());
  ASSERT_TRUE(third->has_value());
  EXPECT_EQ((*third)->size(), 1000u);
  auto done = ExtractFrame(&wire);
  ASSERT_TRUE(done.ok());
  EXPECT_FALSE(done->has_value());
  EXPECT_TRUE(wire.empty());
}

TEST(ServeProtocolTest, ExtractFrameIsIncremental) {
  std::string full;
  ASSERT_TRUE(AppendFrame(&full, "payload-bytes").ok());
  // Feed the wire image one byte at a time; the frame must pop out exactly
  // once, at the final byte, with the buffer untouched before that.
  std::string buffer;
  for (size_t i = 0; i < full.size(); ++i) {
    buffer.push_back(full[i]);
    auto frame = ExtractFrame(&buffer);
    ASSERT_TRUE(frame.ok());
    if (i + 1 < full.size()) {
      EXPECT_FALSE(frame->has_value()) << "frame surfaced early at " << i;
    } else {
      ASSERT_TRUE(frame->has_value());
      EXPECT_EQ(**frame, "payload-bytes");
    }
  }
}

TEST(ServeProtocolTest, OversizeLengthPrefixIsDataLoss) {
  // A 4-byte little-endian length far beyond kMaxFramePayload.
  std::string buffer = {'\xff', '\xff', '\xff', '\x7f'};
  const auto frame = ExtractFrame(&buffer);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kDataLoss);
}

TEST(ServeProtocolTest, AppendFrameRejectsOversizePayload) {
  std::string wire;
  const Status status =
      AppendFrame(&wire, std::string(kMaxFramePayload + 1, 'a'));
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(wire.empty());
}

TEST(ServeProtocolTest, CorruptedByteNeverAborts) {
  // Flip every byte of a frame payload in turn: decode must stay total.
  Message reply;
  reply.type = MessageType::kStatsReply;
  reply.request_id = 9;
  reply.epoch = 2;
  reply.stats = MakeStats();
  const std::string payload = EncodeMessage(reply);
  for (size_t i = 0; i < payload.size(); ++i) {
    std::string mutated = payload;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x20);
    const auto decoded = DecodeMessage(mutated);
    if (!decoded.ok()) {
      EXPECT_TRUE(decoded.status().code() == StatusCode::kDataLoss ||
                  decoded.status().code() == StatusCode::kInvalidArgument)
          << decoded.status().ToString();
    }
  }
}

}  // namespace
}  // namespace ndv
