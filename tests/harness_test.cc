#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "core/all_estimators.h"
#include "datagen/zipf.h"
#include "estimators/method_of_moments.h"
#include "harness/figures.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "table/table.h"

namespace ndv {
namespace {

std::unique_ptr<Int64Column> TestColumn() {
  ZipfColumnOptions options;
  options.rows = 10000;
  options.z = 1.0;
  options.seed = 5;
  return MakeZipfColumn(options);
}

TEST(RunTrialsTest, AggregatesAreConsistent) {
  const auto column = TestColumn();
  const int64_t actual = ExactDistinctHashSet(*column);
  RunOptions options;
  options.trials = 10;
  const NaiveScaleUp estimator;
  const EstimatorAggregate aggregate =
      RunTrials(*column, actual, 0.05, estimator, options);
  EXPECT_EQ(aggregate.estimator, "Naive");
  EXPECT_EQ(aggregate.actual_distinct, actual);
  EXPECT_DOUBLE_EQ(aggregate.sampling_fraction, 0.05);
  EXPECT_GE(aggregate.mean_ratio_error, 1.0);
  EXPECT_GE(aggregate.max_ratio_error, aggregate.mean_ratio_error);
  EXPECT_GE(aggregate.stddev_fraction, 0.0);
  EXPECT_GT(aggregate.mean_estimate, 0.0);
}

TEST(RunTrialsTest, DeterministicInSeed) {
  const auto column = TestColumn();
  const int64_t actual = ExactDistinctHashSet(*column);
  RunOptions options;
  options.seed = 42;
  const NaiveScaleUp estimator;
  const EstimatorAggregate a =
      RunTrials(*column, actual, 0.02, estimator, options);
  const EstimatorAggregate b =
      RunTrials(*column, actual, 0.02, estimator, options);
  EXPECT_DOUBLE_EQ(a.mean_estimate, b.mean_estimate);
  EXPECT_DOUBLE_EQ(a.mean_ratio_error, b.mean_ratio_error);
  options.seed = 43;
  const EstimatorAggregate c =
      RunTrials(*column, actual, 0.02, estimator, options);
  EXPECT_NE(a.mean_estimate, c.mean_estimate);
}

TEST(RunTrialsTest, FullScanHasZeroErrorAndVariance) {
  const auto column = TestColumn();
  const int64_t actual = ExactDistinctHashSet(*column);
  RunOptions options;
  const NaiveScaleUp estimator;
  const EstimatorAggregate aggregate =
      RunTrials(*column, actual, 1.0, estimator, options);
  EXPECT_DOUBLE_EQ(aggregate.mean_ratio_error, 1.0);
  EXPECT_DOUBLE_EQ(aggregate.stddev_fraction, 0.0);
}

TEST(RunTrialsAllEstimatorsTest, ThreadCountDoesNotChangeResults) {
  // The determinism contract: per-trial RNGs are pre-forked sequentially
  // from the seed and merged in trial order, so serial and parallel runs
  // produce bit-identical statistics.
  const auto column = TestColumn();
  const int64_t actual = ExactDistinctHashSet(*column);
  auto estimators = MakePaperComparisonEstimators();
  RunOptions serial;
  serial.trials = 12;
  serial.seed = 77;
  serial.threads = 1;
  RunOptions parallel = serial;
  parallel.threads = 8;
  const auto a =
      RunTrialsAllEstimators(*column, actual, 0.03, estimators, serial);
  const auto b =
      RunTrialsAllEstimators(*column, actual, 0.03, estimators, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].estimator, b[i].estimator);
    EXPECT_EQ(a[i].actual_distinct, b[i].actual_distinct);
    // Exact (bitwise) equality, not near-equality.
    EXPECT_EQ(a[i].mean_estimate, b[i].mean_estimate);
    EXPECT_EQ(a[i].mean_ratio_error, b[i].mean_ratio_error);
    EXPECT_EQ(a[i].max_ratio_error, b[i].max_ratio_error);
    EXPECT_EQ(a[i].stddev_fraction, b[i].stddev_fraction);
  }
}

TEST(RunTrialsAllEstimatorsTest, RecordsWallClockTiming) {
  const auto column = TestColumn();
  const int64_t actual = ExactDistinctHashSet(*column);
  auto estimators = MakePaperComparisonEstimators();
  RunOptions options;
  options.trials = 4;
  const auto aggregates =
      RunTrialsAllEstimators(*column, actual, 0.05, estimators, options);
  ASSERT_FALSE(aggregates.empty());
  for (const auto& aggregate : aggregates) {
    EXPECT_GE(aggregate.estimate_ms, 0.0);
    EXPECT_GT(aggregate.cell_wall_ms, 0.0);
    // The cell wall-clock is shared by every estimator of the cell.
    EXPECT_EQ(aggregate.cell_wall_ms, aggregates[0].cell_wall_ms);
  }
}

TEST(RunSweepTest, FractionMajorOrdering) {
  const auto column = TestColumn();
  const int64_t actual = ExactDistinctHashSet(*column);
  const std::vector<double> fractions = {0.01, 0.05};
  auto estimators = MakePaperComparisonEstimators();
  RunOptions options;
  options.trials = 2;
  const auto results =
      RunSweep(*column, actual, fractions, estimators, options);
  ASSERT_EQ(results.size(), fractions.size() * estimators.size());
  EXPECT_DOUBLE_EQ(results[0].sampling_fraction, 0.01);
  EXPECT_EQ(results[0].estimator, "GEE");
  EXPECT_DOUBLE_EQ(results[estimators.size()].sampling_fraction, 0.05);
}

TEST(RunTableSweepTest, AveragesOverColumns) {
  Table table;
  {
    ZipfColumnOptions options;
    options.rows = 5000;
    options.z = 1.0;
    table.AddColumn("zipf", MakeZipfColumn(options));
    options.z = 0.0;
    options.seed = 9;
    table.AddColumn("uniform", MakeZipfColumn(options));
  }
  auto estimators = MakePaperComparisonEstimators();
  RunOptions options;
  options.trials = 3;
  const auto results =
      RunTableSweep(table, {0.05}, estimators, options);
  ASSERT_EQ(results.size(), estimators.size());
  for (const auto& aggregate : results) {
    EXPECT_GE(aggregate.mean_ratio_error, 1.0);
    EXPECT_GE(aggregate.mean_stddev_fraction, 0.0);
  }
}

TEST(RunTableSweepTest, ParallelExecutionMatchesSerial) {
  // threads must not change results: per-column seeds are pre-derived.
  Table table;
  {
    ZipfColumnOptions options;
    options.rows = 5000;
    for (int c = 0; c < 6; ++c) {
      options.z = static_cast<double>(c % 3);
      options.seed = static_cast<uint64_t>(c) + 1;
      table.AddColumn("c" + std::to_string(c), MakeZipfColumn(options));
    }
  }
  auto estimators = MakePaperComparisonEstimators();
  RunOptions serial;
  serial.trials = 3;
  RunOptions parallel = serial;
  parallel.threads = 4;
  const auto serial_results =
      RunTableSweep(table, {0.02, 0.1}, estimators, serial);
  const auto parallel_results =
      RunTableSweep(table, {0.02, 0.1}, estimators, parallel);
  ASSERT_EQ(serial_results.size(), parallel_results.size());
  for (size_t i = 0; i < serial_results.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial_results[i].mean_ratio_error,
                     parallel_results[i].mean_ratio_error);
    EXPECT_DOUBLE_EQ(serial_results[i].mean_stddev_fraction,
                     parallel_results[i].mean_stddev_fraction);
  }
}

TEST(PaperSamplingFractionsTest, SixPointsDoubling) {
  const auto& fractions = PaperSamplingFractions();
  ASSERT_EQ(fractions.size(), 6u);
  EXPECT_DOUBLE_EQ(fractions.front(), 0.002);
  EXPECT_DOUBLE_EQ(fractions.back(), 0.064);
  for (size_t i = 1; i < fractions.size(); ++i) {
    EXPECT_NEAR(fractions[i] / fractions[i - 1], 2.0, 1e-12);
  }
}

TEST(TextTableTest, AlignedOutput) {
  TextTable table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22.5"});
  std::ostringstream out;
  table.Print(out);
  const std::string rendered = out.str();
  EXPECT_NE(rendered.find("| name  | value |"), std::string::npos);
  EXPECT_NE(rendered.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(rendered.find("| b     | 22.5  |"), std::string::npos);
}

TEST(TextTableTest, CsvEscaping) {
  TextTable table({"a", "b"});
  table.AddRow({"x,y", "quote\"inside"});
  std::ostringstream out;
  table.PrintCsv(out);
  EXPECT_EQ(out.str(), "a,b\n\"x,y\",\"quote\"\"inside\"\n");
}

TEST(TextTableTest, RowArityEnforced) {
  TextTable table({"only"});
  EXPECT_DEATH(table.AddRow({"too", "many"}), "size");
}

TEST(FormatDoubleTest, TrimsTrailingZeros) {
  EXPECT_EQ(FormatDouble(1.5, 3), "1.5");
  EXPECT_EQ(FormatDouble(2.0, 3), "2");
  EXPECT_EQ(FormatDouble(1.2345, 2), "1.23");
  EXPECT_EQ(FormatDouble(0.0, 3), "0");
}

TEST(FractionLabelTest, Percentages) {
  EXPECT_EQ(FractionLabel(0.008), "0.8%");
  EXPECT_EQ(FractionLabel(0.064), "6.4%");
  EXPECT_EQ(FractionLabel(0.5), "50%");
}

TEST(MakeFigureTableTest, GridShape) {
  const auto column = TestColumn();
  const int64_t actual = ExactDistinctHashSet(*column);
  auto estimators = MakePaperComparisonEstimators();
  RunOptions options;
  options.trials = 2;
  const std::vector<double> fractions = {0.01, 0.02};
  const auto results =
      RunSweep(*column, actual, fractions, estimators, options);
  const TextTable table = MakeFigureTable(
      results, {"1%", "2%"}, "rate",
      [](const EstimatorAggregate& a) { return a.mean_ratio_error; });
  std::ostringstream out;
  table.Print(out);
  EXPECT_NE(out.str().find("rate"), std::string::npos);
  EXPECT_NE(out.str().find("GEE"), std::string::npos);
  EXPECT_NE(out.str().find("HYBGEE"), std::string::npos);
}

TEST(MakeTimingTableTest, GridShapeWithCellWallColumn) {
  const auto column = TestColumn();
  const int64_t actual = ExactDistinctHashSet(*column);
  auto estimators = MakePaperComparisonEstimators();
  RunOptions options;
  options.trials = 2;
  const auto results =
      RunSweep(*column, actual, {0.01, 0.02}, estimators, options);
  const TextTable table = MakeTimingTable(results, {"1%", "2%"}, "rate");
  std::ostringstream out;
  table.Print(out);
  EXPECT_NE(out.str().find("rate"), std::string::npos);
  EXPECT_NE(out.str().find("GEE (ms)"), std::string::npos);
  EXPECT_NE(out.str().find("cell wall (ms)"), std::string::npos);
}

TEST(AllEstimatorsRegistryTest, PaperSetAndFullSet) {
  EXPECT_EQ(MakePaperComparisonEstimators().size(), 6u);
  const auto all = MakeAllEstimators();
  EXPECT_GE(all.size(), 25u);
  EXPECT_NE(MakeEstimatorByName("GEE"), nullptr);
  EXPECT_NE(MakeEstimatorByName("AE"), nullptr);
  EXPECT_NE(MakeEstimatorByName("HYBGEE"), nullptr);
  EXPECT_NE(MakeEstimatorByName("Shlosser"), nullptr);
  EXPECT_EQ(MakeEstimatorByName("bogus"), nullptr);
}

}  // namespace
}  // namespace ndv
