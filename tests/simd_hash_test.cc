// The SIMD hash kernels' contract: every vector level is bit-identical to
// the scalar reference for every input — including the doubles the hasher
// canonicalizes (-0.0, every NaN payload, denormals, infinities), every
// vector-width remainder (sizes 0..~70 cover full vectors, tails, and the
// empty span), gathers with arbitrary row orders, and the dictionary-code
// lookup path. Estimates must not depend on the host CPU.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/simd_hash.h"
#include "common/value_hash.h"

namespace ndv {
namespace {

// Every level this binary can execute on this CPU (always includes
// scalar). The vector levels are only compared when present, so the suite
// passes on any host; CI runs it on AVX2 machines.
std::vector<SimdLevel> AvailableLevels() {
  std::vector<SimdLevel> levels;
  for (const SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kNeon}) {
    if (SimdLevelAvailable(level)) levels.push_back(level);
  }
  return levels;
}

std::vector<int64_t> TestInt64s(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> values(count);
  for (size_t i = 0; i < count; ++i) {
    switch (i % 7) {
      case 0: values[i] = 0; break;
      case 1: values[i] = -1; break;
      case 2: values[i] = std::numeric_limits<int64_t>::min(); break;
      case 3: values[i] = std::numeric_limits<int64_t>::max(); break;
      default: values[i] = static_cast<int64_t>(rng.NextU64()); break;
    }
  }
  return values;
}

std::vector<double> TestDoubles(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values(count);
  for (size_t i = 0; i < count; ++i) {
    switch (i % 9) {
      case 0: values[i] = 0.0; break;
      case 1: values[i] = -0.0; break;
      case 2: values[i] = std::numeric_limits<double>::quiet_NaN(); break;
      case 3: values[i] = -std::numeric_limits<double>::quiet_NaN(); break;
      case 4: {
        // A signaling-NaN bit pattern (payload differs from the quiet
        // canonical one); must land in the same hash class.
        uint64_t bits = 0x7ff0000000000001ULL;
        std::memcpy(&values[i], &bits, sizeof(bits));
        break;
      }
      case 5: values[i] = std::numeric_limits<double>::infinity(); break;
      case 6: values[i] = -std::numeric_limits<double>::infinity(); break;
      case 7: values[i] = 5e-324; break;  // smallest denormal
      default: {
        uint64_t bits = rng.NextU64();
        std::memcpy(&values[i], &bits, sizeof(bits));
        break;
      }
    }
  }
  return values;
}

TEST(SimdHashTest, ParseSimdLevelNames) {
  SimdLevel level = SimdLevel::kAvx2;
  EXPECT_TRUE(ParseSimdLevel("scalar", &level));
  EXPECT_EQ(level, SimdLevel::kScalar);
  EXPECT_TRUE(ParseSimdLevel("avx2", &level));
  EXPECT_EQ(level, SimdLevel::kAvx2);
  EXPECT_TRUE(ParseSimdLevel("neon", &level));
  EXPECT_EQ(level, SimdLevel::kNeon);
  EXPECT_TRUE(ParseSimdLevel("native", &level));
  EXPECT_TRUE(SimdLevelAvailable(level));
  EXPECT_TRUE(ParseSimdLevel("", &level));
  EXPECT_FALSE(ParseSimdLevel("sse9", &level));
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
}

TEST(SimdHashTest, ScalarIsAlwaysAvailableAndActiveIsValid) {
  EXPECT_TRUE(SimdLevelAvailable(SimdLevel::kScalar));
  EXPECT_TRUE(SimdLevelAvailable(ActiveSimdLevel()));
}

TEST(SimdHashTest, ScalarSpanMatchesTheReferenceHash) {
  const std::vector<int64_t> ints = TestInt64s(33, 1);
  std::vector<uint64_t> out(ints.size());
  HashInt64SpanAt(SimdLevel::kScalar, ints.data(), ints.size(), out.data());
  for (size_t i = 0; i < ints.size(); ++i) {
    EXPECT_EQ(out[i], Hash64(static_cast<uint64_t>(ints[i]))) << i;
  }

  const std::vector<double> doubles = TestDoubles(33, 2);
  out.assign(doubles.size(), 0);
  HashDoubleSpanAt(SimdLevel::kScalar, doubles.data(), doubles.size(),
                   out.data());
  for (size_t i = 0; i < doubles.size(); ++i) {
    EXPECT_EQ(out[i], HashDoubleValue(doubles[i])) << i;
  }
  // The two NaN payload classes and the zero signs collapse.
  EXPECT_EQ(out[2], out[3]);
  EXPECT_EQ(out[2], out[4]);
  EXPECT_EQ(out[0], out[1]);
}

TEST(SimdHashTest, EveryLevelMatchesScalarAtEverySize) {
  for (const SimdLevel level : AvailableLevels()) {
    SCOPED_TRACE(SimdLevelName(level));
    for (size_t count = 0; count <= 70; ++count) {
      const std::vector<int64_t> ints = TestInt64s(count, count + 1);
      const std::vector<double> doubles = TestDoubles(count, count + 100);
      std::vector<uint64_t> scalar(count), vector(count);

      HashInt64SpanAt(SimdLevel::kScalar, ints.data(), count, scalar.data());
      HashInt64SpanAt(level, ints.data(), count, vector.data());
      EXPECT_EQ(scalar, vector) << "int64 span, count " << count;

      HashDoubleSpanAt(SimdLevel::kScalar, doubles.data(), count,
                       scalar.data());
      HashDoubleSpanAt(level, doubles.data(), count, vector.data());
      EXPECT_EQ(scalar, vector) << "double span, count " << count;
    }
  }
}

TEST(SimdHashTest, GathersMatchScalarUnderArbitraryRowOrders) {
  constexpr size_t kBase = 257;
  const std::vector<int64_t> ints = TestInt64s(kBase, 7);
  const std::vector<double> doubles = TestDoubles(kBase, 8);
  Rng rng(9);
  for (const SimdLevel level : AvailableLevels()) {
    SCOPED_TRACE(SimdLevelName(level));
    for (const size_t count : {size_t{0}, size_t{1}, size_t{5}, size_t{64},
                               size_t{67}}) {
      std::vector<int64_t> rows(count);
      for (size_t i = 0; i < count; ++i) {
        rows[i] = static_cast<int64_t>(rng.NextU64() % kBase);
      }
      std::vector<uint64_t> scalar(count), vector(count);
      HashInt64GatherAt(SimdLevel::kScalar, ints.data(), rows.data(), count,
                        scalar.data());
      HashInt64GatherAt(level, ints.data(), rows.data(), count,
                        vector.data());
      EXPECT_EQ(scalar, vector) << "int64 gather, count " << count;

      HashDoubleGatherAt(SimdLevel::kScalar, doubles.data(), rows.data(),
                         count, scalar.data());
      HashDoubleGatherAt(level, doubles.data(), rows.data(), count,
                         vector.data());
      EXPECT_EQ(scalar, vector) << "double gather, count " << count;
    }
  }
}

TEST(SimdHashTest, CodeLookupMatchesScalar) {
  constexpr size_t kDict = 100;
  std::vector<uint64_t> lut(kDict);
  for (size_t i = 0; i < kDict; ++i) {
    lut[i] = HashBytes("entry " + std::to_string(i));
  }
  Rng rng(11);
  for (const SimdLevel level : AvailableLevels()) {
    SCOPED_TRACE(SimdLevelName(level));
    for (const size_t count : {size_t{0}, size_t{1}, size_t{31},
                               size_t{64}, size_t{70}}) {
      std::vector<int32_t> codes(count);
      for (size_t i = 0; i < count; ++i) {
        codes[i] = static_cast<int32_t>(rng.NextU64() % kDict);
      }
      std::vector<uint64_t> scalar(count), vector(count);
      HashLookupCodes32At(SimdLevel::kScalar, codes.data(), lut.data(),
                          count, scalar.data());
      HashLookupCodes32At(level, codes.data(), lut.data(), count,
                          vector.data());
      EXPECT_EQ(scalar, vector) << "count " << count;
    }
  }
}

TEST(SimdHashTest, DispatchingKernelsMatchScalar) {
  // Whatever level dispatch resolved to (including an NDV_SIMD override —
  // the ctest matrix reruns this binary with NDV_SIMD=scalar), the public
  // kernels must equal the scalar reference.
  const std::vector<int64_t> ints = TestInt64s(67, 21);
  const std::vector<double> doubles = TestDoubles(67, 22);
  std::vector<uint64_t> expect(67), got(67);

  HashInt64SpanAt(SimdLevel::kScalar, ints.data(), ints.size(),
                  expect.data());
  HashInt64Span(ints.data(), ints.size(), got.data());
  EXPECT_EQ(expect, got);

  HashDoubleSpanAt(SimdLevel::kScalar, doubles.data(), doubles.size(),
                   expect.data());
  HashDoubleSpan(doubles.data(), doubles.size(), got.data());
  EXPECT_EQ(expect, got);
}

}  // namespace
}  // namespace ndv
