#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "estimators/coverage.h"
#include "estimators/goodman.h"
#include "estimators/jackknife.h"
#include "estimators/method_of_moments.h"
#include "estimators/registry.h"
#include "estimators/shlosser.h"
#include "profile/frequency_profile.h"

namespace ndv {
namespace {

// Shared fixture summary: n=100, f1=3, f2=1 -> r=5, d=4, q=0.05.
SampleSummary SmallSummary() {
  return MakeSummary(100, std::vector<int64_t>{3, 1});
}

TEST(SanityBoundsTest, ClampsToSampleDistinctAndTableSize) {
  // Without-replacement sample: upper bound is d + (n - r) = 4 + 95 = 99.
  const SampleSummary summary = SmallSummary();
  EXPECT_DOUBLE_EQ(ApplySanityBounds(2.0, summary), 4.0);
  EXPECT_DOUBLE_EQ(ApplySanityBounds(250.0, summary), 99.0);
  EXPECT_DOUBLE_EQ(ApplySanityBounds(50.0, summary), 50.0);
  EXPECT_DOUBLE_EQ(ApplySanityBounds(INFINITY, summary), 99.0);
  EXPECT_DOUBLE_EQ(ApplySanityBounds(-INFINITY, summary), 4.0);
  EXPECT_DOUBLE_EQ(ApplySanityBounds(NAN, summary), 99.0);
}

TEST(SanityBoundsTest, WithReplacementKeepsPaperUpperBound) {
  // With replacement the d + (n - r) argument fails (r draws can repeat
  // rows), so the upper bound stays at n.
  SampleSummary summary = SmallSummary();
  summary.distinct_rows = false;
  EXPECT_DOUBLE_EQ(ApplySanityBounds(250.0, summary), 100.0);
}

TEST(SanityBoundsTest, FullScanPinsEstimateToD) {
  const SampleSummary summary = MakeSummary(5, std::vector<int64_t>{1, 2});
  ASSERT_EQ(summary.r(), summary.n());
  EXPECT_DOUBLE_EQ(ApplySanityBounds(42.0, summary), 3.0);
}

TEST(NaiveScaleUpTest, ScalesByInverseSamplingFraction) {
  // d/q = 4 / 0.05 = 80.
  EXPECT_DOUBLE_EQ(NaiveScaleUp().Estimate(SmallSummary()), 80.0);
}

TEST(UnsmoothedJackknife1Test, MatchesHandComputation) {
  // d / (1 - (1-q) f1/r) = 4 / (1 - 0.95*3/5) = 4 / 0.43.
  EXPECT_NEAR(UnsmoothedJackknife1().Estimate(SmallSummary()), 4.0 / 0.43,
              1e-12);
}

TEST(UnsmoothedJackknife1Test, AllSingletonsGivesFullScaleUp) {
  // f1 = r: denominator = q, so D_hat = d/q = n when d == r.
  const SampleSummary summary = MakeSummary(1000, std::vector<int64_t>{10});
  EXPECT_NEAR(UnsmoothedJackknife1().Estimate(summary), 1000.0, 1e-9);
}

TEST(UnsmoothedJackknife1Test, NoSingletonsReturnsD) {
  const SampleSummary summary =
      MakeSummary(1000, std::vector<int64_t>{0, 5});  // f2 = 5
  EXPECT_DOUBLE_EQ(UnsmoothedJackknife1().Estimate(summary), 5.0);
}

TEST(UnsmoothedJackknife2Test, ReducesToUj1WhenCvIsZero) {
  // SmallSummary's estimated gamma^2 clamps to zero (see skew test), so the
  // second-order correction vanishes.
  EXPECT_NEAR(UnsmoothedJackknife2().Estimate(SmallSummary()),
              UnsmoothedJackknife1().Estimate(SmallSummary()), 1e-12);
}

TEST(UnsmoothedJackknife2Test, ExceedsUj1UnderSkew) {
  // A heavy class drives gamma^2 > 0, and the uj2 correction adds classes.
  std::vector<int64_t> f(20, 0);
  f[0] = 10;   // f1 = 10
  f[19] = 2;   // f20 = 2
  const SampleSummary summary = MakeSummary(10000, f);
  EXPECT_GT(UnsmoothedJackknife2().Estimate(summary),
            UnsmoothedJackknife1().Estimate(summary));
}

TEST(UnsmoothedJackknife2Test, FullScanReturnsD) {
  const SampleSummary summary = MakeSummary(6, std::vector<int64_t>{2, 2});
  EXPECT_DOUBLE_EQ(UnsmoothedJackknife2().Estimate(summary), 4.0);
}

TEST(StabilizedJackknifeTest, NoTruncationMatchesUj2) {
  EXPECT_NEAR(StabilizedJackknife(50).Estimate(SmallSummary()),
              UnsmoothedJackknife2().Estimate(SmallSummary()), 1e-12);
}

TEST(StabilizedJackknifeTest, HeavyClassesRemovedAndAddedBack) {
  // f1=5 plus one class seen 100 times; cutoff 50 removes the big class.
  std::vector<int64_t> f(100, 0);
  f[0] = 5;
  f[99] = 1;
  const SampleSummary summary = MakeSummary(10000, f);
  const double estimate = StabilizedJackknife(50).Estimate(summary);
  EXPECT_GE(estimate, 6.0);           // at least d
  EXPECT_LE(estimate, 10000.0);       // sanity
  // The removed heavy class must still be counted: never below uj2 of the
  // reduced sample alone (which estimates only the light classes).
  EXPECT_GT(estimate, 5.0);
}

TEST(StabilizedJackknifeTest, CutoffOneStillFinite) {
  const double estimate = StabilizedJackknife(1).Estimate(SmallSummary());
  EXPECT_GE(estimate, 4.0);
  EXPECT_LE(estimate, 100.0);
}

TEST(SmoothedJackknifeTest, AccurateOnEqualClassSizes) {
  // 1000 classes of 100 rows each (n = 100K), sample r = 2000 without
  // bias toward any class: construct the *expected* profile directly.
  // Instead of simulating, check the fixed point on a profile consistent
  // with the model: expected d and f1 for D=1000, r=2000, p=1/1000.
  const double r = 2000;
  const double p = 1.0 / 1000.0;
  const double e_f1 =
      1000.0 * r * p * std::pow(1.0 - p, r - 1);          // ~270.7
  const double e_d = 1000.0 * (1.0 - std::pow(1.0 - p, r));  // ~864.7
  // Build an integer profile approximating (d, f1): put the remaining
  // classes at frequency 2+ so the totals work out.
  const int64_t f1 = static_cast<int64_t>(e_f1);
  const int64_t d = static_cast<int64_t>(e_d);
  const int64_t repeats = d - f1;
  // Distribute the remaining r - f1 observations over `repeats` classes.
  const int64_t rem = 2000 - f1;
  const int64_t base = rem / repeats;
  const int64_t extra = rem % repeats;
  std::vector<int64_t> f(static_cast<size_t>(base + 2), 0);
  f[0] = f1;
  f[static_cast<size_t>(base - 1)] = repeats - extra;
  f[static_cast<size_t>(base)] = extra;
  const SampleSummary summary = MakeSummary(100000, f);
  const double estimate = SmoothedJackknife().Estimate(summary);
  EXPECT_NEAR(estimate, 1000.0, 150.0);
}

TEST(SmoothedJackknifeTest, DegenerateInputs) {
  // d == 1: nothing to smooth.
  const SampleSummary one = MakeSummary(100, std::vector<int64_t>{0, 0, 1});
  EXPECT_DOUBLE_EQ(SmoothedJackknife().Estimate(one), 1.0);
  // Full scan.
  const SampleSummary full = MakeSummary(4, std::vector<int64_t>{4});
  EXPECT_DOUBLE_EQ(SmoothedJackknife().Estimate(full), 4.0);
}

TEST(BurnhamOvertonTest, MatchesFormula) {
  // d + f1 (r-1)/r = 4 + 3 * 4/5 = 6.4.
  EXPECT_DOUBLE_EQ(BurnhamOvertonJackknife().Estimate(SmallSummary()), 6.4);
}

TEST(ShlosserTest, MatchesHandComputation) {
  // numer = 0.95*3 + 0.9025*1 = 3.7525
  // denom = 1*0.05*1*3 + 2*0.05*0.95*1 = 0.245
  // D_hat = 4 + 3 * numer/denom.
  const double expected = 4.0 + 3.0 * 3.7525 / 0.245;
  EXPECT_NEAR(Shlosser().Estimate(SmallSummary()), expected, 1e-9);
}

TEST(ShlosserTest, NoSingletonsReturnsD) {
  const SampleSummary summary =
      MakeSummary(1000, std::vector<int64_t>{0, 4});
  EXPECT_DOUBLE_EQ(Shlosser().Estimate(summary), 4.0);
}

TEST(ShlosserTest, FullScanReturnsD) {
  const SampleSummary summary = MakeSummary(5, std::vector<int64_t>{5});
  EXPECT_DOUBLE_EQ(Shlosser().Estimate(summary), 5.0);
}

TEST(ModifiedShlosserTest, MatchesHandComputation) {
  // sum f_i / (1-(1-q)^i): 3/0.05 + 1/(1-0.9025) = 60 + 10.25641...
  const double expected = 3.0 / 0.05 + 1.0 / (1.0 - 0.9025);
  EXPECT_NEAR(ModifiedShlosser().Estimate(SmallSummary()), expected, 1e-9);
}

TEST(ModifiedShlosserTest, BlindToDuplication) {
  // The same sample profile from a duplicated table (10x the rows, same
  // class counts scaled): the estimate grows roughly 10x even though the
  // true D is unchanged. This is the published failure mode (Figs. 9-10).
  // Sample profile: every class seen ~10 times, none rare.
  std::vector<int64_t> f(10, 0);
  f[9] = 49;  // 49 classes, 10 observations each; r = 490
  const SampleSummary small_table = MakeSummary(10000, f);    // q ~ 0.05
  const SampleSummary big_table = MakeSummary(100000, f);     // q ~ 0.005
  const double est_small = ModifiedShlosser().Estimate(small_table);
  const double est_big = ModifiedShlosser().Estimate(big_table);
  EXPECT_GT(est_big, 5.0 * est_small);
}

TEST(ChaoTest, MatchesFormula) {
  EXPECT_DOUBLE_EQ(Chao().Estimate(SmallSummary()), 8.5);  // 4 + 9/2
}

TEST(ChaoTest, BiasCorrectedWhenNoDoubletons) {
  // f1=4, f2=0: d + f1(f1-1)/2 = 4 + 6 = 10.
  const SampleSummary summary = MakeSummary(1000, std::vector<int64_t>{4});
  EXPECT_DOUBLE_EQ(Chao().Estimate(summary), 10.0);
}

TEST(ChaoLeeTest, MatchesHandComputation) {
  // C_hat = 0.4, d0 = 10, gamma^2 clamps to 0 -> estimate 10.
  EXPECT_NEAR(ChaoLee().Estimate(SmallSummary()), 10.0, 1e-12);
}

TEST(ChaoLeeTest, AllSingletonsSaturatesAtN) {
  const SampleSummary summary = MakeSummary(500, std::vector<int64_t>{10});
  EXPECT_DOUBLE_EQ(ChaoLee().Estimate(summary), 500.0);
}

TEST(HorvitzThompsonTest, MatchesHandComputation) {
  // i=1: size 20, incl 1-0.95^20; i=2: size 40, incl 1-0.95^40.
  const double incl1 = 1.0 - std::pow(0.95, 20.0);
  const double incl2 = 1.0 - std::pow(0.95, 40.0);
  EXPECT_NEAR(HorvitzThompson().Estimate(SmallSummary()),
              3.0 / incl1 + 1.0 / incl2, 1e-9);
}

TEST(BootstrapTest, MatchesHandComputation) {
  // 4 + 3(1-1/5)^5 + 1(1-2/5)^5.
  const double expected =
      4.0 + 3.0 * std::pow(0.8, 5.0) + std::pow(0.6, 5.0);
  EXPECT_NEAR(Bootstrap().Estimate(SmallSummary()), expected, 1e-12);
}

TEST(GoodmanTest, UnbiasedOnTinyPopulation) {
  // Table {1,1,2,3}: n=4, D=3. Enumerate all C(4,2)=6 samples of size 2.
  // Goodman's estimator must average exactly to D.
  // Sample profiles: one pair with f2=1 (the two copies of value 1), five
  // pairs with f1=2.
  const SampleSummary doubleton =
      MakeSummary(4, std::vector<int64_t>{0, 1});
  const SampleSummary two_singles =
      MakeSummary(4, std::vector<int64_t>{2});
  const double mean = (Goodman::Raw(doubleton) +
                       5.0 * Goodman::Raw(two_singles)) /
                      6.0;
  EXPECT_NEAR(mean, 3.0, 1e-9);
}

TEST(GoodmanTest, ClampedVersionStaysSane) {
  // On larger inputs Goodman explodes; the clamped estimate must stay in
  // [d, n].
  std::vector<int64_t> f = {10, 5, 2, 1};
  const SampleSummary summary = MakeSummary(100000, f);
  const double estimate = Goodman().Estimate(summary);
  EXPECT_GE(estimate, 18.0);
  EXPECT_LE(estimate, 100000.0);
}

TEST(MethodOfMomentsTest, SolvesFirstMomentEquation) {
  const SampleSummary summary =
      MakeSummary(10000, std::vector<int64_t>{2, 4});  // d=6, r=10
  const double estimate = MethodOfMoments().Estimate(summary);
  // Plug back: D (1 - (1-1/D)^r) must reproduce d.
  const double reproduced =
      estimate * (1.0 - std::pow(1.0 - 1.0 / estimate, 10.0));
  EXPECT_NEAR(reproduced, 6.0, 1e-6);
}

TEST(MethodOfMomentsTest, AllDistinctSaturatesAtN) {
  const SampleSummary summary = MakeSummary(300, std::vector<int64_t>{12});
  EXPECT_DOUBLE_EQ(MethodOfMoments().Estimate(summary), 300.0);
}

TEST(RegistryTest, AllBaselinesConstructibleAndNamed) {
  const auto estimators = MakeBaselineEstimators();
  EXPECT_EQ(estimators.size(), 21u);
  for (const auto& estimator : estimators) {
    EXPECT_FALSE(estimator->name().empty());
    // Every baseline produces a sane value on the shared summary.
    const double estimate = estimator->Estimate(SmallSummary());
    EXPECT_GE(estimate, 4.0) << estimator->name();
    EXPECT_LE(estimate, 100.0) << estimator->name();
  }
}

TEST(RegistryTest, LookupByName) {
  EXPECT_NE(MakeBaselineEstimator("Shlosser"), nullptr);
  EXPECT_NE(MakeBaselineEstimator("HYBSKEW"), nullptr);
  EXPECT_EQ(MakeBaselineEstimator("NotAnEstimator"), nullptr);
}

}  // namespace
}  // namespace ndv
