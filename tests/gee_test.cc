#include "core/gee.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/descriptive.h"
#include "datagen/zipf.h"
#include "table/column_sampling.h"
#include "table/table.h"

namespace ndv {
namespace {

SampleSummary SmallSummary() {
  // n=100, f1=3, f2=1 -> r=5, d=4, q=0.05.
  return MakeSummary(100, std::vector<int64_t>{3, 1});
}

TEST(GeeTest, MatchesFormula) {
  // sqrt(n/r) f1 + (d - f1) = sqrt(20)*3 + 1.
  EXPECT_NEAR(Gee().Estimate(SmallSummary()), std::sqrt(20.0) * 3.0 + 1.0,
              1e-12);
}

TEST(GeeTest, NoSingletonsCountsRepeatsOnce) {
  const SampleSummary summary =
      MakeSummary(10000, std::vector<int64_t>{0, 5, 2});
  EXPECT_DOUBLE_EQ(Gee().Estimate(summary), 7.0);
}

TEST(GeeTest, AllSingletonsIsGeometricMean) {
  // f1 = r = d: estimate = sqrt(n/r) * r = sqrt(n r), the geometric mean of
  // r and n.
  const SampleSummary summary = MakeSummary(400, std::vector<int64_t>{4});
  EXPECT_DOUBLE_EQ(Gee().Estimate(summary), std::sqrt(400.0 * 4.0));
}

TEST(GeeTest, FullScanIsExact) {
  const SampleSummary summary = MakeSummary(6, std::vector<int64_t>{2, 2});
  EXPECT_DOUBLE_EQ(Gee().Estimate(summary), 4.0);
}

TEST(GeeBoundsTest, OrderingAndClamping) {
  const GeeBounds bounds = ComputeGeeBounds(SmallSummary());
  EXPECT_DOUBLE_EQ(bounds.lower, 4.0);
  EXPECT_DOUBLE_EQ(bounds.upper, 20.0 * 3.0 + 1.0);  // (n/r) f1 + (d - f1)
  EXPECT_LE(bounds.lower, bounds.estimate);
  EXPECT_LE(bounds.estimate, bounds.upper);
  EXPECT_DOUBLE_EQ(bounds.width(), bounds.upper - bounds.lower);
}

TEST(GeeBoundsTest, EstimateIsGeometricMeanOfIntervalForPureSingletons) {
  const SampleSummary summary = MakeSummary(10000, std::vector<int64_t>{10});
  const GeeBounds bounds = ComputeGeeBounds(summary);
  EXPECT_NEAR(bounds.estimate, std::sqrt(bounds.lower * bounds.upper), 1e-9);
}

TEST(GeeBoundsTest, IntervalContainsTruthWithHighProbability) {
  // Zipf Z=1 column, 1% samples: count how often D lands in [LOWER, UPPER].
  ZipfColumnOptions options;
  options.rows = 50000;
  options.z = 1.0;
  options.seed = 12;
  const auto column = MakeZipfColumn(options);
  const double actual = static_cast<double>(ExactDistinctHashSet(*column));
  Rng rng(99);
  int covered = 0;
  constexpr int kTrials = 50;
  for (int t = 0; t < kTrials; ++t) {
    const SampleSummary summary = SampleColumnFraction(*column, 0.01, rng);
    const GeeBounds bounds = ComputeGeeBounds(summary);
    if (bounds.lower <= actual && actual <= bounds.upper) ++covered;
  }
  EXPECT_GE(covered, kTrials - 1);  // Allow at most one miss.
}

TEST(GeeBoundsTest, IntervalShrinksWithSamplingRate) {
  ZipfColumnOptions options;
  options.rows = 50000;
  options.z = 0.0;
  options.dup_factor = 10;
  const auto column = MakeZipfColumn(options);
  Rng rng(7);
  const GeeBounds coarse = ComputeGeeBounds(
      SampleColumnFraction(*column, 0.01, rng));
  const GeeBounds fine = ComputeGeeBounds(
      SampleColumnFraction(*column, 0.2, rng));
  EXPECT_LT(fine.width(), coarse.width());
}

TEST(GeeStandardErrorTest, Formula) {
  // sqrt((n/r) f1 + repeats) = sqrt(20*3 + 1) for the small summary.
  EXPECT_NEAR(GeeStandardErrorEstimate(SmallSummary()), std::sqrt(61.0),
              1e-12);
}

TEST(GeeStandardErrorTest, TracksEmpiricalSpread) {
  // The plug-in SE should be within a small factor of the empirically
  // observed stddev of GEE across independent samples.
  ZipfColumnOptions options;
  options.rows = 100000;
  options.z = 1.0;
  options.dup_factor = 10;
  options.seed = 21;
  const auto column = MakeZipfColumn(options);
  Rng rng(22);
  RunningStats estimates;
  RunningStats predicted_se;
  for (int t = 0; t < 60; ++t) {
    const SampleSummary summary = SampleColumnFraction(*column, 0.02, rng);
    estimates.Add(Gee().Estimate(summary));
    predicted_se.Add(GeeStandardErrorEstimate(summary));
  }
  const double empirical = estimates.PopulationStdDev();
  EXPECT_GT(predicted_se.mean(), empirical / 3.0);
  EXPECT_LT(predicted_se.mean(), empirical * 3.0);
}

TEST(GeeStandardErrorTest, ZeroWhenSampleIsConstant) {
  // One class, no singletons: GEE is deterministic at d.
  const SampleSummary summary =
      MakeSummary(1000, std::vector<int64_t>{0, 0, 0, 1});
  EXPECT_DOUBLE_EQ(GeeStandardErrorEstimate(summary), 1.0);
  // (Poisson plug-in keeps sqrt(repeats)=1; the true spread is 0 — the
  // estimate is conservative, never an underclaim of certainty.)
}

TEST(GeeErrorBoundTest, Formula) {
  EXPECT_NEAR(GeeExpectedErrorBound(10000, 100), M_E * 10.0, 1e-9);
  EXPECT_NEAR(GeeExpectedErrorBound(100, 100), M_E, 1e-12);
}

TEST(GeeExpectedValueTest, MatchesTheoremTwoCaseAnalysis) {
  // Uniform distribution p_i = 1/D: expected GEE within the Theorem 2
  // multiplicative window [D/e * sqrt(r/n) * (1-o(1)), D * sqrt(n/r)].
  const int64_t n = 100000;
  const int64_t r = 1000;
  const int64_t cap = 5000;
  std::vector<double> probs(static_cast<size_t>(cap), 1.0 / cap);
  const double expected = GeeExpectedValue(probs, n, r);
  const double scale = std::sqrt(static_cast<double>(n) / r);
  EXPECT_GE(expected, cap / (M_E * scale) * 0.9);
  EXPECT_LE(expected, cap * scale * 1.0001);
}

TEST(GeeExpectedValueTest, MatchesSimulation) {
  // Column with 100 classes of 50 rows each; compare analytic E[GEE] under
  // with-replacement sampling to the empirical mean.
  const int64_t n = 5000;
  const int64_t r = 200;
  std::vector<double> probs(100, 1.0 / 100.0);
  const double analytic = GeeExpectedValue(probs, n, r);

  std::vector<int64_t> values;
  values.reserve(static_cast<size_t>(n));
  for (int64_t v = 0; v < 100; ++v) {
    values.insert(values.end(), 50, v);
  }
  const Int64Column column(values);
  Rng rng(31);
  RunningStats estimates;
  for (int t = 0; t < 300; ++t) {
    const SampleSummary summary =
        SampleColumn(column, r, SamplingScheme::kWithReplacement, rng);
    estimates.Add(Gee::Raw(summary));
  }
  EXPECT_NEAR(estimates.mean(), analytic, 0.05 * analytic);
}

TEST(GeeTheorem2Test, ErrorWithinBoundAcrossDistributions) {
  // GEE's expected ratio error must stay below e*sqrt(n/r) on wildly
  // different inputs: uniform, Zipf, single-value, near-all-distinct.
  Rng rng(55);
  const int64_t n = 20000;
  const int64_t r = 200;  // bound = e * 10
  const double bound = GeeExpectedErrorBound(n, r);
  for (double z : {0.0, 1.0, 2.0, 4.0}) {
    ZipfColumnOptions options;
    options.rows = n;
    options.z = z;
    options.seed = static_cast<uint64_t>(z * 17 + 3);
    const auto column = MakeZipfColumn(options);
    const double actual = static_cast<double>(ExactDistinctHashSet(*column));
    RunningStats errors;
    for (int t = 0; t < 20; ++t) {
      const SampleSummary summary = SampleColumn(
          *column, r, SamplingScheme::kWithoutReplacement, rng);
      errors.Add(RatioError(Gee().Estimate(summary), actual));
    }
    EXPECT_LE(errors.mean(), bound) << "z=" << z;
  }
}

}  // namespace
}  // namespace ndv
