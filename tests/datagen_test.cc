#include <gtest/gtest.h>

#include "datagen/real_world_like.h"
#include "datagen/synthetic_table.h"
#include "table/table.h"

namespace ndv {
namespace {

TEST(SyntheticTableTest, SpecsShapeTheTable) {
  const std::vector<ColumnSpec> specs = {
      ColumnSpec::Uniform("u", 10),
      ColumnSpec::Zipf("z", 100, 1.5),
      ColumnSpec::Unique("id"),
      ColumnSpec::Normal("n", 50.0, 5.0),
      ColumnSpec::Constant("c"),
  };
  const Table table = MakeSyntheticTable(5000, specs, 42);
  EXPECT_EQ(table.NumRows(), 5000);
  EXPECT_EQ(table.NumColumns(), 5);
  EXPECT_EQ(table.column_name(2), "id");

  // Uniform over 10 values: all 10 present at this row count.
  EXPECT_EQ(ExactDistinctHashSet(table.column(0)), 10);
  // Zipf over 100: many but not necessarily all present.
  EXPECT_LE(ExactDistinctHashSet(table.column(1)), 100);
  EXPECT_GE(ExactDistinctHashSet(table.column(1)), 30);
  // Unique: every row distinct.
  EXPECT_EQ(ExactDistinctHashSet(table.column(2)), 5000);
  // Normal(50, 5): roughly 6 sigma of integer bins.
  const int64_t normal_distinct = ExactDistinctHashSet(table.column(3));
  EXPECT_GE(normal_distinct, 20);
  EXPECT_LE(normal_distinct, 60);
  // Constant: one value.
  EXPECT_EQ(ExactDistinctHashSet(table.column(4)), 1);
}

TEST(SyntheticTableTest, DeterministicInSeed) {
  const std::vector<ColumnSpec> specs = {ColumnSpec::Uniform("u", 50)};
  const Table a = MakeSyntheticTable(100, specs, 7);
  const Table b = MakeSyntheticTable(100, specs, 7);
  const Table c = MakeSyntheticTable(100, specs, 8);
  int same_ab = 0;
  int same_ac = 0;
  for (int64_t row = 0; row < 100; ++row) {
    if (a.column(0).HashAt(row) == b.column(0).HashAt(row)) ++same_ab;
    if (a.column(0).HashAt(row) == c.column(0).HashAt(row)) ++same_ac;
  }
  EXPECT_EQ(same_ab, 100);
  EXPECT_LT(same_ac, 20);
}

TEST(SyntheticTableTest, ColumnsAreIndependentStreams) {
  // Two identical specs should still produce different columns.
  const std::vector<ColumnSpec> specs = {ColumnSpec::Uniform("a", 1000),
                                         ColumnSpec::Uniform("b", 1000)};
  const Table table = MakeSyntheticTable(200, specs, 3);
  int same = 0;
  for (int64_t row = 0; row < 200; ++row) {
    if (table.column(0).HashAt(row) == table.column(1).HashAt(row)) ++same;
  }
  EXPECT_LT(same, 10);
}

TEST(RealWorldLikeTest, CensusShape) {
  const Table census = MakeCensusLikeScaled(5000);
  EXPECT_EQ(census.NumRows(), 5000);
  EXPECT_EQ(census.NumColumns(), 15);
  // Low-cardinality categoricals.
  EXPECT_LE(ExactDistinctHashSet(
                census.column(census.FindColumn("sex"))), 2);
  EXPECT_LE(ExactDistinctHashSet(
                census.column(census.FindColumn("workclass"))), 9);
  // Near-unique weight column.
  EXPECT_EQ(ExactDistinctHashSet(
                census.column(census.FindColumn("fnlwgt"))), 5000);
}

TEST(RealWorldLikeTest, CoverTypeShape) {
  const Table cover = MakeCoverTypeLikeScaled(20000);
  EXPECT_EQ(cover.NumRows(), 20000);
  EXPECT_EQ(cover.NumColumns(), 11);
  EXPECT_LE(ExactDistinctHashSet(
                cover.column(cover.FindColumn("cover_type"))), 7);
  const int64_t elevation_distinct =
      ExactDistinctHashSet(cover.column(cover.FindColumn("elevation")));
  EXPECT_GE(elevation_distinct, 500);
  EXPECT_LE(elevation_distinct, 4000);
}

TEST(RealWorldLikeTest, MSSalesShape) {
  const Table sales = MakeMSSalesLikeScaled(30000);
  EXPECT_EQ(sales.NumRows(), 30000);
  EXPECT_EQ(sales.NumColumns(), 20);
  EXPECT_EQ(ExactDistinctHashSet(
                sales.column(sales.FindColumn("license_number"))), 30000);
  EXPECT_LE(ExactDistinctHashSet(
                sales.column(sales.FindColumn("region"))), 9);
}

TEST(RealWorldLikeTest, FullSizeRowCounts) {
  // Construct only the cheapest full-size table here; the others are
  // exercised at full size by the benches.
  const Table census = MakeCensusLike();
  EXPECT_EQ(census.NumRows(), 32561);
  EXPECT_EQ(census.NumColumns(), 15);
}

TEST(RealWorldLikeTest, LineitemShape) {
  const Table lineitem = MakeLineitemLike(60000);
  EXPECT_EQ(lineitem.NumRows(), 60000);
  EXPECT_EQ(lineitem.NumColumns(), 16);
  // Tiny enums.
  EXPECT_LE(ExactDistinctHashSet(
                lineitem.column(lineitem.FindColumn("l_returnflag"))), 3);
  EXPECT_LE(ExactDistinctHashSet(
                lineitem.column(lineitem.FindColumn("l_linestatus"))), 2);
  // Near-unique comment column.
  EXPECT_EQ(ExactDistinctHashSet(
                lineitem.column(lineitem.FindColumn("l_comment"))), 60000);
  // Foreign keys: bounded by domain, mostly realized at this row count.
  const int64_t suppliers = ExactDistinctHashSet(
      lineitem.column(lineitem.FindColumn("l_suppkey")));
  EXPECT_LE(suppliers, 100);
  EXPECT_GE(suppliers, 80);
}

TEST(RealWorldLikeTest, DeterministicInSeed) {
  const Table a = MakeCensusLikeScaled(500, 9);
  const Table b = MakeCensusLikeScaled(500, 9);
  for (int64_t c = 0; c < a.NumColumns(); ++c) {
    EXPECT_EQ(a.column(c).HashAt(0), b.column(c).HashAt(0));
    EXPECT_EQ(a.column(c).HashAt(499), b.column(c).HashAt(499));
  }
}

}  // namespace
}  // namespace ndv
