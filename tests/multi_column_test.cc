#include "table/multi_column.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/gee.h"
#include "datagen/synthetic_table.h"
#include "table/column_sampling.h"

namespace ndv {
namespace {

TEST(CombinedColumnTest, ExactDistinctCombinations) {
  // a in {0,1}, b in {0,1,2}: rows enumerate 5 of the 6 combinations,
  // some twice.
  Int64Column a({0, 0, 1, 1, 0, 1, 0, 1});
  Int64Column b({0, 1, 0, 1, 0, 2, 1, 0});
  CombinedColumn combined({&a, &b});
  EXPECT_EQ(combined.size(), 8);
  EXPECT_EQ(combined.NumComponents(), 2);
  // Distinct pairs: (0,0),(0,1),(1,0),(1,1),(1,2) -> 5.
  EXPECT_EQ(ExactDistinctHashSet(combined), 5);
}

TEST(CombinedColumnTest, EqualTuplesHashEqually) {
  Int64Column a({7, 7});
  Int64Column b({9, 9});
  CombinedColumn combined({&a, &b});
  EXPECT_EQ(combined.HashAt(0), combined.HashAt(1));
}

TEST(CombinedColumnTest, OrderSensitive) {
  // (x, y) vs (y, x) must hash differently in general.
  Int64Column a({1});
  Int64Column b({2});
  CombinedColumn ab({&a, &b});
  CombinedColumn ba({&b, &a});
  EXPECT_NE(ab.HashAt(0), ba.HashAt(0));
}

TEST(CombinedColumnTest, NotDegenerateUnderXorStyleCollisions) {
  // (1, 2) and (2, 1) and (3, 0): a naive xor of hashes would be fooled
  // by symmetric pairs; the remixed chain must not be.
  Int64Column a({1, 2});
  Int64Column b({2, 1});
  CombinedColumn combined({&a, &b});
  EXPECT_NE(combined.HashAt(0), combined.HashAt(1));
}

TEST(CombinedColumnTest, ValueToStringShowsTuple) {
  Int64Column a({5});
  Int64Column b({6});
  CombinedColumn combined({&a, &b});
  EXPECT_EQ(combined.ValueToString(0), "(5, 6)");
}

TEST(CombinedColumnTest, TableConstructor) {
  const std::vector<ColumnSpec> specs = {ColumnSpec::Uniform("x", 10),
                                         ColumnSpec::Uniform("y", 10)};
  const Table table = MakeSyntheticTable(5000, specs, 3);
  CombinedColumn combined(table, {0, 1});
  EXPECT_EQ(combined.size(), 5000);
  const int64_t distinct = ExactDistinctHashSet(combined);
  // ~100 combinations, essentially all hit at 5000 rows.
  EXPECT_GE(distinct, 90);
  EXPECT_LE(distinct, 100);
}

TEST(CombinedColumnTest, RejectsMismatchedSizes) {
  Int64Column a({1, 2});
  Int64Column b({1});
  EXPECT_DEATH(CombinedColumn({&a, &b}), "equal sizes");
}

TEST(CombinedColumnTest, EstimatableLikeAnyColumn) {
  // GROUP BY (x, y) cardinality estimation end to end: sample the
  // combined column and run GEE.
  const std::vector<ColumnSpec> specs = {ColumnSpec::Uniform("x", 40),
                                         ColumnSpec::Zipf("y", 30, 1.0)};
  const Table table = MakeSyntheticTable(100000, specs, 9);
  CombinedColumn combined(table, {0, 1});
  const double actual =
      static_cast<double>(ExactDistinctHashSet(combined));
  Rng rng(11);
  const SampleSummary summary = SampleColumnFraction(combined, 0.1, rng);
  const GeeBounds bounds = ComputeGeeBounds(summary);
  EXPECT_LE(bounds.lower, actual);
  EXPECT_GE(bounds.upper, actual);
}

}  // namespace
}  // namespace ndv
