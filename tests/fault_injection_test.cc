#include "distributed/fault_injection.h"

#include <gtest/gtest.h>

#include "distributed/clock.h"

namespace ndv {
namespace {

TEST(FaultPlanTest, EmptyPlanIsAlwaysClean) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.ActionFor(0, 0).kind, FaultKind::kNone);
  EXPECT_EQ(plan.ActionFor(99, 5).kind, FaultKind::kNone);
  EXPECT_EQ(plan.ToString(), "clean");
}

TEST(FaultPlanTest, FailOnceAffectsOnlyFirstAttempt) {
  FaultPlan plan;
  plan.Set(2, FaultSpec::FailOnce());
  EXPECT_EQ(plan.ActionFor(2, 0).kind, FaultKind::kFail);
  EXPECT_EQ(plan.ActionFor(2, 1).kind, FaultKind::kNone);
  EXPECT_EQ(plan.ActionFor(1, 0).kind, FaultKind::kNone);
}

TEST(FaultPlanTest, FailAlwaysAffectsEveryAttempt) {
  FaultPlan plan;
  plan.Set(0, FaultSpec::FailAlways());
  for (int attempt = 0; attempt < 100; ++attempt) {
    EXPECT_EQ(plan.ActionFor(0, attempt).kind, FaultKind::kFail);
  }
}

TEST(FaultPlanTest, SlowCarriesDelay) {
  FaultPlan plan;
  plan.Set(1, FaultSpec::Slow(250, 2));
  EXPECT_EQ(plan.ActionFor(1, 0).delay_ms, 250);
  EXPECT_EQ(plan.ActionFor(1, 1).kind, FaultKind::kSlow);
  EXPECT_EQ(plan.ActionFor(1, 2).kind, FaultKind::kNone);
}

TEST(FaultPlanTest, SetReplacesPreviousSpec) {
  FaultPlan plan;
  plan.Set(0, FaultSpec::FailAlways());
  plan.Set(0, FaultSpec::None());
  EXPECT_TRUE(plan.empty());
}

TEST(FaultPlanTest, ToStringNamesEachFault) {
  FaultPlan plan;
  plan.Set(0, FaultSpec::FailAlways());
  plan.Set(3, FaultSpec::Slow(200, 2));
  plan.Set(4, FaultSpec::Corrupt(1));
  const std::string text = plan.ToString();
  EXPECT_NE(text.find("p0:FAIL_ALWAYS"), std::string::npos) << text;
  EXPECT_NE(text.find("p3:SLOW(200ms)x2"), std::string::npos) << text;
  EXPECT_NE(text.find("p4:CORRUPTx1"), std::string::npos) << text;
}

TEST(FaultPlanTest, RandomSweepIsDeterministicInSeed) {
  const FaultPlan a = FaultPlan::RandomSweep(17, 16);
  const FaultPlan b = FaultPlan::RandomSweep(17, 16);
  for (int p = 0; p < 16; ++p) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      EXPECT_EQ(a.ActionFor(p, attempt), b.ActionFor(p, attempt));
    }
  }
}

TEST(FaultPlanTest, RandomSweepCoversAllKindsAcrossSeeds) {
  bool saw[5] = {false, false, false, false, false};
  for (uint64_t seed = 0; seed < 64; ++seed) {
    const FaultPlan plan = FaultPlan::RandomSweep(seed, 8);
    for (int p = 0; p < 8; ++p) {
      saw[static_cast<int>(plan.ActionFor(p, 0).kind)] = true;
    }
  }
  EXPECT_TRUE(saw[static_cast<int>(FaultKind::kNone)]);
  EXPECT_TRUE(saw[static_cast<int>(FaultKind::kFail)]);
  EXPECT_TRUE(saw[static_cast<int>(FaultKind::kSlow)]);
  EXPECT_TRUE(saw[static_cast<int>(FaultKind::kTruncate)]);
  EXPECT_TRUE(saw[static_cast<int>(FaultKind::kCorrupt)]);
}

TEST(FaultPlanTest, RandomSweepWithoutPermanentFaultsRecoversInThreeAttempts) {
  for (uint64_t seed = 0; seed < 64; ++seed) {
    const FaultPlan plan =
        FaultPlan::RandomSweep(seed, 8, /*allow_permanent=*/false);
    for (int p = 0; p < 8; ++p) {
      EXPECT_EQ(plan.ActionFor(p, 2).kind, FaultKind::kNone)
          << "seed " << seed << " partition " << p;
    }
  }
}

TEST(VirtualClockTest, SleepAdvancesInstantly) {
  VirtualClock clock(1000);
  EXPECT_EQ(clock.NowMillis(), 1000);
  clock.SleepMillis(250);
  EXPECT_EQ(clock.NowMillis(), 1250);
  clock.SleepMillis(0);
  clock.SleepMillis(-5);  // Negative sleeps are ignored.
  EXPECT_EQ(clock.NowMillis(), 1250);
}

TEST(SystemClockTest, IsMonotonic) {
  Clock& clock = SystemClock();
  const int64_t a = clock.NowMillis();
  const int64_t b = clock.NowMillis();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace ndv
