// BlockSampleColumn's single promise: for any block size, any range, and
// any storage backend, the reservoir it produces is bit-identical to
// feeding rows [begin, end) one by one through ReservoirSamplerL::Add.
// These tests pin that promise against the reference per-row loop.

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "sample/block_sampler.h"
#include "sample/samplers.h"
#include "storage/ndvpack.h"
#include "table/column.h"
#include "table/table.h"

namespace ndv {
namespace {

// The reference semantics: hash every row, Add every hash.
ReservoirSamplerL PerRowSample(const Column& column, int64_t begin,
                               int64_t end, int64_t capacity, Rng rng) {
  ReservoirSamplerL reservoir(capacity, rng);
  for (int64_t row = begin; row < end; ++row) {
    reservoir.Add(column.HashAt(row));
  }
  return reservoir;
}

void ExpectBlockMatchesPerRow(const Column& column, int64_t begin,
                              int64_t end, int64_t capacity, uint64_t seed,
                              int64_t block_rows) {
  SCOPED_TRACE("begin=" + std::to_string(begin) + " end=" +
               std::to_string(end) + " capacity=" + std::to_string(capacity) +
               " block_rows=" + std::to_string(block_rows));
  const ReservoirSamplerL expected =
      PerRowSample(column, begin, end, capacity, Rng(seed));
  BlockSampleOptions options;
  options.block_rows = block_rows;
  const ReservoirSamplerL actual =
      BlockSampleColumn(column, begin, end, capacity, Rng(seed), options);
  EXPECT_EQ(expected.items_seen(), actual.items_seen());
  EXPECT_EQ(expected.sample(), actual.sample());
}

std::unique_ptr<Int64Column> MakeInts(int64_t n, uint64_t seed) {
  std::vector<int64_t> values;
  values.reserve(static_cast<size_t>(n));
  Rng rng(seed);
  for (int64_t i = 0; i < n; ++i) {
    values.push_back(static_cast<int64_t>(rng.NextBounded(1000)));
  }
  return std::make_unique<Int64Column>(std::move(values));
}

TEST(BlockSamplerTest, MatchesPerRowAcrossBlockSizes) {
  const auto column = MakeInts(10000, 3);
  // block_rows = 1 degenerates to per-row; >= n is one giant block.
  for (const int64_t block_rows : {1, 3, 64, 4096, 20000}) {
    ExpectBlockMatchesPerRow(*column, 0, column->size(), 200, 11, block_rows);
  }
}

TEST(BlockSamplerTest, MatchesPerRowOnUnalignedRanges) {
  const auto column = MakeInts(10000, 5);
  // Partition-style sub-ranges whose begins straddle block boundaries.
  const struct { int64_t begin, end; } ranges[] = {
      {0, 10000}, {1, 9999}, {63, 8191}, {4095, 4097},
      {4096, 8192}, {2500, 7500}, {9000, 10000},
  };
  for (const auto& r : ranges) {
    for (const int64_t block_rows : {64, 4096}) {
      ExpectBlockMatchesPerRow(*column, r.begin, r.end, 100, 17, block_rows);
    }
  }
}

TEST(BlockSamplerTest, MatchesPerRowWhenCapacityCoversRange) {
  const auto column = MakeInts(500, 9);
  // capacity >= rows: the whole scan is fill phase (pure batch hashing).
  ExpectBlockMatchesPerRow(*column, 0, 500, 500, 23, 64);
  ExpectBlockMatchesPerRow(*column, 0, 500, 10000, 23, 64);
  ExpectBlockMatchesPerRow(*column, 100, 400, 300, 23, 64);
}

TEST(BlockSamplerTest, EmptyRangeYieldsEmptyReservoir) {
  const auto column = MakeInts(100, 1);
  const ReservoirSamplerL sampler =
      BlockSampleColumn(*column, 50, 50, 10, Rng(1));
  EXPECT_EQ(sampler.items_seen(), 0);
  EXPECT_TRUE(sampler.sample().empty());
}

TEST(BlockSamplerTest, AllColumnTypes) {
  std::vector<double> doubles;
  std::vector<std::string> strings;
  Rng rng(31);
  for (int64_t i = 0; i < 3000; ++i) {
    doubles.push_back(static_cast<double>(rng.NextBounded(77)) / 4.0);
    strings.push_back("k" + std::to_string(rng.NextBounded(123)));
  }
  const DoubleColumn dcol(std::move(doubles));
  const StringColumn scol(strings);
  for (const Column* column :
       std::initializer_list<const Column*>{&dcol, &scol}) {
    for (const int64_t block_rows : {1, 7, 256}) {
      ExpectBlockMatchesPerRow(*column, 0, column->size(), 64, 41,
                               block_rows);
      ExpectBlockMatchesPerRow(*column, 100, 2900, 64, 41, block_rows);
    }
  }
}

TEST(BlockSamplerTest, MappedColumnsEqualHeapColumns) {
  // The distributed workers' invariant: the same reservoir comes out of a
  // heap column and its mmap-format twin.
  Table heap;
  heap.AddColumn("i", MakeInts(5000, 13));
  const std::string bytes = SerializePack(heap);
  std::vector<uint64_t> aligned((bytes.size() + 7) / 8);
  std::memcpy(aligned.data(), bytes.data(), bytes.size());
  const auto view = ParsePack(
      {reinterpret_cast<const uint8_t*>(aligned.data()), bytes.size()});
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  const Table mapped = TableFromPack(*view, nullptr);

  for (const int64_t block_rows : {1, 64, 4096}) {
    BlockSampleOptions options;
    options.block_rows = block_rows;
    const ReservoirSamplerL from_heap = BlockSampleColumn(
        heap.column(0), 0, heap.NumRows(), 150, Rng(47), options);
    const ReservoirSamplerL from_mapped = BlockSampleColumn(
        mapped.column(0), 0, mapped.NumRows(), 150, Rng(47), options);
    EXPECT_EQ(from_heap.sample(), from_mapped.sample())
        << "block_rows=" << block_rows;
    // And both equal the reference loop over the heap column.
    const ReservoirSamplerL reference =
        PerRowSample(heap.column(0), 0, heap.NumRows(), 150, Rng(47));
    EXPECT_EQ(reference.sample(), from_mapped.sample());
  }
}

}  // namespace
}  // namespace ndv
