#include "common/random.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace ndv {
namespace {

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng rng(7);
  const uint64_t first = rng.NextU64();
  rng.NextU64();
  rng.Reseed(7);
  EXPECT_EQ(rng.NextU64(), first);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBoundedRespectsBound) {
  Rng rng(11);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(13);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.NextBounded(kBuckets)];
  }
  // Chi-squared with 9 dof; 99.9% critical value ~27.9. Use a loose 40.
  const double expected = static_cast<double>(kDraws) / kBuckets;
  double chi_sq = 0.0;
  for (int c : counts) {
    const double diff = c - expected;
    chi_sq += diff * diff / expected;
  }
  EXPECT_LT(chi_sq, 40.0);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(17);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All 7 values hit in 1000 draws.
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleIsRoughlyUniformOverPositions) {
  // Element 0 should land in each of 4 positions about equally often.
  Rng rng(23);
  constexpr int kTrials = 40000;
  std::map<int, int> position_counts;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<int> v = {0, 1, 2, 3};
    rng.Shuffle(v);
    for (int pos = 0; pos < 4; ++pos) {
      if (v[pos] == 0) ++position_counts[pos];
    }
  }
  for (const auto& [pos, count] : position_counts) {
    EXPECT_NEAR(count, kTrials / 4.0, kTrials * 0.02) << "pos=" << pos;
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextU64() == child.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64Test, KnownVector) {
  // Reference values from the SplitMix64 reference implementation with
  // state 0: first output is 0xE220A8397B1DCDAF.
  EXPECT_EQ(SplitMix64(0), 0xE220A8397B1DCDAFULL);
}

TEST(Hash64Test, ZeroIsNotFixedPoint) {
  EXPECT_NE(Hash64(0), 0ULL);
  EXPECT_NE(Hash64(1), Hash64(2));
}

TEST(Hash64Test, Deterministic) {
  EXPECT_EQ(Hash64(123456789), Hash64(123456789));
}

}  // namespace
}  // namespace ndv
