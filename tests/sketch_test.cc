#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "sketch/exact_counter.h"
#include "sketch/flajolet_martin.h"
#include "sketch/hyperloglog.h"
#include "sketch/linear_counting.h"

namespace ndv {
namespace {

// Feeds `distinct` distinct hashed values, each `copies` times.
void FeedDistinct(DistinctCounter& counter, int64_t distinct,
                  int64_t copies = 1, uint64_t salt = 0) {
  for (int64_t c = 0; c < copies; ++c) {
    for (int64_t i = 0; i < distinct; ++i) {
      counter.Add(Hash64(static_cast<uint64_t>(i) * 2654435761ULL + salt));
    }
  }
}

TEST(ExactCounterTest, CountsExactly) {
  ExactCounter counter;
  FeedDistinct(counter, 1234, 3);
  EXPECT_DOUBLE_EQ(counter.Estimate(), 1234.0);
  EXPECT_GT(counter.MemoryBytes(), 0);
}

TEST(ExactCounterTest, EmptyStream) {
  ExactCounter counter;
  EXPECT_DOUBLE_EQ(counter.Estimate(), 0.0);
}

TEST(LinearCountingTest, AccurateUnderLowLoad) {
  LinearCounting counter(1 << 16);
  FeedDistinct(counter, 10000, 2);
  EXPECT_NEAR(counter.Estimate(), 10000.0, 300.0);
}

TEST(LinearCountingTest, DuplicatesDoNotInflate) {
  LinearCounting a(1 << 12);
  LinearCounting b(1 << 12);
  FeedDistinct(a, 500, 1);
  FeedDistinct(b, 500, 50);
  EXPECT_DOUBLE_EQ(a.Estimate(), b.Estimate());
}

TEST(LinearCountingTest, SaturationReportsAsymptote) {
  LinearCounting counter(64);
  FeedDistinct(counter, 100000);
  EXPECT_EQ(counter.zero_bits(), 0);
  EXPECT_DOUBLE_EQ(counter.Estimate(), 64.0 * std::log(64.0));
}

TEST(LinearCountingTest, ZeroBitsTracksBitmap) {
  LinearCounting counter(128);
  EXPECT_EQ(counter.zero_bits(), 128);
  counter.Add(42);
  EXPECT_EQ(counter.zero_bits(), 127);
  counter.Add(42);  // Same bit.
  EXPECT_EQ(counter.zero_bits(), 127);
}

TEST(FlajoletMartinTest, BallparkAccuracy) {
  FlajoletMartin counter(256);
  FeedDistinct(counter, 50000, 2);
  // PCSA standard error ~0.78/sqrt(m) ~ 5%; allow 20%.
  EXPECT_NEAR(counter.Estimate(), 50000.0, 10000.0);
}

TEST(FlajoletMartinTest, InsensitiveToDuplication) {
  FlajoletMartin a(64);
  FlajoletMartin b(64);
  FeedDistinct(a, 2000, 1);
  FeedDistinct(b, 2000, 25);
  EXPECT_DOUBLE_EQ(a.Estimate(), b.Estimate());
}

TEST(HyperLogLogTest, WithinTheoreticalError) {
  HyperLogLog counter(12);
  FeedDistinct(counter, 100000, 2);
  const double tolerance = 4.0 * counter.StandardError() * 100000.0;
  EXPECT_NEAR(counter.Estimate(), 100000.0, tolerance);
}

TEST(HyperLogLogTest, SmallRangeCorrectionKicksIn) {
  HyperLogLog counter(12);
  FeedDistinct(counter, 100);
  EXPECT_NEAR(counter.Estimate(), 100.0, 10.0);
}

TEST(HyperLogLogTest, MergeEstimatesUnion) {
  HyperLogLog a(12);
  HyperLogLog b(12);
  FeedDistinct(a, 20000, 1, /*salt=*/0);
  FeedDistinct(b, 20000, 1, /*salt=*/1);  // Disjoint values.
  a.Merge(b);
  const double tolerance = 4.0 * a.StandardError() * 40000.0;
  EXPECT_NEAR(a.Estimate(), 40000.0, tolerance);
}

TEST(HyperLogLogTest, MergeWithSelfIsIdempotent) {
  HyperLogLog a(10);
  FeedDistinct(a, 5000);
  const double before = a.Estimate();
  HyperLogLog b = a;
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Estimate(), before);
}

TEST(HyperLogLogTest, RejectsMismatchedPrecisionMerge) {
  HyperLogLog a(10);
  HyperLogLog b(12);
  EXPECT_DEATH(a.Merge(b), "precision");
}

TEST(HyperLogLogTest, MemoryIsOneBytePerRegister) {
  EXPECT_EQ(HyperLogLog(12).MemoryBytes(), 4096);
  EXPECT_EQ(HyperLogLog(4).MemoryBytes(), 16);
}

TEST(KmvTest, ExactBelowK) {
  KMinimumValues counter(256);
  FeedDistinct(counter, 100, 5);
  EXPECT_DOUBLE_EQ(counter.Estimate(), 100.0);
}

TEST(KmvTest, AccurateAboveK) {
  KMinimumValues counter(1024);
  FeedDistinct(counter, 100000, 2);
  // Relative error ~1/sqrt(k-2) ~ 3%; allow 15%.
  EXPECT_NEAR(counter.Estimate(), 100000.0, 15000.0);
}

TEST(KmvTest, DuplicatesIgnored) {
  KMinimumValues a(64);
  KMinimumValues b(64);
  FeedDistinct(a, 1000, 1);
  FeedDistinct(b, 1000, 10);
  EXPECT_DOUBLE_EQ(a.Estimate(), b.Estimate());
}

TEST(MakeAllDistinctCountersTest, AllProduceEstimates) {
  auto counters = MakeAllDistinctCounters();
  EXPECT_EQ(counters.size(), 5u);
  for (auto& counter : counters) {
    FeedDistinct(*counter, 5000);
    EXPECT_GT(counter->Estimate(), 2000.0) << counter->name();
    EXPECT_LT(counter->Estimate(), 10000.0) << counter->name();
    EXPECT_GT(counter->MemoryBytes(), 0) << counter->name();
  }
}

}  // namespace
}  // namespace ndv
