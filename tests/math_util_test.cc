#include "common/math_util.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ndv {
namespace {

TEST(LogFactorialTest, SmallValuesExact) {
  EXPECT_DOUBLE_EQ(LogFactorial(0), 0.0);
  EXPECT_DOUBLE_EQ(LogFactorial(1), 0.0);
  EXPECT_NEAR(LogFactorial(2), std::log(2.0), 1e-12);
  EXPECT_NEAR(LogFactorial(5), std::log(120.0), 1e-12);
  EXPECT_NEAR(LogFactorial(10), std::log(3628800.0), 1e-9);
}

TEST(LogFactorialTest, LargeValuesMatchStirlingScale) {
  // ln(100!) = 363.739...
  EXPECT_NEAR(LogFactorial(100), 363.73937555556349, 1e-8);
}

TEST(LogBinomialTest, MatchesDirectComputation) {
  EXPECT_NEAR(LogBinomial(10, 3), std::log(120.0), 1e-10);
  EXPECT_NEAR(LogBinomial(52, 5), std::log(2598960.0), 1e-8);
  EXPECT_DOUBLE_EQ(LogBinomial(7, 0), 0.0);
  EXPECT_DOUBLE_EQ(LogBinomial(7, 7), 0.0);
}

TEST(LogBinomialTest, SymmetricInK) {
  EXPECT_NEAR(LogBinomial(30, 4), LogBinomial(30, 26), 1e-10);
}

TEST(PowOneMinusTest, MatchesPowForModerateInputs) {
  EXPECT_NEAR(PowOneMinus(0.3, 5.0), std::pow(0.7, 5.0), 1e-12);
  EXPECT_NEAR(PowOneMinus(0.5, 2.0), 0.25, 1e-12);
}

TEST(PowOneMinusTest, Boundaries) {
  EXPECT_DOUBLE_EQ(PowOneMinus(0.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(PowOneMinus(1.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(PowOneMinus(0.4, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(PowOneMinus(1.0, 0.0), 1.0);
}

TEST(PowOneMinusTest, StableForTinyPLargeR) {
  // (1 - 1e-12)^(1e9) = exp(-1e-3) to first order; naive pow would lose
  // precision here.
  const double expected = std::exp(1e9 * std::log1p(-1e-12));
  EXPECT_DOUBLE_EQ(PowOneMinus(1e-12, 1e9), expected);
  EXPECT_NEAR(PowOneMinus(1e-12, 1e9), std::exp(-1e-3), 1e-9);
}

TEST(LogPowOneMinusTest, MatchesLogOfPow) {
  EXPECT_NEAR(LogPowOneMinus(0.3, 5.0), 5.0 * std::log(0.7), 1e-12);
  EXPECT_EQ(LogPowOneMinus(1.0, 2.0), -INFINITY);
  EXPECT_DOUBLE_EQ(LogPowOneMinus(0.0, 7.0), 0.0);
}

TEST(ClampTest, Clamps) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(ApproxEqualTest, RelativeAndAbsolute) {
  EXPECT_TRUE(ApproxEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(ApproxEqual(1.0, 1.001));
  EXPECT_TRUE(ApproxEqual(1e12, 1e12 + 1.0));
  EXPECT_TRUE(ApproxEqual(0.0, 1e-12));
}

TEST(HypergeometricMissTest, MatchesDirectEnumeration) {
  // n=10 rows, value occupies t=3, sample r=2 without replacement:
  // P(miss) = C(7,2)/C(10,2) = 21/45.
  EXPECT_NEAR(HypergeometricMissProbability(10, 3, 2), 21.0 / 45.0, 1e-12);
}

TEST(HypergeometricMissTest, Boundaries) {
  EXPECT_DOUBLE_EQ(HypergeometricMissProbability(10, 0, 5), 1.0);
  EXPECT_DOUBLE_EQ(HypergeometricMissProbability(10, 3, 0), 1.0);
  // t > n - r: the sample cannot avoid the value.
  EXPECT_DOUBLE_EQ(HypergeometricMissProbability(10, 9, 2), 0.0);
  EXPECT_DOUBLE_EQ(HypergeometricMissProbability(10, 10, 1), 0.0);
}

TEST(HypergeometricSingletonTest, MatchesDirectEnumeration) {
  // n=10, t=3, r=2: P(exactly one of the 3 in sample)
  //   = 3 * C(7,1) / C(10,2) = 21/45.
  EXPECT_NEAR(HypergeometricSingletonProbability(10, 3, 2), 21.0 / 45.0,
              1e-12);
}

TEST(HypergeometricSingletonTest, SumOverOutcomesIsOne) {
  // For n=12, t=4, r=5: P(0 in sample) + sum_j P(exactly j) must be 1.
  // Check miss + singleton <= 1 and a direct three-term identity for t=1.
  const double miss = HypergeometricMissProbability(12, 1, 5);
  const double one = HypergeometricSingletonProbability(12, 1, 5);
  EXPECT_NEAR(miss + one, 1.0, 1e-12);
}

TEST(HypergeometricSingletonTest, ZeroCases) {
  EXPECT_DOUBLE_EQ(HypergeometricSingletonProbability(10, 0, 3), 0.0);
  // t - 1 copies cannot all be left out when t - 1 > n - r.
  EXPECT_DOUBLE_EQ(HypergeometricSingletonProbability(10, 10, 2), 0.0);
}

}  // namespace
}  // namespace ndv
