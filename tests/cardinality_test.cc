#include "catalog/cardinality.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace ndv {
namespace {

ColumnStats MakeStats(int64_t rows, double distinct) {
  ColumnStats stats;
  stats.table_rows = rows;
  stats.estimate = distinct;
  return stats;
}

TEST(EqualityCardinalityTest, RowsOverDistinct) {
  EXPECT_DOUBLE_EQ(EstimateEqualityCardinality(MakeStats(10000, 100.0)),
                   100.0);
  EXPECT_DOUBLE_EQ(EstimateEqualityCardinality(MakeStats(10000, 10000.0)),
                   1.0);
}

TEST(JoinCardinalityTest, TextbookFormula) {
  // |R|=1000 (D=100), |S|=5000 (D=250): 1000*5000/250.
  EXPECT_DOUBLE_EQ(EstimateJoinCardinality(MakeStats(1000, 100.0),
                                           MakeStats(5000, 250.0)),
                   20000.0);
}

TEST(JoinCardinalityTest, SymmetricInArguments) {
  const ColumnStats a = MakeStats(1000, 17.0);
  const ColumnStats b = MakeStats(300, 80.0);
  EXPECT_DOUBLE_EQ(EstimateJoinCardinality(a, b),
                   EstimateJoinCardinality(b, a));
}

TEST(JoinCardinalityTest, KeyForeignKeyCase) {
  // S.b is a key (D = |S|): every R row matches exactly one S row.
  EXPECT_DOUBLE_EQ(EstimateJoinCardinality(MakeStats(1000, 100.0),
                                           MakeStats(5000, 5000.0)),
                   1000.0);
}

TEST(GroupByCardinalityTest, ProductCappedAtRows) {
  const std::vector<ColumnStats> small = {MakeStats(10000, 10.0),
                                          MakeStats(10000, 7.0)};
  EXPECT_DOUBLE_EQ(EstimateGroupByCardinality(small), 70.0);
  const std::vector<ColumnStats> big = {MakeStats(10000, 500.0),
                                        MakeStats(10000, 400.0)};
  EXPECT_DOUBLE_EQ(EstimateGroupByCardinality(big), 10000.0);
}

TEST(GroupByCardinalityTest, SingleColumnIsItsDistinctCount) {
  const std::vector<ColumnStats> one = {MakeStats(10000, 42.0)};
  EXPECT_DOUBLE_EQ(EstimateGroupByCardinality(one), 42.0);
}

TEST(DistinctAfterFilterTest, BoundaryCases) {
  const ColumnStats stats = MakeStats(10000, 100.0);
  EXPECT_DOUBLE_EQ(EstimateDistinctAfterFilter(stats, 0.0), 0.0);
  EXPECT_NEAR(EstimateDistinctAfterFilter(stats, 1.0), 100.0, 1e-9);
}

TEST(DistinctAfterFilterTest, BallsAndBinsShape) {
  // 100 classes of 100 rows; selecting 1% of rows keeps a class with
  // probability 1 - 0.99^100 ~ 0.634.
  const ColumnStats stats = MakeStats(10000, 100.0);
  const double surviving = EstimateDistinctAfterFilter(stats, 0.01);
  EXPECT_NEAR(surviving, 100.0 * (1.0 - std::pow(0.99, 100.0)), 1e-9);
  // Monotone in selectivity.
  EXPECT_LT(EstimateDistinctAfterFilter(stats, 0.005), surviving);
}

TEST(DistinctAfterFilterTest, UniqueColumnScalesLinearly) {
  // D == n: every selected row is a new distinct value.
  const ColumnStats stats = MakeStats(10000, 10000.0);
  EXPECT_NEAR(EstimateDistinctAfterFilter(stats, 0.25), 2500.0, 1.0);
}

}  // namespace
}  // namespace ndv
