// Tests for the second wave of baseline estimators: ChaoLee2, the
// second-order Burnham-Overton jackknife, and the finite-population method
// of moments, plus the continuous hypergeometric helper they rely on.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "estimators/coverage.h"
#include "estimators/jackknife.h"
#include "estimators/method_of_moments.h"
#include "profile/frequency_profile.h"

namespace ndv {
namespace {

SampleSummary SmallSummary() {
  // n=100, f1=3, f2=1 -> r=5, d=4, q=0.05.
  return MakeSummary(100, std::vector<int64_t>{3, 1});
}

TEST(HypergeometricMissRealTest, MatchesIntegerVersion) {
  for (int64_t t : {1, 3, 7}) {
    for (int64_t r : {1, 2, 5}) {
      EXPECT_NEAR(HypergeometricMissProbabilityReal(10.0, static_cast<double>(t),
                                                    static_cast<double>(r)),
                  HypergeometricMissProbability(10, t, r), 1e-12)
          << "t=" << t << " r=" << r;
    }
  }
}

TEST(HypergeometricMissRealTest, ContinuousInterpolation) {
  // Monotone decreasing in t between the integer anchor points.
  const double at_2 = HypergeometricMissProbabilityReal(100.0, 2.0, 10.0);
  const double at_2_5 = HypergeometricMissProbabilityReal(100.0, 2.5, 10.0);
  const double at_3 = HypergeometricMissProbabilityReal(100.0, 3.0, 10.0);
  EXPECT_GT(at_2, at_2_5);
  EXPECT_GT(at_2_5, at_3);
}

TEST(HypergeometricMissRealTest, Boundaries) {
  EXPECT_DOUBLE_EQ(HypergeometricMissProbabilityReal(10.0, 0.0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(HypergeometricMissProbabilityReal(10.0, 3.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(HypergeometricMissProbabilityReal(10.0, 6.0, 5.0), 0.0);
}

TEST(ChaoLee2Test, AtLeastChaoLee1UnderSkew) {
  // The bias adjustment only inflates gamma^2, so CL2 >= CL1 before
  // clamping whenever there is repeat structure.
  std::vector<int64_t> f(30, 0);
  f[0] = 20;
  f[29] = 3;
  const SampleSummary summary = MakeSummary(100000, f);
  EXPECT_GE(ChaoLee2().Estimate(summary), ChaoLee().Estimate(summary));
}

TEST(ChaoLee2Test, EqualsChaoLeeWhenCvIsZero) {
  // gamma1^2 == 0 kills both corrections.
  EXPECT_DOUBLE_EQ(ChaoLee2().Estimate(SmallSummary()),
                   ChaoLee().Estimate(SmallSummary()));
}

TEST(ChaoLee2Test, AllSingletonsSaturates) {
  const SampleSummary summary = MakeSummary(500, std::vector<int64_t>{10});
  EXPECT_DOUBLE_EQ(ChaoLee2().Estimate(summary), 500.0);
}

TEST(BurnhamOverton2Test, MatchesFormula) {
  // d + f1(2r-3)/r - f2 (r-2)^2/(r(r-1))
  //   = 4 + 3*7/5 - 1*9/20 = 4 + 4.2 - 0.45.
  EXPECT_NEAR(BurnhamOverton2Jackknife().Estimate(SmallSummary()),
              4.0 + 4.2 - 0.45, 1e-12);
}

TEST(BurnhamOverton2Test, HigherThanFirstOrderOnSingletonRichSamples) {
  const SampleSummary summary =
      MakeSummary(10000, std::vector<int64_t>{50, 5, 2});
  EXPECT_GT(BurnhamOverton2Jackknife().Estimate(summary),
            BurnhamOvertonJackknife().Estimate(summary));
}

TEST(BurnhamOverton2Test, TinySampleFallsBackToD) {
  const SampleSummary summary = MakeSummary(10, std::vector<int64_t>{1});
  EXPECT_DOUBLE_EQ(BurnhamOverton2Jackknife().Estimate(summary), 1.0);
}

TEST(StabilizedJackknife1Test, NoTruncationMatchesUj1) {
  EXPECT_NEAR(StabilizedJackknife1(50).Estimate(SmallSummary()),
              UnsmoothedJackknife1().Estimate(SmallSummary()), 1e-12);
}

TEST(StabilizedJackknife1Test, RemovedClassesAddedBack) {
  // Five singletons plus an abundant class (100 observations): UJ1A drops
  // the abundant class, estimates the light population, adds 1 back.
  std::vector<int64_t> f(100, 0);
  f[0] = 5;
  f[99] = 1;
  const SampleSummary summary = MakeSummary(10000, f);
  const double estimate = StabilizedJackknife1(50).Estimate(summary);
  EXPECT_GE(estimate, 6.0);
  EXPECT_LE(estimate, 10000.0);
  // Unlike plain UJ1, the abundant class no longer dilutes the singleton
  // fraction, so UJ1A expands the light classes more aggressively.
  EXPECT_GE(estimate, UnsmoothedJackknife1().Estimate(summary));
}

TEST(StabilizedJackknife1Test, FullScanReturnsD) {
  const SampleSummary summary = MakeSummary(5, std::vector<int64_t>{1, 2});
  EXPECT_DOUBLE_EQ(StabilizedJackknife1().Estimate(summary), 3.0);
}

TEST(FiniteMethodOfMomentsTest, SolvesHypergeometricMomentEquation) {
  const SampleSummary summary =
      MakeSummary(10000, std::vector<int64_t>{2, 4});  // d=6, r=10
  const double estimate = FiniteMethodOfMoments().Estimate(summary);
  const double miss =
      HypergeometricMissProbabilityReal(10000.0, 10000.0 / estimate, 10.0);
  EXPECT_NEAR(estimate * (1.0 - miss), 6.0, 1e-5);
}

TEST(FiniteMethodOfMomentsTest, CloseToInfiniteVariantAtLowRates) {
  // At tiny q the hypergeometric and binomial models coincide.
  const SampleSummary summary =
      MakeSummary(1000000, std::vector<int64_t>{10, 20});
  EXPECT_NEAR(FiniteMethodOfMoments().Estimate(summary),
              MethodOfMoments().Estimate(summary),
              0.01 * MethodOfMoments().Estimate(summary));
}

TEST(FiniteMethodOfMomentsTest, TighterThanInfiniteAtHighRates) {
  // Half the table sampled: the finite version knows the unsampled half
  // can hide fewer classes. Both must bracket d and the sanity cap.
  const SampleSummary summary =
      MakeSummary(40, std::vector<int64_t>{4, 8});  // r=20, d=12
  const double finite = FiniteMethodOfMoments().Estimate(summary);
  const double infinite = MethodOfMoments().Estimate(summary);
  EXPECT_GE(finite, 12.0);
  EXPECT_LE(finite, 40.0);
  EXPECT_LE(finite, infinite + 1e-9);
}

TEST(FiniteMethodOfMomentsTest, AllDistinctSaturates) {
  const SampleSummary summary = MakeSummary(300, std::vector<int64_t>{12});
  EXPECT_DOUBLE_EQ(FiniteMethodOfMoments().Estimate(summary), 300.0);
}

TEST(FiniteMethodOfMomentsTest, FullScanReturnsD) {
  const SampleSummary summary = MakeSummary(6, std::vector<int64_t>{2, 2});
  EXPECT_DOUBLE_EQ(FiniteMethodOfMoments().Estimate(summary), 4.0);
}

}  // namespace
}  // namespace ndv
