#include "common/distributions.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ndv {
namespace {

TEST(RegularizedGammaTest, PPlusQIsOne) {
  for (double a : {0.5, 1.0, 2.5, 10.0, 100.0}) {
    for (double x : {0.1, 1.0, 5.0, 50.0, 200.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0,
                  1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(RegularizedGammaTest, KnownValues) {
  // P(1, x) = 1 - e^{-x}.
  EXPECT_NEAR(RegularizedGammaP(1.0, 2.0), 1.0 - std::exp(-2.0), 1e-12);
  // P(0.5, x) = erf(sqrt(x)).
  EXPECT_NEAR(RegularizedGammaP(0.5, 1.0), std::erf(1.0), 1e-10);
  EXPECT_DOUBLE_EQ(RegularizedGammaP(3.0, 0.0), 0.0);
}

TEST(ChiSquaredCdfTest, MatchesKnownQuantiles) {
  // Chi-squared with 1 dof: CDF(3.841) ~= 0.95.
  EXPECT_NEAR(ChiSquaredCdf(3.8414588, 1.0), 0.95, 1e-6);
  // 10 dof: CDF(18.307) ~= 0.95.
  EXPECT_NEAR(ChiSquaredCdf(18.3070381, 10.0), 0.95, 1e-6);
  // 2 dof is Exp(1/2): CDF(x) = 1 - e^{-x/2}.
  EXPECT_NEAR(ChiSquaredCdf(4.0, 2.0), 1.0 - std::exp(-2.0), 1e-12);
  EXPECT_DOUBLE_EQ(ChiSquaredCdf(-1.0, 5.0), 0.0);
}

TEST(ChiSquaredQuantileTest, RoundTripsThroughCdf) {
  for (double k : {1.0, 2.0, 5.0, 30.0, 999.0}) {
    for (double p : {0.01, 0.25, 0.5, 0.9, 0.975, 0.999}) {
      const double x = ChiSquaredQuantile(p, k);
      EXPECT_NEAR(ChiSquaredCdf(x, k), p, 1e-9)
          << "k=" << k << " p=" << p;
    }
  }
}

TEST(ChiSquaredQuantileTest, StandardTableValues) {
  EXPECT_NEAR(ChiSquaredQuantile(0.95, 1.0), 3.8414588, 1e-5);
  EXPECT_NEAR(ChiSquaredQuantile(0.95, 10.0), 18.3070381, 1e-5);
  EXPECT_NEAR(ChiSquaredQuantile(0.975, 5.0), 12.8325020, 1e-5);
}

TEST(NormalCdfTest, SymmetryAndKnownValues) {
  EXPECT_DOUBLE_EQ(NormalCdf(0.0), 0.5);
  EXPECT_NEAR(NormalCdf(1.959963985), 0.975, 1e-9);
  EXPECT_NEAR(NormalCdf(-1.959963985), 0.025, 1e-9);
  EXPECT_NEAR(NormalCdf(3.0) + NormalCdf(-3.0), 1.0, 1e-12);
}

TEST(NormalQuantileTest, RoundTripsThroughCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-12) << "p=" << p;
  }
}

TEST(NormalQuantileTest, KnownValues) {
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963985, 1e-8);
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(NormalQuantile(0.841344746), 1.0, 1e-7);
}

TEST(NormalQuantileTest, TailsAreFiniteAndMonotone) {
  const double far_left = NormalQuantile(1e-12);
  const double far_right = NormalQuantile(1.0 - 1e-12);
  EXPECT_TRUE(std::isfinite(far_left));
  EXPECT_TRUE(std::isfinite(far_right));
  EXPECT_LT(far_left, -6.0);
  EXPECT_GT(far_right, 6.0);
}

}  // namespace
}  // namespace ndv
