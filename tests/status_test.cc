#include "common/status.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace ndv {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = DataLossError("partition %d lost %lld rows", 3,
                                      static_cast<long long>(125000));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(status.message(), "partition 3 lost 125000 rows");
  EXPECT_EQ(status.ToString(), "DATA_LOSS: partition 3 lost 125000 rows");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kFailedPrecondition, StatusCode::kNotFound,
        StatusCode::kDataLoss, StatusCode::kDeadlineExceeded,
        StatusCode::kUnavailable, StatusCode::kInternal}) {
    EXPECT_NE(StatusCodeName(code), "UNKNOWN");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(UnavailableError("x"), UnavailableError("x"));
  EXPECT_NE(UnavailableError("x"), UnavailableError("y"));
  EXPECT_NE(UnavailableError("x"), DataLossError("x"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = NotFoundError("no column '%s'", "zip");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.status().message(), "no column 'zip'");
}

TEST(StatusOrTest, MoveOnlyValueWorks) {
  StatusOr<std::vector<int>> result = std::vector<int>{1, 2, 3};
  ASSERT_TRUE(result.ok());
  const std::vector<int> taken = *std::move(result);
  EXPECT_EQ(taken.size(), 3u);
}

TEST(StatusOrTest, ArrowOperatorReachesMembers) {
  StatusOr<std::string> result = std::string("hello");
  EXPECT_EQ(result->size(), 5u);
}

TEST(StatusOrTest, ToOptionalBridgesLegacyCallers) {
  EXPECT_EQ(StatusOr<int>(7).ToOptional(), std::optional<int>(7));
  EXPECT_EQ(StatusOr<int>(InternalError("boom")).ToOptional(), std::nullopt);
}

TEST(StatusOrTest, ValueOnErrorAborts) {
  StatusOr<int> result = UnavailableError("worker down");
  EXPECT_DEATH((void)result.value(), "worker down");
}

TEST(StatusOrTest, ReturnIfErrorPropagates) {
  auto inner = [](bool fail) -> Status {
    if (fail) return DeadlineExceededError("too slow");
    return Status::Ok();
  };
  auto outer = [&](bool fail) -> Status {
    NDV_RETURN_IF_ERROR(inner(fail));
    return Status::Ok();
  };
  EXPECT_TRUE(outer(false).ok());
  EXPECT_EQ(outer(true).code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace ndv
