// End-to-end checks mirroring the paper's headline experimental claims at
// test-friendly scale: datagen -> table -> sampling -> estimation ->
// aggregation, compared against exact distinct counts.

#include <memory>

#include <gtest/gtest.h>

#include "core/adaptive_estimator.h"
#include "core/all_estimators.h"
#include "core/gee.h"
#include "core/hybgee.h"
#include "datagen/real_world_like.h"
#include "datagen/zipf.h"
#include "estimators/hybrid.h"
#include "harness/runner.h"
#include "table/table.h"

namespace ndv {
namespace {

std::unique_ptr<Int64Column> MakeColumn(int64_t rows, double z, int64_t dup,
                                        uint64_t seed = 42) {
  ZipfColumnOptions options;
  options.rows = rows;
  options.z = z;
  options.dup_factor = dup;
  options.seed = seed;
  return MakeZipfColumn(options);
}

EstimatorAggregate RunOne(const Column& column, const Estimator& estimator,
                       double fraction, int64_t trials = 10,
                       uint64_t seed = 7) {
  RunOptions options;
  options.trials = trials;
  options.seed = seed;
  return RunTrials(column, ExactDistinctHashSet(column), fraction, estimator,
                   options);
}

TEST(IntegrationTest, HybGeeMatchesHybSkewOnLowSkew) {
  // Paper Fig. 1: on Z=0 both hybrids take the jackknife branch.
  const auto column = MakeColumn(100000, 0.0, 10);
  const auto hybgee = RunOne(*column, HybGee(), 0.01);
  const auto hybskew = RunOne(*column, HybSkew(), 0.01);
  EXPECT_NEAR(hybgee.mean_estimate, hybskew.mean_estimate,
              0.01 * hybskew.mean_estimate);
}

TEST(IntegrationTest, HybGeeBeatsHybSkewOnHighSkew) {
  // Paper Fig. 2: on Z=2 HYBGEE (via GEE) beats HYBSKEW (via Shlosser).
  const auto column = MakeColumn(100000, 2.0, 10);
  const auto hybgee = RunOne(*column, HybGee(), 0.008);
  const auto hybskew = RunOne(*column, HybSkew(), 0.008);
  EXPECT_LE(hybgee.mean_ratio_error, hybskew.mean_ratio_error * 1.05);
}

TEST(IntegrationTest, GeeErrsOnLowSkewHighCardinality) {
  // The paper's documented GEE weakness: low skew with a large number of
  // distinct values at a low sampling rate (the Fig. 1 regime, scaled:
  // dup=100, rate 0.2%). GEE's fixed sqrt(n/r) coefficient misses badly.
  const auto column = MakeColumn(100000, 0.0, 100);  // D = 1000
  const auto gee = RunOne(*column, Gee(), 0.002);
  EXPECT_GT(gee.mean_ratio_error, 2.0);
}

TEST(IntegrationTest, AeBeatsGeeOnLowSkew) {
  // AE adapts the f1 coefficient and recovers in the same regime.
  const auto column = MakeColumn(100000, 0.0, 100);
  const auto ae = RunOne(*column, AdaptiveEstimator(), 0.002);
  const auto gee = RunOne(*column, Gee(), 0.002);
  EXPECT_LT(ae.mean_ratio_error, gee.mean_ratio_error);
  EXPECT_LT(ae.mean_ratio_error, 1.5);
}

TEST(IntegrationTest, GeeBeatsShlosserOnHighSkew) {
  // Section 5.1: "In the case of high-skew synthetic data ... GEE
  // outperforms the Shlosser Estimator."
  const auto column = MakeColumn(100000, 2.0, 10);
  const auto gee = RunOne(*column, Gee(), 0.008);
  const auto shlosser =
      RunOne(*column, *MakeEstimatorByName("Shlosser"), 0.008);
  EXPECT_LE(gee.mean_ratio_error, shlosser.mean_ratio_error);
}

TEST(IntegrationTest, LargeSamplesConvergeToTruth) {
  // Error at a 50% sample must be near 1 for the paper's estimators. (The
  // paper notes error is not always monotone in r for mid-range rates —
  // bias direction can flip — so we assert convergence, not monotonicity.)
  const auto column = MakeColumn(100000, 1.0, 10);
  for (const char* name : {"GEE", "AE", "HYBGEE"}) {
    const auto estimator = MakeEstimatorByName(name);
    const auto fine = RunOne(*column, *estimator, 0.5);
    EXPECT_LE(fine.mean_ratio_error, 1.05) << name;
  }
}

TEST(IntegrationTest, PaperEstimatorsReasonableOnRealWorldLikeData) {
  // Figs. 11-16 shape: on real-data-like columns, the paper's estimators
  // achieve small errors at a 5% sample.
  const Table census = MakeCensusLikeScaled(10000);
  auto estimators = MakePaperComparisonEstimators();
  RunOptions options;
  options.trials = 3;
  const auto results = RunTableSweep(census, {0.05}, estimators, options);
  for (const auto& aggregate : results) {
    EXPECT_LE(aggregate.mean_ratio_error, 3.0) << aggregate.estimator;
  }
}

TEST(IntegrationTest, BoundedScaleupKeepsErrorFlatForGee) {
  // Fig. 9 shape: Zipf Z=2 base of 1000 rows (D fixed), n grows 10x by
  // duplication, fixed 5000-row sample. Every class stays abundant in the
  // sample, so GEE's error stays ~1 regardless of n.
  const auto small = MakeColumn(50000, 2.0, 50);
  const auto large = MakeColumn(500000, 2.0, 500);
  ASSERT_EQ(ExactDistinctHashSet(*small), ExactDistinctHashSet(*large));
  RunOptions options;
  options.trials = 10;
  const auto gee = MakeEstimatorByName("GEE");
  const auto error_small = RunTrials(*small, ExactDistinctHashSet(*small),
                                     5000.0 / 50000, *gee, options);
  const auto error_large = RunTrials(*large, ExactDistinctHashSet(*large),
                                     5000.0 / 500000, *gee, options);
  EXPECT_LE(error_small.mean_ratio_error, 1.3);
  EXPECT_LE(error_large.mean_ratio_error, 1.3);
}

TEST(IntegrationTest, HybVarGrowsLinearlyInBoundedScaleup) {
  // Fig. 9's headline: HYBVAR's duplication-blind branch overestimates by
  // a factor that grows with n while everything else stays flat. Reduced
  // scale: base 1000 Zipf-2 rows, n in {50K, 200K}, fixed 5000-row sample.
  RunOptions options;
  options.trials = 5;
  const auto hybvar = MakeEstimatorByName("HYBVAR");
  const auto hybgee = MakeEstimatorByName("HYBGEE");
  const auto small = MakeColumn(50000, 2.0, 50);
  const auto large = MakeColumn(200000, 2.0, 200);
  const auto hv_small = RunTrials(*small, ExactDistinctHashSet(*small),
                                  5000.0 / 50000, *hybvar, options);
  const auto hv_large = RunTrials(*large, ExactDistinctHashSet(*large),
                                  5000.0 / 200000, *hybvar, options);
  const auto hg_large = RunTrials(*large, ExactDistinctHashSet(*large),
                                  5000.0 / 200000, *hybgee, options);
  EXPECT_GT(hv_large.mean_ratio_error, 1.4 * hv_small.mean_ratio_error);
  EXPECT_GT(hv_large.mean_ratio_error, 2.5);  // Clearly wrong at large n.
  EXPECT_LE(hg_large.mean_ratio_error, 1.3);  // HYBGEE stays flat.
}

TEST(IntegrationTest, HybSkewVarianceWorstOnHighSkew) {
  // Figs. 3-4's claim: HYBSKEW has the highest variance among the paper
  // hybrids on high-skew data (branch flipping).
  const auto column = MakeColumn(200000, 2.0, 100);
  const int64_t actual = ExactDistinctHashSet(*column);
  RunOptions options;
  options.trials = 10;
  const auto hybskew = RunTrials(*column, actual, 0.004,
                                 *MakeEstimatorByName("HYBSKEW"), options);
  const auto ae = RunTrials(*column, actual, 0.004,
                            *MakeEstimatorByName("AE"), options);
  const auto duj2a = RunTrials(*column, actual, 0.004,
                               *MakeEstimatorByName("DUJ2A"), options);
  EXPECT_GT(hybskew.stddev_fraction, ae.stddev_fraction);
  EXPECT_GT(hybskew.stddev_fraction, duj2a.stddev_fraction);
}

TEST(IntegrationTest, SampleDistinctNeverExceedsActual) {
  const auto column = MakeColumn(50000, 1.0, 5);
  const int64_t actual = ExactDistinctHashSet(*column);
  Rng rng(3);
  for (double fraction : {0.01, 0.1, 0.5}) {
    const SampleSummary summary =
        SampleColumnFraction(*column, fraction, rng);
    EXPECT_LE(summary.d(), actual);
  }
}

}  // namespace
}  // namespace ndv
