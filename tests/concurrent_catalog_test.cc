#include "catalog/concurrent_catalog.h"

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ndv {
namespace {

// Every entry of a published generation is stamped with that generation's
// number, so a reader can detect a torn catalog (entries from two different
// publications) with plain equality checks.
ColumnStats StampedStats(const std::string& name, uint64_t stamp) {
  ColumnStats stats;
  stats.column_name = name;
  stats.table_rows = 10000;
  stats.sample_rows = 100;
  stats.sample_distinct = 80;
  stats.estimate = static_cast<double>(stamp);
  stats.lower = static_cast<double>(stamp);
  stats.upper = static_cast<double>(stamp);
  stats.method = "AE";
  return stats;
}

StatsCatalog StampedCatalog(int columns, uint64_t stamp) {
  StatsCatalog catalog;
  for (int c = 0; c < columns; ++c) {
    catalog.Put(StampedStats("col_" + std::to_string(c), stamp));
  }
  return catalog;
}

TEST(ConcurrentCatalogTest, StartsEmptyAtEpochZero) {
  ConcurrentStatsCatalog catalog;
  EXPECT_EQ(catalog.epoch(), 0u);
  EXPECT_TRUE(catalog.Snapshot()->catalog.entries().empty());
  EXPECT_FALSE(catalog.Find("anything").has_value());
}

TEST(ConcurrentCatalogTest, InitialCatalogPublishesAsEpochOne) {
  ConcurrentStatsCatalog catalog(StampedCatalog(3, 1));
  EXPECT_EQ(catalog.epoch(), 1u);
  const auto found = catalog.Find("col_0");
  ASSERT_TRUE(found.has_value());
  EXPECT_DOUBLE_EQ(found->estimate, 1.0);
}

TEST(ConcurrentCatalogTest, WritersAdvanceTheEpoch) {
  ConcurrentStatsCatalog catalog;
  EXPECT_EQ(catalog.Put(StampedStats("a", 7)), 1u);
  EXPECT_EQ(catalog.Publish(StampedCatalog(2, 9)), 2u);
  EXPECT_EQ(catalog.Update([](StatsCatalog& c) {
    c.Put(StampedStats("extra", 11));
  }),
            3u);
  EXPECT_EQ(catalog.epoch(), 3u);
  EXPECT_TRUE(catalog.Find("extra").has_value());
  // Publish replaced the epoch-1 contents wholesale.
  EXPECT_FALSE(catalog.Find("a").has_value());
}

TEST(ConcurrentCatalogTest, SnapshotIsImmutableUnderLaterWrites) {
  ConcurrentStatsCatalog catalog(StampedCatalog(2, 1));
  const auto before = catalog.Snapshot();
  catalog.Publish(StampedCatalog(5, 2));
  // The held generation still shows exactly what was published as epoch 1.
  EXPECT_EQ(before->epoch, 1u);
  EXPECT_EQ(before->catalog.entries().size(), 2u);
  EXPECT_DOUBLE_EQ(before->catalog.Find("col_0")->estimate, 1.0);
  // And the live view moved on.
  EXPECT_EQ(catalog.Snapshot()->epoch, 2u);
  EXPECT_EQ(catalog.Snapshot()->catalog.entries().size(), 5u);
}

// The TSan-facing test of the publication model (DESIGN.md §13): N reader
// threads hammer Snapshot()/Find() while a writer publishes stamped
// generations. Readers assert that every observed generation is internally
// consistent — all entries carry the same stamp and the stamp matches the
// epoch — which fails if publication ever exposes a half-built catalog.
TEST(ConcurrentCatalogTest, ReadersNeverObserveTornEpochs) {
  constexpr int kColumns = 8;
  constexpr int kReaders = 4;
  constexpr uint64_t kGenerations = 200;

  ConcurrentStatsCatalog catalog(StampedCatalog(kColumns, 1));
  std::atomic<bool> stop{false};
  std::atomic<int64_t> reads{0};
  std::vector<std::thread> readers;
  std::atomic<bool> torn{false};
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const auto snapshot = catalog.Snapshot();
        // Epochs move forward only.
        if (snapshot->epoch < last_epoch) torn.store(true);
        last_epoch = snapshot->epoch;
        if (snapshot->catalog.entries().size() !=
            static_cast<size_t>(kColumns)) {
          torn.store(true);
        }
        for (const ColumnStats& stats : snapshot->catalog.entries()) {
          // Same-generation invariant: every entry stamped with the epoch.
          if (stats.estimate != static_cast<double>(snapshot->epoch)) {
            torn.store(true);
          }
        }
        // Find must agree with the snapshot taken around it: it returns a
        // value from SOME complete generation.
        const auto found = catalog.Find("col_3");
        if (!found.has_value()) torn.store(true);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Publish at least kGenerations, and keep publishing until the readers
  // have demonstrably overlapped with the writer — on a single-core
  // machine the writer can otherwise finish before any reader runs.
  uint64_t generation = 1;
  while (generation < kGenerations ||
         reads.load(std::memory_order_relaxed) <
             static_cast<int64_t>(kReaders) * 25) {
    ++generation;
    const uint64_t epoch =
        catalog.Publish(StampedCatalog(kColumns, generation));
    ASSERT_EQ(epoch, generation);
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  EXPECT_FALSE(torn.load()) << "a reader observed a torn generation";
  EXPECT_GE(reads.load(), static_cast<int64_t>(kReaders) * 25);
  EXPECT_EQ(catalog.epoch(), generation);
}

// Readers must not block while a writer prepares a generation: Update's
// mutate callback runs outside the snapshot lock, so snapshots taken while
// the callback is deliberately parked still complete.
TEST(ConcurrentCatalogTest, ReadersProgressWhileWriterIsBusy) {
  ConcurrentStatsCatalog catalog(StampedCatalog(2, 1));

  std::atomic<bool> writer_entered{false};
  std::atomic<bool> release_writer{false};
  std::thread writer([&] {
    catalog.Update([&](StatsCatalog& c) {
      writer_entered.store(true, std::memory_order_release);
      // Park mid-mutation; a blocked read side would deadlock this test.
      while (!release_writer.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      c.Put(StampedStats("late", 2));
    });
  });

  while (!writer_entered.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  // The writer is parked inside its copy-mutate step. Reads still work and
  // still see the previous complete generation.
  const auto snapshot = catalog.Snapshot();
  EXPECT_EQ(snapshot->epoch, 1u);
  EXPECT_EQ(snapshot->catalog.entries().size(), 2u);
  EXPECT_TRUE(catalog.Find("col_1").has_value());

  release_writer.store(true, std::memory_order_release);
  writer.join();
  EXPECT_EQ(catalog.epoch(), 2u);
  EXPECT_TRUE(catalog.Find("late").has_value());
}

// Concurrent Put writers: last write wins per column, epochs are unique,
// and the final generation holds every writer's column exactly once.
TEST(ConcurrentCatalogTest, ConcurrentPutsAllLand) {
  constexpr int kWriters = 4;
  constexpr int kPutsPerWriter = 50;
  ConcurrentStatsCatalog catalog;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&catalog, w] {
      for (int i = 0; i < kPutsPerWriter; ++i) {
        catalog.Put(StampedStats("writer_" + std::to_string(w),
                                 static_cast<uint64_t>(i + 1)));
      }
    });
  }
  for (std::thread& writer : writers) writer.join();

  const auto snapshot = catalog.Snapshot();
  EXPECT_EQ(snapshot->epoch,
            static_cast<uint64_t>(kWriters * kPutsPerWriter));
  ASSERT_EQ(snapshot->catalog.entries().size(),
            static_cast<size_t>(kWriters));
  for (int w = 0; w < kWriters; ++w) {
    const auto found =
        snapshot->catalog.Find("writer_" + std::to_string(w));
    ASSERT_TRUE(found.has_value());
    EXPECT_DOUBLE_EQ(found->estimate, kPutsPerWriter);
  }
}

TEST(ConcurrentCatalogTest, PublishAtResumesTheDurableEpochSequence) {
  // The durable recovery path: a restarted process re-enters the epoch
  // sequence where the WAL left it instead of restarting from 1.
  ConcurrentStatsCatalog catalog(StampedCatalog(2, 5), /*epoch=*/5);
  EXPECT_EQ(catalog.epoch(), 5u);
  EXPECT_EQ(catalog.Snapshot()->epoch, 5u);

  EXPECT_EQ(catalog.PublishAt(StampedCatalog(3, 9), 9), 9u);
  EXPECT_EQ(catalog.epoch(), 9u);
  EXPECT_EQ(catalog.Snapshot()->catalog.entries().size(), 3u);
  // Implicit writers continue from the explicit epoch.
  EXPECT_EQ(catalog.Put(StampedStats("next", 10)), 10u);
}

TEST(ConcurrentCatalogDeathTest, PublishAtRejectsNonMonotonicEpochs) {
  // An epoch the WAL has already journaled must never be reissued for
  // different contents: going backwards is a programming error, not a
  // recoverable condition.
  ConcurrentStatsCatalog catalog(StampedCatalog(1, 3), /*epoch=*/3);
  EXPECT_DEATH(catalog.PublishAt(StampedCatalog(1, 3), 3), "NDV_CHECK");
  EXPECT_DEATH(catalog.PublishAt(StampedCatalog(1, 2), 2), "NDV_CHECK");
}

// Epoch-churn stress (runs under TSan in CI): a writer churns generations
// as fast as it can through BOTH copy-on-write verbs (Put and Update)
// while readers hammer the catalog and pin snapshots. Invariants:
//   - in every observed generation, the "counter" entry's stamp equals
//     the generation's epoch (a half-applied write would break this);
//   - pinned generations are immutable: what a reader saw at pin time is
//     byte-for-byte what it holds after the churn ends.
TEST(ConcurrentCatalogTest, EpochChurnKeepsGenerationsConsistent) {
  constexpr int kReaders = 4;
  constexpr uint64_t kGenerations = 400;

  StatsCatalog initial;
  initial.Put(StampedStats("counter", 1));
  ConcurrentStatsCatalog catalog(std::move(initial));

  struct Pinned {
    std::shared_ptr<const CatalogEpoch> generation;
    uint64_t epoch;
    std::string serialized;
  };

  std::atomic<bool> stop{false};
  std::atomic<bool> broken{false};
  std::atomic<int64_t> reads{0};
  std::vector<std::vector<Pinned>> pinned(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      uint64_t iteration = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const auto snapshot = catalog.Snapshot();
        const auto counter = snapshot->catalog.Find("counter");
        if (!counter.has_value() ||
            counter->estimate != static_cast<double>(snapshot->epoch)) {
          broken.store(true);
        }
        if (++iteration % 16 == 0 && pinned[r].size() < 64) {
          pinned[r].push_back({snapshot, snapshot->epoch,
                               snapshot->catalog.Serialize()});
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Alternate the two copy-on-write verbs; with a single writer both must
  // produce strictly sequential epochs.
  uint64_t generation = 1;
  while (generation < kGenerations ||
         reads.load(std::memory_order_relaxed) <
             static_cast<int64_t>(kReaders) * 25) {
    ++generation;
    const uint64_t stamp = generation;
    const uint64_t epoch =
        stamp % 2 == 0
            ? catalog.Put(StampedStats("counter", stamp))
            : catalog.Update([stamp](StatsCatalog& c) {
                c.Put(StampedStats("counter", stamp));
              });
    ASSERT_EQ(epoch, generation);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  EXPECT_FALSE(broken.load()) << "a reader observed a torn generation";
  // Pinned generations never changed under the churn behind them.
  int64_t checked = 0;
  for (const auto& reader_pins : pinned) {
    for (const Pinned& pin : reader_pins) {
      EXPECT_EQ(pin.generation->epoch, pin.epoch);
      EXPECT_EQ(pin.generation->catalog.Serialize(), pin.serialized);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0);
  EXPECT_EQ(catalog.epoch(), generation);
}

}  // namespace
}  // namespace ndv
