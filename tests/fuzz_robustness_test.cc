// Randomized robustness sweep: thousands of randomly generated frequency
// profiles thrown at every estimator, the AE solver, the skew statistics,
// and the GEE bounds. Nothing may crash, return NaN/inf, or violate the
// sanity interval — regardless of how pathological the profile is.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/all_estimators.h"
#include "catalog/stats_catalog.h"
#include "core/bootstrap_interval.h"
#include "core/gee.h"
#include "profile/profile_io.h"
#include "profile/skew_statistics.h"

namespace ndv {
namespace {

// Draws a random but valid SampleSummary: random class counts with wildly
// varying shapes (all-singletons, one monster, geometric tails, ...).
SampleSummary RandomSummary(Rng& rng) {
  const int shape = static_cast<int>(rng.NextBounded(5));
  std::vector<int64_t> counts;
  const int64_t classes = 1 + static_cast<int64_t>(rng.NextBounded(200));
  for (int64_t c = 0; c < classes; ++c) {
    int64_t count = 1;
    switch (shape) {
      case 0:  // All singletons.
        count = 1;
        break;
      case 1:  // Uniform small counts.
        count = 1 + static_cast<int64_t>(rng.NextBounded(5));
        break;
      case 2:  // Geometric tail.
        count = 1;
        while (rng.NextDouble() < 0.7 && count < 4096) count *= 2;
        break;
      case 3:  // One monster class among singletons.
        count = (c == 0) ? 1 + static_cast<int64_t>(rng.NextBounded(100000))
                         : 1;
        break;
      default:  // Random heavy counts.
        count = 1 + static_cast<int64_t>(rng.NextBounded(1000));
        break;
    }
    counts.push_back(count);
  }
  SampleSummary summary;
  summary.freq = FrequencyProfile::FromClassCounts(counts);
  summary.sample_rows = summary.freq.TotalCount();
  // Table between the sample size and 10000x it.
  const int64_t factor = 1 + static_cast<int64_t>(rng.NextBounded(10000));
  summary.table_rows = summary.sample_rows * factor;
  summary.distinct_rows = rng.NextBounded(2) == 0;
  summary.Validate();
  return summary;
}

TEST(FuzzRobustnessTest, AllEstimatorsSurviveRandomProfiles) {
  const auto estimators = MakeAllEstimators();
  Rng rng(20260707);
  constexpr int kRounds = 400;
  for (int round = 0; round < kRounds; ++round) {
    const SampleSummary summary = RandomSummary(rng);
    const double d = static_cast<double>(summary.d());
    const double n = static_cast<double>(summary.n());
    for (const auto& estimator : estimators) {
      const double estimate = estimator->Estimate(summary);
      ASSERT_TRUE(std::isfinite(estimate))
          << estimator->name() << " on " << summary.freq.ToString();
      ASSERT_GE(estimate, d) << estimator->name();
      ASSERT_LE(estimate, n) << estimator->name();
    }
  }
}

TEST(FuzzRobustnessTest, GeeBoundsAlwaysOrdered) {
  Rng rng(99887766);
  for (int round = 0; round < 1000; ++round) {
    const SampleSummary summary = RandomSummary(rng);
    const GeeBounds bounds = ComputeGeeBounds(summary);
    ASSERT_LE(bounds.lower, bounds.estimate);
    ASSERT_LE(bounds.estimate, bounds.upper);
    ASSERT_TRUE(std::isfinite(bounds.upper));
  }
}

TEST(FuzzRobustnessTest, SkewStatisticsAlwaysFinite) {
  Rng rng(555);
  for (int round = 0; round < 1000; ++round) {
    const SampleSummary summary = RandomSummary(rng);
    const SkewTestResult skew = TestSkew(summary.freq);
    ASSERT_TRUE(std::isfinite(skew.statistic));
    ASSERT_GE(skew.statistic, -1e-9);
    const double cv =
        EstimatedSquaredCV(summary, 1.0 + static_cast<double>(summary.d()));
    ASSERT_TRUE(std::isfinite(cv));
    ASSERT_GE(cv, 0.0);
  }
}

TEST(FuzzRobustnessTest, SummarySerializationRoundTripsRandomProfiles) {
  Rng rng(424242);
  for (int round = 0; round < 500; ++round) {
    const SampleSummary summary = RandomSummary(rng);
    const auto parsed = DeserializeSummary(SerializeSummary(summary));
    ASSERT_TRUE(parsed.has_value());
    ASSERT_EQ(parsed->freq, summary.freq);
    ASSERT_EQ(parsed->table_rows, summary.table_rows);
    ASSERT_EQ(parsed->distinct_rows, summary.distinct_rows);
  }
}

TEST(FuzzRobustnessTest, DeserializerSurvivesGarbage) {
  // Random byte soup must never crash the parser (nullopt is fine).
  Rng rng(13131313);
  for (int round = 0; round < 2000; ++round) {
    std::string garbage;
    const int len = static_cast<int>(rng.NextBounded(120));
    for (int i = 0; i < len; ++i) {
      garbage += static_cast<char>(rng.NextBounded(256));
    }
    (void)DeserializeSummary(garbage);
    (void)StatsCatalog::Deserialize(garbage);
    // Prefix corruption of a valid document.
    std::string doc = SerializeSummary(RandomSummary(rng));
    if (!doc.empty()) {
      doc[rng.NextBounded(doc.size())] =
          static_cast<char>(rng.NextBounded(256));
      (void)DeserializeSummary(doc);
    }
  }
}

TEST(FuzzRobustnessTest, BootstrapSurvivesRandomProfiles) {
  Rng rng(777);
  const auto estimator = MakeEstimatorByName("GEE");
  for (int round = 0; round < 50; ++round) {
    const SampleSummary summary = RandomSummary(rng);
    BootstrapOptions options;
    options.replicates = 20;
    options.seed = static_cast<uint64_t>(round);
    const BootstrapInterval interval =
        ComputeBootstrapInterval(*estimator, summary, options);
    ASSERT_TRUE(std::isfinite(interval.lower));
    ASSERT_TRUE(std::isfinite(interval.upper));
    ASSERT_LE(interval.lower, interval.upper + 1e-9);
  }
}

}  // namespace
}  // namespace ndv
