#include "catalog/stats_catalog.h"

#include <gtest/gtest.h>

#include "datagen/real_world_like.h"
#include "datagen/zipf.h"

namespace ndv {
namespace {

ColumnStats MakeStats(std::string name, double estimate = 100.0) {
  ColumnStats stats;
  stats.column_name = std::move(name);
  stats.table_rows = 10000;
  stats.sample_rows = 100;
  stats.sample_distinct = 80;
  stats.estimate = estimate;
  stats.lower = 80.0;
  stats.upper = 8000.0;
  stats.method = "AE";
  return stats;
}

TEST(StatsCatalogTest, PutAndFind) {
  StatsCatalog catalog;
  catalog.Put(MakeStats("a"));
  catalog.Put(MakeStats("b", 55.0));
  ASSERT_NE(catalog.Find("a"), nullptr);
  ASSERT_NE(catalog.Find("b"), nullptr);
  EXPECT_EQ(catalog.Find("missing"), nullptr);
  EXPECT_DOUBLE_EQ(catalog.Find("b")->estimate, 55.0);
}

TEST(StatsCatalogTest, PutReplacesExistingEntry) {
  StatsCatalog catalog;
  catalog.Put(MakeStats("col", 10.0));
  catalog.Put(MakeStats("col", 20.0));
  EXPECT_EQ(catalog.entries().size(), 1u);
  EXPECT_DOUBLE_EQ(catalog.Find("col")->estimate, 20.0);
}

TEST(StatsCatalogTest, SelectivityIsInverseEstimate) {
  EXPECT_DOUBLE_EQ(MakeStats("x", 250.0).EstimatedSelectivity(), 1.0 / 250.0);
  EXPECT_DOUBLE_EQ(MakeStats("x", 0.0).EstimatedSelectivity(), 1.0);
}

TEST(StatsCatalogTest, SerializationRoundTrips) {
  StatsCatalog catalog;
  catalog.Put(MakeStats("plain"));
  catalog.Put(MakeStats("with|pipe", 3.25));
  catalog.Put(MakeStats("with%percent\nand newline", 1e-9));
  const std::string text = catalog.Serialize();
  const auto parsed = StatsCatalog::Deserialize(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->entries().size(), 3u);
  ASSERT_NE(parsed->Find("with|pipe"), nullptr);
  EXPECT_DOUBLE_EQ(parsed->Find("with|pipe")->estimate, 3.25);
  ASSERT_NE(parsed->Find("with%percent\nand newline"), nullptr);
  EXPECT_DOUBLE_EQ(parsed->Find("with%percent\nand newline")->estimate, 1e-9);
  EXPECT_EQ(parsed->Find("plain")->method, "AE");
  EXPECT_EQ(parsed->Find("plain")->table_rows, 10000);
}

TEST(StatsCatalogTest, DeserializeRejectsMalformedInput) {
  EXPECT_FALSE(StatsCatalog::Deserialize("").has_value());
  EXPECT_FALSE(StatsCatalog::Deserialize("wrong-header\n").has_value());
  EXPECT_FALSE(
      StatsCatalog::Deserialize("ndv-stats-v1\ntoo|few|fields\n").has_value());
  EXPECT_FALSE(StatsCatalog::Deserialize(
                   "ndv-stats-v1\nname|x|100|80|1.0|1.0|2.0|AE\n")
                   .has_value());
  EXPECT_FALSE(StatsCatalog::Deserialize(
                   "ndv-stats-v1\nbad%zzescape|1|1|1|1|1|1|AE\n")
                   .has_value());
}

TEST(StatsCatalogTest, EmptyCatalogSerializes) {
  const auto parsed = StatsCatalog::Deserialize(StatsCatalog().Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

TEST(AnalyzeTableTest, ProducesOneEntryPerColumn) {
  const Table census = MakeCensusLikeScaled(5000);
  AnalyzeOptions options;
  options.sample_fraction = 0.05;
  const StatsCatalog catalog = AnalyzeTable(census, options);
  EXPECT_EQ(catalog.entries().size(), 15u);
  const ColumnStats* sex = catalog.Find("sex");
  ASSERT_NE(sex, nullptr);
  EXPECT_EQ(sex->table_rows, 5000);
  EXPECT_NEAR(sex->estimate, 2.0, 0.5);
  EXPECT_LE(sex->lower, sex->estimate);
  EXPECT_GE(sex->upper, sex->estimate);
  EXPECT_EQ(sex->method, "AE");
}

TEST(AnalyzeTableTest, BoundsBracketTruthOnEveryColumn) {
  const Table census = MakeCensusLikeScaled(20000);
  AnalyzeOptions options;
  options.sample_fraction = 0.05;
  options.seed = 77;
  const StatsCatalog catalog = AnalyzeTable(census, options);
  for (int64_t c = 0; c < census.NumColumns(); ++c) {
    const double actual =
        static_cast<double>(ExactDistinctHashSet(census.column(c)));
    const ColumnStats* stats = catalog.Find(census.column_name(c));
    ASSERT_NE(stats, nullptr);
    EXPECT_LE(stats->lower, actual) << stats->column_name;
    EXPECT_GE(stats->upper, actual) << stats->column_name;
  }
}

TEST(AnalyzeTableTest, CatalogRoundTripsThroughText) {
  const Table census = MakeCensusLikeScaled(2000);
  const StatsCatalog catalog = AnalyzeTable(census, {});
  const auto parsed = StatsCatalog::Deserialize(catalog.Serialize());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->entries().size(), catalog.entries().size());
  for (const ColumnStats& stats : catalog.entries()) {
    const ColumnStats* roundtripped = parsed->Find(stats.column_name);
    ASSERT_NE(roundtripped, nullptr);
    EXPECT_DOUBLE_EQ(roundtripped->estimate, stats.estimate);
    EXPECT_DOUBLE_EQ(roundtripped->upper, stats.upper);
    EXPECT_EQ(roundtripped->sample_rows, stats.sample_rows);
  }
}

TEST(AnalyzeTableTest, UnknownEstimatorAborts) {
  const Table census = MakeCensusLikeScaled(100);
  AnalyzeOptions options;
  options.estimator = "NotReal";
  EXPECT_DEATH(AnalyzeTable(census, options), "unknown estimator");
}

}  // namespace
}  // namespace ndv
