#include "catalog/stats_catalog.h"

#include <cmath>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/real_world_like.h"
#include "datagen/zipf.h"

namespace ndv {
namespace {

ColumnStats MakeStats(std::string name, double estimate = 100.0) {
  ColumnStats stats;
  stats.column_name = std::move(name);
  stats.table_rows = 10000;
  stats.sample_rows = 100;
  stats.sample_distinct = 80;
  stats.estimate = estimate;
  stats.lower = 80.0;
  stats.upper = 8000.0;
  stats.method = "AE";
  return stats;
}

TEST(StatsCatalogTest, PutAndFind) {
  StatsCatalog catalog;
  catalog.Put(MakeStats("a"));
  catalog.Put(MakeStats("b", 55.0));
  ASSERT_TRUE(catalog.Find("a").has_value());
  ASSERT_TRUE(catalog.Find("b").has_value());
  EXPECT_FALSE(catalog.Find("missing").has_value());
  EXPECT_DOUBLE_EQ(catalog.Find("b")->estimate, 55.0);
}

TEST(StatsCatalogTest, PutReplacesExistingEntry) {
  StatsCatalog catalog;
  catalog.Put(MakeStats("col", 10.0));
  catalog.Put(MakeStats("col", 20.0));
  EXPECT_EQ(catalog.entries().size(), 1u);
  EXPECT_DOUBLE_EQ(catalog.Find("col")->estimate, 20.0);
}

// Regression: Find used to return a pointer into entries_, which a
// reallocating Put invalidated — a use-after-free under ASan. The by-value
// Find must keep a previously returned result intact through arbitrarily
// many inserts.
TEST(StatsCatalogTest, FindResultSurvivesReallocatingPuts) {
  StatsCatalog catalog;
  catalog.Put(MakeStats("first", 42.0));
  const std::optional<ColumnStats> held = catalog.Find("first");
  ASSERT_TRUE(held.has_value());
  // Far past any plausible initial vector capacity: several reallocations.
  for (int i = 0; i < 1000; ++i) {
    catalog.Put(MakeStats("col_" + std::to_string(i), 1.0 + i));
  }
  EXPECT_EQ(held->column_name, "first");
  EXPECT_DOUBLE_EQ(held->estimate, 42.0);
  EXPECT_EQ(held->method, "AE");
  // The catalog itself still serves the original entry.
  EXPECT_DOUBLE_EQ(catalog.Find("first")->estimate, 42.0);
}

// Regression: repeated Put of the same column (re-ANALYZE) must update in
// place — last write wins — and never leave a duplicate or stale entry
// visible through Find, entries, or Serialize.
TEST(StatsCatalogTest, ReanalyzeNeverExposesDuplicateEntries) {
  StatsCatalog catalog;
  for (int round = 0; round < 5; ++round) {
    catalog.Put(MakeStats("col", 10.0 * (round + 1)));
    catalog.Put(MakeStats("other", 7.0));
  }
  EXPECT_EQ(catalog.entries().size(), 2u);
  EXPECT_DOUBLE_EQ(catalog.Find("col")->estimate, 50.0);

  const std::string text = catalog.Serialize();
  size_t col_lines = 0;
  size_t pos = 0;
  while ((pos = text.find("col|", pos)) != std::string::npos) {
    ++col_lines;
    pos += 4;
  }
  EXPECT_EQ(col_lines, 1u) << "duplicate serialized entries:\n" << text;

  const auto parsed = StatsCatalog::Deserialize(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->entries().size(), 2u);
  EXPECT_DOUBLE_EQ(parsed->Find("col")->estimate, 50.0);
}

TEST(StatsCatalogTest, SelectivityIsInverseEstimate) {
  EXPECT_DOUBLE_EQ(MakeStats("x", 250.0).EstimatedSelectivity(), 1.0 / 250.0);
  EXPECT_DOUBLE_EQ(MakeStats("x", 0.0).EstimatedSelectivity(), 1.0);
}

TEST(StatsCatalogTest, SerializationRoundTrips) {
  StatsCatalog catalog;
  catalog.Put(MakeStats("plain"));
  catalog.Put(MakeStats("with|pipe", 3.25));
  catalog.Put(MakeStats("with%percent\nand newline", 1e-9));
  const std::string text = catalog.Serialize();
  const auto parsed = StatsCatalog::Deserialize(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->entries().size(), 3u);
  ASSERT_TRUE(parsed->Find("with|pipe").has_value());
  EXPECT_DOUBLE_EQ(parsed->Find("with|pipe")->estimate, 3.25);
  ASSERT_TRUE(parsed->Find("with%percent\nand newline").has_value());
  EXPECT_DOUBLE_EQ(parsed->Find("with%percent\nand newline")->estimate, 1e-9);
  EXPECT_EQ(parsed->Find("plain")->method, "AE");
  EXPECT_EQ(parsed->Find("plain")->table_rows, 10000);
}

TEST(StatsCatalogTest, DeserializeRejectsMalformedInput) {
  EXPECT_FALSE(StatsCatalog::Deserialize("").has_value());
  EXPECT_FALSE(StatsCatalog::Deserialize("wrong-header\n").has_value());
  EXPECT_FALSE(
      StatsCatalog::Deserialize("ndv-stats-v1\ntoo|few|fields\n").has_value());
  EXPECT_FALSE(StatsCatalog::Deserialize(
                   "ndv-stats-v1\nname|x|100|80|1.0|1.0|2.0|AE\n")
                   .has_value());
  EXPECT_FALSE(StatsCatalog::Deserialize(
                   "ndv-stats-v1\nbad%zzescape|1|1|1|1|1|1|AE\n")
                   .has_value());
}

TEST(StatsCatalogTest, EmptyCatalogSerializes) {
  const auto parsed = StatsCatalog::Deserialize(StatsCatalog().Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

TEST(StatsCatalogTest, SerializesAsV2WithCoverageAndDegraded) {
  StatsCatalog catalog;
  ColumnStats stats = MakeStats("partial");
  stats.coverage = 0.75;
  stats.degraded = true;
  catalog.Put(stats);
  const std::string text = catalog.Serialize();
  EXPECT_EQ(text.rfind("ndv-stats-v2\n", 0), 0u) << text;

  const auto parsed = StatsCatalog::DeserializeOrStatus(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::optional<ColumnStats> found = parsed->Find("partial");
  ASSERT_TRUE(found.has_value());
  EXPECT_DOUBLE_EQ(found->coverage, 0.75);
  EXPECT_TRUE(found->degraded);
}

TEST(StatsCatalogTest, LegacyV1FilesStillDeserialize) {
  // A file written by the previous release: v1 header, 8 fields, no
  // coverage/degraded columns. Must load as complete (coverage 1).
  const std::string v1_text =
      "ndv-stats-v1\n"
      "value|10000|100|80|100|80|8000|AE\n"
      "with%7Cpipe|10000|100|80|3.25|80|8000|GEE\n";
  const auto parsed = StatsCatalog::DeserializeOrStatus(v1_text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->entries().size(), 2u);
  const std::optional<ColumnStats> value = parsed->Find("value");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->table_rows, 10000);
  EXPECT_DOUBLE_EQ(value->coverage, 1.0);
  EXPECT_FALSE(value->degraded);
  ASSERT_TRUE(parsed->Find("with|pipe").has_value());
  EXPECT_EQ(parsed->Find("with|pipe")->method, "GEE");
}

TEST(StatsCatalogTest, DeserializeDiagnosticsNameLineAndField) {
  {
    const auto result = StatsCatalog::DeserializeOrStatus("");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().message(), "missing ndv-stats header line");
  }
  {
    const auto result = StatsCatalog::DeserializeOrStatus("wrong-header\n");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("line 1: unknown header"),
              std::string::npos)
        << result.status().ToString();
  }
  {
    const auto result = StatsCatalog::DeserializeOrStatus(
        "ndv-stats-v1\nvalue|10000|100|80|100|80|8000|AE\ntoo|few\n");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find(
                  "line 3: expected 8 fields for a v1 entry, got 2"),
              std::string::npos)
        << result.status().ToString();
  }
  {
    const auto result = StatsCatalog::DeserializeOrStatus(
        "ndv-stats-v1\nvalue|abc|100|80|100|80|8000|AE\n");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("line 2 field 2 (table_rows)"),
              std::string::npos)
        << result.status().ToString();
  }
  {
    const auto result = StatsCatalog::DeserializeOrStatus(
        "ndv-stats-v1\nbad%zz|1|1|1|1|1|1|AE\n");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(
        result.status().message().find("field 1 (column name): bad percent"),
        std::string::npos)
        << result.status().ToString();
  }
  {
    const auto result = StatsCatalog::DeserializeOrStatus(
        "ndv-stats-v2\nvalue|1|1|1|1|1|1|0.5|7|AE\n");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find(
                  "field 9 (degraded): expected 0 or 1"),
              std::string::npos)
        << result.status().ToString();
  }
}

// Fuzz-style round trip: adversarial names and extreme numeric values must
// survive Serialize -> DeserializeOrStatus exactly.
TEST(StatsCatalogTest, FuzzRoundTripAdversarialEntries) {
  Rng rng(2024);
  const std::vector<std::string> alphabet = {
      "|", "%", "\n", "%%", "|%|", "a", "\t", " ", "\"", ",", "\\",
      "%7C", "\x01", "\x7f", "\xc3\xa9" /* é */, "0", "ndv-stats-v1"};
  const std::vector<double> extremes = {
      0.0, -0.0, 1.0, -1.0, 1e308, -1e308, 5e-324, 1e-300,
      123456789.123456789, std::numeric_limits<double>::max(),
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity()};
  const std::vector<int64_t> extreme_ints = {
      0, 1, -1, std::numeric_limits<int64_t>::max(),
      std::numeric_limits<int64_t>::min()};

  for (int trial = 0; trial < 200; ++trial) {
    StatsCatalog catalog;
    ColumnStats stats;
    // Random adversarial name (non-empty so Find is well-defined; a name
    // dedupes against itself, which the comparison below accounts for by
    // using a single entry).
    const int pieces = static_cast<int>(rng.NextBounded(6)) + 1;
    for (int i = 0; i < pieces; ++i) {
      stats.column_name += alphabet[rng.NextBounded(alphabet.size())];
    }
    stats.method = alphabet[rng.NextBounded(alphabet.size())];
    stats.table_rows = extreme_ints[rng.NextBounded(extreme_ints.size())];
    stats.sample_rows = extreme_ints[rng.NextBounded(extreme_ints.size())];
    stats.sample_distinct =
        extreme_ints[rng.NextBounded(extreme_ints.size())];
    stats.estimate = extremes[rng.NextBounded(extremes.size())];
    stats.lower = extremes[rng.NextBounded(extremes.size())];
    stats.upper = extremes[rng.NextBounded(extremes.size())];
    stats.coverage = extremes[rng.NextBounded(extremes.size())];
    stats.degraded = rng.NextBounded(2) == 1;
    catalog.Put(stats);

    const auto parsed = StatsCatalog::DeserializeOrStatus(catalog.Serialize());
    ASSERT_TRUE(parsed.ok())
        << "trial " << trial << ": " << parsed.status().ToString();
    const std::optional<ColumnStats> found = parsed->Find(stats.column_name);
    ASSERT_TRUE(found.has_value()) << "trial " << trial;
    EXPECT_EQ(found->method, stats.method);
    EXPECT_EQ(found->table_rows, stats.table_rows);
    EXPECT_EQ(found->sample_rows, stats.sample_rows);
    EXPECT_EQ(found->sample_distinct, stats.sample_distinct);
    EXPECT_EQ(found->estimate, stats.estimate);
    EXPECT_EQ(found->lower, stats.lower);
    EXPECT_EQ(found->upper, stats.upper);
    EXPECT_EQ(found->coverage, stats.coverage);
    EXPECT_EQ(found->degraded, stats.degraded);
  }
}

// Fuzz-style robustness: random mutations of a valid serialization must
// either parse or fail with a typed error — never crash.
TEST(StatsCatalogTest, FuzzMutatedInputNeverCrashes) {
  StatsCatalog catalog;
  catalog.Put(MakeStats("alpha"));
  catalog.Put(MakeStats("beta|%\n", 2.5));
  const std::string good = catalog.Serialize();

  Rng rng(77);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = good;
    const int edits = static_cast<int>(rng.NextBounded(4)) + 1;
    for (int e = 0; e < edits; ++e) {
      const size_t pos = rng.NextBounded(mutated.size());
      switch (rng.NextBounded(3)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.NextBounded(256));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1, static_cast<char>(rng.NextBounded(256)));
          break;
      }
    }
    const auto result = StatsCatalog::DeserializeOrStatus(mutated);
    if (!result.ok()) {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

// Named regression cases promoted from the fuzz_stats_catalog corpus runs.
// The mutation campaigns found no crashes, so these pin down the
// accept/reject *boundary* the fuzzer exercised — each case is an input
// class the harness generates, with the exact behavior the parser settled
// on, so a future "harmless" parser change that flips one fails loudly.

TEST(StatsCatalogFuzzRegressionTest, NonFiniteValuesRoundTripThroughText) {
  // %.17g prints non-finite doubles as "nan"/"inf"; from_chars reads them
  // back. A catalog poisoned with non-finite estimates must survive the
  // text round trip rather than losing entries or aborting.
  StatsCatalog catalog;
  ColumnStats stats = MakeStats("poisoned");
  stats.estimate = std::numeric_limits<double>::quiet_NaN();
  stats.upper = std::numeric_limits<double>::infinity();
  stats.lower = -std::numeric_limits<double>::infinity();
  catalog.Put(stats);
  const auto parsed = StatsCatalog::DeserializeOrStatus(catalog.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const std::optional<ColumnStats> found = parsed.value().Find("poisoned");
  ASSERT_TRUE(found.has_value());
  EXPECT_TRUE(std::isnan(found->estimate));
  EXPECT_TRUE(std::isinf(found->upper));
  EXPECT_GT(found->upper, 0.0);
  EXPECT_TRUE(std::isinf(found->lower));
  EXPECT_LT(found->lower, 0.0);
}

TEST(StatsCatalogFuzzRegressionTest, LowercaseHexEscapesAreAccepted) {
  // The serializer emits uppercase hex ("%7C"), but the reader must take
  // either case — hand-edited catalogs use lowercase.
  const std::string text =
      "ndv-stats-v2\n"
      "a%7cb|100|10|5|5|5|10|0.1|0|GEE\n";
  const auto parsed = StatsCatalog::DeserializeOrStatus(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_TRUE(parsed.value().Find("a|b").has_value());
}

TEST(StatsCatalogFuzzRegressionTest, TruncatedEscapeAtEndOfNameIsRejected) {
  // "%4" with no second hex digit: the escape decoder must not read past
  // the end of the field (this is the fuzzer's favorite boundary probe).
  const std::string text =
      "ndv-stats-v2\n"
      "ab%4|100|10|5|5|5|10|0.1|0|GEE\n";
  const auto parsed = StatsCatalog::DeserializeOrStatus(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("bad percent escape"),
            std::string::npos)
      << parsed.status().message();
}

TEST(StatsCatalogFuzzRegressionTest, DuplicateNamesLastEntryWins) {
  // Put() overwrites by name, so a document listing a column twice parses
  // to a single entry holding the later values.
  const std::string text =
      "ndv-stats-v2\n"
      "col|100|10|5|5.0|5|10|0.1|0|GEE\n"
      "col|200|20|7|7.0|7|14|0.1|0|AE\n";
  const auto parsed = StatsCatalog::DeserializeOrStatus(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  ASSERT_EQ(parsed.value().entries().size(), 1u);
  const std::optional<ColumnStats> found = parsed.value().Find("col");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->table_rows, 200);
  EXPECT_EQ(found->method, "AE");
}

TEST(StatsCatalogFuzzRegressionTest, V1HeaderRejectsV2FieldCount) {
  // Version is taken from the header, not inferred per line: a v2-shaped
  // entry (10 fields) under a v1 header is a field-count error, never a
  // silent reinterpretation.
  const std::string text =
      "ndv-stats-v1\n"
      "col|100|10|5|5.0|5|10|0.1|0|GEE\n";
  const auto parsed = StatsCatalog::DeserializeOrStatus(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("expected 8 fields for a v1"),
            std::string::npos)
      << parsed.status().message();
}

TEST(StatsCatalogFuzzRegressionTest, SecondHeaderLineIsParsedAsAnEntry) {
  // Only the first non-blank line is header-eligible; a stray repeated
  // header further down is just a malformed one-field entry.
  const std::string text =
      "ndv-stats-v2\n"
      "ndv-stats-v1\n";
  const auto parsed = StatsCatalog::DeserializeOrStatus(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("got 1"), std::string::npos)
      << parsed.status().message();
}

TEST(StatsCatalogFuzzRegressionTest, CarriageReturnsAreDataNotLineEndings) {
  // Lines split on '\n' only. A CRLF-terminated document therefore leaves
  // a literal '\r' on the final field; the parser keeps it as data (and
  // the serializer escapes nothing but '%', '|', '\n', so it round-trips).
  const std::string text =
      "ndv-stats-v2\n"
      "col|100|10|5|5.0|5|10|0.1|0|GEE\r\n";
  const auto parsed = StatsCatalog::DeserializeOrStatus(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const std::optional<ColumnStats> found = parsed.value().Find("col");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->method, "GEE\r");
}

TEST(StatsCatalogFuzzRegressionTest, IntegerOverflowIsRejectedNotWrapped) {
  // 2^63 does not fit in int64_t; from_chars reports out_of_range and the
  // entry must be rejected, not saturated or wrapped negative.
  const std::string text =
      "ndv-stats-v2\n"
      "col|9223372036854775808|10|5|5.0|5|10|0.1|0|GEE\n";
  const auto parsed = StatsCatalog::DeserializeOrStatus(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("table_rows"), std::string::npos)
      << parsed.status().message();
}

TEST(StatsCatalogFuzzRegressionTest, NumberSyntaxIsStrict) {
  // from_chars semantics, pinned: no leading '+', no trailing junk, no
  // embedded whitespace. Each of these came out of the mutation corpus.
  const std::vector<std::string> bad_values = {"+5", "12x", " 12", "12 ", ""};
  for (const std::string& value : bad_values) {
    const std::string text =
        "ndv-stats-v2\n"
        "col|" + value + "|10|5|5.0|5|10|0.1|0|GEE\n";
    const auto parsed = StatsCatalog::DeserializeOrStatus(text);
    EXPECT_FALSE(parsed.ok()) << "accepted table_rows='" << value << "'";
  }
}

TEST(StatsCatalogFuzzRegressionTest, EmptyColumnNameIsAllowed) {
  // An empty first field is a legal (if odd) column name; it must be
  // stored and findable, not confused with a missing field.
  const std::string text =
      "ndv-stats-v2\n"
      "|100|10|5|5.0|5|10|0.1|0|GEE\n";
  const auto parsed = StatsCatalog::DeserializeOrStatus(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_TRUE(parsed.value().Find("").has_value());
}

TEST(StatsCatalogFuzzRegressionTest, BlankLinesAreSkippedAnywhere) {
  // Blank lines are ignored everywhere — before the header, between
  // entries, and trailing.
  const std::string text =
      "\n\nndv-stats-v2\n\n"
      "a|100|10|5|5.0|5|10|0.1|0|GEE\n\n\n"
      "b|100|10|5|5.0|5|10|0.1|0|GEE\n\n";
  const auto parsed = StatsCatalog::DeserializeOrStatus(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed.value().entries().size(), 2u);
}

TEST(StatsCatalogFuzzRegressionTest, SerializeIsAFixedPoint) {
  // parse -> serialize reaches a fixed point in one step: the serialized
  // form of a parsed document reparses and reserializes byte-identically.
  // (The fuzz harness asserts this on every accepted input.)
  const std::string text =
      "\nndv-stats-v2\n"
      "a%7cb|100|10|5|5.0|5|1e99|0.125|1|GEE\r\n"
      "|200|20|7|nan|7|inf|0.25|0|AE\n";
  const auto first = StatsCatalog::DeserializeOrStatus(text);
  ASSERT_TRUE(first.ok()) << first.status().message();
  const std::string once = first.value().Serialize();
  const auto second = StatsCatalog::DeserializeOrStatus(once);
  ASSERT_TRUE(second.ok()) << second.status().message();
  EXPECT_EQ(second.value().Serialize(), once);
}

TEST(AnalyzeTableTest, ProducesOneEntryPerColumn) {
  const Table census = MakeCensusLikeScaled(5000);
  AnalyzeOptions options;
  options.sample_fraction = 0.05;
  const StatsCatalog catalog = AnalyzeTable(census, options);
  EXPECT_EQ(catalog.entries().size(), 15u);
  const std::optional<ColumnStats> sex = catalog.Find("sex");
  ASSERT_TRUE(sex.has_value());
  EXPECT_EQ(sex->table_rows, 5000);
  EXPECT_NEAR(sex->estimate, 2.0, 0.5);
  EXPECT_LE(sex->lower, sex->estimate);
  EXPECT_GE(sex->upper, sex->estimate);
  EXPECT_EQ(sex->method, "AE");
}

TEST(AnalyzeTableTest, BoundsBracketTruthOnEveryColumn) {
  const Table census = MakeCensusLikeScaled(20000);
  AnalyzeOptions options;
  options.sample_fraction = 0.05;
  options.seed = 77;
  const StatsCatalog catalog = AnalyzeTable(census, options);
  for (int64_t c = 0; c < census.NumColumns(); ++c) {
    const double actual =
        static_cast<double>(ExactDistinctHashSet(census.column(c)));
    const std::optional<ColumnStats> stats = catalog.Find(census.column_name(c));
    ASSERT_TRUE(stats.has_value());
    EXPECT_LE(stats->lower, actual) << stats->column_name;
    EXPECT_GE(stats->upper, actual) << stats->column_name;
  }
}

TEST(AnalyzeTableTest, ExactModeRecordsGroundTruth) {
  const Table census = MakeCensusLikeScaled(5000);
  AnalyzeOptions options;
  options.exact = true;
  options.threads = 1;
  const StatsCatalog catalog = AnalyzeTable(census, options);
  ASSERT_EQ(catalog.entries().size(),
            static_cast<size_t>(census.NumColumns()));
  for (int64_t c = 0; c < census.NumColumns(); ++c) {
    const double actual =
        static_cast<double>(ExactDistinctHashSet(census.column(c)));
    const std::optional<ColumnStats> stats = catalog.Find(census.column_name(c));
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->method, "EXACT");
    EXPECT_EQ(stats->table_rows, census.column(c).size());
    EXPECT_EQ(stats->sample_rows, census.column(c).size());
    EXPECT_DOUBLE_EQ(stats->estimate, actual);
    EXPECT_DOUBLE_EQ(stats->lower, actual);
    EXPECT_DOUBLE_EQ(stats->upper, actual);
    EXPECT_EQ(stats->sample_distinct, static_cast<int64_t>(actual));
  }
}

TEST(AnalyzeTableTest, ExactModeIsThreadCountInvariant) {
  const Table census = MakeCensusLikeScaled(3000);
  AnalyzeOptions serial;
  serial.exact = true;
  serial.threads = 1;
  const StatsCatalog baseline = AnalyzeTable(census, serial);
  for (int threads : {2, 8}) {
    AnalyzeOptions options;
    options.exact = true;
    options.threads = threads;
    const StatsCatalog catalog = AnalyzeTable(census, options);
    EXPECT_EQ(catalog.Serialize(), baseline.Serialize())
        << "threads=" << threads;
  }
}

TEST(AnalyzeTableTest, CatalogRoundTripsThroughText) {
  const Table census = MakeCensusLikeScaled(2000);
  const StatsCatalog catalog = AnalyzeTable(census, {});
  const auto parsed = StatsCatalog::Deserialize(catalog.Serialize());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->entries().size(), catalog.entries().size());
  for (const ColumnStats& stats : catalog.entries()) {
    const std::optional<ColumnStats> roundtripped = parsed->Find(stats.column_name);
    ASSERT_TRUE(roundtripped.has_value());
    EXPECT_DOUBLE_EQ(roundtripped->estimate, stats.estimate);
    EXPECT_DOUBLE_EQ(roundtripped->upper, stats.upper);
    EXPECT_EQ(roundtripped->sample_rows, stats.sample_rows);
  }
}

TEST(AnalyzeTableTest, UnknownEstimatorAborts) {
  const Table census = MakeCensusLikeScaled(100);
  AnalyzeOptions options;
  options.estimator = "NotReal";
  EXPECT_DEATH(AnalyzeTable(census, options), "unknown estimator");
}

}  // namespace
}  // namespace ndv
