// Merge algebra of the mergeable sketch backbone (HyperLogLog + linear
// counting): associativity, commutativity, and bit-identity of merged
// sketches against a single sketch fed the concatenated stream — the
// property the incremental ingest path relies on to combine per-partition
// deltas without re-shipping rows. The partition-parallel stress at the
// bottom runs the shard builds on the shared pool, so under TSan it also
// proves the "one sketch per shard, merge after join" discipline is
// race-free.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/thread_pool.h"
#include "sketch/hyperloglog.h"
#include "sketch/linear_counting.h"

namespace ndv {
namespace {

// A deterministic hash stream of `count` values drawn from `distinct`
// distinct well-mixed keys.
std::vector<uint64_t> HashStream(uint64_t seed, int64_t count,
                                 uint64_t distinct) {
  Rng rng(seed);
  std::vector<uint64_t> hashes;
  hashes.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    hashes.push_back(Hash64(rng.NextBounded(distinct) + 1));
  }
  return hashes;
}

// The register sizes the ingest subsystem uses (default precision 12 /
// 2^16 bits) plus the extremes the constructors accept, so a width-
// dependent merge bug (e.g. in the bitmap's tail word) cannot hide.
const int kHllPrecisions[] = {4, 10, 12, 14, 18};
const int64_t kLcBits[] = {1, 63, 64, 65, 1 << 12, 1 << 16};

TEST(HyperLogLogMergeTest, MergeIsBitIdenticalToSingleStream) {
  for (const int precision : kHllPrecisions) {
    const auto stream_a = HashStream(1, 20000, 5000);
    const auto stream_b = HashStream(2, 30000, 9000);
    HyperLogLog single(precision);
    for (uint64_t hash : stream_a) single.Add(hash);
    for (uint64_t hash : stream_b) single.Add(hash);

    HyperLogLog a(precision);
    for (uint64_t hash : stream_a) a.Add(hash);
    HyperLogLog b(precision);
    for (uint64_t hash : stream_b) b.Add(hash);
    a.Merge(b);
    EXPECT_EQ(a, single) << "precision " << precision;
    EXPECT_EQ(a.registers(), single.registers());
  }
}

TEST(HyperLogLogMergeTest, MergeIsCommutative) {
  for (const int precision : kHllPrecisions) {
    HyperLogLog a(precision);
    for (uint64_t hash : HashStream(3, 10000, 3000)) a.Add(hash);
    HyperLogLog b(precision);
    for (uint64_t hash : HashStream(4, 12000, 7000)) b.Add(hash);
    HyperLogLog ab = a;
    ab.Merge(b);
    HyperLogLog ba = b;
    ba.Merge(a);
    EXPECT_EQ(ab, ba) << "precision " << precision;
  }
}

TEST(HyperLogLogMergeTest, MergeIsAssociativeAndIdempotent) {
  for (const int precision : kHllPrecisions) {
    HyperLogLog a(precision);
    for (uint64_t hash : HashStream(5, 8000, 2000)) a.Add(hash);
    HyperLogLog b(precision);
    for (uint64_t hash : HashStream(6, 8000, 4000)) b.Add(hash);
    HyperLogLog c(precision);
    for (uint64_t hash : HashStream(7, 8000, 6000)) c.Add(hash);

    HyperLogLog left = a;  // (a + b) + c
    left.Merge(b);
    left.Merge(c);
    HyperLogLog bc = b;  // a + (b + c)
    bc.Merge(c);
    HyperLogLog right = a;
    right.Merge(bc);
    EXPECT_EQ(left, right) << "precision " << precision;

    HyperLogLog twice = left;  // register-wise max: merging again is a noop
    twice.Merge(left);
    EXPECT_EQ(twice, left);
  }
}

TEST(LinearCountingMergeTest, MergeIsBitIdenticalToSingleStream) {
  for (const int64_t bits : kLcBits) {
    const auto stream_a = HashStream(8, 5000, 1500);
    const auto stream_b = HashStream(9, 7000, 2500);
    LinearCounting single(bits);
    for (uint64_t hash : stream_a) single.Add(hash);
    for (uint64_t hash : stream_b) single.Add(hash);

    LinearCounting a(bits);
    for (uint64_t hash : stream_a) a.Add(hash);
    LinearCounting b(bits);
    for (uint64_t hash : stream_b) b.Add(hash);
    a.Merge(b);
    EXPECT_EQ(a, single) << "bits " << bits;
    EXPECT_EQ(a.words(), single.words());
    EXPECT_EQ(a.zero_bits(), single.zero_bits());
  }
}

TEST(LinearCountingMergeTest, MergeIsCommutativeAndAssociative) {
  for (const int64_t bits : kLcBits) {
    LinearCounting a(bits);
    for (uint64_t hash : HashStream(10, 4000, 900)) a.Add(hash);
    LinearCounting b(bits);
    for (uint64_t hash : HashStream(11, 4000, 1100)) b.Add(hash);
    LinearCounting c(bits);
    for (uint64_t hash : HashStream(12, 4000, 1300)) c.Add(hash);

    LinearCounting ab = a;
    ab.Merge(b);
    LinearCounting ba = b;
    ba.Merge(a);
    EXPECT_EQ(ab, ba) << "bits " << bits;

    LinearCounting left = ab;  // (a + b) + c
    left.Merge(c);
    LinearCounting bc = b;  // a + (b + c)
    bc.Merge(c);
    LinearCounting right = a;
    right.Merge(bc);
    EXPECT_EQ(left, right) << "bits " << bits;
  }
}

// The distributed shape: P shard sketches built concurrently on the shared
// pool (each shard strictly private to its task), merged after the join in
// several different orders. Every order must agree bit-for-bit with the
// sequential single-sketch build. Run under TSan, this is the data-race
// proof for the ingest fan-out.
TEST(SketchMergeStressTest, ParallelShardsMergeBitIdenticallyInAnyOrder) {
  constexpr int kShards = 8;
  constexpr int64_t kRowsPerShard = 25000;
  constexpr int kPrecision = 12;
  constexpr int64_t kBits = 1 << 14;

  std::vector<HyperLogLog> hlls(kShards, HyperLogLog(kPrecision));
  std::vector<LinearCounting> lcs(kShards, LinearCounting(kBits));
  ParallelFor(kShards, ResolveThreadCount(0), [&](int64_t shard) {
    const auto hashes = HashStream(static_cast<uint64_t>(shard) + 100,
                                   kRowsPerShard, 40000);
    for (uint64_t hash : hashes) {
      hlls[static_cast<size_t>(shard)].Add(hash);
      lcs[static_cast<size_t>(shard)].Add(hash);
    }
  });

  HyperLogLog hll_single(kPrecision);
  LinearCounting lc_single(kBits);
  for (int shard = 0; shard < kShards; ++shard) {
    const auto hashes = HashStream(static_cast<uint64_t>(shard) + 100,
                                   kRowsPerShard, 40000);
    for (uint64_t hash : hashes) {
      hll_single.Add(hash);
      lc_single.Add(hash);
    }
  }

  // Forward order, reverse order, and an interleaved order.
  const std::vector<std::vector<int>> orders = {
      {0, 1, 2, 3, 4, 5, 6, 7},
      {7, 6, 5, 4, 3, 2, 1, 0},
      {3, 0, 6, 1, 7, 2, 5, 4},
  };
  for (const auto& order : orders) {
    HyperLogLog hll_merged(kPrecision);
    LinearCounting lc_merged(kBits);
    for (const int shard : order) {
      hll_merged.Merge(hlls[static_cast<size_t>(shard)]);
      lc_merged.Merge(lcs[static_cast<size_t>(shard)]);
    }
    EXPECT_EQ(hll_merged, hll_single);
    EXPECT_EQ(lc_merged, lc_single);
  }
}

}  // namespace
}  // namespace ndv
