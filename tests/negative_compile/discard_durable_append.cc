// MUST NOT COMPILE under -Werror=unused-result (any compiler): the
// durable-catalog mutators are [[nodiscard]] — an ignored AppendPut/Sync
// means an unacknowledged lost write.
// EXPECT: nodiscard|unused-result

#include "catalog/durable_catalog.h"

namespace {

void FireAndForget(ndv::DurableCatalog& catalog) {
  catalog.Sync();  // result dropped: sync failure would go unnoticed
}

}  // namespace

int main() {
  void (*probe)(ndv::DurableCatalog&) = &FireAndForget;
  return probe != nullptr ? 0 : 1;
}
