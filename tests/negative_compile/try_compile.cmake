# Negative-compilation driver, run as `cmake -P` from ctest.
#
# A contract that is only enforced at compile time can silently rot: if a
# refactor loosens an annotation, every positive test still passes. These
# tests assert the opposite direction — that known-bad code STILL fails to
# compile, with the diagnostic we expect — so the enforcement itself is
# under test.
#
# Variables (passed with -D):
#   COMPILER        compiler driver to invoke
#   SOURCE          snippet to compile (-fsyntax-only; nothing is linked)
#   INCLUDE_DIR     added as -I (the repo's src/)
#   FLAGS           extra flags, space-separated string
#   EXPECT          regex the compiler output must match (failure cases)
#   EXPECT_FAILURE  TRUE: compile must fail AND match EXPECT.
#                   FALSE/unset: compile must succeed (positive control).

foreach(required COMPILER SOURCE INCLUDE_DIR)
  if(NOT DEFINED ${required})
    message(FATAL_ERROR "try_compile.cmake: ${required} not set")
  endif()
endforeach()

separate_arguments(flag_list UNIX_COMMAND "${FLAGS}")

execute_process(
  COMMAND ${COMPILER} -fsyntax-only -std=c++20 ${flag_list}
          -I${INCLUDE_DIR} ${SOURCE}
  RESULT_VARIABLE compile_rc
  OUTPUT_VARIABLE compile_out
  ERROR_VARIABLE compile_err)
set(compiler_output "${compile_out}${compile_err}")

if(EXPECT_FAILURE)
  if(compile_rc EQUAL 0)
    message(FATAL_ERROR
      "${SOURCE} compiled cleanly but was expected to be REJECTED "
      "(the compile-time contract it probes is no longer enforced)")
  endif()
  if(DEFINED EXPECT AND NOT compiler_output MATCHES "${EXPECT}")
    message(FATAL_ERROR
      "${SOURCE} failed to compile (good) but the diagnostic did not "
      "match \"${EXPECT}\". Compiler output:\n${compiler_output}")
  endif()
  message(STATUS "rejected as expected: ${SOURCE}")
else()
  if(NOT compile_rc EQUAL 0)
    message(FATAL_ERROR
      "${SOURCE} was expected to compile cleanly but failed:\n"
      "${compiler_output}")
  endif()
  message(STATUS "accepted as expected: ${SOURCE}")
endif()
