// POSITIVE CONTROL — must compile cleanly under -Werror=unused-result:
// an explicit (void) cast is the sanctioned way to discard a
// [[nodiscard]] ndv::Status, and binding/testing obviously consumes it.

#include "common/status.h"

namespace {

ndv::Status MightFail() { return ndv::Status::Ok(); }

}  // namespace

int main() {
  (void)MightFail();  // deliberate discard
  const ndv::Status status = MightFail();
  return status.ok() ? 0 : 1;
}
