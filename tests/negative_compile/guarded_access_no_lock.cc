// MUST NOT COMPILE under -Wthread-safety -Werror: reads and writes a
// NDV_GUARDED_BY member without holding its mutex.
// EXPECT: requires holding mutex

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() { ++count_; }    // write without the lock
  int value() const { return count_; }  // read without the lock

 private:
  mutable ndv::Mutex mutex_;
  int count_ NDV_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return counter.value();
}
