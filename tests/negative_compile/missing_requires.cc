// MUST NOT COMPILE under -Wthread-safety -Werror: calls an
// NDV_REQUIRES(mutex_) method without holding the mutex.
// EXPECT: requires holding mutex

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Store {
 public:
  void Bump() { BumpLocked(); }  // missing MutexLock lock(mutex_)

 private:
  void BumpLocked() NDV_REQUIRES(mutex_) { ++value_; }

  ndv::Mutex mutex_;
  int value_ NDV_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Store store;
  store.Bump();
  return 0;
}
