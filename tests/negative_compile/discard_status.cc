// MUST NOT COMPILE under -Werror=unused-result (any compiler): ndv::Status
// is class-level [[nodiscard]], so silently dropping one is an error.
// EXPECT: nodiscard|unused-result

#include "common/status.h"

namespace {

ndv::Status MightFail() { return ndv::Status::Ok(); }

}  // namespace

int main() {
  MightFail();  // result dropped on the floor
  return 0;
}
