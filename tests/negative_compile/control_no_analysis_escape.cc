// POSITIVE CONTROL — must compile cleanly under -Wthread-safety -Werror.
// NDV_NO_THREAD_SAFETY_ANALYSIS is the sanctioned escape hatch (init and
// teardown paths where the object is provably unshared); this control
// pins that the hatch actually opts the function out.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Lifecycle {
 public:
  // Single-threaded teardown: the destructor-style drain touches guarded
  // state lock-free, annotated as exempt.
  void DrainUnshared() NDV_NO_THREAD_SAFETY_ANALYSIS { count_ = 0; }

  void Add() NDV_EXCLUDES(mutex_) {
    ndv::MutexLock lock(mutex_);
    ++count_;
  }

 private:
  ndv::Mutex mutex_;
  int count_ NDV_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Lifecycle lifecycle;
  lifecycle.Add();
  lifecycle.DrainUnshared();
  return 0;
}
