// POSITIVE CONTROL — must compile cleanly under -Wthread-safety -Werror.
// Exercises the full annotated vocabulary the rejection tests probe, so a
// harness bug (wrong flags, broken include path) fails here instead of
// masquerading as a successful rejection.

#include <chrono>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Queue {
 public:
  void Push(int item) NDV_EXCLUDES(mutex_) {
    ndv::MutexLock lock(mutex_);
    pending_ = item;
    has_item_ = true;
    ready_.NotifyOne();
  }

  int BlockingPop() NDV_EXCLUDES(mutex_) {
    ndv::MutexLock lock(mutex_);
    while (!has_item_) {
      ready_.Wait(mutex_);
    }
    has_item_ = false;
    return pending_;
  }

  bool TimedPop(int& out) NDV_EXCLUDES(mutex_) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(1);
    ndv::MutexLock lock(mutex_);
    while (!has_item_) {
      if (ready_.WaitUntil(mutex_, deadline) && !has_item_) {
        return false;
      }
    }
    has_item_ = false;
    out = pending_;
    return true;
  }

  int ordered_sum() NDV_EXCLUDES(outer_) {
    ndv::MutexLock outer(outer_);
    ndv::MutexLock lock(mutex_);  // declared order: outer_ before mutex_
    return pending_ + outer_value_;
  }

 private:
  ndv::Mutex outer_ NDV_ACQUIRED_BEFORE(mutex_);
  mutable ndv::Mutex mutex_;
  ndv::CondVar ready_;
  int pending_ NDV_GUARDED_BY(mutex_) = 0;
  bool has_item_ NDV_GUARDED_BY(mutex_) = false;
  int outer_value_ NDV_GUARDED_BY(outer_) = 0;
};

}  // namespace

int main() {
  Queue queue;
  queue.Push(7);
  int out = 0;
  static_cast<void>(queue.TimedPop(out));
  return queue.BlockingPop() == 7 && queue.ordered_sum() >= 0 ? 0 : 1;
}
