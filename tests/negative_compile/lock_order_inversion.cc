// MUST NOT COMPILE under -Wthread-safety -Wthread-safety-beta -Werror:
// acquires two mutexes against their declared NDV_ACQUIRED_BEFORE order
// (the ordering checks live behind -Wthread-safety-beta upstream).
// EXPECT: must be acquired before

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class TwoLocks {
 public:
  void Inverted() {
    ndv::MutexLock inner(second_);
    ndv::MutexLock outer(first_);  // declared order is first_, then second_
    ++value_;
  }

 private:
  ndv::Mutex first_ NDV_ACQUIRED_BEFORE(second_);
  ndv::Mutex second_;
  int value_ NDV_GUARDED_BY(first_) = 0;
};

}  // namespace

int main() {
  TwoLocks locks;
  locks.Inverted();
  return 0;
}
