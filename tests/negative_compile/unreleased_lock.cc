// MUST NOT COMPILE under -Wthread-safety -Werror: takes the raw Lock()
// path and returns with the mutex still held.
// EXPECT: still held at the end of function

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Leaky {
 public:
  void LockAndForget() {
    mutex_.Lock();
    ++value_;
    // missing mutex_.Unlock()
  }

 private:
  ndv::Mutex mutex_;
  int value_ NDV_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Leaky leaky;
  leaky.LockAndForget();
  return 0;
}
