#include "catalog/histogram.h"

#include <vector>

#include <gtest/gtest.h>

#include "datagen/zipf.h"
#include "table/table.h"

namespace ndv {
namespace {

TEST(EquiDepthHistogramTest, BucketInvariants) {
  std::vector<int64_t> sample;
  for (int64_t v = 0; v < 100; ++v) {
    sample.insert(sample.end(), static_cast<size_t>(1 + v % 3), v);
  }
  const auto histogram = EquiDepthHistogram::Build(sample, 20000, 8);
  int64_t covered = 0;
  double total_rows = 0.0;
  int64_t previous_upper = -1;
  for (const HistogramBucket& bucket : histogram.buckets()) {
    EXPECT_LE(bucket.lower, bucket.upper);
    EXPECT_GT(bucket.lower, previous_upper);  // Disjoint, ordered buckets.
    previous_upper = bucket.upper;
    covered += bucket.sample_rows;
    total_rows += bucket.estimated_rows;
    EXPECT_GE(bucket.estimated_distinct, 1.0);
  }
  EXPECT_EQ(covered, static_cast<int64_t>(sample.size()));
  EXPECT_NEAR(total_rows, 20000.0, 1.0);
}

TEST(EquiDepthHistogramTest, NeverSplitsOneValue) {
  // 90 copies of value 5 plus a few others: value 5 must stay within one
  // bucket even though it exceeds the bucket depth.
  std::vector<int64_t> sample(90, 5);
  for (int64_t v = 0; v < 10; ++v) sample.push_back(100 + v);
  const auto histogram = EquiDepthHistogram::Build(sample, 1000, 10);
  int buckets_containing_5 = 0;
  for (const HistogramBucket& bucket : histogram.buckets()) {
    if (bucket.lower <= 5 && 5 <= bucket.upper) ++buckets_containing_5;
  }
  EXPECT_EQ(buckets_containing_5, 1);
}

TEST(EquiDepthHistogramTest, RangeEstimateFullDomainIsTableRows) {
  std::vector<int64_t> sample;
  for (int64_t v = 0; v < 200; ++v) sample.push_back(v);
  const auto histogram = EquiDepthHistogram::Build(sample, 10000, 10);
  EXPECT_NEAR(histogram.EstimateRangeRows(-100, 1000), 10000.0, 1e-6);
  EXPECT_DOUBLE_EQ(histogram.EstimateRangeRows(500, 1000), 0.0);
  EXPECT_DOUBLE_EQ(histogram.EstimateRangeRows(10, 5), 0.0);
}

TEST(EquiDepthHistogramTest, RangeEstimateTracksUniformData) {
  // Uniform values 0..999, table of 100K rows: [0, 499] holds ~half.
  std::vector<int64_t> sample;
  for (int64_t v = 0; v < 1000; ++v) sample.push_back(v);
  const auto histogram = EquiDepthHistogram::Build(sample, 100000, 16);
  EXPECT_NEAR(histogram.EstimateRangeRows(0, 499), 50000.0, 4000.0);
  EXPECT_NEAR(histogram.EstimateRangeRows(250, 749), 50000.0, 4000.0);
}

TEST(EquiDepthHistogramTest, EqualityUsesPerBucketDistinct) {
  // 10 distinct values, each 10 times in the sample, table of 1000 rows:
  // each value should be ~100 rows.
  std::vector<int64_t> sample;
  for (int64_t v = 0; v < 10; ++v) {
    sample.insert(sample.end(), 10, v);
  }
  const auto histogram = EquiDepthHistogram::Build(sample, 1000, 5);
  EXPECT_NEAR(histogram.EstimateEqualityRows(3), 100.0, 30.0);
  EXPECT_DOUBLE_EQ(histogram.EstimateEqualityRows(999), 0.0);
}

TEST(EquiDepthHistogramTest, DistinctSumTracksTruth) {
  // Zipf column: the histogram's summed per-bucket GEE estimates should
  // land within a reasonable factor of D.
  ZipfColumnOptions options;
  options.rows = 100000;
  options.z = 1.0;
  options.dup_factor = 10;
  const auto column = MakeZipfColumn(options);
  const double actual = static_cast<double>(ExactDistinctHashSet(*column));
  Rng rng(3);
  const auto sample = SampleInt64Values(*column, 0.05, rng);
  const auto histogram =
      EquiDepthHistogram::Build(sample, column->size(), 32);
  const double estimate = histogram.EstimatedDistinct();
  EXPECT_GE(estimate, actual / 3.0);
  EXPECT_LE(estimate, actual * 3.0);
}

TEST(EquiDepthHistogramTest, SingleBucketDegenerate) {
  std::vector<int64_t> sample = {1, 2, 2, 3};
  const auto histogram = EquiDepthHistogram::Build(sample, 40, 1);
  ASSERT_EQ(histogram.buckets().size(), 1u);
  EXPECT_EQ(histogram.buckets()[0].lower, 1);
  EXPECT_EQ(histogram.buckets()[0].upper, 3);
  EXPECT_NEAR(histogram.buckets()[0].estimated_rows, 40.0, 1e-9);
}

TEST(SampleInt64ValuesTest, SizeAndMembership) {
  Int64Column column({10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  Rng rng(5);
  const auto values = SampleInt64Values(column, 0.5, rng);
  EXPECT_EQ(values.size(), 5u);
  for (int64_t v : values) {
    EXPECT_EQ(v % 10, 0);
    EXPECT_GE(v, 10);
    EXPECT_LE(v, 100);
  }
}

TEST(EquiDepthHistogramTest, ToStringRendersBuckets) {
  std::vector<int64_t> sample = {1, 2, 3, 4};
  const auto histogram = EquiDepthHistogram::Build(sample, 4, 2);
  const std::string rendered = histogram.ToString();
  EXPECT_NE(rendered.find("["), std::string::npos);
  EXPECT_NE(rendered.find("rows~"), std::string::npos);
}

}  // namespace
}  // namespace ndv
