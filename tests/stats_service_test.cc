#include "serve/stats_service.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/durable_catalog.h"
#include "common/random.h"
#include "datagen/zipf.h"
#include "distributed/clock.h"
#include "serve/protocol.h"
#include "serve/transport.h"
#include "table/table.h"

namespace ndv {
namespace {

// One-column table: `rows` rows, rows/dup_factor distinct values.
std::shared_ptr<const Table> MakeTestTable(int64_t rows, int64_t dup_factor,
                                           std::string column_name = "value") {
  ZipfColumnOptions options;
  options.rows = rows;
  options.z = 0.0;
  options.dup_factor = dup_factor;
  Table table;
  table.AddColumn(std::move(column_name), MakeZipfColumn(options));
  return std::make_shared<Table>(std::move(table));
}

StatsServiceOptions FastOptions() {
  StatsServiceOptions options;
  options.analyze.sample_fraction = 0.5;
  options.analyze.seed = 7;
  options.analyze.threads = 1;
  return options;
}

// Runs ServeConnection on a background thread until the connection closes.
class ServerFixture {
 public:
  ServerFixture(StatsService& service, Transport& transport)
      : thread_([&service, &transport] {
          ServeConnection(transport, service);
        }) {}
  ~ServerFixture() { thread_.join(); }

 private:
  std::thread thread_;
};

TEST(StatsServiceTest, ServesStatsEndToEndInProcess) {
  const auto table = MakeTestTable(2000, 100);  // D = 20
  StatsService service(table, FastOptions());
  EXPECT_EQ(service.epoch(), 1u);

  InProcessConnection conn;
  {
    ServerFixture server(service, conn.server());
    StatsClient client(conn.client(), {});

    const auto listed = client.List();
    ASSERT_TRUE(listed.ok()) << listed.status().ToString();
    ASSERT_EQ(listed->size(), 1u);
    EXPECT_EQ((*listed)[0], "value");

    const auto stats = client.GetStats("value");
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->epoch, 1u);
    EXPECT_FALSE(stats->stale);
    EXPECT_EQ(stats->stats.column_name, "value");
    EXPECT_EQ(stats->stats.table_rows, 2000);
    EXPECT_GT(stats->stats.estimate, 0.0);
    EXPECT_LE(stats->stats.lower, stats->stats.upper);

    const auto missing = client.GetStats("no_such_column");
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

    conn.Close();
  }
}

TEST(StatsServiceTest, AnalyzeIsACacheHitWhileFresh) {
  const auto table = MakeTestTable(2000, 100);
  StatsService service(table, FastOptions());

  InProcessConnection conn;
  {
    ServerFixture server(service, conn.server());
    StatsClient client(conn.client(), {});

    // Nothing changed since construction: ANALYZE is answered from cache.
    const auto probe = client.Analyze(/*force=*/false);
    ASSERT_TRUE(probe.ok()) << probe.status().ToString();
    EXPECT_FALSE(probe->refreshed);
    EXPECT_EQ(probe->epoch, 1u);
    EXPECT_EQ(probe->analyzed_columns, 0);

    // force bypasses the staleness probe and always rescans.
    const auto forced = client.Analyze(/*force=*/true);
    ASSERT_TRUE(forced.ok()) << forced.status().ToString();
    EXPECT_TRUE(forced->refreshed);
    EXPECT_EQ(forced->epoch, 2u);
    EXPECT_EQ(forced->analyzed_columns, 1);

    conn.Close();
  }
}

TEST(StatsServiceTest, DriftPastThresholdMarksStaleAndAnalyzeRefreshes) {
  const auto table = MakeTestTable(1000, 50);  // D = 20
  auto options = FastOptions();
  options.stale_changed_fraction = 0.2;
  StatsService service(table, options);

  // 30% novel rows inserted since the publication: Rule 1 fires.
  std::vector<uint64_t> novel;
  novel.reserve(300);
  for (uint64_t v = 0; v < 300; ++v) novel.push_back(Hash64(1000000 + v));
  service.ObserveInserts("value", novel);

  InProcessConnection conn;
  {
    ServerFixture server(service, conn.server());
    StatsClient client(conn.client(), {});

    const auto stale = client.GetStats("value");
    ASSERT_TRUE(stale.ok()) << stale.status().ToString();
    EXPECT_TRUE(stale->stale);

    const auto refreshed = client.Analyze(/*force=*/false);
    ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
    EXPECT_TRUE(refreshed->refreshed);
    EXPECT_EQ(refreshed->epoch, 2u);

    // The publication reset the drift baseline.
    const auto fresh = client.GetStats("value");
    ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
    EXPECT_FALSE(fresh->stale);
    EXPECT_EQ(fresh->epoch, 2u);

    conn.Close();
  }
}

TEST(StatsServiceTest, SmallDuplicateDriftStaysFresh) {
  const auto table = MakeTestTable(1000, 50);
  auto options = FastOptions();
  options.analyze.sample_fraction = 0.01;  // Wide published bracket.
  options.stale_changed_fraction = 0.2;
  StatsService service(table, options);

  // 10% re-inserted existing values: below the drift threshold, and the
  // running estimate stays inside the published bracket.
  std::vector<uint64_t> duplicates;
  duplicates.reserve(100);
  for (int64_t row = 0; row < 100; ++row) {
    duplicates.push_back(table->column(0).HashAt(row));
  }
  service.ObserveInserts("value", duplicates);

  InProcessConnection conn;
  {
    ServerFixture server(service, conn.server());
    StatsClient client(conn.client(), {});

    const auto stats = client.GetStats("value");
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_FALSE(stats->stale);

    const auto probe = client.Analyze(/*force=*/false);
    ASSERT_TRUE(probe.ok()) << probe.status().ToString();
    EXPECT_FALSE(probe->refreshed);
    EXPECT_EQ(probe->epoch, 1u);

    conn.Close();
  }
}

TEST(StatsServiceTest, BadStaleThresholdIsATypedErrorNotACrash) {
  const auto table = MakeTestTable(1000, 50);
  auto options = FastOptions();
  options.stale_changed_fraction = -0.5;  // A knob a client could misset.
  StatsService service(table, options);
  // The bad knob only matters once drift must actually be computed.
  service.ObserveInserts("value", {Hash64(999999)});

  InProcessConnection conn;
  {
    ServerFixture server(service, conn.server());
    StatsClient client(conn.client(), {});
    const auto stats = client.GetStats("value");
    ASSERT_FALSE(stats.ok());
    EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
    conn.Close();
  }
}

TEST(StatsServiceTest, MalformedFrameGetsErrorReplyNotDroppedConnection) {
  const auto table = MakeTestTable(1000, 50);
  StatsService service(table, FastOptions());

  InProcessConnection conn;
  {
    ServerFixture server(service, conn.server());

    ASSERT_TRUE(conn.client().Send("this is not a protocol message").ok());
    const auto payload = conn.client().Receive(5000);
    ASSERT_TRUE(payload.ok()) << payload.status().ToString();
    const auto reply = DecodeMessage(*payload);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->type, MessageType::kError);
    const Status carried = StatusFromError(*reply);
    EXPECT_TRUE(carried.code() == StatusCode::kDataLoss ||
                carried.code() == StatusCode::kInvalidArgument)
        << carried.ToString();

    // The connection survived: a well-formed request still works.
    StatsClient client(conn.client(), {});
    const auto listed = client.List();
    EXPECT_TRUE(listed.ok()) << listed.status().ToString();

    conn.Close();
  }
}

TEST(StatsServiceTest, ResponseTypedRequestIsRejected) {
  const auto table = MakeTestTable(1000, 50);
  StatsService service(table, FastOptions());
  Message bogus;
  bogus.type = MessageType::kStatsReply;
  bogus.request_id = 17;
  const Message reply = service.Submit(bogus);
  EXPECT_EQ(reply.type, MessageType::kError);
  EXPECT_EQ(reply.request_id, 17u);
  EXPECT_EQ(StatusFromError(reply).code(), StatusCode::kInvalidArgument);
}

TEST(StatsServiceTest, AdmissionControlShedsLoadWithUnavailable) {
  const auto table = MakeTestTable(20000, 100);
  auto options = FastOptions();
  options.max_inflight = 1;
  StatsService service(table, options);

  Message analyze;
  analyze.type = MessageType::kAnalyze;
  analyze.force = true;
  Message get;
  get.type = MessageType::kGetStats;
  get.column = "value";

  // A worker keeps the single admission slot busy with forced re-ANALYZEs;
  // the probe thread must eventually be shed with an "overloaded" error.
  std::atomic<bool> stop{false};
  std::thread worker([&] {
    while (!stop.load(std::memory_order_acquire)) service.Submit(analyze);
  });

  // Probe only while the worker demonstrably holds the slot (inflight
  // gauge reads 1): a count-bounded blind loop is flaky on one core, where
  // the probe can exhaust its budget while the worker sits between
  // Submits. Time-bound the loop instead.
  bool shed = false;
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!shed && std::chrono::steady_clock::now() < give_up) {
    if (service.inflight() == 0) {
      std::this_thread::yield();
      continue;
    }
    const Message reply = service.Submit(get);
    if (reply.type == MessageType::kError) {
      const Status status = StatusFromError(reply);
      ASSERT_EQ(status.code(), StatusCode::kUnavailable)
          << status.ToString();
      EXPECT_NE(status.message().find("overloaded"), std::string::npos)
          << status.ToString();
      shed = true;
    }
  }
  stop.store(true, std::memory_order_release);
  worker.join();
  EXPECT_TRUE(shed) << "admission control never shed a request";
  EXPECT_EQ(service.inflight(), 0);
}

TEST(TransportTest, BoundedQueueAppliesBackpressure) {
  InProcessConnection conn(/*queue_capacity=*/1);
  ASSERT_TRUE(conn.client().Send("first").ok());
  const Status full = conn.client().Send("second");
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.code(), StatusCode::kUnavailable);

  // Draining the queue frees the slot again.
  const auto got = conn.server().Receive(1000);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "first");
  EXPECT_TRUE(conn.client().Send("third").ok());
}

TEST(TransportTest, ReceiveTimesOutThenClosedConnectionIsUnavailable) {
  InProcessConnection conn;
  const auto timed_out = conn.client().Receive(10);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kDeadlineExceeded);

  conn.Close();
  const auto closed = conn.client().Receive(10);
  ASSERT_FALSE(closed.ok());
  EXPECT_EQ(closed.status().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(conn.server().Send("after close").ok());
}

TEST(FaultyTransportTest, DelaySleepsOnTheInjectedClock) {
  InProcessConnection conn;
  VirtualClock clock;
  FaultyTransport faulty(conn.client(), clock);
  TransportFault slow;
  slow.delay_ms = 5000;
  faulty.SetFault(0, slow);

  ASSERT_TRUE(conn.server().Send("slow frame").ok());
  const auto got = faulty.Receive(1000);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, "slow frame");
  // The 5-second stall happened on the virtual clock, not the wall clock.
  EXPECT_EQ(clock.NowMillis(), 5000);
}

TEST(FaultyTransportTest, CorruptFlipsOneByte) {
  InProcessConnection conn;
  VirtualClock clock;
  FaultyTransport faulty(conn.client(), clock);
  TransportFault corrupt;
  corrupt.corrupt = true;
  faulty.SetFault(0, corrupt);

  ASSERT_TRUE(conn.server().Send("payload").ok());
  const auto got = faulty.Receive(1000);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 7u);
  EXPECT_NE(*got, "payload");
}

TEST(FaultyTransportTest, TruncateChopsThePayloadTail) {
  InProcessConnection conn;
  VirtualClock clock;
  FaultyTransport faulty(conn.client(), clock);
  TransportFault truncate;
  truncate.truncate = true;
  faulty.SetFault(0, truncate);

  ASSERT_TRUE(conn.server().Send("payload").ok());
  const auto got = faulty.Receive(1000);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "pay");  // half of the 7 bytes survived delivery
}

TEST(StatsClientTest, TruncatedReplyIsRetriedToSuccess) {
  const auto table = MakeTestTable(1000, 50);
  StatsService service(table, FastOptions());

  InProcessConnection conn;
  VirtualClock clock;
  FaultyTransport faulty(conn.client(), clock);
  TransportFault truncate;
  truncate.truncate = true;
  faulty.SetFault(0, truncate);  // Chop the first reply mid-payload.

  {
    ServerFixture server(service, conn.server());
    StatsClientOptions options;
    options.retry.max_attempts = 3;
    options.clock = &clock;
    StatsClient client(faulty, options);

    // The truncated reply decodes as DataLoss — a retryable attempt
    // failure, not a client crash — and the second attempt succeeds.
    const auto stats = client.GetStats("value");
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->stats.column_name, "value");

    conn.Close();
  }
}

TEST(StatsClientTest, DroppedReplyTimesOutAndTheRetrySucceeds) {
  const auto table = MakeTestTable(1000, 50);
  StatsService service(table, FastOptions());

  InProcessConnection conn;
  VirtualClock clock;
  FaultyTransport faulty(conn.client(), clock);
  TransportFault drop;
  drop.drop = true;
  faulty.SetFault(0, drop);  // Swallow the reply to the first attempt.

  {
    ServerFixture server(service, conn.server());
    StatsClientOptions options;
    options.attempt_timeout_ms = 50;  // Real: the queue waits on a condvar.
    options.retry.max_attempts = 3;
    options.clock = &clock;  // Backoff sleeps are instant and observable.
    StatsClient client(faulty, options);

    const auto stats = client.GetStats("value");
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->stats.column_name, "value");
    // One backoff happened between the two attempts.
    EXPECT_GT(clock.NowMillis(), 0);

    conn.Close();
  }
}

TEST(StatsClientTest, CorruptReplyIsDataLossWithoutRetries) {
  // A 20-character column name places the corrupted byte inside the LIST
  // reply's string-length field, which breaks decoding deterministically.
  const auto table = MakeTestTable(1000, 50, "column_with_20_chars");
  StatsService service(table, FastOptions());

  InProcessConnection conn;
  VirtualClock clock;
  FaultyTransport faulty(conn.client(), clock);
  TransportFault corrupt;
  corrupt.corrupt = true;
  faulty.SetFault(0, corrupt);

  {
    ServerFixture server(service, conn.server());
    StatsClientOptions options;
    options.retry.max_attempts = 1;  // Surface the raw classification.
    options.clock = &clock;
    StatsClient client(faulty, options);

    const auto listed = client.List();
    ASSERT_FALSE(listed.ok());
    EXPECT_EQ(listed.status().code(), StatusCode::kDataLoss);

    conn.Close();
  }
}

TEST(StatsClientTest, CorruptReplyIsRetriedToSuccess) {
  const auto table = MakeTestTable(1000, 50, "column_with_20_chars");
  StatsService service(table, FastOptions());

  InProcessConnection conn;
  VirtualClock clock;
  FaultyTransport faulty(conn.client(), clock);
  TransportFault corrupt;
  corrupt.corrupt = true;
  faulty.SetFault(0, corrupt);

  {
    ServerFixture server(service, conn.server());
    StatsClientOptions options;
    options.retry.max_attempts = 3;
    options.clock = &clock;
    StatsClient client(faulty, options);

    const auto listed = client.List();
    ASSERT_TRUE(listed.ok()) << listed.status().ToString();
    ASSERT_EQ(listed->size(), 1u);
    EXPECT_EQ((*listed)[0], "column_with_20_chars");

    conn.Close();
  }
}

TEST(StatsClientTest, DeadlineCutsRetriesShort) {
  const auto table = MakeTestTable(1000, 50);
  StatsService service(table, FastOptions());

  InProcessConnection conn;
  VirtualClock clock;
  FaultyTransport faulty(conn.client(), clock);
  TransportFault drop;
  drop.drop = true;
  faulty.SetFault(0, drop);
  faulty.SetFault(1, drop);
  faulty.SetFault(2, drop);

  {
    ServerFixture server(service, conn.server());
    StatsClientOptions options;
    options.attempt_timeout_ms = 30;
    options.retry.max_attempts = 3;
    options.retry.backoff_base_ms = 100;
    options.deadline_ms = 50;  // Exhausted by the first backoff.
    options.clock = &clock;
    StatsClient client(faulty, options);

    const auto stats = client.GetStats("value");
    ASSERT_FALSE(stats.ok());
    EXPECT_EQ(stats.status().code(), StatusCode::kDeadlineExceeded);
    EXPECT_NE(stats.status().message().find("client deadline"),
              std::string::npos)
        << stats.status().ToString();

    conn.Close();
  }
}

// The durable serve boot path: a service built over a recovered
// DurableCatalog resumes the journaled epoch sequence and serves the
// journaled statistics without re-scanning the table.
TEST(StatsServiceDurabilityTest, RecoveredBootSkipsRescanAndResumesEpoch) {
  const auto table = MakeTestTable(2000, 100);
  const std::string dir = testing::TempDir() + "/stats_service_durable";
  std::system(("rm -rf " + dir).c_str());

  ColumnStats journaled;
  {
    auto durable = DurableCatalog::Open({.dir = dir});
    ASSERT_TRUE(durable.ok()) << durable.status().ToString();
    auto options = FastOptions();
    options.durable = durable->get();
    StatsService service(table, options);
    // The boot publication was journaled as epoch 1.
    EXPECT_EQ(service.epoch(), 1u);
    EXPECT_EQ((*durable)->epoch(), 1u);

    // A forced re-ANALYZE journals a second publication.
    Message analyze;
    analyze.type = MessageType::kAnalyze;
    analyze.force = true;
    const Message reply = service.Submit(analyze);
    ASSERT_EQ(reply.type, MessageType::kAnalyzeReply);
    EXPECT_EQ(reply.epoch, 2u);
    EXPECT_EQ((*durable)->epoch(), 2u);
    const auto stats = (*durable)->state().Find("value");
    ASSERT_TRUE(stats.has_value());
    journaled = *stats;
  }

  // Second boot: recovery replays the journal; the service publishes the
  // recovered state at the recovered epoch instead of re-analyzing.
  auto durable = DurableCatalog::Open({.dir = dir});
  ASSERT_TRUE(durable.ok()) << durable.status().ToString();
  EXPECT_EQ((*durable)->epoch(), 2u);
  auto options = FastOptions();
  options.analyze.seed = 999;  // A rescan would sample differently.
  options.durable = durable->get();
  StatsService service(table, options);
  EXPECT_EQ(service.epoch(), 2u);  // resumed, not restarted at 1

  Message get;
  get.type = MessageType::kGetStats;
  get.column = "value";
  const Message served = service.Submit(get);
  ASSERT_EQ(served.type, MessageType::kStatsReply);
  EXPECT_EQ(served.epoch, 2u);
  EXPECT_FALSE(served.stale);  // recovery marks the trackers fresh
  // Bit-identical to what the journal acknowledged before the "crash".
  EXPECT_EQ(served.stats.estimate, journaled.estimate);
  EXPECT_EQ(served.stats.sample_rows, journaled.sample_rows);
  EXPECT_EQ(served.stats.method, journaled.method);
}

}  // namespace
}  // namespace ndv
