// The ndvpack v2 contract: a blocked, codec-compressed pack is the same
// table. Heap -> v2 -> blocked columns must equal the heap columns
// value-for-value and hash-for-hash (including NaN / -0.0 and multi-block
// columns with short tails), the streaming file writer must emit the same
// bytes as the in-memory writer under any append chunking, v1 packs must
// keep loading through the same entry points, sampling and ANALYZE over
// blocked columns must be bit-identical to heap at every thread count, and
// the parser must reject every single-byte corruption with a Status.

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/stats_catalog.h"
#include "common/check.h"
#include "sample/block_sampler.h"
#include "storage/ndvpack.h"
#include "storage/pack_reader.h"
#include "storage/pack_writer.h"
#include "storage/table_loader.h"
#include "table/table.h"

namespace ndv {
namespace {

// Copies serialized bytes into an 8-byte-aligned shared buffer (the
// parser's alignment contract) that the opened table can retain.
class AlignedImage {
 public:
  explicit AlignedImage(const std::string& bytes)
      : words_(std::make_shared<std::vector<uint64_t>>((bytes.size() + 7) /
                                                       8)),
        size_(bytes.size()) {
    if (!bytes.empty()) {
      std::memcpy(words_->data(), bytes.data(), bytes.size());
    }
  }

  std::span<const uint8_t> bytes() const {
    return {reinterpret_cast<const uint8_t*>(words_->data()), size_};
  }
  std::shared_ptr<const void> owner() const { return words_; }

 private:
  std::shared_ptr<std::vector<uint64_t>> words_;
  size_t size_ = 0;
};

Table OpenV2OrDie(const AlignedImage& image) {
  auto opened = OpenPackV2FromBytes(image.bytes(), image.owner());
  NDV_CHECK_MSG(opened.ok(), "%s", opened.status().ToString().c_str());
  return std::move(opened).value();
}

// Rows chosen so multi-block configs get several full blocks plus a short
// tail, and every value class the hashers canonicalize is present.
Table MakeMixedTable(int64_t rows = 23) {
  std::vector<int64_t> ints;
  std::vector<double> doubles;
  std::vector<std::string> strings;
  for (int64_t i = 0; i < rows; ++i) {
    switch (i % 5) {
      case 0: ints.push_back(i * 3); break;
      case 1: ints.push_back(-i); break;
      case 2: ints.push_back(std::numeric_limits<int64_t>::min()); break;
      case 3: ints.push_back(std::numeric_limits<int64_t>::max()); break;
      default: ints.push_back(42); break;
    }
    switch (i % 6) {
      case 0: doubles.push_back(0.0); break;
      case 1: doubles.push_back(-0.0); break;
      case 2:
        doubles.push_back(std::numeric_limits<double>::quiet_NaN());
        break;
      case 3:
        doubles.push_back(-std::numeric_limits<double>::infinity());
        break;
      case 4: doubles.push_back(static_cast<double>(i) * 1.5); break;
      default: doubles.push_back(5e-324); break;  // denormal
    }
    switch (i % 4) {
      case 0: strings.emplace_back(); break;
      case 1: strings.push_back("comma,quote\"newline\n"); break;
      case 2: strings.push_back("repeat"); break;
      default: strings.push_back("row " + std::to_string(i)); break;
    }
  }
  Table table;
  table.AddColumn("ints", std::make_unique<Int64Column>(std::move(ints)));
  table.AddColumn("doubles",
                  std::make_unique<DoubleColumn>(std::move(doubles)));
  table.AddColumn("strings",
                  std::make_unique<StringColumn>(std::move(strings)));
  return table;
}

void ExpectTablesEqual(const Table& expected, const Table& actual) {
  ASSERT_EQ(expected.NumRows(), actual.NumRows());
  ASSERT_EQ(expected.NumColumns(), actual.NumColumns());
  for (int64_t c = 0; c < expected.NumColumns(); ++c) {
    SCOPED_TRACE("column " + expected.column_name(c));
    EXPECT_EQ(expected.column_name(c), actual.column_name(c));
    const Column& a = expected.column(c);
    const Column& b = actual.column(c);
    ASSERT_EQ(a.type(), b.type());
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.HashAll(), b.HashAll());
    for (int64_t row = 0; row < a.size(); ++row) {
      ASSERT_EQ(a.HashAt(row), b.HashAt(row)) << "row " << row;
      ASSERT_EQ(a.ValueToString(row), b.ValueToString(row)) << "row " << row;
    }
    // Batch kernels across arbitrary (block-misaligned) slices.
    if (a.size() >= 3) {
      const int64_t begin = 1;
      const int64_t end = a.size() - 1;
      std::vector<uint64_t> ha(static_cast<size_t>(end - begin));
      std::vector<uint64_t> hb(ha.size());
      a.HashSlice(begin, end, ha.data());
      b.HashSlice(begin, end, hb.data());
      EXPECT_EQ(ha, hb);
    }
  }
}

// Process-unique: ctest runs this binary twice in parallel (native and
// NDV_SIMD=scalar), so shared fixture names would race.
std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + std::to_string(getpid()) + "_" + name;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  NDV_CHECK_MSG(in.good(), "cannot read %s", path.c_str());
  std::ostringstream out;
  out << in.rdbuf();
  return std::move(out).str();
}

TEST(PackV2Test, RoundTripsEveryCodecAndBlocking) {
  const Table table = MakeMixedTable();
  for (const auto codec :
       {PackCodecChoice::kAutoCodec, PackCodecChoice::kForceRaw,
        PackCodecChoice::kForceDelta, PackCodecChoice::kForceDict}) {
    for (const int64_t block_rows : {1, 3, 8, 4096}) {
      SCOPED_TRACE(std::string(PackCodecChoiceName(codec)) + " block_rows=" +
                   std::to_string(block_rows));
      PackWriteOptions options;
      options.codec = codec;
      options.block_rows = block_rows;
      const AlignedImage image(SerializePackV2(table, options));
      const Table opened = OpenV2OrDie(image);
      ExpectTablesEqual(table, opened);
    }
  }
}

TEST(PackV2Test, EmptyAndSingleRowTablesRoundTrip) {
  Table empty;
  empty.AddColumn("ints",
                  std::make_unique<Int64Column>(std::vector<int64_t>{}));
  empty.AddColumn("strings", std::make_unique<StringColumn>(
                                 std::vector<std::string>{}));
  const AlignedImage empty_image(SerializePackV2(empty));
  ExpectTablesEqual(empty, OpenV2OrDie(empty_image));

  const Table one = MakeMixedTable(1);
  const AlignedImage one_image(SerializePackV2(one));
  ExpectTablesEqual(one, OpenV2OrDie(one_image));
}

TEST(PackV2Test, StreamingFileMatchesInMemoryByteForByte) {
  const Table table = MakeMixedTable(100);
  PackWriteOptions options;
  options.block_rows = 16;

  const std::string in_memory = SerializePackV2(table, options);
  const std::string path = TempPath("pack_v2_stream.ndvpack");
  const Status written = WritePackFileV2(table, path, options);
  ASSERT_TRUE(written.ok()) << written.ToString();
  EXPECT_EQ(ReadFileOrDie(path), in_memory);

  // And the file opens through the public loader.
  auto loaded = LoadTableAuto(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectTablesEqual(table, *loaded);
}

TEST(PackV2Test, AppendChunkingDoesNotChangeTheBytes) {
  std::vector<int64_t> values(100);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int64_t>(i * i);
  }
  PackWriteOptions options;
  options.block_rows = 16;

  const auto write_with_chunk = [&](size_t chunk) {
    std::string bytes;
    auto writer = PackWriter::CreateInMemory(&bytes, options);
    NDV_CHECK(writer->StartColumn("v", ColumnType::kInt64).ok());
    for (size_t i = 0; i < values.size(); i += chunk) {
      const size_t take = std::min(chunk, values.size() - i);
      NDV_CHECK(
          writer->AppendInt64s({values.data() + i, take}).ok());
    }
    NDV_CHECK(writer->FinishColumn().ok());
    NDV_CHECK(writer->Finalize().ok());
    return bytes;
  };

  const std::string whole = write_with_chunk(values.size());
  for (const size_t chunk : {1u, 3u, 16u, 17u, 99u}) {
    EXPECT_EQ(write_with_chunk(chunk), whole) << "chunk " << chunk;
  }
}

TEST(PackV2Test, RepackIsAFixedPoint) {
  const Table table = MakeMixedTable(50);
  PackWriteOptions options;
  options.block_rows = 8;
  const std::string first = SerializePackV2(table, options);
  const AlignedImage image(first);
  // Repacking the blocked columns (decode -> re-encode every block)
  // reproduces the image byte-for-byte under the same options.
  const std::string second = SerializePackV2(OpenV2OrDie(image), options);
  EXPECT_EQ(first, second);
}

TEST(PackV2Test, MismatchedColumnLengthsFailFinishColumn) {
  std::string bytes;
  auto writer = PackWriter::CreateInMemory(&bytes);
  const std::vector<int64_t> three = {1, 2, 3};
  const std::vector<int64_t> two = {1, 2};
  ASSERT_TRUE(writer->StartColumn("a", ColumnType::kInt64).ok());
  ASSERT_TRUE(writer->AppendInt64s(three).ok());
  ASSERT_TRUE(writer->FinishColumn().ok());
  ASSERT_TRUE(writer->StartColumn("b", ColumnType::kInt64).ok());
  ASSERT_TRUE(writer->AppendInt64s(two).ok());
  const Status mismatch = writer->FinishColumn();
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.code(), StatusCode::kInvalidArgument);
}

TEST(PackV2Test, FailedWriteLeavesNoDestinationFile) {
  // A writer poisoned by a row-count mismatch must refuse to finalize, and
  // abandoning it must leave neither the destination nor the temp file
  // (the write-temp + fsync + rename seam).
  const std::string path = TempPath("pack_v2_atomic.ndvpack");
  {
    auto writer = PackWriter::Create(path);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    const std::vector<int64_t> three = {1, 2, 3};
    const std::vector<int64_t> two = {1, 2};
    ASSERT_TRUE((*writer)->StartColumn("a", ColumnType::kInt64).ok());
    ASSERT_TRUE((*writer)->AppendInt64s(three).ok());
    ASSERT_TRUE((*writer)->FinishColumn().ok());
    ASSERT_TRUE((*writer)->StartColumn("b", ColumnType::kInt64).ok());
    ASSERT_TRUE((*writer)->AppendInt64s(two).ok());
    ASSERT_FALSE((*writer)->FinishColumn().ok());
    ASSERT_FALSE((*writer)->Finalize().ok());
  }
  std::ifstream dest(path, std::ios::binary);
  EXPECT_FALSE(dest.good()) << "failed pack left " << path;
  std::ifstream temp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(temp.good()) << "failed pack left " << path << ".tmp";
}

TEST(PackV2Test, V1FilesStillLoadAndRepackToV2) {
  const Table table = MakeMixedTable(40);
  const std::string v1_path = TempPath("pack_v2_compat_v1.ndvpack");
  ASSERT_TRUE(WritePackFileV1(table, v1_path).ok());

  auto v1_loaded = LoadTableAuto(v1_path);
  ASSERT_TRUE(v1_loaded.ok()) << v1_loaded.status().ToString();
  ExpectTablesEqual(table, *v1_loaded);

  // Repack the mapped v1 table into v2 through the streaming column
  // copier, then reopen.
  const std::string v2_path = TempPath("pack_v2_compat_v2.ndvpack");
  ASSERT_TRUE(WritePackFileV2(*v1_loaded, v2_path).ok());
  auto v2_loaded = LoadTableAuto(v2_path);
  ASSERT_TRUE(v2_loaded.ok()) << v2_loaded.status().ToString();
  ExpectTablesEqual(table, *v2_loaded);
}

TEST(PackV2Test, CompressesDeltaFriendlyAndLowCardinalityData) {
  // Sorted int64 keys and a low-cardinality string column: the auto codec
  // must beat the raw (v1-equivalent) encoding on the wire.
  std::vector<int64_t> sorted(20000);
  for (size_t i = 0; i < sorted.size(); ++i) {
    sorted[i] = 1000000 + static_cast<int64_t>(i) * 7;
  }
  std::vector<std::string> labels;
  labels.reserve(sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    labels.push_back("state_" + std::to_string(i % 50));
  }
  Table table;
  table.AddColumn("key", std::make_unique<Int64Column>(std::move(sorted)));
  table.AddColumn("label",
                  std::make_unique<StringColumn>(std::move(labels)));

  PackWriteOptions raw;
  raw.codec = PackCodecChoice::kForceRaw;
  const std::string raw_bytes = SerializePackV2(table, raw);
  const std::string auto_bytes = SerializePackV2(table);
  EXPECT_LT(auto_bytes.size(), raw_bytes.size() / 2)
      << "auto " << auto_bytes.size() << " vs raw " << raw_bytes.size();

  // The inspector agrees: every key block is delta, every label block dict.
  const AlignedImage image(auto_bytes);
  auto info = InspectPackV2(image.bytes());
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  ASSERT_EQ(info->columns.size(), 2u);
  for (const PackV2BlockInfo& block : info->columns[0].blocks) {
    EXPECT_EQ(block.codec, PackBlockCodec::kDelta);
  }
  for (const PackV2BlockInfo& block : info->columns[1].blocks) {
    EXPECT_EQ(block.codec, PackBlockCodec::kDictCodes);
  }
  EXPECT_LT(info->columns[0].packed_bytes, info->columns[0].raw_bytes);
  EXPECT_LT(info->columns[1].packed_bytes, info->columns[1].raw_bytes);

  // And the compressed image still equals the source table.
  ExpectTablesEqual(table, OpenV2OrDie(image));
}

TEST(PackV2Test, EverySingleByteCorruptionIsRejected) {
  const Table table = MakeMixedTable(11);
  PackWriteOptions options;
  options.block_rows = 4;
  const std::string bytes = SerializePackV2(table, options);

  // Both checksums (header over [0, 48), trailer over the payload) cover
  // every byte, so no single-byte flip may parse.
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x5a);
    const AlignedImage image(corrupt);
    const auto info = InspectPackV2(image.bytes());
    EXPECT_FALSE(info.ok()) << "flip at byte " << i << " parsed";
    const auto opened = OpenPackV2FromBytes(image.bytes(), image.owner());
    EXPECT_FALSE(opened.ok()) << "flip at byte " << i << " opened";
  }

  // Truncations at every length short of the full image fail too.
  for (const size_t cut : {size_t{0}, size_t{7}, size_t{8}, size_t{55},
                           size_t{56}, bytes.size() - 1}) {
    const AlignedImage image(bytes.substr(0, cut));
    EXPECT_FALSE(InspectPackV2(image.bytes()).ok()) << "cut " << cut;
  }
}

TEST(PackV2Test, AnalyzeMatchesHeapAtEveryThreadCount) {
  const Table heap = MakeMixedTable(5000);
  PackWriteOptions options;
  options.block_rows = 512;
  const AlignedImage image(SerializePackV2(heap, options));
  const Table blocked = OpenV2OrDie(image);

  for (const int threads : {1, 2, 4, 8}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    AnalyzeOptions analyze;
    analyze.sample_fraction = 0.2;
    analyze.seed = 17;
    analyze.threads = threads;
    const StatsCatalog from_heap = AnalyzeTable(heap, analyze);
    const StatsCatalog from_blocked = AnalyzeTable(blocked, analyze);
    ASSERT_EQ(from_heap.entries().size(), from_blocked.entries().size());
    for (size_t c = 0; c < from_heap.entries().size(); ++c) {
      const ColumnStats& a = from_heap.entries()[c];
      const ColumnStats& b = from_blocked.entries()[c];
      EXPECT_EQ(a.estimate, b.estimate) << a.column_name;
      EXPECT_EQ(a.lower, b.lower) << a.column_name;
      EXPECT_EQ(a.upper, b.upper) << a.column_name;
      EXPECT_EQ(a.sample_rows, b.sample_rows) << a.column_name;
    }

    // Exact full scans agree too (the parallel distinct kernel).
    for (int64_t c = 0; c < heap.NumColumns(); ++c) {
      EXPECT_EQ(ExactDistinctHashSet(heap.column(c), threads),
                ExactDistinctHashSet(blocked.column(c), threads))
          << heap.column_name(c);
    }
  }
}

TEST(PackV2Test, BlockSamplerSkipsMatchHeapOverCompressedBlocks) {
  // Algorithm L's block-skipping scan over lazily decoded blocks must
  // produce the identical reservoir to the heap column: the discard-run
  // optimization may not change which blocks' values enter the sample.
  const Table heap = MakeMixedTable(20000);
  PackWriteOptions options;
  options.block_rows = 256;
  const AlignedImage image(SerializePackV2(heap, options));
  const Table blocked = OpenV2OrDie(image);

  for (int64_t c = 0; c < heap.NumColumns(); ++c) {
    SCOPED_TRACE("column " + heap.column_name(c));
    const ReservoirSamplerL from_heap = BlockSampleColumn(
        heap.column(c), 0, heap.NumRows(), /*capacity=*/500, Rng(99));
    const ReservoirSamplerL from_blocked = BlockSampleColumn(
        blocked.column(c), 0, blocked.NumRows(), /*capacity=*/500, Rng(99));
    EXPECT_EQ(from_heap.sample(), from_blocked.sample());
  }
}

}  // namespace
}  // namespace ndv
