#include "table/csv.h"

#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "table/table.h"

namespace ndv {
namespace {

TEST(ParseCsvTest, SimpleDocument) {
  const auto rows = ParseCsv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(rows.has_value());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ((*rows)[2], (std::vector<std::string>{"4", "5", "6"}));
}

TEST(ParseCsvTest, QuotedFieldsWithCommasAndNewlines) {
  const auto rows = ParseCsv("name,note\n\"Doe, Jane\",\"line1\nline2\"\n");
  ASSERT_TRUE(rows.has_value());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1][0], "Doe, Jane");
  EXPECT_EQ((*rows)[1][1], "line1\nline2");
}

TEST(ParseCsvTest, EscapedQuotes) {
  const auto rows = ParseCsv("x\n\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(rows.has_value());
  EXPECT_EQ((*rows)[1][0], "he said \"hi\"");
}

TEST(ParseCsvTest, CrLfTolerated) {
  const auto rows = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(rows.has_value());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1][1], "2");
}

TEST(ParseCsvTest, MissingTrailingNewline) {
  const auto rows = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(rows.has_value());
  ASSERT_EQ(rows->size(), 2u);
}

TEST(ParseCsvTest, EmptyFields) {
  const auto rows = ParseCsv("a,,c\n,,\n");
  ASSERT_TRUE(rows.has_value());
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"", "", ""}));
}

TEST(ParseCsvTest, UnterminatedQuoteIsMalformed) {
  EXPECT_FALSE(ParseCsv("a\n\"oops\n").has_value());
}

TEST(ParseCsvTest, EmptyDocument) {
  const auto rows = ParseCsv("");
  ASSERT_TRUE(rows.has_value());
  EXPECT_TRUE(rows->empty());
}

TEST(ParseCsvDiagnosticsTest, UnterminatedQuoteNamesItsLine) {
  const auto result = ParseCsvOrStatus("a,b\n1,2\n3,\"oops\n4,5\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.status().message(), "unterminated quote opened at line 3");
}

TEST(ParseCsvDiagnosticsTest, QuoteLineCountsEmbeddedNewlines) {
  // The quoted field on line 2 swallows two newlines; the bad quote opens
  // on physical line 4.
  const auto result = ParseCsvOrStatus("h\n\"a\nb\nc\",\"unclosed\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().message(), "unterminated quote opened at line 4");
}

TEST(ReadCsvDiagnosticsTest, RaggedRowNamesLineAndWidths) {
  const auto result = ReadCsvAsStringsOrStatus("a,b,c,d\n1,2,3,4\n5,6,7\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.status().message(),
            "ragged row at line 3: expected 4 fields, got 3");
}

TEST(ReadCsvDiagnosticsTest, RaggedRowLineAccountsForQuotedNewlines) {
  // Row 2 of data starts on physical line 4 because the first data row
  // contains an embedded newline.
  const auto result =
      ReadCsvInferredOrStatus("a,b\n\"x\ny\",1\nonly-one-field\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().message(),
            "ragged row at line 4: expected 2 fields, got 1");
}

TEST(ReadCsvDiagnosticsTest, EmptyDocumentIsMissingHeader) {
  const auto result = ReadCsvAsStringsOrStatus("");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().message(),
            "empty CSV document: missing header row");
  EXPECT_EQ(ReadCsvInferredOrStatus("").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ReadCsvDiagnosticsTest, SuccessMatchesLegacyWrapper) {
  const std::string text = "id,name\n1,ada\n2,grace\n";
  const auto via_status = ReadCsvInferredOrStatus(text);
  ASSERT_TRUE(via_status.ok());
  const auto via_optional = ReadCsvInferred(text);
  ASSERT_TRUE(via_optional.has_value());
  EXPECT_EQ(via_status->NumRows(), via_optional->NumRows());
  EXPECT_EQ(via_status->NumColumns(), via_optional->NumColumns());
}

TEST(WriteCsvTest, RoundTripsThroughParse) {
  Table table;
  table.AddColumn("id", std::make_unique<Int64Column>(
                            std::vector<int64_t>{1, 2, 3}));
  table.AddColumn("name", std::make_unique<StringColumn>(std::vector<std::string>{
                              "plain", "with,comma", "with\"quote"}));
  std::ostringstream out;
  WriteCsv(table, out);
  const auto rows = ParseCsv(out.str());
  ASSERT_TRUE(rows.has_value());
  ASSERT_EQ(rows->size(), 4u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"id", "name"}));
  EXPECT_EQ((*rows)[2][1], "with,comma");
  EXPECT_EQ((*rows)[3][1], "with\"quote");
}

TEST(ReadCsvAsStringsTest, BuildsTable) {
  const auto table = ReadCsvAsStrings("city,count\nparis,2\nrome,3\n");
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(table->NumRows(), 2);
  EXPECT_EQ(table->NumColumns(), 2);
  EXPECT_EQ(table->column_name(1), "count");
  EXPECT_EQ(table->column(0).ValueToString(1), "rome");
}

TEST(ReadCsvAsStringsTest, RejectsRaggedRows) {
  EXPECT_FALSE(ReadCsvAsStrings("a,b\n1\n").has_value());
}

TEST(ReadCsvAsStringsTest, RejectsEmptyDocument) {
  EXPECT_FALSE(ReadCsvAsStrings("").has_value());
}

TEST(ReadCsvInferredTest, InfersColumnTypes) {
  const auto table =
      ReadCsvInferred("id,score,name\n1,0.5,alice\n2,1.25,bob\n-3,2,carol\n");
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(table->column(0).type(), ColumnType::kInt64);
  EXPECT_EQ(table->column(1).type(), ColumnType::kDouble);
  EXPECT_EQ(table->column(2).type(), ColumnType::kString);
  EXPECT_EQ(table->column(0).ValueToString(2), "-3");
  EXPECT_EQ(table->column(2).ValueToString(1), "bob");
}

TEST(ReadCsvInferredTest, MixedFieldFallsBackToString) {
  const auto table = ReadCsvInferred("x\n1\n2\noops\n");
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(table->column(0).type(), ColumnType::kString);
}

TEST(ReadCsvInferredTest, EmptyFieldBlocksNumericInference) {
  const auto table = ReadCsvInferred("x\n1\n\n3\n");
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(table->column(0).type(), ColumnType::kString);
}

TEST(ReadCsvInferredTest, HeaderOnlyYieldsStringColumns) {
  const auto table = ReadCsvInferred("a,b\n");
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(table->NumRows(), 0);
  EXPECT_EQ(table->column(0).type(), ColumnType::kString);
}

TEST(ReadCsvInferredTest, HashesMatchTypedSemantics) {
  // Integer columns parsed from text must hash like native Int64Columns
  // (value equality, not string equality: "01" and "1" collide as ints...
  // -- they parse distinctly here, so verify plain equality semantics).
  const auto table = ReadCsvInferred("v\n7\n7\n8\n");
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(table->column(0).HashAt(0), table->column(0).HashAt(1));
  EXPECT_NE(table->column(0).HashAt(0), table->column(0).HashAt(2));
  EXPECT_EQ(ExactDistinctHashSet(table->column(0)), 2);
}

}  // namespace
}  // namespace ndv
