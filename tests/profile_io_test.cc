#include "profile/profile_io.h"

#include <vector>

#include <gtest/gtest.h>

namespace ndv {
namespace {

TEST(ProfileIoTest, RoundTripsTypicalSummary) {
  const SampleSummary original =
      MakeSummary(100000, std::vector<int64_t>{120, 35, 0, 7, 0, 0, 2});
  const std::string text = SerializeSummary(original);
  const auto parsed = DeserializeSummary(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->table_rows, original.table_rows);
  EXPECT_EQ(parsed->sample_rows, original.sample_rows);
  EXPECT_EQ(parsed->distinct_rows, original.distinct_rows);
  EXPECT_EQ(parsed->freq, original.freq);
}

TEST(ProfileIoTest, RoundTripsWithReplacementFlag) {
  SampleSummary original = MakeSummary(500, std::vector<int64_t>{10});
  original.distinct_rows = false;
  const auto parsed = DeserializeSummary(SerializeSummary(original));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->distinct_rows);
}

TEST(ProfileIoTest, RoundTripsEmptySample) {
  SampleSummary original;
  original.table_rows = 42;
  const auto parsed = DeserializeSummary(SerializeSummary(original));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->table_rows, 42);
  EXPECT_EQ(parsed->sample_rows, 0);
  EXPECT_TRUE(parsed->freq.empty());
}

TEST(ProfileIoTest, SerializedFormIsStable) {
  const SampleSummary summary =
      MakeSummary(1000, std::vector<int64_t>{3, 1});
  EXPECT_EQ(SerializeSummary(summary), "ndv-summary-v1 1000 5 1\n1:3 2:1\n");
}

TEST(ProfileIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(DeserializeSummary("").has_value());
  EXPECT_FALSE(DeserializeSummary("nope\n1:1\n").has_value());
  EXPECT_FALSE(DeserializeSummary("ndv-summary-v1 100\n1:1\n").has_value());
  // Count/frequency must be positive integers.
  EXPECT_FALSE(
      DeserializeSummary("ndv-summary-v1 100 1 1\n0:1\n").has_value());
  EXPECT_FALSE(
      DeserializeSummary("ndv-summary-v1 100 1 1\n1:x\n").has_value());
  // Sample larger than table.
  EXPECT_FALSE(
      DeserializeSummary("ndv-summary-v1 3 5 1\n1:5\n").has_value());
  // Profile total disagrees with declared r.
  EXPECT_FALSE(
      DeserializeSummary("ndv-summary-v1 100 5 1\n1:2\n").has_value());
  // Bad flag.
  EXPECT_FALSE(
      DeserializeSummary("ndv-summary-v1 100 2 7\n1:2\n").has_value());
}

TEST(ProfileIoTest, ToleratesTrailingNewlineVariants) {
  const auto parsed =
      DeserializeSummary("ndv-summary-v1 100 3 1\n1:1 2:1");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->d(), 2);
  EXPECT_EQ(parsed->r(), 3);
}

}  // namespace
}  // namespace ndv
