#include "datagen/zipf.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include <gtest/gtest.h>

#include "table/table.h"

namespace ndv {
namespace {

TEST(ZipfClassFrequenciesTest, ZeroSkewIsAllSingletons) {
  const auto freqs = ZipfClassFrequencies(1000, 0.0);
  EXPECT_EQ(freqs.size(), 1000u);
  for (int64_t f : freqs) EXPECT_EQ(f, 1);
}

TEST(ZipfClassFrequenciesTest, SumsToRows) {
  for (double z : {0.5, 1.0, 2.0, 3.0, 4.0}) {
    for (int64_t rows : {100, 1000, 10000}) {
      const auto freqs = ZipfClassFrequencies(rows, z);
      const int64_t total =
          std::accumulate(freqs.begin(), freqs.end(), int64_t{0});
      EXPECT_EQ(total, rows) << "z=" << z << " rows=" << rows;
    }
  }
}

TEST(ZipfClassFrequenciesTest, FrequenciesDescendAndPositive) {
  const auto freqs = ZipfClassFrequencies(10000, 2.0);
  for (size_t i = 0; i < freqs.size(); ++i) {
    EXPECT_GE(freqs[i], 1);
    if (i > 0) {
      EXPECT_LE(freqs[i], freqs[i - 1]);
    }
  }
}

TEST(ZipfClassFrequenciesTest, HigherSkewFewerClasses) {
  const auto z1 = ZipfClassFrequencies(10000, 1.0);
  const auto z2 = ZipfClassFrequencies(10000, 2.0);
  const auto z4 = ZipfClassFrequencies(10000, 4.0);
  EXPECT_GT(z1.size(), z2.size());
  EXPECT_GT(z2.size(), z4.size());
}

TEST(ZipfClassFrequenciesTest, PaperScaleSanity) {
  // Z=2 on a 1000-row base yields a few dozen classes (the paper reports
  // 49 with its generator; ours lands in the same regime).
  const auto freqs = ZipfClassFrequencies(1000, 2.0);
  EXPECT_GE(freqs.size(), 20u);
  EXPECT_LE(freqs.size(), 80u);
}

TEST(ZipfClassFrequenciesTest, SingleRow) {
  const auto freqs = ZipfClassFrequencies(1, 2.0);
  ASSERT_EQ(freqs.size(), 1u);
  EXPECT_EQ(freqs[0], 1);
}

TEST(MakeZipfColumnTest, RowCountAndDistinctCount) {
  ZipfColumnOptions options;
  options.rows = 100000;
  options.z = 1.0;
  options.dup_factor = 10;
  const auto column = MakeZipfColumn(options);
  EXPECT_EQ(column->size(), 100000);
  EXPECT_EQ(ExactDistinctHashSet(*column), ZipfDistinctValues(options));
}

TEST(MakeZipfColumnTest, DuplicationPreservesDistinctCount) {
  ZipfColumnOptions base;
  base.rows = 10000;
  base.z = 1.0;
  base.dup_factor = 1;
  ZipfColumnOptions duplicated;
  duplicated.rows = 100000;
  duplicated.z = 1.0;
  duplicated.dup_factor = 10;
  // Same base rows -> same class structure -> same D.
  EXPECT_EQ(ZipfDistinctValues(base), ZipfDistinctValues(duplicated));
}

TEST(MakeZipfColumnTest, FrequencyMultisetMatchesSpec) {
  ZipfColumnOptions options;
  options.rows = 5000;
  options.z = 2.0;
  options.dup_factor = 5;

  const auto column = MakeZipfColumn(options);
  // NOLINTNEXTLINE(ndv-no-std-hash-container): frequency tally consumed
  // via sorted copy; iteration order never reaches an assertion.
  std::unordered_map<int64_t, int64_t> counts;
  for (int64_t v : column->values()) ++counts[v];
  auto expected = ZipfClassFrequencies(1000, 2.0);
  std::vector<int64_t> observed;
  observed.reserve(counts.size());
  for (const auto& [value, count] : counts) observed.push_back(count);
  std::sort(observed.begin(), observed.end(), std::greater<>());
  for (auto& f : expected) f *= 5;
  EXPECT_EQ(observed, expected);
}

TEST(MakeZipfColumnTest, DeterministicInSeed) {
  ZipfColumnOptions options;
  options.rows = 1000;
  options.z = 1.0;
  options.seed = 77;
  const auto a = MakeZipfColumn(options);
  const auto b = MakeZipfColumn(options);
  EXPECT_EQ(a->values(), b->values());
  options.seed = 78;
  const auto c = MakeZipfColumn(options);
  EXPECT_NE(a->values(), c->values());
}

TEST(MakeZipfColumnTest, LayoutChangesOrderNotContent) {
  ZipfColumnOptions sorted;
  sorted.rows = 1000;
  sorted.z = 2.0;
  sorted.layout = RowLayout::kSorted;
  ZipfColumnOptions shuffled = sorted;
  shuffled.layout = RowLayout::kRandom;
  ZipfColumnOptions clustered = sorted;
  clustered.layout = RowLayout::kClustered;
  clustered.cluster_run = 100;
  const auto a = MakeZipfColumn(sorted);
  const auto b = MakeZipfColumn(shuffled);
  const auto c = MakeZipfColumn(clustered);
  EXPECT_NE(a->values(), b->values());
  EXPECT_NE(a->values(), c->values());
  auto sa = a->values();
  auto sb = b->values();
  auto sc = c->values();
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  std::sort(sc.begin(), sc.end());
  EXPECT_EQ(sa, sb);
  EXPECT_EQ(sa, sc);
}

TEST(MakeZipfColumnTest, SortedLayoutIsNonDecreasingWithinClassBlocks) {
  ZipfColumnOptions options;
  options.rows = 500;
  options.z = 1.0;
  options.layout = RowLayout::kSorted;
  const auto column = MakeZipfColumn(options);
  // Class ids are emitted in rank order: values never decrease.
  for (size_t i = 1; i < column->values().size(); ++i) {
    EXPECT_LE(column->values()[i - 1], column->values()[i]);
  }
}

TEST(MakeZipfColumnTest, ClusteredLayoutKeepsRunsIntact) {
  ZipfColumnOptions options;
  options.rows = 1000;
  options.z = 0.0;  // values 1..1000 exactly once: runs are recognizable
  options.layout = RowLayout::kClustered;
  options.cluster_run = 50;
  const auto column = MakeZipfColumn(options);
  // Within every aligned 50-row run, values are consecutive and ascending.
  for (int64_t run = 0; run < 20; ++run) {
    for (int64_t i = 1; i < 50; ++i) {
      EXPECT_EQ(column->values()[static_cast<size_t>(run * 50 + i)],
                column->values()[static_cast<size_t>(run * 50 + i - 1)] + 1);
    }
  }
}

TEST(MakeZipfColumnTest, RejectsNonDivisibleDuplication) {
  ZipfColumnOptions options;
  options.rows = 1001;
  options.dup_factor = 10;
  EXPECT_DEATH(MakeZipfColumn(options), "multiple");
}

TEST(ZipfianGeneratorTest, SamplesWithinDomain) {
  ZipfianGenerator zipf(100, 1.0);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = zipf.Sample(rng);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(ZipfianGeneratorTest, RankZeroDominatesUnderSkew) {
  ZipfianGenerator zipf(1000, 2.0);
  Rng rng(6);
  int64_t zeros = 0;
  constexpr int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.Sample(rng) == 0) ++zeros;
  }
  // P(0) = 1/zeta_1000(2) ~= 0.6087.
  EXPECT_NEAR(static_cast<double>(zeros) / kDraws, 0.6087, 0.03);
}

TEST(ZipfianGeneratorTest, UniformWhenZIsZero) {
  ZipfianGenerator zipf(10, 0.0);
  Rng rng(7);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<size_t>(zipf.Sample(rng))];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10.0, kDraws * 0.01);
  }
}

}  // namespace
}  // namespace ndv
