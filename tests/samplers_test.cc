#include "sample/samplers.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace ndv {
namespace {

bool AllInRange(const std::vector<int64_t>& rows, int64_t n) {
  return std::all_of(rows.begin(), rows.end(),
                     [n](int64_t r) { return 0 <= r && r < n; });
}

bool AllDistinct(const std::vector<int64_t>& rows) {
  std::set<int64_t> s(rows.begin(), rows.end());
  return s.size() == rows.size();
}

TEST(SampleWithReplacementTest, SizeAndRange) {
  Rng rng(1);
  const auto rows = SampleWithReplacement(100, 50, rng);
  EXPECT_EQ(rows.size(), 50u);
  EXPECT_TRUE(AllInRange(rows, 100));
}

TEST(SampleWithReplacementTest, CanExceedPopulationAndRepeat) {
  Rng rng(2);
  const auto rows = SampleWithReplacement(3, 100, rng);
  EXPECT_EQ(rows.size(), 100u);
  EXPECT_FALSE(AllDistinct(rows));
}

TEST(SampleWithReplacementTest, EmptySample) {
  Rng rng(3);
  EXPECT_TRUE(SampleWithReplacement(10, 0, rng).empty());
}

TEST(FloydTest, ProducesDistinctRowsOfRightSize) {
  Rng rng(4);
  const auto rows = SampleWithoutReplacementFloyd(1000, 100, rng);
  EXPECT_EQ(rows.size(), 100u);
  EXPECT_TRUE(AllInRange(rows, 1000));
  EXPECT_TRUE(AllDistinct(rows));
}

TEST(FloydTest, FullPopulation) {
  Rng rng(5);
  auto rows = SampleWithoutReplacementFloyd(20, 20, rng);
  std::sort(rows.begin(), rows.end());
  for (int64_t i = 0; i < 20; ++i) EXPECT_EQ(rows[static_cast<size_t>(i)], i);
}

TEST(FloydTest, UniformInclusionProbability) {
  // Each of 10 rows should be included in a 3-of-10 sample with p = 0.3.
  Rng rng(6);
  constexpr int kTrials = 30000;
  std::vector<int> counts(10, 0);
  for (int t = 0; t < kTrials; ++t) {
    for (int64_t row : SampleWithoutReplacementFloyd(10, 3, rng)) {
      ++counts[static_cast<size_t>(row)];
    }
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kTrials * 0.3, kTrials * 0.02);
  }
}

TEST(FisherYatesTest, ProducesDistinctRowsOfRightSize) {
  Rng rng(7);
  const auto rows = SampleWithoutReplacementFisherYates(1000, 100, rng);
  EXPECT_EQ(rows.size(), 100u);
  EXPECT_TRUE(AllInRange(rows, 1000));
  EXPECT_TRUE(AllDistinct(rows));
}

TEST(FisherYatesTest, UniformOverOrderedPairs) {
  // 2-permutations of {0,1,2}: six outcomes, each with probability 1/6.
  Rng rng(8);
  constexpr int kTrials = 60000;
  std::map<std::pair<int64_t, int64_t>, int> counts;
  for (int t = 0; t < kTrials; ++t) {
    const auto rows = SampleWithoutReplacementFisherYates(3, 2, rng);
    ++counts[{rows[0], rows[1]}];
  }
  EXPECT_EQ(counts.size(), 6u);
  for (const auto& [pair, count] : counts) {
    EXPECT_NEAR(count, kTrials / 6.0, kTrials * 0.01);
  }
}

TEST(BernoulliTest, ExpectedSizeAndSortedDistinct) {
  Rng rng(9);
  const auto rows = SampleBernoulli(100000, 0.05, rng);
  EXPECT_NEAR(static_cast<double>(rows.size()), 5000.0, 300.0);
  EXPECT_TRUE(AllDistinct(rows));
  EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
  EXPECT_TRUE(AllInRange(rows, 100000));
}

TEST(BernoulliTest, EdgeRates) {
  Rng rng(10);
  EXPECT_TRUE(SampleBernoulli(1000, 0.0, rng).empty());
  const auto all = SampleBernoulli(50, 1.0, rng);
  EXPECT_EQ(all.size(), 50u);
}

TEST(BernoulliTest, InclusionProbabilityPerRow) {
  Rng rng(11);
  constexpr int kTrials = 20000;
  int count_row0 = 0;
  for (int t = 0; t < kTrials; ++t) {
    const auto rows = SampleBernoulli(10, 0.3, rng);
    if (std::find(rows.begin(), rows.end(), 0) != rows.end()) ++count_row0;
  }
  EXPECT_NEAR(count_row0, kTrials * 0.3, kTrials * 0.02);
}

TEST(BlockTest, WholeBlocksSelected) {
  Rng rng(12);
  const auto rows = SampleBlocks(100, 10, 3, rng);
  EXPECT_EQ(rows.size(), 30u);
  EXPECT_TRUE(AllDistinct(rows));
  // Rows come in runs of 10 sharing a block id.
  std::set<int64_t> blocks;
  for (int64_t row : rows) blocks.insert(row / 10);
  EXPECT_EQ(blocks.size(), 3u);
}

TEST(BlockTest, TailBlockMayBeShort) {
  Rng rng(13);
  // 25 rows, blocks of 10 -> 3 blocks, last has 5 rows.
  const auto rows = SampleBlocks(25, 10, 3, rng);
  EXPECT_EQ(rows.size(), 25u);
}

TEST(ReservoirRTest, KeepsAllWhenUnderCapacity) {
  ReservoirSamplerR sampler(10, Rng(14));
  for (uint64_t i = 0; i < 5; ++i) sampler.Add(i);
  EXPECT_EQ(sampler.items_seen(), 5);
  EXPECT_EQ(sampler.sample().size(), 5u);
}

TEST(ReservoirRTest, CapacityBoundAndUniformity) {
  constexpr int kTrials = 20000;
  std::vector<int> counts(20, 0);
  for (int t = 0; t < kTrials; ++t) {
    ReservoirSamplerR sampler(5, Rng(static_cast<uint64_t>(t) + 100));
    for (uint64_t i = 0; i < 20; ++i) sampler.Add(i);
    EXPECT_EQ(sampler.sample().size(), 5u);
    for (uint64_t item : sampler.sample()) {
      ++counts[static_cast<size_t>(item)];
    }
  }
  // Every item kept with probability 5/20 = 0.25.
  for (int c : counts) {
    EXPECT_NEAR(c, kTrials * 0.25, kTrials * 0.02);
  }
}

TEST(ReservoirLTest, KeepsAllWhenUnderCapacity) {
  ReservoirSamplerL sampler(10, Rng(15));
  for (uint64_t i = 0; i < 7; ++i) sampler.Add(i);
  EXPECT_EQ(sampler.sample().size(), 7u);
}

TEST(ReservoirLTest, CapacityBoundAndUniformity) {
  constexpr int kTrials = 20000;
  std::vector<int> counts(20, 0);
  for (int t = 0; t < kTrials; ++t) {
    ReservoirSamplerL sampler(5, Rng(static_cast<uint64_t>(t) + 999));
    for (uint64_t i = 0; i < 20; ++i) sampler.Add(i);
    EXPECT_EQ(sampler.sample().size(), 5u);
    for (uint64_t item : sampler.sample()) {
      ++counts[static_cast<size_t>(item)];
    }
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kTrials * 0.25, kTrials * 0.025);
  }
}

TEST(ReservoirLTest, LongStreamStaysUniform) {
  // 2-of-1000: each item kept with probability 1/500.
  constexpr int kTrials = 4000;
  int first_half = 0;
  for (int t = 0; t < kTrials; ++t) {
    ReservoirSamplerL sampler(2, Rng(static_cast<uint64_t>(t) * 7 + 3));
    for (uint64_t i = 0; i < 1000; ++i) sampler.Add(i);
    for (uint64_t item : sampler.sample()) {
      if (item < 500) ++first_half;
    }
  }
  // Expect half of all kept items from the first half of the stream.
  EXPECT_NEAR(first_half, kTrials, kTrials * 0.1);
}

TEST(ReservoirLTest, SkipDiscardedMatchesPlainAddExactly) {
  // Driving the sampler through the skip schedule must leave it in the
  // exact state the plain Add-every-item loop produces: same sample, same
  // items_seen, after every prefix length. SkipDiscarded consumes no
  // randomness, so the two runs stay in lockstep forever.
  for (uint64_t seed : {1ULL, 17ULL, 92ULL}) {
    ReservoirSamplerL plain(8, Rng(seed));
    ReservoirSamplerL skipping(8, Rng(seed));
    constexpr int64_t kStream = 50000;
    int64_t next = 0;  // next item index the skipping sampler will consume
    for (int64_t i = 0; i < kStream; ++i) {
      plain.Add(i * 0x9e3779b97f4a7c15ULL);
      while (next <= i) {
        // Partial skips are legal (count <= DiscardRunLength), so cap at
        // the prefix boundary to keep both samplers comparable at i.
        const int64_t skip =
            std::min(skipping.DiscardRunLength(), i + 1 - next);
        if (skip > 0) {
          skipping.SkipDiscarded(skip);
          next += skip;
        } else {
          skipping.Add(static_cast<uint64_t>(next) * 0x9e3779b97f4a7c15ULL);
          ++next;
        }
      }
      if (i % 997 == 0 || i + 1 == kStream) {
        ASSERT_EQ(skipping.items_seen(), plain.items_seen()) << "i=" << i;
        ASSERT_EQ(skipping.sample(), plain.sample()) << "i=" << i;
      }
    }
  }
}

TEST(ReservoirLTest, DiscardRunLengthIsZeroWhileFilling) {
  ReservoirSamplerL sampler(4, Rng(7));
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(sampler.DiscardRunLength(), 0);
    sampler.Add(i);
  }
  // Past capacity a skip run may (and with high probability eventually
  // does) appear; SkipDiscarded(0) is always legal.
  sampler.SkipDiscarded(0);
  EXPECT_GE(sampler.DiscardRunLength(), 0);
}

}  // namespace
}  // namespace ndv
