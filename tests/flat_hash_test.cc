#include "common/flat_hash.h"

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace ndv {
namespace {

// ---------------------------------------------------------------------------
// FlatHashSet

TEST(FlatHashSetTest, BasicInsertContains) {
  FlatHashSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_TRUE(set.Insert(42));
  EXPECT_FALSE(set.Insert(42));
  EXPECT_TRUE(set.Contains(42));
  EXPECT_FALSE(set.Contains(43));
  EXPECT_EQ(set.size(), 1);
}

TEST(FlatHashSetTest, ZeroAndMaxKeys) {
  FlatHashSet set;
  EXPECT_FALSE(set.Contains(0));
  EXPECT_TRUE(set.Insert(0));
  EXPECT_FALSE(set.Insert(0));
  EXPECT_TRUE(set.Contains(0));
  EXPECT_TRUE(set.Insert(UINT64_MAX));
  EXPECT_FALSE(set.Insert(UINT64_MAX));
  EXPECT_TRUE(set.Contains(UINT64_MAX));
  EXPECT_EQ(set.size(), 2);
  int64_t visited = 0;
  bool saw_zero = false;
  bool saw_max = false;
  set.ForEach([&](uint64_t key) {
    ++visited;
    saw_zero |= key == 0;
    saw_max |= key == UINT64_MAX;
  });
  EXPECT_EQ(visited, 2);
  EXPECT_TRUE(saw_zero);
  EXPECT_TRUE(saw_max);
}

TEST(FlatHashSetTest, RandomWorkloadMatchesUnorderedSetOracle) {
  Rng rng(7);
  FlatHashSet set;
  // NOLINTNEXTLINE(ndv-no-std-hash-container): independent oracle —
  // the test differentially checks FlatHash against the std container.
  std::unordered_set<uint64_t> oracle;
  for (int i = 0; i < 20000; ++i) {
    // Small key space forces plenty of duplicates.
    const uint64_t key = rng.NextBounded(4096) * 0x9e3779b97f4a7c15ULL;
    EXPECT_EQ(set.Insert(key), oracle.insert(key).second);
  }
  EXPECT_EQ(set.size(), static_cast<int64_t>(oracle.size()));
  for (uint64_t key : oracle) EXPECT_TRUE(set.Contains(key));
  int64_t visited = 0;
  set.ForEach([&](uint64_t key) {
    ++visited;
    EXPECT_TRUE(oracle.count(key) > 0);
  });
  EXPECT_EQ(visited, set.size());
}

TEST(FlatHashSetTest, AdversarialKeysSharingLowBits) {
  // All keys land in the same initial slot: the worst case for linear
  // probing. Correctness must survive arbitrarily long probe chains and
  // rehashes that re-cluster them.
  FlatHashSet set;
  constexpr int kKeys = 2000;
  for (uint64_t i = 1; i <= kKeys; ++i) {
    EXPECT_TRUE(set.Insert(i << 32));  // Low 32 bits identical (zero).
  }
  EXPECT_EQ(set.size(), kKeys);
  for (uint64_t i = 1; i <= kKeys; ++i) {
    EXPECT_TRUE(set.Contains(i << 32));
    EXPECT_FALSE(set.Contains((i << 32) | 1));
  }
}

TEST(FlatHashSetTest, GrowthAcrossManyResizesKeepsEverything) {
  FlatHashSet set;
  // NOLINTNEXTLINE(ndv-no-std-hash-container): independent oracle —
  // the test differentially checks FlatHash against the std container.
  std::unordered_set<uint64_t> oracle;
  Rng rng(11);
  for (int i = 0; i < 300000; ++i) {
    const uint64_t key = rng.NextU64();
    set.Insert(key);
    oracle.insert(key);
  }
  EXPECT_EQ(set.size(), static_cast<int64_t>(oracle.size()));
  // Power-of-two capacity, load never above 3/4, peak reflects the largest
  // table.
  EXPECT_EQ(set.Capacity() & (set.Capacity() - 1), 0);
  EXPECT_LE(set.LoadFactor(), 0.75);
  EXPECT_GE(set.PeakCapacity(), set.Capacity());
  EXPECT_GE(set.MemoryBytes(), set.size() * 8);
  for (uint64_t key : oracle) EXPECT_TRUE(set.Contains(key));
}

TEST(FlatHashSetTest, MergeFromIsSetUnion) {
  FlatHashSet a;
  FlatHashSet b;
  // NOLINTNEXTLINE(ndv-no-std-hash-container): independent oracle —
  // the test differentially checks FlatHash against the std container.
  std::unordered_set<uint64_t> oracle;
  Rng rng(13);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t key = rng.NextBounded(3000) * 0xff51afd7ed558ccdULL;
    if (i % 2 == 0) a.Insert(key);
    else b.Insert(key);
    oracle.insert(key);
  }
  a.Insert(0);
  oracle.insert(0);
  a.MergeFrom(b);
  EXPECT_EQ(a.size(), static_cast<int64_t>(oracle.size()));
  for (uint64_t key : oracle) EXPECT_TRUE(a.Contains(key));
}

TEST(FlatHashSetTest, ReserveAvoidsRehash) {
  FlatHashSet set(1000);
  const int64_t initial_capacity = set.Capacity();
  EXPECT_GE(initial_capacity, 1000);
  for (uint64_t i = 1; i <= 1000; ++i) set.Insert(i * 0x9e3779b97f4a7c15ULL);
  EXPECT_EQ(set.Capacity(), initial_capacity);
  EXPECT_EQ(set.PeakCapacity(), initial_capacity);
}

TEST(FlatHashSetTest, ClearResets) {
  FlatHashSet set;
  set.Insert(0);
  set.Insert(5);
  set.Clear();
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.Contains(0));
  EXPECT_FALSE(set.Contains(5));
}

// ---------------------------------------------------------------------------
// FlatHashCounter

TEST(FlatHashCounterTest, CountsMatchUnorderedMapOracle) {
  Rng rng(17);
  FlatHashCounter counter;
  // NOLINTNEXTLINE(ndv-no-std-hash-container): independent oracle —
  // the test differentially checks FlatHash against the std container.
  std::unordered_map<uint64_t, int64_t> oracle;
  for (int i = 0; i < 50000; ++i) {
    const uint64_t key = rng.NextBounded(2048) * 0xc4ceb9fe1a85ec53ULL;
    const int64_t delta = 1 + static_cast<int64_t>(rng.NextBounded(3));
    counter.Add(key, delta);
    oracle[key] += delta;
  }
  EXPECT_EQ(counter.size(), static_cast<int64_t>(oracle.size()));
  for (const auto& [key, count] : oracle) {
    EXPECT_EQ(counter.Count(key), count);
  }
  int64_t visited = 0;
  counter.ForEach([&](uint64_t key, int64_t count) {
    ++visited;
    const auto it = oracle.find(key);
    ASSERT_NE(it, oracle.end());
    EXPECT_EQ(count, it->second);
  });
  EXPECT_EQ(visited, counter.size());
}

TEST(FlatHashCounterTest, ZeroAndMaxKeysCount) {
  FlatHashCounter counter;
  EXPECT_EQ(counter.Count(0), 0);
  counter.Add(0);
  counter.Add(0, 4);
  counter.Add(UINT64_MAX, 2);
  EXPECT_EQ(counter.Count(0), 5);
  EXPECT_EQ(counter.Count(UINT64_MAX), 2);
  EXPECT_EQ(counter.Count(1), 0);
  EXPECT_EQ(counter.size(), 2);
}

TEST(FlatHashCounterTest, AdversarialKeysSharingLowBits) {
  FlatHashCounter counter;
  // NOLINTNEXTLINE(ndv-no-std-hash-container): independent oracle —
  // the test differentially checks FlatHash against the std container.
  std::unordered_map<uint64_t, int64_t> oracle;
  for (uint64_t i = 1; i <= 1500; ++i) {
    const uint64_t key = i << 40;
    const int64_t delta = static_cast<int64_t>(i % 5) + 1;
    counter.Add(key, delta);
    oracle[key] += delta;
  }
  for (const auto& [key, count] : oracle) {
    EXPECT_EQ(counter.Count(key), count);
  }
  EXPECT_EQ(counter.size(), 1500);
}

TEST(FlatHashCounterTest, GrowthAcrossManyResizesPreservesCounts) {
  FlatHashCounter counter;
  // NOLINTNEXTLINE(ndv-no-std-hash-container): independent oracle —
  // the test differentially checks FlatHash against the std container.
  std::unordered_map<uint64_t, int64_t> oracle;
  Rng rng(23);
  for (int i = 0; i < 200000; ++i) {
    const uint64_t key = rng.NextBounded(150000) + 1;
    counter.Add(key);
    ++oracle[key];
  }
  EXPECT_EQ(counter.size(), static_cast<int64_t>(oracle.size()));
  EXPECT_EQ(counter.Capacity() & (counter.Capacity() - 1), 0);
  EXPECT_LE(counter.LoadFactor(), 0.75);
  EXPECT_GE(counter.PeakCapacity(), counter.Capacity());
  for (const auto& [key, count] : oracle) {
    EXPECT_EQ(counter.Count(key), count);
  }
  // Total mass is preserved through every rehash.
  int64_t total = 0;
  counter.ForEach([&](uint64_t, int64_t count) { total += count; });
  EXPECT_EQ(total, 200000);
}

TEST(FlatHashCounterTest, PeakCapacityOutlivesFinalSize) {
  // Grow past several doublings; the peak is the largest table, which for
  // a counter with no erase equals the final capacity — and both exceed
  // the bare element count.
  FlatHashCounter counter;
  for (uint64_t i = 1; i <= 100; ++i) counter.Add(i * 0x9e3779b97f4a7c15ULL);
  EXPECT_EQ(counter.PeakCapacity(), counter.Capacity());
  EXPECT_GT(counter.PeakCapacity(), counter.size());
  EXPECT_GT(counter.MemoryBytes(), 0);
}

TEST(FlatHashCounterTest, MergeFromSumsPerKeyCounts) {
  FlatHashCounter a;
  FlatHashCounter b;
  // NOLINTNEXTLINE(ndv-no-std-hash-container): independent oracle —
  // the test differentially checks FlatHash against the std container.
  std::unordered_map<uint64_t, int64_t> oracle;
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) {
    // Overlapping key space so plenty of keys exist in both counters.
    const uint64_t key = rng.NextBounded(1024) * 0x9e3779b97f4a7c15ULL;
    const int64_t delta = 1 + static_cast<int64_t>(rng.NextBounded(4));
    (i % 2 == 0 ? a : b).Add(key, delta);
    oracle[key] += delta;
  }
  // The zero key lives out of line in both tables; it must merge too.
  a.Add(0, 3);
  b.Add(0, 4);
  oracle[0] += 7;
  a.MergeFrom(b);
  EXPECT_EQ(a.size(), static_cast<int64_t>(oracle.size()));
  for (const auto& [key, count] : oracle) {
    EXPECT_EQ(a.Count(key), count);
  }
}

TEST(FlatHashCounterTest, MergeFromEmptyIsNoop) {
  FlatHashCounter a;
  a.Add(5, 2);
  const FlatHashCounter empty;
  a.MergeFrom(empty);
  EXPECT_EQ(a.size(), 1);
  EXPECT_EQ(a.Count(5), 2);
  FlatHashCounter b;
  b.MergeFrom(a);  // merging into an empty counter copies the contents
  EXPECT_EQ(b.Count(5), 2);
}

TEST(FlatHashCounterDeathTest, MergeFromOverflowFailsLoudly) {
  // Long-lived incremental profiles merge deltas forever; a per-key sum
  // past int64_t must NDV_CHECK, not wrap into a negative count.
  FlatHashCounter a;
  a.Add(42, std::numeric_limits<int64_t>::max() - 1);
  FlatHashCounter b;
  b.Add(42, 2);
  EXPECT_DEATH(a.MergeFrom(b), "would overflow");
}

TEST(FlatHashCounterDeathTest, MergeFromZeroKeyOverflowFailsLoudly) {
  // The zero key's count is stored out of line; the saturation guard must
  // cover it as well.
  FlatHashCounter a;
  a.Add(0, std::numeric_limits<int64_t>::max());
  FlatHashCounter b;
  b.Add(0, 1);
  EXPECT_DEATH(a.MergeFrom(b), "would overflow");
}

TEST(FlatHashCounterTest, MergeFromAtExactSaturationBoundary) {
  // Summing to exactly int64_t max is legal; one more is not (covered by
  // the death tests above).
  FlatHashCounter a;
  a.Add(7, std::numeric_limits<int64_t>::max() - 5);
  FlatHashCounter b;
  b.Add(7, 5);
  a.MergeFrom(b);
  EXPECT_EQ(a.Count(7), std::numeric_limits<int64_t>::max());
}

TEST(FlatHashCounterTest, EmptyCounter) {
  FlatHashCounter counter;
  EXPECT_TRUE(counter.empty());
  EXPECT_EQ(counter.Capacity(), 0);
  EXPECT_EQ(counter.PeakCapacity(), 0);
  EXPECT_EQ(counter.LoadFactor(), 0.0);
  EXPECT_EQ(counter.MemoryBytes(), 0);
  int64_t visited = 0;
  counter.ForEach([&](uint64_t, int64_t) { ++visited; });
  EXPECT_EQ(visited, 0);
}

}  // namespace
}  // namespace ndv
