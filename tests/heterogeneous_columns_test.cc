// Estimation across heterogeneous column types: the estimator stack sees
// only hashes, so int64, double, dictionary-string, and multi-column tuple
// views must all behave identically given the same frequency structure.
// Parameterized over (column kind, paper estimator).

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "common/descriptive.h"
#include "core/all_estimators.h"
#include "core/gee.h"
#include "datagen/string_data.h"
#include "datagen/synthetic_table.h"
#include "datagen/zipf.h"
#include "table/column_sampling.h"
#include "table/multi_column.h"
#include "table/table.h"

namespace ndv {
namespace {

// Holds a column of any kind plus its exact distinct count.
struct ColumnCase {
  std::unique_ptr<Column> column;
  std::unique_ptr<Table> backing;  // keeps multi-column components alive
  int64_t actual = 0;
};

ColumnCase MakeCase(const std::string& kind) {
  ColumnCase result;
  if (kind == "int_zipf") {
    ZipfColumnOptions options;
    options.rows = 100000;
    options.z = 1.0;
    options.dup_factor = 20;
    result.column = MakeZipfColumn(options);
  } else if (kind == "string_emails") {
    StringColumnOptions options;
    options.rows = 100000;
    options.distinct = 3000;
    options.z = 1.0;
    options.shape = StringShape::kEmails;
    result.column = MakeStringColumn(options);
  } else if (kind == "double_normal") {
    const std::vector<ColumnSpec> specs = {
        ColumnSpec::Normal("v", 500.0, 120.0)};
    result.backing =
        std::make_unique<Table>(MakeSyntheticTable(100000, specs, 5));
    // Re-wrap as DoubleColumn semantics via the backing table's column.
    result.actual = ExactDistinctHashSet(result.backing->column(0));
  } else if (kind == "tuple") {
    const std::vector<ColumnSpec> specs = {ColumnSpec::Uniform("a", 60),
                                           ColumnSpec::Zipf("b", 40, 1.0)};
    result.backing =
        std::make_unique<Table>(MakeSyntheticTable(100000, specs, 7));
    result.column = std::make_unique<CombinedColumn>(
        *result.backing, std::vector<int64_t>{0, 1});
  }
  if (result.column != nullptr) {
    result.actual = ExactDistinctHashSet(*result.column);
  }
  return result;
}

const Column& CaseColumn(const ColumnCase& c) {
  return c.column != nullptr ? *c.column : c.backing->column(0);
}

class HeterogeneousColumnTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(HeterogeneousColumnTest, SanityAndIntervalCoverage) {
  const auto [kind, estimator_name] = GetParam();
  const ColumnCase test_case = MakeCase(kind);
  const Column& column = CaseColumn(test_case);
  const auto estimator = MakeEstimatorByName(estimator_name);
  ASSERT_NE(estimator, nullptr);

  Rng rng(31);
  RunningStats errors;
  int covered = 0;
  constexpr int kTrials = 5;
  for (int t = 0; t < kTrials; ++t) {
    const SampleSummary summary = SampleColumnFraction(column, 0.05, rng);
    const double estimate = estimator->Estimate(summary);
    EXPECT_GE(estimate, static_cast<double>(summary.d()));
    EXPECT_LE(estimate, static_cast<double>(summary.n()));
    errors.Add(
        RatioError(estimate, static_cast<double>(test_case.actual)));
    const GeeBounds bounds = ComputeGeeBounds(summary);
    if (bounds.lower <= static_cast<double>(test_case.actual) &&
        static_cast<double>(test_case.actual) <= bounds.upper) {
      ++covered;
    }
  }
  // 5% samples of friendly data: paper estimators stay within 4x.
  EXPECT_LE(errors.mean(), 4.0) << kind << "/" << estimator_name;
  EXPECT_GE(covered, kTrials - 1) << kind;
}

INSTANTIATE_TEST_SUITE_P(
    KindsByEstimators, HeterogeneousColumnTest,
    ::testing::Combine(::testing::Values("int_zipf", "string_emails",
                                         "double_normal", "tuple"),
                       ::testing::Values("GEE", "AE", "HYBGEE", "HYBSKEW",
                                         "DUJ2A")),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::string>>&
           param_info) {
      std::string name =
          std::get<0>(param_info.param) + "_" + std::get<1>(param_info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace ndv
