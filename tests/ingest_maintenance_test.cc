// StatsMaintainer and the drift trigger (DESIGN.md §17). The boundary
// semantics of DriftTriggerFires are pinned exactly (drift == width must
// NOT fire; any drift against a zero-width exact interval must), and the
// acceptance scenario replays a real append stream end to end: every
// incrementally published GEE estimate stays inside its published
// [LOWER, UPPER] bracket, the drift trigger fires when the sketch escapes
// the baseline interval, and the re-ANALYZE it schedules restores a fresh
// baseline with near-zero drift.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/concurrent_catalog.h"
#include "catalog/stats_catalog.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "ingest/maintenance.h"
#include "storage/materialize.h"
#include "table/column.h"
#include "table/table.h"

namespace ndv {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(DriftTriggerTest, ExactBoundarySemantics) {
  // drift == width does not fire: the running estimate may still sit on
  // the bracket's edge. Strictly exceeding it does.
  EXPECT_FALSE(DriftTriggerFires(100.0, 100.0));
  EXPECT_TRUE(DriftTriggerFires(100.0 + 1e-9, 100.0));
  EXPECT_FALSE(DriftTriggerFires(99.999, 100.0));

  // Zero-width (exact-mode) interval: any positive drift fires, zero
  // drift does not.
  EXPECT_FALSE(DriftTriggerFires(0.0, 0.0));
  EXPECT_TRUE(DriftTriggerFires(1e-12, 0.0));

  // A wide (degraded, low-information) interval tolerates drift a tight
  // one would fire on.
  EXPECT_TRUE(DriftTriggerFires(500.0, 10.0));
  EXPECT_FALSE(DriftTriggerFires(500.0, 1e6));

  // A never-fresh tracker reports infinite drift: fires against any
  // finite tolerance, but not against an infinite (no-baseline) one.
  EXPECT_TRUE(DriftTriggerFires(kInf, 1e308));
  EXPECT_FALSE(DriftTriggerFires(kInf, kInf));
}

// ---------------------------------------------------------------------------
// Maintainer scenarios over fabricated baselines (the callback returns a
// hand-built catalog, so tolerances are exact and the tests are sharp).

ColumnStats MakeStats(const std::string& name, double lower, double upper) {
  ColumnStats stats;
  stats.column_name = name;
  stats.estimate = (lower + upper) / 2;
  stats.lower = lower;
  stats.upper = upper;
  stats.table_rows = 1000;
  stats.sample_rows = 1000;
  stats.sample_distinct = static_cast<int64_t>(stats.estimate);
  stats.method = "test";
  return stats;
}

StatsCatalog OneColumnCatalog(const std::string& name, double lower,
                              double upper) {
  StatsCatalog catalog;
  catalog.Put(MakeStats(name, lower, upper));
  return catalog;
}

std::vector<uint64_t> NovelHashes(uint64_t tag, int64_t count) {
  std::vector<uint64_t> hashes;
  hashes.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    hashes.push_back(Hash64((tag << 32) + static_cast<uint64_t>(i) + 1));
  }
  return hashes;
}

StatsMaintainerOptions SyncOptions() {
  StatsMaintainerOptions options;
  options.background = false;
  return options;
}

TEST(StatsMaintainerTest, ZeroWidthBaselineFiresOnAnyDriftButNotOnNone) {
  // An exact (zero-width) published interval: tolerance 0.
  ConcurrentStatsCatalog catalog(OneColumnCatalog("c", 500.0, 500.0));
  int64_t reanalyzes = 0;
  StatsMaintainer maintainer(
      &catalog,
      [&]() -> StatusOr<StatsCatalog> {
        ++reanalyzes;
        return OneColumnCatalog("c", 600.0, 600.0);
      },
      SyncOptions());

  const auto base = NovelHashes(1, 500);
  maintainer.Track("c", ColumnSlice{});  // warmed below through appends
  EXPECT_EQ(maintainer.Tolerance("c"), 0.0);

  // First batch establishes tracker content; duplicates of it leave the
  // sketch estimate EXACTLY unchanged, so drift == 0 == tolerance: the
  // boundary case must not fire.
  maintainer.AppendHashes("c", base);
  ASSERT_GE(maintainer.counters().drift_fires, 0);
  const int64_t fires_after_first = maintainer.counters().drift_fires;
  maintainer.AppendHashes("c", base);  // pure duplicates
  EXPECT_EQ(maintainer.Drift("c"), 0.0);
  EXPECT_EQ(maintainer.counters().drift_fires, fires_after_first);

  // One genuinely novel value moves the sketch: any drift > 0 fires
  // against the zero-width baseline.
  maintainer.AppendHashes("c", NovelHashes(2, 64));
  EXPECT_GT(maintainer.counters().drift_fires, fires_after_first);
  EXPECT_EQ(reanalyzes, static_cast<int64_t>(
                            maintainer.counters().drift_fires));
}

TEST(StatsMaintainerTest, WideBaselineToleratesDriftATightOneFiresOn) {
  const auto base = NovelHashes(3, 2000);
  const auto novel = NovelHashes(4, 3000);

  const auto run = [&](double width) -> MaintainerCounters {
    ConcurrentStatsCatalog catalog(
        OneColumnCatalog("c", 2000.0, 2000.0 + width));
    StatsMaintainer maintainer(
        &catalog,
        [&]() -> StatusOr<StatsCatalog> {
          return OneColumnCatalog("c", 5000.0, 5000.0 + width);
        },
        SyncOptions());
    maintainer.Track("c", ColumnSlice{});
    maintainer.AppendHashes("c", base);
    // Baseline is set at Track time (before the appends), so ~5000 rows
    // of novel values put thousands of units of drift on the sketch.
    maintainer.AppendHashes("c", novel);
    return maintainer.counters();
  };

  // Tight interval (width 100): the novel stream escapes it → fires.
  EXPECT_GE(run(100.0).drift_fires, 1);
  // Degraded-ANALYZE-style interval (width 10^6): same appends, no fire —
  // a low-information bracket tolerates far more drift.
  EXPECT_EQ(run(1e6).drift_fires, 0);
}

TEST(StatsMaintainerTest, DegradedReanalyzeWidensToleranceAndCalmsTrigger) {
  // The re-ANALYZE that answers the first fire is itself degraded
  // (partition loss): it publishes a much wider interval. Afterwards the
  // same kind of drift that fired before must be absorbed.
  ConcurrentStatsCatalog catalog(OneColumnCatalog("c", 1000.0, 1010.0));
  StatsMaintainer maintainer(
      &catalog,
      [&]() -> StatusOr<StatsCatalog> {
        StatsCatalog fresh = OneColumnCatalog("c", 1000.0, 50000.0);
        return fresh;  // degraded: coverage lost, bracket wide open
      },
      SyncOptions());
  maintainer.Track("c", ColumnSlice{});
  maintainer.AppendHashes("c", NovelHashes(5, 1000));
  maintainer.AppendHashes("c", NovelHashes(6, 1000));
  const MaintainerCounters after_fire = maintainer.counters();
  ASSERT_GE(after_fire.drift_fires, 1);
  ASSERT_GE(after_fire.reanalyzes, 1);
  EXPECT_EQ(maintainer.Tolerance("c"), 49000.0);

  // More novel appends of the same magnitude: drift restarts from the
  // adopted baseline and stays far inside the widened bracket.
  maintainer.AppendHashes("c", NovelHashes(7, 1000));
  EXPECT_EQ(maintainer.counters().drift_fires, after_fire.drift_fires);
  EXPECT_LT(maintainer.Drift("c"), maintainer.Tolerance("c"));
}

TEST(StatsMaintainerTest, FirstPublicationEstablishesBaseline) {
  // A column the initial ANALYZE never saw: no published entry at Track
  // time, so the first incremental publication becomes the baseline.
  ConcurrentStatsCatalog catalog;
  StatsMaintainer maintainer(
      &catalog,
      []() -> StatusOr<StatsCatalog> { return StatsCatalog{}; },
      SyncOptions());
  maintainer.Track("fresh_column", ColumnSlice{});
  EXPECT_EQ(maintainer.Tolerance("fresh_column"), kInf);
  maintainer.AppendHashes("fresh_column", NovelHashes(8, 100));
  const auto published = catalog.Find("fresh_column");
  ASSERT_TRUE(published.has_value());
  EXPECT_EQ(maintainer.Tolerance("fresh_column"),
            published->upper - published->lower);
  EXPECT_EQ(maintainer.Drift("fresh_column"), 0.0);
  EXPECT_EQ(maintainer.counters().drift_fires, 0);
}

TEST(StatsMaintainerTest, ReanalyzeFailureIsRecordedAndRetriable) {
  ConcurrentStatsCatalog catalog(OneColumnCatalog("c", 100.0, 100.0));
  int64_t calls = 0;
  StatsMaintainer maintainer(
      &catalog,
      [&]() -> StatusOr<StatsCatalog> {
        ++calls;
        if (calls == 1) return UnavailableError("partitions unreachable");
        return OneColumnCatalog("c", 200.0, 210.0);
      },
      SyncOptions());
  maintainer.Track("c", ColumnSlice{});
  // The zero-width baseline means the first novel batch already fires —
  // and the first callback invocation fails.
  maintainer.AppendHashes("c", NovelHashes(9, 100));
  const MaintainerCounters after_failure = maintainer.counters();
  ASSERT_GE(after_failure.reanalyze_failures, 1);
  EXPECT_FALSE(maintainer.last_reanalyze_status().ok());
  EXPECT_EQ(maintainer.last_reanalyze_status().code(),
            StatusCode::kUnavailable);

  // The failed attempt cleared the in-flight flag and did NOT reset the
  // baseline, so continued drift fires again — and this time succeeds.
  maintainer.AppendHashes("c", NovelHashes(10, 200));
  EXPECT_GE(maintainer.counters().reanalyzes, 1);
  EXPECT_TRUE(maintainer.last_reanalyze_status().ok());
}

TEST(StatsMaintainerTest, BackgroundReanalyzeCompletesUnderConcurrentAppends) {
  // Background mode on the shared pool with appends racing the re-ANALYZE:
  // under TSan this is the data-race proof for the maintainer's locking.
  ConcurrentStatsCatalog catalog(OneColumnCatalog("c", 10.0, 11.0));
  StatsMaintainerOptions options;
  options.background = true;
  StatsMaintainer maintainer(
      &catalog,
      [&]() -> StatusOr<StatsCatalog> {
        return OneColumnCatalog("c", 1000.0, 900000.0);
      },
      options);
  maintainer.Track("c", ColumnSlice{});
  ParallelFor(8, 4, [&](int64_t task) {
    maintainer.AppendHashes(
        "c", NovelHashes(100 + static_cast<uint64_t>(task), 500));
  });
  maintainer.WaitForReanalyze();
  const MaintainerCounters counters = maintainer.counters();
  EXPECT_EQ(counters.appends, 8);
  EXPECT_EQ(counters.rows_appended, 4000);
  EXPECT_GE(counters.drift_fires, 1);
  EXPECT_EQ(counters.reanalyzes + counters.reanalyze_failures,
            counters.drift_fires);
  EXPECT_TRUE(maintainer.last_reanalyze_status().ok());
}

// ---------------------------------------------------------------------------
// The acceptance scenario: a real append stream over a real table, GEE
// estimator, inline re-ANALYZE — published estimates bracketed throughout,
// drift trigger firing, baseline restored.

TEST(StatsMaintainerScenarioTest, AppendStreamStaysBracketedAndRecovers) {
  // Base table: 30k rows over 1k distinct values.
  Rng rng(13);
  std::vector<int64_t> base_values;
  for (int i = 0; i < 30000; ++i) {
    base_values.push_back(static_cast<int64_t>(rng.NextBounded(1000)));
  }
  Table base;
  base.AddColumn("value", std::make_unique<Int64Column>(base_values));

  // Append stream: 20k rows over 20k NOVEL values — the true cardinality
  // grows ~20x, so statistics from the initial ANALYZE must go stale.
  std::vector<int64_t> append_values;
  for (int i = 0; i < 20000; ++i) {
    append_values.push_back(1000 + static_cast<int64_t>(rng.NextBounded(
                                       20000)));
  }
  Int64Column append_column(append_values);

  AnalyzeOptions analyze;
  analyze.estimator = "GEE";
  analyze.sample_fraction = 0.05;
  analyze.seed = 3;
  ConcurrentStatsCatalog catalog(AnalyzeTable(base, analyze));
  const auto initial = catalog.Find("value");
  ASSERT_TRUE(initial.has_value());

  // The re-ANALYZE callback rebuilds base + appended-prefix and scans it —
  // the same shape the ndv_cli ingest subcommand uses.
  int64_t appended_rows = 0;
  StatsMaintainer maintainer(
      &catalog,
      [&]() -> StatusOr<StatsCatalog> {
        auto prefix =
            MaterializeColumnSlice(append_column, 0, appended_rows);
        NDV_RETURN_IF_ERROR(prefix.status());
        Table appended;
        appended.AddColumn("value", *std::move(prefix));
        auto combined = ConcatTables(base, appended);
        NDV_RETURN_IF_ERROR(combined.status());
        return AnalyzeTable(*combined, analyze);
      },
      SyncOptions());
  maintainer.Track("value", FullColumnSlice(base.column(0)));
  EXPECT_EQ(maintainer.Tolerance("value"),
            initial->upper - initial->lower);

  constexpr int64_t kBatchRows = 1000;
  uint64_t last_epoch = catalog.epoch();
  for (int64_t begin = 0; begin < append_column.size();
       begin += kBatchRows) {
    const int64_t end =
        std::min(begin + kBatchRows, append_column.size());
    appended_rows = end;  // the inline re-ANALYZE covers this batch
    const uint64_t epoch =
        maintainer.Append("value", ColumnSlice{&append_column, begin, end});
    EXPECT_GT(epoch, last_epoch);  // every batch publishes a new epoch
    last_epoch = catalog.epoch();

    // The published incremental estimate sits inside the published GEE
    // bracket at every step of the stream.
    const auto published = catalog.Find("value");
    ASSERT_TRUE(published.has_value());
    EXPECT_LE(published->lower, published->estimate);
    EXPECT_GE(published->upper, published->estimate);
    // And the published statistics cover the appended rows.
    EXPECT_EQ(published->table_rows, 30000 + appended_rows);
  }

  // The ~20x cardinality growth escaped the initial bracket: the trigger
  // fired and the inline re-ANALYZE succeeded.
  const MaintainerCounters counters = maintainer.counters();
  EXPECT_GE(counters.drift_fires, 1);
  EXPECT_GE(counters.reanalyzes, 1);
  EXPECT_EQ(counters.appends, 20);
  EXPECT_EQ(counters.rows_appended, 20000);
  EXPECT_EQ(counters.publications, 20);
  EXPECT_TRUE(maintainer.last_reanalyze_status().ok());

  // The adopted baseline is tight again: drift since the last re-ANALYZE
  // is far inside the tolerance the fresh interval grants.
  EXPECT_LT(maintainer.Drift("value"), maintainer.Tolerance("value"));
  // The final published statistics reflect the full stream.
  const auto final_stats = catalog.Find("value");
  ASSERT_TRUE(final_stats.has_value());
  EXPECT_EQ(final_stats->table_rows, 50000);
}

}  // namespace
}  // namespace ndv
