#include "estimators/sichel.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/descriptive.h"
#include "common/random.h"
#include "datagen/zipf.h"
#include "table/column_sampling.h"
#include "table/table.h"

namespace ndv {
namespace {

TEST(PoissonInverseGaussianFitTest, RecoversModelGeneratedMoments) {
  // Construct moments directly from the model: D = 500 classes, mu = 4,
  // t = 2 (lambda = 2*16/3). Then r = D mu, d = D(1-P0), f1 = D*P1.
  const double cap = 500.0, mu = 4.0, t = 2.0;
  const double p0 = std::exp(-2.0 * mu / (t + 1.0));
  const double p1 = mu * p0 / t;
  const int64_t r = static_cast<int64_t>(std::llround(cap * mu));
  const int64_t d = static_cast<int64_t>(std::llround(cap * (1.0 - p0)));
  const int64_t f1 = static_cast<int64_t>(std::llround(cap * p1));
  // Build a profile with these (r, d, f1): put the remaining mass on a few
  // frequencies (the fit only reads r, d, f1).
  const int64_t repeats = d - f1;
  const int64_t remaining = r - f1;
  const int64_t base = remaining / repeats;
  const int64_t extra = remaining % repeats;
  std::vector<int64_t> f(static_cast<size_t>(base + 2), 0);
  f[0] = f1;
  f[static_cast<size_t>(base - 1)] = repeats - extra;
  f[static_cast<size_t>(base)] = extra;
  const SampleSummary summary = MakeSummary(1000000, f);

  const auto fit = FitPoissonInverseGaussian(summary);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->mu, mu, 0.1);
  EXPECT_NEAR(fit->t, t, 0.15);
  EXPECT_NEAR(fit->d_hat, cap, 15.0);
}

TEST(PoissonInverseGaussianFitTest, DegenerateInputsDecline) {
  // No singletons.
  EXPECT_FALSE(FitPoissonInverseGaussian(
                   MakeSummary(1000, std::vector<int64_t>{0, 5}))
                   .has_value());
  // All singletons.
  EXPECT_FALSE(FitPoissonInverseGaussian(
                   MakeSummary(1000, std::vector<int64_t>{20}))
                   .has_value());
}

TEST(SichelTest, FallbacksAreSane) {
  // f1 == 0 -> d.
  EXPECT_DOUBLE_EQ(
      Sichel().Estimate(MakeSummary(1000, std::vector<int64_t>{0, 5})), 5.0);
  // All singletons -> saturate at the sanity upper bound.
  EXPECT_DOUBLE_EQ(
      Sichel().Estimate(MakeSummary(1000, std::vector<int64_t>{20})),
      1000.0);
}

TEST(SichelTest, BoundedErrorOnLongTailedData) {
  // Sichel's parametric model (bibliometric word frequencies) misfits
  // database-style Zipf-with-duplication columns — exactly the "statistical
  // estimators perform poorly on DB data" observation that motivates the
  // paper. The estimate must still be stable and within a moderate factor.
  ZipfColumnOptions options;
  options.rows = 100000;
  options.z = 1.0;
  options.dup_factor = 10;
  options.seed = 8;
  const auto column = MakeZipfColumn(options);
  const double actual = static_cast<double>(ExactDistinctHashSet(*column));
  Rng rng(9);
  RunningStats errors;
  for (int trial = 0; trial < 5; ++trial) {
    const SampleSummary summary = SampleColumnFraction(*column, 0.05, rng);
    errors.Add(RatioError(Sichel().Estimate(summary), actual));
  }
  EXPECT_LE(errors.mean(), 12.0);
}

TEST(SichelTest, SanityBoundsHold) {
  ZipfColumnOptions options;
  options.rows = 20000;
  options.z = 2.0;
  const auto column = MakeZipfColumn(options);
  Rng rng(10);
  for (double fraction : {0.005, 0.05, 0.5}) {
    const SampleSummary summary =
        SampleColumnFraction(*column, fraction, rng);
    const double estimate = Sichel().Estimate(summary);
    EXPECT_GE(estimate, static_cast<double>(summary.d()));
    EXPECT_LE(estimate, static_cast<double>(summary.n()));
  }
}

}  // namespace
}  // namespace ndv
