#include "profile/skew_statistics.h"

#include <gtest/gtest.h>

namespace ndv {
namespace {

FrequencyProfile UniformSample(int64_t classes, int64_t each) {
  FrequencyProfile profile;
  profile.Add(each, classes);
  return profile;
}

TEST(ChiSquaredUniformityTest, ZeroForPerfectlyUniformSample) {
  // 10 classes each observed 4 times: statistic is exactly 0.
  EXPECT_DOUBLE_EQ(ChiSquaredUniformityStatistic(UniformSample(10, 4)), 0.0);
}

TEST(ChiSquaredUniformityTest, MatchesDirectComputation) {
  // Counts {1, 1, 4}: d=3, r=6, expected 2 per class.
  // u = (1 + 1 + 4) / 2 = 3.
  FrequencyProfile profile;
  profile.Add(1, 2);
  profile.Add(4, 1);
  EXPECT_DOUBLE_EQ(ChiSquaredUniformityStatistic(profile), 3.0);
}

TEST(ChiSquaredUniformityTest, DegenerateProfiles) {
  EXPECT_DOUBLE_EQ(ChiSquaredUniformityStatistic(FrequencyProfile()), 0.0);
  FrequencyProfile one_class;
  one_class.Add(17, 1);
  EXPECT_DOUBLE_EQ(ChiSquaredUniformityStatistic(one_class), 0.0);
}

TEST(ChiSquaredUniformityTest, GrowsWithSkew) {
  FrequencyProfile mild;
  mild.Add(3, 5);
  mild.Add(5, 5);
  FrequencyProfile strong;
  strong.Add(1, 9);
  strong.Add(31, 1);
  EXPECT_LT(ChiSquaredUniformityStatistic(mild),
            ChiSquaredUniformityStatistic(strong));
}

TEST(TestSkewTest, UniformSampleIsLowSkew) {
  const SkewTestResult result = TestSkew(UniformSample(50, 4));
  EXPECT_FALSE(result.high_skew);
  EXPECT_DOUBLE_EQ(result.statistic, 0.0);
  EXPECT_GT(result.critical_value, 0.0);
}

TEST(TestSkewTest, HeavyHitterIsHighSkew) {
  // One class with 1000 occurrences plus 50 singletons.
  FrequencyProfile profile;
  profile.Add(1, 50);
  profile.Add(1000, 1);
  const SkewTestResult result = TestSkew(profile);
  EXPECT_TRUE(result.high_skew);
  EXPECT_GT(result.statistic, result.critical_value);
}

TEST(TestSkewTest, DegenerateProfileIsLowSkew) {
  FrequencyProfile one_class;
  one_class.Add(5, 1);
  EXPECT_FALSE(TestSkew(one_class).high_skew);
}

TEST(TestSkewTest, SignificanceShiftsDecision) {
  // A borderline profile: stricter significance (higher quantile) should
  // never flag more samples than a looser one.
  FrequencyProfile profile;
  profile.Add(2, 20);
  profile.Add(6, 3);
  const SkewTestResult loose = TestSkew(profile, 0.5);
  const SkewTestResult strict = TestSkew(profile, 0.999);
  EXPECT_LE(strict.high_skew, loose.high_skew);
  EXPECT_GT(strict.critical_value, loose.critical_value);
}

TEST(EstimatedSquaredCVTest, ZeroWhenNoRepeats) {
  // All singletons: pair count 0 and d_hat <= n forces the max(.., 0) arm.
  const SampleSummary summary = MakeSummary(1000, std::vector<int64_t>{10});
  EXPECT_DOUBLE_EQ(EstimatedSquaredCV(summary, 100.0), 0.0);
}

TEST(EstimatedSquaredCVTest, MatchesHandComputation) {
  // n=100, r=10 (q=0.1), profile f1=2, f3=1, f5=1 -> r=2+3+5=10.
  // pairs = 3*2*1 + 5*4*1 = 26.
  // gamma^2 = d_hat/(n^2 q^2) * 26 + d_hat/n - 1 at d_hat=20:
  //         = 20/100 * 26/1 ... = 20/(10000*0.01)*26 + 0.2 - 1 = 5.2 - 0.8.
  std::vector<int64_t> f = {2, 0, 1, 0, 1};
  const SampleSummary summary = MakeSummary(100, f);
  EXPECT_NEAR(EstimatedSquaredCV(summary, 20.0),
              20.0 / (100.0 * 100.0 * 0.01) * 26.0 + 0.2 - 1.0, 1e-12);
}

TEST(EstimatedSquaredCVTest, NeverNegative) {
  const SampleSummary summary = MakeSummary(50, std::vector<int64_t>{5});
  EXPECT_GE(EstimatedSquaredCV(summary, 1.0), 0.0);
}

TEST(EstimatedSquaredCVTest, IncreasesWithHeavyClasses) {
  std::vector<int64_t> light = {8, 1};            // f1=8, f2=1
  std::vector<int64_t> heavy(10, 0);
  heavy[0] = 8;
  heavy[9] = 1;  // f1=8, f10=1 (hmm: r differs, use same d_hat)
  const SampleSummary a = MakeSummary(1000, light);
  const SampleSummary b = MakeSummary(1000, heavy);
  EXPECT_LT(EstimatedSquaredCV(a, 50.0), EstimatedSquaredCV(b, 50.0));
}

}  // namespace
}  // namespace ndv
