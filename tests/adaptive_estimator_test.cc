#include "core/adaptive_estimator.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/descriptive.h"
#include "datagen/zipf.h"
#include "table/column_sampling.h"
#include "table/table.h"

namespace ndv {
namespace {

TEST(AdaptiveEstimatorTest, NoSingletonsReturnsD) {
  // f1 = 0: the K f1 correction vanishes regardless of m.
  const SampleSummary summary =
      MakeSummary(10000, std::vector<int64_t>{0, 5, 3});
  EXPECT_DOUBLE_EQ(AdaptiveEstimator().Estimate(summary), 8.0);
  EXPECT_DOUBLE_EQ(
      AdaptiveEstimator(AeVariant::kExpApproximation).Estimate(summary), 8.0);
}

TEST(AdaptiveEstimatorTest, AllSingletonsSaturatesAtN) {
  // The fixed-point equation has no finite root when every value is new;
  // the paper's sanity bounds cap the estimate at n.
  const SampleSummary summary = MakeSummary(1000, std::vector<int64_t>{25});
  EXPECT_DOUBLE_EQ(AdaptiveEstimator().Estimate(summary), 1000.0);
}

TEST(AdaptiveEstimatorTest, SolveForMRespectsLowerBound) {
  const SampleSummary summary =
      MakeSummary(100000, std::vector<int64_t>{30, 10, 5, 3});
  const auto m = AdaptiveEstimator::SolveForM(summary, AeVariant::kExactPower);
  ASSERT_TRUE(m.has_value());
  // m counts all low-frequency classes, at least the observed f1 + f2.
  EXPECT_GE(*m, 40.0 - 1e-9);
}

TEST(AdaptiveEstimatorTest, SolutionSatisfiesFixedPoint) {
  const SampleSummary summary =
      MakeSummary(100000, std::vector<int64_t>{30, 10, 5, 3});
  const auto m = AdaptiveEstimator::SolveForM(summary, AeVariant::kExactPower);
  ASSERT_TRUE(m.has_value());
  // Recompute both sides of m - f1 - f2 = f1 * N(m)/Den(m).
  const double r = 48.0 + 20.0 + 15.0 + 12.0;  // = 95? compute: 30+20+15+12=77
  (void)r;
  const double rr = static_cast<double>(summary.r());
  const double low = 30.0 + 2.0 * 10.0;
  double numer = 0.0, denom = 0.0;
  for (int64_t i = 3; i <= summary.freq.MaxFrequency(); ++i) {
    const double fi = static_cast<double>(summary.f(i));
    if (fi == 0.0) continue;
    numer += std::pow(1.0 - static_cast<double>(i) / rr, rr) * fi;
    denom += static_cast<double>(i) *
             std::pow(1.0 - static_cast<double>(i) / rr, rr - 1.0) * fi;
  }
  const double base = 1.0 - low / (rr * *m);
  numer += *m * std::pow(base, rr);
  denom += low * std::pow(base, rr - 1.0);
  EXPECT_NEAR(*m - 40.0, 30.0 * numer / denom, 1e-5);
}

TEST(AdaptiveEstimatorTest, ExactAndExpVariantsAgreeApproximately) {
  const SampleSummary summary =
      MakeSummary(1000000, std::vector<int64_t>{500, 200, 80, 40, 20});
  const double exact = AdaptiveEstimator().Estimate(summary);
  const double approx =
      AdaptiveEstimator(AeVariant::kExpApproximation).Estimate(summary);
  EXPECT_NEAR(approx / exact, 1.0, 0.15);
}

TEST(AdaptiveEstimatorTest, AccurateOnLowSkewData) {
  // The scenario GEE underestimates: low skew, many distinct values. AE
  // should land close to the truth (paper Figs. 1 and 5).
  ZipfColumnOptions options;
  options.rows = 200000;
  options.z = 0.0;
  options.dup_factor = 20;  // 10000 distinct values, 20 copies each
  options.seed = 3;
  const auto column = MakeZipfColumn(options);
  const double actual = static_cast<double>(ExactDistinctHashSet(*column));
  ASSERT_EQ(actual, 10000.0);
  Rng rng(17);
  RunningStats errors;
  for (int t = 0; t < 10; ++t) {
    const SampleSummary summary = SampleColumnFraction(*column, 0.02, rng);
    errors.Add(RatioError(AdaptiveEstimator().Estimate(summary), actual));
  }
  EXPECT_LE(errors.mean(), 1.3);
}

TEST(AdaptiveEstimatorTest, AccurateOnHighSkewData) {
  ZipfColumnOptions options;
  options.rows = 200000;
  options.z = 2.0;
  options.dup_factor = 20;
  options.seed = 4;
  const auto column = MakeZipfColumn(options);
  const double actual = static_cast<double>(ExactDistinctHashSet(*column));
  Rng rng(18);
  RunningStats errors;
  for (int t = 0; t < 10; ++t) {
    const SampleSummary summary = SampleColumnFraction(*column, 0.02, rng);
    errors.Add(RatioError(AdaptiveEstimator().Estimate(summary), actual));
  }
  EXPECT_LE(errors.mean(), 2.0);
}

TEST(AdaptiveEstimatorTest, DegenerateSingleRowSample) {
  const SampleSummary summary = MakeSummary(10, std::vector<int64_t>{1});
  // r=1: solver declines, estimate saturates at n (nothing else is known).
  EXPECT_DOUBLE_EQ(AdaptiveEstimator().Estimate(summary), 10.0);
}

TEST(AdaptiveEstimatorTest, NamesDistinguishVariants) {
  EXPECT_EQ(AdaptiveEstimator().name(), "AE");
  EXPECT_EQ(AdaptiveEstimator(AeVariant::kExpApproximation).name(), "AE-exp");
}

}  // namespace
}  // namespace ndv
