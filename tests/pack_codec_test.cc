// The v2 block-codec layer's contract: every encoder output validates and
// decodes back to the input values (round trip), the auto policy only
// picks a codec when it actually shrinks the block, validators reject
// every malformed claim with a Status (never a crash), and the streaming
// checksummer is chunking-invariant and length-sensitive.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "storage/pack_codec.h"

namespace ndv {
namespace {

std::vector<int64_t> DecodeInt64(PackBlockEncoding enc, int64_t rows,
                                 const std::string& payload) {
  std::vector<int64_t> out(static_cast<size_t>(rows));
  DecodeInt64Block(enc.codec, enc.param, rows,
                   reinterpret_cast<const uint8_t*>(payload.data()),
                   out.data());
  return out;
}

std::vector<int32_t> DecodeCodes(PackBlockEncoding enc, int64_t rows,
                                 const std::string& payload) {
  std::vector<int32_t> out(static_cast<size_t>(rows));
  DecodeCodesBlock(enc.codec, enc.param, rows,
                   reinterpret_cast<const uint8_t*>(payload.data()),
                   out.data());
  return out;
}

// Encode -> validate -> decode must reproduce `values` for every policy.
void ExpectInt64RoundTrip(const std::vector<int64_t>& values,
                          PackCodecChoice choice) {
  std::string payload;
  const PackBlockEncoding enc = EncodeInt64Block(values, choice, &payload);
  const auto rows = static_cast<int64_t>(values.size());
  const Status valid = ValidateValueBlock(enc.codec, enc.param,
                                          /*is_double=*/false, rows,
                                          payload.size());
  ASSERT_TRUE(valid.ok()) << valid.ToString();
  EXPECT_EQ(DecodeInt64(enc, rows, payload), values)
      << "choice " << PackCodecChoiceName(choice) << " codec "
      << PackBlockCodecName(enc.codec) << " width " << int{enc.param};
}

TEST(PackCodecTest, Int64RoundTripsEveryPolicyAndShape) {
  const std::vector<std::vector<int64_t>> shapes = {
      {0},                         // 1 row
      {7, 7, 7, 7, 7},             // constant run (width-0 zero-order-hold)
      {1, 2, 3, 4, 5, 6, 7},       // unit deltas, odd length
      {100, 90, 95, 105, 80},      // mixed-sign small deltas
      {0, 1000, -1000, 500000},    // width-4 deltas
      {std::numeric_limits<int64_t>::min(),
       std::numeric_limits<int64_t>::max(), 0,
       std::numeric_limits<int64_t>::min()},  // wrapping deltas
      std::vector<int64_t>(4097, -3),         // crosses the default block
  };
  for (const auto& values : shapes) {
    for (const auto choice :
         {PackCodecChoice::kAutoCodec, PackCodecChoice::kForceRaw,
          PackCodecChoice::kForceDelta, PackCodecChoice::kForceDict}) {
      SCOPED_TRACE(PackCodecChoiceName(choice));
      ExpectInt64RoundTrip(values, choice);
    }
  }
}

TEST(PackCodecTest, DeltaWidthMatchesTheData) {
  std::string payload;
  // Constant run: width 0, payload is just the 8-byte base.
  auto enc = EncodeInt64Block(std::vector<int64_t>{5, 5, 5, 5},
                              PackCodecChoice::kForceDelta, &payload);
  EXPECT_EQ(enc.codec, PackBlockCodec::kDelta);
  EXPECT_EQ(enc.param, 0);
  EXPECT_EQ(payload.size(), 8u);

  payload.clear();
  enc = EncodeInt64Block(std::vector<int64_t>{0, 1, -1, 100},
                         PackCodecChoice::kForceDelta, &payload);
  EXPECT_EQ(enc.param, 1);
  EXPECT_EQ(payload.size(), 8u + 3u);

  payload.clear();
  enc = EncodeInt64Block(std::vector<int64_t>{0, 30000, 0},
                         PackCodecChoice::kForceDelta, &payload);
  EXPECT_EQ(enc.param, 2);
  EXPECT_EQ(payload.size(), 8u + 2u * 2u);
}

TEST(PackCodecTest, AutoPicksDeltaOnlyWhenStrictlySmaller) {
  // Sorted small-delta data: delta (8 + n-1 bytes) beats raw (8n bytes).
  std::string payload;
  std::vector<int64_t> sorted(64);
  for (size_t i = 0; i < sorted.size(); ++i) {
    sorted[i] = static_cast<int64_t>(i * 3);
  }
  auto enc = EncodeInt64Block(sorted, PackCodecChoice::kAutoCodec, &payload);
  EXPECT_EQ(enc.codec, PackBlockCodec::kDelta);
  EXPECT_LT(payload.size(), sorted.size() * 8);

  // Full-width deltas: delta would cost 8 + 8(n-1) = raw, so raw wins.
  payload.clear();
  const std::vector<int64_t> jumpy = {
      0, std::numeric_limits<int64_t>::max(), -1,
      std::numeric_limits<int64_t>::min(), 1};
  enc = EncodeInt64Block(jumpy, PackCodecChoice::kAutoCodec, &payload);
  EXPECT_EQ(enc.codec, PackBlockCodec::kRaw);
  EXPECT_EQ(payload.size(), jumpy.size() * 8);
}

TEST(PackCodecTest, DoubleBlocksAlwaysEncodeRaw) {
  std::string payload;
  const std::vector<double> values = {
      0.0, -0.0, 1.5, std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity()};
  const PackBlockEncoding enc = EncodeDoubleBlock(values, &payload);
  EXPECT_EQ(enc.codec, PackBlockCodec::kRaw);
  EXPECT_EQ(payload.size(), values.size() * 8);
  const Status valid =
      ValidateValueBlock(enc.codec, enc.param, /*is_double=*/true,
                         static_cast<int64_t>(values.size()), payload.size());
  EXPECT_TRUE(valid.ok()) << valid.ToString();
}

TEST(PackCodecTest, CodesRoundTripAtEveryWidth) {
  const std::vector<std::pair<std::vector<int32_t>, uint8_t>> cases = {
      {{0}, 1},                      // 1 row, width 1
      {{0, 1, 2, 255, 7}, 1},        // max code 255 still fits width 1
      {{0, 256, 70, 65535}, 2},      // width 2
      {{0, 65536, 5}, 4},            // width 4
  };
  for (const auto& [codes, want_width] : cases) {
    std::string payload;
    const PackBlockEncoding enc =
        EncodeCodesBlock(codes, PackCodecChoice::kAutoCodec, &payload);
    const auto rows = static_cast<int64_t>(codes.size());
    const uint64_t dict_count =
        static_cast<uint64_t>(
            *std::max_element(codes.begin(), codes.end())) + 1;
    if (want_width < 4) {
      EXPECT_EQ(enc.codec, PackBlockCodec::kDictCodes);
      EXPECT_EQ(enc.param, want_width);
    } else {
      // Width-4 dict codes save nothing over the raw int32 array.
      EXPECT_EQ(enc.codec, PackBlockCodec::kRaw);
    }
    const Status valid = ValidateCodesBlock(
        enc.codec, enc.param, rows,
        {reinterpret_cast<const uint8_t*>(payload.data()), payload.size()},
        dict_count);
    ASSERT_TRUE(valid.ok()) << valid.ToString();
    EXPECT_EQ(DecodeCodes(enc, rows, payload), codes);
  }
}

TEST(PackCodecTest, ValidatorsRejectMalformedClaims) {
  // Wrong payload length for the claimed codec/rows.
  EXPECT_FALSE(ValidateValueBlock(PackBlockCodec::kRaw, 0, false, 4, 31).ok());
  EXPECT_FALSE(ValidateValueBlock(PackBlockCodec::kDelta, 1, false, 4, 12).ok());
  // Dict codes are not a value codec; delta is not a double codec.
  EXPECT_FALSE(
      ValidateValueBlock(PackBlockCodec::kDictCodes, 1, false, 4, 4).ok());
  EXPECT_FALSE(ValidateValueBlock(PackBlockCodec::kDelta, 1, true, 4, 11).ok());
  // Illegal delta widths.
  EXPECT_FALSE(ValidateValueBlock(PackBlockCodec::kDelta, 3, false, 4, 17).ok());
  EXPECT_FALSE(ValidateValueBlock(PackBlockCodec::kDelta, 9, false, 4, 35).ok());

  // A code out of dictionary range is caught at validation, before decode.
  const std::vector<int32_t> codes = {0, 1, 2, 3};
  std::string payload;
  const PackBlockEncoding enc =
      EncodeCodesBlock(codes, PackCodecChoice::kForceDict, &payload);
  const std::span<const uint8_t> bytes(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
  EXPECT_TRUE(ValidateCodesBlock(enc.codec, enc.param, 4, bytes, 4).ok());
  const Status reject = ValidateCodesBlock(enc.codec, enc.param, 4, bytes, 3);
  ASSERT_FALSE(reject.ok());
  EXPECT_EQ(reject.code(), StatusCode::kDataLoss);
  // Illegal code width.
  EXPECT_FALSE(ValidateCodesBlock(PackBlockCodec::kDictCodes, 3, 4,
                                  bytes.subspan(0, 12), 4)
                   .ok());
}

TEST(PackCodecTest, ChecksummerIsChunkingInvariantAndLengthSensitive) {
  std::string data;
  for (int i = 0; i < 1000; ++i) data.push_back(static_cast<char>(i * 7));

  const uint64_t whole = PackChecksumV2(
      {reinterpret_cast<const uint8_t*>(data.data()), data.size()});
  for (const size_t chunk : {1u, 3u, 7u, 8u, 64u, 999u}) {
    PackChecksummer sum;
    for (size_t i = 0; i < data.size(); i += chunk) {
      sum.Append(std::string_view(data).substr(i, chunk));
    }
    EXPECT_EQ(sum.Finish(), whole) << "chunk " << chunk;
  }

  // Finish() is idempotent (does not consume state).
  PackChecksummer sum;
  sum.Append(data);
  EXPECT_EQ(sum.Finish(), whole);
  EXPECT_EQ(sum.Finish(), whole);

  // Trailing zeros change the checksum even though the 8-byte folds see
  // identical words (the end-folded length disambiguates).
  std::string padded = data;
  padded.append(8, '\0');
  EXPECT_NE(PackChecksumV2({reinterpret_cast<const uint8_t*>(padded.data()),
                            padded.size()}),
            whole);
  EXPECT_NE(PackChecksumV2(std::span<const uint8_t>()),
            PackChecksumV2({reinterpret_cast<const uint8_t*>("\0"), 1}));
}

TEST(PackCodecTest, CodecChoiceNamesParse) {
  PackCodecChoice choice = PackCodecChoice::kForceRaw;
  EXPECT_TRUE(ParsePackCodecChoice("auto", &choice));
  EXPECT_EQ(choice, PackCodecChoice::kAutoCodec);
  EXPECT_TRUE(ParsePackCodecChoice("raw", &choice));
  EXPECT_EQ(choice, PackCodecChoice::kForceRaw);
  EXPECT_TRUE(ParsePackCodecChoice("delta", &choice));
  EXPECT_EQ(choice, PackCodecChoice::kForceDelta);
  EXPECT_TRUE(ParsePackCodecChoice("dict", &choice));
  EXPECT_EQ(choice, PackCodecChoice::kForceDict);
  EXPECT_FALSE(ParsePackCodecChoice("zstd", &choice));
  EXPECT_FALSE(ParsePackCodecChoice("", &choice));
}

}  // namespace
}  // namespace ndv
