// Crash-recovery tests for the durable catalog (DESIGN.md §14): WAL
// round trips, exact-prefix replay over torn and corrupt tails,
// snapshot fallback, crash-point death tests, and replay of the
// checked-in fixture store under exhaustive tail mutation.

#include "catalog/durable_catalog.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/crash_point.h"
#include "common/file_io.h"

namespace ndv {
namespace {

std::string TestDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::system(("rm -rf " + dir).c_str());
  return dir;
}

ColumnStats MakeStats(const std::string& name, int64_t salt) {
  ColumnStats stats;
  stats.column_name = name;
  stats.table_rows = 1000 + salt;
  stats.sample_rows = 100 + salt % 37;
  stats.sample_distinct = 10 + salt % 90;
  stats.estimate = 50.5 + static_cast<double>(salt);
  stats.lower = static_cast<double>(stats.sample_distinct);
  stats.upper = 400.0 + static_cast<double>(salt) * 2.0;
  stats.method = salt % 2 == 0 ? "AE" : "GEE";
  stats.coverage = salt % 3 == 0 ? 1.0 : 0.5;
  stats.degraded = salt % 3 != 0;
  return stats;
}

std::unique_ptr<DurableCatalog> OpenOrDie(DurableCatalogOptions options) {
  auto opened = DurableCatalog::Open(std::move(options));
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  return std::move(*opened);  // aborts with the status if !ok
}

// Appends `count` Puts, recording the model serialization after each
// epoch so tests can check bit-identity at ANY recovered epoch.
// Returns [e] = serialized state after epoch e+1.
std::vector<std::string> AppendPuts(DurableCatalog* durable, int count,
                                    StatsCatalog* model) {
  std::vector<std::string> serialized_at;
  for (int i = 0; i < count; ++i) {
    const ColumnStats stats =
        MakeStats("col" + std::to_string(i % 3), 100 + i);
    const Status appended = durable->AppendPut(stats);
    if (!appended.ok()) {
      ADD_FAILURE() << appended.ToString();
      return serialized_at;
    }
    model->Put(stats);
    serialized_at.push_back(model->Serialize());
  }
  return serialized_at;
}

TEST(DurableCatalogTest, FreshDirectoryStartsEmpty) {
  auto durable = OpenOrDie({.dir = TestDir("durable_fresh")});
  EXPECT_EQ(durable->epoch(), 0u);
  EXPECT_TRUE(durable->state().empty());
  EXPECT_EQ(durable->recovery().snapshot_entries, -1);
  EXPECT_EQ(durable->recovery().replayed_records, 0);
  EXPECT_EQ(durable->recovery().truncated_bytes, 0);
  EXPECT_FALSE(durable->recovery().used_fallback_snapshot);
  EXPECT_GE(durable->recovery().boot_millis, 0.0);
}

TEST(DurableCatalogTest, PutAndPublishSurviveReopen) {
  const std::string dir = TestDir("durable_roundtrip");
  StatsCatalog model;
  {
    auto durable = OpenOrDie({.dir = dir});
    ASSERT_TRUE(durable->AppendPut(MakeStats("a", 1)).ok());
    ASSERT_TRUE(durable->AppendPut(MakeStats("b", 2)).ok());
    StatsCatalog replacement;
    replacement.Put(MakeStats("c", 3));
    ASSERT_TRUE(durable->AppendPublish(replacement).ok());
    ASSERT_TRUE(durable->AppendPut(MakeStats("d", 4)).ok());
    model = durable->state();
    EXPECT_EQ(durable->epoch(), 4u);
  }
  auto durable = OpenOrDie({.dir = dir});
  EXPECT_EQ(durable->epoch(), 4u);
  EXPECT_EQ(durable->recovery().replayed_records, 4);
  EXPECT_EQ(durable->state().Serialize(), model.Serialize());
  // Publish replaced the catalog wholesale: a and b are gone.
  EXPECT_FALSE(durable->state().Find("a").has_value());
  EXPECT_TRUE(durable->state().Find("c").has_value());
}

TEST(DurableCatalogTest, CompactionSnapshotsAndEpochFilteredReplay) {
  const std::string dir = TestDir("durable_compact");
  StatsCatalog model;
  {
    auto durable = OpenOrDie({.dir = dir, .snapshot_every_records = 4});
    AppendPuts(durable.get(), 10, &model);
    EXPECT_EQ(durable->epoch(), 10u);
    // 10 appends at a cadence of 4: compactions at epochs 4 and 8, so 2
    // records sit in the live WAL.
    EXPECT_EQ(durable->records_since_snapshot(), 2);
  }
  auto durable = OpenOrDie({.dir = dir, .snapshot_every_records = 4});
  EXPECT_EQ(durable->epoch(), 10u);
  EXPECT_GE(durable->recovery().snapshot_entries, 0);
  EXPECT_EQ(durable->recovery().replayed_records, 2);
  // The rotated log's records (5..8) are all at or below the snapshot
  // epoch, so replay skips them.
  EXPECT_EQ(durable->recovery().skipped_records, 4);
  EXPECT_EQ(durable->state().Serialize(), model.Serialize());
}

TEST(DurableCatalogTest, EveryByteTruncationOfWalRecoversExactPrefix) {
  const std::string dir = TestDir("durable_truncate_src");
  StatsCatalog model;
  std::vector<std::string> serialized_at;
  {
    // No compaction: the WAL holds the whole history.
    auto durable = OpenOrDie({.dir = dir, .snapshot_every_records = 0});
    serialized_at = AppendPuts(durable.get(), 6, &model);
  }
  ASSERT_EQ(serialized_at.size(), 6u);
  const std::string wal_path =
      dir + "/" + std::string(DurableCatalog::kWalFile);
  auto wal_bytes = ReadFileOrStatus(wal_path);
  ASSERT_TRUE(wal_bytes.ok());

  // Chop the log at EVERY byte offset from just past the header to one
  // byte short of full. Each cut must recover cleanly to the exact
  // prefix of fully-valid records, bit-identical to the model there.
  const std::string work = TestDir("durable_truncate_work");
  for (size_t cut = 8; cut < wal_bytes->size(); ++cut) {
    std::system(("rm -rf " + work).c_str());
    ASSERT_TRUE(EnsureDirectory(work).ok());
    ASSERT_TRUE(
        AtomicWriteFile(work + "/" + std::string(DurableCatalog::kWalFile),
                        std::string_view(*wal_bytes).substr(0, cut),
                        /*sync=*/false)
            .ok());
    auto recovered =
        DurableCatalog::Open({.dir = work, .snapshot_every_records = 0});
    ASSERT_TRUE(recovered.ok())
        << "cut at byte " << cut << ": " << recovered.status().ToString();
    const uint64_t epoch = (*recovered)->epoch();
    ASSERT_LE(epoch, 6u) << "cut at byte " << cut;
    const std::string expected =
        epoch == 0 ? StatsCatalog().Serialize() : serialized_at[epoch - 1];
    EXPECT_EQ((*recovered)->state().Serialize(), expected)
        << "cut at byte " << cut;
    // The torn tail is physically gone: a reopen replays the same prefix
    // with nothing left to truncate.
    const int64_t truncated = (*recovered)->recovery().truncated_bytes;
    recovered->reset();
    auto reopened =
        DurableCatalog::Open({.dir = work, .snapshot_every_records = 0});
    ASSERT_TRUE(reopened.ok()) << "cut at byte " << cut;
    EXPECT_EQ((*reopened)->epoch(), epoch) << "cut at byte " << cut;
    EXPECT_EQ((*reopened)->recovery().truncated_bytes, 0)
        << "cut at byte " << cut << " (first open truncated " << truncated
        << ")";
  }
}

TEST(DurableCatalogTest, CorruptMiddleRecordDiscardsSuffixButStoreWorks) {
  const std::string dir = TestDir("durable_corrupt");
  StatsCatalog model;
  std::vector<std::string> serialized_at;
  {
    auto durable = OpenOrDie({.dir = dir, .snapshot_every_records = 0});
    serialized_at = AppendPuts(durable.get(), 5, &model);
  }
  ASSERT_EQ(serialized_at.size(), 5u);
  const std::string wal_path =
      dir + "/" + std::string(DurableCatalog::kWalFile);
  auto wal_bytes = ReadFileOrStatus(wal_path);
  ASSERT_TRUE(wal_bytes.ok());
  // Flip one byte around 40% into the log: some record in the middle
  // fails its checksum, and everything after it — valid or not — must be
  // discarded (exact prefix, no resynchronization).
  std::string corrupt = *wal_bytes;
  const size_t flip = corrupt.size() * 2 / 5;
  corrupt[flip] = static_cast<char>(corrupt[flip] ^ 0x01);
  ASSERT_TRUE(AtomicWriteFile(wal_path, corrupt, /*sync=*/false).ok());

  auto recovered =
      DurableCatalog::Open({.dir = dir, .snapshot_every_records = 0});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const uint64_t epoch = (*recovered)->epoch();
  EXPECT_LT(epoch, 5u);
  EXPECT_GT((*recovered)->recovery().truncated_bytes, 0);
  const std::string expected =
      epoch == 0 ? StatsCatalog().Serialize() : serialized_at[epoch - 1];
  EXPECT_EQ((*recovered)->state().Serialize(), expected);

  // The repaired store accepts new appends and reopens to them.
  ASSERT_TRUE((*recovered)->AppendPut(MakeStats("post", 99)).ok());
  const uint64_t final_epoch = (*recovered)->epoch();
  const std::string final_state = (*recovered)->state().Serialize();
  recovered->reset();
  auto reopened =
      DurableCatalog::Open({.dir = dir, .snapshot_every_records = 0});
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->epoch(), final_epoch);
  EXPECT_EQ((*reopened)->state().Serialize(), final_state);
}

TEST(DurableCatalogTest, CorruptPrimarySnapshotFallsBackWithoutDataLoss) {
  const std::string dir = TestDir("durable_fallback");
  StatsCatalog model;
  {
    auto durable = OpenOrDie({.dir = dir, .snapshot_every_records = 4});
    AppendPuts(durable.get(), 10, &model);
  }
  // Corrupt the newest snapshot (epoch 8). Recovery must fall back to
  // snapshot.prev.ndv (epoch 4) and rebuild epochs 5..10 from the rotated
  // and live WALs.
  const std::string snapshot_path =
      dir + "/" + std::string(DurableCatalog::kSnapshotFile);
  auto snapshot_bytes = ReadFileOrStatus(snapshot_path);
  ASSERT_TRUE(snapshot_bytes.ok());
  std::string corrupt = *snapshot_bytes;
  corrupt[corrupt.size() / 2] =
      static_cast<char>(corrupt[corrupt.size() / 2] ^ 0x40);
  ASSERT_TRUE(AtomicWriteFile(snapshot_path, corrupt, /*sync=*/false).ok());

  auto recovered =
      DurableCatalog::Open({.dir = dir, .snapshot_every_records = 4});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE((*recovered)->recovery().used_fallback_snapshot);
  EXPECT_EQ((*recovered)->epoch(), 10u);
  EXPECT_EQ((*recovered)->recovery().replayed_records, 6);
  EXPECT_EQ((*recovered)->state().Serialize(), model.Serialize());
}

TEST(DurableCatalogTest, EpochGapRefusesRepairAndPreservesIntactLogs) {
  const std::string dir = TestDir("durable_gap");
  StatsCatalog model;
  {
    auto durable = OpenOrDie({.dir = dir, .snapshot_every_records = 4});
    AppendPuts(durable.get(), 10, &model);
  }
  // Destroy BOTH snapshot generations (external corruption; no crash
  // schedule produces this). wal.prev.log then starts at epoch 5 with
  // nothing before it: valid framing, but a whole generation is missing.
  const std::string primary =
      dir + "/" + std::string(DurableCatalog::kSnapshotFile);
  auto pristine = ReadFileOrStatus(primary);
  ASSERT_TRUE(pristine.ok());
  for (const std::string_view name :
       {DurableCatalog::kSnapshotFile, DurableCatalog::kSnapshotPrevFile}) {
    const std::string path = dir + "/" + std::string(name);
    auto bytes = ReadFileOrStatus(path);
    ASSERT_TRUE(bytes.ok());
    std::string corrupt = *bytes;
    corrupt[corrupt.size() / 2] =
        static_cast<char>(corrupt[corrupt.size() / 2] ^ 0x20);
    ASSERT_TRUE(AtomicWriteFile(path, corrupt, /*sync=*/false).ok());
  }
  const std::string wal_path =
      dir + "/" + std::string(DurableCatalog::kWalFile);
  auto wal_before = ReadFileOrStatus(wal_path);
  ASSERT_TRUE(wal_before.ok());

  // Open must refuse — truncating the intact logs would permanently
  // destroy records an operator could still recover.
  auto failed =
      DurableCatalog::Open({.dir = dir, .snapshot_every_records = 4});
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kDataLoss);
  auto wal_after = ReadFileOrStatus(wal_path);
  ASSERT_TRUE(wal_after.ok());
  EXPECT_EQ(*wal_after, *wal_before);

  // Restoring the snapshot "from backup" recovers the complete state.
  ASSERT_TRUE(AtomicWriteFile(primary, *pristine, /*sync=*/false).ok());
  auto recovered =
      DurableCatalog::Open({.dir = dir, .snapshot_every_records = 4});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->epoch(), 10u);
  EXPECT_EQ((*recovered)->state().Serialize(), model.Serialize());
}

TEST(DurableCatalogTest, AccessorsAreSafeUnderConcurrentAppends) {
  auto durable = OpenOrDie({.dir = TestDir("durable_threads"),
                            .fsync = FsyncPolicy::kNone,
                            .snapshot_every_records = 8});
  // Reader thread hammers the accessors while the main thread appends
  // (and auto-compacts): epochs must be monotone and every observed
  // state a complete catalog — run under TSan this is the data-race
  // check for the locked accessors.
  std::atomic<bool> done{false};
  std::thread reader([&durable, &done] {
    uint64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      const uint64_t epoch = durable->epoch();
      EXPECT_GE(epoch, last);
      last = epoch;
      const StatsCatalog snapshot = durable->state();
      EXPECT_LE(snapshot.entries().size(), 3u);  // AppendPuts cycles 3 names
      (void)durable->records_since_snapshot();
    }
  });
  StatsCatalog model;
  AppendPuts(durable.get(), 64, &model);
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(durable->epoch(), 64u);
  EXPECT_EQ(durable->state().Serialize(), model.Serialize());
}

TEST(DurableCatalogTest, FsyncNonePolicyStillRecoversAcrossCleanReopen) {
  const std::string dir = TestDir("durable_nosync");
  StatsCatalog model;
  {
    auto durable = OpenOrDie({.dir = dir,
                              .fsync = FsyncPolicy::kNone,
                              .snapshot_every_records = 0});
    AppendPuts(durable.get(), 3, &model);
    ASSERT_TRUE(durable->Sync().ok());
    ASSERT_TRUE(durable->Compact().ok());
  }
  auto durable = OpenOrDie({.dir = dir, .fsync = FsyncPolicy::kNone});
  EXPECT_EQ(durable->epoch(), 3u);
  EXPECT_EQ(durable->state().Serialize(), model.Serialize());
}

TEST(DurableCatalogTest, OversizeRecordIsRejectedNotAppended) {
  auto durable = OpenOrDie({.dir = TestDir("durable_oversize")});
  ColumnStats stats = MakeStats("huge", 1);
  stats.column_name.assign((size_t{1} << 26) + 1, 'x');
  const Status status = durable->AppendPut(stats);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(durable->epoch(), 0u);  // Nothing acknowledged, nothing applied.
}

// ---- Crash-point death tests: the in-process complement of the
// tools/ndv_crash fleet. EXPECT_EXIT forks, so arming inside the statement
// affects only the child; the parent then recovers the directory the
// child's crash left behind. Counters are reset in the child first so hit
// numbers are process-local regardless of what ran before the fork.

TEST(DurableCatalogCrashTest, CrashAfterFsyncKeepsAcknowledgedRecord) {
  const std::string dir = TestDir("durable_crash_synced");
  auto durable = OpenOrDie({.dir = dir});
  EXPECT_EXIT(
      {
        ResetCrashPoints();
        ArmCrashPoint("wal.append.synced", 1);
        const Status ignored = durable->AppendPut(MakeStats("a", 1));
        (void)ignored;
      },
      testing::ExitedWithCode(kCrashPointExitCode),
      "NDV_CRASH_POINT fired: wal.append.synced");
  durable.reset();
  // The crash hit AFTER the fsync: the record is durable and must be
  // recovered in full.
  auto recovered = OpenOrDie({.dir = dir});
  EXPECT_EQ(recovered->epoch(), 1u);
  EXPECT_TRUE(recovered->state().Find("a").has_value());
}

TEST(DurableCatalogCrashTest, CrashMidRecordLeavesNoTrace) {
  const std::string dir = TestDir("durable_crash_torn");
  auto durable = OpenOrDie({.dir = dir});
  ASSERT_TRUE(durable->AppendPut(MakeStats("kept", 7)).ok());
  const std::string before = durable->state().Serialize();
  EXPECT_EXIT(
      {
        ResetCrashPoints();
        ArmCrashPoint("wal.append.torn", 1);
        const Status ignored = durable->AppendPut(MakeStats("torn", 8));
        (void)ignored;
      },
      testing::ExitedWithCode(kCrashPointExitCode),
      "NDV_CRASH_POINT fired: wal.append.torn");
  durable.reset();
  // The crash left half a record on disk. Recovery must truncate it and
  // keep only the acknowledged prefix — no partial Put applied.
  auto recovered = OpenOrDie({.dir = dir});
  EXPECT_EQ(recovered->epoch(), 1u);
  EXPECT_GT(recovered->recovery().truncated_bytes, 0);
  EXPECT_EQ(recovered->state().Serialize(), before);
  EXPECT_FALSE(recovered->state().Find("torn").has_value());
}

TEST(DurableCatalogCrashTest, CrashBetweenSnapshotRenamesRecoversFromPrev) {
  const std::string dir = TestDir("durable_crash_rename");
  StatsCatalog model;
  auto durable = OpenOrDie({.dir = dir, .snapshot_every_records = 0});
  AppendPuts(durable.get(), 5, &model);
  ASSERT_TRUE(durable->Compact().ok());  // snapshot at epoch 5 exists
  AppendPuts(durable.get(), 2, &model);  // live WAL holds epochs 6, 7
  const std::string expected = durable->state().Serialize();
  EXPECT_EXIT(
      {
        // Die between "old snapshot renamed to prev" and "new snapshot
        // renamed in": at that instant the directory has NO snapshot.ndv,
        // only snapshot.prev.ndv (epoch 5) and the intact live WAL.
        ResetCrashPoints();
        ArmCrashPoint("snapshot.prev_renamed", 1);
        const Status ignored = durable->Compact();
        (void)ignored;
      },
      testing::ExitedWithCode(kCrashPointExitCode),
      "NDV_CRASH_POINT fired: snapshot.prev_renamed");
  durable.reset();
  auto recovered = OpenOrDie({.dir = dir, .snapshot_every_records = 0});
  EXPECT_EQ(recovered->epoch(), 7u);
  EXPECT_EQ(recovered->recovery().replayed_records, 2);
  EXPECT_EQ(recovered->state().Serialize(), expected);
}

TEST(CrashPointTest, CountingAndEnvArming) {
  ResetCrashPoints();
  EnableCrashPointCounting();
  NDV_CRASH_POINT("test.site");
  NDV_CRASH_POINT("test.site");
  NDV_CRASH_POINT("test.other");
  EXPECT_EQ(CrashPointHits("test.site"), 2);
  EXPECT_EQ(CrashPointHits("test.other"), 1);
  EXPECT_EQ(CrashPointHits("test.never"), 0);
  const auto counts = CrashPointCounts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0].first, "test.site");
  ResetCrashPoints();
  EXPECT_EQ(CrashPointHits("test.site"), 0);

  ::setenv("NDV_CRASH_POINT", "not-a-spec", 1);
  EXPECT_FALSE(ArmCrashPointFromEnv());
  ::setenv("NDV_CRASH_POINT", "some.site:3", 1);
  EXPECT_TRUE(ArmCrashPointFromEnv());
  ::unsetenv("NDV_CRASH_POINT");
  ResetCrashPoints();
}

// ---- Checked-in fixture replay: a store written by `ndv_crash
// --make-fixtures` (two snapshot generations + rotated and live WALs)
// must recover on today's code, under exhaustive mutation of its tail.

std::string FixtureDir() {
  const char* root = std::getenv("NDV_TESTDATA");
  if (root == nullptr) return "";
  return std::string(root) + "/durable";
}

// Copies the fixture store into a scratch dir: recovery repairs the live
// WAL in place, so tests must never open the checked-in copy directly.
bool CopyFixture(const std::string& from, const std::string& to) {
  std::system(("rm -rf " + to).c_str());
  if (!EnsureDirectory(to).ok()) return false;
  for (const std::string_view name :
       {DurableCatalog::kSnapshotFile, DurableCatalog::kSnapshotPrevFile,
        DurableCatalog::kWalFile, DurableCatalog::kWalPrevFile}) {
    auto bytes = ReadFileOrStatus(from + "/" + std::string(name));
    if (!bytes.ok()) return false;
    if (!AtomicWriteFile(to + "/" + std::string(name), *bytes,
                         /*sync=*/false)
             .ok()) {
      return false;
    }
  }
  return true;
}

TEST(DurableCatalogFixtureTest, CheckedInStoreRecoversBitIdentical) {
  const std::string fixture = FixtureDir();
  if (fixture.empty()) GTEST_SKIP() << "NDV_TESTDATA not set";
  auto expected_epoch = ReadFileOrStatus(fixture + "/expected_epoch");
  auto expected_state = ReadFileOrStatus(fixture + "/expected_state.txt");
  ASSERT_TRUE(expected_epoch.ok() && expected_state.ok());

  const std::string work = TestDir("durable_fixture_basic");
  ASSERT_TRUE(CopyFixture(fixture + "/basic", work));
  auto recovered =
      DurableCatalog::Open({.dir = work, .snapshot_every_records = 4});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->epoch(),
            std::strtoull(expected_epoch->c_str(), nullptr, 10));
  EXPECT_EQ((*recovered)->state().Serialize(), *expected_state);
}

TEST(DurableCatalogFixtureTest, EveryTailTruncationRecoversCleanly) {
  const std::string fixture = FixtureDir();
  if (fixture.empty()) GTEST_SKIP() << "NDV_TESTDATA not set";
  auto wal = ReadFileOrStatus(fixture + "/basic/" +
                              std::string(DurableCatalog::kWalFile));
  ASSERT_TRUE(wal.ok());

  const std::string work = TestDir("durable_fixture_trunc");
  for (size_t cut = 0; cut < wal->size(); ++cut) {
    ASSERT_TRUE(CopyFixture(fixture + "/basic", work));
    ASSERT_TRUE(
        AtomicWriteFile(work + "/" + std::string(DurableCatalog::kWalFile),
                        std::string_view(*wal).substr(0, cut),
                        /*sync=*/false)
            .ok());
    auto recovered =
        DurableCatalog::Open({.dir = work, .snapshot_every_records = 4});
    ASSERT_TRUE(recovered.ok())
        << "cut at byte " << cut << ": " << recovered.status().ToString();
    // The snapshot generation floors the recovered epoch; the WAL tail
    // can only add to it.
    EXPECT_GE((*recovered)->epoch(), 8u) << "cut at byte " << cut;
    EXPECT_LE((*recovered)->epoch(), 10u) << "cut at byte " << cut;
    // Recovery is idempotent: a second open reproduces the same state
    // with nothing further to repair.
    const uint64_t epoch = (*recovered)->epoch();
    const std::string state = (*recovered)->state().Serialize();
    recovered->reset();
    auto reopened =
        DurableCatalog::Open({.dir = work, .snapshot_every_records = 4});
    ASSERT_TRUE(reopened.ok()) << "cut at byte " << cut;
    EXPECT_EQ((*reopened)->epoch(), epoch) << "cut at byte " << cut;
    EXPECT_EQ((*reopened)->state().Serialize(), state)
        << "cut at byte " << cut;
    EXPECT_EQ((*reopened)->recovery().truncated_bytes, 0)
        << "cut at byte " << cut;
  }
}

TEST(DurableCatalogFixtureTest, CorruptFixtureSnapshotFallsBackToFullState) {
  const std::string fixture = FixtureDir();
  if (fixture.empty()) GTEST_SKIP() << "NDV_TESTDATA not set";
  auto expected_state = ReadFileOrStatus(fixture + "/expected_state.txt");
  ASSERT_TRUE(expected_state.ok());

  const std::string work = TestDir("durable_fixture_corrupt");
  ASSERT_TRUE(CopyFixture(fixture + "/basic", work));
  const std::string snapshot_path =
      work + "/" + std::string(DurableCatalog::kSnapshotFile);
  auto snapshot = ReadFileOrStatus(snapshot_path);
  ASSERT_TRUE(snapshot.ok());
  std::string corrupt = *snapshot;
  corrupt[corrupt.size() / 2] =
      static_cast<char>(corrupt[corrupt.size() / 2] ^ 0x10);
  ASSERT_TRUE(AtomicWriteFile(snapshot_path, corrupt, /*sync=*/false).ok());

  // Fallback snapshot (epoch 4) + rotated WAL (5..8) + live WAL (9..10)
  // rebuild the complete state: corrupting the newest snapshot loses
  // NOTHING as long as one rotation of history is intact.
  auto recovered =
      DurableCatalog::Open({.dir = work, .snapshot_every_records = 4});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE((*recovered)->recovery().used_fallback_snapshot);
  EXPECT_EQ((*recovered)->epoch(), 10u);
  EXPECT_EQ((*recovered)->state().Serialize(), *expected_state);
}

}  // namespace
}  // namespace ndv
