#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace ndv {
namespace {

TEST(ThreadPoolTest, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(3);
  pool.Wait();  // Must not hang.
  EXPECT_EQ(pool.num_threads(), 3);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(500);
  ParallelFor(500, 8, [&hits](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, InlineWhenSingleThreaded) {
  // With one thread the order is sequential.
  std::vector<int64_t> order;
  ParallelFor(10, 1, [&order](int64_t i) { order.push_back(i); });
  std::vector<int64_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ParallelForTest, ZeroCountIsNoop) {
  bool called = false;
  ParallelFor(0, 4, [&called](int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, ResultsMatchSerialExecution) {
  // Sum of squares computed in parallel equals the serial result.
  std::vector<int64_t> results(1000, 0);
  ParallelFor(1000, 8, [&results](int64_t i) { results[static_cast<size_t>(i)] = i * i; });
  int64_t total = std::accumulate(results.begin(), results.end(), int64_t{0});
  int64_t expected = 0;
  for (int64_t i = 0; i < 1000; ++i) expected += i * i;
  EXPECT_EQ(total, expected);
}

TEST(DefaultThreadCountTest, Positive) {
  EXPECT_GE(DefaultThreadCount(), 1);
  EXPECT_LE(DefaultThreadCount(), 16);
}

}  // namespace
}  // namespace ndv
