#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ndv {
namespace {

TEST(ThreadPoolTest, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(3);
  pool.Wait();  // Must not hang.
  EXPECT_EQ(pool.num_threads(), 3);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 100);
}

// Regression: a throwing task used to escape WorkerLoop and call
// std::terminate, and in_flight_ was never decremented on the throw path,
// so Wait() deadlocked. Now the first exception surfaces from Wait().
TEST(ThreadPoolTest, ThrowingTaskSurfacesFromWait) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
}

TEST(ThreadPoolTest, ThrowingTaskDoesNotDeadlockOrLoseWork) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&ran, i] {
      if (i % 10 == 3) throw std::runtime_error("x");
      ran.fetch_add(1);
    });
  }
  // Wait() must return (no deadlock), rethrow, and have drained the queue.
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 90);
  // The exception was cleared: the pool is reusable and the next Wait()
  // does not see a stale error.
  pool.Submit([&ran] { ran.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(ran.load(), 91);
}

TEST(ThreadPoolTest, StressThrowingTasksAcrossRepeatedWaitCycles) {
  ThreadPool pool(4);
  for (int cycle = 0; cycle < 50; ++cycle) {
    std::atomic<int> ok{0};
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&ok, i] {
        if (i % 2 == 1) throw std::runtime_error("odd");
        ok.fetch_add(1);
      });
    }
    EXPECT_THROW(pool.Wait(), std::runtime_error);
    EXPECT_EQ(ok.load(), 100);
  }
}

TEST(ThreadPoolTest, DestructorSurvivesThrowingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&ran, i] {
        if (i % 5 == 0) throw std::runtime_error("x");
        ran.fetch_add(1);
      });
    }
    // No Wait(): the destructor drains, discards the exceptions, and must
    // not terminate the process.
  }
  EXPECT_EQ(ran.load(), 40);
}

TEST(SharedThreadPoolTest, IsAProcessWideSingleton) {
  ThreadPool& a = SharedThreadPool();
  ThreadPool& b = SharedThreadPool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1);
  std::atomic<int> counter{0};
  a.Submit([&counter] { counter.fetch_add(1); });
  a.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(500);
  ParallelFor(500, 8, [&hits](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, InlineWhenSingleThreaded) {
  // With one thread the order is sequential.
  std::vector<int64_t> order;
  ParallelFor(10, 1, [&order](int64_t i) { order.push_back(i); });
  std::vector<int64_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ParallelForTest, ZeroCountIsNoop) {
  bool called = false;
  ParallelFor(0, 4, [&called](int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, ResultsMatchSerialExecution) {
  // Sum of squares computed in parallel equals the serial result.
  std::vector<int64_t> results(1000, 0);
  ParallelFor(1000, 8, [&results](int64_t i) { results[static_cast<size_t>(i)] = i * i; });
  int64_t total = std::accumulate(results.begin(), results.end(), int64_t{0});
  int64_t expected = 0;
  for (int64_t i = 0; i < 1000; ++i) expected += i * i;
  EXPECT_EQ(total, expected);
}

TEST(ParallelForTest, PropagatesTaskException) {
  EXPECT_THROW(ParallelFor(100, 4,
                           [](int64_t i) {
                             if (i == 37) throw std::runtime_error("at 37");
                           }),
               std::runtime_error);
  // The shared pool survives the failed batch.
  std::atomic<int> after{0};
  ParallelFor(10, 4, [&after](int64_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 10);
}

TEST(ParallelForTest, ClampsConcurrencyToCount) {
  // 64 requested threads but only 3 indices: work is split into at most 3
  // chunks, so at most 3 distinct threads ever run fn.
  std::vector<std::atomic<int>> hits(3);
  std::mutex mutex;
  std::set<std::thread::id> ids;
  ParallelFor(3, 64, [&](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
    std::lock_guard<std::mutex> lock(mutex);
    ids.insert(std::this_thread::get_id());
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_LE(ids.size(), 3u);
}

TEST(ParallelForTest, NestedCallsRunInlineWithoutDeadlock) {
  // An inner ParallelFor on a pool worker must not wait on the shared pool
  // it is running on; it detects the worker thread and runs inline.
  std::atomic<int> total{0};
  ParallelFor(8, 4, [&total](int64_t) {
    ParallelFor(8, 4, [&total](int64_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(DefaultThreadCountTest, Positive) {
  EXPECT_GE(DefaultThreadCount(), 1);
  EXPECT_LE(DefaultThreadCount(), 16);
}

TEST(DefaultThreadCountTest, NdvThreadsEnvOverride) {
  ASSERT_EQ(unsetenv("NDV_THREADS"), 0);
  const int fallback = DefaultThreadCount();

  ASSERT_EQ(setenv("NDV_THREADS", "5", 1), 0);
  EXPECT_EQ(DefaultThreadCount(), 5);
  // The override may exceed the silent hardware cap of 16.
  ASSERT_EQ(setenv("NDV_THREADS", "64", 1), 0);
  EXPECT_EQ(DefaultThreadCount(), 64);

  // Garbage falls back to the hardware default instead of crashing.
  for (const char* bad : {"", "abc", "12abc", "0", "-3", "1000000", " 4"}) {
    ASSERT_EQ(setenv("NDV_THREADS", bad, 1), 0);
    EXPECT_EQ(DefaultThreadCount(), fallback) << "NDV_THREADS=" << bad;
  }

  ASSERT_EQ(unsetenv("NDV_THREADS"), 0);
  EXPECT_EQ(DefaultThreadCount(), fallback);
}

TEST(ResolveThreadCountTest, ZeroMeansAuto) {
  ASSERT_EQ(unsetenv("NDV_THREADS"), 0);
  EXPECT_EQ(ResolveThreadCount(0), DefaultThreadCount());
  EXPECT_EQ(ResolveThreadCount(-1), DefaultThreadCount());
  EXPECT_EQ(ResolveThreadCount(1), 1);
  EXPECT_EQ(ResolveThreadCount(7), 7);
}

}  // namespace
}  // namespace ndv
