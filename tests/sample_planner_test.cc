#include "core/sample_planner.h"

#include <cmath>

#include <gtest/gtest.h>

#include "datagen/zipf.h"
#include "table/table.h"

namespace ndv {
namespace {

TEST(RequiredSampleSizeTest, InvertsTheoremTwoBound) {
  // Note: e*sqrt(n/r) >= e even at r = n, so targets below e clamp to a
  // full scan (covered by TightTargetsNeedFullScans).
  const int64_t n = 1000000;
  for (double target : {3.0, 5.0, 10.0}) {
    const int64_t r = RequiredSampleSizeForGuarantee(n, target);
    EXPECT_LE(GeeExpectedErrorBound(n, r), target * 1.001)
        << "target=" << target;
    // One row fewer must (roughly) break the guarantee.
    if (r > 1 && r < n) {
      EXPECT_GT(GeeExpectedErrorBound(n, r - 1), target * 0.999);
    }
  }
}

TEST(RequiredSampleSizeTest, TightTargetsNeedFullScans) {
  // target close to 1 forces r ~ e^2 n > n -> clamped to n.
  EXPECT_EQ(RequiredSampleSizeForGuarantee(1000, 1.5), 1000);
  EXPECT_EQ(RequiredSampleSizeForGuarantee(1000, 2.0), 1000);
  EXPECT_EQ(RequiredSampleSizeForGuarantee(1000, 2.7), 1000);
}

TEST(RequiredSampleSizeTest, LooseTargetsNeedFewRows) {
  const int64_t r = RequiredSampleSizeForGuarantee(1000000, 100.0);
  EXPECT_LE(r, 1000);
  EXPECT_GE(r, 1);
}

TEST(IntervalCertificateTest, GeometricMeanErrorFactor) {
  GeeBounds bounds;
  bounds.lower = 100.0;
  bounds.upper = 400.0;
  bounds.estimate = 200.0;
  EXPECT_DOUBLE_EQ(IntervalErrorCertificate(bounds), 2.0);
  bounds.upper = 100.0;
  EXPECT_DOUBLE_EQ(IntervalErrorCertificate(bounds), 1.0);
}

TEST(ProgressiveEstimateTest, CertifiesOnSkewedData) {
  // High skew: the interval collapses quickly, so certification should
  // come at a small fraction of the table.
  ZipfColumnOptions options;
  options.rows = 200000;
  options.z = 2.0;
  options.dup_factor = 100;
  const auto column = MakeZipfColumn(options);
  const double actual = static_cast<double>(ExactDistinctHashSet(*column));

  ProgressiveOptions progressive;
  progressive.target_error = 1.5;
  const ProgressiveResult result = ProgressiveEstimate(*column, progressive);
  EXPECT_TRUE(result.certified);
  EXPECT_LE(result.certificate, 1.5);
  EXPECT_LT(result.sample_rows, column->size());
  // The certificate is honest: truth inside the interval.
  EXPECT_LE(result.bounds.lower, actual);
  EXPECT_GE(result.bounds.upper, actual);
  EXPECT_GE(result.rounds, 1);
}

TEST(ProgressiveEstimateTest, HardDataEscalatesToLargerSamples) {
  // Low skew, many distinct values: certification needs a much larger
  // sample than the skewed case.
  ZipfColumnOptions easy;
  easy.rows = 200000;
  easy.z = 2.0;
  easy.dup_factor = 100;
  ZipfColumnOptions hard;
  hard.rows = 200000;
  hard.z = 0.0;
  hard.dup_factor = 10;
  const auto easy_column = MakeZipfColumn(easy);
  const auto hard_column = MakeZipfColumn(hard);
  ProgressiveOptions progressive;
  progressive.target_error = 2.0;
  const ProgressiveResult easy_result =
      ProgressiveEstimate(*easy_column, progressive);
  const ProgressiveResult hard_result =
      ProgressiveEstimate(*hard_column, progressive);
  EXPECT_TRUE(easy_result.certified);
  EXPECT_TRUE(hard_result.certified);
  EXPECT_GE(hard_result.sample_rows, 4 * easy_result.sample_rows);
}

TEST(ProgressiveEstimateTest, MaxRowsStopsEscalation) {
  ZipfColumnOptions options;
  options.rows = 100000;
  options.z = 0.0;
  options.dup_factor = 1;  // All distinct: certification is impossible
                           // without ~full scans.
  const auto column = MakeZipfColumn(options);
  ProgressiveOptions progressive;
  progressive.target_error = 1.2;
  progressive.max_rows = 5000;
  const ProgressiveResult result = ProgressiveEstimate(*column, progressive);
  EXPECT_FALSE(result.certified);
  EXPECT_EQ(result.sample_rows, 5000);
}

TEST(ProgressiveEstimateTest, FullScanAlwaysCertifies) {
  ZipfColumnOptions options;
  options.rows = 3000;
  options.z = 0.0;
  options.dup_factor = 1;
  const auto column = MakeZipfColumn(options);
  ProgressiveOptions progressive;
  progressive.target_error = 1.01;
  const ProgressiveResult result = ProgressiveEstimate(*column, progressive);
  EXPECT_TRUE(result.certified);
  EXPECT_EQ(result.sample_rows, 3000);
  EXPECT_DOUBLE_EQ(result.bounds.estimate, 3000.0);
}

TEST(ProgressiveEstimateTest, DeterministicInSeed) {
  ZipfColumnOptions options;
  options.rows = 50000;
  options.z = 1.0;
  options.dup_factor = 10;
  const auto column = MakeZipfColumn(options);
  ProgressiveOptions progressive;
  progressive.target_error = 2.0;
  progressive.seed = 5;
  const ProgressiveResult a = ProgressiveEstimate(*column, progressive);
  const ProgressiveResult b = ProgressiveEstimate(*column, progressive);
  EXPECT_EQ(a.sample_rows, b.sample_rows);
  EXPECT_DOUBLE_EQ(a.bounds.estimate, b.bounds.estimate);
}

}  // namespace
}  // namespace ndv
