#include "sample/partition_merge.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "sample/samplers.h"

namespace ndv {
namespace {

// Builds a partition whose items are the full population [base, base+n):
// trivially a valid uniform sample of itself.
PartitionSample FullPartition(uint64_t base, int64_t n) {
  PartitionSample partition;
  partition.population = n;
  for (int64_t i = 0; i < n; ++i) {
    partition.items.push_back(base + static_cast<uint64_t>(i));
  }
  return partition;
}

TEST(SampleSequentialTest, ExactSizeSortedDistinct) {
  Rng rng(1);
  const auto rows = SampleSequential(1000, 100, rng);
  EXPECT_EQ(rows.size(), 100u);
  EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
  std::set<int64_t> unique(rows.begin(), rows.end());
  EXPECT_EQ(unique.size(), 100u);
  EXPECT_GE(rows.front(), 0);
  EXPECT_LT(rows.back(), 1000);
}

TEST(SampleSequentialTest, FullAndEmpty) {
  Rng rng(2);
  EXPECT_TRUE(SampleSequential(10, 0, rng).empty());
  const auto all = SampleSequential(10, 10, rng);
  EXPECT_EQ(all.size(), 10u);
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(all[static_cast<size_t>(i)], i);
}

TEST(SampleSequentialTest, UniformInclusion) {
  Rng rng(3);
  constexpr int kTrials = 30000;
  std::vector<int> counts(10, 0);
  for (int t = 0; t < kTrials; ++t) {
    for (int64_t row : SampleSequential(10, 3, rng)) {
      ++counts[static_cast<size_t>(row)];
    }
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kTrials * 0.3, kTrials * 0.02);
  }
}

TEST(MergePartitionSamplesTest, SizeAndMembership) {
  Rng rng(4);
  std::vector<PartitionSample> partitions;
  partitions.push_back(FullPartition(0, 50));
  partitions.push_back(FullPartition(1000, 30));
  const auto merged = MergePartitionSamples(partitions, 40, rng);
  EXPECT_EQ(merged.size(), 40u);
  std::set<uint64_t> unique(merged.begin(), merged.end());
  EXPECT_EQ(unique.size(), 40u);  // No duplicates.
  for (uint64_t item : merged) {
    EXPECT_TRUE(item < 50 || (item >= 1000 && item < 1030));
  }
}

TEST(MergePartitionSamplesTest, AllocationIsProportional) {
  // Partition A has 80% of the rows; across many merges ~80% of merged
  // items must come from A.
  Rng rng(5);
  constexpr int kTrials = 4000;
  int64_t from_a = 0;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<PartitionSample> partitions;
    partitions.push_back(FullPartition(0, 80));
    partitions.push_back(FullPartition(1000, 20));
    for (uint64_t item : MergePartitionSamples(partitions, 10, rng)) {
      if (item < 80) ++from_a;
    }
  }
  EXPECT_NEAR(static_cast<double>(from_a) / (kTrials * 10), 0.8, 0.01);
}

TEST(MergePartitionSamplesTest, PerItemInclusionIsUniform) {
  // Every one of the 20 union rows should appear in a 5-item merge with
  // probability 5/20, regardless of partition.
  Rng rng(6);
  constexpr int kTrials = 20000;
  std::map<uint64_t, int> counts;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<PartitionSample> partitions;
    partitions.push_back(FullPartition(0, 12));
    partitions.push_back(FullPartition(100, 8));
    for (uint64_t item : MergePartitionSamples(partitions, 5, rng)) {
      ++counts[item];
    }
  }
  EXPECT_EQ(counts.size(), 20u);
  for (const auto& [item, count] : counts) {
    EXPECT_NEAR(count, kTrials * 0.25, kTrials * 0.02) << "item " << item;
  }
}

TEST(MergePartitionSamplesTest, WorksWithReservoirInputs) {
  // Realistic pipeline: each partition runs a reservoir, merges are drawn
  // from the reservoirs.
  Rng rng(7);
  std::vector<PartitionSample> partitions;
  for (int p = 0; p < 4; ++p) {
    ReservoirSamplerR reservoir(64, Rng(static_cast<uint64_t>(p) + 10));
    for (int64_t i = 0; i < 500; ++i) {
      reservoir.Add(static_cast<uint64_t>(p) * 10000 +
                    static_cast<uint64_t>(i));
    }
    PartitionSample partition;
    partition.population = 500;
    partition.items = reservoir.sample();
    partitions.push_back(std::move(partition));
  }
  const auto merged = MergePartitionSamples(partitions, 64, rng);
  EXPECT_EQ(merged.size(), 64u);
  std::set<uint64_t> unique(merged.begin(), merged.end());
  EXPECT_EQ(unique.size(), 64u);
}

TEST(MergePartitionSamplesTest, RejectsUndersizedPartitionSamples) {
  Rng rng(8);
  std::vector<PartitionSample> partitions;
  PartitionSample starved;
  starved.population = 100;
  starved.items = {1, 2, 3};  // Only 3 sampled of 100: cannot serve 10.
  partitions.push_back(std::move(starved));
  EXPECT_DEATH(MergePartitionSamples(partitions, 10, rng), "too small");
}

TEST(MergePartitionSamplesTest, RejectsOversizedTarget) {
  Rng rng(9);
  std::vector<PartitionSample> partitions;
  partitions.push_back(FullPartition(0, 5));
  EXPECT_DEATH(MergePartitionSamples(partitions, 6, rng), "more rows");
}

TEST(MergePartitionSamplesTest, ZeroTarget) {
  Rng rng(10);
  std::vector<PartitionSample> partitions;
  partitions.push_back(FullPartition(0, 5));
  EXPECT_TRUE(MergePartitionSamples(partitions, 0, rng).empty());
}

TEST(MergePartitionSamplesOrStatusTest, MatchesAbortingWrapperOnValidInput) {
  Rng rng_a(11);
  Rng rng_b(11);
  std::vector<PartitionSample> partitions_a;
  partitions_a.push_back(FullPartition(0, 50));
  partitions_a.push_back(FullPartition(1000, 30));
  std::vector<PartitionSample> partitions_b = partitions_a;
  const auto via_status =
      MergePartitionSamplesOrStatus(std::move(partitions_a), 40, rng_a);
  ASSERT_TRUE(via_status.ok());
  EXPECT_EQ(*via_status, MergePartitionSamples(std::move(partitions_b), 40,
                                               rng_b));
}

TEST(MergePartitionSamplesOrStatusTest, UndersizedSampleIsDataLoss) {
  Rng rng(12);
  std::vector<PartitionSample> partitions;
  PartitionSample starved;
  starved.population = 100;
  starved.items = {1, 2, 3};
  partitions.push_back(std::move(starved));
  const auto result =
      MergePartitionSamplesOrStatus(std::move(partitions), 10, rng);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(result.status().message().find("have 3, need 10"),
            std::string::npos)
      << result.status().ToString();
}

TEST(MergePartitionSamplesOrStatusTest, OversizedTargetIsInvalidArgument) {
  Rng rng(13);
  std::vector<PartitionSample> partitions;
  partitions.push_back(FullPartition(0, 5));
  const auto result =
      MergePartitionSamplesOrStatus(std::move(partitions), 6, rng);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("target 6 > population 5"),
            std::string::npos)
      << result.status().ToString();
}

TEST(MergePartitionSamplesOrStatusTest, NegativeValuesAreInvalidArgument) {
  Rng rng(14);
  {
    std::vector<PartitionSample> partitions;
    partitions.push_back(FullPartition(0, 5));
    EXPECT_EQ(MergePartitionSamplesOrStatus(std::move(partitions), -1, rng)
                  .status()
                  .code(),
              StatusCode::kInvalidArgument);
  }
  {
    std::vector<PartitionSample> partitions;
    PartitionSample bad;
    bad.population = -7;
    partitions.push_back(std::move(bad));
    EXPECT_EQ(MergePartitionSamplesOrStatus(std::move(partitions), 0, rng)
                  .status()
                  .code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(MergePartitionSamplesOrStatusTest, SampleLargerThanPopulationIsDataLoss) {
  Rng rng(15);
  std::vector<PartitionSample> partitions;
  PartitionSample inflated;
  inflated.population = 2;
  inflated.items = {1, 2, 3, 4};
  partitions.push_back(std::move(inflated));
  const auto result =
      MergePartitionSamplesOrStatus(std::move(partitions), 2, rng);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(MergePartitionSamplesOrStatusTest, RngUntouchedOnValidationFailure) {
  // A rejected merge must not advance the rng: the caller can retry the
  // partition and still get the bit-identical fault-free merge.
  Rng used(16);
  Rng fresh(16);
  std::vector<PartitionSample> partitions;
  partitions.push_back(FullPartition(0, 5));
  EXPECT_FALSE(
      MergePartitionSamplesOrStatus(std::move(partitions), 6, used).ok());
  EXPECT_EQ(used.NextU64(), fresh.NextU64());
}

TEST(ValidatePartitionSampleTest, NamesThePartitionInDiagnostics) {
  PartitionSample starved;
  starved.population = 10;
  starved.items = {1};
  const Status status = ValidatePartitionSample(starved, 5, 7);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("partition 7"), std::string::npos)
      << status.ToString();
  EXPECT_TRUE(ValidatePartitionSample(FullPartition(0, 5), 5, 0).ok());
}

}  // namespace
}  // namespace ndv
