#include "table/column_sampling.h"

#include <vector>

#include <gtest/gtest.h>

namespace ndv {
namespace {

Int64Column MakeColumn() {
  // 10 rows: value 1 x6, value 2 x3, value 3 x1.
  return Int64Column({1, 1, 1, 1, 1, 1, 2, 2, 2, 3});
}

TEST(SummarizeRowsTest, BuildsCorrectProfile) {
  const Int64Column column = MakeColumn();
  const std::vector<int64_t> rows = {0, 1, 6, 9};  // values 1,1,2,3
  const SampleSummary summary = SummarizeRows(column, rows);
  EXPECT_EQ(summary.n(), 10);
  EXPECT_EQ(summary.r(), 4);
  EXPECT_EQ(summary.d(), 3);
  EXPECT_EQ(summary.f(1), 2);
  EXPECT_EQ(summary.f(2), 1);
}

TEST(SummarizeRowsTest, EmptyRowSet) {
  const Int64Column column = MakeColumn();
  const SampleSummary summary = SummarizeRows(column, {});
  EXPECT_EQ(summary.r(), 0);
  EXPECT_EQ(summary.d(), 0);
}

TEST(SampleColumnTest, WithoutReplacementExactSize) {
  const Int64Column column = MakeColumn();
  Rng rng(3);
  const SampleSummary summary =
      SampleColumn(column, 5, SamplingScheme::kWithoutReplacement, rng);
  EXPECT_EQ(summary.r(), 5);
  EXPECT_LE(summary.d(), 3);
  summary.Validate();
}

TEST(SampleColumnTest, WithReplacementExactSize) {
  const Int64Column column = MakeColumn();
  Rng rng(4);
  const SampleSummary summary =
      SampleColumn(column, 8, SamplingScheme::kWithReplacement, rng);
  EXPECT_EQ(summary.r(), 8);
  summary.Validate();
}

TEST(SampleColumnTest, BernoulliApproximateSize) {
  std::vector<int64_t> values(10000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int64_t>(i % 100);
  }
  const Int64Column column(values);
  Rng rng(5);
  const SampleSummary summary =
      SampleColumn(column, 1000, SamplingScheme::kBernoulli, rng);
  EXPECT_NEAR(static_cast<double>(summary.r()), 1000.0, 150.0);
  summary.Validate();
}

TEST(SampleColumnTest, FullSampleSeesEverything) {
  const Int64Column column = MakeColumn();
  Rng rng(6);
  const SampleSummary summary =
      SampleColumn(column, 10, SamplingScheme::kWithoutReplacement, rng);
  EXPECT_EQ(summary.d(), 3);
  EXPECT_EQ(summary.f(6), 1);
  EXPECT_EQ(summary.f(3), 1);
  EXPECT_EQ(summary.f(1), 1);
}

TEST(SampleColumnFractionTest, RoundsAndClamps) {
  const Int64Column column = MakeColumn();
  Rng rng(7);
  // 0.01% of 10 rows rounds to 0 -> clamped to 1.
  EXPECT_EQ(SampleColumnFraction(column, 0.0001, rng).r(), 1);
  EXPECT_EQ(SampleColumnFraction(column, 1.0, rng).r(), 10);
  EXPECT_EQ(SampleColumnFraction(column, 0.5, rng).r(), 5);
}

TEST(SampleColumnTest, DeterministicGivenRngState) {
  const Int64Column column = MakeColumn();
  Rng rng_a(8);
  Rng rng_b(8);
  const SampleSummary a =
      SampleColumn(column, 5, SamplingScheme::kWithoutReplacement, rng_a);
  const SampleSummary b =
      SampleColumn(column, 5, SamplingScheme::kWithoutReplacement, rng_b);
  EXPECT_EQ(a.freq, b.freq);
}

}  // namespace
}  // namespace ndv
