// IncrementalStats: the online ingest tentpole. The load-bearing claims —
// batch feeds are bit-identical to per-row feeds, partition-parallel
// builds are bit-identical at every thread count, and partition merges are
// bit-identical in every arrival order — are asserted on the raw state
// (registers, bitmap words, reservoir contents), not just on estimates.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/all_estimators.h"
#include "ingest/incremental_stats.h"
#include "table/column.h"

namespace ndv {
namespace {

std::vector<uint64_t> HashStream(uint64_t seed, int64_t count,
                                 uint64_t distinct) {
  Rng rng(seed);
  std::vector<uint64_t> hashes;
  hashes.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    hashes.push_back(Hash64(rng.NextBounded(distinct) + 1));
  }
  return hashes;
}

std::vector<std::pair<uint64_t, int64_t>> SortedCounts(
    const FlatHashCounter& counter) {
  std::vector<std::pair<uint64_t, int64_t>> entries;
  counter.ForEach([&](uint64_t key, int64_t count) {
    entries.emplace_back(key, count);
  });
  std::sort(entries.begin(), entries.end());
  return entries;
}

std::vector<uint64_t> SortedSample(const IncrementalStats& stats) {
  const auto sample = stats.reservoir().sample();
  std::vector<uint64_t> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

// Every piece of state equal: sketches bit-for-bit, sampled counts, and
// the reservoir as a multiset (same survivors regardless of feed shape).
void ExpectSameState(const IncrementalStats& a, const IncrementalStats& b) {
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(a.hll(), b.hll());
  EXPECT_EQ(a.linear_counting(), b.linear_counting());
  EXPECT_EQ(SortedCounts(a.sampled_counts()),
            SortedCounts(b.sampled_counts()));
  EXPECT_EQ(SortedSample(a), SortedSample(b));
}

TEST(IncrementalStatsTest, BatchFeedMatchesPerRowFeedBitForBit) {
  IncrementalStatsOptions options;
  options.reservoir_capacity = 256;
  options.seed = 99;
  const auto hashes = HashStream(1, 50000, 4000);

  IncrementalStats per_row(options);
  for (uint64_t hash : hashes) per_row.Add(hash);

  IncrementalStats batched(options);
  // Uneven batch sizes, including empty ones, so the skip-run resume logic
  // crosses batch boundaries in every alignment.
  size_t i = 0;
  const size_t batch_sizes[] = {1, 0, 7, 1000, 3, 0, 40000, 100000};
  size_t which = 0;
  while (i < hashes.size()) {
    const size_t take =
        std::min(batch_sizes[which % 8], hashes.size() - i);
    batched.AddHashes(
        std::span<const uint64_t>(hashes.data() + i, take));
    i += take;
    ++which;
  }
  // The reservoirs consumed identical streams through the same RNG: the
  // exact survivor sets match, not just their sizes.
  ExpectSameState(per_row, batched);
  EXPECT_EQ(per_row.reservoir().sample(), batched.reservoir().sample());
}

TEST(IncrementalStatsTest, AppendBatchMatchesAddHashes) {
  std::vector<int64_t> values;
  Rng rng(7);
  for (int i = 0; i < 30000; ++i) {
    values.push_back(static_cast<int64_t>(rng.NextBounded(2500)));
  }
  Int64Column column(values);

  IncrementalStatsOptions options;
  options.reservoir_capacity = 512;
  IncrementalStats from_column(options);
  from_column.AppendBatch(FullColumnSlice(column));

  std::vector<uint64_t> hashes(values.size());
  column.HashSlice(0, column.size(), hashes.data());
  IncrementalStats from_hashes(options);
  from_hashes.AddHashes(hashes);

  ExpectSameState(from_column, from_hashes);
  EXPECT_EQ(from_column.reservoir().sample(),
            from_hashes.reservoir().sample());
}

TEST(IncrementalStatsTest, SampledProfileWithZeroBitsIsExact) {
  IncrementalStatsOptions options;
  options.sample_bits = 0;  // keep every hash: the profile is exact
  IncrementalStats stats(options);
  const auto hashes = HashStream(2, 20000, 1000);
  stats.AddHashes(hashes);
  EXPECT_EQ(stats.SampleRate(), 1.0);

  FlatHashCounter expected;
  for (uint64_t hash : hashes) expected.Add(hash);
  EXPECT_EQ(SortedCounts(stats.sampled_counts()), SortedCounts(expected));
  // The exact profile's multiplicity classes sum back to the stream.
  const FrequencyProfile profile = stats.SampledProfile();
  EXPECT_EQ(profile.TotalCount(), 20000);
  EXPECT_EQ(profile.DistinctValues(), expected.size());
}

TEST(IncrementalStatsTest, SampledProfileKeepsExactlyTheThresholdedHashes) {
  IncrementalStatsOptions options;
  options.sample_bits = 3;  // keep hashes with the top 3 bits zero: 1/8
  IncrementalStats stats(options);
  const auto hashes = HashStream(3, 40000, 8000);
  stats.AddHashes(hashes);
  EXPECT_EQ(stats.SampleRate(), 0.125);

  const uint64_t threshold = std::numeric_limits<uint64_t>::max() >> 3;
  FlatHashCounter expected;
  for (uint64_t hash : hashes) {
    if (hash <= threshold) expected.Add(hash);
  }
  EXPECT_EQ(SortedCounts(stats.sampled_counts()), SortedCounts(expected));
  // Membership is a deterministic function of the value, so the sampled
  // profile's counts are true multiplicities, never partial ones.
  EXPECT_GT(expected.size(), 0);
}

TEST(IncrementalStatsTest, SketchEstimateTracksTrueCardinality) {
  IncrementalStatsOptions options;
  IncrementalStats stats(options);
  constexpr uint64_t kDistinct = 10000;
  for (uint64_t v = 1; v <= kDistinct; ++v) stats.Add(Hash64(v));
  // Default geometry keeps linear counting active at this cardinality;
  // its error at load 10000/2^16 is well under 2%.
  EXPECT_NEAR(stats.SketchEstimate(), static_cast<double>(kDistinct),
              0.02 * static_cast<double>(kDistinct));
}

TEST(IncrementalStatsTest, CombinedEstimateHandsOffToHllWhenLcSaturates) {
  // A tiny bitmap saturates immediately; the combined estimate must fall
  // back to HyperLogLog instead of returning m*ln(m) or infinity.
  HyperLogLog hll(12);
  LinearCounting lc(8);
  for (uint64_t v = 1; v <= 50000; ++v) {
    const uint64_t hash = Hash64(v);
    hll.Add(hash);
    lc.Add(hash);
  }
  EXPECT_EQ(lc.zero_bits(), 0);
  EXPECT_EQ(CombinedSketchEstimate(hll, lc), hll.Estimate());
  EXPECT_NEAR(CombinedSketchEstimate(hll, lc), 50000.0, 0.05 * 50000.0);
}

TEST(IncrementalStatsTest, SnapshotEstimateStaysInsideGeeBracket) {
  IncrementalStatsOptions options;
  options.reservoir_capacity = 1024;
  IncrementalStats stats(options);
  stats.AddHashes(HashStream(4, 60000, 3000));

  const auto estimator = MakeEstimatorByName("GEE");
  ASSERT_NE(estimator, nullptr);
  const ColumnStats snapshot = stats.Snapshot("value", *estimator);
  EXPECT_EQ(snapshot.table_rows, 60000);
  EXPECT_EQ(snapshot.sample_rows, 1024);
  EXPECT_LE(snapshot.lower, snapshot.estimate);
  EXPECT_GE(snapshot.upper, snapshot.estimate);
  EXPECT_EQ(snapshot.method, "GEE");
}

TEST(IncrementalStatsTest, DriftSemantics) {
  IncrementalStats stats(IncrementalStatsOptions{});
  // Never marked fresh: infinitely stale, infinite drift.
  EXPECT_TRUE(std::isinf(stats.DriftSinceFresh()));
  EXPECT_TRUE(stats.IsStale(0.5));

  stats.AddHashes(HashStream(5, 10000, 2000));
  stats.MarkFresh();
  EXPECT_EQ(stats.DriftSinceFresh(), 0.0);
  EXPECT_EQ(stats.rows_at_fresh(), 10000);
  EXPECT_FALSE(stats.IsStale(0.2));

  // Appending mostly-new values moves the sketch estimate away from the
  // baseline and trips the volume rule once past the fraction.
  stats.AddHashes(HashStream(6, 5000, 100000));
  EXPECT_GT(stats.DriftSinceFresh(), 0.0);
  EXPECT_TRUE(stats.IsStale(0.2));   // 50% appended > 20%
  EXPECT_FALSE(stats.IsStale(0.9));  // but not > 90%

  const auto bad = stats.IsStaleOrStatus(-1.0);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(PartitionedIngestTest, BitIdenticalAcrossThreadCounts) {
  std::vector<int64_t> values;
  Rng rng(11);
  for (int i = 0; i < 120000; ++i) {
    values.push_back(static_cast<int64_t>(rng.NextBounded(9000)));
  }
  Int64Column column(values);
  IncrementalStatsOptions options;
  options.reservoir_capacity = 300;
  options.seed = 17;
  constexpr int kPartitions = 7;

  const auto serial =
      PartitionedIngest(FullColumnSlice(column), options, kPartitions,
                        /*threads=*/1);
  const auto parallel =
      PartitionedIngest(FullColumnSlice(column), options, kPartitions,
                        /*threads=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (int p = 0; p < kPartitions; ++p) {
    SCOPED_TRACE(p);
    EXPECT_EQ(serial[static_cast<size_t>(p)].partition(), p);
    ExpectSameState(serial[static_cast<size_t>(p)],
                    parallel[static_cast<size_t>(p)]);
    EXPECT_EQ(serial[static_cast<size_t>(p)].reservoir().sample(),
              parallel[static_cast<size_t>(p)].reservoir().sample());
  }

  // And the two merged results are bit-identical end to end.
  std::vector<const IncrementalStats*> serial_parts;
  std::vector<const IncrementalStats*> parallel_parts;
  for (int p = 0; p < kPartitions; ++p) {
    serial_parts.push_back(&serial[static_cast<size_t>(p)]);
    parallel_parts.push_back(&parallel[static_cast<size_t>(p)]);
  }
  const auto merged_serial = MergeIncrementalStats(serial_parts, 5);
  const auto merged_parallel = MergeIncrementalStats(parallel_parts, 5);
  ASSERT_TRUE(merged_serial.ok());
  ASSERT_TRUE(merged_parallel.ok());
  EXPECT_EQ(merged_serial->sample, merged_parallel->sample);
  EXPECT_EQ(merged_serial->hll, merged_parallel->hll);
  EXPECT_EQ(merged_serial->linear_counting,
            merged_parallel->linear_counting);
}

TEST(MergeIncrementalStatsTest, AnyArrivalOrderMergesBitIdentically) {
  IncrementalStatsOptions options;
  options.reservoir_capacity = 200;
  std::vector<IncrementalStats> parts;
  for (int p = 0; p < 5; ++p) {
    IncrementalStatsOptions shard = options;
    shard.seed = static_cast<uint64_t>(p) + 31;
    parts.emplace_back(shard, p);
    parts.back().AddHashes(HashStream(static_cast<uint64_t>(p) + 50,
                                      8000 + 1000 * p, 3000));
  }

  const std::vector<std::vector<int>> orders = {
      {0, 1, 2, 3, 4}, {4, 3, 2, 1, 0}, {2, 0, 4, 1, 3}};
  std::vector<MergedIncrementalStats> merged;
  for (const auto& order : orders) {
    std::vector<const IncrementalStats*> views;
    for (const int p : order) {
      views.push_back(&parts[static_cast<size_t>(p)]);
    }
    auto result = MergeIncrementalStats(views, /*merge_seed=*/77);
    ASSERT_TRUE(result.ok());
    merged.push_back(*std::move(result));
  }
  for (size_t i = 1; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].rows, merged[0].rows);
    EXPECT_EQ(merged[i].hll, merged[0].hll);
    EXPECT_EQ(merged[i].linear_counting, merged[0].linear_counting);
    EXPECT_EQ(merged[i].sample, merged[0].sample);
    EXPECT_EQ(SortedCounts(merged[i].sampled_counts),
              SortedCounts(merged[0].sampled_counts));
  }
}

TEST(MergeIncrementalStatsTest, MergedSketchesEqualSingleStreamBuild) {
  IncrementalStatsOptions options;
  std::vector<IncrementalStats> parts;
  IncrementalStats single(options);
  for (int p = 0; p < 4; ++p) {
    IncrementalStatsOptions shard = options;
    shard.seed = static_cast<uint64_t>(p) + 7;
    parts.emplace_back(shard, p);
    const auto hashes =
        HashStream(static_cast<uint64_t>(p) + 90, 12000, 5000);
    parts[static_cast<size_t>(p)].AddHashes(hashes);
    single.AddHashes(hashes);
  }
  std::vector<const IncrementalStats*> views;
  for (const auto& part : parts) views.push_back(&part);
  const auto merged = MergeIncrementalStats(views, 3);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->rows, single.rows());
  // Sketches and the sampled profile are order-independent: the merge is
  // bit-identical to one tracker that saw the concatenated stream.
  EXPECT_EQ(merged->hll, single.hll());
  EXPECT_EQ(merged->linear_counting, single.linear_counting());
  EXPECT_EQ(SortedCounts(merged->sampled_counts),
            SortedCounts(single.sampled_counts()));
  // The merged reservoir is a fresh uniform draw, not the single-stream
  // one — but it has the same size and its summary brackets GEE.
  EXPECT_EQ(static_cast<int64_t>(merged->sample.size()),
            options.reservoir_capacity);
  const auto estimator = MakeEstimatorByName("GEE");
  const ColumnStats snapshot = merged->Snapshot("value", *estimator);
  EXPECT_LE(snapshot.lower, snapshot.estimate);
  EXPECT_GE(snapshot.upper, snapshot.estimate);
}

TEST(MergeIncrementalStatsTest, SmallPartitionsMergeToFullPopulation) {
  // Fewer total rows than capacity: the merged sample IS the union.
  IncrementalStatsOptions options;
  options.reservoir_capacity = 1000;
  IncrementalStats a(options, 0);
  IncrementalStats b(options, 1);
  a.AddHashes(HashStream(1, 30, 1000000));
  b.AddHashes(HashStream(2, 40, 1000000));
  const IncrementalStats* views[] = {&a, &b};
  const auto merged = MergeIncrementalStats(views, 9);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->rows, 70);
  EXPECT_EQ(static_cast<int64_t>(merged->sample.size()), 70);
}

TEST(MergeIncrementalStatsTest, ErrorPaths) {
  const auto empty =
      MergeIncrementalStats(std::span<const IncrementalStats* const>{}, 1);
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);

  IncrementalStatsOptions options;
  IncrementalStats a(options, 3);
  IncrementalStats b(options, 3);  // duplicate partition id
  a.Add(1);
  b.Add(2);
  const IncrementalStats* duplicate[] = {&a, &b};
  const auto dup = MergeIncrementalStats(duplicate, 1);
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);

  IncrementalStatsOptions other = options;
  other.hll_precision = 14;  // incompatible sketch geometry
  IncrementalStats c(other, 4);
  c.Add(3);
  const IncrementalStats* incompatible[] = {&a, &c};
  const auto bad = MergeIncrementalStats(incompatible, 1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ndv
