#include "distributed/distributed_analyze.h"

#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/zipf.h"
#include "table/table.h"

namespace ndv {
namespace {

// Shared fixture: one Zipf column, its exact distinct count, and the
// fault-free baseline result every fault schedule is compared against.
class DistributedAnalyzeTest : public ::testing::Test {
 protected:
  static constexpr int kPartitions = 8;
  static constexpr int64_t kRows = 80000;
  static constexpr int64_t kSampleRows = 4000;

  static void SetUpTestSuite() {
    ZipfColumnOptions options;
    options.rows = kRows;
    options.z = 1.0;
    options.dup_factor = 50;
    column_ = MakeZipfColumn(options).release();
    actual_distinct_ = ExactDistinctHashSet(*column_);
  }

  static void TearDownTestSuite() {
    delete column_;
    column_ = nullptr;
  }

  // Options wired to a per-call virtual clock so schedules run instantly.
  DistributedAnalyzeOptions BaseOptions() {
    DistributedAnalyzeOptions options;
    options.partitions = kPartitions;
    options.sample_rows = kSampleRows;
    options.max_attempts = 3;
    options.seed = 42;
    options.threads = 1;
    options.clock = &clock_;
    return options;
  }

  StatusOr<DistributedAnalyzeResult> Run(
      const DistributedAnalyzeOptions& options) {
    return DistributedAnalyze(*column_, "value", options);
  }

  DistributedAnalyzeResult Baseline() {
    auto result = Run(BaseOptions());
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *std::move(result);
  }

  static void ExpectIdenticalStats(const DistributedAnalyzeResult& a,
                                   const DistributedAnalyzeResult& b) {
    EXPECT_EQ(a.stats.estimate, b.stats.estimate);
    EXPECT_EQ(a.stats.lower, b.stats.lower);
    EXPECT_EQ(a.stats.upper, b.stats.upper);
    EXPECT_EQ(a.stats.sample_rows, b.stats.sample_rows);
    EXPECT_EQ(a.stats.sample_distinct, b.stats.sample_distinct);
    EXPECT_EQ(a.stats.coverage, b.stats.coverage);
    EXPECT_EQ(a.stats.degraded, b.stats.degraded);
    EXPECT_EQ(a.scanned_bounds.lower, b.scanned_bounds.lower);
    EXPECT_EQ(a.scanned_bounds.upper, b.scanned_bounds.upper);
    EXPECT_EQ(a.scanned_bounds.estimate, b.scanned_bounds.estimate);
  }

  VirtualClock clock_;

  static const Column* column_;
  static int64_t actual_distinct_;
};

const Column* DistributedAnalyzeTest::column_ = nullptr;
int64_t DistributedAnalyzeTest::actual_distinct_ = 0;

TEST_F(DistributedAnalyzeTest, CleanRunCoversTruth) {
  const DistributedAnalyzeResult result = Baseline();
  EXPECT_FALSE(result.degraded);
  EXPECT_EQ(result.coverage, 1.0);
  EXPECT_EQ(result.total_rows, kRows);
  EXPECT_EQ(result.scanned_rows, kRows);
  ASSERT_EQ(result.outcomes.size(), static_cast<size_t>(kPartitions));
  for (const PartitionOutcome& outcome : result.outcomes) {
    EXPECT_EQ(outcome.state, PartitionState::kScanned);
    EXPECT_EQ(outcome.attempts, 1);
    EXPECT_TRUE(outcome.status.ok());
  }
  EXPECT_LE(result.stats.lower, static_cast<double>(actual_distinct_));
  EXPECT_GE(result.stats.upper, static_cast<double>(actual_distinct_));
  EXPECT_EQ(result.stats.sample_rows, kSampleRows);
}

TEST_F(DistributedAnalyzeTest, EveryTransientFaultKindRecoversBitIdentically) {
  const DistributedAnalyzeResult baseline = Baseline();

  FaultPlan plan;
  plan.Set(0, FaultSpec::FailOnce());
  plan.Set(2, FaultSpec::Corrupt(1));
  plan.Set(4, FaultSpec::Truncate(2));
  plan.Set(6, FaultSpec::Slow(5000, 1));  // > attempt_timeout of 1000 ms

  DistributedAnalyzeOptions options = BaseOptions();
  options.faults = &plan;
  auto result = Run(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->degraded);
  ExpectIdenticalStats(*result, baseline);

  EXPECT_EQ(result->outcomes[0].state, PartitionState::kRecovered);
  EXPECT_EQ(result->outcomes[0].attempts, 2);
  EXPECT_EQ(result->outcomes[2].state, PartitionState::kRecovered);
  EXPECT_EQ(result->outcomes[2].attempts, 2);
  EXPECT_EQ(result->outcomes[4].state, PartitionState::kRecovered);
  EXPECT_EQ(result->outcomes[4].attempts, 3);
  EXPECT_EQ(result->outcomes[6].state, PartitionState::kRecovered);
  EXPECT_EQ(result->outcomes[6].attempts, 2);
  EXPECT_EQ(result->outcomes[1].state, PartitionState::kScanned);
}

TEST_F(DistributedAnalyzeTest, SlowUnderTimeoutSucceedsFirstTry) {
  FaultPlan plan;
  plan.Set(3, FaultSpec::Slow(500, FaultSpec::kAlways));  // < 1000 ms budget
  DistributedAnalyzeOptions options = BaseOptions();
  options.faults = &plan;
  auto result = Run(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->outcomes[3].state, PartitionState::kScanned);
  EXPECT_EQ(result->outcomes[3].attempts, 1);
  ExpectIdenticalStats(*result, Baseline());
}

TEST_F(DistributedAnalyzeTest, PermanentFailureDegradesWithExactWidening) {
  const DistributedAnalyzeResult baseline = Baseline();

  FaultPlan plan;
  plan.Set(1, FaultSpec::FailAlways());
  plan.Set(5, FaultSpec::Truncate(FaultSpec::kAlways));
  DistributedAnalyzeOptions options = BaseOptions();
  options.faults = &plan;
  auto result = Run(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_TRUE(result->degraded);
  EXPECT_TRUE(result->stats.degraded);
  const int64_t failed_rows =
      result->outcomes[1].rows + result->outcomes[5].rows;
  EXPECT_EQ(result->scanned_rows, kRows - failed_rows);
  EXPECT_EQ(result->stats.coverage,
            static_cast<double>(kRows - failed_rows) /
                static_cast<double>(kRows));
  // The widening is exactly the failed partitions' row count.
  EXPECT_EQ(result->stats.upper,
            result->scanned_bounds.upper + static_cast<double>(failed_rows));
  EXPECT_EQ(result->stats.lower, result->scanned_bounds.lower);
  // The degraded interval still brackets the true D.
  EXPECT_LE(result->stats.lower, static_cast<double>(actual_distinct_));
  EXPECT_GE(result->stats.upper, static_cast<double>(actual_distinct_));
  // Degradation must widen, never tighten, versus the complete run.
  EXPECT_GE(result->stats.upper, baseline.stats.upper);

  EXPECT_EQ(result->outcomes[1].state, PartitionState::kFailed);
  EXPECT_EQ(result->outcomes[1].status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(result->outcomes[1].attempts, 3);
  EXPECT_EQ(result->outcomes[5].state, PartitionState::kFailed);
  EXPECT_EQ(result->outcomes[5].status.code(), StatusCode::kDataLoss);
}

TEST_F(DistributedAnalyzeTest, AllPartitionsFailingIsATypedError) {
  FaultPlan plan;
  for (int p = 0; p < kPartitions; ++p) {
    plan.Set(p, FaultSpec::FailAlways());
  }
  DistributedAnalyzeOptions options = BaseOptions();
  options.faults = &plan;
  auto result = Run(options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(result.status().message().find("all 8 partitions failed"),
            std::string::npos)
      << result.status().ToString();
}

TEST_F(DistributedAnalyzeTest, PermanentFaultStatusCodesAreTyped) {
  struct Case {
    FaultSpec spec;
    StatusCode expected;
  };
  const std::vector<Case> cases = {
      {FaultSpec::FailAlways(), StatusCode::kUnavailable},
      {FaultSpec::Truncate(FaultSpec::kAlways), StatusCode::kDataLoss},
      {FaultSpec::Corrupt(FaultSpec::kAlways), StatusCode::kDataLoss},
      {FaultSpec::Slow(5000, FaultSpec::kAlways),
       StatusCode::kDeadlineExceeded},
  };
  for (const Case& test_case : cases) {
    FaultPlan plan;
    plan.Set(0, test_case.spec);
    DistributedAnalyzeOptions options = BaseOptions();
    options.faults = &plan;
    auto result = Run(options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->outcomes[0].state, PartitionState::kFailed);
    EXPECT_EQ(result->outcomes[0].status.code(), test_case.expected)
        << result->outcomes[0].status.ToString();
  }
}

TEST_F(DistributedAnalyzeTest, BackoffFollowsExponentialScheduleOnVirtualClock) {
  FaultPlan plan;
  plan.Set(0, FaultSpec::FailAlways());
  DistributedAnalyzeOptions options = BaseOptions();
  options.partitions = 1;
  options.faults = &plan;
  options.max_attempts = 4;
  options.backoff_base_ms = 100;
  options.backoff_max_ms = 300;
  const int64_t start = clock_.NowMillis();
  auto result = Run(options);
  EXPECT_FALSE(result.ok());
  // 3 retries: 100 + 200 + min(400, 300) = 600 ms of virtual backoff.
  EXPECT_EQ(clock_.NowMillis() - start, 600);
}

TEST_F(DistributedAnalyzeTest, CoordinatorDeadlineCutsOffPendingPartitions) {
  // threads = 1 runs partitions in order; partitions 0..2 scan cleanly in
  // zero virtual time, partition 3 burns the whole budget in backoff, and
  // partitions 4.. are cut off before their first attempt.
  FaultPlan plan;
  plan.Set(3, FaultSpec::FailAlways());
  DistributedAnalyzeOptions options = BaseOptions();
  options.faults = &plan;
  options.max_attempts = 10;
  options.backoff_base_ms = 100;
  options.backoff_max_ms = 10000;
  options.deadline_ms = 500;
  auto result = Run(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->degraded);
  for (int p = 0; p < 3; ++p) {
    EXPECT_EQ(result->outcomes[static_cast<size_t>(p)].state,
              PartitionState::kScanned)
        << "partition " << p;
  }
  EXPECT_EQ(result->outcomes[3].state, PartitionState::kFailed);
  int cut_off_before_first_attempt = 0;
  for (size_t p = 4; p < result->outcomes.size(); ++p) {
    const PartitionOutcome& outcome = result->outcomes[p];
    if (outcome.state == PartitionState::kFailed &&
        outcome.status.code() == StatusCode::kDeadlineExceeded &&
        outcome.attempts == 0) {
      ++cut_off_before_first_attempt;
    }
  }
  EXPECT_EQ(cut_off_before_first_attempt,
            static_cast<int>(result->outcomes.size()) - 4);
  // Whatever survived still yields a valid covering interval.
  EXPECT_LE(result->stats.lower, static_cast<double>(actual_distinct_));
  EXPECT_GE(result->stats.upper, static_cast<double>(actual_distinct_));
}

TEST_F(DistributedAnalyzeTest, DeadlineBeforeAnyAttemptIsATypedError) {
  VirtualClock late_clock(1000);
  DistributedAnalyzeOptions options = BaseOptions();
  options.clock = &late_clock;
  options.deadline_ms = 1;
  FaultPlan plan;
  plan.Set(0, FaultSpec::Slow(5, FaultSpec::kAlways));
  options.faults = &plan;
  options.threads = 1;
  // Partition 0's slow attempt pushes the clock past the deadline before
  // any other partition starts; with a 1 ms budget even partition 0's
  // retry window is gone. All partitions that never ran report
  // DeadlineExceeded.
  auto result = Run(options);
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  } else {
    EXPECT_TRUE(result->degraded);
  }
}

TEST_F(DistributedAnalyzeTest, InvalidOptionsAreTypedErrors) {
  {
    DistributedAnalyzeOptions options = BaseOptions();
    options.partitions = 0;
    EXPECT_EQ(Run(options).status().code(), StatusCode::kInvalidArgument);
  }
  {
    DistributedAnalyzeOptions options = BaseOptions();
    options.sample_rows = 0;
    EXPECT_EQ(Run(options).status().code(), StatusCode::kInvalidArgument);
  }
  {
    DistributedAnalyzeOptions options = BaseOptions();
    options.max_attempts = 0;
    EXPECT_EQ(Run(options).status().code(), StatusCode::kInvalidArgument);
  }
  {
    DistributedAnalyzeOptions options = BaseOptions();
    options.estimator = "no-such-estimator";
    EXPECT_EQ(Run(options).status().code(), StatusCode::kInvalidArgument);
  }
  {
    Int64Column empty((std::vector<int64_t>()));
    DistributedAnalyzeOptions options = BaseOptions();
    EXPECT_EQ(DistributedAnalyze(empty, "empty", options).status().code(),
              StatusCode::kInvalidArgument);
  }
}

// The acceptance-criteria sweep: every seeded fault schedule must end in
// retry-success (bit-identical to fault-free), typed degradation (interval
// widened by exactly the failed partitions' rows, coverage < 1), or a
// typed error — never a crash.
TEST_F(DistributedAnalyzeTest, FaultMatrixSweepClassifiesEveryOutcome) {
  const DistributedAnalyzeResult baseline = Baseline();

  for (uint64_t seed = 0; seed < 50; ++seed) {
    const FaultPlan plan = FaultPlan::RandomSweep(seed, kPartitions);
    DistributedAnalyzeOptions options = BaseOptions();
    options.faults = &plan;
    SCOPED_TRACE("seed " + std::to_string(seed) + ": " + plan.ToString());

    // Predict which partitions fail permanently: a fault still active on
    // the last attempt, except slow faults whose delay fits the 1000 ms
    // attempt budget (those scans succeed, just late).
    std::set<int> expect_failed;
    for (int p = 0; p < kPartitions; ++p) {
      const FaultSpec last = plan.ActionFor(p, options.max_attempts - 1);
      if (last.kind == FaultKind::kNone) continue;
      if (last.kind == FaultKind::kSlow &&
          last.delay_ms < options.attempt_timeout_ms) {
        continue;
      }
      expect_failed.insert(p);
    }

    auto result = Run(options);
    if (expect_failed.size() == static_cast<size_t>(kPartitions)) {
      ASSERT_FALSE(result.ok());
      EXPECT_NE(result.status().code(), StatusCode::kOk);
      continue;
    }
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    std::set<int> failed;
    int64_t failed_rows = 0;
    for (const PartitionOutcome& outcome : result->outcomes) {
      if (outcome.state == PartitionState::kFailed) {
        failed.insert(outcome.partition);
        failed_rows += outcome.rows;
        EXPECT_FALSE(outcome.status.ok());
      }
    }
    EXPECT_EQ(failed, expect_failed);

    if (failed.empty()) {
      // Retry-success: bit-identical to the fault-free run.
      EXPECT_FALSE(result->degraded);
      ExpectIdenticalStats(*result, baseline);
    } else {
      // Typed degradation: exact widening, coverage < 1, still covering.
      EXPECT_TRUE(result->degraded);
      EXPECT_LT(result->coverage, 1.0);
      EXPECT_EQ(result->coverage,
                static_cast<double>(kRows - failed_rows) /
                    static_cast<double>(kRows));
      EXPECT_EQ(result->stats.upper,
                result->scanned_bounds.upper +
                    static_cast<double>(failed_rows));
      EXPECT_LE(result->stats.lower, static_cast<double>(actual_distinct_));
      EXPECT_GE(result->stats.upper, static_cast<double>(actual_distinct_));
    }
  }
}

// Outcomes must not depend on the thread count (no deadline is set, so
// nothing in the run is time-sensitive).
TEST_F(DistributedAnalyzeTest, SweepOutcomesAreThreadCountIndependent) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const FaultPlan plan = FaultPlan::RandomSweep(seed, kPartitions);
    SCOPED_TRACE("seed " + std::to_string(seed) + ": " + plan.ToString());

    DistributedAnalyzeOptions options = BaseOptions();
    options.faults = &plan;
    options.threads = 1;
    auto serial = Run(options);

    VirtualClock parallel_clock;
    options.clock = &parallel_clock;
    options.threads = 4;
    auto parallel = Run(options);

    ASSERT_EQ(serial.ok(), parallel.ok());
    if (!serial.ok()) {
      EXPECT_EQ(serial.status().code(), parallel.status().code());
      continue;
    }
    ExpectIdenticalStats(*serial, *parallel);
    for (int p = 0; p < kPartitions; ++p) {
      EXPECT_EQ(serial->outcomes[static_cast<size_t>(p)].state,
                parallel->outcomes[static_cast<size_t>(p)].state);
      EXPECT_EQ(serial->outcomes[static_cast<size_t>(p)].attempts,
                parallel->outcomes[static_cast<size_t>(p)].attempts);
    }
  }
}

// Degraded statistics survive the catalog's serialization round trip.
TEST_F(DistributedAnalyzeTest, DegradedStatsRoundTripThroughCatalog) {
  FaultPlan plan;
  plan.Set(0, FaultSpec::FailAlways());
  DistributedAnalyzeOptions options = BaseOptions();
  options.faults = &plan;
  auto result = Run(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  StatsCatalog catalog;
  catalog.Put(result->stats);
  auto parsed = StatsCatalog::DeserializeOrStatus(catalog.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::optional<ColumnStats> stats = parsed->Find("value");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->coverage, result->stats.coverage);
  EXPECT_TRUE(stats->degraded);
  EXPECT_EQ(stats->upper, result->stats.upper);
}

}  // namespace
}  // namespace ndv
