#include "core/lower_bound.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/all_estimators.h"
#include "core/gee.h"
#include "table/table.h"

namespace ndv {
namespace {

TEST(TheoremOneBoundTest, PaperSectionThreeNumbers) {
  // "Setting gamma = 0.5 in our lower bound ... the error is at least 1.18
  // with probability 1/2" at a 20% sampling fraction.
  const double bound = TheoremOneErrorBound(1000000, 200000, 0.5);
  EXPECT_NEAR(bound, 1.18, 0.01);
}

TEST(TheoremOneBoundTest, FormulaMatchesDefinition) {
  const int64_t n = 10000, r = 100;
  const double gamma = 0.3;
  const double expected = std::sqrt(static_cast<double>(n - r) /
                                    (2.0 * r) * std::log(1.0 / gamma));
  EXPECT_DOUBLE_EQ(TheoremOneErrorBound(n, r, gamma), expected);
}

TEST(TheoremOneBoundTest, GrowsAsSampleShrinks) {
  EXPECT_GT(TheoremOneErrorBound(100000, 100, 0.5),
            TheoremOneErrorBound(100000, 10000, 0.5));
}

TEST(TheoremOneBoundTest, RejectsGammaBelowExpMinusR) {
  EXPECT_DEATH(TheoremOneErrorBound(100, 2, 1e-3), "gamma");
}

TEST(TheoremOneKTest, KIsSquaredBound) {
  const int64_t k = TheoremOneK(10000, 100, 0.5);
  const double bound = TheoremOneErrorBound(10000, 100, 0.5);
  EXPECT_EQ(k, static_cast<int64_t>(std::floor(bound * bound)));
  EXPECT_GT(k, 0);
}

TEST(ScenarioTest, ScenarioAHasOneDistinctValue) {
  const auto column = MakeScenarioA(1000);
  EXPECT_EQ(column->size(), 1000);
  EXPECT_EQ(ExactDistinctHashSet(*column), 1);
}

TEST(ScenarioTest, ScenarioBHasKPlusOneDistinctValues) {
  Rng rng(5);
  const auto column = MakeScenarioB(1000, 37, rng);
  EXPECT_EQ(column->size(), 1000);
  EXPECT_EQ(ExactDistinctHashSet(*column), 38);
}

TEST(ScenarioTest, ScenarioBZeroSingletonsEqualsScenarioA) {
  Rng rng(6);
  const auto column = MakeScenarioB(100, 0, rng);
  EXPECT_EQ(ExactDistinctHashSet(*column), 1);
}

TEST(AllHeavyProbabilityTest, TelescopesForSingleSingleton) {
  // k=1: P(sample misses the one singleton) = (n-r)/n.
  EXPECT_NEAR(ScenarioBAllHeavyProbability(1000, 1, 200), 0.8, 1e-12);
}

TEST(AllHeavyProbabilityTest, MeetsTheoremGammaForChosenK) {
  // With k chosen per the theorem, Prob[E] >= gamma.
  const int64_t n = 100000, r = 1000;
  const double gamma = 0.5;
  const int64_t k = TheoremOneK(n, r, gamma);
  EXPECT_GE(ScenarioBAllHeavyProbability(n, k, r), gamma);
}

TEST(AllHeavyProbabilityTest, Monotonicity) {
  // More singletons or a bigger sample -> smaller probability of seeing
  // only the heavy value.
  EXPECT_GT(ScenarioBAllHeavyProbability(1000, 5, 100),
            ScenarioBAllHeavyProbability(1000, 20, 100));
  EXPECT_GT(ScenarioBAllHeavyProbability(1000, 5, 100),
            ScenarioBAllHeavyProbability(1000, 5, 400));
}

TEST(AdversarialGameTest, EveryEstimatorErrsOnSomeScenario) {
  // Theorem 1 empirically: each estimator must hit error >= sqrt(k) on A
  // or B in a healthy fraction of trials (the theorem promises >= gamma,
  // minus simulation noise).
  const int64_t n = 20000, r = 200;
  const double gamma = 0.5;
  for (const auto& estimator : MakePaperComparisonEstimators()) {
    const AdversarialGameResult result =
        PlayAdversarialGame(*estimator, n, r, gamma, 40, 77);
    EXPECT_GE(result.fraction_at_least_bound, 0.35) << estimator->name();
    EXPECT_GT(result.bound, 1.0);
    EXPECT_EQ(result.trials, 40);
  }
}

TEST(AdversarialGameTest, GeeRespectsItsOwnUpperBoundInTheGame) {
  // GEE's error in the adversarial game stays within the Theorem 2
  // guarantee e*sqrt(n/r) on both scenarios.
  const int64_t n = 20000, r = 200;
  const AdversarialGameResult result =
      PlayAdversarialGame(Gee(), n, r, 0.5, 40, 123);
  const double guarantee = GeeExpectedErrorBound(n, r);
  EXPECT_LE(result.mean_error_a, guarantee);
  EXPECT_LE(result.mean_error_b, guarantee);
}

}  // namespace
}  // namespace ndv
