#include "core/probe_strategy.h"

#include <set>

#include <gtest/gtest.h>

#include "core/all_estimators.h"
#include "core/gee.h"
#include "core/lower_bound.h"

namespace ndv {
namespace {

// Drives a strategy for r probes over a column and returns the probed rows.
std::vector<int64_t> Drive(ProbeStrategy& strategy, const Column& column,
                           int64_t r, uint64_t seed) {
  Rng rng(seed);
  strategy.Reset();
  std::vector<int64_t> rows;
  std::vector<uint64_t> hashes;
  for (int64_t i = 0; i < r; ++i) {
    const int64_t row = strategy.NextRow(rows, hashes, column.size(), rng);
    rows.push_back(row);
    hashes.push_back(column.HashAt(row));
  }
  return rows;
}

TEST(ProbeStrategiesTest, NeverRepeatRowsAndStayInRange) {
  const auto column = MakeScenarioA(500);
  for (auto& strategy : MakeAllProbeStrategies()) {
    const auto rows = Drive(*strategy, *column, 200, 3);
    std::set<int64_t> unique(rows.begin(), rows.end());
    EXPECT_EQ(unique.size(), rows.size()) << strategy->name();
    for (int64_t row : rows) {
      EXPECT_GE(row, 0) << strategy->name();
      EXPECT_LT(row, 500) << strategy->name();
    }
  }
}

TEST(ProbeStrategiesTest, ResetAllowsReplay) {
  const auto column = MakeScenarioA(100);
  for (auto& strategy : MakeAllProbeStrategies()) {
    const auto first = Drive(*strategy, *column, 50, 7);
    const auto second = Drive(*strategy, *column, 50, 7);
    // Same seed + Reset: identical probe sequence.
    EXPECT_EQ(first, second) << strategy->name();
  }
}

TEST(ProbeStrategiesTest, CanExhaustTheTable) {
  const auto column = MakeScenarioA(64);
  for (auto& strategy : MakeAllProbeStrategies()) {
    const auto rows = Drive(*strategy, *column, 64, 9);
    std::set<int64_t> unique(rows.begin(), rows.end());
    EXPECT_EQ(unique.size(), 64u) << strategy->name();
  }
}

TEST(NoveltyHunterTest, ExploresNeighborhoodAfterDiscovery) {
  // A column where row 250 holds a unique value: once the hunter hits it,
  // the next probe must be adjacent.
  std::vector<int64_t> values(500, 1);
  values[250] = 2;
  const Int64Column column(values);
  NoveltyHunterProbe hunter;
  Rng rng(11);
  std::vector<int64_t> rows;
  std::vector<uint64_t> hashes;
  // Probe until we hit row 250 (force it as the first probe by seeding the
  // history manually).
  rows.push_back(250);
  hashes.push_back(column.HashAt(250));
  // Also record an earlier boring probe so "novel" has context.
  rows.insert(rows.begin(), 10);
  hashes.insert(hashes.begin(), column.HashAt(10));
  const int64_t next = hunter.NextRow(rows, hashes, column.size(), rng);
  EXPECT_TRUE(next == 249 || next == 251) << next;
}

TEST(PlayProbeGameTest, NoStrategyBeatsTheoremOne) {
  // n=100K, r=1K (1%), gamma=0.5: every strategy, armed with the paper's
  // best estimator, must err >= sqrt(k) in at least ~gamma of the rounds.
  const int64_t n = 100000, r = 1000;
  const Gee gee;
  for (auto& strategy : MakeAllProbeStrategies()) {
    const ProbeGameResult result =
        PlayProbeGame(*strategy, gee, n, r, 0.5, 20, 77);
    EXPECT_GE(result.fraction_at_least_bound, 0.4) << strategy->name();
    EXPECT_GT(result.bound, 1.0);
  }
}

TEST(PlayProbeGameTest, AgreesWithObliviousGameForUniformStrategy) {
  // The uniform strategy is exactly the oblivious random-sampling game, so
  // its hit fraction should be in the same range as PlayAdversarialGame.
  const int64_t n = 50000, r = 500;
  const Gee gee;
  UniformProbe uniform;
  const ProbeGameResult probe_result =
      PlayProbeGame(uniform, gee, n, r, 0.5, 30, 5);
  const AdversarialGameResult sample_result =
      PlayAdversarialGame(gee, n, r, 0.5, 30, 5);
  EXPECT_NEAR(probe_result.fraction_at_least_bound,
              sample_result.fraction_at_least_bound, 0.3);
}

}  // namespace
}  // namespace ndv
