#include "catalog/incremental_stats.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/all_estimators.h"
#include "datagen/zipf.h"
#include "table/table.h"

namespace ndv {
namespace {

TEST(IncrementalTrackerTest, SummaryBelowCapacityIsExact) {
  IncrementalColumnTracker tracker(1000);
  for (uint64_t v = 0; v < 100; ++v) {
    tracker.Insert(Hash64(v % 25));  // 25 distinct values, 4 copies each
  }
  EXPECT_EQ(tracker.rows(), 100);
  const SampleSummary summary = tracker.Summary();
  EXPECT_EQ(summary.r(), 100);  // Reservoir not yet full: full visibility.
  EXPECT_EQ(summary.d(), 25);
  EXPECT_EQ(summary.f(4), 25);
}

TEST(IncrementalTrackerTest, CapacityBoundsSample) {
  IncrementalColumnTracker tracker(64);
  for (uint64_t v = 0; v < 10000; ++v) tracker.Insert(Hash64(v));
  EXPECT_EQ(tracker.rows(), 10000);
  const SampleSummary summary = tracker.Summary();
  EXPECT_EQ(summary.r(), 64);
  EXPECT_EQ(summary.n(), 10000);
}

TEST(IncrementalTrackerTest, EstimateTracksGrowingColumn) {
  // Stream a Zipf column through the tracker; the snapshot estimate should
  // land within a reasonable factor of the true running distinct count.
  ZipfColumnOptions options;
  options.rows = 200000;
  options.z = 0.0;
  options.dup_factor = 50;  // D = 4000
  const auto column = MakeZipfColumn(options);
  IncrementalColumnTracker tracker(8000, 7);
  for (int64_t row = 0; row < column->size(); ++row) {
    tracker.Insert(column->HashAt(row));
  }
  const auto estimator = MakeEstimatorByName("AE");
  const ColumnStats stats = tracker.Snapshot("col", *estimator);
  EXPECT_EQ(stats.table_rows, 200000);
  EXPECT_EQ(stats.sample_rows, 8000);
  EXPECT_GT(stats.estimate, 4000.0 / 2.0);
  EXPECT_LT(stats.estimate, 4000.0 * 2.0);
  EXPECT_LE(stats.lower, 4000.0);
  EXPECT_GE(stats.upper, 4000.0);
  EXPECT_EQ(stats.method, "AE");
}

TEST(IncrementalTrackerTest, StalenessLifecycle) {
  IncrementalColumnTracker tracker(100);
  EXPECT_TRUE(tracker.IsStale());  // Never snapshot.
  for (uint64_t v = 0; v < 1000; ++v) tracker.Insert(Hash64(v));
  const auto estimator = MakeEstimatorByName("GEE");
  tracker.Snapshot("col", *estimator);
  EXPECT_FALSE(tracker.IsStale(0.2));
  // +10% rows: still fresh at a 20% threshold, stale at 5%.
  for (uint64_t v = 0; v < 100; ++v) tracker.Insert(Hash64(v));
  EXPECT_FALSE(tracker.IsStale(0.2));
  EXPECT_TRUE(tracker.IsStale(0.05));
  // +30% total: stale at 20% too.
  for (uint64_t v = 0; v < 200; ++v) tracker.Insert(Hash64(v + 5000));
  EXPECT_TRUE(tracker.IsStale(0.2));
  // Re-snapshot refreshes.
  tracker.Snapshot("col", *estimator);
  EXPECT_FALSE(tracker.IsStale(0.2));
  EXPECT_EQ(tracker.rows_at_last_snapshot(), 1300);
}

TEST(IncrementalTrackerTest, EmptyTrackerRefusesSummary) {
  IncrementalColumnTracker tracker(10);
  EXPECT_DEATH(tracker.Summary(), "no rows");
}

}  // namespace
}  // namespace ndv
