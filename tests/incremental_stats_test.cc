#include "catalog/incremental_stats.h"

#include <limits>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/all_estimators.h"
#include "datagen/zipf.h"
#include "table/table.h"

namespace ndv {
namespace {

TEST(IncrementalTrackerTest, SummaryBelowCapacityIsExact) {
  IncrementalColumnTracker tracker(1000);
  for (uint64_t v = 0; v < 100; ++v) {
    tracker.Insert(Hash64(v % 25));  // 25 distinct values, 4 copies each
  }
  EXPECT_EQ(tracker.rows(), 100);
  const SampleSummary summary = tracker.Summary();
  EXPECT_EQ(summary.r(), 100);  // Reservoir not yet full: full visibility.
  EXPECT_EQ(summary.d(), 25);
  EXPECT_EQ(summary.f(4), 25);
}

TEST(IncrementalTrackerTest, CapacityBoundsSample) {
  IncrementalColumnTracker tracker(64);
  for (uint64_t v = 0; v < 10000; ++v) tracker.Insert(Hash64(v));
  EXPECT_EQ(tracker.rows(), 10000);
  const SampleSummary summary = tracker.Summary();
  EXPECT_EQ(summary.r(), 64);
  EXPECT_EQ(summary.n(), 10000);
}

TEST(IncrementalTrackerTest, EstimateTracksGrowingColumn) {
  // Stream a Zipf column through the tracker; the snapshot estimate should
  // land within a reasonable factor of the true running distinct count.
  ZipfColumnOptions options;
  options.rows = 200000;
  options.z = 0.0;
  options.dup_factor = 50;  // D = 4000
  const auto column = MakeZipfColumn(options);
  IncrementalColumnTracker tracker(8000, 7);
  for (int64_t row = 0; row < column->size(); ++row) {
    tracker.Insert(column->HashAt(row));
  }
  const auto estimator = MakeEstimatorByName("AE");
  const ColumnStats stats = tracker.Snapshot("col", *estimator);
  EXPECT_EQ(stats.table_rows, 200000);
  EXPECT_EQ(stats.sample_rows, 8000);
  EXPECT_GT(stats.estimate, 4000.0 / 2.0);
  EXPECT_LT(stats.estimate, 4000.0 * 2.0);
  EXPECT_LE(stats.lower, 4000.0);
  EXPECT_GE(stats.upper, 4000.0);
  EXPECT_EQ(stats.method, "AE");
}

TEST(IncrementalTrackerTest, StalenessLifecycle) {
  IncrementalColumnTracker tracker(100);
  EXPECT_TRUE(tracker.IsStale());  // Never snapshot.
  for (uint64_t v = 0; v < 1000; ++v) tracker.Insert(Hash64(v));
  const auto estimator = MakeEstimatorByName("GEE");
  tracker.Snapshot("col", *estimator);
  EXPECT_FALSE(tracker.IsStale(0.2));
  // +10% rows: still fresh at a 20% threshold, stale at 5%.
  for (uint64_t v = 0; v < 100; ++v) tracker.Insert(Hash64(v));
  EXPECT_FALSE(tracker.IsStale(0.2));
  EXPECT_TRUE(tracker.IsStale(0.05));
  // +30% total: stale at 20% too.
  for (uint64_t v = 0; v < 200; ++v) tracker.Insert(Hash64(v + 5000));
  EXPECT_TRUE(tracker.IsStale(0.2));
  // Re-snapshot refreshes.
  tracker.Snapshot("col", *estimator);
  EXPECT_FALSE(tracker.IsStale(0.2));
  EXPECT_EQ(tracker.rows_at_last_snapshot(), 1300);
}

// Regression: IsStale used to NDV_CHECK-abort on changed_fraction <= 0.
// A bad configuration knob must not crash the serving path; it clamps to 0
// ("any insert is stale") instead.
TEST(IncrementalTrackerTest, IsStaleClampsBadThresholdInsteadOfAborting) {
  IncrementalColumnTracker tracker(100);
  for (uint64_t v = 0; v < 100; ++v) tracker.Insert(Hash64(v));
  const auto estimator = MakeEstimatorByName("GEE");
  tracker.Snapshot("col", *estimator);
  // Clamped to 0: no inserts since the snapshot, so still fresh.
  EXPECT_FALSE(tracker.IsStale(0.0));
  EXPECT_FALSE(tracker.IsStale(-1.0));
  EXPECT_FALSE(tracker.IsStale(std::numeric_limits<double>::quiet_NaN()));
  // One insert past the snapshot flips all of them to stale.
  tracker.Insert(Hash64(12345));
  EXPECT_TRUE(tracker.IsStale(0.0));
  EXPECT_TRUE(tracker.IsStale(-1.0));
  EXPECT_TRUE(tracker.IsStale(std::numeric_limits<double>::quiet_NaN()));
  // A sane threshold still tolerates the 1% drift.
  EXPECT_FALSE(tracker.IsStale(0.2));
}

TEST(IncrementalTrackerTest, IsStaleOrStatusRejectsBadThreshold) {
  IncrementalColumnTracker tracker(100);
  for (uint64_t v = 0; v < 100; ++v) tracker.Insert(Hash64(v));
  const auto estimator = MakeEstimatorByName("GEE");
  tracker.Snapshot("col", *estimator);

  for (const double bad : {0.0, -0.5,
                           std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity()}) {
    const auto result = tracker.IsStaleOrStatus(bad);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  const auto fresh = tracker.IsStaleOrStatus(0.2);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(*fresh);
  for (uint64_t v = 0; v < 50; ++v) tracker.Insert(Hash64(v + 9000));
  const auto stale = tracker.IsStaleOrStatus(0.2);
  ASSERT_TRUE(stale.ok());
  EXPECT_TRUE(*stale);
}

TEST(IncrementalTrackerTest, StalenessFromEmptySnapshotBaseline) {
  IncrementalColumnTracker tracker(100);
  // Never-snapshot tracker is always stale, at any threshold.
  EXPECT_TRUE(tracker.IsStale());
  EXPECT_TRUE(tracker.IsStale(1000.0));
  // MarkFresh at zero rows: baseline is an empty table, so freshness holds
  // only until the first insert (no divide-by-zero on the empty baseline).
  tracker.MarkFresh();
  EXPECT_EQ(tracker.rows_at_last_snapshot(), 0);
  EXPECT_FALSE(tracker.IsStale(0.2));
  tracker.Insert(Hash64(1));
  EXPECT_TRUE(tracker.IsStale(0.2));
  EXPECT_TRUE(tracker.IsStale(1e9));  // Any growth over 0 rows is stale.
}

TEST(IncrementalTrackerTest, MarkFreshResetsDriftBaseline) {
  IncrementalColumnTracker tracker(100);
  for (uint64_t v = 0; v < 1000; ++v) tracker.Insert(Hash64(v));
  tracker.MarkFresh();
  EXPECT_EQ(tracker.rows_at_last_snapshot(), 1000);
  EXPECT_FALSE(tracker.IsStale(0.2));
  for (uint64_t v = 0; v < 300; ++v) tracker.Insert(Hash64(v + 4000));
  EXPECT_TRUE(tracker.IsStale(0.2));
  tracker.MarkFresh();
  EXPECT_FALSE(tracker.IsStale(0.2));
}

TEST(IncrementalTrackerTest, EmptyTrackerRefusesSummary) {
  IncrementalColumnTracker tracker(10);
  EXPECT_DEATH(tracker.Summary(), "no rows");
}

}  // namespace
}  // namespace ndv
