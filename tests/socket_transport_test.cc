// Partial-I/O hardening tests for the socket framing loops, driven
// through the internal scripted seams (serve/socket_transport.h): short
// writes reassemble, EINTR is retried on both directions, persistent
// errors surface as typed Status values, and an EOF is classified by
// whether it tore a frame in half.

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/socket_transport.h"

namespace ndv {
namespace {

using internal::ReadIntoBuffer;
using internal::SendAllBytes;

// A scripted writer: each call accepts at most the next quota from
// `script` (negative quota = return that errno once). Records everything
// accepted so tests can assert the reassembled stream.
class ScriptedWriter {
 public:
  explicit ScriptedWriter(std::vector<ssize_t> script)
      : script_(std::move(script)) {}

  ssize_t operator()(const char* data, size_t size) {
    const ssize_t quota = next_ < script_.size()
                              ? script_[next_++]
                              : static_cast<ssize_t>(size);
    if (quota < 0) {
      errno = static_cast<int>(-quota);
      return -1;
    }
    const size_t take =
        std::min(size, static_cast<size_t>(quota));
    accepted_.append(data, take);
    return static_cast<ssize_t>(take);
  }

  const std::string& accepted() const { return accepted_; }

 private:
  std::vector<ssize_t> script_;
  size_t next_ = 0;
  std::string accepted_;
};

TEST(SendAllBytesTest, ShortWritesReassembleTheFullPayload) {
  ScriptedWriter writer({1, 3, 2, 5});
  const std::string payload = "frame-payload-bytes";
  const Status sent = SendAllBytes(
      payload, [&writer](const char* data, size_t size) {
        return writer(data, size);
      });
  ASSERT_TRUE(sent.ok()) << sent.ToString();
  EXPECT_EQ(writer.accepted(), payload);
}

TEST(SendAllBytesTest, EintrIsRetriedUntilProgressResumes) {
  ScriptedWriter writer({2, -EINTR, -EINTR, 4});
  const std::string payload = "interrupted-send";
  const Status sent = SendAllBytes(
      payload, [&writer](const char* data, size_t size) {
        return writer(data, size);
      });
  ASSERT_TRUE(sent.ok()) << sent.ToString();
  EXPECT_EQ(writer.accepted(), payload);
}

TEST(SendAllBytesTest, PeerResetMidWriteIsUnavailableNamingProgress) {
  ScriptedWriter writer({4, -EPIPE});
  const Status sent = SendAllBytes(
      "0123456789", [&writer](const char* data, size_t size) {
        return writer(data, size);
      });
  ASSERT_FALSE(sent.ok());
  EXPECT_EQ(sent.code(), StatusCode::kUnavailable);
  EXPECT_NE(sent.message().find("4 of 10"), std::string::npos)
      << sent.ToString();
}

TEST(SendAllBytesTest, ZeroByteWriteIsAStalledStream) {
  ScriptedWriter writer({3, 0});
  const Status sent = SendAllBytes(
      "stalled-stream", [&writer](const char* data, size_t size) {
        return writer(data, size);
      });
  ASSERT_FALSE(sent.ok());
  EXPECT_EQ(sent.code(), StatusCode::kUnavailable);
}

TEST(SendAllBytesTest, EmptyPayloadIsANoOp) {
  ScriptedWriter writer({});
  const Status sent = SendAllBytes(
      "", [&writer](const char* data, size_t size) {
        return writer(data, size);
      });
  EXPECT_TRUE(sent.ok()) << sent.ToString();
  EXPECT_TRUE(writer.accepted().empty());
}

// A scripted reader: yields the next chunk of `stream` per call, capped
// by the per-call quota (negative quota = errno once, 0 = EOF).
class ScriptedReader {
 public:
  ScriptedReader(std::string stream, std::vector<ssize_t> script)
      : stream_(std::move(stream)), script_(std::move(script)) {}

  ssize_t operator()(char* data, size_t size) {
    const ssize_t quota = next_ < script_.size()
                              ? script_[next_++]
                              : static_cast<ssize_t>(size);
    if (quota < 0) {
      errno = static_cast<int>(-quota);
      return -1;
    }
    const size_t take = std::min(
        {size, static_cast<size_t>(quota), stream_.size() - pos_});
    std::memcpy(data, stream_.data() + pos_, take);
    pos_ += take;
    return static_cast<ssize_t>(take);
  }

 private:
  std::string stream_;
  std::vector<ssize_t> script_;
  size_t next_ = 0;
  size_t pos_ = 0;
};

TEST(ReadIntoBufferTest, ChunksAccumulateAcrossCallsAndEintr) {
  ScriptedReader reader("abcdefgh", {3, -EINTR, 5});
  std::string buffer;
  ASSERT_TRUE(ReadIntoBuffer(&buffer, [&reader](char* data, size_t size) {
                return reader(data, size);
              }).ok());
  EXPECT_EQ(buffer, "abc");
  ASSERT_TRUE(ReadIntoBuffer(&buffer, [&reader](char* data, size_t size) {
                return reader(data, size);
              }).ok());
  EXPECT_EQ(buffer, "abcdefgh");
}

TEST(ReadIntoBufferTest, CleanCloseBetweenFramesIsUnavailable) {
  ScriptedReader reader("", {0});
  std::string buffer;  // nothing buffered: peer hung up between frames
  const Status read = ReadIntoBuffer(
      &buffer, [&reader](char* data, size_t size) {
        return reader(data, size);
      });
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.code(), StatusCode::kUnavailable);
  EXPECT_NE(read.message().find("closed by peer"), std::string::npos)
      << read.ToString();
}

TEST(ReadIntoBufferTest, CloseMidFrameIsDataLossNamingBufferedBytes) {
  ScriptedReader reader("", {0});
  // A partial frame sits in the buffer (length prefix + half a payload);
  // the constructor takes an explicit length because of the NUL bytes.
  std::string buffer("\x09\x00\x00\x00half", 8);
  const Status read = ReadIntoBuffer(
      &buffer, [&reader](char* data, size_t size) {
        return reader(data, size);
      });
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.code(), StatusCode::kDataLoss);
  EXPECT_NE(read.message().find("8 partial-frame bytes"), std::string::npos)
      << read.ToString();
}

TEST(ReadIntoBufferTest, PersistentErrorIsUnavailable) {
  ScriptedReader reader("data", {-ECONNRESET});
  std::string buffer;
  const Status read = ReadIntoBuffer(
      &buffer, [&reader](char* data, size_t size) {
        return reader(data, size);
      });
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace ndv
