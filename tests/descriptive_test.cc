#include "common/descriptive.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ndv {
namespace {

TEST(RunningStatsTest, MeanAndVariance) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(x);
  EXPECT_EQ(stats.count(), 8);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.PopulationVariance(), 4.0);
  EXPECT_DOUBLE_EQ(stats.PopulationStdDev(), 2.0);
  EXPECT_NEAR(stats.SampleVariance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStatsTest, MinMax) {
  RunningStats stats;
  for (double x : {3.0, -1.0, 10.0, 2.0}) stats.Add(x);
  EXPECT_DOUBLE_EQ(stats.min(), -1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 10.0);
}

TEST(RunningStatsTest, SingleObservation) {
  RunningStats stats;
  stats.Add(42.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 42.0);
  EXPECT_DOUBLE_EQ(stats.PopulationVariance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.SampleVariance(), 0.0);
}

TEST(RunningStatsTest, NumericallyStableForLargeOffsets) {
  // Welford should not lose the variance when the mean is huge.
  RunningStats stats;
  const double offset = 1e12;
  for (double x : {offset + 1.0, offset + 2.0, offset + 3.0}) stats.Add(x);
  EXPECT_NEAR(stats.PopulationVariance(), 2.0 / 3.0, 1e-6);
}

TEST(RatioErrorTest, AlwaysAtLeastOne) {
  EXPECT_DOUBLE_EQ(RatioError(10.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(RatioError(5.0, 10.0), 2.0);
  EXPECT_DOUBLE_EQ(RatioError(20.0, 10.0), 2.0);
}

TEST(RatioErrorTest, SymmetricInOverAndUnderEstimation) {
  EXPECT_DOUBLE_EQ(RatioError(5.0, 10.0), RatioError(20.0, 10.0));
}

TEST(RelativeErrorTest, SignedFractional) {
  EXPECT_DOUBLE_EQ(RelativeError(12.0, 10.0), 0.2);
  EXPECT_DOUBLE_EQ(RelativeError(8.0, 10.0), -0.2);
  EXPECT_DOUBLE_EQ(RelativeError(10.0, 10.0), 0.0);
}

TEST(MeanStdDevTest, MatchRunningStats) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(values), 2.5);
  EXPECT_NEAR(StdDev(values), std::sqrt(1.25), 1e-12);
}

}  // namespace
}  // namespace ndv
