// Death tests for the contract-checking layer: NDV_CHECK* aborts with a
// useful diagnostic, NDV_DCHECK* aborts only when NDV_DCHECK_ENABLED, and a
// disabled DCHECK never evaluates its operands (so a side-effecting
// expression inside one is a bug the Release build must not mask into
// behavior). Also covers the StatusOr value-of-error abort.

#include "common/check.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace ndv {
namespace {

TEST(CheckDeathTest, FailedCheckAbortsWithExpression) {
  EXPECT_DEATH(NDV_CHECK(1 + 1 == 3), "NDV_CHECK failed at .*: 1 \\+ 1 == 3");
}

TEST(CheckDeathTest, FailedCheckMsgIncludesFormattedMessage) {
  EXPECT_DEATH(NDV_CHECK_MSG(false, "ate %d of %s", 3, "them"),
               "NDV_CHECK failed at .*: false: ate 3 of them");
}

TEST(CheckDeathTest, ComparisonChecksPrintBothOperands) {
  const int64_t lhs = 7;
  const int64_t rhs = 9;
  EXPECT_DEATH(NDV_CHECK_EQ(lhs, rhs), "NDV_CHECK_EQ failed at .*7 vs 9");
  EXPECT_DEATH(NDV_CHECK_GT(lhs, rhs), "NDV_CHECK_GT failed at .*7 vs 9");
  EXPECT_DEATH(NDV_CHECK_GE(lhs, rhs), "NDV_CHECK_GE failed at .*7 vs 9");
  EXPECT_DEATH(NDV_CHECK_NE(lhs, lhs), "NDV_CHECK_NE failed at .*7 vs 7");
  EXPECT_DEATH(NDV_CHECK_LT(rhs, lhs), "NDV_CHECK_LT failed at .*9 vs 7");
  EXPECT_DEATH(NDV_CHECK_LE(rhs, lhs), "NDV_CHECK_LE failed at .*9 vs 7");
}

TEST(CheckTest, PassingChecksEvaluateOperandsExactlyOnce) {
  int evaluations = 0;
  const auto next = [&evaluations]() {
    ++evaluations;
    return int64_t{42};
  };
  NDV_CHECK_EQ(next(), 42);
  EXPECT_EQ(evaluations, 1);
  NDV_CHECK_LE(next(), 42);
  EXPECT_EQ(evaluations, 2);
  NDV_CHECK(next() == 42);
  EXPECT_EQ(evaluations, 3);
}

TEST(DcheckTest, RespectsBuildConfiguration) {
  int side_effects = 0;
  const auto fail_and_count = [&side_effects]() {
    ++side_effects;
    return false;
  };
#if NDV_DCHECK_ENABLED
  // Debug / sanitizer / forced-DCHECK builds: a failing DCHECK aborts like
  // a CHECK. The death-test child takes the side effect, not this process.
  EXPECT_DEATH(NDV_DCHECK(fail_and_count()), "NDV_DCHECK failed");
  EXPECT_DEATH(NDV_DCHECK_EQ(int64_t{1}, int64_t{2}),
               "NDV_DCHECK_EQ failed at .*1 vs 2");
  EXPECT_EQ(side_effects, 0);
#else
  // Release builds: disabled DCHECKs must not evaluate their operands.
  NDV_DCHECK(fail_and_count());
  NDV_DCHECK_EQ(fail_and_count(), true);
  NDV_DCHECK_NE(side_effects += 100, 0);
  NDV_DCHECK_LT(fail_and_count(), true);
  NDV_DCHECK_LE(fail_and_count(), true);
  NDV_DCHECK_GT(fail_and_count(), true);
  NDV_DCHECK_GE(fail_and_count(), true);
  EXPECT_EQ(side_effects, 0);
#endif
}

TEST(DcheckTest, PassingDchecksAreHarmlessInEveryMode) {
  NDV_DCHECK(true);
  NDV_DCHECK_EQ(int64_t{3}, int64_t{3});
  NDV_DCHECK_NE(int64_t{3}, int64_t{4});
  NDV_DCHECK_LT(int64_t{3}, int64_t{4});
  NDV_DCHECK_LE(int64_t{3}, int64_t{3});
  NDV_DCHECK_GT(int64_t{4}, int64_t{3});
  NDV_DCHECK_GE(int64_t{4}, int64_t{4});
}

TEST(StatusOrDeathTest, ValueOfErrorAborts) {
  StatusOr<int> failed(InvalidArgumentError("no such table"));
  ASSERT_FALSE(failed.ok());
  EXPECT_DEATH(failed.value(),
               "StatusOr::value\\(\\) on error: INVALID_ARGUMENT: no such "
               "table");
  EXPECT_DEATH(*failed, "StatusOr::value\\(\\) on error");
  EXPECT_DEATH(failed.operator->(), "StatusOr::value\\(\\) on error");
}

TEST(StatusOrDeathTest, OkStatusWithoutValueAborts) {
  EXPECT_DEATH(StatusOr<int>(Status::Ok()),
               "StatusOr constructed from OK status without a value");
}

}  // namespace
}  // namespace ndv
