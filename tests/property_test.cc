// Property-based sweeps: invariants that must hold for EVERY estimator on
// EVERY distribution. Parameterized over (estimator, workload) pairs.

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/descriptive.h"
#include "core/all_estimators.h"
#include "datagen/zipf.h"
#include "table/column_sampling.h"
#include "table/table.h"

namespace ndv {
namespace {

struct Workload {
  std::string label;
  double z;
  int64_t dup;
};

std::vector<std::string> EstimatorNames() {
  std::vector<std::string> names;
  for (const auto& estimator : MakeAllEstimators()) {
    names.emplace_back(estimator->name());
  }
  return names;
}

const std::vector<Workload>& Workloads() {
  static const auto& workloads = *new std::vector<Workload>{
      {"uniform_unique", 0.0, 1},
      {"uniform_dup20", 0.0, 20},
      {"zipf1", 1.0, 1},
      {"zipf2_dup10", 2.0, 10},
      {"zipf4", 4.0, 1},
  };
  return workloads;
}

class EstimatorPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::string, size_t>> {
 protected:
  std::unique_ptr<Estimator> estimator_ =
      MakeEstimatorByName(std::get<0>(GetParam()));
  const Workload& workload_ = Workloads()[std::get<1>(GetParam())];
};

TEST_P(EstimatorPropertyTest, SanityBoundsAlwaysHold) {
  ASSERT_NE(estimator_, nullptr);
  ZipfColumnOptions options;
  options.rows = 20000;
  options.z = workload_.z;
  options.dup_factor = workload_.dup;
  options.seed = 11;
  const auto column = MakeZipfColumn(options);
  Rng rng(13);
  for (double fraction : {0.001, 0.01, 0.1, 1.0}) {
    const SampleSummary summary =
        SampleColumnFraction(*column, fraction, rng);
    const double estimate = estimator_->Estimate(summary);
    EXPECT_GE(estimate, static_cast<double>(summary.d()))
        << "fraction=" << fraction;
    EXPECT_LE(estimate, static_cast<double>(summary.n()))
        << "fraction=" << fraction;
    EXPECT_TRUE(std::isfinite(estimate)) << "fraction=" << fraction;
  }
}

TEST_P(EstimatorPropertyTest, DeterministicOnFixedSummary) {
  ASSERT_NE(estimator_, nullptr);
  ZipfColumnOptions options;
  options.rows = 10000;
  options.z = workload_.z;
  options.dup_factor = workload_.dup;
  const auto column = MakeZipfColumn(options);
  Rng rng(17);
  const SampleSummary summary = SampleColumnFraction(*column, 0.02, rng);
  EXPECT_DOUBLE_EQ(estimator_->Estimate(summary),
                   estimator_->Estimate(summary));
}

TEST_P(EstimatorPropertyTest, FullScanIsExact) {
  ASSERT_NE(estimator_, nullptr);
  ZipfColumnOptions options;
  options.rows = 2000;
  options.z = workload_.z;
  options.dup_factor = workload_.dup;
  const auto column = MakeZipfColumn(options);
  Rng rng(19);
  const SampleSummary summary = SampleColumnFraction(*column, 1.0, rng);
  EXPECT_DOUBLE_EQ(estimator_->Estimate(summary),
                   static_cast<double>(ExactDistinctHashSet(*column)));
}

TEST_P(EstimatorPropertyTest, SingleValueColumnIsNearTrivial) {
  ASSERT_NE(estimator_, nullptr);
  // A column of one repeated value sampled at 5%: d = 1 and no singletons.
  // Everything except the blind expansion baselines (Naive scale-up and the
  // duplication-blind modified Shlosser) must say exactly 1; those two may
  // expand d but never beyond the naive factor 1/q.
  const Int64Column column(std::vector<int64_t>(1000, 7));
  Rng rng(23);
  const SampleSummary summary = SampleColumnFraction(column, 0.05, rng);
  const double estimate = estimator_->Estimate(summary);
  const std::string_view name = estimator_->name();
  if (name == "Naive" || name == "MShlosser") {
    EXPECT_GE(estimate, 1.0);
    EXPECT_LE(estimate, 1.0 / summary.q() + 1.0);
  } else {
    EXPECT_NEAR(estimate, 1.0, 0.1);
  }
}

std::vector<std::tuple<std::string, size_t>> AllCases() {
  std::vector<std::tuple<std::string, size_t>> cases;
  for (const std::string& name : EstimatorNames()) {
    for (size_t w = 0; w < Workloads().size(); ++w) {
      cases.emplace_back(name, w);
    }
  }
  return cases;
}

std::string CaseName(
    const ::testing::TestParamInfo<std::tuple<std::string, size_t>>& info) {
  std::string name = std::get<0>(info.param) + "_" +
                     Workloads()[std::get<1>(info.param)].label;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllEstimatorsAllWorkloads, EstimatorPropertyTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

// Convergence: reasonable estimators' error shrinks toward 1 as the
// sampling fraction approaches 1. (Excludes the intentionally-broken
// Goodman and duplication-blind MShlosser baselines.)
class ConvergenceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ConvergenceTest, ErrorApproachesOneAsSampleGrows) {
  const auto estimator = MakeEstimatorByName(GetParam());
  ASSERT_NE(estimator, nullptr);
  ZipfColumnOptions options;
  options.rows = 20000;
  options.z = 1.0;
  options.dup_factor = 4;
  const auto column = MakeZipfColumn(options);
  const double actual = static_cast<double>(ExactDistinctHashSet(*column));
  Rng rng(29);
  auto mean_error = [&](double fraction) {
    RunningStats errors;
    for (int t = 0; t < 5; ++t) {
      const SampleSummary summary =
          SampleColumnFraction(*column, fraction, rng);
      errors.Add(RatioError(estimator->Estimate(summary), actual));
    }
    return errors.mean();
  };
  const double coarse = mean_error(0.01);
  const double fine = mean_error(0.5);
  EXPECT_LE(fine, coarse * 1.05);
  EXPECT_LE(fine, 1.1);
}

// Estimators whose bias is controlled on skewed data. The CV-plug-in family
// (UJ2, ChaoLee, and the hybrids that can route to them) is excluded here:
// their squared-CV correction is known to overshoot badly on high-skew
// inputs even at large sampling fractions — the very failure mode that
// motivated the stabilized/hybrid variants. They get the uniform-data
// convergence test below instead.
INSTANTIATE_TEST_SUITE_P(
    ReasonableEstimators, ConvergenceTest,
    ::testing::Values("GEE", "AE", "HYBGEE", "HYBSKEW", "UJ1", "SJ",
                      "Shlosser", "Chao", "Bootstrap", "MM", "HT"),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      std::string name = param_info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

class CvSensitiveConvergenceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CvSensitiveConvergenceTest, ConvergesOnUniformData) {
  // On equal class sizes the estimated gamma^2 vanishes and the CV-based
  // corrections are harmless; convergence must then hold.
  const auto estimator = MakeEstimatorByName(GetParam());
  ASSERT_NE(estimator, nullptr);
  ZipfColumnOptions options;
  options.rows = 20000;
  options.z = 0.0;
  options.dup_factor = 4;
  const auto column = MakeZipfColumn(options);
  const double actual = static_cast<double>(ExactDistinctHashSet(*column));
  Rng rng(31);
  RunningStats errors;
  for (int t = 0; t < 5; ++t) {
    const SampleSummary summary = SampleColumnFraction(*column, 0.5, rng);
    errors.Add(RatioError(estimator->Estimate(summary), actual));
  }
  EXPECT_LE(errors.mean(), 1.1);
}

INSTANTIATE_TEST_SUITE_P(
    CvPlugInEstimators, CvSensitiveConvergenceTest,
    ::testing::Values("UJ2", "DUJ2A", "ChaoLee", "HYBVAR"),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      std::string name = param_info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace ndv
