#include "profile/frequency_profile.h"

#include <vector>

#include <gtest/gtest.h>

namespace ndv {
namespace {

TEST(FrequencyProfileTest, FromClassCounts) {
  const std::vector<int64_t> counts = {3, 1, 1, 2, 5};
  const FrequencyProfile profile = FrequencyProfile::FromClassCounts(counts);
  EXPECT_EQ(profile.f(1), 2);
  EXPECT_EQ(profile.f(2), 1);
  EXPECT_EQ(profile.f(3), 1);
  EXPECT_EQ(profile.f(5), 1);
  EXPECT_EQ(profile.f(4), 0);
  EXPECT_EQ(profile.DistinctValues(), 5);
  EXPECT_EQ(profile.TotalCount(), 12);
  EXPECT_EQ(profile.MaxFrequency(), 5);
  profile.Validate();
}

TEST(FrequencyProfileTest, ZeroCountsIgnored) {
  const std::vector<int64_t> counts = {0, 2, 0, 1};
  const FrequencyProfile profile = FrequencyProfile::FromClassCounts(counts);
  EXPECT_EQ(profile.DistinctValues(), 2);
  EXPECT_EQ(profile.TotalCount(), 3);
}

TEST(FrequencyProfileTest, FromFrequencyCounts) {
  const std::vector<int64_t> f = {4, 2, 0, 1};  // f1=4, f2=2, f4=1
  const FrequencyProfile profile = FrequencyProfile::FromFrequencyCounts(f);
  EXPECT_EQ(profile.f(1), 4);
  EXPECT_EQ(profile.f(2), 2);
  EXPECT_EQ(profile.f(3), 0);
  EXPECT_EQ(profile.f(4), 1);
  EXPECT_EQ(profile.DistinctValues(), 7);
  EXPECT_EQ(profile.TotalCount(), 4 + 4 + 4);
  profile.Validate();
}

TEST(FrequencyProfileTest, FromValues) {
  const std::vector<uint64_t> values = {7, 7, 9, 11, 11, 11};
  const FrequencyProfile profile = FrequencyProfile::FromValues(values);
  EXPECT_EQ(profile.f(1), 1);
  EXPECT_EQ(profile.f(2), 1);
  EXPECT_EQ(profile.f(3), 1);
  EXPECT_EQ(profile.DistinctValues(), 3);
  EXPECT_EQ(profile.TotalCount(), 6);
}

TEST(FrequencyProfileTest, EmptyProfile) {
  const FrequencyProfile profile;
  EXPECT_TRUE(profile.empty());
  EXPECT_EQ(profile.DistinctValues(), 0);
  EXPECT_EQ(profile.TotalCount(), 0);
  EXPECT_EQ(profile.MaxFrequency(), 0);
  EXPECT_EQ(profile.f(1), 0);
  profile.Validate();
}

TEST(FrequencyProfileTest, AddAndRemove) {
  FrequencyProfile profile;
  profile.Add(3, 2);
  profile.Add(1, 5);
  EXPECT_EQ(profile.DistinctValues(), 7);
  EXPECT_EQ(profile.TotalCount(), 11);
  profile.Add(3, -2);  // Remove both frequency-3 classes.
  EXPECT_EQ(profile.f(3), 0);
  EXPECT_EQ(profile.MaxFrequency(), 1);  // Trailing zeros trimmed.
  profile.Validate();
}

TEST(FrequencyProfileTest, Merge) {
  FrequencyProfile a;
  a.Add(1, 3);
  a.Add(2, 1);
  FrequencyProfile b;
  b.Add(2, 2);
  b.Add(7, 1);
  a.Merge(b);
  EXPECT_EQ(a.f(1), 3);
  EXPECT_EQ(a.f(2), 3);
  EXPECT_EQ(a.f(7), 1);
  EXPECT_EQ(a.DistinctValues(), 7);
  a.Validate();
}

TEST(FrequencyProfileTest, Truncated) {
  FrequencyProfile profile;
  profile.Add(1, 4);
  profile.Add(3, 2);
  profile.Add(10, 1);
  int64_t removed = -1;
  const FrequencyProfile reduced = profile.Truncated(3, &removed);
  EXPECT_EQ(removed, 1);
  EXPECT_EQ(reduced.f(1), 4);
  EXPECT_EQ(reduced.f(3), 2);
  EXPECT_EQ(reduced.f(10), 0);
  EXPECT_EQ(reduced.DistinctValues(), 6);
  reduced.Validate();
  // Original untouched.
  EXPECT_EQ(profile.f(10), 1);
}

TEST(FrequencyProfileTest, TruncateAll) {
  FrequencyProfile profile;
  profile.Add(5, 3);
  int64_t removed = 0;
  const FrequencyProfile reduced = profile.Truncated(4, &removed);
  EXPECT_EQ(removed, 3);
  EXPECT_TRUE(reduced.empty());
}

TEST(FrequencyProfileTest, PairCount) {
  FrequencyProfile profile;
  profile.Add(1, 10);  // singletons contribute nothing
  profile.Add(3, 2);   // 2 * 3*2 = 12
  profile.Add(4, 1);   // 4*3 = 12
  EXPECT_EQ(profile.PairCount(), 24);
}

TEST(FrequencyProfileTest, RepeatedValues) {
  FrequencyProfile profile;
  profile.Add(1, 6);
  profile.Add(2, 3);
  profile.Add(9, 1);
  EXPECT_EQ(profile.RepeatedValues(), 4);
}

TEST(FrequencyProfileTest, ToString) {
  FrequencyProfile profile;
  profile.Add(1, 5);
  profile.Add(7, 1);
  EXPECT_EQ(profile.ToString(), "{1:5, 7:1}");
  EXPECT_EQ(FrequencyProfile().ToString(), "{}");
}

TEST(FrequencyProfileTest, Equality) {
  FrequencyProfile a;
  a.Add(2, 3);
  FrequencyProfile b;
  b.Add(2, 3);
  EXPECT_EQ(a, b);
  b.Add(1, 1);
  EXPECT_NE(a, b);
}

TEST(SampleSummaryTest, AccessorsAndValidation) {
  const std::vector<int64_t> f = {3, 1};  // f1=3, f2=1 -> d=4, r=5
  const SampleSummary summary = MakeSummary(100, f);
  EXPECT_EQ(summary.n(), 100);
  EXPECT_EQ(summary.r(), 5);
  EXPECT_EQ(summary.d(), 4);
  EXPECT_EQ(summary.f(1), 3);
  EXPECT_EQ(summary.f(2), 1);
  EXPECT_DOUBLE_EQ(summary.q(), 0.05);
  summary.Validate();
}

TEST(SampleSummaryTest, ValidationCatchesMismatchedR) {
  SampleSummary summary;
  summary.table_rows = 10;
  summary.sample_rows = 3;  // but profile says 2
  summary.freq.Add(2, 1);
  EXPECT_DEATH(summary.Validate(), "TotalCount");
}

TEST(SampleSummaryTest, ValidationCatchesSampleLargerThanTable) {
  SampleSummary summary;
  summary.table_rows = 2;
  summary.sample_rows = 3;
  summary.freq.Add(1, 3);
  EXPECT_DEATH(summary.Validate(), "sample_rows");
}

}  // namespace
}  // namespace ndv
