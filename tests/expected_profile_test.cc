#include "profile/expected_profile.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/descriptive.h"
#include "common/math_util.h"
#include "common/random.h"
#include "table/column_sampling.h"
#include "table/table.h"

namespace ndv {
namespace {

TEST(HypergeometricPmfTest, SumsToOne) {
  // For fixed (n, t, r), the pmf over k must sum to 1.
  const int64_t n = 30, t = 8, r = 12;
  double total = 0.0;
  for (int64_t k = 0; k <= t; ++k) {
    total += HypergeometricPmf(n, t, r, k);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(HypergeometricPmfTest, MatchesHandComputation) {
  // n=10, t=4, r=3, k=2: C(4,2) C(6,1) / C(10,3) = 6*6/120 = 0.3.
  EXPECT_NEAR(HypergeometricPmf(10, 4, 3, 2), 0.3, 1e-12);
  // k=0 must match the miss probability.
  EXPECT_NEAR(HypergeometricPmf(10, 4, 3, 0),
              HypergeometricMissProbability(10, 4, 3), 1e-12);
  // k=1 must match the singleton probability.
  EXPECT_NEAR(HypergeometricPmf(10, 4, 3, 1),
              HypergeometricSingletonProbability(10, 4, 3), 1e-12);
}

TEST(HypergeometricPmfTest, ImpossibleOutcomes) {
  EXPECT_DOUBLE_EQ(HypergeometricPmf(10, 2, 3, 5), 0.0);  // k > t
  EXPECT_DOUBLE_EQ(HypergeometricPmf(10, 9, 3, 0), 0.0);  // can't avoid t=9
}

TEST(ExpectedDistinctWorTest, FullScanSeesEverything) {
  const std::vector<int64_t> counts = {5, 3, 1, 1};
  EXPECT_NEAR(ExpectedDistinctWor(counts, 10), 4.0, 1e-12);
}

TEST(ExpectedDistinctWorTest, EmptySampleSeesNothing) {
  const std::vector<int64_t> counts = {5, 3, 2};
  EXPECT_DOUBLE_EQ(ExpectedDistinctWor(counts, 0), 0.0);
}

TEST(ExpectedDistinctWorTest, SingleDrawIsOne) {
  // Any 1-row sample sees exactly one distinct value.
  const std::vector<int64_t> counts = {7, 2, 1};
  EXPECT_NEAR(ExpectedDistinctWor(counts, 1), 1.0, 1e-12);
}

TEST(ExpectedProfileWorTest, IdentitiesHold) {
  // sum_i i * E[f_i] == r and sum_i E[f_i] == E[d] (when max_freq covers
  // the largest class).
  const std::vector<int64_t> counts = {6, 4, 4, 2, 1, 1};
  const int64_t r = 9;
  const ProfileExpectation expectation = ExpectedProfileWor(counts, r, 9);
  double sum_f = 0.0, sum_if = 0.0;
  for (size_t i = 0; i < expectation.expected_f.size(); ++i) {
    sum_f += expectation.expected_f[i];
    sum_if += static_cast<double>(i + 1) * expectation.expected_f[i];
  }
  EXPECT_NEAR(sum_f, expectation.expected_distinct, 1e-10);
  EXPECT_NEAR(sum_if, static_cast<double>(r), 1e-10);
}

TEST(ExpectedProfileWorTest, MatchesMonteCarloSampling) {
  // The analytic E[d] and E[f1] must match empirical means from the
  // actual sampler within Monte Carlo noise.
  std::vector<int64_t> counts;
  std::vector<int64_t> values;
  for (int64_t c = 0; c < 50; ++c) {
    const int64_t size = 1 + (c % 7) * 3;  // sizes 1..19
    counts.push_back(size);
    values.insert(values.end(), static_cast<size_t>(size), c);
  }
  const Int64Column column(values);
  const int64_t r = 40;

  const ProfileExpectation analytic = ExpectedProfileWor(counts, r, 3);

  Rng rng(17);
  RunningStats d_stats, f1_stats;
  constexpr int kTrials = 3000;
  for (int t = 0; t < kTrials; ++t) {
    const SampleSummary summary =
        SampleColumn(column, r, SamplingScheme::kWithoutReplacement, rng);
    d_stats.Add(static_cast<double>(summary.d()));
    f1_stats.Add(static_cast<double>(summary.f(1)));
  }
  EXPECT_NEAR(d_stats.mean(), analytic.expected_distinct,
              0.02 * analytic.expected_distinct);
  EXPECT_NEAR(f1_stats.mean(), analytic.expected_f[0],
              0.05 * analytic.expected_f[0] + 0.2);
}

TEST(GeeExpectedValueWorTest, WithinTheoremTwoWindow) {
  // E[GEE] within [D / (e sqrt(n/r)) * (1 - o(1)), D sqrt(n/r)] on a mixed
  // population.
  std::vector<int64_t> counts;
  for (int64_t c = 0; c < 2000; ++c) counts.push_back(1 + c % 50);
  int64_t n = 0;
  for (int64_t t : counts) n += t;
  const int64_t r = n / 100;
  const double expected = GeeExpectedValueWor(counts, r);
  const double cap = 2000.0;
  const double scale = std::sqrt(static_cast<double>(n) / static_cast<double>(r));
  EXPECT_GE(expected, cap / (M_E * scale) * 0.9);
  EXPECT_LE(expected, cap * scale * 1.0001);
}

TEST(GeeExpectedValueWorTest, ExactOnFullScan) {
  const std::vector<int64_t> counts = {3, 2, 1};
  EXPECT_NEAR(GeeExpectedValueWor(counts, 6), 3.0, 1e-12);
}

}  // namespace
}  // namespace ndv
