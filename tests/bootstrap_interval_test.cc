#include "core/bootstrap_interval.h"

#include <gtest/gtest.h>

#include "common/descriptive.h"
#include "core/all_estimators.h"
#include "core/gee.h"
#include "datagen/zipf.h"
#include "table/column_sampling.h"
#include "table/table.h"

namespace ndv {
namespace {

SampleSummary MakeTestSummary() {
  ZipfColumnOptions options;
  options.rows = 50000;
  options.z = 1.0;
  options.dup_factor = 10;
  options.seed = 3;
  const auto column = MakeZipfColumn(options);
  Rng rng(4);
  return SampleColumnFraction(*column, 0.02, rng);
}

TEST(ResampleSummaryTest, PreservesSampleSizeAndBounds) {
  const SampleSummary original = MakeTestSummary();
  Rng rng(5);
  const SampleSummary resampled = ResampleSummary(original, rng);
  EXPECT_EQ(resampled.r(), original.r());
  EXPECT_EQ(resampled.n(), original.n());
  EXPECT_LE(resampled.d(), original.d());  // Resampling can only lose classes.
  EXPECT_GE(resampled.d(), 1);
  resampled.Validate();
}

TEST(ResampleSummaryTest, SingleClassIsFixedPoint) {
  // One class observed r times: every resample is identical.
  const SampleSummary summary =
      MakeSummary(1000, std::vector<int64_t>{0, 0, 0, 0, 1});
  Rng rng(6);
  const SampleSummary resampled = ResampleSummary(summary, rng);
  EXPECT_EQ(resampled.freq, summary.freq);
}

TEST(ResampleSummaryTest, DifferentDrawsDiffer) {
  const SampleSummary original = MakeTestSummary();
  Rng rng(7);
  const SampleSummary a = ResampleSummary(original, rng);
  const SampleSummary b = ResampleSummary(original, rng);
  EXPECT_NE(a.freq, b.freq);
}

TEST(BootstrapIntervalTest, BracketsThePointEstimateTypically) {
  const SampleSummary summary = MakeTestSummary();
  const auto estimator = MakeEstimatorByName("GEE");
  BootstrapOptions options;
  options.replicates = 100;
  const BootstrapInterval interval =
      ComputeBootstrapInterval(*estimator, summary, options);
  EXPECT_LE(interval.lower, interval.upper);
  EXPECT_GT(interval.replicate_stddev, 0.0);
  // The point estimate should be in or near the interval (bootstrap bias
  // for GEE is modest on this workload).
  EXPECT_GE(interval.point_estimate, interval.lower * 0.8);
  EXPECT_LE(interval.point_estimate, interval.upper * 1.2);
}

TEST(BootstrapIntervalTest, DeterministicInSeed) {
  const SampleSummary summary = MakeTestSummary();
  const auto estimator = MakeEstimatorByName("AE");
  BootstrapOptions options;
  options.replicates = 50;
  options.seed = 11;
  const BootstrapInterval a =
      ComputeBootstrapInterval(*estimator, summary, options);
  const BootstrapInterval b =
      ComputeBootstrapInterval(*estimator, summary, options);
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
  options.seed = 12;
  const BootstrapInterval c =
      ComputeBootstrapInterval(*estimator, summary, options);
  EXPECT_NE(a.lower, c.lower);
}

TEST(BootstrapIntervalTest, WiderConfidenceWiderInterval) {
  const SampleSummary summary = MakeTestSummary();
  const auto estimator = MakeEstimatorByName("GEE");
  BootstrapOptions narrow;
  narrow.replicates = 200;
  narrow.confidence = 0.5;
  BootstrapOptions wide = narrow;
  wide.confidence = 0.99;
  const BootstrapInterval narrow_interval =
      ComputeBootstrapInterval(*estimator, summary, narrow);
  const BootstrapInterval wide_interval =
      ComputeBootstrapInterval(*estimator, summary, wide);
  EXPECT_LE(wide_interval.lower, narrow_interval.lower);
  EXPECT_GE(wide_interval.upper, narrow_interval.upper);
}

TEST(BootstrapIntervalTest, DegenerateSampleYieldsPointInterval) {
  // One class only: all replicates identical.
  const SampleSummary summary =
      MakeSummary(1000, std::vector<int64_t>{0, 0, 0, 0, 0, 0, 0, 1});
  const auto estimator = MakeEstimatorByName("GEE");
  BootstrapOptions options;
  options.replicates = 20;
  const BootstrapInterval interval =
      ComputeBootstrapInterval(*estimator, summary, options);
  EXPECT_DOUBLE_EQ(interval.lower, interval.upper);
  EXPECT_DOUBLE_EQ(interval.replicate_stddev, 0.0);
}

TEST(BootstrapIntervalTest, CoversEstimatorSamplingDistribution) {
  // The bootstrap quantifies sampling variability, not estimator bias (see
  // the header caveat): its interval should usually cover the estimator's
  // own cross-sample mean — not necessarily the true D when the estimator
  // is biased.
  ZipfColumnOptions options;
  options.rows = 100000;
  options.z = 0.0;
  options.dup_factor = 50;  // D = 2000
  const auto column = MakeZipfColumn(options);
  const auto estimator = MakeEstimatorByName("AE");

  // The estimator's expected value, from fresh independent samples.
  Rng mean_rng(99);
  RunningStats fresh;
  for (int t = 0; t < 20; ++t) {
    fresh.Add(estimator->Estimate(
        SampleColumnFraction(*column, 0.05, mean_rng)));
  }
  const double cross_sample_mean = fresh.mean();

  Rng rng(21);
  int covered = 0;
  for (int t = 0; t < 10; ++t) {
    const SampleSummary summary = SampleColumnFraction(*column, 0.05, rng);
    BootstrapOptions boot;
    boot.replicates = 100;
    boot.seed = static_cast<uint64_t>(t);
    const BootstrapInterval interval =
        ComputeBootstrapInterval(*estimator, summary, boot);
    if (interval.lower <= cross_sample_mean &&
        cross_sample_mean <= interval.upper) {
      ++covered;
    }
  }
  EXPECT_GE(covered, 6);
}

}  // namespace
}  // namespace ndv
