#include "datagen/string_data.h"

#include <regex>
#include <set>

#include <gtest/gtest.h>

#include "core/gee.h"
#include "table/column_sampling.h"
#include "table/table.h"

namespace ndv {
namespace {

TEST(MakeStringTest, ShapesLookRight) {
  Rng rng(1);
  const std::string word = MakeString(StringShape::kWords, rng);
  EXPECT_TRUE(std::regex_match(word, std::regex("[a-z]{4,8}"))) << word;

  const std::string email = MakeString(StringShape::kEmails, rng);
  EXPECT_TRUE(std::regex_match(
      email, std::regex("[a-z]+[0-9]+@[a-z]+\\.(com|org|net|io|dev)")))
      << email;

  const std::string url = MakeString(StringShape::kUrls, rng);
  EXPECT_TRUE(std::regex_match(
      url, std::regex("https://[a-z]+\\.(com|org|net|io|dev)/[a-z]+/[a-z]+")))
      << url;

  const std::string uuid = MakeString(StringShape::kUuids, rng);
  EXPECT_TRUE(std::regex_match(
      uuid,
      std::regex("[0-9a-f]{8}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{4}-"
                 "[0-9a-f]{12}")))
      << uuid;
}

TEST(MakeStringColumnTest, ExactDomainSize) {
  StringColumnOptions options;
  options.rows = 50000;
  options.distinct = 500;
  options.z = 0.0;
  const auto column = MakeStringColumn(options);
  EXPECT_EQ(column->size(), 50000);
  EXPECT_EQ(column->dictionary_size(), 500);
  // Uniform draws at 100 rows/value: every value present.
  EXPECT_EQ(ExactDistinctHashSet(*column), 500);
}

TEST(MakeStringColumnTest, ZipfSkewConcentratesMass) {
  StringColumnOptions options;
  options.rows = 20000;
  options.distinct = 1000;
  options.z = 2.0;
  const auto column = MakeStringColumn(options);
  // Heavy skew: far fewer realized values than the domain.
  const int64_t realized = ExactDistinctHashSet(*column);
  EXPECT_LT(realized, 400);
  EXPECT_GE(realized, 10);
}

TEST(MakeStringColumnTest, DeterministicInSeed) {
  StringColumnOptions options;
  options.rows = 100;
  options.distinct = 20;
  options.seed = 9;
  const auto a = MakeStringColumn(options);
  const auto b = MakeStringColumn(options);
  for (int64_t row = 0; row < 100; ++row) {
    EXPECT_EQ(a->HashAt(row), b->HashAt(row));
  }
  EXPECT_EQ(a->ValueToString(7), b->ValueToString(7));
}

TEST(MakeStringColumnTest, EstimatorsWorkOnStringColumns) {
  // End to end: the whole estimation stack is type-agnostic.
  StringColumnOptions options;
  options.rows = 100000;
  options.distinct = 2000;
  options.z = 1.0;
  options.shape = StringShape::kEmails;
  const auto column = MakeStringColumn(options);
  const double actual = static_cast<double>(ExactDistinctHashSet(*column));
  Rng rng(5);
  const SampleSummary summary = SampleColumnFraction(*column, 0.05, rng);
  const GeeBounds bounds = ComputeGeeBounds(summary);
  EXPECT_LE(bounds.lower, actual);
  EXPECT_GE(bounds.upper, actual);
}

TEST(MakeStringColumnTest, UuidDomainsAreCollisionFree) {
  StringColumnOptions options;
  options.rows = 1000;
  options.distinct = 1000;
  options.z = 0.0;
  options.shape = StringShape::kUuids;
  const auto column = MakeStringColumn(options);
  EXPECT_EQ(column->dictionary_size(), 1000);
}

}  // namespace
}  // namespace ndv
