#include "common/solver.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ndv {
namespace {

TEST(BisectTest, FindsPolynomialRoot) {
  const auto f = [](double x) { return x * x - 2.0; };
  const auto result = Bisect(f, 0.0, 2.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->converged);
  EXPECT_NEAR(result->x, std::sqrt(2.0), 1e-8);
}

TEST(BisectTest, RejectsUnbracketedInterval) {
  const auto f = [](double x) { return x * x + 1.0; };
  EXPECT_FALSE(Bisect(f, -10.0, 10.0).has_value());
}

TEST(BisectTest, RootAtEndpoint) {
  const auto f = [](double x) { return x; };
  const auto result = Bisect(f, 0.0, 5.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->converged);
  EXPECT_NEAR(result->x, 0.0, 1e-9);
}

TEST(BrentTest, FindsTranscendentalRoot) {
  // x e^x = 1 -> x = W(1) = 0.5671432904...
  const auto f = [](double x) { return x * std::exp(x) - 1.0; };
  const auto result = Brent(f, 0.0, 1.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->converged);
  EXPECT_NEAR(result->x, 0.56714329040978, 1e-9);
}

TEST(BrentTest, ConvergesFasterThanBisection) {
  const auto f = [](double x) { return std::cos(x) - x; };
  const auto brent = Brent(f, 0.0, 1.0);
  const auto bisect = Bisect(f, 0.0, 1.0);
  ASSERT_TRUE(brent.has_value());
  ASSERT_TRUE(bisect.has_value());
  EXPECT_NEAR(brent->x, 0.739085133215, 1e-9);
  EXPECT_LT(brent->iterations, bisect->iterations);
}

TEST(BrentTest, RejectsUnbracketedInterval) {
  const auto f = [](double x) { return std::exp(x); };
  EXPECT_FALSE(Brent(f, -1.0, 1.0).has_value());
}

TEST(BrentTest, SteepFunction) {
  const auto f = [](double x) { return std::pow(x, 9.0) - 0.5; };
  const auto result = Brent(f, 0.0, 1.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->converged);
  EXPECT_NEAR(result->x, std::pow(0.5, 1.0 / 9.0), 1e-8);
}

TEST(ExpandBracketUpTest, FindsBracket) {
  const auto f = [](double x) { return x - 1000.0; };
  const auto bracket = ExpandBracketUp(f, 1.0, 2.0);
  ASSERT_TRUE(bracket.has_value());
  EXPECT_LE(f(bracket->first) * f(bracket->second), 0.0);
}

TEST(ExpandBracketUpTest, GivesUpOnRootlessFunction) {
  const auto f = [](double x) { return -1.0 - x * 0.0; };
  EXPECT_FALSE(ExpandBracketUp(f, 1.0, 2.0, 2.0, 20).has_value());
}

TEST(ExpandBracketUpTest, AlreadyBracketed) {
  const auto f = [](double x) { return x - 1.5; };
  const auto bracket = ExpandBracketUp(f, 1.0, 2.0);
  ASSERT_TRUE(bracket.has_value());
  EXPECT_DOUBLE_EQ(bracket->first, 1.0);
  EXPECT_DOUBLE_EQ(bracket->second, 2.0);
}

TEST(RootOptionsTest, TightToleranceReached) {
  RootOptions options;
  options.x_tolerance = 1e-14;
  options.f_tolerance = 0.0;
  const auto f = [](double x) { return x * x * x - 8.0; };
  const auto result = Brent(f, 0.0, 10.0, options);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->x, 2.0, 1e-12);
}

}  // namespace
}  // namespace ndv
