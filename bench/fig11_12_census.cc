// Figures 11 & 12: average ratio error and average stddev/D over all 15
// columns of the Census dataset, vs sampling rate. The original UCI Adult
// data is unavailable offline; CensusLike matches its row count and
// per-column cardinality/skew structure (DESIGN.md §4).
//
// Expected shape (paper): GEE, AE and HYBGEE consistently beat HYBSKEW,
// HYBVAR and DUJ2A on this dataset; variance is small and decreasing.

#include "bench_util.h"

#include "datagen/real_world_like.h"

int main() {
  using namespace ndv;
  std::printf("Reproducing Figures 11-12: Census (simulated), 32,561 rows, "
              "15 columns\n");
  const Table census = MakeCensusLike();
  const auto estimators = MakePaperComparisonEstimators();
  const auto results = RunTableSweep(census, PaperSamplingFractions(),
                                     estimators, bench::PaperRunOptions(11));

  const TextTable errors = MakeTableFigure(
      results, bench::RateLabels(), "rate",
      [](const TableAggregate& a) { return a.mean_ratio_error; });
  PrintFigure(std::cout, "Figure 11: Census avg ratio error vs rate",
              errors);

  const TextTable stddevs = MakeTableFigure(
      results, bench::RateLabels(), "rate",
      [](const TableAggregate& a) { return a.mean_stddev_fraction; }, 4);
  PrintFigure(std::cout, "Figure 12: Census avg stddev/D vs rate", stddevs);
  return 0;
}
