// Ablation: GEE's bias, computed analytically (zero Monte Carlo noise).
//
// GEE is linear in the f_i, so its exact expectation under
// without-replacement sampling is sqrt(n/r) E[f1] + (E[d] - E[f1]), with
// E[d] and E[f1] exact hypergeometric sums over the true class counts
// (profile/expected_profile.h). This bench prints E[GEE]/D across the
// paper's workload family and rate sweep — the noise-free explanation of
// Figure 1's GEE curve: the bias flips from over- to under-estimation as
// the rate crosses the "expected one occurrence per class" point.

#include <cmath>

#include "bench_util.h"

#include "datagen/zipf.h"
#include "profile/expected_profile.h"

int main() {
  using namespace ndv;
  std::printf("Ablation: analytic E[GEE]/D (signed bias ratio; >1 means "
              "overestimate)\n(n = 1,000,000, exact hypergeometric "
              "expectations, no sampling)\n");

  const int64_t n = 1000000;
  TextTable table({"workload", "D", "0.2%", "0.8%", "3.2%", "6.4%", "20%"});
  for (double z : {0.0, 1.0, 2.0}) {
    for (int64_t dup : {int64_t{1}, int64_t{100}}) {
      // True class counts straight from the generator's spec.
      auto base = ZipfClassFrequencies(n / dup, z);
      for (auto& f : base) f *= dup;
      const double cap = static_cast<double>(base.size());
      std::vector<std::string> row = {
          "Z=" + FormatDouble(z, 0) + " dup=" + std::to_string(dup),
          FormatDouble(cap, 0)};
      for (double fraction : {0.002, 0.008, 0.032, 0.064, 0.2}) {
        const int64_t r = static_cast<int64_t>(fraction * n);
        const double expected = GeeExpectedValueWor(base, r);
        row.push_back(FormatDouble(expected / cap, 3));
      }
      table.AddRow(std::move(row));
    }
  }
  PrintFigure(std::cout, "Analytic GEE bias across workloads", table);
  std::printf("Duplicated low-skew data (Z=0, dup=100) shows the Figure 1 "
              "signature: heavy\noverestimation at low rates (singletons "
              "over-scaled), converging from above as\nthe rate grows. "
              "All-distinct data (dup=1) sits at sqrt(r/n) -- pure "
              "underestimate.\n");
  return 0;
}
