// Section 3's calibration table: the paper compares its lower bound with
// the maximum errors Haas et al. observed at a 20% sampling fraction —
// Shlosser 1.58, smoothed jackknife 2.86, hybrid 1.42 — against the bound
// value 1.18 (gamma = 0.5). This bench reruns that comparison with our
// implementations: maximum mean ratio error over the paper's synthetic
// workload family at a 20% sample, per estimator, next to the bound.

#include <algorithm>

#include "bench_util.h"

#include "core/lower_bound.h"

int main() {
  using namespace ndv;
  const int64_t n = 500000;  // large enough for stable 20% samples
  const double fraction = 0.2;
  std::printf("Section 3 calibration: max error at a 20%% sampling "
              "fraction\n(max over Zipf Z in {0..4} x dup in {1,10,100}, "
              "n = %lld, 10 trials each)\n",
              static_cast<long long>(n));
  std::printf("Theorem 1 bound at gamma=0.5: %.3f (paper: 1.18)\n",
              TheoremOneErrorBound(n, n / 5, 0.5));
  std::printf("Paper-reported max errors: Shlosser 1.58, smoothed "
              "jackknife 2.86, hybrid 1.42\n");

  const auto estimators = MakeAllEstimators();
  std::vector<double> worst(estimators.size(), 1.0);
  RunOptions options = bench::PaperRunOptions(/*seed=*/41);
  for (double z : {0.0, 1.0, 2.0, 3.0, 4.0}) {
    for (int64_t dup : {int64_t{1}, int64_t{10}, int64_t{100}}) {
      const auto column = bench::PaperColumn(n, z, dup);
      const int64_t actual = ExactDistinctHashSet(*column);
      const auto aggregates = RunTrialsAllEstimators(
          *column, actual, fraction, estimators, options);
      for (size_t e = 0; e < estimators.size(); ++e) {
        worst[e] = std::max(worst[e], aggregates[e].mean_ratio_error);
      }
    }
  }

  TextTable table({"estimator", "max mean error @20%"});
  for (size_t e = 0; e < estimators.size(); ++e) {
    table.AddRow({std::string(estimators[e]->name()),
                  FormatDouble(worst[e], 3)});
  }
  PrintFigure(std::cout, "Max errors at 20% sampling (Section 3 context)",
              table);
  std::printf("As in the paper, the observed max errors of the good "
              "estimators sit close above the\nworst-case bound: there is "
              "little slack left for any estimator to improve on.\n");
  return 0;
}
