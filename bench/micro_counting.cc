// Microbenchmarks: the scan-and-count kernels. Old path (per-row virtual
// HashAt + std::unordered_map/set) vs new path (batched HashSlice + flat
// open-addressing tables) vs the parallel exact-NDV scan, across the four
// canonical distributions: uniform, Zipfian, all-distinct, all-equal.
//
//   ./build/bench/micro_counting --benchmark_format=json

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/flat_hash.h"
#include "common/random.h"
#include "common/simd_hash.h"
#include "profile/frequency_profile.h"
#include "table/column.h"
#include "table/table.h"

namespace {

constexpr int64_t kRows = 1000000;

enum DataKind : int64_t {
  kUniform = 0,      // ~100K distinct, uniform frequencies
  kZipfian = 1,      // Zipf(1.0) over 100K values: heavy skew
  kAllDistinct = 2,  // every row unique: worst case for table growth
  kAllEqual = 3,     // one value: best case, pure probe throughput
};

const char* KindName(int64_t kind) {
  switch (kind) {
    case kUniform: return "uniform";
    case kZipfian: return "zipfian";
    case kAllDistinct: return "all_distinct";
    case kAllEqual: return "all_equal";
  }
  return "?";
}

std::unique_ptr<ndv::Int64Column> MakeColumn(int64_t kind) {
  std::vector<int64_t> values;
  values.reserve(kRows);
  ndv::Rng rng(19);
  switch (kind) {
    case kUniform:
      for (int64_t i = 0; i < kRows; ++i) {
        values.push_back(static_cast<int64_t>(rng.NextBounded(100000)));
      }
      break;
    case kZipfian: {
      // Inverse-CDF Zipf(1.0) over 100K values, cheap approximation:
      // value = floor(exp(u * ln(N))) maps uniform u to a 1/x density.
      constexpr double kLogN = 11.512925464970229;  // ln(1e5)
      for (int64_t i = 0; i < kRows; ++i) {
        const double u = rng.NextDouble();
        values.push_back(static_cast<int64_t>(std::exp(u * kLogN)));
      }
      break;
    }
    case kAllDistinct:
      for (int64_t i = 0; i < kRows; ++i) values.push_back(i);
      break;
    case kAllEqual:
      values.assign(kRows, 42);
      break;
  }
  return std::make_unique<ndv::Int64Column>(std::move(values));
}

// --------------------------------------------------------------------------
// Hashing: per-row virtual dispatch vs one batched virtual call.

void BM_HashAtLoop(benchmark::State& state) {
  const auto column = MakeColumn(state.range(0));
  std::vector<uint64_t> out(kRows);
  for (auto _ : state) {
    for (int64_t row = 0; row < kRows; ++row) {
      out[static_cast<size_t>(row)] = column->HashAt(row);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.SetLabel(KindName(state.range(0)));
}
BENCHMARK(BM_HashAtLoop)->Arg(kUniform);

void BM_HashSliceBatch(benchmark::State& state) {
  const auto column = MakeColumn(state.range(0));
  std::vector<uint64_t> out(kRows);
  for (auto _ : state) {
    column->HashSlice(0, kRows, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.SetLabel(KindName(state.range(0)));
}
BENCHMARK(BM_HashSliceBatch)->Arg(kUniform);

// --------------------------------------------------------------------------
// SIMD hash kernels: the scalar reference vs whatever the dispatcher
// resolved for this host (NDV_SIMD overrides; the CI bench smoke runs both
// NDV_SIMD=scalar and native, so the two rows bracket the vector speedup).
// Arg 0 = forced scalar, arg 1 = the active dispatch level.

ndv::SimdLevel LevelArg(int64_t arg) {
  return arg == 0 ? ndv::SimdLevel::kScalar : ndv::ActiveSimdLevel();
}

void BM_HashInt64Kernel(benchmark::State& state) {
  const ndv::SimdLevel level = LevelArg(state.range(0));
  ndv::Rng rng(31);
  std::vector<int64_t> values(kRows);
  for (auto& v : values) v = static_cast<int64_t>(rng.NextU64());
  std::vector<uint64_t> out(kRows);
  for (auto _ : state) {
    ndv::HashInt64SpanAt(level, values.data(), values.size(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.SetLabel(ndv::SimdLevelName(level));
}
BENCHMARK(BM_HashInt64Kernel)->Arg(0)->Arg(1);

void BM_HashDoubleKernel(benchmark::State& state) {
  const ndv::SimdLevel level = LevelArg(state.range(0));
  ndv::Rng rng(37);
  std::vector<double> values(kRows);
  for (auto& v : values) {
    v = static_cast<double>(rng.NextBounded(1 << 30)) / 64.0;
  }
  std::vector<uint64_t> out(kRows);
  for (auto _ : state) {
    ndv::HashDoubleSpanAt(level, values.data(), values.size(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.SetLabel(ndv::SimdLevelName(level));
}
BENCHMARK(BM_HashDoubleKernel)->Arg(0)->Arg(1);

void BM_HashCodesKernel(benchmark::State& state) {
  const ndv::SimdLevel level = LevelArg(state.range(0));
  ndv::Rng rng(41);
  constexpr size_t kDict = 5000;
  std::vector<uint64_t> lut(kDict);
  for (size_t i = 0; i < kDict; ++i) lut[i] = ndv::Hash64(i);
  std::vector<int32_t> codes(kRows);
  for (auto& c : codes) c = static_cast<int32_t>(rng.NextBounded(kDict));
  std::vector<uint64_t> out(kRows);
  for (auto _ : state) {
    ndv::HashLookupCodes32At(level, codes.data(), lut.data(), codes.size(),
                             out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.SetLabel(ndv::SimdLevelName(level));
}
BENCHMARK(BM_HashCodesKernel)->Arg(0)->Arg(1);

// --------------------------------------------------------------------------
// Distinct counting: unordered_set (the old ExactDistinctHashSet) vs
// FlatHashSet vs the full parallel kernel.

void BM_DistinctUnorderedSet(benchmark::State& state) {
  const auto column = MakeColumn(state.range(0));
  for (auto _ : state) {
    std::unordered_set<uint64_t> seen;
    seen.reserve(static_cast<size_t>(kRows));
    for (int64_t row = 0; row < kRows; ++row) {
      seen.insert(column->HashAt(row));
    }
    benchmark::DoNotOptimize(seen.size());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.SetLabel(KindName(state.range(0)));
}
BENCHMARK(BM_DistinctUnorderedSet)
    ->Arg(kUniform)->Arg(kZipfian)->Arg(kAllDistinct)->Arg(kAllEqual);

void BM_DistinctFlatSet(benchmark::State& state) {
  const auto column = MakeColumn(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ndv::ExactDistinctHashSet(*column, 1));
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.SetLabel(KindName(state.range(0)));
}
BENCHMARK(BM_DistinctFlatSet)
    ->Arg(kUniform)->Arg(kZipfian)->Arg(kAllDistinct)->Arg(kAllEqual);

void BM_DistinctFlatSetParallel(benchmark::State& state) {
  const auto column = MakeColumn(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ndv::ExactDistinctHashSet(*column, 0));
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.SetLabel(KindName(state.range(0)));
}
BENCHMARK(BM_DistinctFlatSetParallel)->Arg(kUniform)->Arg(kAllDistinct);

// --------------------------------------------------------------------------
// Frequency profile build: unordered_map counting (the old
// FrequencyProfile::FromValues interior) vs the flat counter.

void BM_ProfileUnorderedMap(benchmark::State& state) {
  const auto column = MakeColumn(state.range(0));
  const std::vector<uint64_t> hashes = column->HashAll();
  for (auto _ : state) {
    std::unordered_map<uint64_t, int64_t> counts;
    counts.reserve(hashes.size());
    for (uint64_t h : hashes) ++counts[h];
    ndv::FrequencyProfile profile;
    for (const auto& entry : counts) profile.Add(entry.second);
    benchmark::DoNotOptimize(profile.DistinctValues());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.SetLabel(KindName(state.range(0)));
}
BENCHMARK(BM_ProfileUnorderedMap)->Arg(kUniform)->Arg(kZipfian);

void BM_ProfileFlatCounter(benchmark::State& state) {
  const auto column = MakeColumn(state.range(0));
  const std::vector<uint64_t> hashes = column->HashAll();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ndv::FrequencyProfile::FromValues(hashes).DistinctValues());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.SetLabel(KindName(state.range(0)));
}
BENCHMARK(BM_ProfileFlatCounter)->Arg(kUniform)->Arg(kZipfian);

// --------------------------------------------------------------------------
// String columns: dictionary-coded batch hashing (code -> precomputed
// dictionary hash) vs per-row virtual dispatch, counted end to end.

std::unique_ptr<ndv::StringColumn> MakeStringColumn() {
  ndv::Rng rng(29);
  std::vector<std::string> dictionary;
  for (int i = 0; i < 5000; ++i) {
    dictionary.push_back("category_value_" + std::to_string(i));
  }
  std::vector<int32_t> codes;
  codes.reserve(kRows);
  for (int64_t i = 0; i < kRows; ++i) {
    codes.push_back(static_cast<int32_t>(rng.NextBounded(5000)));
  }
  return std::make_unique<ndv::StringColumn>(std::move(dictionary),
                                             std::move(codes));
}

void BM_StringDistinctUnorderedSet(benchmark::State& state) {
  const auto column = MakeStringColumn();
  for (auto _ : state) {
    std::unordered_set<uint64_t> seen;
    for (int64_t row = 0; row < column->size(); ++row) {
      seen.insert(column->HashAt(row));
    }
    benchmark::DoNotOptimize(seen.size());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_StringDistinctUnorderedSet);

void BM_StringDistinctFlatSet(benchmark::State& state) {
  const auto column = MakeStringColumn();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ndv::ExactDistinctHashSet(*column, 1));
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_StringDistinctFlatSet);

}  // namespace

BENCHMARK_MAIN();
