// micro_incremental — the incremental-maintenance headline benchmark
// (DESIGN.md §17). Not a google-benchmark binary: the scenario is a
// stateful append stream whose metrics (amortized update cost, bracket
// containment, drift-fire timing) need a custom harness.
//
// Scenario: a 1M-row base table is ANALYZEd once; a StatsMaintainer then
// absorbs `--batches` append batches of `--batch-rows` rows, each batch
// introducing `--novel` never-seen values. After every batch the
// maintainer publishes a refreshed GEE estimate + [LOWER, UPPER] bracket
// as a new catalog epoch, and the drift trigger schedules a full
// re-ANALYZE only when the tracker's sketch drift exceeds the published
// interval's width (sync mode here, so fires run inline and the run is
// deterministic).
//
// Reported (stdout summary + JSON at --out):
//   * amortized per-append-batch update cost, excluding and including
//     drift-fired inline re-ANALYZEs, vs the cost of a full re-ANALYZE —
//     the naive freshness alternative ("re-ANALYZE after every batch");
//   * ratio error of every published estimate against the by-construction
//     true distinct count, plus bracket-containment violations (must be 0);
//   * the drift trace: per-batch drift vs tolerance, where the trigger
//     fired, and how many full re-ANALYZEs it scheduled;
//   * determinism: the same append stream ingested partition-parallel at
//     1 and 4 threads must merge to bit-identical sketches and samples.
//
//   ./build/bench/micro_incremental --rows=1000000 --batch-rows=1000
//       --batches=64 --out=BENCH_incremental.json

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "catalog/concurrent_catalog.h"
#include "catalog/stats_catalog.h"
#include "common/status.h"
#include "ingest/incremental_stats.h"
#include "ingest/maintenance.h"
#include "storage/materialize.h"
#include "table/column.h"
#include "table/table.h"

namespace {

using Clock = std::chrono::steady_clock;

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

int64_t Percentile(const std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<size_t>(rank + 0.5)];
}

int64_t FlagInt(const std::map<std::string, std::string>& flags,
                const std::string& name, int64_t fallback) {
  const auto it = flags.find(name);
  return it == flags.end() ? fallback : std::stoll(it->second);
}

// One row of the per-batch trace, kept small enough to check into the
// baselines JSON in full.
struct BatchTrace {
  int64_t batch = 0;
  int64_t truth = 0;         // true distinct count, by construction
  double estimate = 0.0;     // published point estimate
  double lower = 0.0;        // published GEE bracket
  double upper = 0.0;
  double drift = 0.0;        // tracker sketch drift after the batch
  double tolerance = 0.0;    // baseline interval width judged against
  bool fired = false;        // drift trigger scheduled a re-ANALYZE
  int64_t append_ns = 0;     // batch latency excluding inline re-ANALYZE
};

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 2;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg] = "true";
    } else {
      flags[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }

  const int64_t base_rows = FlagInt(flags, "rows", 1000000);
  // 10000 distinct values in 1M rows puts the GEE interval width (which
  // is f1 * (n/r - 1)) in the few-thousand range at a 5% sample, so the
  // default append stream escapes the bracket mid-run and the drift
  // trigger's fire/re-ANALYZE/recover cycle shows up in the trace.
  const int64_t base_distinct = FlagInt(flags, "distinct", 10000);
  const int64_t batches = FlagInt(flags, "batches", 64);
  const int64_t batch_rows = FlagInt(flags, "batch-rows", 1000);
  const int64_t novel_per_batch = FlagInt(flags, "novel", 500);
  const int64_t analyze_reps = FlagInt(flags, "analyze-reps", 3);
  const std::string out_path =
      flags.count("out") ? flags["out"] : "BENCH_incremental.json";

  // ---- Base table: `base_rows` rows cycling through `base_distinct`
  // values, so the true distinct count is exact by construction. A stride
  // coprime to the modulus scatters equal values across the table instead
  // of clustering them, which is the layout a sampler actually faces.
  std::vector<int64_t> base_values;
  base_values.reserve(static_cast<size_t>(base_rows));
  for (int64_t i = 0; i < base_rows; ++i) {
    base_values.push_back((i * 7919) % base_distinct);
  }
  ndv::Table base;
  base.AddColumn("value",
                 std::make_unique<ndv::Int64Column>(std::move(base_values)));

  // ---- Append stream: each batch carries `novel_per_batch` never-seen
  // values (monotone ids past the base domain) plus duplicates of the base
  // domain, so the running truth is base_distinct + novel ids issued.
  std::vector<int64_t> append_values;
  append_values.reserve(static_cast<size_t>(batches * batch_rows));
  int64_t novel_issued = 0;
  for (int64_t b = 0; b < batches; ++b) {
    for (int64_t j = 0; j < batch_rows; ++j) {
      if (j < novel_per_batch) {
        append_values.push_back(base_distinct + novel_issued++);
      } else {
        append_values.push_back(((b * batch_rows + j) * 104729) %
                                base_distinct);
      }
    }
  }
  const ndv::Int64Column append_column(std::move(append_values));

  ndv::AnalyzeOptions analyze;
  analyze.sample_fraction = 0.05;
  analyze.estimator = "GEE";
  analyze.seed = 7;
  analyze.threads = 1;

  // ---- Baseline: the cost of one full re-ANALYZE of the base table —
  // what a "re-ANALYZE after every batch" policy pays per refresh.
  int64_t full_min_ns = 0;
  double full_mean_ns = 0.0;
  for (int64_t rep = 0; rep < analyze_reps; ++rep) {
    const int64_t start = NowNanos();
    const ndv::StatsCatalog fresh = ndv::AnalyzeTable(base, analyze);
    const int64_t elapsed = NowNanos() - start;
    if (!fresh.Find("value")) {
      std::fprintf(stderr, "baseline ANALYZE produced no stats\n");
      return 1;
    }
    full_mean_ns += static_cast<double>(elapsed);
    if (rep == 0 || elapsed < full_min_ns) full_min_ns = elapsed;
  }
  full_mean_ns /= static_cast<double>(analyze_reps);
  std::printf("full re-ANALYZE of %lld rows: %.3f ms (min %.3f ms over "
              "%lld reps)\n",
              static_cast<long long>(base_rows), full_mean_ns * 1e-6,
              static_cast<double>(full_min_ns) * 1e-6,
              static_cast<long long>(analyze_reps));

  // ---- The maintained path. The re-ANALYZE callback rebuilds base +
  // appended-so-far (exactly what `ndv_cli ingest` does) and is timed
  // separately so batch latencies can be reported with and without it.
  ndv::ConcurrentStatsCatalog catalog(ndv::AnalyzeTable(base, analyze));
  int64_t appended_rows = 0;
  int64_t reanalyze_ns_this_batch = 0;
  int64_t reanalyze_ns_total = 0;
  auto reanalyze = [&]() -> ndv::StatusOr<ndv::StatsCatalog> {
    const int64_t start = NowNanos();
    auto slice_or = ndv::MaterializeColumnSlice(append_column, 0,
                                                appended_rows);
    if (!slice_or.ok()) return slice_or.status();
    ndv::Table appended;
    appended.AddColumn("value", std::move(*slice_or));
    auto concat_or = ndv::ConcatTables(base, appended);
    if (!concat_or.ok()) return concat_or.status();
    ndv::StatsCatalog fresh = ndv::AnalyzeTable(*concat_or, analyze);
    reanalyze_ns_this_batch += NowNanos() - start;
    return fresh;
  };

  ndv::StatsMaintainerOptions maintainer_options;
  maintainer_options.tracker.seed = analyze.seed + 1;
  maintainer_options.estimator = "GEE";
  maintainer_options.background = false;  // inline fires, deterministic run
  ndv::StatsMaintainer maintainer(&catalog, reanalyze, maintainer_options);
  maintainer.Track("value", ndv::FullColumnSlice(base.column(0)));

  std::vector<BatchTrace> trace;
  trace.reserve(static_cast<size_t>(batches));
  std::vector<int64_t> append_latencies;
  append_latencies.reserve(static_cast<size_t>(batches));
  int64_t total_append_ns = 0;
  int64_t bracket_violations = 0;
  double max_ratio_error = 1.0;
  int64_t first_fire_batch = -1;

  for (int64_t b = 0; b < batches; ++b) {
    const ndv::ColumnSlice slice{&append_column, b * batch_rows,
                                 (b + 1) * batch_rows};
    // Advance the visible high-water mark first so a drift-fired inline
    // re-ANALYZE covers this batch's rows.
    appended_rows = slice.end;
    reanalyze_ns_this_batch = 0;
    const int64_t fires_before = maintainer.counters().drift_fires;
    const int64_t start = NowNanos();
    maintainer.Append("value", slice);
    const int64_t elapsed = NowNanos() - start;
    total_append_ns += elapsed;
    reanalyze_ns_total += reanalyze_ns_this_batch;
    append_latencies.push_back(elapsed - reanalyze_ns_this_batch);

    const auto published = catalog.Find("value");
    if (!published) {
      std::fprintf(stderr, "batch %lld: no published stats\n",
                   static_cast<long long>(b));
      return 1;
    }
    const int64_t truth =
        base_distinct + std::min((b + 1) * novel_per_batch,
                                 novel_issued);
    BatchTrace row;
    row.batch = b;
    row.truth = truth;
    row.estimate = published->estimate;
    row.lower = published->lower;
    row.upper = published->upper;
    row.drift = maintainer.Drift("value");
    row.tolerance = maintainer.Tolerance("value");
    row.fired = maintainer.counters().drift_fires > fires_before;
    row.append_ns = elapsed - reanalyze_ns_this_batch;
    trace.push_back(row);

    if (published->estimate < published->lower ||
        published->estimate > published->upper) {
      ++bracket_violations;
    }
    const double ratio =
        std::max(published->estimate / static_cast<double>(truth),
                 static_cast<double>(truth) / published->estimate);
    max_ratio_error = std::max(max_ratio_error, ratio);
    if (row.fired && first_fire_batch < 0) first_fire_batch = b;
  }

  const ndv::MaintainerCounters counters = maintainer.counters();
  if (!maintainer.last_reanalyze_status().ok()) {
    std::fprintf(stderr, "re-ANALYZE failed: %s\n",
                 maintainer.last_reanalyze_status().ToString().c_str());
    return 1;
  }

  std::vector<int64_t> sorted = append_latencies;
  std::sort(sorted.begin(), sorted.end());
  const double amortized_ns =
      static_cast<double>(total_append_ns - reanalyze_ns_total) /
      static_cast<double>(batches);
  const double amortized_with_reanalyze_ns =
      static_cast<double>(total_append_ns) / static_cast<double>(batches);
  const double speedup =
      full_mean_ns / amortized_ns;
  const double speedup_with_reanalyze =
      full_mean_ns / amortized_with_reanalyze_ns;

  std::printf("append path: %lld batches of %lld rows, amortized %.1f us "
              "(p50 %.1f us, p95 %.1f us, max %.1f us)\n",
              static_cast<long long>(batches),
              static_cast<long long>(batch_rows), amortized_ns * 1e-3,
              static_cast<double>(Percentile(sorted, 50)) * 1e-3,
              static_cast<double>(Percentile(sorted, 95)) * 1e-3,
              static_cast<double>(sorted.back()) * 1e-3);
  std::printf("  vs full re-ANALYZE per batch: %.0fx (%.0fx counting the "
              "%lld drift-fired re-ANALYZEs)\n",
              speedup, speedup_with_reanalyze,
              static_cast<long long>(counters.reanalyzes));
  std::printf("accuracy: %lld/%lld estimates inside their bracket, max "
              "ratio error %.3f\n",
              static_cast<long long>(batches - bracket_violations),
              static_cast<long long>(batches), max_ratio_error);
  std::printf("drift: %lld fires (first at batch %lld), %lld re-ANALYZEs, "
              "final drift %.1f vs tolerance %.1f\n",
              static_cast<long long>(counters.drift_fires),
              static_cast<long long>(first_fire_batch),
              static_cast<long long>(counters.reanalyzes),
              maintainer.Drift("value"), maintainer.Tolerance("value"));

  // ---- Determinism: the whole append stream ingested partition-parallel
  // at different thread counts must merge bit-identically.
  ndv::IncrementalStatsOptions ingest_options;
  ingest_options.seed = analyze.seed + 1;
  const ndv::ColumnSlice whole = ndv::FullColumnSlice(append_column);
  const auto parts_1t =
      ndv::PartitionedIngest(whole, ingest_options, 8, /*threads=*/1);
  const auto parts_4t =
      ndv::PartitionedIngest(whole, ingest_options, 8, /*threads=*/4);
  std::vector<const ndv::IncrementalStats*> view_1t, view_4t;
  for (const auto& p : parts_1t) view_1t.push_back(&p);
  for (const auto& p : parts_4t) view_4t.push_back(&p);
  // Reversed arrival order on one side: merge order must not matter.
  std::reverse(view_4t.begin(), view_4t.end());
  const auto merged_1t = ndv::MergeIncrementalStats(view_1t, 99);
  const auto merged_4t = ndv::MergeIncrementalStats(view_4t, 99);
  if (!merged_1t.ok() || !merged_4t.ok()) {
    std::fprintf(stderr, "partitioned ingest merge failed\n");
    return 1;
  }
  const bool bit_identical =
      merged_1t->hll == merged_4t->hll &&
      merged_1t->linear_counting == merged_4t->linear_counting &&
      merged_1t->sample == merged_4t->sample &&
      merged_1t->rows == merged_4t->rows;
  std::printf("determinism: 8 partitions at 1 vs 4 threads, reversed merge "
              "order: %s\n",
              bit_identical ? "bit-identical" : "MISMATCH");
  if (!bit_identical) return 1;

  // ---- JSON report.
  std::string json = "{\n  \"config\": {";
  char buffer[768];
  std::snprintf(buffer, sizeof(buffer),
                "\"base_rows\": %lld, \"base_distinct\": %lld, "
                "\"batches\": %lld, \"batch_rows\": %lld, "
                "\"novel_per_batch\": %lld, \"sample_fraction\": %.3f, "
                "\"estimator\": \"GEE\"}",
                static_cast<long long>(base_rows),
                static_cast<long long>(base_distinct),
                static_cast<long long>(batches),
                static_cast<long long>(batch_rows),
                static_cast<long long>(novel_per_batch),
                analyze.sample_fraction);
  json.append(buffer);
  std::snprintf(buffer, sizeof(buffer),
                ",\n  \"full_reanalyze\": {\"reps\": %lld, "
                "\"mean_ns\": %.0f, \"min_ns\": %lld}",
                static_cast<long long>(analyze_reps), full_mean_ns,
                static_cast<long long>(full_min_ns));
  json.append(buffer);
  std::snprintf(buffer, sizeof(buffer),
                ",\n  \"append\": {\"amortized_ns\": %.0f, "
                "\"amortized_with_reanalyze_ns\": %.0f, "
                "\"p50_ns\": %lld, \"p95_ns\": %lld, \"max_ns\": %lld, "
                "\"sub_millisecond\": %s}",
                amortized_ns, amortized_with_reanalyze_ns,
                static_cast<long long>(Percentile(sorted, 50)),
                static_cast<long long>(Percentile(sorted, 95)),
                static_cast<long long>(sorted.back()),
                amortized_ns < 1e6 ? "true" : "false");
  json.append(buffer);
  std::snprintf(buffer, sizeof(buffer),
                ",\n  \"speedup\": {\"vs_full_reanalyze\": %.1f, "
                "\"with_drift_reanalyzes\": %.1f}",
                speedup, speedup_with_reanalyze);
  json.append(buffer);
  std::snprintf(buffer, sizeof(buffer),
                ",\n  \"accuracy\": {\"bracket_violations\": %lld, "
                "\"max_ratio_error\": %.4f, \"final_truth\": %lld, "
                "\"final_estimate\": %.1f}",
                static_cast<long long>(bracket_violations), max_ratio_error,
                static_cast<long long>(trace.back().truth),
                trace.back().estimate);
  json.append(buffer);
  std::snprintf(buffer, sizeof(buffer),
                ",\n  \"drift\": {\"fires\": %lld, \"reanalyzes\": %lld, "
                "\"reanalyze_failures\": %lld, \"first_fire_batch\": %lld, "
                "\"publications\": %lld}",
                static_cast<long long>(counters.drift_fires),
                static_cast<long long>(counters.reanalyzes),
                static_cast<long long>(counters.reanalyze_failures),
                static_cast<long long>(first_fire_batch),
                static_cast<long long>(counters.publications));
  json.append(buffer);
  std::snprintf(buffer, sizeof(buffer),
                ",\n  \"determinism\": {\"partitions\": 8, "
                "\"threads_compared\": [1, 4], \"reversed_merge_order\": "
                "true, \"bit_identical\": %s}",
                bit_identical ? "true" : "false");
  json.append(buffer);
  json.append(",\n  \"trace\": [");
  for (size_t i = 0; i < trace.size(); ++i) {
    const BatchTrace& row = trace[i];
    std::snprintf(buffer, sizeof(buffer),
                  "%s\n    {\"batch\": %lld, \"truth\": %lld, "
                  "\"estimate\": %.1f, \"lower\": %.1f, \"upper\": %.1f, "
                  "\"drift\": %.1f, \"tolerance\": %.1f, \"fired\": %s, "
                  "\"append_ns\": %lld}",
                  i == 0 ? "" : ",", static_cast<long long>(row.batch),
                  static_cast<long long>(row.truth), row.estimate,
                  row.lower, row.upper, row.drift, row.tolerance,
                  row.fired ? "true" : "false",
                  static_cast<long long>(row.append_ns));
    json.append(buffer);
  }
  json.append("\n  ]\n}\n");

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << json;
  std::printf("report written to %s\n", out_path.c_str());
  return 0;
}
