// Ablation: distributed (merged per-partition reservoirs) vs monolithic
// sampling. The merge is provably an exactly uniform sample of the union,
// so estimator error distributions must match the monolithic pipeline —
// this bench verifies it empirically across estimators and shard counts.

#include "bench_util.h"

#include "common/descriptive.h"
#include "profile/frequency_profile.h"
#include "sample/partition_merge.h"
#include "sample/samplers.h"
#include "table/column_sampling.h"

namespace {

using namespace ndv;

SampleSummary MergedSample(const Column& column, int partitions,
                           int64_t sample_rows, Rng& rng) {
  const int64_t n = column.size();
  const int64_t per_partition = n / partitions;
  std::vector<PartitionSample> parts;
  for (int p = 0; p < partitions; ++p) {
    ReservoirSamplerL reservoir(sample_rows, rng.Fork());
    const int64_t begin = p * per_partition;
    const int64_t end = (p == partitions - 1) ? n : begin + per_partition;
    for (int64_t row = begin; row < end; ++row) {
      reservoir.Add(column.HashAt(row));
    }
    PartitionSample part;
    part.population = end - begin;
    part.items = reservoir.sample();
    parts.push_back(std::move(part));
  }
  const auto merged = MergePartitionSamples(std::move(parts), sample_rows, rng);
  SampleSummary summary;
  summary.table_rows = n;
  summary.sample_rows = static_cast<int64_t>(merged.size());
  summary.freq = FrequencyProfile::FromValues(merged);
  summary.Validate();
  return summary;
}

}  // namespace

int main() {
  std::printf("Ablation: merged per-partition reservoirs vs monolithic "
              "sampling\n(Zipf Z=1, dup=100, n=1M, 10K-row samples, 10 "
              "trials)\n");

  const auto column = bench::PaperColumn(1000000, 1.0, 100);
  const double actual =
      static_cast<double>(ExactDistinctHashSet(*column));
  const auto estimators = MakePaperComparisonEstimators();

  TextTable table({"pipeline", "GEE", "AE", "HYBGEE", "HYBSKEW", "HYBVAR",
                   "DUJ2A"});
  // Monolithic baseline.
  {
    Rng rng(71);
    std::vector<RunningStats> errors(estimators.size());
    for (int t = 0; t < 10; ++t) {
      Rng trial = rng.Fork();
      const SampleSummary summary = SampleColumn(
          *column, 10000, SamplingScheme::kWithoutReplacement, trial);
      for (size_t e = 0; e < estimators.size(); ++e) {
        errors[e].Add(RatioError(estimators[e]->Estimate(summary), actual));
      }
    }
    std::vector<std::string> row = {"monolithic"};
    for (auto& stat : errors) row.push_back(FormatDouble(stat.mean(), 3));
    table.AddRow(std::move(row));
  }
  // Merged pipelines at several shard counts.
  for (int partitions : {2, 8, 32}) {
    Rng rng(72 + static_cast<uint64_t>(partitions));
    std::vector<RunningStats> errors(estimators.size());
    for (int t = 0; t < 10; ++t) {
      const SampleSummary summary =
          MergedSample(*column, partitions, 10000, rng);
      for (size_t e = 0; e < estimators.size(); ++e) {
        errors[e].Add(RatioError(estimators[e]->Estimate(summary), actual));
      }
    }
    std::vector<std::string> row = {std::to_string(partitions) + " shards"};
    for (auto& stat : errors) row.push_back(FormatDouble(stat.mean(), 3));
    table.AddRow(std::move(row));
  }
  PrintFigure(std::cout, "Distributed vs monolithic sampling", table);
  std::printf("Rows agree to sampling noise: merging loses nothing, at any "
              "shard count.\n");
  return 0;
}
