// Tables 1 & 2: GEE's error guarantee — the [LOWER, UPPER] interval around
// the true number of distinct values, vs sampling rate, on Z=0 and Z=2
// data (n = 1,000,000, duplication factor 100). Values are means over the
// paper's ten independent samples.
//
// Expected shape (paper Table 1, Z=0): LOWER climbs 1814 -> 9987 and UPPER
// falls 817300 -> 11306 as the rate goes 0.2% -> 6.4%. Table 2 (Z=2)
// collapses much faster. ACTUAL is always inside the interval.

#include "bench_util.h"

#include "common/descriptive.h"
#include "core/gee.h"
#include "table/column_sampling.h"

namespace {

void RunTable(const char* title, double z, uint64_t seed) {
  using namespace ndv;
  const auto column = bench::PaperColumn(1000000, z, 100);
  const int64_t actual = ExactDistinctHashSet(*column);

  TextTable table({"Sampling Rate", "ACTUAL", "LOWER", "GEE", "UPPER",
                   "covered (of 10)"});
  Rng rng(seed);
  for (double fraction : PaperSamplingFractions()) {
    RunningStats lowers, estimates, uppers;
    int covered = 0;
    for (int trial = 0; trial < 10; ++trial) {
      Rng trial_rng = rng.Fork();
      const SampleSummary sample =
          SampleColumnFraction(*column, fraction, trial_rng);
      const GeeBounds bounds = ComputeGeeBounds(sample);
      lowers.Add(bounds.lower);
      estimates.Add(bounds.estimate);
      uppers.Add(bounds.upper);
      if (bounds.lower <= static_cast<double>(actual) &&
          static_cast<double>(actual) <= bounds.upper) {
        ++covered;
      }
    }
    table.AddRow({FractionLabel(fraction), std::to_string(actual),
                  FormatDouble(lowers.mean(), 0),
                  FormatDouble(estimates.mean(), 0),
                  FormatDouble(uppers.mean(), 0), std::to_string(covered)});
  }
  PrintFigure(std::cout, title, table);
}

}  // namespace

int main() {
  std::printf("Reproducing Tables 1-2: GEE error guarantee "
              "(n = 1,000,000, dup = 100, 10 samples/point)\n");
  RunTable("Table 1: GEE [LOWER, UPPER] vs rate, Z=0", 0.0, 21);
  RunTable("Table 2: GEE [LOWER, UPPER] vs rate, Z=2", 2.0, 22);
  return 0;
}
