// Microbenchmarks: full-scan probabilistic counters — ingest throughput and
// estimate cost. The scan cost is what makes sketches infeasible for ad-hoc
// statistics on very large tables (the paper's Section 1 argument).

#include <benchmark/benchmark.h>

#include <vector>

#include "common/random.h"
#include "sketch/exact_counter.h"
#include "sketch/flajolet_martin.h"
#include "sketch/hyperloglog.h"
#include "sketch/linear_counting.h"

namespace {

std::vector<uint64_t> MakeStream(int64_t size, int64_t distinct) {
  std::vector<uint64_t> stream;
  stream.reserve(static_cast<size_t>(size));
  ndv::Rng rng(11);
  for (int64_t i = 0; i < size; ++i) {
    stream.push_back(ndv::Hash64(rng.NextBounded(
        static_cast<uint64_t>(distinct))));
  }
  return stream;
}

constexpr int64_t kStream = 1000000;
constexpr int64_t kDistinct = 50000;

template <typename Counter, typename... Args>
void IngestBench(benchmark::State& state, Args... args) {
  const auto stream = MakeStream(kStream, kDistinct);
  for (auto _ : state) {
    Counter counter(args...);
    for (uint64_t h : stream) counter.Add(h);
    benchmark::DoNotOptimize(counter.Estimate());
  }
  state.SetItemsProcessed(state.iterations() * kStream);
}

void BM_ExactCounter(benchmark::State& state) {
  const auto stream = MakeStream(kStream, kDistinct);
  for (auto _ : state) {
    ndv::ExactCounter counter;
    for (uint64_t h : stream) counter.Add(h);
    benchmark::DoNotOptimize(counter.Estimate());
  }
  state.SetItemsProcessed(state.iterations() * kStream);
}
BENCHMARK(BM_ExactCounter);

void BM_LinearCounting(benchmark::State& state) {
  IngestBench<ndv::LinearCounting>(state, int64_t{1} << 20);
}
BENCHMARK(BM_LinearCounting);

void BM_FlajoletMartin(benchmark::State& state) {
  IngestBench<ndv::FlajoletMartin>(state, int64_t{64});
}
BENCHMARK(BM_FlajoletMartin);

void BM_HyperLogLog(benchmark::State& state) {
  IngestBench<ndv::HyperLogLog>(state, 12);
}
BENCHMARK(BM_HyperLogLog);

void BM_Kmv(benchmark::State& state) {
  IngestBench<ndv::KMinimumValues>(state, int64_t{1024});
}
BENCHMARK(BM_Kmv);

void BM_HyperLogLogMerge(benchmark::State& state) {
  ndv::HyperLogLog a(12);
  ndv::HyperLogLog b(12);
  for (uint64_t h : MakeStream(100000, 30000)) a.Add(h);
  for (uint64_t h : MakeStream(100000, 30000)) b.Add(h);
  for (auto _ : state) {
    ndv::HyperLogLog merged = a;
    merged.Merge(b);
    benchmark::DoNotOptimize(merged.Estimate());
  }
}
BENCHMARK(BM_HyperLogLogMerge);

}  // namespace

BENCHMARK_MAIN();
