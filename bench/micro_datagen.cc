// Microbenchmarks: synthetic data generation — the cost of materializing
// the paper's workloads (relevant when regenerating every figure).

#include <benchmark/benchmark.h>

#include "datagen/real_world_like.h"
#include "datagen/synthetic_table.h"
#include "datagen/zipf.h"
#include "table/table.h"

namespace {

void BM_ZipfClassFrequencies(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ndv::ZipfClassFrequencies(state.range(0), 2.0));
  }
}
BENCHMARK(BM_ZipfClassFrequencies)->Arg(10000)->Arg(1000000);

void BM_MakeZipfColumn(benchmark::State& state) {
  ndv::ZipfColumnOptions options;
  options.rows = state.range(0);
  options.z = 1.0;
  options.dup_factor = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ndv::MakeZipfColumn(options));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MakeZipfColumn)->Arg(100000)->Arg(1000000);

void BM_ZipfianGeneratorDraws(benchmark::State& state) {
  const ndv::ZipfianGenerator zipf(state.range(0), 1.2);
  ndv::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfianGeneratorDraws)->Arg(1000)->Arg(100000);

void BM_MakeCensusLike(benchmark::State& state) {
  for (auto _ : state) {
    const ndv::Table table = ndv::MakeCensusLikeScaled(state.range(0));
    benchmark::DoNotOptimize(table.NumRows());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 15);
}
BENCHMARK(BM_MakeCensusLike)->Arg(10000);

void BM_ExactDistinct(benchmark::State& state) {
  ndv::ZipfColumnOptions options;
  options.rows = state.range(0);
  options.z = 1.0;
  options.dup_factor = 10;
  const auto column = ndv::MakeZipfColumn(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ndv::ExactDistinctHashSet(*column));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExactDistinct)->Arg(100000)->Arg(1000000);

}  // namespace

BENCHMARK_MAIN();
