// Microbenchmarks: estimator evaluation cost as a function of the sample's
// frequency-profile size. Estimators run on precomputed summaries, so this
// measures pure formula/solver cost (the part a DBMS pays per ANALYZE).

#include <benchmark/benchmark.h>

#include "core/adaptive_estimator.h"
#include "core/all_estimators.h"
#include "core/gee.h"
#include "datagen/zipf.h"
#include "table/column_sampling.h"

namespace {

// A realistic summary: 1% sample of Zipf(1) data, profile width grows with
// `rows`.
ndv::SampleSummary MakeBenchSummary(int64_t rows) {
  ndv::ZipfColumnOptions options;
  options.rows = rows;
  options.z = 1.0;
  options.dup_factor = 10;
  options.seed = 77;
  const auto column = ndv::MakeZipfColumn(options);
  ndv::Rng rng(5);
  return ndv::SampleColumnFraction(*column, 0.01, rng);
}

void BM_Gee(benchmark::State& state) {
  const ndv::SampleSummary summary = MakeBenchSummary(state.range(0));
  const ndv::Gee estimator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.Estimate(summary));
  }
}
BENCHMARK(BM_Gee)->Arg(100000)->Arg(1000000);

void BM_AdaptiveEstimator(benchmark::State& state) {
  const ndv::SampleSummary summary = MakeBenchSummary(state.range(0));
  const ndv::AdaptiveEstimator estimator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.Estimate(summary));
  }
}
BENCHMARK(BM_AdaptiveEstimator)->Arg(100000)->Arg(1000000);

void BM_HybGee(benchmark::State& state) {
  const ndv::SampleSummary summary = MakeBenchSummary(state.range(0));
  const auto estimator = ndv::MakeEstimatorByName("HYBGEE");
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator->Estimate(summary));
  }
}
BENCHMARK(BM_HybGee)->Arg(100000)->Arg(1000000);

void BM_HybSkew(benchmark::State& state) {
  const ndv::SampleSummary summary = MakeBenchSummary(state.range(0));
  const auto estimator = ndv::MakeEstimatorByName("HYBSKEW");
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator->Estimate(summary));
  }
}
BENCHMARK(BM_HybSkew)->Arg(100000)->Arg(1000000);

void BM_Shlosser(benchmark::State& state) {
  const ndv::SampleSummary summary = MakeBenchSummary(state.range(0));
  const auto estimator = ndv::MakeEstimatorByName("Shlosser");
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator->Estimate(summary));
  }
}
BENCHMARK(BM_Shlosser)->Arg(100000)->Arg(1000000);

void BM_StabilizedJackknife(benchmark::State& state) {
  const ndv::SampleSummary summary = MakeBenchSummary(state.range(0));
  const auto estimator = ndv::MakeEstimatorByName("DUJ2A");
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator->Estimate(summary));
  }
}
BENCHMARK(BM_StabilizedJackknife)->Arg(100000)->Arg(1000000);

void BM_AllEstimatorsOneSummary(benchmark::State& state) {
  const ndv::SampleSummary summary = MakeBenchSummary(1000000);
  const auto estimators = ndv::MakeAllEstimators();
  for (auto _ : state) {
    double total = 0.0;
    for (const auto& estimator : estimators) {
      total += estimator->Estimate(summary);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_AllEstimatorsOneSummary);

}  // namespace

BENCHMARK_MAIN();
