// Figures 3 & 4: standard deviation of the estimates (as a fraction of the
// true D) vs sampling rate, for Z=0 and Z=2. Same workload as Figures 1-2.
//
// Expected shape (paper): variance falls as the rate grows for every
// estimator; HYBSKEW has the worst variance on high-skew data (its branch
// flips between very different estimators across samples).

#include "bench_util.h"

namespace {

void RunFigure(const char* title, double z) {
  using namespace ndv;
  const auto column = bench::PaperColumn(1000000, z, 100);
  const int64_t actual = ExactDistinctHashSet(*column);
  const auto estimators = MakePaperComparisonEstimators();
  const auto results =
      RunSweep(*column, actual, PaperSamplingFractions(), estimators,
               bench::PaperRunOptions(/*seed=*/3));
  const TextTable table = MakeFigureTable(results, bench::RateLabels(),
                                          "rate", bench::StdDevFraction, 4);
  std::printf("(actual D = %lld)\n", static_cast<long long>(actual));
  PrintFigure(std::cout, title, table);
}

}  // namespace

int main() {
  std::printf("Reproducing Figures 3-4: stddev/D vs sampling rate\n");
  std::printf("(n = 1,000,000, duplication factor 100, 10 samples/point)\n");
  RunFigure("Figure 3: stddev/D vs sampling rate, Z=0 (low skew)", 0.0);
  RunFigure("Figure 4: stddev/D vs sampling rate, Z=2 (high skew)", 2.0);
  return 0;
}
