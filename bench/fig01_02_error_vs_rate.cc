// Figures 1 & 2: mean ratio error vs sampling rate on low-skew (Z=0) and
// high-skew (Z=2) data. n = 1,000,000 rows, duplication factor 100, ten
// samples per point (paper Section 6, "Varying the Sampling Rate").
//
// Expected shape (paper): on Z=0 HYBGEE == HYBSKEW (both take the smoothed
// jackknife branch) and GEE errs; on Z=2 HYBGEE == GEE and clearly beats
// HYBSKEW (whose Shlosser branch misfires). AE is consistently near 1.

#include "bench_util.h"

namespace {

void RunFigure(const char* title, double z) {
  using namespace ndv;
  const auto column = bench::PaperColumn(1000000, z, 100);
  const int64_t actual = ExactDistinctHashSet(*column);
  const auto estimators = MakePaperComparisonEstimators();
  const auto results =
      RunSweep(*column, actual, PaperSamplingFractions(), estimators,
               bench::PaperRunOptions());
  const TextTable table = MakeFigureTable(results, bench::RateLabels(),
                                          "rate", bench::MeanError);
  std::printf("(actual D = %lld)\n", static_cast<long long>(actual));
  PrintFigure(std::cout, title, table);
}

}  // namespace

int main() {
  std::printf("Reproducing Figures 1-2: ratio error vs sampling rate\n");
  std::printf("(n = 1,000,000, duplication factor 100, 10 samples/point)\n");
  RunFigure("Figure 1: error vs sampling rate, Z=0 (low skew)", 0.0);
  RunFigure("Figure 2: error vs sampling rate, Z=2 (high skew)", 2.0);
  return 0;
}
