// micro_serving — closed-loop and open-loop load generator for the NDV
// stats service (src/serve/). Not a google-benchmark binary: latency
// distributions under concurrency and pacing need a custom harness.
//
// Closed loop: `--clients` threads each issue `--requests` GET_STATS
// requests back to back through StatsService::Submit (the admission-
// controlled entry point), while a background writer publishes forced
// re-ANALYZE epochs — so the measured read path includes concurrent epoch
// publication, the regime the concurrent catalog exists for.
//
// Open loop: requests are scheduled at a fixed `--target-qps` and latency
// is measured from the *scheduled* start, so queueing delay from a slow
// server is charged to the request (no coordinated omission).
//
// Output: human-readable summary on stdout and a JSON report at --out
// (default BENCH_serving.json) with p50/p95/p99 for both loops.
//
//   ./build/bench/micro_serving --rows=100000 --clients=4
//       --requests=2000 --target-qps=2000 --out=BENCH_serving.json

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "catalog/durable_catalog.h"
#include "datagen/zipf.h"
#include "serve/protocol.h"
#include "serve/stats_service.h"
#include "table/table.h"

namespace {

using Clock = std::chrono::steady_clock;

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

struct LatencySummary {
  int64_t count = 0;
  double qps = 0.0;
  int64_t p50_ns = 0;
  int64_t p95_ns = 0;
  int64_t p99_ns = 0;
  int64_t max_ns = 0;
  double mean_ns = 0.0;
};

int64_t Percentile(const std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<size_t>(rank + 0.5)];
}

LatencySummary Summarize(std::vector<int64_t> latencies_ns,
                         int64_t wall_ns) {
  LatencySummary summary;
  summary.count = static_cast<int64_t>(latencies_ns.size());
  if (latencies_ns.empty()) return summary;
  std::sort(latencies_ns.begin(), latencies_ns.end());
  summary.p50_ns = Percentile(latencies_ns, 50);
  summary.p95_ns = Percentile(latencies_ns, 95);
  summary.p99_ns = Percentile(latencies_ns, 99);
  summary.max_ns = latencies_ns.back();
  double total = 0.0;
  for (const int64_t ns : latencies_ns) total += static_cast<double>(ns);
  summary.mean_ns = total / static_cast<double>(latencies_ns.size());
  if (wall_ns > 0) {
    summary.qps = static_cast<double>(latencies_ns.size()) /
                  (static_cast<double>(wall_ns) * 1e-9);
  }
  return summary;
}

void PrintSummary(const char* label, const LatencySummary& summary) {
  std::printf("%s: %lld requests, %.0f qps, p50 %.1f us, p95 %.1f us, "
              "p99 %.1f us, max %.1f us\n",
              label, static_cast<long long>(summary.count), summary.qps,
              static_cast<double>(summary.p50_ns) * 1e-3,
              static_cast<double>(summary.p95_ns) * 1e-3,
              static_cast<double>(summary.p99_ns) * 1e-3,
              static_cast<double>(summary.max_ns) * 1e-3);
}

void AppendSummaryJson(std::string* json, const LatencySummary& summary) {
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer),
                "{\"requests\": %lld, \"qps\": %.1f, "
                "\"p50_ns\": %lld, \"p95_ns\": %lld, \"p99_ns\": %lld, "
                "\"max_ns\": %lld, \"mean_ns\": %.1f}",
                static_cast<long long>(summary.count), summary.qps,
                static_cast<long long>(summary.p50_ns),
                static_cast<long long>(summary.p95_ns),
                static_cast<long long>(summary.p99_ns),
                static_cast<long long>(summary.max_ns), summary.mean_ns);
  json->append(buffer);
}

ndv::Message GetStatsRequest(const std::string& column) {
  ndv::Message request;
  request.type = ndv::MessageType::kGetStats;
  request.column = column;
  return request;
}

int64_t FlagInt(const std::map<std::string, std::string>& flags,
                const std::string& name, int64_t fallback) {
  const auto it = flags.find(name);
  return it == flags.end() ? fallback : std::stoll(it->second);
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 2;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg] = "true";
    } else {
      flags[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }

  const int64_t rows = FlagInt(flags, "rows", 100000);
  const int64_t dup = FlagInt(flags, "dup", 10);
  const int clients = static_cast<int>(FlagInt(flags, "clients", 4));
  const int64_t requests_per_client = FlagInt(flags, "requests", 2000);
  const int64_t target_qps = FlagInt(flags, "target-qps", 2000);
  const int64_t open_loop_requests = FlagInt(flags, "open-requests", 4000);
  const std::string out_path =
      flags.count("out") ? flags["out"] : "BENCH_serving.json";

  ndv::ZipfColumnOptions column_options;
  column_options.rows = rows;
  column_options.z = 1.0;
  column_options.dup_factor = dup;
  ndv::Table table;
  table.AddColumn("value", ndv::MakeZipfColumn(column_options));
  auto shared_table = std::make_shared<ndv::Table>(std::move(table));

  // Every publication during the run is journaled to a WAL, so the bench
  // ends by measuring the crash-recovery path: re-opening the durable
  // catalog and replaying the journal a restarted server would boot from.
  const std::string wal_dir =
      flags.count("wal-dir") ? flags["wal-dir"] : "bench_serving_wal";
  const int64_t snapshot_every = FlagInt(flags, "snapshot-every", 256);
  std::system(("rm -rf " + wal_dir).c_str());
  auto durable_or = ndv::DurableCatalog::Open(
      {.dir = wal_dir, .snapshot_every_records = snapshot_every});
  if (!durable_or.ok()) {
    std::fprintf(stderr, "cannot open durable catalog in %s: %s\n",
                 wal_dir.c_str(), durable_or.status().ToString().c_str());
    return 1;
  }
  auto durable = std::move(*durable_or);

  ndv::StatsServiceOptions service_options;
  service_options.analyze.sample_fraction = 0.01;
  service_options.analyze.threads = 1;
  service_options.durable = durable.get();
  ndv::StatsService service(std::move(shared_table), service_options);
  std::printf("serving 1 column of %lld rows at epoch %llu "
              "(journaling to %s)\n",
              static_cast<long long>(rows),
              static_cast<unsigned long long>(service.epoch()),
              wal_dir.c_str());

  const ndv::Message get_request = GetStatsRequest("value");

  // ---- Closed loop: `clients` threads, back-to-back requests, with a
  // writer publishing forced re-ANALYZE epochs throughout.
  std::atomic<bool> stop_writer{false};
  std::atomic<int64_t> epochs_published{0};
  std::thread writer([&] {
    ndv::Message analyze;
    analyze.type = ndv::MessageType::kAnalyze;
    analyze.force = true;
    while (!stop_writer.load(std::memory_order_acquire)) {
      const ndv::Message reply = service.Submit(analyze);
      if (reply.type == ndv::MessageType::kAnalyzeReply) {
        epochs_published.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  std::vector<std::vector<int64_t>> per_client(
      static_cast<size_t>(clients));
  std::atomic<int64_t> errors{0};
  const int64_t closed_start = NowNanos();
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        auto& latencies = per_client[static_cast<size_t>(c)];
        latencies.reserve(static_cast<size_t>(requests_per_client));
        for (int64_t i = 0; i < requests_per_client; ++i) {
          const int64_t start = NowNanos();
          const ndv::Message reply = service.Submit(get_request);
          latencies.push_back(NowNanos() - start);
          if (reply.type != ndv::MessageType::kStatsReply) {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  const int64_t closed_wall = NowNanos() - closed_start;
  stop_writer.store(true, std::memory_order_release);
  writer.join();

  std::vector<int64_t> closed_latencies;
  for (const auto& latencies : per_client) {
    closed_latencies.insert(closed_latencies.end(), latencies.begin(),
                            latencies.end());
  }
  const LatencySummary closed = Summarize(std::move(closed_latencies),
                                          closed_wall);
  PrintSummary("closed-loop", closed);
  std::printf("  %lld epochs published concurrently, %lld non-OK replies\n",
              static_cast<long long>(epochs_published.load()),
              static_cast<long long>(errors.load()));

  // ---- Open loop: fixed arrival schedule at target QPS; latency runs
  // from the scheduled start, so server-side stalls surface as queueing
  // delay instead of silently thinning the arrival rate.
  const int64_t interval_ns =
      target_qps > 0 ? 1000000000 / target_qps : 0;
  std::vector<int64_t> open_latencies;
  open_latencies.reserve(static_cast<size_t>(open_loop_requests));
  int64_t open_errors = 0;
  const int64_t open_start = NowNanos();
  for (int64_t i = 0; i < open_loop_requests; ++i) {
    const int64_t scheduled = open_start + i * interval_ns;
    while (NowNanos() < scheduled) {
      // Sub-millisecond pacing: spin rather than oversleep.
      std::this_thread::yield();
    }
    const ndv::Message reply = service.Submit(get_request);
    open_latencies.push_back(NowNanos() - scheduled);
    if (reply.type != ndv::MessageType::kStatsReply) ++open_errors;
  }
  const int64_t open_wall = NowNanos() - open_start;
  const LatencySummary open = Summarize(std::move(open_latencies),
                                        open_wall);
  PrintSummary("open-loop", open);
  std::printf("  target %lld qps, %lld non-OK replies\n",
              static_cast<long long>(target_qps),
              static_cast<long long>(open_errors));

  // ---- Recovery: boot a fresh catalog from the journal the run just
  // wrote (the writer is quiescent, so the on-disk store is stable). This
  // is exactly what `ndv_cli serve --wal-dir` does on restart; boot time
  // covers snapshot load + WAL replay.
  auto recovered_or = ndv::DurableCatalog::Open(
      {.dir = wal_dir, .snapshot_every_records = snapshot_every});
  if (!recovered_or.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 recovered_or.status().ToString().c_str());
    return 1;
  }
  const ndv::RecoveryInfo recovery = (*recovered_or)->recovery();
  std::printf("recovery: epoch %llu in %.3f ms (%lld snapshot entries, "
              "%lld WAL records replayed, %lld skipped)\n",
              static_cast<unsigned long long>(recovery.epoch),
              recovery.boot_millis,
              static_cast<long long>(recovery.snapshot_entries),
              static_cast<long long>(recovery.replayed_records),
              static_cast<long long>(recovery.skipped_records));

  std::string json = "{\n  \"config\": {";
  {
    char buffer[512];
    std::snprintf(buffer, sizeof(buffer),
                  "\"rows\": %lld, \"dup_factor\": %lld, \"clients\": %d, "
                  "\"requests_per_client\": %lld, \"target_qps\": %lld, "
                  "\"open_loop_requests\": %lld, \"epochs_published\": "
                  "%lld}",
                  static_cast<long long>(rows),
                  static_cast<long long>(dup), clients,
                  static_cast<long long>(requests_per_client),
                  static_cast<long long>(target_qps),
                  static_cast<long long>(open_loop_requests),
                  static_cast<long long>(epochs_published.load()));
    json.append(buffer);
  }
  json.append(",\n  \"closed_loop\": ");
  AppendSummaryJson(&json, closed);
  json.append(",\n  \"open_loop\": ");
  AppendSummaryJson(&json, open);
  json.append(",\n  \"recovery\": ");
  {
    char buffer[512];
    std::snprintf(buffer, sizeof(buffer),
                  "{\"boot_ms\": %.3f, \"epoch\": %llu, "
                  "\"snapshot_entries\": %lld, \"replayed_records\": %lld, "
                  "\"skipped_records\": %lld}",
                  recovery.boot_millis,
                  static_cast<unsigned long long>(recovery.epoch),
                  static_cast<long long>(recovery.snapshot_entries),
                  static_cast<long long>(recovery.replayed_records),
                  static_cast<long long>(recovery.skipped_records));
    json.append(buffer);
  }
  json.append("\n}\n");

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << json;
  std::printf("report written to %s\n", out_path.c_str());
  return 0;
}
