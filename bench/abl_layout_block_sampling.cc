// Ablation: physical row layout x block (page-level) sampling.
//
// The paper's experiments randomize the row layout and use row-level
// sampling. Real systems often sample whole pages instead, which is only
// sound when values are scattered. This ablation runs GEE/AE/HYBGEE on
// block samples over three layouts — random, clustered runs, and fully
// sorted — showing the (well-known) collapse of block sampling on
// clustered data, and that row-level sampling is layout-immune.

#include "bench_util.h"

#include "common/descriptive.h"
#include "sample/samplers.h"
#include "table/column_sampling.h"

namespace {

using namespace ndv;

constexpr int64_t kRowsPerBlock = 256;

EstimatorAggregate RunBlockTrials(const Column& column, int64_t actual,
                                  double fraction,
                                  const Estimator& estimator, int64_t trials,
                                  uint64_t seed) {
  const int64_t n = column.size();
  const int64_t total_blocks = (n + kRowsPerBlock - 1) / kRowsPerBlock;
  const int64_t blocks = std::max<int64_t>(
      1, static_cast<int64_t>(fraction * static_cast<double>(total_blocks)));
  Rng rng(seed);
  RunningStats errors;
  RunningStats estimates;
  for (int64_t t = 0; t < trials; ++t) {
    Rng trial_rng = rng.Fork();
    const auto rows = SampleBlocks(n, kRowsPerBlock, blocks, trial_rng);
    const SampleSummary summary = SummarizeRows(column, rows);
    const double estimate = estimator.Estimate(summary);
    estimates.Add(estimate);
    errors.Add(RatioError(estimate, static_cast<double>(actual)));
  }
  EstimatorAggregate aggregate;
  aggregate.estimator = std::string(estimator.name());
  aggregate.sampling_fraction = fraction;
  aggregate.actual_distinct = actual;
  aggregate.mean_estimate = estimates.mean();
  aggregate.mean_ratio_error = errors.mean();
  aggregate.stddev_fraction =
      estimates.PopulationStdDev() / static_cast<double>(actual);
  return aggregate;
}

}  // namespace

int main() {
  std::printf("Ablation: block (page-level) sampling vs row layout\n");
  std::printf("(Zipf Z=1, dup=100, n=1M, 1%% sample, blocks of %lld rows)\n",
              static_cast<long long>(kRowsPerBlock));

  const std::vector<std::pair<std::string, RowLayout>> layouts = {
      {"random", RowLayout::kRandom},
      {"clustered", RowLayout::kClustered},
      {"sorted", RowLayout::kSorted},
  };
  const char* names[] = {"GEE", "AE", "HYBGEE"};

  TextTable table({"layout", "sampling", "GEE", "AE", "HYBGEE"});
  for (const auto& [label, layout] : layouts) {
    ZipfColumnOptions options;
    options.rows = 1000000;
    options.z = 1.0;
    options.dup_factor = 100;
    options.layout = layout;
    options.cluster_run = 4096;
    const auto column = MakeZipfColumn(options);
    const int64_t actual = ExactDistinctHashSet(*column);

    // Row-level sampling: layout must not matter.
    {
      std::vector<std::string> row = {label, "row"};
      RunOptions run = bench::PaperRunOptions(/*seed=*/23);
      for (const char* name : names) {
        const auto estimator = MakeEstimatorByName(name);
        row.push_back(FormatDouble(
            RunTrials(*column, actual, 0.01, *estimator, run)
                .mean_ratio_error,
            2));
      }
      table.AddRow(std::move(row));
    }
    // Block sampling: collapses as clustering grows.
    {
      std::vector<std::string> row = {label, "block"};
      for (const char* name : names) {
        const auto estimator = MakeEstimatorByName(name);
        row.push_back(FormatDouble(
            RunBlockTrials(*column, actual, 0.01, *estimator, 10, 29)
                .mean_ratio_error,
            2));
      }
      table.AddRow(std::move(row));
    }
  }
  PrintFigure(std::cout, "Layout x block-sampling ablation", table);
  std::printf("Row sampling is identical across layouts (row order is "
              "irrelevant to a uniform row sample). Block sampling matches "
              "it on random layout but collapses on clustered/sorted data: "
              "a page of duplicates carries one class, so the profile looks "
              "far more redundant than the column is.\n");
  return 0;
}
