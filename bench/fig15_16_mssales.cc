// Figures 15 & 16: average ratio error and stddev/D over the 20 columns of
// the MSSales table vs sampling rate. The original is a proprietary
// Microsoft sales database (1,996,290 rows); MSSalesLike synthesizes a
// sales schema with the same scale and column-cardinality mix
// (DESIGN.md §4).
//
// Expected shape (paper): all estimators perform reasonably well;
// HYBSKEW/HYBGEE lowest error; HYBSKEW and DUJ2A show the most variance.

#include "bench_util.h"

#include "datagen/real_world_like.h"

int main() {
  using namespace ndv;
  std::printf("Reproducing Figures 15-16: MSSales (simulated), 1,996,290 "
              "rows, 20 columns\n");
  const Table sales = MakeMSSalesLike();
  const auto estimators = MakePaperComparisonEstimators();
  const auto results = RunTableSweep(sales, PaperSamplingFractions(),
                                     estimators, bench::PaperRunOptions(15));

  const TextTable errors = MakeTableFigure(
      results, bench::RateLabels(), "rate",
      [](const TableAggregate& a) { return a.mean_ratio_error; });
  PrintFigure(std::cout, "Figure 15: MSSales avg ratio error vs rate",
              errors);

  const TextTable stddevs = MakeTableFigure(
      results, bench::RateLabels(), "rate",
      [](const TableAggregate& a) { return a.mean_stddev_fraction; }, 4);
  PrintFigure(std::cout, "Figure 16: MSSales avg stddev/D vs rate", stddevs);
  return 0;
}
