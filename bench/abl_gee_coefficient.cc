// Ablation: GEE's sqrt(n/r) singleton coefficient.
//
// GEE has the form D_hat = K f1 + (d - f1). The paper picks K = sqrt(n/r),
// the geometric mean of the extreme scale-ups K = 1 (singletons represent
// only themselves) and K = n/r (singletons represent n f1 / r classes),
// to minimize worst-case RATIO error. This ablation sweeps K across that
// range on the two adversarial poles (all-heavy vs singleton-rich) plus
// the paper's Zipf workloads and reports worst-case error for each K.

#include <algorithm>
#include <cmath>

#include "bench_util.h"

#include "estimators/estimator.h"
#include "table/column_sampling.h"

namespace {

using namespace ndv;

// GEE with a configurable coefficient multiplier: K = factor * sqrt(n/r).
class ScaledGee final : public Estimator {
 public:
  explicit ScaledGee(double factor) : factor_(factor) {}
  std::string_view name() const override { return "ScaledGEE"; }
  double Estimate(const SampleSummary& summary) const override {
    CheckEstimatorInput(summary);
    const double d = static_cast<double>(summary.d());
    const double f1 = static_cast<double>(summary.f(1));
    const double k = factor_ * std::sqrt(1.0 / summary.q());
    return ApplySanityBounds(k * f1 + (d - f1), summary);
  }

 private:
  double factor_;
};

}  // namespace

int main() {
  std::printf("Ablation: GEE coefficient K = c * sqrt(n/r)\n");
  std::printf("(worst mean ratio error over Zipf Z in {0,1,2,4} x dup in "
              "{1,100}, n = 200K, rate 1%%)\n");

  const int64_t n = 200000;
  const double fraction = 0.01;
  TextTable table({"c (x sqrt(n/r))", "worst error", "Z0/dup100 err",
                   "Z4/dup1 err"});
  RunOptions options;
  options.trials = 10;
  options.seed = 7;
  for (double factor : {0.05, 0.25, 0.5, 1.0, 2.0, 4.0, 20.0}) {
    const ScaledGee estimator(factor);
    double worst = 1.0;
    double z0_dup100 = 0.0;
    double z4_dup1 = 0.0;
    for (double z : {0.0, 1.0, 2.0, 4.0}) {
      for (int64_t dup : {int64_t{1}, int64_t{100}}) {
        const auto column = bench::PaperColumn(n, z, dup);
        const auto aggregate =
            RunTrials(*column, ExactDistinctHashSet(*column), fraction,
                      estimator, options);
        worst = std::max(worst, aggregate.mean_ratio_error);
        if (z == 0.0 && dup == 100) z0_dup100 = aggregate.mean_ratio_error;
        if (z == 4.0 && dup == 1) z4_dup1 = aggregate.mean_ratio_error;
      }
    }
    table.AddRow({FormatDouble(factor, 2), FormatDouble(worst, 2),
                  FormatDouble(z0_dup100, 2), FormatDouble(z4_dup1, 2)});
  }
  PrintFigure(std::cout, "GEE coefficient ablation", table);
  std::printf("The worst-error column is U-shaped with its minimum within a "
              "small constant of c = 1 (the paper's geometric mean): "
              "smaller c under-counts singleton-rich data, larger c "
              "over-counts duplicated data.\n");
  return 0;
}
