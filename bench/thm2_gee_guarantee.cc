// Section 4 (Theorem 2): GEE's expected value is within e*sqrt(n/r) of the
// true D on every input. The theorem bounds the ratio of E[GEE] to D (the
// proof compares the two expectations term by term), so the experiment
// measures RatioError(mean estimate over trials, D) — the bias ratio — on
// a battery of natural and adversarial inputs, and compares it against the
// e*sqrt(n/r) ceiling and the Theorem 1 floor sqrt((n-r)/(2r) ln 2).
// (The per-sample ratio error can exceed the ceiling on the adversarial
// input: averaging estimates, not errors, is what the theorem promises.)

#include <algorithm>
#include <cmath>

#include "bench_util.h"

#include "common/descriptive.h"
#include "core/gee.h"
#include "core/lower_bound.h"

int main() {
  using namespace ndv;
  std::printf("Reproducing Theorem 2: GEE's distribution-independent "
              "guarantee\n(n = 200,000; worst bias ratio "
              "RatioError(E[GEE], D) over inputs:\n Zipf Z in {0..4} x dup "
              "in {1,100}, plus the Theorem 1 adversarial pair)\n");

  const int64_t n = 200000;
  TextTable table({"rate", "sqrt(n/r)", "Thm1 floor", "GEE worst bias ratio",
                   "guarantee e*sqrt(n/r)", "within?"});
  for (double fraction : {0.001, 0.004, 0.016, 0.064}) {
    const int64_t r = static_cast<int64_t>(fraction * n);
    double worst = 1.0;
    RunOptions options;
    options.trials = 10;
    options.seed = 1234;
    // Natural inputs.
    for (double z : {0.0, 1.0, 2.0, 3.0, 4.0}) {
      for (int64_t dup : {int64_t{1}, int64_t{100}}) {
        const auto column = bench::PaperColumn(n, z, dup);
        const int64_t actual = ExactDistinctHashSet(*column);
        const auto aggregate =
            RunTrials(*column, actual, fraction, Gee(), options);
        worst = std::max(worst, RatioError(aggregate.mean_estimate,
                                           static_cast<double>(actual)));
      }
    }
    // Adversarial pair (Scenario A: D=1; Scenario B: D=k+1).
    const AdversarialGameResult game =
        PlayAdversarialGame(Gee(), n, r, 0.5, 30, 55);
    worst = std::max(worst, RatioError(game.mean_estimate_a, 1.0));
    worst = std::max(worst, RatioError(game.mean_estimate_b,
                                       static_cast<double>(game.k + 1)));

    const double guarantee = GeeExpectedErrorBound(n, r);
    table.AddRow({FractionLabel(fraction),
                  FormatDouble(std::sqrt(1.0 / fraction), 2),
                  FormatDouble(TheoremOneErrorBound(n, r, 0.5), 2),
                  FormatDouble(worst, 2), FormatDouble(guarantee, 2),
                  worst <= guarantee ? "yes" : "NO"});
  }
  PrintFigure(std::cout, "Theorem 2: GEE worst-case bias vs guarantee",
              table);
  std::printf("GEE's worst bias ratio tracks sqrt(n/r) between the "
              "Theorem 1 floor and the e*sqrt(n/r) ceiling.\n");
  return 0;
}
