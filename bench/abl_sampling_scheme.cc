// Ablation: sampling scheme (without replacement vs with replacement vs
// Bernoulli). The paper samples without replacement via SQL Server but
// analyzes GEE under with-replacement sampling; this ablation verifies the
// estimators are insensitive to the scheme at database-scale fractions
// (where the schemes almost coincide) and quantifies the residual gap at a
// large fraction.

#include "bench_util.h"

int main() {
  using namespace ndv;
  std::printf("Ablation: sampling scheme effect on estimator error\n");
  std::printf("(Zipf Z=1, dup=10, n=1M, 10 trials/point)\n");

  const auto column = bench::PaperColumn(1000000, 1.0, 10);
  const int64_t actual = ExactDistinctHashSet(*column);
  std::printf("(actual D = %lld)\n", static_cast<long long>(actual));

  const std::vector<std::pair<std::string, SamplingScheme>> schemes = {
      {"without-repl", SamplingScheme::kWithoutReplacement},
      {"with-repl", SamplingScheme::kWithReplacement},
      {"bernoulli", SamplingScheme::kBernoulli},
  };
  const auto estimators = MakePaperComparisonEstimators();

  for (double fraction : {0.008, 0.2}) {
    TextTable table({"scheme", "GEE", "AE", "HYBGEE", "HYBSKEW", "HYBVAR",
                     "DUJ2A"});
    for (const auto& [label, scheme] : schemes) {
      RunOptions options = bench::PaperRunOptions(/*seed=*/19);
      options.scheme = scheme;
      std::vector<std::string> row = {label};
      for (const auto& aggregate : RunTrialsAllEstimators(
               *column, actual, fraction, estimators, options)) {
        row.push_back(FormatDouble(aggregate.mean_ratio_error, 3));
      }
      table.AddRow(std::move(row));
    }
    PrintFigure(std::cout,
                "Sampling-scheme ablation at rate " + FractionLabel(fraction),
                table);
  }
  std::printf("At database-scale rates the three schemes agree; only at "
              "very large fractions does with-replacement drift (it can "
              "re-draw rows, so its effective coverage is lower).\n");
  return 0;
}
