// Ablation: AE's exact-power fixed point vs the paper's exponential
// approximation. Section 5.3 derives the equation with (1 - i/r)^r terms
// and then simplifies them to e^{-i}; this ablation quantifies how much
// the simplification costs (in accuracy and in solver behavior) across the
// paper's workloads.

#include <cmath>

#include "bench_util.h"

#include "core/adaptive_estimator.h"

int main() {
  using namespace ndv;
  std::printf("Ablation: AE exact-power vs exponential-approximation "
              "fixed point\n(n = 1M, dup=100, 10 trials/point)\n");

  const AdaptiveEstimator exact(AeVariant::kExactPower);
  const AdaptiveEstimator approx(AeVariant::kExpApproximation);

  for (double fraction : {0.008, 0.064}) {
    TextTable table({"skew", "AE exact err", "AE exp err",
                     "mean |exact-exp|/exact"});
    for (double z : {0.0, 1.0, 2.0, 3.0, 4.0}) {
      const auto column = bench::PaperColumn(1000000, z, 100);
      const int64_t actual = ExactDistinctHashSet(*column);
      RunOptions options = bench::PaperRunOptions(/*seed=*/37);
      const auto agg_exact =
          RunTrials(*column, actual, fraction, exact, options);
      const auto agg_approx =
          RunTrials(*column, actual, fraction, approx, options);
      const double divergence =
          std::fabs(agg_exact.mean_estimate - agg_approx.mean_estimate) /
          agg_exact.mean_estimate;
      table.AddRow({"Z=" + FormatDouble(z, 0),
                    FormatDouble(agg_exact.mean_ratio_error, 3),
                    FormatDouble(agg_approx.mean_ratio_error, 3),
                    FormatDouble(divergence, 4)});
    }
    PrintFigure(std::cout,
                "AE variant ablation at rate " + FractionLabel(fraction),
                table);
  }
  std::printf("The exponential simplification tracks the exact form "
              "closely at database-scale rates: (1 - i/r)^r ~ e^{-i} is "
              "tight once r >> i.\n");
  return 0;
}
