// Figures 5 & 6: mean ratio error vs data skew Z in {0,1,2,3,4} at a low
// (0.8%) and a high (6.4%) sampling rate. n = 1,000,000, duplication 100.
//
// Expected shape (paper): HYBGEE <= HYBSKEW everywhere; AE best at the low
// rate with error very close to 1; at 6.4% every estimator is near 1 and
// GEE/HYBGEE have extremely small errors.

#include "bench_util.h"

namespace {

void RunFigure(const char* title, double fraction) {
  using namespace ndv;
  const std::vector<double> skews = {0.0, 1.0, 2.0, 3.0, 4.0};
  const auto estimators = MakePaperComparisonEstimators();
  std::vector<EstimatorAggregate> results;
  std::vector<std::string> labels;
  for (double z : skews) {
    const auto column = bench::PaperColumn(1000000, z, 100);
    const int64_t actual = ExactDistinctHashSet(*column);
    labels.push_back("Z=" + FormatDouble(z, 0) +
                     " (D=" + std::to_string(actual) + ")");
    for (const auto& aggregate :
         RunSweep(*column, actual, {fraction}, estimators,
                  bench::PaperRunOptions(/*seed=*/5))) {
      results.push_back(aggregate);
    }
  }
  const TextTable table =
      MakeFigureTable(results, labels, "skew", bench::MeanError);
  PrintFigure(std::cout, title, table);
}

}  // namespace

int main() {
  std::printf("Reproducing Figures 5-6: ratio error vs skew\n");
  std::printf("(n = 1,000,000, duplication factor 100, 10 samples/point)\n");
  RunFigure("Figure 5: error vs skew, sampling rate 0.8%", 0.008);
  RunFigure("Figure 6: error vs skew, sampling rate 6.4%", 0.064);
  return 0;
}
