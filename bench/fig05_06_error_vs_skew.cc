// Figures 5 & 6: mean ratio error vs data skew Z in {0,1,2,3,4} at a low
// (0.8%) and a high (6.4%) sampling rate. n = 1,000,000, duplication 100.
//
// Expected shape (paper): HYBGEE <= HYBSKEW everywhere; AE best at the low
// rate with error very close to 1; at 6.4% every estimator is near 1 and
// GEE/HYBGEE have extremely small errors.
//
// Each skew point (generate 1M-row column + run sweep) is one ParallelFor
// task; per-point seeds are fixed, so output is identical to the serial
// loop at any thread count.

#include "bench_util.h"

namespace {

void RunFigure(const char* title, double fraction) {
  using namespace ndv;
  const std::vector<double> skews = {0.0, 1.0, 2.0, 3.0, 4.0};
  const auto estimators = MakePaperComparisonEstimators();
  const bench::WallTimer timer;
  std::vector<std::vector<EstimatorAggregate>> per_point(skews.size());
  std::vector<std::string> labels(skews.size());
  ParallelFor(static_cast<int64_t>(skews.size()), DefaultThreadCount(),
              [&](int64_t i) {
                const double z = skews[static_cast<size_t>(i)];
                const auto column = bench::PaperColumn(1000000, z, 100);
                const int64_t actual = ExactDistinctHashSet(*column);
                labels[static_cast<size_t>(i)] =
                    "Z=" + FormatDouble(z, 0) + " (D=" +
                    std::to_string(actual) + ")";
                per_point[static_cast<size_t>(i)] =
                    RunSweep(*column, actual, {fraction}, estimators,
                             bench::PaperRunOptions(/*seed=*/5));
              });
  std::vector<EstimatorAggregate> results;
  for (auto& block : per_point) {
    for (auto& aggregate : block) results.push_back(std::move(aggregate));
  }
  const TextTable table =
      MakeFigureTable(results, labels, "skew", bench::MeanError);
  PrintFigure(std::cout, title, table);
  bench::PrintFigureTiming(std::cout, title, results, labels, "skew", timer);
}

}  // namespace

int main() {
  std::printf("Reproducing Figures 5-6: ratio error vs skew\n");
  std::printf("(n = 1,000,000, duplication factor 100, 10 samples/point)\n");
  RunFigure("Figure 5: error vs skew, sampling rate 0.8%", 0.008);
  RunFigure("Figure 6: error vs skew, sampling rate 6.4%", 0.064);
  return 0;
}
