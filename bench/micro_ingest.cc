// Microbenchmarks: ingestion and time-to-first-estimate, CSV text parse vs
// ndvpack mmap. The claim under test is the storage layer's reason to
// exist: a packed table re-opens in O(header) — pages fault in lazily as
// the scan touches them — so a *repeat* ANALYZE pays nothing to re-ingest,
// while the CSV path re-parses every byte of text each time.
//
//   ./build/bench/micro_ingest --benchmark_format=json
//
// Fixtures (written once per process into the temp dir): a 1M-row table
// with int64 / double / string columns, stored both as CSV text and as an
// .ndvpack image of the same data.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "catalog/stats_catalog.h"
#include "common/check.h"
#include "common/random.h"
#include "storage/mapped_file.h"
#include "storage/ndvpack.h"
#include "storage/pack_codec.h"
#include "storage/pack_writer.h"
#include "storage/table_loader.h"
#include "table/csv.h"
#include "table/table.h"

namespace {

constexpr int64_t kRows = 1000000;

ndv::Table MakeTable() {
  std::vector<int64_t> ids;
  std::vector<double> scores;
  std::vector<std::string> labels;
  ids.reserve(kRows);
  scores.reserve(kRows);
  labels.reserve(kRows);
  ndv::Rng rng(67);
  for (int64_t i = 0; i < kRows; ++i) {
    ids.push_back(static_cast<int64_t>(rng.NextBounded(200000)));
    scores.push_back(static_cast<double>(rng.NextBounded(100000)) / 128.0);
    labels.push_back("label_" + std::to_string(rng.NextBounded(5000)));
  }
  ndv::Table table;
  table.AddColumn("id", std::make_unique<ndv::Int64Column>(std::move(ids)));
  table.AddColumn("score",
                  std::make_unique<ndv::DoubleColumn>(std::move(scores)));
  table.AddColumn("label",
                  std::make_unique<ndv::StringColumn>(std::move(labels)));
  return table;
}

struct Fixture {
  std::string csv_path;
  std::string pack_path;
};

// Writes both fixture files exactly once per process.
const Fixture& GetFixture() {
  static const Fixture fixture = [] {
    Fixture f;
    const char* tmpdir = std::getenv("TMPDIR");
    const std::string dir = tmpdir != nullptr ? tmpdir : "/tmp";
    f.csv_path = dir + "/ndv_micro_ingest.csv";
    f.pack_path = dir + "/ndv_micro_ingest.ndvpack";

    const ndv::Table table = MakeTable();
    NDV_CHECK(ndv::WritePackFile(table, f.pack_path).ok());

    std::string csv = "id,score,label\n";
    csv.reserve(40u * kRows);
    char line[128];
    for (int64_t i = 0; i < kRows; ++i) {
      std::snprintf(line, sizeof(line), "%s,%s,%s\n",
                    table.column(0).ValueToString(i).c_str(),
                    table.column(1).ValueToString(i).c_str(),
                    table.column(2).ValueToString(i).c_str());
      csv += line;
    }
    std::FILE* out = std::fopen(f.csv_path.c_str(), "wb");
    NDV_CHECK(out != nullptr);
    NDV_CHECK(std::fwrite(csv.data(), 1, csv.size(), out) == csv.size());
    std::fclose(out);
    return f;
  }();
  return fixture;
}

// --------------------------------------------------------------------------
// Load only: text parse vs mmap open.

void BM_LoadCsv(benchmark::State& state) {
  const Fixture& fixture = GetFixture();
  for (auto _ : state) {
    auto table = ndv::LoadTableAuto(fixture.csv_path);
    NDV_CHECK(table.ok());
    benchmark::DoNotOptimize(table->NumRows());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_LoadCsv)->Unit(benchmark::kMillisecond);

void BM_LoadPack(benchmark::State& state) {
  const Fixture& fixture = GetFixture();
  for (auto _ : state) {
    auto table = ndv::LoadTableAuto(fixture.pack_path);
    NDV_CHECK(table.ok());
    benchmark::DoNotOptimize(table->NumRows());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_LoadPack)->Unit(benchmark::kMillisecond);

// --------------------------------------------------------------------------
// Time-to-first-estimate: load + full ANALYZE of every column. This is the
// repeat-ANALYZE loop an operator actually runs: the file already exists;
// each iteration re-ingests and re-estimates. The pack path amortizes
// ingestion to an mmap call, so its steady-state cost is the sampling scan
// alone.

void AnalyzeOnce(const std::string& path, benchmark::State& state) {
  auto table = ndv::LoadTableAuto(path);
  NDV_CHECK(table.ok());
  ndv::AnalyzeOptions options;
  options.sample_fraction = 0.01;
  options.seed = 5;
  options.threads = 1;
  const ndv::StatsCatalog catalog = ndv::AnalyzeTable(*table, options);
  NDV_CHECK(catalog.entries().size() == 3);
  benchmark::DoNotOptimize(catalog.entries().front().estimate);
  (void)state;
}

void BM_FirstEstimateCsv(benchmark::State& state) {
  const Fixture& fixture = GetFixture();
  for (auto _ : state) AnalyzeOnce(fixture.csv_path, state);
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_FirstEstimateCsv)->Unit(benchmark::kMillisecond);

void BM_FirstEstimatePack(benchmark::State& state) {
  const Fixture& fixture = GetFixture();
  for (auto _ : state) AnalyzeOnce(fixture.pack_path, state);
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_FirstEstimatePack)->Unit(benchmark::kMillisecond);

// --------------------------------------------------------------------------
// One-time conversion cost, for the pack-once/scan-forever tradeoff: how
// long the `ndv_pack` step itself takes (parse CSV + serialize + write).

void BM_PackFromCsv(benchmark::State& state) {
  const Fixture& fixture = GetFixture();
  const std::string out_path = fixture.pack_path + ".rewrite";
  for (auto _ : state) {
    auto table = ndv::LoadTableAuto(fixture.csv_path);
    NDV_CHECK(table.ok());
    NDV_CHECK(ndv::WritePackFile(*table, out_path).ok());
  }
  std::remove(out_path.c_str());
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_PackFromCsv)->Unit(benchmark::kMillisecond);

// --------------------------------------------------------------------------
// Block codecs (v2): pack size and scan cost per codec policy on a table
// shaped like real warehouse data — a sorted (delta-friendly) int64 key, a
// uniform (incompressible) double, a 50-value (dict-friendly) label. The
// claim: auto shrinks the file several-fold while the sampled ANALYZE scan
// stays within noise of raw, because untouched blocks are never decoded.

ndv::Table MakeCompressibleTable() {
  std::vector<int64_t> keys;
  std::vector<double> scores;
  std::vector<std::string> labels;
  keys.reserve(kRows);
  scores.reserve(kRows);
  labels.reserve(kRows);
  ndv::Rng rng(83);
  int64_t key = 1000000000;
  for (int64_t i = 0; i < kRows; ++i) {
    key += static_cast<int64_t>(rng.NextBounded(100));
    keys.push_back(key);
    scores.push_back(static_cast<double>(rng.NextBounded(1000000)) / 64.0);
    labels.push_back("region_" + std::to_string(rng.NextBounded(50)));
  }
  ndv::Table table;
  table.AddColumn("key", std::make_unique<ndv::Int64Column>(std::move(keys)));
  table.AddColumn("score",
                  std::make_unique<ndv::DoubleColumn>(std::move(scores)));
  table.AddColumn("label",
                  std::make_unique<ndv::StringColumn>(std::move(labels)));
  return table;
}

ndv::PackCodecChoice CodecArg(int64_t arg) {
  switch (arg) {
    case 1: return ndv::PackCodecChoice::kForceRaw;
    case 2: return ndv::PackCodecChoice::kForceDelta;
    case 3: return ndv::PackCodecChoice::kForceDict;
  }
  return ndv::PackCodecChoice::kAutoCodec;
}

// One packed fixture per codec policy, written once per process; the
// file-size counter is the on-disk compression result.
const std::string& GetCodecFixture(int64_t arg, uint64_t* file_bytes) {
  static std::string paths[4];
  static uint64_t sizes[4];
  const auto index = static_cast<size_t>(arg);
  if (paths[index].empty()) {
    const char* tmpdir = std::getenv("TMPDIR");
    const std::string dir = tmpdir != nullptr ? tmpdir : "/tmp";
    paths[index] = dir + "/ndv_micro_ingest_codec_" +
                   ndv::PackCodecChoiceName(CodecArg(arg)) + ".ndvpack";
    ndv::PackWriteOptions options;
    options.codec = CodecArg(arg);
    const ndv::Table table = MakeCompressibleTable();
    NDV_CHECK(ndv::WritePackFileV2(table, paths[index], options).ok());
    auto mapped = ndv::MappedFile::Open(paths[index]);
    NDV_CHECK(mapped.ok());
    sizes[index] = (*mapped)->size();
  }
  *file_bytes = sizes[index];
  return paths[index];
}

// Conversion cost per codec (encode side).
void BM_PackWriteCodec(benchmark::State& state) {
  const ndv::Table table = MakeCompressibleTable();
  ndv::PackWriteOptions options;
  options.codec = CodecArg(state.range(0));
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string out_path =
      std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
      "/ndv_micro_ingest_codec.rewrite";
  for (auto _ : state) {
    NDV_CHECK(ndv::WritePackFileV2(table, out_path, options).ok());
  }
  {
    auto mapped = ndv::MappedFile::Open(out_path);
    NDV_CHECK(mapped.ok());
    state.counters["file_bytes"] = static_cast<double>((*mapped)->size());
  }
  std::remove(out_path.c_str());
  state.SetItemsProcessed(state.iterations() * kRows);
  state.SetLabel(ndv::PackCodecChoiceName(options.codec));
}
BENCHMARK(BM_PackWriteCodec)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

// Sampled ANALYZE over each codec: the lazy block decode keeps this within
// noise of raw even when the file is several times smaller.
void BM_FirstEstimatePackCodec(benchmark::State& state) {
  uint64_t file_bytes = 0;
  const std::string& path = GetCodecFixture(state.range(0), &file_bytes);
  for (auto _ : state) AnalyzeOnce(path, state);
  state.counters["file_bytes"] = static_cast<double>(file_bytes);
  state.SetItemsProcessed(state.iterations() * kRows);
  state.SetLabel(ndv::PackCodecChoiceName(CodecArg(state.range(0))));
}
BENCHMARK(BM_FirstEstimatePackCodec)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Full-scan exact count over each codec: the upper bound on decode
// overhead (every block decompresses exactly once per scan).
void BM_ExactScanPackCodec(benchmark::State& state) {
  uint64_t file_bytes = 0;
  const std::string& path = GetCodecFixture(state.range(0), &file_bytes);
  auto table = ndv::LoadTableAuto(path);
  NDV_CHECK(table.ok());
  for (auto _ : state) {
    int64_t total = 0;
    for (int64_t c = 0; c < table->NumColumns(); ++c) {
      total += ndv::ExactDistinctHashSet(table->column(c), 1);
    }
    benchmark::DoNotOptimize(total);
  }
  state.counters["file_bytes"] = static_cast<double>(file_bytes);
  state.SetItemsProcessed(state.iterations() * kRows * table->NumColumns());
  state.SetLabel(ndv::PackCodecChoiceName(CodecArg(state.range(0))));
}
BENCHMARK(BM_ExactScanPackCodec)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
