// Figures 7 & 8: mean ratio error vs duplication factor in {1,10,100,1000}
// on Z=1 data at a low (0.8%) and a high (6.4%) sampling rate.
// n = 1,000,000 rows.
//
// Expected shape (paper): HYBGEE significantly beats HYBSKEW across the
// range; errors generally fall as duplication rises (large duplication
// pushes every class into the sample); HYBSKEW bumps UP from dup=1 to
// dup=10 at the low rate (Shlosser's invalid assumptions).

#include "bench_util.h"

namespace {

void RunFigure(const char* title, double fraction) {
  using namespace ndv;
  const std::vector<int64_t> dups = {1, 10, 100, 1000};
  const auto estimators = MakePaperComparisonEstimators();
  std::vector<EstimatorAggregate> results;
  std::vector<std::string> labels;
  for (int64_t dup : dups) {
    const auto column = bench::PaperColumn(1000000, 1.0, dup);
    const int64_t actual = ExactDistinctHashSet(*column);
    labels.push_back("dup=" + std::to_string(dup) +
                     " (D=" + std::to_string(actual) + ")");
    for (const auto& aggregate :
         RunSweep(*column, actual, {fraction}, estimators,
                  bench::PaperRunOptions(/*seed=*/7))) {
      results.push_back(aggregate);
    }
  }
  const TextTable table =
      MakeFigureTable(results, labels, "duplication", bench::MeanError);
  PrintFigure(std::cout, title, table);
}

}  // namespace

int main() {
  std::printf("Reproducing Figures 7-8: ratio error vs duplication factor\n");
  std::printf("(n = 1,000,000, Z=1, 10 samples/point)\n");
  RunFigure("Figure 7: error vs duplication, sampling rate 0.8%", 0.008);
  RunFigure("Figure 8: error vs duplication, sampling rate 6.4%", 0.064);
  return 0;
}
