// Section 3 (Theorem 1): the estimation lower bound, empirically.
//
// (a) Evaluates the bound sqrt((n-r)/(2r) ln(1/gamma)) across sampling
//     fractions — including the paper's calibration point: at r = 0.2 n and
//     gamma = 0.5 the bound is 1.18, matching the best errors Haas et al.
//     observed in practice (Shlosser 1.58, smoothed jackknife 2.86,
//     hybrid 1.42 at 20% sampling).
// (b) Plays the Scenario A/B game against every estimator in the library:
//     each must incur error >= sqrt(k) on one of the scenarios in at least
//     a ~gamma fraction of trials.

#include "bench_util.h"

#include "core/gee.h"
#include "core/lower_bound.h"
#include "core/probe_strategy.h"

int main() {
  using namespace ndv;
  std::printf("Reproducing Section 3: the Theorem 1 lower bound\n");

  {
    TextTable table({"sampling fraction", "gamma", "bound", "adversarial k",
                     "P[sample all-heavy]"});
    const int64_t n = 1000000;
    for (double fraction : {0.002, 0.008, 0.032, 0.064, 0.2}) {
      const int64_t r = static_cast<int64_t>(fraction * n);
      for (double gamma : {0.5, 0.9}) {
        const int64_t k = TheoremOneK(n, r, gamma);
        table.AddRow({FractionLabel(fraction), FormatDouble(gamma, 1),
                      FormatDouble(TheoremOneErrorBound(n, r, gamma), 3),
                      std::to_string(k),
                      FormatDouble(ScenarioBAllHeavyProbability(n, k, r), 3)});
      }
    }
    PrintFigure(std::cout, "Theorem 1 bound across sampling fractions",
                table);
    std::printf("Paper calibration check: r=20%% of n, gamma=0.5 -> bound "
                "%.3f (paper: 1.18)\n",
                TheoremOneErrorBound(n, n / 5, 0.5));
  }

  {
    const int64_t n = 1000000;
    const int64_t r = 10000;
    const double gamma = 0.5;
    TextTable table({"estimator", "mean err A", "mean err B",
                     "P[err >= bound]"});
    for (const auto& estimator : MakeAllEstimators()) {
      const AdversarialGameResult result =
          PlayAdversarialGame(*estimator, n, r, gamma, 20, 31337);
      table.AddRow({std::string(estimator->name()),
                    FormatDouble(result.mean_error_a, 2),
                    FormatDouble(result.mean_error_b, 2),
                    FormatDouble(result.fraction_at_least_bound, 2)});
    }
    std::printf("\nScenario game: n=1M, r=10K (1%%), gamma=0.5, bound=%.2f, "
                "20 rounds per estimator\n",
                TheoremOneErrorBound(n, r, gamma));
    PrintFigure(std::cout,
                "Theorem 1 adversarial game vs every estimator", table);
  }

  {
    // The theorem's full strength: ADAPTIVE probing strategies (each probe
    // chosen from the values seen so far) fare no better.
    const int64_t n = 1000000;
    const int64_t r = 10000;
    TextTable table({"probe strategy", "mean err A", "mean err B",
                     "P[err >= bound]"});
    const Gee gee;
    for (auto& strategy : MakeAllProbeStrategies()) {
      const ProbeGameResult result =
          PlayProbeGame(*strategy, gee, n, r, 0.5, 20, 2718);
      table.AddRow({result.strategy, FormatDouble(result.mean_error_a, 2),
                    FormatDouble(result.mean_error_b, 2),
                    FormatDouble(result.fraction_at_least_bound, 2)});
    }
    std::printf("\nAdaptive probing (GEE as the estimator): the strategies "
                "see every previous value\nbefore choosing the next row — "
                "and still cannot beat the bound.\n");
    PrintFigure(std::cout,
                "Theorem 1 vs adaptive probing strategies", table);
  }
  return 0;
}
