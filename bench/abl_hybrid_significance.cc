// Ablation: the hybrid estimators' chi-squared significance level.
//
// HYBSKEW/HYBGEE route each sample through a chi-squared uniformity test;
// the significance level controls how eagerly samples are declared
// high-skew. The paper's criticism — instability near the decision
// boundary — shows up as error and variance sensitivity to this knob on
// mid-skew data. This ablation sweeps the level on Z in {0, 1, 2} data.

#include "bench_util.h"

#include "core/hybgee.h"
#include "estimators/hybrid.h"
#include "table/column_sampling.h"

int main() {
  using namespace ndv;
  std::printf("Ablation: chi-squared significance level of HYBGEE/HYBSKEW\n");
  std::printf("(n = 1M, dup=100, rate 0.8%%, 10 trials)\n");

  for (double z : {0.0, 1.0, 2.0}) {
    const auto column = bench::PaperColumn(1000000, z, 100);
    const int64_t actual = ExactDistinctHashSet(*column);
    TextTable table({"significance", "HYBGEE err", "HYBGEE stddev/D",
                     "HYBSKEW err", "HYBSKEW stddev/D", "GEE-branch rate"});
    for (double significance : {0.5, 0.9, 0.975, 0.999}) {
      const HybGee hybgee(significance);
      const HybSkew hybskew(significance);
      RunOptions options = bench::PaperRunOptions(/*seed=*/31);
      const auto agg_gee =
          RunTrials(*column, actual, 0.008, hybgee, options);
      const auto agg_skew =
          RunTrials(*column, actual, 0.008, hybskew, options);
      // How often the skew test fires across independent samples.
      Rng rng(55);
      int high_skew = 0;
      for (int t = 0; t < 10; ++t) {
        const SampleSummary sample =
            SampleColumnFraction(*column, 0.008, rng);
        if (hybgee.WouldUseGeeBranch(sample)) ++high_skew;
      }
      table.AddRow({FormatDouble(significance, 3),
                    FormatDouble(agg_gee.mean_ratio_error, 3),
                    FormatDouble(agg_gee.stddev_fraction, 4),
                    FormatDouble(agg_skew.mean_ratio_error, 3),
                    FormatDouble(agg_skew.stddev_fraction, 4),
                    FormatDouble(high_skew / 10.0, 1)});
    }
    PrintFigure(std::cout,
                "Hybrid significance ablation, Z=" + FormatDouble(z, 0) +
                    " (D=" + std::to_string(actual) + ")",
                table);
  }
  std::printf("On clearly-low or clearly-high skew the level barely "
              "matters (branch rate pinned at 0 or 1). Sensitivity would "
              "appear between the regimes — the instability the paper's AE "
              "removes by construction.\n");
  return 0;
}
