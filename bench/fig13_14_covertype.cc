// Figures 13 & 14: average ratio error and stddev/D over the 11 CoverType
// columns vs sampling rate. Simulated stand-in for the UCI CoverType data
// (581,012 rows; DESIGN.md §4).
//
// Expected shape (paper): GEE/AE/HYBGEE more accurate than HYBSKEW;
// HYBGEE better than both GEE and HYBSKEW; small, decreasing variance.

#include "bench_util.h"

#include "datagen/real_world_like.h"

int main() {
  using namespace ndv;
  std::printf("Reproducing Figures 13-14: CoverType (simulated), 581,012 "
              "rows, 11 columns\n");
  const Table cover = MakeCoverTypeLike();
  const auto estimators = MakePaperComparisonEstimators();
  const auto results = RunTableSweep(cover, PaperSamplingFractions(),
                                     estimators, bench::PaperRunOptions(13));

  const TextTable errors = MakeTableFigure(
      results, bench::RateLabels(), "rate",
      [](const TableAggregate& a) { return a.mean_ratio_error; });
  PrintFigure(std::cout, "Figure 13: CoverType avg ratio error vs rate",
              errors);

  const TextTable stddevs = MakeTableFigure(
      results, bench::RateLabels(), "rate",
      [](const TableAggregate& a) { return a.mean_stddev_fraction; }, 4);
  PrintFigure(std::cout, "Figure 14: CoverType avg stddev/D vs rate",
              stddevs);
  return 0;
}
