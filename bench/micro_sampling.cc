// Microbenchmarks: row-sampling schemes and sample summarization — the
// I/O-side cost of sampling-based estimation.

#include <benchmark/benchmark.h>

#include "datagen/zipf.h"
#include "sample/samplers.h"
#include "table/column_sampling.h"

namespace {

constexpr int64_t kTableRows = 1000000;
constexpr int64_t kSampleRows = 10000;

void BM_SampleWithReplacement(benchmark::State& state) {
  ndv::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ndv::SampleWithReplacement(kTableRows, state.range(0), rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SampleWithReplacement)->Arg(kSampleRows)->Arg(8 * kSampleRows);

void BM_SampleFloyd(benchmark::State& state) {
  ndv::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ndv::SampleWithoutReplacementFloyd(kTableRows, state.range(0), rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SampleFloyd)->Arg(kSampleRows)->Arg(8 * kSampleRows);

void BM_SampleFisherYates(benchmark::State& state) {
  ndv::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ndv::SampleWithoutReplacementFisherYates(
        kTableRows, state.range(0), rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SampleFisherYates)->Arg(kSampleRows)->Arg(8 * kSampleRows);

void BM_SampleBernoulli(benchmark::State& state) {
  ndv::Rng rng(4);
  const double q =
      static_cast<double>(state.range(0)) / static_cast<double>(kTableRows);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ndv::SampleBernoulli(kTableRows, q, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SampleBernoulli)->Arg(kSampleRows)->Arg(8 * kSampleRows);

void BM_ReservoirL(benchmark::State& state) {
  for (auto _ : state) {
    ndv::ReservoirSamplerL sampler(state.range(0), ndv::Rng(5));
    for (int64_t i = 0; i < kTableRows; ++i) {
      sampler.Add(static_cast<uint64_t>(i));
    }
    benchmark::DoNotOptimize(sampler.sample());
  }
  state.SetItemsProcessed(state.iterations() * kTableRows);
}
BENCHMARK(BM_ReservoirL)->Arg(kSampleRows);

void BM_ReservoirR(benchmark::State& state) {
  for (auto _ : state) {
    ndv::ReservoirSamplerR sampler(state.range(0), ndv::Rng(6));
    for (int64_t i = 0; i < kTableRows; ++i) {
      sampler.Add(static_cast<uint64_t>(i));
    }
    benchmark::DoNotOptimize(sampler.sample());
  }
  state.SetItemsProcessed(state.iterations() * kTableRows);
}
BENCHMARK(BM_ReservoirR)->Arg(kSampleRows);

void BM_SummarizeSample(benchmark::State& state) {
  ndv::ZipfColumnOptions options;
  options.rows = kTableRows;
  options.z = 1.0;
  options.dup_factor = 10;
  const auto column = ndv::MakeZipfColumn(options);
  ndv::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ndv::SampleColumn(
        *column, state.range(0), ndv::SamplingScheme::kWithoutReplacement,
        rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SummarizeSample)->Arg(kSampleRows)->Arg(8 * kSampleRows);

}  // namespace

BENCHMARK_MAIN();
