// Figures 9 & 10: scale-up experiments.
//
// Bounded-domain (Fig. 9): a Zipf Z=2 base of 1000 rows fixes D; the table
// grows from 100K to 1M rows by duplicating every value; the sample is
// FIXED at 10,000 rows. Expected shape: every estimator's error is flat in
// n except HYBVAR, whose modified-Shlosser branch cannot detect the
// duplication and overestimates roughly linearly in n.
//
// Unbounded-domain (Fig. 10): Z=2 with duplication factor 100 and a fixed
// 1.6% sampling RATE; D grows with n. Expected shape: flat for everything
// except HYBVAR, which jumps when its gamma^2 selector switches branches.

#include "bench_util.h"

namespace {

void RunBounded() {
  using namespace ndv;
  const auto estimators = MakePaperComparisonEstimators();
  std::vector<EstimatorAggregate> results;
  std::vector<std::string> labels;
  for (int64_t n = 100000; n <= 1000000; n += 100000) {
    // Base of 1000 Zipf rows; every value copied n/1000 times.
    const auto column = bench::PaperColumn(n, 2.0, n / 1000);
    const int64_t actual = ExactDistinctHashSet(*column);
    labels.push_back(std::to_string(n / 1000) + "K rows");
    const double fraction = 10000.0 / static_cast<double>(n);
    for (const auto& aggregate :
         RunSweep(*column, actual, {fraction}, estimators,
                  bench::PaperRunOptions(/*seed=*/9))) {
      results.push_back(aggregate);
    }
  }
  const TextTable table = MakeFigureTable(results, labels, "n",
                                          bench::MeanError);
  PrintFigure(std::cout,
              "Figure 9: bounded-domain scaleup (fixed D, fixed 10K-row "
              "sample)",
              table);
}

void RunUnbounded() {
  using namespace ndv;
  const auto estimators = MakePaperComparisonEstimators();
  std::vector<EstimatorAggregate> results;
  std::vector<std::string> labels;
  for (int64_t n = 100000; n <= 1000000; n += 100000) {
    const auto column = bench::PaperColumn(n, 2.0, 100);
    const int64_t actual = ExactDistinctHashSet(*column);
    labels.push_back(std::to_string(n / 1000) + "K rows (D=" +
                     std::to_string(actual) + ")");
    for (const auto& aggregate :
         RunSweep(*column, actual, {0.016}, estimators,
                  bench::PaperRunOptions(/*seed=*/10))) {
      results.push_back(aggregate);
    }
  }
  const TextTable table =
      MakeFigureTable(results, labels, "n", bench::MeanError);
  PrintFigure(std::cout,
              "Figure 10: unbounded-domain scaleup (D grows with n, 1.6% "
              "sample)",
              table);
}

}  // namespace

int main() {
  std::printf("Reproducing Figures 9-10: scale-up experiments\n");
  RunBounded();
  RunUnbounded();
  return 0;
}
