// Figures 9 & 10: scale-up experiments.
//
// Bounded-domain (Fig. 9): a Zipf Z=2 base of 1000 rows fixes D; the table
// grows from 100K to 1M rows by duplicating every value; the sample is
// FIXED at 10,000 rows. Expected shape: every estimator's error is flat in
// n except HYBVAR, whose modified-Shlosser branch cannot detect the
// duplication and overestimates roughly linearly in n.
//
// Unbounded-domain (Fig. 10): Z=2 with duplication factor 100 and a fixed
// 1.6% sampling RATE; D grows with n. Expected shape: flat for everything
// except HYBVAR, which jumps when its gamma^2 selector switches branches.
//
// The scale points are independent, so each (generate column, run sweep)
// unit is one ParallelFor task; per-point seeds are fixed, so the output is
// identical to the historical serial loop at any thread count.

#include "bench_util.h"

namespace {

using namespace ndv;

// Runs one scale point per worker and flattens the per-point blocks back
// into sweep order. `point` maps an n value to (label, sweep results).
template <typename PointFn>
std::vector<EstimatorAggregate> RunScalePoints(
    const std::vector<int64_t>& ns, std::vector<std::string>& labels,
    const PointFn& point) {
  std::vector<std::vector<EstimatorAggregate>> per_point(ns.size());
  labels.assign(ns.size(), "");
  ParallelFor(static_cast<int64_t>(ns.size()), DefaultThreadCount(),
              [&](int64_t i) {
                const size_t index = static_cast<size_t>(i);
                per_point[index] = point(ns[index], &labels[index]);
              });
  std::vector<EstimatorAggregate> results;
  for (auto& block : per_point) {
    for (auto& aggregate : block) results.push_back(std::move(aggregate));
  }
  return results;
}

std::vector<int64_t> ScaleNs() {
  std::vector<int64_t> ns;
  for (int64_t n = 100000; n <= 1000000; n += 100000) ns.push_back(n);
  return ns;
}

void RunBounded() {
  const auto estimators = MakePaperComparisonEstimators();
  const bench::WallTimer timer;
  std::vector<std::string> labels;
  const auto results = RunScalePoints(
      ScaleNs(), labels,
      [&estimators](int64_t n, std::string* label) {
        // Base of 1000 Zipf rows; every value copied n/1000 times.
        const auto column = bench::PaperColumn(n, 2.0, n / 1000);
        const int64_t actual = ExactDistinctHashSet(*column);
        *label = std::to_string(n / 1000) + "K rows";
        const double fraction = 10000.0 / static_cast<double>(n);
        return RunSweep(*column, actual, {fraction}, estimators,
                        bench::PaperRunOptions(/*seed=*/9));
      });
  const TextTable table = MakeFigureTable(results, labels, "n",
                                          bench::MeanError);
  const std::string title =
      "Figure 9: bounded-domain scaleup (fixed D, fixed 10K-row sample)";
  PrintFigure(std::cout, title, table);
  bench::PrintFigureTiming(std::cout, title, results, labels, "n", timer);
}

void RunUnbounded() {
  const auto estimators = MakePaperComparisonEstimators();
  const bench::WallTimer timer;
  std::vector<std::string> labels;
  const auto results = RunScalePoints(
      ScaleNs(), labels,
      [&estimators](int64_t n, std::string* label) {
        const auto column = bench::PaperColumn(n, 2.0, 100);
        const int64_t actual = ExactDistinctHashSet(*column);
        *label = std::to_string(n / 1000) + "K rows (D=" +
                 std::to_string(actual) + ")";
        return RunSweep(*column, actual, {0.016}, estimators,
                        bench::PaperRunOptions(/*seed=*/10));
      });
  const TextTable table =
      MakeFigureTable(results, labels, "n", bench::MeanError);
  const std::string title =
      "Figure 10: unbounded-domain scaleup (D grows with n, 1.6% sample)";
  PrintFigure(std::cout, title, table);
  bench::PrintFigureTiming(std::cout, title, results, labels, "n", timer);
}

}  // namespace

int main() {
  std::printf("Reproducing Figures 9-10: scale-up experiments\n");
  RunBounded();
  RunUnbounded();
  return 0;
}
