// Ablation: what NDV estimation errors COST — plan-quality regret.
//
// The paper motivates distinct-value estimation by optimizer plan quality.
// This bench closes that loop: for a family of workloads, each estimator's
// 1% -sample estimate drives the hash-vs-sort GROUP BY decision against a
// memory budget; the modeled cost of the chosen plan is compared to the
// oracle plan (true D known). Reported per estimator: how often the wrong
// strategy was chosen, and the mean/max cost regret.

#include <algorithm>

#include "bench_util.h"

#include "common/descriptive.h"
#include "exec/planner.h"
#include "table/column_sampling.h"

int main() {
  using namespace ndv;
  std::printf("Ablation: plan-choice regret caused by NDV errors\n");
  std::printf("(hash-vs-sort GROUP BY, 10K-group memory budget, 1%% "
              "samples, 10 trials per workload)\n");

  const int64_t kBudget = 10000;
  const auto estimators = MakePaperComparisonEstimators();
  struct Tally {
    int64_t decisions = 0;
    int64_t wrong = 0;
    RunningStats regret;
    double max_regret = 1.0;
  };
  std::vector<Tally> tallies(estimators.size());

  // Workloads straddling the budget: D from ~300 to ~160K.
  struct Workload {
    double z;
    int64_t dup;
  };
  const std::vector<Workload> workloads = {
      {1.0, 1000}, {1.0, 100}, {0.0, 100}, {1.0, 10}, {0.0, 20}, {1.0, 1},
  };

  for (const Workload& workload : workloads) {
    const auto column = bench::PaperColumn(1000000, workload.z, workload.dup);
    const int64_t actual = ExactDistinctHashSet(*column);
    Rng rng(2026);
    for (int trial = 0; trial < 10; ++trial) {
      Rng trial_rng = rng.Fork();
      const SampleSummary summary =
          SampleColumnFraction(*column, 0.01, trial_rng);
      for (size_t e = 0; e < estimators.size(); ++e) {
        const PlanOutcome outcome =
            EvaluatePlanChoice(*estimators[e], summary, actual, kBudget);
        Tally& tally = tallies[e];
        ++tally.decisions;
        if (outcome.chosen != outcome.oracle) ++tally.wrong;
        tally.regret.Add(outcome.regret);
        tally.max_regret = std::max(tally.max_regret, outcome.regret);
      }
    }
  }

  TextTable table({"estimator", "wrong plans", "mean regret", "max regret"});
  for (size_t e = 0; e < estimators.size(); ++e) {
    const Tally& tally = tallies[e];
    table.AddRow({std::string(estimators[e]->name()),
                  std::to_string(tally.wrong) + "/" +
                      std::to_string(tally.decisions),
                  FormatDouble(tally.regret.mean(), 3),
                  FormatDouble(tally.max_regret, 2)});
  }
  PrintFigure(std::cout, "Plan-quality regret per estimator", table);
  std::printf("Regret 1 = the oracle plan. Estimators whose errors straddle "
              "the memory budget pay\nthe spill penalty (underestimates) or "
              "the sort tax (overestimates) — the paper's\nmotivation made "
              "quantitative.\n");
  return 0;
}
