// Microbenchmarks: the GROUP BY executors — empirical grounding for the
// planner's cost model (hash ~ linear, sort ~ n log n, crossover driven by
// group count).

#include <benchmark/benchmark.h>

#include "datagen/zipf.h"
#include "exec/aggregate.h"

namespace {

std::unique_ptr<ndv::Int64Column> MakeColumn(int64_t rows, int64_t dup) {
  ndv::ZipfColumnOptions options;
  options.rows = rows;
  options.z = 0.0;
  options.dup_factor = dup;
  options.seed = 11;
  return ndv::MakeZipfColumn(options);
}

void BM_HashAggregateFewGroups(benchmark::State& state) {
  const auto column = MakeColumn(state.range(0), 1000);  // n/1000 groups
  for (auto _ : state) {
    benchmark::DoNotOptimize(ndv::HashAggregateCount(*column));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashAggregateFewGroups)->Arg(100000)->Arg(1000000);

void BM_HashAggregateManyGroups(benchmark::State& state) {
  const auto column = MakeColumn(state.range(0), 2);  // n/2 groups
  for (auto _ : state) {
    benchmark::DoNotOptimize(ndv::HashAggregateCount(*column));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashAggregateManyGroups)->Arg(100000)->Arg(1000000);

void BM_SortAggregateFewGroups(benchmark::State& state) {
  const auto column = MakeColumn(state.range(0), 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ndv::SortAggregateCount(*column));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortAggregateFewGroups)->Arg(100000)->Arg(1000000);

void BM_SortAggregateManyGroups(benchmark::State& state) {
  const auto column = MakeColumn(state.range(0), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ndv::SortAggregateCount(*column));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortAggregateManyGroups)->Arg(100000)->Arg(1000000);

}  // namespace

BENCHMARK_MAIN();
