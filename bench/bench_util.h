#ifndef NDV_BENCH_BENCH_UTIL_H_
#define NDV_BENCH_BENCH_UTIL_H_

// Shared setup for the paper-reproduction experiment binaries.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/all_estimators.h"
#include "datagen/zipf.h"
#include "harness/figures.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "table/table.h"

namespace ndv::bench {

// The paper's standard synthetic workload: n rows of Zipf(z) data with the
// given duplication factor, shuffled layout.
inline std::unique_ptr<Int64Column> PaperColumn(int64_t rows, double z,
                                                int64_t dup,
                                                uint64_t seed = 4242) {
  ZipfColumnOptions options;
  options.rows = rows;
  options.z = z;
  options.dup_factor = dup;
  options.seed = seed;
  return MakeZipfColumn(options);
}

// The paper's trial configuration: ten independent samples per point.
inline RunOptions PaperRunOptions(uint64_t seed = 1) {
  RunOptions options;
  options.trials = 10;
  options.seed = seed;
  return options;
}

inline std::vector<std::string> RateLabels() {
  std::vector<std::string> labels;
  for (double fraction : PaperSamplingFractions()) {
    labels.push_back(FractionLabel(fraction));
  }
  return labels;
}

inline double MeanError(const EstimatorAggregate& a) {
  return a.mean_ratio_error;
}

inline double StdDevFraction(const EstimatorAggregate& a) {
  return a.stddev_fraction;
}

// Wall-clock stopwatch for figure-level timing lines.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Prints the per-estimator timing grid for a finished figure plus the
// figure's total wall-clock and the worker count that produced it.
inline void PrintFigureTiming(std::ostream& out, const std::string& title,
                              const std::vector<EstimatorAggregate>& results,
                              const std::vector<std::string>& labels,
                              const std::string& row_header,
                              const WallTimer& timer) {
  PrintBanner(out, title + " — timing");
  MakeTimingTable(results, labels, row_header).Print(out);
  out << "figure wall-clock: " << FormatDouble(timer.ElapsedMs(), 1)
      << " ms (threads=" << DefaultThreadCount() << ")\n";
}

}  // namespace ndv::bench

#endif  // NDV_BENCH_BENCH_UTIL_H_
