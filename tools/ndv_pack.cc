// ndv_pack — standalone table converter for the ndvpack binary columnar
// format. Packs once, scans forever: a packed table opens by mmap with no
// parse step, so every later ANALYZE pays ingestion cost proportional to
// the rows it actually touches, not to the text it would have re-parsed.
//
//   ndv_pack [--codec=auto|raw|delta|dict] <input> <output.ndvpack>
//       convert CSV (or repack) to ndvpack v2 with the given block codec
//       policy (default auto)
//   ndv_pack --v1 <input> <output.ndvpack>
//       write the legacy v1 (uncompressed) format
//   ndv_pack --verify <file.ndvpack>
//       validate header/checksums/columns; for v2, print each column's
//       block codecs, packed vs raw bytes, and the whole-file ratio
//
// The input format is auto-detected by content; packing an .ndvpack input
// rewrites it canonically (useful after hand edits or version migrations).

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "storage/mapped_file.h"
#include "storage/ndvpack.h"
#include "storage/pack_reader.h"
#include "storage/pack_writer.h"
#include "storage/table_loader.h"
#include "table/table.h"

namespace {

// Histogram of codecs over one column's blocks, e.g. "raw" or
// "delta:412 raw:12".
std::string CodecSummary(const ndv::PackV2ColumnInfo& column) {
  int64_t counts[3] = {0, 0, 0};
  for (const ndv::PackV2BlockInfo& block : column.blocks) {
    ++counts[static_cast<size_t>(block.codec)];
  }
  std::string out;
  for (const auto codec :
       {ndv::PackBlockCodec::kRaw, ndv::PackBlockCodec::kDelta,
        ndv::PackBlockCodec::kDictCodes}) {
    const int64_t n = counts[static_cast<size_t>(codec)];
    if (n == 0) continue;
    if (!out.empty()) out += ' ';
    out += ndv::PackBlockCodecName(codec);
    if (column.blocks.size() > 1) {
      out += ':';
      out += std::to_string(n);
    }
  }
  return out.empty() ? "none" : out;
}

int VerifyV2(const std::string& path, const ndv::MappedFile& file) {
  auto info = ndv::InspectPackV2(file.bytes());
  if (!info.ok()) {
    std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(),
                 info.status().ToString().c_str());
    return 1;
  }
  std::printf("OK %s: v2, %llu rows x %zu columns, %lld rows/block\n",
              path.c_str(),
              static_cast<unsigned long long>(info->row_count),
              info->columns.size(),
              static_cast<long long>(info->block_rows));
  uint64_t packed_total = 0;
  uint64_t raw_total = 0;
  for (const ndv::PackV2ColumnInfo& column : info->columns) {
    packed_total += column.packed_bytes;
    raw_total += column.raw_bytes;
    const double ratio =
        column.raw_bytes == 0
            ? 1.0
            : static_cast<double>(column.packed_bytes) /
                  static_cast<double>(column.raw_bytes);
    std::printf("  '%.*s' %s codec=%s packed=%llu raw=%llu (%.3fx)\n",
                static_cast<int>(column.name.size()), column.name.data(),
                std::string(ndv::ColumnTypeName(column.type)).c_str(),
                CodecSummary(column).c_str(),
                static_cast<unsigned long long>(column.packed_bytes),
                static_cast<unsigned long long>(column.raw_bytes), ratio);
  }
  const double file_ratio =
      raw_total == 0 ? 1.0
                     : static_cast<double>(packed_total) /
                           static_cast<double>(raw_total);
  std::printf("  file %llu bytes, payload %llu of raw %llu (%.3fx)\n",
              static_cast<unsigned long long>(info->file_bytes),
              static_cast<unsigned long long>(packed_total),
              static_cast<unsigned long long>(raw_total), file_ratio);
  return 0;
}

int Verify(const std::string& path) {
  // Dispatch on the magic so the v2 report can show per-column codec and
  // size detail; v1 (and anything else) goes through the plain opener.
  auto file = ndv::MappedFile::Open(path);
  if (file.ok()) {
    const auto bytes = (*file)->bytes();
    if (ndv::StartsWithPackV2Magic(
            {reinterpret_cast<const char*>(bytes.data()), bytes.size()})) {
      return VerifyV2(path, **file);
    }
  }
  auto table = ndv::OpenPackFile(path);
  if (!table.ok()) {
    std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(),
                 table.status().ToString().c_str());
    return 1;
  }
  std::printf("OK %s: v1, %lld rows x %lld columns\n", path.c_str(),
              static_cast<long long>(table->NumRows()),
              static_cast<long long>(table->NumColumns()));
  for (int64_t c = 0; c < table->NumColumns(); ++c) {
    std::printf("  '%s' %s\n", table->column_name(c).c_str(),
                std::string(ndv::ColumnTypeName(table->column(c).type()))
                    .c_str());
  }
  return 0;
}

int Convert(const std::string& in_path, const std::string& out_path,
            bool v1, ndv::PackCodecChoice codec) {
  auto table = ndv::LoadTableAuto(in_path);
  if (!table.ok()) {
    std::fprintf(stderr, "error: %s\n", table.status().ToString().c_str());
    return 1;
  }
  ndv::Status written;
  if (v1) {
    written = ndv::WritePackFileV1(*table, out_path);
  } else {
    ndv::PackWriteOptions options;
    options.codec = codec;
    written = ndv::WritePackFileV2(*table, out_path, options);
  }
  if (!written.ok()) {
    std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("packed %lld rows x %lld columns: %s -> %s\n",
              static_cast<long long>(table->NumRows()),
              static_cast<long long>(table->NumColumns()), in_path.c_str(),
              out_path.c_str());
  return Verify(out_path);
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: ndv_pack [--codec=auto|raw|delta|dict] <input> "
      "<output.ndvpack>\n"
      "       ndv_pack --v1 <input> <output.ndvpack>\n"
      "       ndv_pack --verify <file.ndvpack>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool v1 = false;
  ndv::PackCodecChoice codec = ndv::PackCodecChoice::kAutoCodec;
  int arg = 1;
  while (arg < argc && std::strncmp(argv[arg], "--", 2) == 0) {
    if (std::strcmp(argv[arg], "--verify") == 0) {
      if (argc - arg != 2) return Usage();
      return Verify(argv[arg + 1]);
    }
    if (std::strcmp(argv[arg], "--v1") == 0) {
      v1 = true;
      ++arg;
      continue;
    }
    if (std::strncmp(argv[arg], "--codec=", 8) == 0) {
      if (!ndv::ParsePackCodecChoice(argv[arg] + 8, &codec)) {
        std::fprintf(stderr, "error: unknown codec '%s'\n", argv[arg] + 8);
        return Usage();
      }
      ++arg;
      continue;
    }
    return Usage();
  }
  if (argc - arg != 2) return Usage();
  return Convert(argv[arg], argv[arg + 1], v1, codec);
}
