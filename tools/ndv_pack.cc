// ndv_pack — standalone table converter for the ndvpack binary columnar
// format. Packs once, scans forever: a packed table opens by mmap with no
// parse step, so every later ANALYZE pays ingestion cost proportional to
// the rows it actually touches, not to the text it would have re-parsed.
//
//   ndv_pack <input> <output.ndvpack>     convert CSV (or repack) to ndvpack
//   ndv_pack --verify <file.ndvpack>      validate header/checksum/columns
//
// The input format is auto-detected by content; packing an .ndvpack input
// rewrites it canonically (useful after hand edits or version migrations).

#include <cstdio>
#include <cstring>
#include <string>

#include "storage/ndvpack.h"
#include "storage/table_loader.h"
#include "table/table.h"

namespace {

int Verify(const std::string& path) {
  auto table = ndv::OpenPackFile(path);
  if (!table.ok()) {
    std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(),
                 table.status().ToString().c_str());
    return 1;
  }
  std::printf("OK %s: %lld rows x %lld columns\n", path.c_str(),
              static_cast<long long>(table->NumRows()),
              static_cast<long long>(table->NumColumns()));
  for (int64_t c = 0; c < table->NumColumns(); ++c) {
    std::printf("  '%s' %s\n", table->column_name(c).c_str(),
                std::string(ndv::ColumnTypeName(table->column(c).type()))
                    .c_str());
  }
  return 0;
}

int Convert(const std::string& in_path, const std::string& out_path) {
  auto table = ndv::LoadTableAuto(in_path);
  if (!table.ok()) {
    std::fprintf(stderr, "error: %s\n", table.status().ToString().c_str());
    return 1;
  }
  const ndv::Status written = ndv::WritePackFile(*table, out_path);
  if (!written.ok()) {
    std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("packed %lld rows x %lld columns: %s -> %s\n",
              static_cast<long long>(table->NumRows()),
              static_cast<long long>(table->NumColumns()), in_path.c_str(),
              out_path.c_str());
  return Verify(out_path);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--verify") == 0) {
    return Verify(argv[2]);
  }
  if (argc == 3) return Convert(argv[1], argv[2]);
  std::fprintf(stderr,
               "usage: ndv_pack <input> <output.ndvpack>\n"
               "       ndv_pack --verify <file.ndvpack>\n");
  return 2;
}
