#!/usr/bin/env python3
"""Run the ndv-* clang-tidy checks over the whole tree.

Reads compile_commands.json from the build directory, filters to first-party
translation units (src/, tools/, tests/ — third-party and generated files are
skipped), and runs clang-tidy with the ndv plugin over each. Exits non-zero
if any diagnostic is emitted, so CI can gate on it. NOLINT(<check>) comments
are the sanctioned allowlist.

Usage:
  run_ndv_lint.py --clang-tidy <bin> --plugin <libndv_tidy_module.so> \
      --build-dir build [-j N] [paths...]
"""

import argparse
import concurrent.futures
import json
import subprocess
import sys
from pathlib import Path

FIRST_PARTY = ("src/", "tools/", "tests/")
SKIP_PARTS = ("tools/lint/fixtures/", "/_deps/", "third_party/")

# Every src/ subsystem that must appear in an unrestricted run. A subsystem
# absent from compile_commands.json (dropped target, renamed directory) would
# otherwise skip linting silently.
EXPECTED_SUBSYSTEMS = (
    "src/catalog/",
    "src/common/",
    "src/distributed/",
    "src/ingest/",
    "src/profile/",
    "src/sample/",
    "src/serve/",
    "src/sketch/",
    "src/storage/",
    "src/table/",
)


def select_files(build_dir: Path, repo_root: Path, only: list[str]):
    db = json.loads((build_dir / "compile_commands.json").read_text())
    files = []
    for entry in db:
        path = Path(entry["file"])
        if not path.is_absolute():
            path = Path(entry["directory"]) / path
        path = path.resolve()
        try:
            rel = path.relative_to(repo_root)
        except ValueError:
            continue
        rel_str = rel.as_posix()
        if not rel_str.startswith(FIRST_PARTY):
            continue
        if any(part in rel_str for part in SKIP_PARTS):
            continue
        if only and not any(rel_str.startswith(o) for o in only):
            continue
        files.append(str(path))
    return sorted(set(files))


def lint_one(args, path):
    cmd = [
        args.clang_tidy,
        f"-load={args.plugin}",
        "-checks=-*,ndv-*",
        "--quiet",
        "-p",
        str(args.build_dir),
        path,
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    findings = [
        line
        for line in proc.stdout.splitlines()
        if ": warning:" in line or ": error:" in line
    ]
    return path, findings, proc.returncode


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--clang-tidy", default="clang-tidy")
    parser.add_argument("--plugin", required=True)
    parser.add_argument("--build-dir", default="build", type=Path)
    parser.add_argument("-j", "--jobs", type=int, default=4)
    parser.add_argument("paths", nargs="*", help="restrict to these prefixes")
    args = parser.parse_args()

    repo_root = Path(__file__).resolve().parents[2]
    files = select_files(args.build_dir.resolve(), repo_root, args.paths)
    if not files:
        print("no first-party files found in compile_commands.json")
        return 1

    if not args.paths:
        rels = {Path(f).resolve().relative_to(repo_root).as_posix() for f in files}
        missing = [
            sub
            for sub in EXPECTED_SUBSYSTEMS
            if not any(rel.startswith(sub) for rel in rels)
        ]
        if missing:
            print(f"subsystems missing from compile_commands.json: {missing}")
            return 1

    total_findings = 0
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for path, findings, rc in pool.map(
            lambda f: lint_one(args, f), files
        ):
            if findings:
                total_findings += len(findings)
                print(f"== {path}")
                print("\n".join(findings))
            elif rc != 0:
                total_findings += 1
                print(f"== {path}: clang-tidy exited {rc}")

    print(f"ndv-lint: {len(files)} files, {total_findings} findings")
    return 1 if total_findings else 0


if __name__ == "__main__":
    sys.exit(main())
