#ifndef NDV_TOOLS_LINT_NO_STD_HASH_CONTAINER_CHECK_H_
#define NDV_TOOLS_LINT_NO_STD_HASH_CONTAINER_CHECK_H_

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/ADT/DenseSet.h"

namespace clang::tidy::ndv {

// ndv-no-std-hash-container: bans std::unordered_{map,set,multimap,
// multiset} in the tree. Their iteration order is implementation-defined
// and seed-dependent, which has twice produced nondeterministic artifact
// bytes in this repo (catalog serialization, pack dictionaries); the
// project's ndv::FlatHash{Set,Map} (common/flat_hash.h) are the sanctioned
// replacements, with deterministic seeded hashing and better locality on
// the estimator hot paths.
//
// Deliberate exceptions stay — with a NOLINT(ndv-no-std-hash-container)
// comment explaining why the std container is required at that site.
class NoStdHashContainerCheck : public ClangTidyCheck {
 public:
  NoStdHashContainerCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;

 private:
  // One written occurrence can surface as several TypeLoc nodes (template
  // instantiations re-visit the spelling); report each spelling once.
  llvm::DenseSet<unsigned> Reported;
};

}  // namespace clang::tidy::ndv

#endif  // NDV_TOOLS_LINT_NO_STD_HASH_CONTAINER_CHECK_H_
