#ifndef NDV_TOOLS_LINT_UNCHECKED_STATUS_CHECK_H_
#define NDV_TOOLS_LINT_UNCHECKED_STATUS_CHECK_H_

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::ndv {

// ndv-unchecked-status: flags a call whose ndv::Status / ndv::StatusOr
// result is discarded. Status is the project's only error channel (no
// exceptions), so a dropped Status is a swallowed failure: the WAL append
// that "worked", the send whose backpressure vanished. Complements the
// [[nodiscard]] attributes on the types themselves — the check fires even
// in builds where -Wunused-result is off, and catches factory functions
// the attribute audit missed.
//
// An explicit `(void)Call()` cast is accepted as a deliberate discard;
// anything else must bind or test the result (NDV_RETURN_IF_ERROR, .ok()).
class UncheckedStatusCheck : public ClangTidyCheck {
 public:
  UncheckedStatusCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::ndv

#endif  // NDV_TOOLS_LINT_UNCHECKED_STATUS_CHECK_H_
