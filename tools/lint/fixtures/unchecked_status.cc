// Fixture for ndv-unchecked-status. Lines marked `// EXPECT: <check>` must
// produce exactly that diagnostic; every other line must stay silent
// (run_lint_test.py asserts both directions).

#include "status_stub.h"

namespace ndv {

Status DoWork();
StatusOr<int> Compute();
int PlainInt();

void Discarding() {
  DoWork();                                // EXPECT: ndv-unchecked-status
  Compute();                               // EXPECT: ndv-unchecked-status
  if (PlainInt() > 0) DoWork();            // EXPECT: ndv-unchecked-status
  for (int i = 0; i < 3; ++i) Compute();   // EXPECT: ndv-unchecked-status
  while (PlainInt() < 2) DoWork();         // EXPECT: ndv-unchecked-status
}

void Consuming() {
  PlainInt();                  // silent: not a Status-returning call
  Status bound = DoWork();     // silent: result bound
  if (!bound.ok()) return;
  if (DoWork().ok()) return;   // silent: result tested
  (void)DoWork();              // silent: explicit deliberate discard
  StatusOr<int> result = Compute();
  if (result.ok()) (void)result.value();
}

}  // namespace ndv
