#ifndef NDV_TOOLS_LINT_FIXTURES_STATUS_STUB_H_
#define NDV_TOOLS_LINT_FIXTURES_STATUS_STUB_H_

// Minimal stand-ins for common/status.h, deliberately WITHOUT the
// [[nodiscard]] attributes the real types carry: ndv-unchecked-status must
// fire on the type identity alone, so it still protects call sites in
// builds (or on factory signatures) where the attribute audit has a hole.

namespace ndv {

class Status {
 public:
  bool ok() const { return true; }
};

template <typename T>
class StatusOr {
 public:
  bool ok() const { return true; }
  T value() const { return T(); }
};

}  // namespace ndv

#endif  // NDV_TOOLS_LINT_FIXTURES_STATUS_STUB_H_
