// Fixture for ndv-check-macro-side-effects, compiled against the real
// common/check.h: NDV_DCHECK bodies vanish in Release builds, so any side
// effect inside a contract macro diverges between build types.

#include <vector>

#include "common/check.h"

namespace {

int g_counter = 0;

int Pure(int x) { return x + 1; }

struct Ticket {
  int Next() { return ++value; }      // non-const: a side effect
  int Peek() const { return value; }  // const: effect-free
  int value = 0;
};

}  // namespace

void PlainForms(std::vector<int>& values, Ticket& ticket) {
  NDV_CHECK(g_counter++ < 10);             // EXPECT: ndv-check-macro-side-effects
  NDV_DCHECK(--g_counter >= 0);            // EXPECT: ndv-check-macro-side-effects
  NDV_CHECK(ticket.Next() > 0);            // EXPECT: ndv-check-macro-side-effects
  NDV_CHECK_MSG((g_counter = 5) == 5, "assignment in a contract");  // EXPECT: ndv-check-macro-side-effects

  NDV_CHECK(ticket.Peek() >= 0);        // silent: const member call
  NDV_CHECK(Pure(g_counter) > 0);       // silent: free functions are allowed
  NDV_CHECK(!values.empty());           // silent: const member call
  NDV_CHECK(g_counter + 1 < 100);       // silent: effect-free arithmetic
}

void ComparisonForms(Ticket& ticket) {
  NDV_CHECK_EQ(ticket.Next(), 1);       // EXPECT: ndv-check-macro-side-effects
  NDV_DCHECK_GE(g_counter += 2, 0);     // EXPECT: ndv-check-macro-side-effects

  NDV_CHECK_EQ(ticket.Peek(), ticket.value);  // silent: effect-free operands
  NDV_CHECK_LT(g_counter, 1 << 20);           // silent
}

void OutsideMacros(Ticket& ticket) {
  // Side effects outside the contract macros are none of this check's
  // business (plain code mutates freely).
  if (ticket.Next() > 3) {
    ++g_counter;
  }
}
