// Fixture for ndv-guarded-return, compiled against the real annotated
// mutex: an accessor whose internal lock dies at the closing brace must
// not leak a reference/pointer to the state that lock guards (the durable
// catalog accessor bug, PR 7). NDV_REQUIRES on the accessor is the sound
// alternative and must stay silent.

#include <cstdint>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace ndv {

class Registry {
 public:
  const std::string& name_ref() {
    MutexLock lock(mutex_);
    return name_;  // EXPECT: ndv-guarded-return
  }

  const int64_t* rows_ptr() {
    MutexLock lock(mutex_);
    return &rows_;  // EXPECT: ndv-guarded-return
  }

  std::string name_copy() {
    MutexLock lock(mutex_);
    return name_;  // silent: copies under the lock
  }

  const std::string& name_locked() NDV_REQUIRES(mutex_) {
    return name_;  // silent: the caller holds mutex_ across the use
  }

  const std::string& label() const {
    return label_;  // silent: label_ is not guarded state
  }

 private:
  mutable Mutex mutex_;
  std::string name_ NDV_GUARDED_BY(mutex_);
  int64_t rows_ NDV_GUARDED_BY(mutex_) = 0;
  std::string label_;
};

}  // namespace ndv
