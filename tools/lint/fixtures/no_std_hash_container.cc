// Fixture for ndv-no-std-hash-container: std::unordered_* is banned in the
// tree (seed-dependent iteration order has leaked into artifact bytes
// before); ndv::FlatHashSet/FlatHashMap are the replacements, and the
// NOLINT comment is the allowlist for the few deliberate exceptions.

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ndv {

std::unordered_map<std::string, int> BuildIndex();  // EXPECT: ndv-no-std-hash-container

void Locals() {
  std::unordered_set<int> seen;  // EXPECT: ndv-no-std-hash-container
  seen.insert(1);
  std::vector<int> ordered;  // silent: deterministic container
  ordered.push_back(1);
}

struct Holder {
  std::unordered_multimap<int, int> edges;  // EXPECT: ndv-no-std-hash-container
  // NOLINTNEXTLINE(ndv-no-std-hash-container): exercised as the allowlist
  // mechanism — a justified std container use stays silent.
  std::unordered_map<std::string, int> allowed;
};

}  // namespace ndv
