#ifndef NDV_TOOLS_LINT_GUARDED_RETURN_CHECK_H_
#define NDV_TOOLS_LINT_GUARDED_RETURN_CHECK_H_

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::ndv {

// ndv-guarded-return: flags a function returning a reference or pointer to
// an NDV_GUARDED_BY data member when the function does not carry
// NDV_REQUIRES for the guarding mutex. The lock an accessor takes
// internally dies at the closing brace, so the caller dereferences the
// guarded state with no lock held — the exact accessor bug the durable
// catalog shipped with (state() once returned `const StatsCatalog&` from
// under a scoped lock, racing every reader against AppendPublish).
//
// Clang's -Wthread-safety analysis does NOT catch this shape: the access
// happens inside the locked region; it is the escaping reference that is
// unsound. The two sound alternatives are the diagnosed fixes: return a
// copy, or annotate the accessor NDV_REQUIRES(mutex) so the caller must
// hold the lock across the use (which this check then accepts).
class GuardedReturnCheck : public ClangTidyCheck {
 public:
  GuardedReturnCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::ndv

#endif  // NDV_TOOLS_LINT_GUARDED_RETURN_CHECK_H_
