#include "GuardedReturnCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::ndv {

void GuardedReturnCheck::registerMatchers(MatchFinder *Finder) {
  auto GuardedMember =
      memberExpr(member(fieldDecl(hasAttr(attr::GuardedBy)).bind("field")));

  // `return guarded_;` from a reference-returning function, or
  // `return &guarded_;` from a pointer-returning one.
  Finder->addMatcher(
      returnStmt(
          hasReturnValue(ignoringParenImpCasts(anyOf(
              GuardedMember,
              unaryOperator(hasOperatorName("&"),
                            hasUnaryOperand(
                                ignoringParenImpCasts(GuardedMember)))))),
          forFunction(functionDecl(returns(hasCanonicalType(anyOf(
                                       referenceType(), pointerType()))))
                          .bind("func")))
          .bind("ret"),
      this);
}

void GuardedReturnCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Ret = Result.Nodes.getNodeAs<ReturnStmt>("ret");
  const auto *Func = Result.Nodes.getNodeAs<FunctionDecl>("func");
  const auto *Field = Result.Nodes.getNodeAs<FieldDecl>("field");
  if (Ret == nullptr || Func == nullptr || Field == nullptr) {
    return;
  }
  // NDV_REQUIRES on the function is the sound contract: the caller holds
  // the guarding mutex across the use, so the escaping reference stays
  // covered. -Wthread-safety then enforces that contract at call sites.
  if (Func->hasAttr<RequiresCapabilityAttr>()) {
    return;
  }
  diag(Ret->getBeginLoc(),
       "%0 returns a reference/pointer to %1, which is guarded by a mutex "
       "the caller does not hold; return a copy, or annotate the function "
       "NDV_REQUIRES(<mutex>) so callers must lock around the use")
      << Func << Field;
}

}  // namespace clang::tidy::ndv
