#include "NoStdHashContainerCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::ndv {

void NoStdHashContainerCheck::registerMatchers(MatchFinder *Finder) {
  // Match the written spelling (the elaborated `std::unordered_map<...>`
  // node), not every desugared reference, so each source use reports at
  // its own location exactly once.
  Finder->addMatcher(
      typeLoc(loc(elaboratedType(namesType(hasDeclaration(namedDecl(
                  hasAnyName("::std::unordered_map", "::std::unordered_set",
                             "::std::unordered_multimap",
                             "::std::unordered_multiset"))
                                               .bind("decl"))))))
          .bind("loc"),
      this);
}

void NoStdHashContainerCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Loc = Result.Nodes.getNodeAs<TypeLoc>("loc");
  const auto *Decl = Result.Nodes.getNodeAs<NamedDecl>("decl");
  if (Loc == nullptr || Decl == nullptr) {
    return;
  }
  const SourceLocation Begin = Loc->getBeginLoc();
  if (Begin.isInvalid()) {
    return;
  }
  const SourceLocation Expansion =
      Result.SourceManager->getExpansionLoc(Begin);
  if (!Reported.insert(Expansion.getRawEncoding()).second) {
    return;
  }
  diag(Expansion,
       "std::%0 has seed-dependent iteration order; use ndv::FlatHashSet/"
       "FlatHashMap (common/flat_hash.h), or add a "
       "NOLINT(ndv-no-std-hash-container) comment explaining why the std "
       "container is required here")
      << Decl->getName();
}

}  // namespace clang::tidy::ndv
