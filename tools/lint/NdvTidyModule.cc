// The ndv-* clang-tidy module: project-specific contract checks, loaded
// into a stock clang-tidy binary with `-load libndv_tidy_module.so`
// (DESIGN.md §16). The shared object intentionally links against nothing —
// every clang:: / llvm:: symbol resolves inside the hosting clang-tidy
// process, which is why the host and the headers used to build this module
// must share an LLVM major version (CI pins both; see
// tools/lint/fetch_headers.sh).

#include "CheckMacroSideEffectsCheck.h"
#include "GuardedReturnCheck.h"
#include "NoStdHashContainerCheck.h"
#include "UncheckedStatusCheck.h"
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

namespace clang::tidy::ndv {

class NdvTidyModule : public ClangTidyModule {
 public:
  void addCheckFactories(ClangTidyCheckFactories &Factories) override {
    Factories.registerCheck<UncheckedStatusCheck>("ndv-unchecked-status");
    Factories.registerCheck<NoStdHashContainerCheck>(
        "ndv-no-std-hash-container");
    Factories.registerCheck<CheckMacroSideEffectsCheck>(
        "ndv-check-macro-side-effects");
    Factories.registerCheck<GuardedReturnCheck>("ndv-guarded-return");
  }
};

}  // namespace clang::tidy::ndv

namespace clang::tidy {

static ClangTidyModuleRegistry::Add<ndv::NdvTidyModule> X(
    "ndv-module", "ndv contract and concurrency checks");

// Keeps the registration object alive against aggressive dead-stripping.
volatile int NdvTidyModuleAnchorSource = 0;

}  // namespace clang::tidy
