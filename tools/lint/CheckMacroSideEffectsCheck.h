#ifndef NDV_TOOLS_LINT_CHECK_MACRO_SIDE_EFFECTS_CHECK_H_
#define NDV_TOOLS_LINT_CHECK_MACRO_SIDE_EFFECTS_CHECK_H_

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::ndv {

// ndv-check-macro-side-effects: flags NDV_CHECK* / NDV_DCHECK* arguments
// with side effects (assignment, ++/--, new/delete/throw, non-const
// member calls). A DCHECK condition is never evaluated in Release builds
// (common/check.h parses it behind `if (false)`), so a side effect there
// silently changes program behavior between build types; CHECK conditions
// stay evaluated but the same discipline keeps the two families
// interchangeable.
//
// The comparison forms (NDV_CHECK_EQ and friends) bind their operands via
// `auto&& ndv_chk_lhs = (lhs);`, so operand side effects live in DeclStmt
// initializers rather than the if-condition — the check matches both
// shapes. Free-function calls are deliberately NOT treated as side
// effects (FileExists(...) and similar predicates are routine CHECK
// arguments); non-const member calls are, mirroring
// bugprone-assert-side-effect's conservative line.
class CheckMacroSideEffectsCheck : public ClangTidyCheck {
 public:
  CheckMacroSideEffectsCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::ndv

#endif  // NDV_TOOLS_LINT_CHECK_MACRO_SIDE_EFFECTS_CHECK_H_
