#!/usr/bin/env python3
"""Fixture harness for the ndv-* clang-tidy checks.

Each fixture line marked `// EXPECT: <check-name>` must produce exactly that
diagnostic on that line, and no unmarked line may produce any ndv-* diagnostic.
The comparison is exact in both directions (missing AND unexpected findings
fail), keyed on (file, line, check).

Usage:
  run_lint_test.py --clang-tidy <bin> --plugin <libndv_tidy_module.so> \
      --src-root <repo>/src --fixtures <dir> [fixture.cc ...]
"""

import argparse
import re
import subprocess
import sys
from pathlib import Path

EXPECT_RE = re.compile(r"//\s*EXPECT:\s*([a-z0-9-]+)")
# clang-tidy diagnostic: <file>:<line>:<col>: warning: <msg> [<check>]
DIAG_RE = re.compile(r"^(.+?):(\d+):\d+:\s+warning:\s+.*\[([a-z0-9-]+)\]\s*$")

CHECKS = "-*,ndv-*"


def expected_findings(fixture: Path):
    found = set()
    for lineno, line in enumerate(fixture.read_text().splitlines(), start=1):
        m = EXPECT_RE.search(line)
        if m:
            found.add((fixture.name, lineno, m.group(1)))
    return found


def actual_findings(output: str):
    found = set()
    for line in output.splitlines():
        m = DIAG_RE.match(line.strip())
        if m:
            found.add((Path(m.group(1)).name, int(m.group(2)), m.group(3)))
    return found


def run_fixture(args, fixture: Path):
    cmd = [
        args.clang_tidy,
        f"-load={args.plugin}",
        f"-checks={CHECKS}",
        "--quiet",
        str(fixture),
        "--",
        "-std=c++20",
        f"-I{args.src_root}",
        f"-I{args.fixtures}",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    # clang-tidy exits non-zero on compile errors; diagnostics alone exit 0.
    if "error:" in proc.stderr or "error:" in proc.stdout:
        print(f"FAIL {fixture.name}: fixture failed to compile")
        print(proc.stdout)
        print(proc.stderr)
        return False

    want = expected_findings(fixture)
    got = actual_findings(proc.stdout)

    missing = want - got
    unexpected = got - want
    if not missing and not unexpected:
        print(f"PASS {fixture.name}: {len(want)} expected diagnostics matched")
        return True

    print(f"FAIL {fixture.name}")
    for f, line, check in sorted(missing):
        print(f"  missing    {f}:{line} [{check}]")
    for f, line, check in sorted(unexpected):
        print(f"  unexpected {f}:{line} [{check}]")
    print("--- clang-tidy stdout ---")
    print(proc.stdout)
    return False


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--clang-tidy", required=True)
    parser.add_argument("--plugin", required=True)
    parser.add_argument("--src-root", required=True)
    parser.add_argument("--fixtures", required=True)
    parser.add_argument("fixture_files", nargs="*")
    args = parser.parse_args()

    fixtures_dir = Path(args.fixtures)
    fixtures = (
        [Path(f) for f in args.fixture_files]
        if args.fixture_files
        else sorted(fixtures_dir.glob("*.cc"))
    )
    if not fixtures:
        print(f"no fixtures found under {fixtures_dir}")
        return 1

    ok = True
    for fixture in fixtures:
        ok = run_fixture(args, fixture) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
