#include "CheckMacroSideEffectsCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Lex/Lexer.h"

using namespace clang::ast_matchers;

namespace clang::tidy::ndv {
namespace {

// The side-effect vocabulary of bugprone-assert-side-effect, minus free
// functions: mutation operators, allocation, throw, and non-const member
// calls.
AST_MATCHER(Expr, ndvHasSideEffect) {
  const Expr *E = &Node;
  if (const auto *Op = dyn_cast<UnaryOperator>(E)) {
    const UnaryOperator::Opcode OC = Op->getOpcode();
    return OC == UO_PostInc || OC == UO_PostDec || OC == UO_PreInc ||
           OC == UO_PreDec;
  }
  if (const auto *Op = dyn_cast<BinaryOperator>(E)) {
    return Op->isAssignmentOp();
  }
  if (const auto *OpCall = dyn_cast<CXXOperatorCallExpr>(E)) {
    switch (OpCall->getOperator()) {
      case OO_Equal:
      case OO_PlusPlus:
      case OO_MinusMinus:
      case OO_PlusEqual:
      case OO_MinusEqual:
      case OO_StarEqual:
      case OO_SlashEqual:
      case OO_PercentEqual:
      case OO_AmpEqual:
      case OO_PipeEqual:
      case OO_CaretEqual:
      case OO_LessLessEqual:
      case OO_GreaterGreaterEqual:
        return true;
      default:
        return false;
    }
  }
  if (isa<CXXNewExpr>(E) || isa<CXXDeleteExpr>(E) || isa<CXXThrowExpr>(E)) {
    return true;
  }
  if (const auto *MemberCall = dyn_cast<CXXMemberCallExpr>(E)) {
    const auto *Method =
        dyn_cast_or_null<CXXMethodDecl>(MemberCall->getDirectCallee());
    return Method != nullptr && !Method->isConst();
  }
  return false;
}

}  // namespace

void CheckMacroSideEffectsCheck::registerMatchers(MatchFinder *Finder) {
  auto WithSideEffect =
      anyOf(expr(ndvHasSideEffect()),
            hasDescendant(expr(ndvHasSideEffect())));

  // Plain NDV_CHECK / NDV_CHECK_MSG / NDV_DCHECK expand to
  // `if (!(condition)) ...` — the condition carries the argument.
  Finder->addMatcher(ifStmt(hasCondition(WithSideEffect)).bind("cond"),
                     this);
  // NDV_CHECK_EQ and the other comparison forms bind each operand first:
  // `auto&& ndv_chk_lhs = (lhs);` — operand side effects sit in the
  // DeclStmt initializer, never reaching the if-condition.
  Finder->addMatcher(varDecl(matchesName("::ndv_chk_"),
                             hasInitializer(WithSideEffect))
                         .bind("operand"),
                     this);
}

void CheckMacroSideEffectsCheck::check(
    const MatchFinder::MatchResult &Result) {
  SourceLocation Loc;
  if (const auto *Cond = Result.Nodes.getNodeAs<IfStmt>("cond")) {
    Loc = Cond->getBeginLoc();
  } else if (const auto *Operand =
                 Result.Nodes.getNodeAs<VarDecl>("operand")) {
    Loc = Operand->getBeginLoc();
  } else {
    return;
  }

  // Only diagnose when the matched node was produced by one of the
  // contract macros: walk the macro expansion stack looking for the
  // NDV_CHECK / NDV_DCHECK name (AssertSideEffectCheck's walk).
  const SourceManager &SM = *Result.SourceManager;
  while (Loc.isValid() && Loc.isMacroID()) {
    const StringRef MacroName =
        Lexer::getImmediateMacroName(Loc, SM, getLangOpts());
    if (MacroName.starts_with("NDV_CHECK") ||
        MacroName.starts_with("NDV_DCHECK")) {
      diag(SM.getExpansionLoc(Loc),
           "%0 argument has a side effect; NDV_DCHECK conditions are never "
           "evaluated in Release builds, so contract-macro arguments must "
           "be effect-free")
          << MacroName;
      return;
    }
    Loc = SM.getImmediateMacroCallerLoc(Loc);
  }
}

}  // namespace clang::tidy::ndv
