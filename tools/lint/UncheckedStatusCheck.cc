#include "UncheckedStatusCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::ndv {

void UncheckedStatusCheck::registerMatchers(MatchFinder *Finder) {
  // A call to anything returning ndv::Status or ndv::StatusOr<T>,
  // canonically (through typedefs and sugar).
  auto StatusCall =
      callExpr(callee(functionDecl(returns(hasCanonicalType(hasDeclaration(
                   cxxRecordDecl(hasAnyName("::ndv::Status",
                                            "::ndv::StatusOr"))))))))
          .bind("call");

  // The call is "discarded" when it sits in a statement context — the same
  // contexts bugprone-unused-return-value walks. ignoringImplicit strips
  // the ExprWithCleanups / CXXBindTemporaryExpr shell around a discarded
  // prvalue; ignoringParenImpCasts leaves an explicit (void) cast
  // unmatched, which is the sanctioned way to discard on purpose.
  auto Matched = expr(ignoringImplicit(ignoringParenImpCasts(StatusCall)));

  Finder->addMatcher(
      stmt(anyOf(compoundStmt(forEach(Matched)),
                 ifStmt(eachOf(hasThen(Matched), hasElse(Matched))),
                 whileStmt(hasBody(Matched)), doStmt(hasBody(Matched)),
                 forStmt(eachOf(hasLoopInit(Matched), hasIncrement(Matched),
                                hasBody(Matched))),
                 cxxForRangeStmt(hasBody(Matched)),
                 caseStmt(hasSubStmt(Matched)),
                 defaultStmt(hasSubStmt(Matched)),
                 labelStmt(hasSubStmt(Matched)))),
      this);
}

void UncheckedStatusCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Call = Result.Nodes.getNodeAs<CallExpr>("call");
  if (Call == nullptr) {
    return;
  }
  diag(Call->getBeginLoc(),
       "ndv::Status result is discarded; bind it, test .ok(), use "
       "NDV_RETURN_IF_ERROR, or cast to (void) to discard deliberately");
}

}  // namespace clang::tidy::ndv
