#!/usr/bin/env bash
# Fetch the clang-tidy plugin-API headers for a pinned LLVM release.
#
# Distro packages ship the clang-tidy *binary* and the clang/llvm dev
# headers (libclang-XX-dev, llvm-XX-dev), but not the clang-tidy headers
# the plugin compiles against (ClangTidyCheck.h and friends live only in
# the clang-tools-extra source tree). This script pulls that small closure
# from the pinned release tag so CI never needs a full llvm-project
# checkout. The tag's major version MUST match the clang-tidy binary that
# will -load the plugin: the module links nothing and resolves its symbols
# inside the host process, so an ABI mismatch is a crash, not an error
# message.
#
# Usage: fetch_headers.sh [TAG] [OUT_DIR]
#   TAG      llvm-project release tag (default: llvmorg-18.1.8)
#   OUT_DIR  created if needed; headers land in OUT_DIR/clang-tidy/
#            (default: build/clang-tidy-headers)

set -euo pipefail

TAG="${1:-llvmorg-18.1.8}"
OUT="${2:-build/clang-tidy-headers}"
BASE="https://raw.githubusercontent.com/llvm/llvm-project/${TAG}/clang-tools-extra/clang-tidy"

# Include closure of ClangTidyCheck.h + ClangTidyModule(Registry).h as of
# the 18.x branch. All cross-includes inside the set are same-directory
# relative, so a flat clang-tidy/ subdir is a faithful layout.
HEADERS=(
  ClangTidy.h
  ClangTidyCheck.h
  ClangTidyDiagnosticConsumer.h
  ClangTidyModule.h
  ClangTidyModuleRegistry.h
  ClangTidyOptions.h
  ClangTidyProfiling.h
  FileExtensionsSet.h
  GlobList.h
  NoLintDirectiveHandler.h
)

mkdir -p "${OUT}/clang-tidy"
for header in "${HEADERS[@]}"; do
  echo "fetching ${header}"
  curl -fsSL --retry 3 "${BASE}/${header}" -o "${OUT}/clang-tidy/${header}"
done

echo "clang-tidy headers (${TAG}) -> ${OUT}/clang-tidy/"
echo "configure with: -DNDV_CLANG_TIDY_HEADERS=$(cd "${OUT}" && pwd)"
