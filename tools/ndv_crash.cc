// ndv_crash — process-level chaos harness for the durable catalog
// (DESIGN.md §14).
//
// The loop: run a deterministic append/compact workload in a forked child
// with exactly one crash point armed (NDV_CRASH_POINT site + 1-based hit),
// let the child die mid-protocol, then recover the directory in the parent
// and verify the crash-recovery contract:
//
//   1. no acknowledged append is lost — the recovered epoch is at least
//      the last epoch the child acknowledged to its ack file;
//   2. no partial record is applied — the recovered catalog serializes
//      bit-identically to the model state at the recovered epoch;
//   3. the store still works — the parent appends more records on top of
//      the recovered state, compacts, reopens, and re-verifies.
//
// The schedule is DISCOVERED, not hand-listed: a clean counting run
// enumerates every NDV_CRASH_POINT site the workload executes and how
// often, and the harness fans out over the (site, hit) grid — hundreds of
// distinct crash injections covering every append/fsync/rename boundary.
// A second phase arms the recovery-only sites (tail repair, WAL
// recreation) against a pre-crashed directory, so crashes DURING recovery
// are exercised too.
//
// Usage:
//   ndv_crash [--seed N] [--epochs N] [--snapshot-every N]
//             [--max-hits-per-site N] [--limit N] [--dir BASE] [--keep]
//             [--fsync every|none] [--list-sites]
//   ndv_crash --make-fixtures DIR   # write tests/testdata fixture dirs

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "catalog/durable_catalog.h"
#include "catalog/stats_catalog.h"
#include "common/crash_point.h"
#include "common/file_io.h"
#include "common/random.h"

namespace ndv {
namespace {

struct CrashOptions {
  uint64_t seed = 1;
  int64_t epochs = 48;          // workload length (appended records)
  int64_t snapshot_every = 4;   // auto-compaction cadence
  int64_t max_hits_per_site = 12;
  int64_t limit = 0;            // 0 = run the whole schedule
  int64_t continue_epochs = 5;  // records appended after each recovery
  std::string base_dir;         // empty = mkdtemp under TMPDIR
  std::string fixtures_dir;     // --make-fixtures target
  FsyncPolicy fsync = FsyncPolicy::kEveryRecord;
  bool keep = false;
  bool list_sites = false;
};

// ---- Deterministic workload. The op applied at epoch e is a pure
// function of e, so the expected catalog at any epoch is replayable by
// the parent, by a fixture-driven test, or by a process that never saw
// the crash.

ColumnStats StatsForEpoch(uint64_t epoch, const std::string& name) {
  ColumnStats stats;
  stats.column_name = name;
  stats.table_rows = 1000 + static_cast<int64_t>(epoch) * 3;
  stats.sample_rows = 100 + static_cast<int64_t>(epoch % 50);
  stats.sample_distinct = 10 + static_cast<int64_t>(epoch % 90);
  stats.estimate = static_cast<double>(stats.sample_distinct) +
                   static_cast<double>(epoch) * 1.5;
  stats.lower = static_cast<double>(stats.sample_distinct);
  stats.upper = stats.estimate * 2.0 + 50.0;
  stats.method = epoch % 3 == 0 ? "GEE" : "AE";
  stats.coverage = epoch % 2 == 0 ? 1.0 : 0.5;
  stats.degraded = epoch % 2 != 0;
  return stats;
}

// Applies epoch `e`'s op to the in-memory model.
void ApplyOpToModel(uint64_t e, StatsCatalog* model) {
  if (e % 5 == 0) {
    StatsCatalog replacement;
    const uint64_t columns = 1 + (e / 5) % 3;
    for (uint64_t c = 0; c < columns; ++c) {
      replacement.Put(StatsForEpoch(e + c, "pub" + std::to_string(c)));
    }
    *model = std::move(replacement);
  } else {
    model->Put(StatsForEpoch(e, "col" + std::to_string(e % 4)));
  }
}

// Applies epoch `e`'s op through the durable catalog (same op as the
// model; the catalog assigns exactly epoch e because ops are issued in
// sequence).
Status ApplyOpDurably(uint64_t e, DurableCatalog* durable) {
  if (e % 5 == 0) {
    StatsCatalog replacement;
    const uint64_t columns = 1 + (e / 5) % 3;
    for (uint64_t c = 0; c < columns; ++c) {
      replacement.Put(StatsForEpoch(e + c, "pub" + std::to_string(c)));
    }
    return durable->AppendPublish(replacement);
  }
  return durable->AppendPut(StatsForEpoch(e, "col" + std::to_string(e % 4)));
}

StatsCatalog ExpectedStateAt(uint64_t epoch) {
  StatsCatalog model;
  for (uint64_t e = 1; e <= epoch; ++e) ApplyOpToModel(e, &model);
  return model;
}

// Runs epochs (from, to] against `durable`, acknowledging each applied
// epoch to `ack_path` (atomic rename, so the ack file is never torn; a
// crash can at worst lose the LAST ack, never invent one — which is what
// makes it a sound lower bound for verification).
Status RunWorkload(DurableCatalog* durable, uint64_t from, uint64_t to,
                   const std::string& ack_path) {
  for (uint64_t e = from + 1; e <= to; ++e) {
    NDV_RETURN_IF_ERROR(ApplyOpDurably(e, durable));
    if (!ack_path.empty()) {
      NDV_RETURN_IF_ERROR(
          AtomicWriteFile(ack_path, std::to_string(e), /*sync=*/false));
    }
  }
  return Status::Ok();
}

// ---- Small process/file utilities.

int64_t ReadAckFile(const std::string& path) {
  auto bytes = ReadFileOrStatus(path);
  if (!bytes.ok()) return 0;
  return std::strtoll(bytes->c_str(), nullptr, 10);
}

Status CopyDirFlat(const std::string& from, const std::string& to) {
  NDV_RETURN_IF_ERROR(EnsureDirectory(to));
  DIR* dir = ::opendir(from.c_str());
  if (dir == nullptr) {
    return InternalError("opendir %s failed: %s", from.c_str(),
                         std::strerror(errno));
  }
  Status status = Status::Ok();
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    auto bytes = ReadFileOrStatus(from + "/" + name);
    if (!bytes.ok()) {
      status = bytes.status();
      break;
    }
    status = AtomicWriteFile(to + "/" + name, *bytes, /*sync=*/false);
    if (!status.ok()) break;
  }
  ::closedir(dir);
  return status;
}

void RemoveDirRecursive(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir != nullptr) {
    while (struct dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      const std::string child = path + "/" + name;
      struct stat info;
      if (::lstat(child.c_str(), &info) == 0 && S_ISDIR(info.st_mode)) {
        RemoveDirRecursive(child);
      } else {
        ::unlink(child.c_str());
      }
    }
    ::closedir(dir);
  }
  ::rmdir(path.c_str());
}

// ---- One chaos injection: fork, crash, recover, verify, continue.

struct Injection {
  std::string site;
  int64_t hit = 0;
  bool during_recovery = false;  // phase 2: armed while Open() replays
};

struct InjectionResult {
  bool fired = false;     // the child actually died at the armed site
  bool verified = false;  // all three contract checks passed
  std::string failure;    // empty when verified
  RecoveryInfo recovery;  // parent's recovery of the crashed directory
};

// What the forked child runs. Phase 1 children run the workload from
// scratch; phase 2 children recover a pre-crashed directory and continue —
// both with the armed site live, so the crash can land anywhere inside
// append, compaction, or recovery itself.
void ChildBody(const Injection& injection, const CrashOptions& options,
               const std::string& dir, const std::string& ack_path) {
  ResetCrashPoints();
  ArmCrashPoint(injection.site, injection.hit);
  DurableCatalogOptions catalog_options;
  catalog_options.dir = dir;
  catalog_options.fsync = options.fsync;
  catalog_options.snapshot_every_records = options.snapshot_every;
  auto durable = DurableCatalog::Open(std::move(catalog_options));
  if (!durable.ok()) {
    std::fprintf(stderr, "child open failed: %s\n",
                 durable.status().ToString().c_str());
    ::_exit(1);
  }
  const uint64_t from = (*durable)->epoch();
  const uint64_t to = injection.during_recovery
                          ? from + static_cast<uint64_t>(options.continue_epochs)
                          : static_cast<uint64_t>(options.epochs);
  const Status status = RunWorkload(durable->get(), from, to, ack_path);
  if (!status.ok()) {
    std::fprintf(stderr, "child workload failed: %s\n",
                 status.ToString().c_str());
    ::_exit(1);
  }
  ::_exit(0);
}

InjectionResult RunInjection(const Injection& injection,
                             const CrashOptions& options,
                             const std::string& dir,
                             const std::string& template_dir) {
  InjectionResult result;
  RemoveDirRecursive(dir);
  if (injection.during_recovery) {
    const Status copied = CopyDirFlat(template_dir, dir);
    if (!copied.ok()) {
      result.failure = "fixture copy failed: " + copied.ToString();
      return result;
    }
  } else {
    const Status made = EnsureDirectory(dir);
    if (!made.ok()) {
      result.failure = made.ToString();
      return result;
    }
  }
  const std::string ack_path = dir + "/acks";

  const pid_t pid = ::fork();
  if (pid < 0) {
    result.failure = std::string("fork failed: ") + std::strerror(errno);
    return result;
  }
  if (pid == 0) {
    ChildBody(injection, options, dir, ack_path);  // never returns
  }
  int wait_status = 0;
  while (::waitpid(pid, &wait_status, 0) < 0 && errno == EINTR) {
  }
  if (WIFEXITED(wait_status) &&
      WEXITSTATUS(wait_status) == kCrashPointExitCode) {
    result.fired = true;
  } else if (!WIFEXITED(wait_status) || WEXITSTATUS(wait_status) != 0) {
    result.failure = "child died unexpectedly (status " +
                     std::to_string(wait_status) + ")";
    return result;
  }

  // Recover the crashed (or cleanly finished) directory and check the
  // contract. The parent runs unarmed: recovery here is the real thing.
  const int64_t acked = ReadAckFile(ack_path);
  DurableCatalogOptions catalog_options;
  catalog_options.dir = dir;
  catalog_options.fsync = options.fsync;
  catalog_options.snapshot_every_records = options.snapshot_every;
  auto durable = DurableCatalog::Open(catalog_options);
  if (!durable.ok()) {
    result.failure = "recovery failed: " + durable.status().ToString();
    return result;
  }
  result.recovery = (*durable)->recovery();
  const uint64_t epoch = (*durable)->epoch();
  if (epoch < static_cast<uint64_t>(acked)) {
    result.failure = "LOST ACKNOWLEDGED RECORDS: recovered epoch " +
                     std::to_string(epoch) + " < acked epoch " +
                     std::to_string(acked);
    return result;
  }
  if ((*durable)->state().Serialize() != ExpectedStateAt(epoch).Serialize()) {
    result.failure = "recovered state at epoch " + std::to_string(epoch) +
                     " is not bit-identical to the model";
    return result;
  }

  // Continue on top of the recovered state, compact, reopen, re-verify:
  // recovery must yield a store that is still fully functional.
  const uint64_t target =
      epoch + static_cast<uint64_t>(options.continue_epochs);
  Status status = RunWorkload(durable->get(), epoch, target, ack_path);
  if (status.ok()) status = (*durable)->Compact();
  if (!status.ok()) {
    result.failure = "post-recovery workload failed: " + status.ToString();
    return result;
  }
  durable->reset();
  auto reopened = DurableCatalog::Open(std::move(catalog_options));
  if (!reopened.ok()) {
    result.failure = "re-open failed: " + reopened.status().ToString();
    return result;
  }
  if ((*reopened)->epoch() != target ||
      (*reopened)->state().Serialize() !=
          ExpectedStateAt(target).Serialize()) {
    result.failure = "post-recovery state diverged from the model";
    return result;
  }
  result.verified = true;
  return result;
}

// ---- Schedule discovery.

std::vector<std::pair<std::string, int64_t>> DiscoverSites(
    const CrashOptions& options, const std::string& scratch_dir,
    bool during_recovery, const std::string& template_dir) {
  ResetCrashPoints();
  EnableCrashPointCounting();
  RemoveDirRecursive(scratch_dir);
  if (during_recovery) {
    const Status copied = CopyDirFlat(template_dir, scratch_dir);
    if (!copied.ok()) {
      std::fprintf(stderr, "discovery copy failed: %s\n",
                   copied.ToString().c_str());
      return {};
    }
  } else {
    const Status made = EnsureDirectory(scratch_dir);
    if (!made.ok()) return {};
  }
  DurableCatalogOptions catalog_options;
  catalog_options.dir = scratch_dir;
  catalog_options.fsync = options.fsync;
  catalog_options.snapshot_every_records = options.snapshot_every;
  auto durable = DurableCatalog::Open(std::move(catalog_options));
  if (!durable.ok()) {
    std::fprintf(stderr, "discovery open failed: %s\n",
                 durable.status().ToString().c_str());
    return {};
  }
  const uint64_t from = (*durable)->epoch();
  const uint64_t to =
      during_recovery
          ? from + static_cast<uint64_t>(options.continue_epochs)
          : static_cast<uint64_t>(options.epochs);
  const Status status =
      RunWorkload(durable->get(), from, to, scratch_dir + "/acks");
  if (!status.ok()) {
    std::fprintf(stderr, "discovery workload failed: %s\n",
                 status.ToString().c_str());
    return {};
  }
  auto counts = CrashPointCounts();
  ResetCrashPoints();
  return counts;
}

// Builds a directory that died mid-append with a torn record on disk —
// the phase-2 template whose recovery exercises tail repair.
bool MakeCrashedTemplate(const CrashOptions& options,
                         const std::string& dir) {
  RemoveDirRecursive(dir);
  const Status made = EnsureDirectory(dir);
  if (!made.ok()) return false;
  Injection injection;
  injection.site = "wal.append.torn";
  injection.hit = options.epochs / 2 + 1;
  const pid_t pid = ::fork();
  if (pid < 0) return false;
  if (pid == 0) ChildBody(injection, options, dir, dir + "/acks");
  int wait_status = 0;
  while (::waitpid(pid, &wait_status, 0) < 0 && errno == EINTR) {
  }
  return WIFEXITED(wait_status) &&
         WEXITSTATUS(wait_status) == kCrashPointExitCode;
}

// ---- Fixture generation (--make-fixtures): small durable directories the
// checked-in recovery tests replay. Layout under DIR:
//   basic/            intact store: snapshot (epoch 8), prev snapshot
//                     (epoch 4), rotated WAL, live WAL with epochs 9..10
//   expected_epoch    "10"
//   expected_state.txt  ExpectedStateAt(10).Serialize()
// Tests derive torn/corrupt variants by mutating copies of basic/ (every
// byte-length truncation of the tail record, flipped snapshot bytes), so
// the checked-in bytes stay small and the mutation space stays exhaustive.
bool MakeFixtures(const CrashOptions& options) {
  const std::string& dir = options.fixtures_dir;
  RemoveDirRecursive(dir);
  Status status = EnsureDirectory(dir);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return false;
  }
  const uint64_t kFixtureEpochs = 10;
  DurableCatalogOptions catalog_options;
  catalog_options.dir = dir + "/basic";
  catalog_options.fsync = FsyncPolicy::kEveryRecord;
  catalog_options.snapshot_every_records = 4;
  auto durable = DurableCatalog::Open(std::move(catalog_options));
  if (!durable.ok()) {
    std::fprintf(stderr, "%s\n", durable.status().ToString().c_str());
    return false;
  }
  status = RunWorkload(durable->get(), 0, kFixtureEpochs, "");
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return false;
  }
  const std::string expected = (*durable)->state().Serialize();
  if (expected != ExpectedStateAt(kFixtureEpochs).Serialize()) {
    std::fprintf(stderr, "fixture state diverged from the model\n");
    return false;
  }
  status = AtomicWriteFile(dir + "/expected_epoch",
                           std::to_string(kFixtureEpochs) + "\n");
  if (status.ok()) {
    status = AtomicWriteFile(dir + "/expected_state.txt", expected);
  }
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return false;
  }
  std::printf("fixtures written to %s (epoch %llu, %zu catalog bytes)\n",
              dir.c_str(), static_cast<unsigned long long>(kFixtureEpochs),
              expected.size());
  return true;
}

int Run(const CrashOptions& options) {
  if (!options.fixtures_dir.empty()) return MakeFixtures(options) ? 0 : 1;

  std::string base = options.base_dir;
  if (base.empty()) {
    char pattern[] = "/tmp/ndv_crash.XXXXXX";
    const char* made = ::mkdtemp(pattern);
    if (made == nullptr) {
      std::fprintf(stderr, "mkdtemp failed: %s\n", std::strerror(errno));
      return 1;
    }
    base = made;
  } else {
    const Status status = EnsureDirectory(base);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }

  // Phase 2 template: a directory that crashed mid-append, so recovering
  // it repairs a torn tail (and the recovery-only sites execute).
  const std::string template_dir = base + "/crashed_template";
  const bool have_template = MakeCrashedTemplate(options, template_dir);
  if (!have_template) {
    std::fprintf(stderr, "warning: could not build crashed template; "
                         "recovery-phase injections skipped\n");
  }

  // Discover the schedule from clean counting runs of both phases.
  const std::string scratch = base + "/discovery";
  std::vector<Injection> schedule;
  const auto workload_sites =
      DiscoverSites(options, scratch, /*during_recovery=*/false, "");
  for (const auto& [site, count] : workload_sites) {
    const int64_t hits = std::min(count, options.max_hits_per_site);
    for (int64_t hit = 1; hit <= hits; ++hit) {
      schedule.push_back({site, hit, /*during_recovery=*/false});
    }
  }
  size_t workload_injections = schedule.size();
  if (have_template) {
    const auto recovery_sites = DiscoverSites(
        options, scratch, /*during_recovery=*/true, template_dir);
    for (const auto& [site, count] : recovery_sites) {
      const int64_t hits = std::min(
          count, std::min<int64_t>(options.max_hits_per_site, 4));
      for (int64_t hit = 1; hit <= hits; ++hit) {
        schedule.push_back({site, hit, /*during_recovery=*/true});
      }
    }
  }
  if (options.list_sites) {
    for (const auto& [site, count] : workload_sites) {
      std::printf("%-28s x%lld\n", site.c_str(),
                  static_cast<long long>(count));
    }
    if (!options.keep) RemoveDirRecursive(base);
    return 0;
  }

  // Deterministic shuffle so --limit N samples boundaries across the whole
  // protocol instead of hammering the first site.
  Rng rng(options.seed);
  for (size_t i = schedule.size(); i > 1; --i) {
    std::swap(schedule[i - 1], schedule[rng.NextBounded(i)]);
  }
  if (options.limit > 0 &&
      schedule.size() > static_cast<size_t>(options.limit)) {
    schedule.resize(static_cast<size_t>(options.limit));
  }

  std::printf("ndv_crash: %zu sites, %zu injections (%zu workload + %zu "
              "recovery), seed %llu\n",
              workload_sites.size(), schedule.size(),
              std::min(workload_injections, schedule.size()),
              schedule.size() - std::min(workload_injections,
                                         schedule.size()),
              static_cast<unsigned long long>(options.seed));

  const std::string work_dir = base + "/work";
  int64_t fired = 0;
  int64_t verified = 0;
  int64_t failures = 0;
  int64_t replayed_total = 0;
  int64_t truncated_total = 0;
  double boot_millis_total = 0.0;
  double boot_millis_max = 0.0;
  const auto started = std::chrono::steady_clock::now();
  for (size_t i = 0; i < schedule.size(); ++i) {
    const Injection& injection = schedule[i];
    const InjectionResult result =
        RunInjection(injection, options, work_dir, template_dir);
    fired += result.fired ? 1 : 0;
    if (result.verified) {
      ++verified;
      replayed_total += result.recovery.replayed_records;
      truncated_total += result.recovery.truncated_bytes;
      boot_millis_total += result.recovery.boot_millis;
      boot_millis_max =
          std::max(boot_millis_max, result.recovery.boot_millis);
    } else {
      ++failures;
      std::fprintf(stderr, "FAIL %s:%lld%s — %s\n", injection.site.c_str(),
                   static_cast<long long>(injection.hit),
                   injection.during_recovery ? " (during recovery)" : "",
                   result.failure.c_str());
    }
    if ((i + 1) % 50 == 0) {
      std::printf("  ... %zu/%zu injections, %lld fired, %lld verified\n",
                  i + 1, schedule.size(), static_cast<long long>(fired),
                  static_cast<long long>(verified));
    }
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();

  std::printf(
      "ndv_crash: %lld/%zu verified (%lld crashes fired, %lld failures) in "
      "%.1fs\n",
      static_cast<long long>(verified), schedule.size(),
      static_cast<long long>(fired), static_cast<long long>(failures),
      elapsed);
  if (verified > 0) {
    std::printf(
        "  recovery: %.3f ms mean boot (%.3f ms max), %lld records "
        "replayed, %lld torn bytes truncated across runs\n",
        boot_millis_total / static_cast<double>(verified), boot_millis_max,
        static_cast<long long>(replayed_total),
        static_cast<long long>(truncated_total));
  }
  if (!options.keep) RemoveDirRecursive(base);
  return failures == 0 ? 0 : 1;
}

bool ParseInt64Flag(const char* value, int64_t* out) {
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = parsed;
  return true;
}

}  // namespace
}  // namespace ndv

int main(int argc, char** argv) {
  ndv::CrashOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    int64_t seed_value = 0;
    if (arg == "--seed" && next() != nullptr &&
        ndv::ParseInt64Flag(argv[i], &seed_value)) {
      options.seed = static_cast<uint64_t>(seed_value);
    } else if (arg == "--epochs" && next() != nullptr &&
               ndv::ParseInt64Flag(argv[i], &options.epochs)) {
    } else if (arg == "--snapshot-every" && next() != nullptr &&
               ndv::ParseInt64Flag(argv[i], &options.snapshot_every)) {
    } else if (arg == "--max-hits-per-site" && next() != nullptr &&
               ndv::ParseInt64Flag(argv[i], &options.max_hits_per_site)) {
    } else if (arg == "--limit" && next() != nullptr &&
               ndv::ParseInt64Flag(argv[i], &options.limit)) {
    } else if (arg == "--dir" && next() != nullptr) {
      options.base_dir = argv[i];
    } else if (arg == "--make-fixtures" && next() != nullptr) {
      options.fixtures_dir = argv[i];
    } else if (arg == "--fsync" && next() != nullptr) {
      const std::string policy = argv[i];
      if (policy == "every") {
        options.fsync = ndv::FsyncPolicy::kEveryRecord;
      } else if (policy == "none") {
        options.fsync = ndv::FsyncPolicy::kNone;
      } else {
        std::fprintf(stderr, "unknown --fsync policy '%s'\n",
                     policy.c_str());
        return 2;
      }
    } else if (arg == "--keep") {
      options.keep = true;
    } else if (arg == "--list-sites") {
      options.list_sites = true;
    } else {
      std::fprintf(stderr,
                   "usage: ndv_crash [--seed N] [--epochs N] "
                   "[--snapshot-every N] [--max-hits-per-site N] "
                   "[--limit N] [--dir BASE] [--fsync every|none] [--keep] "
                   "[--list-sites] [--make-fixtures DIR]\n");
      return 2;
    }
  }
  if (options.epochs < 1 || options.snapshot_every < 0 ||
      options.max_hits_per_site < 1) {
    std::fprintf(stderr, "invalid option values\n");
    return 2;
  }
  return ndv::Run(options);
}
