// ndv_cli — command-line front end for the library.
//
// Subcommands:
//   generate    synthesize a dataset and write it as CSV (or .ndvpack)
//   pack        convert a table to the ndvpack binary columnar format
//   estimate    sample one column of a table file and run estimators
//   analyze     build a statistics catalog for every column of a table file
//   distributed fault-tolerant coordinator/worker ANALYZE of one column
//   sketch      full-scan probabilistic counting over one column
//   lowerbound  evaluate the Theorem 1 bound for given n, r, gamma
//   serve       run the NDV stats service over a table (TCP, loopback)
//   query       query a running stats service (get | list | analyze)
//   ingest      replay an append stream through incremental maintenance
//
// Every --in file is auto-detected by content: files starting with the
// ndvpack magic open zero-copy by mmap, everything else parses as CSV.
//
// Examples:
//   ndv_cli generate --kind=zipf --rows=100000 --z=1 --dup=10 --out=data.csv
//   ndv_cli generate --kind=zipf --rows=100000 --out=data.ndvpack
//   ndv_cli pack --in=data.csv --out=data.ndvpack
//   ndv_cli pack --in=data.csv --out=data.ndvpack --codec=delta
//   ndv_cli pack --in=data.csv --out=data.ndvpack --v1   # legacy format
//   ndv_cli estimate --in=data.csv --column=value --fraction=0.01
//   ndv_cli analyze --in=data.ndvpack --fraction=0.05 --out=stats.ndv
//   ndv_cli analyze --in=data.csv --threads=8   # or NDV_THREADS=8
//   ndv_cli analyze --in=data.csv --exact       # full-scan ground truth
//   ndv_cli distributed --in=data.ndvpack --column=value --partitions=8
//   ndv_cli distributed --in=data.csv --fail=0,3   # degraded interval demo
//   ndv_cli sketch --in=data.csv --column=value
//   ndv_cli lowerbound --n=1000000 --r=10000 --gamma=0.5
//   ndv_cli serve --in=data.ndvpack --port=7979
//   ndv_cli serve --in=data.csv --selftest   # in-process smoke, then exit
//   ndv_cli serve --in=data.csv --wal-dir=/var/ndv/catalog --selftest
//     # durable: journal publications, recover the catalog on restart
//   ndv_cli query --port=7979 --op=list
//   ndv_cli query --port=7979 --op=get --column=value
//   ndv_cli query --port=7979 --op=analyze --force
//   ndv_cli generate --kind=zipf --rows=10000 --seed=7 --append-to=data.csv
//     # append freshly generated rows onto an existing dataset
//   ndv_cli ingest --in=data.csv --append=batch.csv --batch-rows=1000
//     # replay batch.csv as an append stream: per-batch incremental
//     # publications, drift trigger, inline re-ANALYZE when it fires

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "catalog/concurrent_catalog.h"
#include "catalog/durable_catalog.h"
#include "catalog/stats_catalog.h"
#include "common/mutex.h"
#include "core/all_estimators.h"
#include "distributed/distributed_analyze.h"
#include "core/bootstrap_interval.h"
#include "core/gee.h"
#include "core/lower_bound.h"
#include "datagen/real_world_like.h"
#include "datagen/zipf.h"
#include "harness/report.h"
#include "ingest/maintenance.h"
#include "serve/socket_transport.h"
#include "serve/stats_service.h"
#include "sketch/exact_counter.h"
#include "storage/materialize.h"
#include "storage/ndvpack.h"
#include "storage/pack_codec.h"
#include "storage/pack_writer.h"
#include "storage/table_loader.h"
#include "table/column_sampling.h"
#include "table/csv.h"

namespace {

using Flags = std::map<std::string, std::string>;

Flags ParseFlags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg] = "true";
    } else {
      flags[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

std::string GetFlag(const Flags& flags, const std::string& name,
                    const std::string& default_value) {
  const auto it = flags.find(name);
  return it == flags.end() ? default_value : it->second;
}

double GetDouble(const Flags& flags, const std::string& name,
                 double default_value) {
  const auto it = flags.find(name);
  return it == flags.end() ? default_value : std::stod(it->second);
}

int64_t GetInt(const Flags& flags, const std::string& name,
               int64_t default_value) {
  const auto it = flags.find(name);
  return it == flags.end() ? default_value : std::stoll(it->second);
}

[[noreturn]] void Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  std::exit(1);
}

// --codec=auto|raw|delta|dict selects the v2 block codec policy for any
// command that writes an .ndvpack file; unknown names fail fast.
ndv::PackCodecChoice GetCodecFlag(const Flags& flags) {
  const std::string name = GetFlag(flags, "codec", "auto");
  ndv::PackCodecChoice codec = ndv::PackCodecChoice::kAutoCodec;
  if (!ndv::ParsePackCodecChoice(name, &codec)) {
    Fail("unknown --codec '" + name + "' (use auto|raw|delta|dict)");
  }
  return codec;
}

// Writes `table` as ndvpack honoring --codec and --v1 (legacy format; the
// two flags are mutually exclusive since v1 has no codec layer).
ndv::Status WritePackWithFlags(const ndv::Table& table,
                               const std::string& out_path,
                               const Flags& flags) {
  const bool v1 = GetFlag(flags, "v1", "false") == "true";
  if (v1) {
    if (flags.count("codec") != 0) {
      Fail("--v1 packs are uncompressed; drop --codec");
    }
    return ndv::WritePackFileV1(table, out_path);
  }
  ndv::PackWriteOptions options;
  options.codec = GetCodecFlag(flags);
  return ndv::WritePackFileV2(table, out_path, options);
}

// Loads --in: .ndvpack images open zero-copy by mmap, anything else is
// read once into one string and parsed as CSV. All failures (missing
// file, malformed CSV, corrupt pack) arrive as a Status naming the path.
ndv::Table LoadTable(const std::string& path) {
  auto table = ndv::LoadTableAuto(path);
  if (!table.ok()) Fail(table.status().ToString());
  return std::move(table).value();
}

const ndv::Column& FindColumnOrDie(const ndv::Table& table,
                                   const std::string& name) {
  const int64_t index = table.FindColumn(name);
  if (index < 0) Fail("no column named '" + name + "'");
  return table.column(index);
}

// A .ndvpack extension selects the binary columnar format; everything
// else writes CSV (readers auto-detect by content either way).
bool IsPackPath(const std::string& path) {
  return path.size() >= 8 &&
         path.compare(path.size() - 8, 8, ".ndvpack") == 0;
}

void WriteTableByExtension(const ndv::Table& table,
                           const std::string& out_path, const Flags& flags) {
  if (IsPackPath(out_path)) {
    const ndv::Status status = WritePackWithFlags(table, out_path, flags);
    if (!status.ok()) Fail(status.ToString());
  } else {
    std::ofstream out(out_path);
    if (!out) Fail("cannot write " + out_path);
    ndv::WriteCsv(table, out);
  }
}

int CmdGenerate(const Flags& flags) {
  const std::string kind = GetFlag(flags, "kind", "zipf");
  const std::string out_path = GetFlag(flags, "out", "");
  const std::string append_to = GetFlag(flags, "append-to", "");
  if (out_path.empty() == append_to.empty()) {
    Fail("exactly one of --out or --append-to is required");
  }

  ndv::Table table;
  if (kind == "zipf") {
    ndv::ZipfColumnOptions options;
    options.rows = GetInt(flags, "rows", 100000);
    options.z = GetDouble(flags, "z", 1.0);
    options.dup_factor = GetInt(flags, "dup", 1);
    options.seed = static_cast<uint64_t>(GetInt(flags, "seed", 42));
    table.AddColumn("value", ndv::MakeZipfColumn(options));
  } else if (kind == "census") {
    table = ndv::MakeCensusLikeScaled(GetInt(flags, "rows", 32561),
                                      static_cast<uint64_t>(GetInt(flags, "seed", 101)));
  } else if (kind == "covertype") {
    table = ndv::MakeCoverTypeLikeScaled(
        GetInt(flags, "rows", 581012),
        static_cast<uint64_t>(GetInt(flags, "seed", 202)));
  } else if (kind == "mssales") {
    table = ndv::MakeMSSalesLikeScaled(
        GetInt(flags, "rows", 1996290),
        static_cast<uint64_t>(GetInt(flags, "seed", 303)));
  } else {
    Fail("unknown --kind (use zipf|census|covertype|mssales)");
  }

  if (!append_to.empty()) {
    // --append-to: extend an existing dataset with the generated rows —
    // the producer side of an append stream (vary --seed between calls so
    // successive batches are not identical). The base's format is kept:
    // CSV stays CSV, ndvpack is rewritten as ndvpack.
    const ndv::Table base = LoadTable(append_to);
    auto combined = ndv::ConcatTables(base, table);
    if (!combined.ok()) Fail(combined.status().ToString());
    WriteTableByExtension(*combined, append_to, flags);
    std::printf("appended %lld rows to %s (%s, now %lld rows x %lld "
                "columns)\n",
                static_cast<long long>(table.NumRows()), append_to.c_str(),
                IsPackPath(append_to) ? "ndvpack" : "csv",
                static_cast<long long>(combined->NumRows()),
                static_cast<long long>(combined->NumColumns()));
    return 0;
  }

  WriteTableByExtension(table, out_path, flags);
  std::printf("wrote %lld rows x %lld columns to %s (%s)\n",
              static_cast<long long>(table.NumRows()),
              static_cast<long long>(table.NumColumns()), out_path.c_str(),
              IsPackPath(out_path) ? "ndvpack" : "csv");
  return 0;
}

int CmdPack(const Flags& flags) {
  const std::string in_path = GetFlag(flags, "in", "");
  const std::string out_path = GetFlag(flags, "out", "");
  if (in_path.empty()) Fail("--in is required");
  if (out_path.empty()) Fail("--out is required");

  const ndv::Table table = LoadTable(in_path);
  const ndv::Status status = WritePackWithFlags(table, out_path, flags);
  if (!status.ok()) Fail(status.ToString());

  // Re-open through the mmap path: proves the file round-trips before
  // anything downstream depends on it, and reports the packed size.
  auto reopened = ndv::OpenPackFile(out_path);
  if (!reopened.ok()) {
    Fail("verification reopen failed: " + reopened.status().ToString());
  }
  std::printf("packed %lld rows x %lld columns to %s\n",
              static_cast<long long>(reopened->NumRows()),
              static_cast<long long>(reopened->NumColumns()),
              out_path.c_str());
  for (int64_t c = 0; c < reopened->NumColumns(); ++c) {
    std::printf("  column '%s': %s\n", reopened->column_name(c).c_str(),
                std::string(ndv::ColumnTypeName(reopened->column(c).type()))
                    .c_str());
  }
  return 0;
}

int CmdEstimate(const Flags& flags) {
  const std::string in_path = GetFlag(flags, "in", "");
  if (in_path.empty()) Fail("--in is required");
  const ndv::Table table = LoadTable(in_path);
  const std::string column_name =
      GetFlag(flags, "column", table.column_name(0));
  const ndv::Column& column = FindColumnOrDie(table, column_name);
  const double fraction = GetDouble(flags, "fraction", 0.01);
  const std::string which = GetFlag(flags, "estimator", "paper");
  const bool bootstrap = GetFlag(flags, "bootstrap", "false") == "true";

  ndv::Rng rng(static_cast<uint64_t>(GetInt(flags, "seed", 1)));
  const ndv::SampleSummary sample =
      ndv::SampleColumnFraction(column, fraction, rng);
  const ndv::GeeBounds bounds = ndv::ComputeGeeBounds(sample);

  std::printf("column '%s': n=%lld, sampled r=%lld, d=%lld, f1=%lld\n",
              column_name.c_str(), static_cast<long long>(sample.n()),
              static_cast<long long>(sample.r()),
              static_cast<long long>(sample.d()),
              static_cast<long long>(sample.f(1)));
  std::printf("GEE interval: [%.0f, %.0f]\n", bounds.lower, bounds.upper);

  std::vector<std::unique_ptr<ndv::Estimator>> estimators;
  if (which == "paper") {
    estimators = ndv::MakePaperComparisonEstimators();
  } else if (which == "all") {
    estimators = ndv::MakeAllEstimators();
  } else {
    auto one = ndv::MakeEstimatorByName(which);
    if (one == nullptr) Fail("unknown estimator '" + which + "'");
    estimators.push_back(std::move(one));
  }

  ndv::TextTable result(bootstrap
                            ? std::vector<std::string>{"estimator", "estimate",
                                                       "boot lower",
                                                       "boot upper"}
                            : std::vector<std::string>{"estimator",
                                                       "estimate"});
  for (const auto& estimator : estimators) {
    std::vector<std::string> row = {std::string(estimator->name()),
                                    ndv::FormatDouble(
                                        estimator->Estimate(sample), 1)};
    if (bootstrap) {
      ndv::BootstrapOptions boot;
      boot.replicates = GetInt(flags, "replicates", 200);
      const ndv::BootstrapInterval interval =
          ndv::ComputeBootstrapInterval(*estimator, sample, boot);
      row.push_back(ndv::FormatDouble(interval.lower, 1));
      row.push_back(ndv::FormatDouble(interval.upper, 1));
    }
    result.AddRow(std::move(row));
  }
  result.Print(std::cout);
  return 0;
}

int CmdAnalyze(const Flags& flags) {
  const std::string in_path = GetFlag(flags, "in", "");
  if (in_path.empty()) Fail("--in is required");
  const ndv::Table table = LoadTable(in_path);
  ndv::AnalyzeOptions options;
  options.sample_fraction = GetDouble(flags, "fraction", 0.01);
  options.estimator = GetFlag(flags, "estimator", "AE");
  options.seed = static_cast<uint64_t>(GetInt(flags, "seed", 1));
  // 0 = auto: DefaultThreadCount(), overridable via NDV_THREADS.
  options.threads = static_cast<int>(GetInt(flags, "threads", 0));
  // --exact: full-scan ground truth (parallel kernel) instead of sampling.
  options.exact = GetFlag(flags, "exact", "false") == "true";
  const ndv::StatsCatalog catalog = ndv::AnalyzeTable(table, options);

  ndv::TextTable result({"column", "estimate", "LOWER", "UPPER", "sampled"});
  for (const ndv::ColumnStats& stats : catalog.entries()) {
    result.AddRow({stats.column_name, ndv::FormatDouble(stats.estimate, 1),
                   ndv::FormatDouble(stats.lower, 1),
                   ndv::FormatDouble(stats.upper, 1),
                   std::to_string(stats.sample_rows)});
  }
  result.Print(std::cout);

  const std::string out_path = GetFlag(flags, "out", "");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) Fail("cannot write " + out_path);
    out << catalog.Serialize();
    std::printf("catalog written to %s\n", out_path.c_str());
  }
  return 0;
}

int CmdDistributed(const Flags& flags) {
  const std::string in_path = GetFlag(flags, "in", "");
  if (in_path.empty()) Fail("--in is required");
  const ndv::Table table = LoadTable(in_path);
  const std::string column_name =
      GetFlag(flags, "column", table.column_name(0));
  const ndv::Column& column = FindColumnOrDie(table, column_name);

  ndv::DistributedAnalyzeOptions options;
  options.partitions = static_cast<int>(GetInt(flags, "partitions", 8));
  options.sample_rows = GetInt(flags, "sample", 10000);
  options.estimator = GetFlag(flags, "estimator", "AE");
  options.seed = static_cast<uint64_t>(GetInt(flags, "seed", 1));
  options.threads = static_cast<int>(GetInt(flags, "threads", 0));
  options.max_attempts = static_cast<int>(GetInt(flags, "max-attempts", 3));

  // --wal-dir persists the finished result (degraded coverage included)
  // through the durable catalog's WAL before the coordinator reports it.
  std::unique_ptr<ndv::DurableCatalog> durable;
  const std::string wal_dir = GetFlag(flags, "wal-dir", "");
  if (!wal_dir.empty()) {
    ndv::DurableCatalogOptions durable_options;
    durable_options.dir = wal_dir;
    auto opened = ndv::DurableCatalog::Open(std::move(durable_options));
    if (!opened.ok()) Fail(opened.status().ToString());
    durable = std::move(*opened);
    options.durable = durable.get();
  }

  // --fail=0,3 permanently fails those partitions: a live demonstration of
  // graceful degradation. Injected faults run on a virtual clock so the
  // retry backoff costs no wall-clock time.
  ndv::FaultPlan faults;
  ndv::VirtualClock virtual_clock;
  const std::string fail_list = GetFlag(flags, "fail", "");
  if (!fail_list.empty()) {
    std::stringstream stream(fail_list);
    std::string token;
    while (std::getline(stream, token, ',')) {
      faults.Set(static_cast<int>(std::stoll(token)),
                 ndv::FaultSpec::FailAlways());
    }
    options.faults = &faults;
    options.clock = &virtual_clock;
  }

  const auto result =
      ndv::DistributedAnalyze(column, column_name, options);
  if (!result.ok()) Fail(result.status().ToString());

  ndv::TextTable outcome_table({"partition", "rows", "attempts", "state"});
  for (const ndv::PartitionOutcome& outcome : result->outcomes) {
    outcome_table.AddRow({std::to_string(outcome.partition),
                          std::to_string(outcome.rows),
                          std::to_string(outcome.attempts),
                          std::string(PartitionStateName(outcome.state))});
  }
  outcome_table.Print(std::cout);

  const ndv::ColumnStats& stats = result->stats;
  std::printf("\ncolumn '%s': %lld rows, %.1f%% scanned (%s)\n",
              stats.column_name.c_str(),
              static_cast<long long>(stats.table_rows),
              100.0 * stats.coverage,
              stats.degraded ? "DEGRADED" : "complete");
  std::printf("%s estimate = %.0f, interval [%.0f, %.0f]\n",
              stats.method.c_str(), stats.estimate, stats.lower, stats.upper);
  if (durable != nullptr) {
    std::printf("result journaled to %s (epoch %llu)\n", wal_dir.c_str(),
                static_cast<unsigned long long>(durable->epoch()));
  }
  return 0;
}

int CmdSketch(const Flags& flags) {
  const std::string in_path = GetFlag(flags, "in", "");
  if (in_path.empty()) Fail("--in is required");
  const ndv::Table table = LoadTable(in_path);
  const std::string column_name =
      GetFlag(flags, "column", table.column_name(0));
  const ndv::Column& column = FindColumnOrDie(table, column_name);

  // Hash the column once with the batch kernel; every counter then
  // consumes the same hash stream without per-row virtual dispatch.
  const std::vector<uint64_t> hashes = column.HashAll();
  ndv::TextTable result({"counter", "estimate", "memory (bytes)"});
  for (auto& counter : ndv::MakeAllDistinctCounters()) {
    counter->AddBatch(hashes);
    result.AddRow({std::string(counter->name()),
                   ndv::FormatDouble(counter->Estimate(), 1),
                   std::to_string(counter->MemoryBytes())});
  }
  result.Print(std::cout);
  return 0;
}

int CmdLowerBound(const Flags& flags) {
  const int64_t n = GetInt(flags, "n", 1000000);
  const int64_t r = GetInt(flags, "r", 10000);
  const double gamma = GetDouble(flags, "gamma", 0.5);
  std::printf("n=%lld r=%lld gamma=%.3f\n", static_cast<long long>(n),
              static_cast<long long>(r), gamma);
  std::printf("Theorem 1: any estimator errs by >= %.3f with probability "
              ">= %.3f on some input\n",
              ndv::TheoremOneErrorBound(n, r, gamma), gamma);
  std::printf("GEE guarantee (Theorem 2): expected error <= %.3f\n",
              ndv::GeeExpectedErrorBound(n, r));
  return 0;
}

void PrintStatsResult(const ndv::StatsClient::StatsResult& result) {
  const ndv::ColumnStats& stats = result.stats;
  std::printf("column '%s' @ epoch %llu%s\n", stats.column_name.c_str(),
              static_cast<unsigned long long>(result.epoch),
              result.stale ? " (STALE: re-ANALYZE recommended)" : "");
  std::printf("  %s estimate = %.1f, interval [%.1f, %.1f]\n",
              stats.method.c_str(), stats.estimate, stats.lower,
              stats.upper);
  std::printf("  table rows %lld, sampled %lld, sample distinct %lld\n",
              static_cast<long long>(stats.table_rows),
              static_cast<long long>(stats.sample_rows),
              static_cast<long long>(stats.sample_distinct));
}

// Exercises the full socket path against a service this process is
// serving: LIST, GET_STATS per column, and a forced ANALYZE that must
// advance the epoch. Returns 0 on success.
int RunServeSelftest(uint16_t port) {
  auto transport = ndv::ConnectSocket("127.0.0.1", port);
  if (!transport.ok()) Fail(transport.status().ToString());
  ndv::StatsClient client(**transport, {});

  const auto columns = client.List();
  if (!columns.ok()) Fail(columns.status().ToString());
  if (columns->empty()) Fail("selftest: service published no columns");
  for (const std::string& name : *columns) {
    const auto stats = client.GetStats(name);
    if (!stats.ok()) Fail(stats.status().ToString());
    PrintStatsResult(*stats);
  }
  const auto first = client.GetStats((*columns)[0]);
  if (!first.ok()) Fail(first.status().ToString());
  const auto analyzed = client.Analyze(/*force=*/true);
  if (!analyzed.ok()) Fail(analyzed.status().ToString());
  if (!analyzed->refreshed || analyzed->epoch <= first->epoch) {
    Fail("selftest: forced ANALYZE did not advance the epoch");
  }
  const auto missing = client.GetStats("__no_such_column__");
  if (missing.ok() ||
      missing.status().code() != ndv::StatusCode::kNotFound) {
    Fail("selftest: expected NotFound for an unknown column");
  }
  std::printf("selftest OK: %zu columns, epoch %llu -> %llu\n",
              columns->size(),
              static_cast<unsigned long long>(first->epoch),
              static_cast<unsigned long long>(analyzed->epoch));
  return 0;
}

int CmdServe(const Flags& flags) {
  const std::string in_path = GetFlag(flags, "in", "");
  if (in_path.empty()) Fail("--in is required");
  auto table = std::make_shared<ndv::Table>(LoadTable(in_path));

  ndv::StatsServiceOptions options;
  options.analyze.sample_fraction = GetDouble(flags, "fraction", 0.01);
  options.analyze.estimator = GetFlag(flags, "estimator", "AE");
  options.analyze.seed = static_cast<uint64_t>(GetInt(flags, "seed", 1));
  options.analyze.threads = static_cast<int>(GetInt(flags, "threads", 0));
  options.stale_changed_fraction =
      GetDouble(flags, "stale-fraction", 0.2);
  options.max_inflight =
      static_cast<int>(GetInt(flags, "max-inflight", 256));

  // --wal-dir turns on durability: the service opens (and recovers) a
  // durable catalog there, journals every publication, and on restart
  // boots from the journal instead of re-scanning the table.
  std::unique_ptr<ndv::DurableCatalog> durable;
  const std::string wal_dir = GetFlag(flags, "wal-dir", "");
  if (!wal_dir.empty()) {
    ndv::DurableCatalogOptions durable_options;
    durable_options.dir = wal_dir;
    const std::string fsync = GetFlag(flags, "fsync", "every");
    if (fsync == "every") {
      durable_options.fsync = ndv::FsyncPolicy::kEveryRecord;
    } else if (fsync == "none") {
      durable_options.fsync = ndv::FsyncPolicy::kNone;
    } else {
      Fail("--fsync must be 'every' or 'none', got '" + fsync + "'");
    }
    durable_options.snapshot_every_records =
        GetInt(flags, "snapshot-every", 1024);
    auto opened = ndv::DurableCatalog::Open(std::move(durable_options));
    if (!opened.ok()) Fail(opened.status().ToString());
    durable = std::move(*opened);
    const ndv::RecoveryInfo& recovery = durable->recovery();
    std::printf(
        "durable catalog %s: recovered epoch %llu in %.3f ms (%lld snapshot "
        "entries%s, %lld WAL records replayed, %lld skipped, %lld torn "
        "bytes truncated)\n",
        wal_dir.c_str(), static_cast<unsigned long long>(recovery.epoch),
        recovery.boot_millis,
        static_cast<long long>(recovery.snapshot_entries),
        recovery.used_fallback_snapshot ? " via fallback snapshot" : "",
        static_cast<long long>(recovery.replayed_records),
        static_cast<long long>(recovery.skipped_records),
        static_cast<long long>(recovery.truncated_bytes));
    options.durable = durable.get();
  }
  ndv::StatsService service(std::move(table), options);

  const bool selftest = GetFlag(flags, "selftest", "false") == "true";
  // --selftest always uses an ephemeral port so parallel ctest runs of the
  // smoke test cannot collide.
  const uint16_t port = static_cast<uint16_t>(
      selftest ? 0 : GetInt(flags, "port", 7979));
  auto server = ndv::SocketServer::Listen(port);
  if (!server.ok()) Fail(server.status().ToString());
  std::printf("ndv stats service on 127.0.0.1:%u (%lld columns, epoch "
              "%llu)\n",
              static_cast<unsigned>((*server)->port()),
              static_cast<long long>(
                  service.Snapshot()->catalog.entries().size()),
              static_cast<unsigned long long>(service.epoch()));

  // Thread-per-connection accept loop; every connection shares the one
  // service, whose snapshot reads and admission gate do the coordination.
  ndv::Mutex workers_mutex;
  std::vector<std::thread> workers;
  const auto accept_loop = [&] {
    for (;;) {
      auto accepted = (*server)->Accept();
      if (!accepted.ok()) return;  // Shutdown (or a fatal accept error).
      std::shared_ptr<ndv::Transport> transport(std::move(*accepted));
      ndv::MutexLock lock(workers_mutex);
      workers.emplace_back([transport, &service] {
        ndv::ServeConnection(*transport, service);
      });
    }
  };

  if (!selftest) {
    accept_loop();  // Serves until the process is killed.
    return 0;
  }

  std::thread acceptor(accept_loop);
  const int result = RunServeSelftest((*server)->port());
  (*server)->Shutdown();
  acceptor.join();
  {
    ndv::MutexLock lock(workers_mutex);
    for (std::thread& worker : workers) worker.join();
  }
  return result;
}

int CmdQuery(const Flags& flags) {
  const std::string host = GetFlag(flags, "host", "127.0.0.1");
  const uint16_t port =
      static_cast<uint16_t>(GetInt(flags, "port", 7979));
  auto transport =
      ndv::ConnectSocket(host, port, GetInt(flags, "connect-timeout", 5000));
  if (!transport.ok()) Fail(transport.status().ToString());

  ndv::StatsClientOptions options;
  options.attempt_timeout_ms = GetInt(flags, "timeout", 2000);
  options.retry.max_attempts =
      static_cast<int>(GetInt(flags, "max-attempts", 3));
  ndv::StatsClient client(**transport, options);

  const std::string op = GetFlag(flags, "op", "list");
  if (op == "list") {
    const auto columns = client.List();
    if (!columns.ok()) Fail(columns.status().ToString());
    for (const std::string& name : *columns) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (op == "get") {
    const std::string column = GetFlag(flags, "column", "");
    if (column.empty()) Fail("--column is required for --op=get");
    const auto stats = client.GetStats(column);
    if (!stats.ok()) Fail(stats.status().ToString());
    PrintStatsResult(*stats);
    return 0;
  }
  if (op == "analyze") {
    const bool force = GetFlag(flags, "force", "false") == "true";
    const auto result = client.Analyze(force);
    if (!result.ok()) Fail(result.status().ToString());
    if (result->refreshed) {
      std::printf("re-analyzed %lld columns; now at epoch %llu\n",
                  static_cast<long long>(result->analyzed_columns),
                  static_cast<unsigned long long>(result->epoch));
    } else {
      std::printf("statistics fresh at epoch %llu (cache hit, nothing "
                  "stale)\n",
                  static_cast<unsigned long long>(result->epoch));
    }
    return 0;
  }
  Fail("unknown --op '" + op + "' (use list|get|analyze)");
}

// Replays --append as an append stream over --in through the incremental
// maintenance subsystem: every --batch-rows rows updates each column's
// tracker in O(batch) and publishes a refreshed estimate + GEE interval as
// a new catalog epoch; when the sketch drift of the reported column escapes
// the interval published by the last full re-ANALYZE, the drift trigger
// fires and a full re-ANALYZE over base + appended-so-far runs inline
// (deterministic single-process mode) and resets the baseline.
int CmdIngest(const Flags& flags) {
  const std::string in_path = GetFlag(flags, "in", "");
  const std::string append_path = GetFlag(flags, "append", "");
  if (in_path.empty()) Fail("--in is required");
  if (append_path.empty()) Fail("--append is required");
  const ndv::Table base = LoadTable(in_path);
  const ndv::Table append = LoadTable(append_path);
  const int64_t batch_rows = GetInt(flags, "batch-rows", 1000);
  if (batch_rows < 1) Fail("--batch-rows must be >= 1");
  for (int64_t c = 0; c < base.NumColumns(); ++c) {
    if (append.FindColumn(base.column_name(c)) < 0) {
      Fail("--append has no column '" + base.column_name(c) + "'");
    }
  }

  ndv::AnalyzeOptions analyze;
  analyze.sample_fraction = GetDouble(flags, "fraction", 0.05);
  analyze.estimator = GetFlag(flags, "estimator", "GEE");
  analyze.seed = static_cast<uint64_t>(GetInt(flags, "seed", 1));
  analyze.threads = static_cast<int>(GetInt(flags, "threads", 0));

  // The initial full ANALYZE of the base table is epoch 1 and every
  // column's drift baseline.
  ndv::ConcurrentStatsCatalog catalog(ndv::AnalyzeTable(base, analyze));

  // The re-ANALYZE callback rebuilds the logical current table — base plus
  // the append prefix observed so far — and scans it afresh.
  int64_t appended_rows = 0;
  const auto reanalyze = [&]() -> ndv::StatusOr<ndv::StatsCatalog> {
    ndv::Table prefix;
    for (int64_t c = 0; c < append.NumColumns(); ++c) {
      auto column =
          ndv::MaterializeColumnSlice(append.column(c), 0, appended_rows);
      if (!column.ok()) return column.status();
      prefix.AddColumn(append.column_name(c), *std::move(column));
    }
    auto combined = ndv::ConcatTables(base, prefix);
    if (!combined.ok()) return combined.status();
    return ndv::AnalyzeTable(*combined, analyze);
  };

  ndv::StatsMaintainerOptions options;
  options.tracker.reservoir_capacity = GetInt(flags, "reservoir", 4096);
  options.tracker.seed = analyze.seed;
  options.estimator = analyze.estimator;
  options.background = false;  // inline re-ANALYZE: deterministic output
  ndv::StatsMaintainer maintainer(&catalog, reanalyze, options);
  for (int64_t c = 0; c < base.NumColumns(); ++c) {
    maintainer.Track(base.column_name(c),
                     ndv::FullColumnSlice(base.column(c)));
  }

  const std::string report = GetFlag(flags, "column", base.column_name(0));
  if (base.FindColumn(report) < 0) Fail("no column named '" + report + "'");

  ndv::TextTable progress({"appended", "epoch", "estimate", "LOWER",
                           "UPPER", "drift", "tolerance", "re-analyzes"});
  for (int64_t begin = 0; begin < append.NumRows(); begin += batch_rows) {
    const int64_t end = std::min(begin + batch_rows, append.NumRows());
    // Advance the append cursor first so a drift-fired re-ANALYZE inside
    // Append covers the whole batch.
    appended_rows = end;
    for (int64_t c = 0; c < base.NumColumns(); ++c) {
      const std::string& name = base.column_name(c);
      const ndv::Column& column =
          append.column(append.FindColumn(name));
      maintainer.Append(name, ndv::ColumnSlice{&column, begin, end});
    }
    const auto published = catalog.Find(report);
    if (!published.has_value()) Fail("published entry vanished");
    progress.AddRow({std::to_string(end),
                     std::to_string(catalog.epoch()),
                     ndv::FormatDouble(published->estimate, 1),
                     ndv::FormatDouble(published->lower, 1),
                     ndv::FormatDouble(published->upper, 1),
                     ndv::FormatDouble(maintainer.Drift(report), 1),
                     ndv::FormatDouble(maintainer.Tolerance(report), 1),
                     std::to_string(maintainer.counters().reanalyzes)});
  }
  progress.Print(std::cout);

  const ndv::Status reanalyze_status = maintainer.last_reanalyze_status();
  if (!reanalyze_status.ok()) Fail(reanalyze_status.ToString());
  const ndv::MaintainerCounters counters = maintainer.counters();
  std::printf("\nappended %lld rows in %lld batches: %lld incremental "
              "publications, %lld drift fires, %lld full re-analyzes "
              "(final epoch %llu)\n",
              static_cast<long long>(counters.rows_appended),
              static_cast<long long>(counters.appends),
              static_cast<long long>(counters.publications),
              static_cast<long long>(counters.drift_fires),
              static_cast<long long>(counters.reanalyzes),
              static_cast<unsigned long long>(catalog.epoch()));
  return 0;
}

void PrintUsage() {
  std::fprintf(stderr,
               "usage: ndv_cli "
               "<generate|pack|estimate|analyze|distributed|sketch|"
               "lowerbound|serve|query|ingest> "
               "[--flag=value ...]\nsee the header of tools/ndv_cli.cc for "
               "examples\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  const std::string command = argv[1];
  const Flags flags = ParseFlags(argc, argv, 2);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "pack") return CmdPack(flags);
  if (command == "estimate") return CmdEstimate(flags);
  if (command == "analyze") return CmdAnalyze(flags);
  if (command == "distributed") return CmdDistributed(flags);
  if (command == "sketch") return CmdSketch(flags);
  if (command == "lowerbound") return CmdLowerBound(flags);
  if (command == "serve") return CmdServe(flags);
  if (command == "query") return CmdQuery(flags);
  if (command == "ingest") return CmdIngest(flags);
  PrintUsage();
  return 2;
}
