#ifndef NDV_EXEC_AGGREGATE_H_
#define NDV_EXEC_AGGREGATE_H_

#include <cstdint>
#include <vector>

#include "table/column.h"

namespace ndv {

// A miniature GROUP BY executor: the operator whose plan choice the
// paper's motivation hinges on. Hash aggregation is fast while the group
// table fits in memory; sort aggregation costs O(n log n) but its memory
// is independent of the number of groups. The planner (planner.h) picks
// between them using a distinct-value estimate — making NDV estimation
// errors directly observable as execution-time regret.

struct GroupCount {
  uint64_t group = 0;  // value hash of the group key
  int64_t rows = 0;
};

struct AggregateStats {
  int64_t groups = 0;
  int64_t rows = 0;
  // True peak group-table capacity in slots (the largest table the hash
  // aggregation ever allocated — a power of two >= groups), not the final
  // group count: an executor budgeting memory must account for the table,
  // not the survivors. 0 for sort aggregation, which keeps no table.
  int64_t peak_group_table_entries = 0;
  // Final occupancy of the group table, groups / capacity (<= 0.75 by the
  // flat counter's growth policy); 0 for sort aggregation.
  double group_table_load_factor = 0.0;
};

// COUNT(*) GROUP BY column via a hash table. `result` (optional) receives
// the per-group counts in unspecified order.
AggregateStats HashAggregateCount(const Column& column,
                                  std::vector<GroupCount>* result = nullptr);

// COUNT(*) GROUP BY column via sort + run-length scan. `result` (optional)
// receives the counts ordered by group hash. Peak group-table memory is
// reported as 0 (the sort works on a flat array).
AggregateStats SortAggregateCount(const Column& column,
                                  std::vector<GroupCount>* result = nullptr);

// True when the two executors produce identical group/count multisets
// (test helper).
bool SameGroupCounts(std::vector<GroupCount> a, std::vector<GroupCount> b);

}  // namespace ndv

#endif  // NDV_EXEC_AGGREGATE_H_
