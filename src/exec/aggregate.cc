#include "exec/aggregate.h"

#include <algorithm>

#include "common/flat_hash.h"

namespace ndv {

AggregateStats HashAggregateCount(const Column& column,
                                  std::vector<GroupCount>* result) {
  column.PrepareFullScan();
  constexpr int64_t kBlock = 4096;
  uint64_t block[kBlock];
  FlatHashCounter groups;
  const int64_t n = column.size();
  for (int64_t b = 0; b < n; b += kBlock) {
    const int64_t block_end = std::min(n, b + kBlock);
    column.HashSlice(b, block_end, block);
    const int64_t count = block_end - b;
    for (int64_t i = 0; i < count; ++i) groups.Add(block[i]);
  }
  AggregateStats stats;
  stats.rows = n;
  stats.groups = groups.size();
  stats.peak_group_table_entries = groups.PeakCapacity();
  stats.group_table_load_factor = groups.LoadFactor();
  if (result != nullptr) {
    result->clear();
    result->reserve(static_cast<size_t>(groups.size()));
    groups.ForEach([result](uint64_t group, int64_t rows) {
      result->push_back({group, rows});
    });
  }
  return stats;
}

AggregateStats SortAggregateCount(const Column& column,
                                  std::vector<GroupCount>* result) {
  const int64_t n = column.size();
  std::vector<uint64_t> hashes = column.HashAll();
  std::sort(hashes.begin(), hashes.end());

  AggregateStats stats;
  stats.rows = n;
  stats.peak_group_table_entries = 0;
  if (result != nullptr) result->clear();
  size_t run_start = 0;
  for (size_t i = 0; i <= hashes.size(); ++i) {
    if (i == hashes.size() || hashes[i] != hashes[run_start]) {
      if (i > run_start) {
        ++stats.groups;
        if (result != nullptr) {
          result->push_back({hashes[run_start],
                             static_cast<int64_t>(i - run_start)});
        }
      }
      run_start = i;
    }
  }
  return stats;
}

bool SameGroupCounts(std::vector<GroupCount> a, std::vector<GroupCount> b) {
  const auto by_group = [](const GroupCount& x, const GroupCount& y) {
    return x.group < y.group;
  };
  std::sort(a.begin(), a.end(), by_group);
  std::sort(b.begin(), b.end(), by_group);
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].group != b[i].group || a[i].rows != b[i].rows) return false;
  }
  return true;
}

}  // namespace ndv
