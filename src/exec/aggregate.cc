#include "exec/aggregate.h"

#include <algorithm>
#include <unordered_map>

namespace ndv {

AggregateStats HashAggregateCount(const Column& column,
                                  std::vector<GroupCount>* result) {
  std::unordered_map<uint64_t, int64_t> groups;
  const int64_t n = column.size();
  for (int64_t row = 0; row < n; ++row) {
    ++groups[column.HashAt(row)];
  }
  AggregateStats stats;
  stats.rows = n;
  stats.groups = static_cast<int64_t>(groups.size());
  stats.peak_group_table_entries = stats.groups;
  if (result != nullptr) {
    result->clear();
    result->reserve(groups.size());
    for (const auto& [group, rows] : groups) {
      result->push_back({group, rows});
    }
  }
  return stats;
}

AggregateStats SortAggregateCount(const Column& column,
                                  std::vector<GroupCount>* result) {
  const int64_t n = column.size();
  std::vector<uint64_t> hashes;
  hashes.reserve(static_cast<size_t>(n));
  for (int64_t row = 0; row < n; ++row) {
    hashes.push_back(column.HashAt(row));
  }
  std::sort(hashes.begin(), hashes.end());

  AggregateStats stats;
  stats.rows = n;
  stats.peak_group_table_entries = 0;
  if (result != nullptr) result->clear();
  size_t run_start = 0;
  for (size_t i = 0; i <= hashes.size(); ++i) {
    if (i == hashes.size() || hashes[i] != hashes[run_start]) {
      if (i > run_start) {
        ++stats.groups;
        if (result != nullptr) {
          result->push_back({hashes[run_start],
                             static_cast<int64_t>(i - run_start)});
        }
      }
      run_start = i;
    }
  }
  return stats;
}

bool SameGroupCounts(std::vector<GroupCount> a, std::vector<GroupCount> b) {
  const auto by_group = [](const GroupCount& x, const GroupCount& y) {
    return x.group < y.group;
  };
  std::sort(a.begin(), a.end(), by_group);
  std::sort(b.begin(), b.end(), by_group);
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].group != b[i].group || a[i].rows != b[i].rows) return false;
  }
  return true;
}

}  // namespace ndv
