#ifndef NDV_EXEC_PLANNER_H_
#define NDV_EXEC_PLANNER_H_

#include <cstdint>
#include <string_view>

#include "estimators/estimator.h"
#include "exec/aggregate.h"

namespace ndv {

// The NDV-consuming plan decision the paper's introduction motivates:
// given an estimate of GROUP BY cardinality and a memory budget, choose
// hash aggregation (fast, memory ~ groups) or sort aggregation (slower,
// memory-flat). An overestimated D wastes time on an unnecessary sort; an
// underestimate blows the memory budget (modeled here as a spill penalty).

enum class AggStrategy {
  kHash,
  kSort,
};

std::string_view AggStrategyName(AggStrategy strategy);

// Hash when the estimated group table fits the budget.
AggStrategy ChooseAggStrategy(double estimated_groups,
                              int64_t memory_budget_groups);

// Cost model (unit: row-operations) mirroring the executors' asymptotics:
//   hash: rows * kHashCostPerRow, plus a spill penalty factor when the
//         true group count exceeds the budget (the table no longer fits);
//   sort: rows * log2(rows) * kSortCostPerRowLog.
// Deliberately simple — just enough structure for estimation errors to
// translate into regret.
double AggregateCost(AggStrategy strategy, int64_t rows, int64_t true_groups,
                     int64_t memory_budget_groups);

// The decision an oracle (true D known) would make: whichever strategy has
// the lower modeled cost.
AggStrategy OracleAggStrategy(int64_t rows, int64_t true_groups,
                              int64_t memory_budget_groups);

struct PlanOutcome {
  AggStrategy chosen = AggStrategy::kHash;
  AggStrategy oracle = AggStrategy::kHash;
  double estimated_groups = 0.0;
  double chosen_cost = 0.0;   // modeled cost of the chosen plan
  double oracle_cost = 0.0;   // modeled cost of the oracle plan
  // chosen_cost / oracle_cost, >= 1; the price of the estimation error.
  double regret = 1.0;
};

// Runs the decision for a column whose distinct count was estimated by
// `estimator` from `summary`, against the truth `true_groups`.
PlanOutcome EvaluatePlanChoice(const Estimator& estimator,
                               const SampleSummary& summary,
                               int64_t true_groups,
                               int64_t memory_budget_groups);

}  // namespace ndv

#endif  // NDV_EXEC_PLANNER_H_
