#include "exec/planner.h"

#include <cmath>

#include "common/check.h"

namespace ndv {
namespace {

// Relative per-row costs; calibrated to the shape (not the absolute speed)
// of the two executors: hashing a row is cheap, sorting pays a log factor.
// A hash plan whose group table blows the budget is aborted and restarted
// as a sort — paying the wasted hash pass on top of the full sort.
constexpr double kHashCostPerRow = 1.0;
constexpr double kSortCostPerRowLog = 0.25;

double SortCost(int64_t rows) {
  const double log_rows =
      std::log2(std::fmax(2.0, static_cast<double>(rows)));
  return static_cast<double>(rows) * log_rows * kSortCostPerRowLog;
}

}  // namespace

std::string_view AggStrategyName(AggStrategy strategy) {
  return strategy == AggStrategy::kHash ? "hash-agg" : "sort-agg";
}

AggStrategy ChooseAggStrategy(double estimated_groups,
                              int64_t memory_budget_groups) {
  NDV_CHECK(memory_budget_groups >= 1);
  return estimated_groups <= static_cast<double>(memory_budget_groups)
             ? AggStrategy::kHash
             : AggStrategy::kSort;
}

double AggregateCost(AggStrategy strategy, int64_t rows, int64_t true_groups,
                     int64_t memory_budget_groups) {
  NDV_CHECK(rows >= 1);
  NDV_CHECK(true_groups >= 1);
  NDV_CHECK(memory_budget_groups >= 1);
  if (strategy == AggStrategy::kHash) {
    const double hash_pass = static_cast<double>(rows) * kHashCostPerRow;
    if (true_groups <= memory_budget_groups) return hash_pass;
    // Budget blown: the wasted hash pass plus the fallback sort.
    return hash_pass + SortCost(rows);
  }
  return SortCost(rows);
}

AggStrategy OracleAggStrategy(int64_t rows, int64_t true_groups,
                              int64_t memory_budget_groups) {
  const double hash = AggregateCost(AggStrategy::kHash, rows, true_groups,
                                    memory_budget_groups);
  const double sort = AggregateCost(AggStrategy::kSort, rows, true_groups,
                                    memory_budget_groups);
  return hash <= sort ? AggStrategy::kHash : AggStrategy::kSort;
}

PlanOutcome EvaluatePlanChoice(const Estimator& estimator,
                               const SampleSummary& summary,
                               int64_t true_groups,
                               int64_t memory_budget_groups) {
  PlanOutcome outcome;
  outcome.estimated_groups = estimator.Estimate(summary);
  outcome.chosen =
      ChooseAggStrategy(outcome.estimated_groups, memory_budget_groups);
  outcome.oracle = OracleAggStrategy(summary.n(), true_groups,
                                     memory_budget_groups);
  outcome.chosen_cost = AggregateCost(outcome.chosen, summary.n(),
                                      true_groups, memory_budget_groups);
  outcome.oracle_cost = AggregateCost(outcome.oracle, summary.n(),
                                      true_groups, memory_budget_groups);
  outcome.regret = outcome.chosen_cost / outcome.oracle_cost;
  return outcome;
}

}  // namespace ndv
