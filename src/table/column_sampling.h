#ifndef NDV_TABLE_COLUMN_SAMPLING_H_
#define NDV_TABLE_COLUMN_SAMPLING_H_

#include <cstdint>
#include <span>

#include "common/random.h"
#include "profile/frequency_profile.h"
#include "table/column.h"

namespace ndv {

// Glue between row sampling and the frequency profile: batch-hashes the
// sampled rows of a column and streams them through a flat counter into a
// SampleSummary (one pass, no intermediate hash vector).

enum class SamplingScheme {
  kWithReplacement,
  kWithoutReplacement,  // Floyd's algorithm
  kBernoulli,           // expected fraction q; actual r varies per draw
};

// Builds the SampleSummary for the given pre-selected rows of `column`.
SampleSummary SummarizeRows(const Column& column,
                            std::span<const int64_t> rows);

// Draws a sample of `sample_rows` rows (or expected fraction
// sample_rows/size for Bernoulli) and summarizes it. Requires
// 0 <= sample_rows <= column.size().
SampleSummary SampleColumn(const Column& column, int64_t sample_rows,
                           SamplingScheme scheme, Rng& rng);

// Convenience: sample a fraction of the column without replacement, as the
// paper's experiments do. `fraction` in [0, 1]; the sample size is
// round(fraction * n) clamped to [1, n] (the paper never samples 0 rows).
SampleSummary SampleColumnFraction(const Column& column, double fraction,
                                   Rng& rng);

}  // namespace ndv

#endif  // NDV_TABLE_COLUMN_SAMPLING_H_
