#ifndef NDV_TABLE_TABLE_H_
#define NDV_TABLE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "table/column.h"

namespace ndv {

// A minimal in-memory columnar table: named, equally-sized columns. This is
// the substrate the experiments run on (the paper used SQL Server tables;
// only uniform row access and value equality matter for the estimators).
class Table {
 public:
  Table() = default;

  // Move-only: columns can be large.
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  // Appends a column. All columns must have the same number of rows; the
  // first column fixes the row count.
  void AddColumn(std::string name, std::unique_ptr<Column> column);

  int64_t NumRows() const { return num_rows_; }
  int64_t NumColumns() const { return static_cast<int64_t>(columns_.size()); }

  const Column& column(int64_t i) const {
    NDV_CHECK(0 <= i && i < NumColumns());
    return *columns_[static_cast<size_t>(i)];
  }
  const std::string& column_name(int64_t i) const {
    NDV_CHECK(0 <= i && i < NumColumns());
    return names_[static_cast<size_t>(i)];
  }

  // Returns the index of the column named `name`, or -1 if absent.
  int64_t FindColumn(std::string_view name) const;

 private:
  std::vector<std::string> names_;
  std::vector<std::unique_ptr<Column>> columns_;
  int64_t num_rows_ = 0;
};

// Exact number of distinct values in `column`, via a flat hash set over
// batch-computed value hashes. O(n) time, O(D) space. (Hash collisions
// across *distinct* values would undercount; with 64-bit hashes the
// probability is ~D^2/2^64, negligible at this library's scales.)
//
// Large columns are scanned in parallel on the shared pool: each chunk
// builds a private set and the chunks are unioned afterwards, so the count
// is bit-identical at every thread count (set union is order-independent).
// `threads`: 0 = auto (DefaultThreadCount(), honors NDV_THREADS); 1 = run
// inline; nested calls from pool workers always run inline.
int64_t ExactDistinctHashSet(const Column& column, int threads = 0);

// Exact distinct count via sort; O(n log n) time but no hash-collision
// caveat within the sorted hash space. Used to cross-check the hash-set
// counter in tests.
int64_t ExactDistinctSorted(const Column& column);

}  // namespace ndv

#endif  // NDV_TABLE_TABLE_H_
