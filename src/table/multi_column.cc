#include "table/multi_column.h"

#include "common/check.h"
#include "common/random.h"

namespace ndv {

CombinedColumn::CombinedColumn(std::vector<const Column*> columns)
    : columns_(std::move(columns)) {
  NDV_CHECK(!columns_.empty());
  rows_ = columns_[0]->size();
  for (const Column* column : columns_) {
    NDV_CHECK(column != nullptr);
    NDV_CHECK_MSG(column->size() == rows_,
                  "combined columns must have equal sizes");
  }
}

CombinedColumn::CombinedColumn(const Table& table,
                               std::vector<int64_t> column_indexes) {
  NDV_CHECK(!column_indexes.empty());
  columns_.reserve(column_indexes.size());
  for (int64_t index : column_indexes) {
    columns_.push_back(&table.column(index));
  }
  rows_ = table.NumRows();
}

uint64_t CombinedColumn::HashAt(int64_t row) const {
  NDV_DCHECK(0 <= row && row < rows_);
  // Order-dependent combination: (a, b) and (b, a) hash differently. The
  // running hash is remixed per component so tuple structure is preserved
  // (no collisions between (x, y) and (x ^ y, 0)-style aggregates).
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const Column* column : columns_) {
    h = Hash64(h ^ column->HashAt(row));
  }
  return h;
}

std::string CombinedColumn::ValueToString(int64_t row) const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i]->ValueToString(row);
  }
  out += ")";
  return out;
}

}  // namespace ndv
