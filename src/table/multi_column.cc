#include "table/multi_column.h"

#include <algorithm>

#include "common/check.h"
#include "common/random.h"

namespace ndv {

CombinedColumn::CombinedColumn(std::vector<const Column*> columns)
    : columns_(std::move(columns)) {
  NDV_CHECK(!columns_.empty());
  rows_ = columns_[0]->size();
  for (const Column* column : columns_) {
    NDV_CHECK(column != nullptr);
    NDV_CHECK_MSG(column->size() == rows_,
                  "combined columns must have equal sizes");
  }
}

CombinedColumn::CombinedColumn(const Table& table,
                               std::vector<int64_t> column_indexes) {
  NDV_CHECK(!column_indexes.empty());
  columns_.reserve(column_indexes.size());
  for (int64_t index : column_indexes) {
    columns_.push_back(&table.column(index));
  }
  rows_ = table.NumRows();
}

uint64_t CombinedColumn::HashAt(int64_t row) const {
  NDV_DCHECK(0 <= row && row < rows_);
  // Order-dependent combination: (a, b) and (b, a) hash differently. The
  // running hash is remixed per component so tuple structure is preserved
  // (no collisions between (x, y) and (x ^ y, 0)-style aggregates).
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const Column* column : columns_) {
    h = Hash64(h ^ column->HashAt(row));
  }
  return h;
}

namespace {

// Component hashes are produced in blocks of this many rows, then folded
// into the running tuple hash; keeps the scratch buffer in L1 while still
// amortizing each component's virtual call over the block.
constexpr int64_t kCombineBlock = 1024;

}  // namespace

void CombinedColumn::HashRange(std::span<const int64_t> rows,
                               uint64_t* out) const {
  uint64_t component[kCombineBlock];
  for (size_t offset = 0; offset < rows.size(); offset += kCombineBlock) {
    const size_t count =
        std::min(static_cast<size_t>(kCombineBlock), rows.size() - offset);
    uint64_t* block = out + offset;
    for (size_t i = 0; i < count; ++i) block[i] = 0x9e3779b97f4a7c15ULL;
    for (const Column* column : columns_) {
      column->HashRange(rows.subspan(offset, count), component);
      for (size_t i = 0; i < count; ++i) {
        block[i] = Hash64(block[i] ^ component[i]);
      }
    }
  }
}

void CombinedColumn::HashSlice(int64_t begin, int64_t end,
                               uint64_t* out) const {
  NDV_DCHECK(0 <= begin && begin <= end && end <= rows_);
  uint64_t component[kCombineBlock];
  for (int64_t block_begin = begin; block_begin < end;
       block_begin += kCombineBlock) {
    const int64_t block_end = std::min(end, block_begin + kCombineBlock);
    const int64_t count = block_end - block_begin;
    uint64_t* block = out + (block_begin - begin);
    for (int64_t i = 0; i < count; ++i) block[i] = 0x9e3779b97f4a7c15ULL;
    for (const Column* column : columns_) {
      column->HashSlice(block_begin, block_end, component);
      for (int64_t i = 0; i < count; ++i) {
        block[i] = Hash64(block[i] ^ component[i]);
      }
    }
  }
}

std::string CombinedColumn::ValueToString(int64_t row) const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i]->ValueToString(row);
  }
  out += ")";
  return out;
}

}  // namespace ndv
