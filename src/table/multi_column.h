#ifndef NDV_TABLE_MULTI_COLUMN_H_
#define NDV_TABLE_MULTI_COLUMN_H_

#include <cstdint>
#include <vector>

#include "table/column.h"
#include "table/table.h"

namespace ndv {

// A virtual column over the tuple of several columns: row k's "value" is
// the combination (col_1[k], ..., col_m[k]). Distinct counting over it
// estimates the number of distinct GROUP BY combinations — the
// multi-attribute cardinality a query optimizer needs for
// GROUP BY a, b, c or multi-column join keys.
//
// The view borrows the underlying columns; they must outlive it.
class CombinedColumn final : public Column {
 public:
  // Requires a non-empty set of equally-sized columns.
  explicit CombinedColumn(std::vector<const Column*> columns);

  // Convenience: combine table columns selected by index.
  CombinedColumn(const Table& table, std::vector<int64_t> column_indexes);

  ColumnType type() const override { return ColumnType::kInt64; }
  int64_t size() const override { return rows_; }
  uint64_t HashAt(int64_t row) const override;
  void HashRange(std::span<const int64_t> rows, uint64_t* out) const override;
  void HashSlice(int64_t begin, int64_t end, uint64_t* out) const override;
  std::string ValueToString(int64_t row) const override;
  // Scan advice fans out to every component column.
  void PrepareFullScan() const override {
    for (const Column* column : columns_) column->PrepareFullScan();
  }
  void PrefetchRows(int64_t begin, int64_t end) const override {
    for (const Column* column : columns_) column->PrefetchRows(begin, end);
  }

  int64_t NumComponents() const {
    return static_cast<int64_t>(columns_.size());
  }

 private:
  std::vector<const Column*> columns_;
  int64_t rows_ = 0;
};

}  // namespace ndv

#endif  // NDV_TABLE_MULTI_COLUMN_H_
