#include "table/column.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <unordered_map>

namespace ndv {

std::string_view ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "int64";
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kString:
      return "string";
  }
  return "unknown";
}

uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return Hash64(h);
}

uint64_t DoubleColumn::HashAt(int64_t row) const {
  NDV_DCHECK(0 <= row && row < size());
  double v = values_[static_cast<size_t>(row)];
  if (v == 0.0) v = 0.0;  // Canonicalize -0.0.
  if (std::isnan(v)) v = std::numeric_limits<double>::quiet_NaN();
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return Hash64(bits);
}

StringColumn::StringColumn(const std::vector<std::string>& values) {
  std::unordered_map<std::string, int32_t> index;
  index.reserve(values.size());
  codes_.reserve(values.size());
  for (const std::string& v : values) {
    auto [it, inserted] =
        index.emplace(v, static_cast<int32_t>(dictionary_.size()));
    if (inserted) dictionary_.push_back(v);
    codes_.push_back(it->second);
  }
  ComputeHashes();
}

StringColumn::StringColumn(std::vector<std::string> dictionary,
                           std::vector<int32_t> codes)
    : dictionary_(std::move(dictionary)), codes_(std::move(codes)) {
  for (int32_t code : codes_) {
    NDV_CHECK(0 <= code &&
              code < static_cast<int32_t>(dictionary_.size()));
  }
  ComputeHashes();
}

void StringColumn::ComputeHashes() {
  hashes_.reserve(dictionary_.size());
  for (const std::string& s : dictionary_) hashes_.push_back(HashBytes(s));
}

}  // namespace ndv
