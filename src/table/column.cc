#include "table/column.h"

#include <unordered_map>

#include "common/simd_hash.h"

namespace ndv {

std::string_view ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "int64";
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kString:
      return "string";
  }
  return "unknown";
}

void Column::HashRange(std::span<const int64_t> rows, uint64_t* out) const {
  // Generic fallback for column types without a batched loop: still one
  // virtual call per row, but callers get the batch interface uniformly.
  for (size_t i = 0; i < rows.size(); ++i) out[i] = HashAt(rows[i]);
}

void Column::HashSlice(int64_t begin, int64_t end, uint64_t* out) const {
  NDV_DCHECK(0 <= begin && begin <= end && end <= size());
  for (int64_t row = begin; row < end; ++row) out[row - begin] = HashAt(row);
}

std::vector<uint64_t> Column::HashAll() const {
  PrepareFullScan();
  std::vector<uint64_t> hashes(static_cast<size_t>(size()));
  HashSlice(0, size(), hashes.data());
  return hashes;
}

void Int64Column::HashRange(std::span<const int64_t> rows,
                            uint64_t* out) const {
#if NDV_DCHECK_ENABLED
  for (const int64_t row : rows) NDV_DCHECK(0 <= row && row < size());
#endif
  HashInt64Gather(values_.data(), rows.data(), rows.size(), out);
}

void Int64Column::HashSlice(int64_t begin, int64_t end, uint64_t* out) const {
  NDV_DCHECK(0 <= begin && begin <= end && end <= size());
  HashInt64Span(values_.data() + begin, static_cast<size_t>(end - begin),
                out);
}

uint64_t DoubleColumn::HashAt(int64_t row) const {
  NDV_DCHECK(0 <= row && row < size());
  return HashDoubleValue(values_[static_cast<size_t>(row)]);
}

void DoubleColumn::HashRange(std::span<const int64_t> rows,
                             uint64_t* out) const {
#if NDV_DCHECK_ENABLED
  for (const int64_t row : rows) NDV_DCHECK(0 <= row && row < size());
#endif
  HashDoubleGather(values_.data(), rows.data(), rows.size(), out);
}

void DoubleColumn::HashSlice(int64_t begin, int64_t end, uint64_t* out) const {
  NDV_DCHECK(0 <= begin && begin <= end && end <= size());
  HashDoubleSpan(values_.data() + begin, static_cast<size_t>(end - begin),
                 out);
}

void StringColumn::HashRange(std::span<const int64_t> rows,
                             uint64_t* out) const {
  const int32_t* codes = codes_.data();
  const uint64_t* hashes = hashes_.data();
  for (size_t i = 0; i < rows.size(); ++i) {
    NDV_DCHECK(0 <= rows[i] && rows[i] < size());
    out[i] = hashes[static_cast<size_t>(codes[rows[i]])];
  }
}

void StringColumn::HashSlice(int64_t begin, int64_t end, uint64_t* out) const {
  NDV_DCHECK(0 <= begin && begin <= end && end <= size());
  HashLookupCodes32(codes_.data() + begin, hashes_.data(),
                    static_cast<size_t>(end - begin), out);
}

StringColumn::StringColumn(const std::vector<std::string>& values) {
  // NOLINTNEXTLINE(ndv-no-std-hash-container): interning map, lookups only;
  // codes are assigned in input order, never map iteration order.
  std::unordered_map<std::string, int32_t> index;
  index.reserve(values.size());
  codes_.reserve(values.size());
  for (const std::string& v : values) {
    auto [it, inserted] =
        index.emplace(v, static_cast<int32_t>(dictionary_.size()));
    if (inserted) dictionary_.push_back(v);
    codes_.push_back(it->second);
  }
  ComputeHashes();
}

StringColumn::StringColumn(std::vector<std::string> dictionary,
                           std::vector<int32_t> codes)
    : dictionary_(std::move(dictionary)), codes_(std::move(codes)) {
  for (int32_t code : codes_) {
    NDV_CHECK(0 <= code &&
              code < static_cast<int32_t>(dictionary_.size()));
  }
  ComputeHashes();
}

void StringColumn::ComputeHashes() {
  hashes_.reserve(dictionary_.size());
  for (const std::string& s : dictionary_) hashes_.push_back(HashBytes(s));
}

}  // namespace ndv
