#include "table/table.h"

#include <algorithm>
#include <unordered_set>

namespace ndv {

void Table::AddColumn(std::string name, std::unique_ptr<Column> column) {
  NDV_CHECK(column != nullptr);
  if (columns_.empty()) {
    num_rows_ = column->size();
  } else {
    NDV_CHECK_MSG(column->size() == num_rows_,
                  "column '%s' has %lld rows, table has %lld", name.c_str(),
                  static_cast<long long>(column->size()),
                  static_cast<long long>(num_rows_));
  }
  names_.push_back(std::move(name));
  columns_.push_back(std::move(column));
}

int64_t Table::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int64_t>(i);
  }
  return -1;
}

int64_t ExactDistinctHashSet(const Column& column) {
  std::unordered_set<uint64_t> seen;
  seen.reserve(static_cast<size_t>(column.size()));
  for (int64_t row = 0; row < column.size(); ++row) {
    seen.insert(column.HashAt(row));
  }
  return static_cast<int64_t>(seen.size());
}

int64_t ExactDistinctSorted(const Column& column) {
  std::vector<uint64_t> hashes;
  hashes.reserve(static_cast<size_t>(column.size()));
  for (int64_t row = 0; row < column.size(); ++row) {
    hashes.push_back(column.HashAt(row));
  }
  std::sort(hashes.begin(), hashes.end());
  hashes.erase(std::unique(hashes.begin(), hashes.end()), hashes.end());
  return static_cast<int64_t>(hashes.size());
}

}  // namespace ndv
