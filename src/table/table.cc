#include "table/table.h"

#include <algorithm>
#include <vector>

#include "common/flat_hash.h"
#include "common/thread_pool.h"

namespace ndv {

void Table::AddColumn(std::string name, std::unique_ptr<Column> column) {
  NDV_CHECK(column != nullptr);
  if (columns_.empty()) {
    num_rows_ = column->size();
  } else {
    NDV_CHECK_MSG(column->size() == num_rows_,
                  "column '%s' has %lld rows, table has %lld", name.c_str(),
                  static_cast<long long>(column->size()),
                  static_cast<long long>(num_rows_));
  }
  names_.push_back(std::move(name));
  columns_.push_back(std::move(column));
}

int64_t Table::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int64_t>(i);
  }
  return -1;
}

namespace {

// Rows hashed per batch when streaming a scan into a counter: large enough
// to amortize the per-batch virtual call, small enough that the scratch
// buffer (32 KiB) stays cache-resident.
constexpr int64_t kScanBlock = 4096;

// Minimum rows per parallel chunk; below this the scan is too cheap to
// amortize the fan-out to the pool.
constexpr int64_t kMinParallelRows = 1 << 16;

void InsertSliceHashes(const Column& column, int64_t begin, int64_t end,
                       FlatHashSet& seen) {
  uint64_t block[kScanBlock];
  for (int64_t b = begin; b < end; b += kScanBlock) {
    const int64_t block_end = std::min(end, b + kScanBlock);
    column.HashSlice(b, block_end, block);
    const int64_t count = block_end - b;
    for (int64_t i = 0; i < count; ++i) seen.Insert(block[i]);
  }
}

}  // namespace

int64_t ExactDistinctHashSet(const Column& column, int threads) {
  column.PrepareFullScan();  // Every row is read in order (per chunk).
  const int64_t n = column.size();
  const int workers = ResolveThreadCount(threads);
  if (workers <= 1 || n < 2 * kMinParallelRows ||
      ThreadPool::OnWorkerThread()) {
    FlatHashSet seen(n);
    InsertSliceHashes(column, 0, n, seen);
    return seen.size();
  }

  const int64_t chunks =
      std::min<int64_t>(workers, (n + kMinParallelRows - 1) / kMinParallelRows);
  const int64_t rows_per_chunk = (n + chunks - 1) / chunks;
  std::vector<FlatHashSet> locals(static_cast<size_t>(chunks));
  ParallelFor(chunks, workers, [&](int64_t c) {
    const int64_t begin = c * rows_per_chunk;
    const int64_t end = std::min(n, begin + rows_per_chunk);
    InsertSliceHashes(column, begin, end, locals[static_cast<size_t>(c)]);
  });

  // Union the per-chunk sets. The union's cardinality does not depend on
  // the chunking or the merge order, so the result is bit-identical to the
  // serial scan at every thread count.
  FlatHashSet& merged = locals[0];
  for (size_t c = 1; c < locals.size(); ++c) merged.MergeFrom(locals[c]);
  return merged.size();
}

int64_t ExactDistinctSorted(const Column& column) {
  std::vector<uint64_t> hashes = column.HashAll();
  std::sort(hashes.begin(), hashes.end());
  hashes.erase(std::unique(hashes.begin(), hashes.end()), hashes.end());
  return static_cast<int64_t>(hashes.size());
}

}  // namespace ndv
