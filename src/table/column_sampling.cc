#include "table/column_sampling.h"

#include <cmath>
#include <vector>

#include "common/check.h"
#include "sample/samplers.h"

namespace ndv {

SampleSummary SummarizeRows(const Column& column,
                            std::span<const int64_t> rows) {
  std::vector<uint64_t> hashes;
  hashes.reserve(rows.size());
  for (int64_t row : rows) {
    NDV_DCHECK(0 <= row && row < column.size());
    hashes.push_back(column.HashAt(row));
  }
  SampleSummary summary;
  summary.table_rows = column.size();
  summary.sample_rows = static_cast<int64_t>(rows.size());
  summary.freq = FrequencyProfile::FromValues(hashes);
  summary.Validate();
  return summary;
}

SampleSummary SampleColumn(const Column& column, int64_t sample_rows,
                           SamplingScheme scheme, Rng& rng) {
  const int64_t n = column.size();
  NDV_CHECK(0 <= sample_rows && sample_rows <= n);
  std::vector<int64_t> rows;
  bool distinct_rows = true;
  switch (scheme) {
    case SamplingScheme::kWithReplacement:
      rows = SampleWithReplacement(n, sample_rows, rng);
      distinct_rows = false;
      break;
    case SamplingScheme::kWithoutReplacement:
      rows = SampleWithoutReplacementFloyd(n, sample_rows, rng);
      break;
    case SamplingScheme::kBernoulli: {
      const double q =
          n == 0 ? 0.0
                 : static_cast<double>(sample_rows) / static_cast<double>(n);
      rows = SampleBernoulli(n, q, rng);
      break;
    }
  }
  SampleSummary summary = SummarizeRows(column, rows);
  summary.distinct_rows = distinct_rows;
  return summary;
}

SampleSummary SampleColumnFraction(const Column& column, double fraction,
                                   Rng& rng) {
  NDV_CHECK(fraction >= 0.0 && fraction <= 1.0);
  const int64_t n = column.size();
  NDV_CHECK(n >= 1);
  int64_t r = static_cast<int64_t>(
      std::llround(fraction * static_cast<double>(n)));
  if (r < 1) r = 1;
  if (r > n) r = n;
  return SampleColumn(column, r, SamplingScheme::kWithoutReplacement, rng);
}

}  // namespace ndv
