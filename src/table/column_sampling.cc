#include "table/column_sampling.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/flat_hash.h"
#include "sample/samplers.h"

namespace ndv {

SampleSummary SummarizeRows(const Column& column,
                            std::span<const int64_t> rows) {
  // One streamed pass: batch-hash a block of sampled rows, feed the hashes
  // straight into the flat counter, reduce the counter to the profile. No
  // intermediate per-sample hash vector is materialized.
  constexpr size_t kBlock = 2048;
  uint64_t block[kBlock];
  FlatHashCounter counts;  // unreserved: d is typically far below r
  for (size_t offset = 0; offset < rows.size(); offset += kBlock) {
    const size_t count = std::min(kBlock, rows.size() - offset);
    column.HashRange(rows.subspan(offset, count), block);
    for (size_t i = 0; i < count; ++i) counts.Add(block[i]);
  }
  SampleSummary summary;
  summary.table_rows = column.size();
  summary.sample_rows = static_cast<int64_t>(rows.size());
  summary.freq = FrequencyProfile::FromHashCounter(counts);
  summary.Validate();
  return summary;
}

SampleSummary SampleColumn(const Column& column, int64_t sample_rows,
                           SamplingScheme scheme, Rng& rng) {
  const int64_t n = column.size();
  NDV_CHECK(0 <= sample_rows && sample_rows <= n);
  std::vector<int64_t> rows;
  bool distinct_rows = true;
  switch (scheme) {
    case SamplingScheme::kWithReplacement:
      rows = SampleWithReplacement(n, sample_rows, rng);
      distinct_rows = false;
      break;
    case SamplingScheme::kWithoutReplacement:
      rows = SampleWithoutReplacementFloyd(n, sample_rows, rng);
      break;
    case SamplingScheme::kBernoulli: {
      const double q =
          n == 0 ? 0.0
                 : static_cast<double>(sample_rows) / static_cast<double>(n);
      rows = SampleBernoulli(n, q, rng);
      break;
    }
  }
  SampleSummary summary = SummarizeRows(column, rows);
  summary.distinct_rows = distinct_rows;
  return summary;
}

SampleSummary SampleColumnFraction(const Column& column, double fraction,
                                   Rng& rng) {
  NDV_CHECK(fraction >= 0.0 && fraction <= 1.0);
  const int64_t n = column.size();
  NDV_CHECK(n >= 1);
  int64_t r = static_cast<int64_t>(
      std::llround(fraction * static_cast<double>(n)));
  if (r < 1) r = 1;
  if (r > n) r = n;
  return SampleColumn(column, r, SamplingScheme::kWithoutReplacement, rng);
}

}  // namespace ndv
