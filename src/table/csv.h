#ifndef NDV_TABLE_CSV_H_
#define NDV_TABLE_CSV_H_

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "table/table.h"

namespace ndv {

// Minimal RFC-4180-style CSV interchange for tables. Supports quoted fields
// (with doubled-quote escapes) and embedded commas/newlines in quotes. All
// columns round-trip through strings; typed parsing is the caller's concern
// except for the convenience readers below.

// Serializes `table` (with a header row of column names) to `out`.
void WriteCsv(const Table& table, std::ostream& out);

// Parses one CSV document into rows of string fields. Returns std::nullopt
// on malformed input (unterminated quote). An empty document yields zero
// rows.
std::optional<std::vector<std::vector<std::string>>> ParseCsv(
    std::string_view text);

// Reads a CSV document with a header row into a Table of StringColumns.
// Returns std::nullopt on malformed input or ragged rows.
std::optional<Table> ReadCsvAsStrings(std::string_view text);

// Like ReadCsvAsStrings, but with per-column type inference: a column
// whose every field parses as a 64-bit integer becomes an Int64Column,
// one whose every field parses as a double becomes a DoubleColumn,
// everything else stays a StringColumn. Empty fields block numeric
// inference (they would need a null story).
std::optional<Table> ReadCsvInferred(std::string_view text);

}  // namespace ndv

#endif  // NDV_TABLE_CSV_H_
