#ifndef NDV_TABLE_CSV_H_
#define NDV_TABLE_CSV_H_

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "table/table.h"

namespace ndv {

// Minimal RFC-4180-style CSV interchange for tables. Supports quoted fields
// (with doubled-quote escapes) and embedded commas/newlines in quotes. All
// columns round-trip through strings; typed parsing is the caller's concern
// except for the convenience readers below.
//
// The *OrStatus readers are the canonical surface: malformed input yields
// an InvalidArgument status naming the line (1-based, counted outside
// quotes) and the reason — "unterminated quote opened at line 12", "ragged
// row at line 3: expected 4 fields, got 3". The std::optional forms are
// thin wrappers kept for callers that only care about success.

// Serializes `table` (with a header row of column names) to `out`.
void WriteCsv(const Table& table, std::ostream& out);

// Parses one CSV document into rows of string fields. An empty document
// yields zero rows.
StatusOr<std::vector<std::vector<std::string>>> ParseCsvOrStatus(
    std::string_view text);

// Reads a CSV document with a header row into a Table of StringColumns.
// Fails on malformed input, a missing header row, or ragged rows.
StatusOr<Table> ReadCsvAsStringsOrStatus(std::string_view text);

// Like ReadCsvAsStringsOrStatus, but with per-column type inference: a
// column whose every field parses as a 64-bit integer becomes an
// Int64Column, one whose every field parses as a double becomes a
// DoubleColumn, everything else stays a StringColumn. Empty fields block
// numeric inference (they would need a null story).
StatusOr<Table> ReadCsvInferredOrStatus(std::string_view text);

// Legacy wrappers: std::nullopt where the *OrStatus forms return an error.
std::optional<std::vector<std::vector<std::string>>> ParseCsv(
    std::string_view text);
std::optional<Table> ReadCsvAsStrings(std::string_view text);
std::optional<Table> ReadCsvInferred(std::string_view text);

}  // namespace ndv

#endif  // NDV_TABLE_CSV_H_
