#include "table/csv.h"

#include <charconv>
#include <ostream>

namespace ndv {
namespace {

bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

void WriteField(std::string_view field, std::ostream& out) {
  if (!NeedsQuoting(field)) {
    out << field;
    return;
  }
  out << '"';
  for (char c : field) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

struct ParsedCsv {
  std::vector<std::vector<std::string>> rows;
  // 1-based physical line (newlines inside quotes count) where each row
  // starts; parallel to `rows`. Lets readers report ragged rows by the line
  // a user would jump to, not a row index skewed by embedded newlines.
  std::vector<int64_t> row_lines;
};

Status ParseCsvInto(std::string_view text, ParsedCsv* out) {
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;  // true once any char (or quote) seen in field
  int64_t line = 1;            // current physical line
  int64_t row_line = 1;        // line the current row started on
  int64_t quote_line = 0;      // line the open quote started on
  size_t i = 0;
  const size_t n = text.size();
  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    out->rows.push_back(std::move(row));
    out->row_lines.push_back(row_line);
    row.clear();
  };
  while (i < n) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        if (c == '\n') ++line;
        field += c;
        ++i;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        quote_line = line;
        ++i;
        break;
      case ',':
        end_field();
        ++i;
        break;
      case '\r':
        ++i;  // Tolerate CRLF.
        break;
      case '\n':
        end_row();
        ++line;
        row_line = line;
        ++i;
        break;
      default:
        field += c;
        field_started = true;
        ++i;
        break;
    }
  }
  if (in_quotes) {
    return InvalidArgumentError(
        "unterminated quote opened at line %lld",
        static_cast<long long>(quote_line));
  }
  if (!field.empty() || field_started || !row.empty()) end_row();
  return Status::Ok();
}

Status CheckRowWidth(const ParsedCsv& parsed, size_t r, size_t num_cols) {
  if (parsed.rows[r].size() == num_cols) return Status::Ok();
  return InvalidArgumentError(
      "ragged row at line %lld: expected %zu fields, got %zu",
      static_cast<long long>(parsed.row_lines[r]), num_cols,
      parsed.rows[r].size());
}

}  // namespace

void WriteCsv(const Table& table, std::ostream& out) {
  for (int64_t c = 0; c < table.NumColumns(); ++c) {
    if (c > 0) out << ',';
    WriteField(table.column_name(c), out);
  }
  out << '\n';
  for (int64_t row = 0; row < table.NumRows(); ++row) {
    for (int64_t c = 0; c < table.NumColumns(); ++c) {
      if (c > 0) out << ',';
      WriteField(table.column(c).ValueToString(row), out);
    }
    out << '\n';
  }
}

StatusOr<std::vector<std::vector<std::string>>> ParseCsvOrStatus(
    std::string_view text) {
  ParsedCsv parsed;
  NDV_RETURN_IF_ERROR(ParseCsvInto(text, &parsed));
  return std::move(parsed.rows);
}

namespace {

bool ParseInt64(const std::string& field, int64_t* out) {
  if (field.empty()) return false;
  const char* begin = field.data();
  const char* end = field.data() + field.size();
  const auto result = std::from_chars(begin, end, *out);
  return result.ec == std::errc() && result.ptr == end;
}

bool ParseDouble(const std::string& field, double* out) {
  if (field.empty()) return false;
  const char* begin = field.data();
  const char* end = field.data() + field.size();
  const auto result = std::from_chars(begin, end, *out);
  return result.ec == std::errc() && result.ptr == end;
}

}  // namespace

StatusOr<Table> ReadCsvInferredOrStatus(std::string_view text) {
  ParsedCsv parsed;
  NDV_RETURN_IF_ERROR(ParseCsvInto(text, &parsed));
  if (parsed.rows.empty()) {
    return InvalidArgumentError("empty CSV document: missing header row");
  }
  const std::vector<std::string>& header = parsed.rows[0];
  const size_t num_cols = header.size();
  const size_t num_rows = parsed.rows.size() - 1;

  for (size_t r = 1; r < parsed.rows.size(); ++r) {
    NDV_RETURN_IF_ERROR(CheckRowWidth(parsed, r, num_cols));
  }

  Table table;
  for (size_t c = 0; c < num_cols; ++c) {
    // First pass: can every field be an int64? a double?
    bool all_int = num_rows > 0;
    bool all_double = num_rows > 0;
    for (size_t r = 1; r < parsed.rows.size(); ++r) {
      const std::string& field = parsed.rows[r][c];
      int64_t i;
      double d;
      if (all_int && !ParseInt64(field, &i)) all_int = false;
      if (all_double && !ParseDouble(field, &d)) all_double = false;
      if (!all_int && !all_double) break;
    }
    if (all_int) {
      std::vector<int64_t> values(num_rows);
      for (size_t r = 1; r < parsed.rows.size(); ++r) {
        ParseInt64(parsed.rows[r][c], &values[r - 1]);
      }
      table.AddColumn(header[c],
                      std::make_unique<Int64Column>(std::move(values)));
    } else if (all_double) {
      std::vector<double> values(num_rows);
      for (size_t r = 1; r < parsed.rows.size(); ++r) {
        ParseDouble(parsed.rows[r][c], &values[r - 1]);
      }
      table.AddColumn(header[c],
                      std::make_unique<DoubleColumn>(std::move(values)));
    } else {
      std::vector<std::string> values;
      values.reserve(num_rows);
      for (size_t r = 1; r < parsed.rows.size(); ++r) {
        values.push_back(parsed.rows[r][c]);
      }
      table.AddColumn(header[c], std::make_unique<StringColumn>(values));
    }
  }
  return table;
}

StatusOr<Table> ReadCsvAsStringsOrStatus(std::string_view text) {
  ParsedCsv parsed;
  NDV_RETURN_IF_ERROR(ParseCsvInto(text, &parsed));
  if (parsed.rows.empty()) {
    return InvalidArgumentError("empty CSV document: missing header row");
  }
  const std::vector<std::string>& header = parsed.rows[0];
  const size_t num_cols = header.size();
  std::vector<std::vector<std::string>> columns(num_cols);
  for (size_t r = 1; r < parsed.rows.size(); ++r) {
    NDV_RETURN_IF_ERROR(CheckRowWidth(parsed, r, num_cols));
    for (size_t c = 0; c < num_cols; ++c) {
      columns[c].push_back(std::move(parsed.rows[r][c]));
    }
  }
  Table table;
  for (size_t c = 0; c < num_cols; ++c) {
    table.AddColumn(header[c], std::make_unique<StringColumn>(columns[c]));
  }
  return table;
}

std::optional<std::vector<std::vector<std::string>>> ParseCsv(
    std::string_view text) {
  return ParseCsvOrStatus(text).ToOptional();
}

std::optional<Table> ReadCsvAsStrings(std::string_view text) {
  return ReadCsvAsStringsOrStatus(text).ToOptional();
}

std::optional<Table> ReadCsvInferred(std::string_view text) {
  return ReadCsvInferredOrStatus(text).ToOptional();
}

}  // namespace ndv
