#include "table/csv.h"

#include <charconv>
#include <ostream>

namespace ndv {
namespace {

bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

void WriteField(std::string_view field, std::ostream& out) {
  if (!NeedsQuoting(field)) {
    out << field;
    return;
  }
  out << '"';
  for (char c : field) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

}  // namespace

void WriteCsv(const Table& table, std::ostream& out) {
  for (int64_t c = 0; c < table.NumColumns(); ++c) {
    if (c > 0) out << ',';
    WriteField(table.column_name(c), out);
  }
  out << '\n';
  for (int64_t row = 0; row < table.NumRows(); ++row) {
    for (int64_t c = 0; c < table.NumColumns(); ++c) {
      if (c > 0) out << ',';
      WriteField(table.column(c).ValueToString(row), out);
    }
    out << '\n';
  }
}

std::optional<std::vector<std::vector<std::string>>> ParseCsv(
    std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;  // true once any char (or quote) seen in field
  size_t i = 0;
  const size_t n = text.size();
  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };
  while (i < n) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field += c;
        ++i;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        ++i;
        break;
      case ',':
        end_field();
        ++i;
        break;
      case '\r':
        ++i;  // Tolerate CRLF.
        break;
      case '\n':
        end_row();
        ++i;
        break;
      default:
        field += c;
        field_started = true;
        ++i;
        break;
    }
  }
  if (in_quotes) return std::nullopt;
  if (!field.empty() || field_started || !row.empty()) end_row();
  return rows;
}

namespace {

bool ParseInt64(const std::string& field, int64_t* out) {
  if (field.empty()) return false;
  const char* begin = field.data();
  const char* end = field.data() + field.size();
  const auto result = std::from_chars(begin, end, *out);
  return result.ec == std::errc() && result.ptr == end;
}

bool ParseDouble(const std::string& field, double* out) {
  if (field.empty()) return false;
  const char* begin = field.data();
  const char* end = field.data() + field.size();
  const auto result = std::from_chars(begin, end, *out);
  return result.ec == std::errc() && result.ptr == end;
}

}  // namespace

std::optional<Table> ReadCsvInferred(std::string_view text) {
  auto rows = ParseCsv(text);
  if (!rows.has_value() || rows->empty()) return std::nullopt;
  const std::vector<std::string>& header = (*rows)[0];
  const size_t num_cols = header.size();
  const size_t num_rows = rows->size() - 1;

  Table table;
  for (size_t c = 0; c < num_cols; ++c) {
    // First pass: can every field be an int64? a double?
    bool all_int = num_rows > 0;
    bool all_double = num_rows > 0;
    for (size_t r = 1; r < rows->size(); ++r) {
      if ((*rows)[r].size() != num_cols) return std::nullopt;
      const std::string& field = (*rows)[r][c];
      int64_t i;
      double d;
      if (all_int && !ParseInt64(field, &i)) all_int = false;
      if (all_double && !ParseDouble(field, &d)) all_double = false;
      if (!all_int && !all_double) break;
    }
    if (all_int) {
      std::vector<int64_t> values(num_rows);
      for (size_t r = 1; r < rows->size(); ++r) {
        ParseInt64((*rows)[r][c], &values[r - 1]);
      }
      table.AddColumn(header[c],
                      std::make_unique<Int64Column>(std::move(values)));
    } else if (all_double) {
      std::vector<double> values(num_rows);
      for (size_t r = 1; r < rows->size(); ++r) {
        ParseDouble((*rows)[r][c], &values[r - 1]);
      }
      table.AddColumn(header[c],
                      std::make_unique<DoubleColumn>(std::move(values)));
    } else {
      std::vector<std::string> values;
      values.reserve(num_rows);
      for (size_t r = 1; r < rows->size(); ++r) {
        values.push_back((*rows)[r][c]);
      }
      table.AddColumn(header[c], std::make_unique<StringColumn>(values));
    }
  }
  return table;
}

std::optional<Table> ReadCsvAsStrings(std::string_view text) {
  auto rows = ParseCsv(text);
  if (!rows.has_value() || rows->empty()) return std::nullopt;
  const std::vector<std::string>& header = (*rows)[0];
  const size_t num_cols = header.size();
  std::vector<std::vector<std::string>> columns(num_cols);
  for (size_t r = 1; r < rows->size(); ++r) {
    if ((*rows)[r].size() != num_cols) return std::nullopt;
    for (size_t c = 0; c < num_cols; ++c) {
      columns[c].push_back(std::move((*rows)[r][c]));
    }
  }
  Table table;
  for (size_t c = 0; c < num_cols; ++c) {
    table.AddColumn(header[c], std::make_unique<StringColumn>(columns[c]));
  }
  return table;
}

}  // namespace ndv
