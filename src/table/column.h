#ifndef NDV_TABLE_COLUMN_H_
#define NDV_TABLE_COLUMN_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "common/value_hash.h"

namespace ndv {

enum class ColumnType {
  kInt64,
  kDouble,
  kString,
};

std::string_view ColumnTypeName(ColumnType type);

// A read-only typed column. Estimators never look at raw values — only at
// equality classes — so the one operation every column must provide is a
// 64-bit hash of each row's value, with equal values hashing equally.
class Column {
 public:
  virtual ~Column() = default;

  virtual ColumnType type() const = 0;
  virtual int64_t size() const = 0;

  // 64-bit hash of the value at `row`; equal values produce equal hashes.
  // Requires 0 <= row < size().
  virtual uint64_t HashAt(int64_t row) const = 0;

  // Batch hashing — semantically identical to calling HashAt per row, but
  // one virtual call per batch instead of one per row, with a tight
  // per-type inner loop underneath. Every bulk consumer (profiles, exact
  // NDV, aggregation, sketches) should go through these.
  //
  // Gather: out[i] = HashAt(rows[i]). Requires each row in [0, size()).
  virtual void HashRange(std::span<const int64_t> rows, uint64_t* out) const;
  // Contiguous: out[i] = HashAt(begin + i) for i in [0, end - begin).
  // Requires 0 <= begin <= end <= size().
  virtual void HashSlice(int64_t begin, int64_t end, uint64_t* out) const;
  // Convenience: hashes of all rows, in row order. Announces the scan via
  // PrepareFullScan() before hashing.
  std::vector<uint64_t> HashAll() const;

  // Storage-advice hooks; no-ops for heap columns. File-backed columns
  // translate them into madvise: PrepareFullScan declares that the caller
  // is about to read every row in order (MADV_SEQUENTIAL — readahead up,
  // no page retention), PrefetchRows requests async readahead of just the
  // row range [begin, end) that a sampled scan is about to touch
  // (MADV_WILLNEED). Purely hints: never affect results.
  virtual void PrepareFullScan() const {}
  virtual void PrefetchRows(int64_t /*begin*/, int64_t /*end*/) const {}

  // Debug rendering of the value at `row`.
  virtual std::string ValueToString(int64_t row) const = 0;
};

// Column of 64-bit integers.
class Int64Column final : public Column {
 public:
  explicit Int64Column(std::vector<int64_t> values)
      : values_(std::move(values)) {}

  ColumnType type() const override { return ColumnType::kInt64; }
  int64_t size() const override {
    return static_cast<int64_t>(values_.size());
  }
  uint64_t HashAt(int64_t row) const override {
    NDV_DCHECK(0 <= row && row < size());
    return Hash64(static_cast<uint64_t>(values_[static_cast<size_t>(row)]));
  }
  void HashRange(std::span<const int64_t> rows, uint64_t* out) const override;
  void HashSlice(int64_t begin, int64_t end, uint64_t* out) const override;
  std::string ValueToString(int64_t row) const override {
    return std::to_string(values_[static_cast<size_t>(row)]);
  }

  const std::vector<int64_t>& values() const { return values_; }

 private:
  std::vector<int64_t> values_;
};

// Column of doubles. -0.0 is canonicalized to +0.0 so the two compare (and
// hash) as equal; NaNs all hash to one class.
class DoubleColumn final : public Column {
 public:
  explicit DoubleColumn(std::vector<double> values)
      : values_(std::move(values)) {}

  ColumnType type() const override { return ColumnType::kDouble; }
  int64_t size() const override {
    return static_cast<int64_t>(values_.size());
  }
  uint64_t HashAt(int64_t row) const override;
  void HashRange(std::span<const int64_t> rows, uint64_t* out) const override;
  void HashSlice(int64_t begin, int64_t end, uint64_t* out) const override;
  std::string ValueToString(int64_t row) const override {
    return std::to_string(values_[static_cast<size_t>(row)]);
  }

  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
};

// Dictionary-encoded string column: the distinct strings live once in the
// dictionary, rows store 32-bit codes. This mirrors how real column stores
// hold low-cardinality string data.
class StringColumn final : public Column {
 public:
  // Builds the dictionary from raw values.
  explicit StringColumn(const std::vector<std::string>& values);

  // Adopts a pre-built dictionary + codes. Codes must index `dictionary`.
  StringColumn(std::vector<std::string> dictionary,
               std::vector<int32_t> codes);

  ColumnType type() const override { return ColumnType::kString; }
  int64_t size() const override { return static_cast<int64_t>(codes_.size()); }
  uint64_t HashAt(int64_t row) const override {
    NDV_DCHECK(0 <= row && row < size());
    return hashes_[static_cast<size_t>(codes_[static_cast<size_t>(row)])];
  }
  void HashRange(std::span<const int64_t> rows, uint64_t* out) const override;
  void HashSlice(int64_t begin, int64_t end, uint64_t* out) const override;
  std::string ValueToString(int64_t row) const override {
    return dictionary_[static_cast<size_t>(codes_[static_cast<size_t>(row)])];
  }

  int64_t dictionary_size() const {
    return static_cast<int64_t>(dictionary_.size());
  }
  const std::vector<std::string>& dictionary() const { return dictionary_; }
  const std::vector<int32_t>& codes() const { return codes_; }

 private:
  void ComputeHashes();

  std::vector<std::string> dictionary_;
  std::vector<int32_t> codes_;
  std::vector<uint64_t> hashes_;  // one per dictionary entry
};

// HashBytes and HashDoubleValue — the shared value-hash primitives every
// column class and batch kernel uses — live in common/value_hash.h (pulled
// in above) so the SIMD layer under this hierarchy can reach them without
// a dependency cycle.

}  // namespace ndv

#endif  // NDV_TABLE_COLUMN_H_
