#ifndef NDV_ESTIMATORS_SHLOSSER_H_
#define NDV_ESTIMATORS_SHLOSSER_H_

#include "estimators/estimator.h"

namespace ndv {

// Shlosser's estimator (Engineering Cybernetics, 1981) and the
// JASA'98-style modified variant used inside HYBVAR.

// Shlosser's estimator, exact to the published formula (q = r/n):
//   D_hat = d + f1 * [sum_i (1-q)^i f_i] / [sum_i i q (1-q)^{i-1} f_i].
// Derived under Bernoulli(q) sampling of high-skew data; strong on high
// skew, a severe over/under-estimator elsewhere.
class Shlosser final : public Estimator {
 public:
  std::string_view name() const override { return "Shlosser"; }
  double Estimate(const SampleSummary& summary) const override;

  static double Raw(const SampleSummary& summary);
};

// Modified Shlosser estimator (reconstruction of Haas & Stokes' Sh3; see
// DESIGN.md §3): a Horvitz-Thompson expansion that takes each observed
// class's *sample* frequency as its table frequency,
//   D_hat = sum_i f_i / (1 - (1-q)^i).
// The class-size model is blind to duplication: when every value is
// duplicated `c` times the expansion overestimates by a factor
// proportional to c — exactly the failure mode the paper reports for
// HYBVAR in the scale-up experiments (Figs. 9-10).
class ModifiedShlosser final : public Estimator {
 public:
  std::string_view name() const override { return "MShlosser"; }
  double Estimate(const SampleSummary& summary) const override;

  static double Raw(const SampleSummary& summary);
};

}  // namespace ndv

#endif  // NDV_ESTIMATORS_SHLOSSER_H_
