#ifndef NDV_ESTIMATORS_GOODMAN_H_
#define NDV_ESTIMATORS_GOODMAN_H_

#include "estimators/estimator.h"

namespace ndv {

// Goodman's (1949) estimator — the unique unbiased estimator of D for
// without-replacement sampling:
//   D_hat = d + sum_{i=1}^{r} (-1)^{i+1} * [(n-r+i-1)! (r-i)!] /
//                                          [(n-r-1)! r!] * f_i.
// Unbiased but catastrophically high-variance for r << n: the alternating
// terms grow factorially, so tiny fluctuations in f_i swing the estimate by
// orders of magnitude. Included because it anchors the "unbiasedness is not
// enough" discussion; evaluated in log space to survive at all.
class Goodman final : public Estimator {
 public:
  std::string_view name() const override { return "Goodman"; }
  double Estimate(const SampleSummary& summary) const override;

  // Unclamped value; may be astronomically large in magnitude (returned as
  // +/-inf once doubles overflow).
  static double Raw(const SampleSummary& summary);
};

}  // namespace ndv

#endif  // NDV_ESTIMATORS_GOODMAN_H_
