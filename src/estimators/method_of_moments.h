#ifndef NDV_ESTIMATORS_METHOD_OF_MOMENTS_H_
#define NDV_ESTIMATORS_METHOD_OF_MOMENTS_H_

#include "estimators/estimator.h"

namespace ndv {

// First-moment ("method of moments") estimator under the equal-class-size
// model: if all D classes were equally likely, a with-replacement sample of
// size r would see E[d] = D (1 - (1 - 1/D)^r) distinct values. The estimate
// solves
//   d = D_hat * (1 - (1 - 1/D_hat)^r)
// for D_hat by bracketed root finding. Since E[d] -> r as D -> inf, no
// finite solution exists when d == r (every sampled value distinct); the
// estimate is then the sanity upper bound n.
class MethodOfMoments final : public Estimator {
 public:
  std::string_view name() const override { return "MM"; }
  double Estimate(const SampleSummary& summary) const override;

  static double Raw(const SampleSummary& summary);
};

// Finite-population first-moment estimator: like MethodOfMoments but with
// the exact without-replacement (hypergeometric) miss probability for
// equal class sizes n/D:
//   d = D_hat * (1 - C(n - n/D_hat, r) / C(n, r)),
// evaluated with continuous class sizes via log-gamma. More faithful than
// the with-replacement form at large sampling fractions.
class FiniteMethodOfMoments final : public Estimator {
 public:
  std::string_view name() const override { return "MM-finite"; }
  double Estimate(const SampleSummary& summary) const override;

  static double Raw(const SampleSummary& summary);
};

// Naive scale-up D_hat = d / q = d * n / r: correct only when (almost)
// every class is a singleton; the folklore strawman.
class NaiveScaleUp final : public Estimator {
 public:
  std::string_view name() const override { return "Naive"; }
  double Estimate(const SampleSummary& summary) const override;
};

}  // namespace ndv

#endif  // NDV_ESTIMATORS_METHOD_OF_MOMENTS_H_
