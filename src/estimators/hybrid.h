#ifndef NDV_ESTIMATORS_HYBRID_H_
#define NDV_ESTIMATORS_HYBRID_H_

#include "estimators/estimator.h"
#include "profile/skew_statistics.h"

namespace ndv {

// The two hybrid baselines the paper compares against. Both pick one of
// several underlying estimators based on a skew statistic computed from the
// sample — the source of the instability (high variance near the decision
// boundary) the paper criticizes.

// HYBSKEW (Haas, Naughton, Seshadri & Stokes, VLDB'95): a chi-squared
// uniformity test on the sampled class counts decides low vs. high skew;
// low skew uses the smoothed jackknife, high skew uses Shlosser.
class HybSkew final : public Estimator {
 public:
  // `significance` is the chi-squared test level (the VLDB'95 hybrid used a
  // high quantile so only clear non-uniformity routes to Shlosser).
  explicit HybSkew(double significance = 0.975);

  std::string_view name() const override { return "HYBSKEW"; }
  double Estimate(const SampleSummary& summary) const override;

  // Which branch the skew test selects for this sample (exposed so HYBGEE
  // and the experiments can report branch usage).
  bool WouldUseHighSkewBranch(const SampleSummary& summary) const;

 private:
  double significance_;
};

// HYBVAR (Haas & Stokes, JASA'98 "D_hybrid"): selects among three
// estimators based on the estimated squared coefficient of variation
// gamma^2 of the class sizes:
//   gamma^2 == 0                          -> first-order jackknife (uj1),
//   0 < gamma^2 <= cutoff and f1 > 0      -> stabilized jackknife (DUJ2A),
//   gamma^2 > cutoff, or no singletons    -> modified Shlosser.
// Reconstruction of the JASA'98 selection shape (see DESIGN.md §3). The
// default cutoff 25 makes the unbounded-domain scaleup (paper Fig. 10)
// switch branches near n = 400K as published; the "no singletons with
// skew" clause routes fully-duplicated data (paper Fig. 9) to the
// duplication-blind modified Shlosser, reproducing its published
// linear-in-n overestimation.
class HybVar final : public Estimator {
 public:
  explicit HybVar(double gamma_sq_cutoff = 25.0);

  std::string_view name() const override { return "HYBVAR"; }
  double Estimate(const SampleSummary& summary) const override;

  // The branch chosen for this sample: 0 = uj1, 1 = DUJ2A, 2 = MShlosser.
  int SelectedBranch(const SampleSummary& summary) const;

 private:
  double gamma_sq_cutoff_;
};

}  // namespace ndv

#endif  // NDV_ESTIMATORS_HYBRID_H_
