#include "estimators/jackknife.h"

#include <cmath>

#include "common/check.h"
#include "profile/skew_statistics.h"

namespace ndv {

double UnsmoothedJackknife1::Raw(const SampleSummary& summary) {
  const double r = static_cast<double>(summary.r());
  const double d = static_cast<double>(summary.d());
  const double f1 = static_cast<double>(summary.f(1));
  const double q = summary.q();
  // (1-q) * f1 / r <= 1 - q < 1, so the denominator is >= q > 0.
  const double denom = 1.0 - (1.0 - q) * f1 / r;
  return d / denom;
}

double UnsmoothedJackknife1::Estimate(const SampleSummary& summary) const {
  CheckEstimatorInput(summary);
  return ApplySanityBounds(Raw(summary), summary);
}

double UnsmoothedJackknife2::Raw(const SampleSummary& summary) {
  const double r = static_cast<double>(summary.r());
  const double d = static_cast<double>(summary.d());
  const double f1 = static_cast<double>(summary.f(1));
  const double q = summary.q();
  if (q >= 1.0) return d;  // Full scan: the sample is the table.
  const double d_uj1 = UnsmoothedJackknife1::Raw(summary);
  const double gamma_sq = EstimatedSquaredCV(summary, std::fmax(d_uj1, 1.0));
  const double denom = 1.0 - (1.0 - q) * f1 / r;
  // ln(1-q) < 0, so the correction term adds to d.
  const double corrected =
      d - f1 * (1.0 - q) * std::log1p(-q) * gamma_sq / q;
  return corrected / denom;
}

double UnsmoothedJackknife2::Estimate(const SampleSummary& summary) const {
  CheckEstimatorInput(summary);
  return ApplySanityBounds(Raw(summary), summary);
}

StabilizedJackknife::StabilizedJackknife(int64_t cutoff) : cutoff_(cutoff) {
  NDV_CHECK(cutoff >= 1);
}

double StabilizedJackknife::Raw(const SampleSummary& summary,
                                int64_t cutoff) {
  const double q = summary.q();
  if (q >= 1.0) return static_cast<double>(summary.d());
  int64_t removed_classes = 0;
  FrequencyProfile reduced = summary.freq.Truncated(cutoff, &removed_classes);
  if (removed_classes == 0 || reduced.TotalCount() == 0) {
    return UnsmoothedJackknife2::Raw(summary);
  }
  // Rows of the sample belonging to removed (abundant) classes, and their
  // scaled-up mass in the table.
  const int64_t removed_rows = summary.r() - reduced.TotalCount();
  const double removed_mass = static_cast<double>(removed_rows) / q;
  SampleSummary reduced_summary;
  reduced_summary.sample_rows = reduced.TotalCount();
  reduced_summary.table_rows = std::max<int64_t>(
      reduced.TotalCount(),
      summary.n() - static_cast<int64_t>(std::llround(removed_mass)));
  reduced_summary.freq = std::move(reduced);
  reduced_summary.Validate();
  return UnsmoothedJackknife2::Raw(reduced_summary) +
         static_cast<double>(removed_classes);
}

double StabilizedJackknife::Estimate(const SampleSummary& summary) const {
  CheckEstimatorInput(summary);
  return ApplySanityBounds(Raw(summary, cutoff_), summary);
}

StabilizedJackknife1::StabilizedJackknife1(int64_t cutoff)
    : cutoff_(cutoff) {
  NDV_CHECK(cutoff >= 1);
}

double StabilizedJackknife1::Raw(const SampleSummary& summary,
                                 int64_t cutoff) {
  const double q = summary.q();
  if (q >= 1.0) return static_cast<double>(summary.d());
  int64_t removed_classes = 0;
  FrequencyProfile reduced = summary.freq.Truncated(cutoff, &removed_classes);
  if (removed_classes == 0 || reduced.TotalCount() == 0) {
    return UnsmoothedJackknife1::Raw(summary);
  }
  const int64_t removed_rows = summary.r() - reduced.TotalCount();
  const double removed_mass = static_cast<double>(removed_rows) / q;
  SampleSummary reduced_summary;
  reduced_summary.sample_rows = reduced.TotalCount();
  reduced_summary.table_rows = std::max<int64_t>(
      reduced.TotalCount(),
      summary.n() - static_cast<int64_t>(std::llround(removed_mass)));
  reduced_summary.freq = std::move(reduced);
  reduced_summary.Validate();
  return UnsmoothedJackknife1::Raw(reduced_summary) +
         static_cast<double>(removed_classes);
}

double StabilizedJackknife1::Estimate(const SampleSummary& summary) const {
  CheckEstimatorInput(summary);
  return ApplySanityBounds(Raw(summary, cutoff_), summary);
}

double SmoothedJackknife::Raw(const SampleSummary& summary) {
  const double r = static_cast<double>(summary.r());
  const double d = static_cast<double>(summary.d());
  const double q = summary.q();
  if (q >= 1.0 || d <= 1.0) return d;
  // Fixed-point iteration from the uj1 starting point. The map
  //   g(D) = d / (1 - (1-q)(1 - 1/D)^{r-1})
  // is bounded between d and d/q, so the iteration cannot escape.
  double estimate = std::fmax(UnsmoothedJackknife1::Raw(summary), d);
  for (int iter = 0; iter < 200; ++iter) {
    const double smoothed_f1_over_r =
        std::exp((r - 1.0) * std::log1p(-1.0 / estimate));
    const double next = d / (1.0 - (1.0 - q) * smoothed_f1_over_r);
    if (std::fabs(next - estimate) <= 1e-9 * std::fmax(1.0, estimate)) {
      return next;
    }
    // Light damping guards against oscillation near steep fixed points.
    estimate = 0.5 * (estimate + next);
  }
  return estimate;
}

double SmoothedJackknife::Estimate(const SampleSummary& summary) const {
  CheckEstimatorInput(summary);
  return ApplySanityBounds(Raw(summary), summary);
}

double BurnhamOvertonJackknife::Estimate(const SampleSummary& summary) const {
  CheckEstimatorInput(summary);
  const double r = static_cast<double>(summary.r());
  const double d = static_cast<double>(summary.d());
  const double f1 = static_cast<double>(summary.f(1));
  return ApplySanityBounds(d + f1 * (r - 1.0) / r, summary);
}

double BurnhamOverton2Jackknife::Estimate(
    const SampleSummary& summary) const {
  CheckEstimatorInput(summary);
  const double r = static_cast<double>(summary.r());
  const double d = static_cast<double>(summary.d());
  const double f1 = static_cast<double>(summary.f(1));
  const double f2 = static_cast<double>(summary.f(2));
  if (summary.r() < 2) return ApplySanityBounds(d, summary);
  const double raw = d + f1 * (2.0 * r - 3.0) / r -
                     f2 * (r - 2.0) * (r - 2.0) / (r * (r - 1.0));
  return ApplySanityBounds(raw, summary);
}

}  // namespace ndv
