#include "estimators/method_of_moments.h"

#include <cmath>

#include "common/math_util.h"
#include "common/solver.h"

namespace ndv {

double MethodOfMoments::Raw(const SampleSummary& summary) {
  const double d = static_cast<double>(summary.d());
  const double r = static_cast<double>(summary.r());
  const double n = static_cast<double>(summary.n());
  if (d >= r) return INFINITY;  // No finite solution; clamps to n.
  if (d <= 1.0) return d;
  // g(D) = D (1 - (1 - 1/D)^r) - d is increasing in D, negative at D = d
  // (strictly, since a finite population forces repeats), positive for
  // large D (limit r - d > 0).
  const auto g = [r, d](double cap) {
    return cap * (1.0 - PowOneMinus(1.0 / cap, r)) - d;
  };
  const auto bracket = ExpandBracketUp(g, d, std::fmax(2.0 * d, n));
  if (!bracket.has_value()) return INFINITY;
  const auto root = Brent(g, bracket->first, bracket->second);
  if (!root.has_value() || !root->converged) return INFINITY;
  return root->x;
}

double MethodOfMoments::Estimate(const SampleSummary& summary) const {
  CheckEstimatorInput(summary);
  return ApplySanityBounds(Raw(summary), summary);
}

double FiniteMethodOfMoments::Raw(const SampleSummary& summary) {
  const double d = static_cast<double>(summary.d());
  const double r = static_cast<double>(summary.r());
  const double n = static_cast<double>(summary.n());
  if (d <= 1.0) return d;
  if (summary.r() >= summary.n()) return d;
  // g(D) = D (1 - P_miss(n/D)) - d, increasing in D. At D = d the equal
  // classes have size n/d >= r... not necessarily; g(d) <= 0 holds because
  // a sample of r rows from d equal classes sees at most d distinct values
  // in expectation with equality only when every class is hit.
  const auto g = [n, r, d](double cap) {
    const double miss = HypergeometricMissProbabilityReal(n, n / cap, r);
    return cap * (1.0 - miss) - d;
  };
  if (g(d) > 0.0) return d;  // Every class already seen.
  // E[d] -> r as D -> n (all classes singletons), so a root exists iff
  // d < r; otherwise saturate.
  if (d >= r) return INFINITY;
  const auto bracket = ExpandBracketUp(g, d, std::fmax(2.0 * d, 16.0));
  if (!bracket.has_value()) return INFINITY;
  const auto root = Brent(g, bracket->first, bracket->second);
  if (!root.has_value() || !root->converged) return INFINITY;
  return root->x;
}

double FiniteMethodOfMoments::Estimate(const SampleSummary& summary) const {
  CheckEstimatorInput(summary);
  return ApplySanityBounds(Raw(summary), summary);
}

double NaiveScaleUp::Estimate(const SampleSummary& summary) const {
  CheckEstimatorInput(summary);
  const double d = static_cast<double>(summary.d());
  return ApplySanityBounds(d / summary.q(), summary);
}

}  // namespace ndv
