#include "estimators/hybrid.h"

#include <cmath>

#include "common/check.h"
#include "estimators/jackknife.h"
#include "estimators/shlosser.h"

namespace ndv {

HybSkew::HybSkew(double significance) : significance_(significance) {
  NDV_CHECK(significance > 0.0 && significance < 1.0);
}

bool HybSkew::WouldUseHighSkewBranch(const SampleSummary& summary) const {
  return TestSkew(summary.freq, significance_).high_skew;
}

double HybSkew::Estimate(const SampleSummary& summary) const {
  CheckEstimatorInput(summary);
  const double raw = WouldUseHighSkewBranch(summary)
                         ? Shlosser::Raw(summary)
                         : SmoothedJackknife::Raw(summary);
  return ApplySanityBounds(raw, summary);
}

HybVar::HybVar(double gamma_sq_cutoff) : gamma_sq_cutoff_(gamma_sq_cutoff) {
  NDV_CHECK(gamma_sq_cutoff > 0.0);
}

int HybVar::SelectedBranch(const SampleSummary& summary) const {
  const double d_uj1 = std::fmax(UnsmoothedJackknife1::Raw(summary), 1.0);
  const double gamma_sq = EstimatedSquaredCV(summary, d_uj1);
  if (gamma_sq == 0.0) return 0;
  if (gamma_sq <= gamma_sq_cutoff_ && summary.f(1) > 0) return 1;
  return 2;
}

double HybVar::Estimate(const SampleSummary& summary) const {
  CheckEstimatorInput(summary);
  double raw = 0.0;
  switch (SelectedBranch(summary)) {
    case 0:
      raw = UnsmoothedJackknife1::Raw(summary);
      break;
    case 1:
      raw = StabilizedJackknife::Raw(summary, /*cutoff=*/50);
      break;
    default:
      raw = ModifiedShlosser::Raw(summary);
      break;
  }
  return ApplySanityBounds(raw, summary);
}

}  // namespace ndv
