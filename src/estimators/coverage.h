#ifndef NDV_ESTIMATORS_COVERAGE_H_
#define NDV_ESTIMATORS_COVERAGE_H_

#include "estimators/estimator.h"

namespace ndv {

// Coverage-based estimators from the species-estimation literature
// (surveyed by Bunge & Fitzpatrick, and referenced by the paper's related
// work).

// Chao's (1984) lower-bound estimator: D_hat = d + f1^2 / (2 f2). When
// f2 == 0 the bias-corrected form d + f1(f1-1)/2 ... /(2(f2+1)) is used.
class Chao final : public Estimator {
 public:
  std::string_view name() const override { return "Chao"; }
  double Estimate(const SampleSummary& summary) const override;

  static double Raw(const SampleSummary& summary);
};

// Chao & Lee (1992) sample-coverage estimator:
//   C_hat = 1 - f1/r,  D_hat = d/C_hat + r (1 - C_hat)/C_hat * gamma^2,
// with gamma^2 the squared CV of class sizes estimated at d/C_hat. When
// every sampled value is a singleton (C_hat == 0) the estimate is clamped
// to the sanity upper bound n.
class ChaoLee final : public Estimator {
 public:
  std::string_view name() const override { return "ChaoLee"; }
  double Estimate(const SampleSummary& summary) const override;

  static double Raw(const SampleSummary& summary);
};

// Chao & Lee's second estimator ("CL2"): the CL1 form with a bias-adjusted
// squared CV,
//   gamma2^2 = max{ gamma1^2 * (1 + (1-C) * sum i(i-1) f_i / ((r-1) C)), 0 },
// which inflates the correction when the unseen mass is large.
// Reconstruction of the 1992 adjustment (see DESIGN.md §3).
class ChaoLee2 final : public Estimator {
 public:
  std::string_view name() const override { return "ChaoLee2"; }
  double Estimate(const SampleSummary& summary) const override;

  static double Raw(const SampleSummary& summary);
};

// Horvitz-Thompson estimator with the scaled class-size model: a class
// observed i times is assumed to occupy i/q table rows, so
//   D_hat = sum_i f_i / (1 - (1-q)^{i/q}).
// Unlike ModifiedShlosser this model is duplication-aware; it is close to d
// whenever every observed class is abundant.
class HorvitzThompson final : public Estimator {
 public:
  std::string_view name() const override { return "HT"; }
  double Estimate(const SampleSummary& summary) const override;

  static double Raw(const SampleSummary& summary);
};

// Smith & van Belle (1984) bootstrap estimator:
//   D_hat = d + sum_i f_i (1 - i/r)^r.
class Bootstrap final : public Estimator {
 public:
  std::string_view name() const override { return "Bootstrap"; }
  double Estimate(const SampleSummary& summary) const override;

  static double Raw(const SampleSummary& summary);
};

}  // namespace ndv

#endif  // NDV_ESTIMATORS_COVERAGE_H_
