#include "estimators/sichel.h"

#include <cmath>
#include <vector>

#include "common/solver.h"

namespace ndv {
namespace {

// Solves (1 - exp(-a*mu))/mu = target for mu > 0, where a = 2/(t+1). The
// left side decreases from a (at mu -> 0) to 0, so a solution exists iff
// 0 < target < a.
std::optional<double> SolveInnerMu(double a, double target) {
  if (!(target > 0.0) || target >= a) return std::nullopt;
  const auto h = [a, target](double mu) {
    return (1.0 - std::exp(-a * mu)) / mu - target;
  };
  // h(lo) > 0 for small lo; expand hi until h(hi) < 0.
  const double lo = 1e-12;
  const auto bracket = ExpandBracketUp(h, lo, 1.0, 2.0, 200);
  if (!bracket.has_value()) return std::nullopt;
  const auto root = Brent(h, bracket->first, bracket->second);
  if (!root.has_value() || !root->converged) return std::nullopt;
  return root->x;
}

}  // namespace

std::optional<PoissonInverseGaussianFit> FitPoissonInverseGaussian(
    const SampleSummary& summary) {
  const double r = static_cast<double>(summary.r());
  const double d = static_cast<double>(summary.d());
  const double f1 = static_cast<double>(summary.f(1));
  if (d <= 0.0 || f1 <= 0.0) return std::nullopt;
  if (d >= r) return std::nullopt;  // All singletons: no finite fit.

  // Admissible t: the inner equation needs d/r < 2/(t+1).
  const double t_max = 2.0 * r / d - 1.0;
  if (t_max <= 1.0) return std::nullopt;

  const auto residual = [&](double t) -> double {
    const double a = 2.0 / (t + 1.0);
    const auto mu = SolveInnerMu(a, d / r);
    if (!mu.has_value()) return 1.0;  // Treat as positive residual.
    const double p0 = std::exp(-a * *mu);
    return p0 / t - f1 / r;
  };

  // Scan for a sign change over log-spaced t in (1, t_max).
  constexpr int kScanPoints = 64;
  double prev_t = 1.0 + 1e-9;
  double prev_res = residual(prev_t);
  std::optional<std::pair<double, double>> bracket;
  for (int i = 1; i <= kScanPoints; ++i) {
    const double frac = static_cast<double>(i) / kScanPoints;
    const double t = 1.0 + (t_max - 1.0 - 2e-9) *
                               (std::exp2(10.0 * frac) - 1.0) /
                               (std::exp2(10.0) - 1.0);
    const double res = residual(t);
    if ((prev_res <= 0.0 && res >= 0.0) || (prev_res >= 0.0 && res <= 0.0)) {
      bracket = {prev_t, t};
      break;
    }
    prev_t = t;
    prev_res = res;
  }
  if (!bracket.has_value()) return std::nullopt;
  const auto root = Brent(residual, bracket->first, bracket->second);
  if (!root.has_value() || !root->converged) return std::nullopt;

  PoissonInverseGaussianFit fit;
  fit.t = root->x;
  const double a = 2.0 / (fit.t + 1.0);
  const auto mu = SolveInnerMu(a, d / r);
  if (!mu.has_value() || *mu <= 0.0) return std::nullopt;
  fit.mu = *mu;
  fit.p0 = std::exp(-a * fit.mu);
  fit.d_hat = r / fit.mu;
  return fit;
}

double Sichel::Estimate(const SampleSummary& summary) const {
  CheckEstimatorInput(summary);
  const auto fit = FitPoissonInverseGaussian(summary);
  if (!fit.has_value()) {
    // Degenerate moments: fall back to the sample count (f1 == 0) or
    // saturate (all singletons).
    if (summary.f(1) == 0) {
      return ApplySanityBounds(static_cast<double>(summary.d()), summary);
    }
    return ApplySanityBounds(INFINITY, summary);
  }
  return ApplySanityBounds(fit->d_hat, summary);
}

}  // namespace ndv
