#include "estimators/estimator.h"

#include <cmath>

#include "common/check.h"

namespace ndv {

double ApplySanityBounds(double raw_estimate, const SampleSummary& summary) {
  const double d = static_cast<double>(summary.d());
  const double n = static_cast<double>(summary.n());
  const double upper =
      summary.distinct_rows
          ? std::fmin(n, d + static_cast<double>(summary.n() - summary.r()))
          : n;
  if (std::isnan(raw_estimate)) return upper;
  if (raw_estimate > upper) return upper;
  if (raw_estimate < d) return d;
  return raw_estimate;
}

void CheckEstimatorInput(const SampleSummary& summary) {
  summary.Validate();
  NDV_CHECK_MSG(summary.r() >= 1, "estimators require a non-empty sample");
}

}  // namespace ndv
