#ifndef NDV_ESTIMATORS_ESTIMATOR_H_
#define NDV_ESTIMATORS_ESTIMATOR_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "profile/frequency_profile.h"

namespace ndv {

// Interface for distinct-value estimators. An estimator maps a sample's
// sufficient statistics (the SampleSummary) to an estimate D_hat of the
// number of distinct values in the full column.
//
// Every implementation must be deterministic (same summary -> same
// estimate) and must return a value already clamped by the paper's sanity
// bounds d <= D_hat <= n (use ApplySanityBounds).
class Estimator {
 public:
  virtual ~Estimator() = default;

  // Stable identifier used in benchmark output, e.g. "GEE".
  virtual std::string_view name() const = 0;

  // The estimate. `summary` must satisfy SampleSummary::Validate() and have
  // r >= 1 (an empty sample carries no information; callers must not ask).
  virtual double Estimate(const SampleSummary& summary) const = 0;
};

// Clamps a raw estimate into the sanity interval [d, upper], where upper is
// the paper's n tightened to d + (n - r) when the sample consists of
// distinct table rows (summary.distinct_rows): each class missing from such
// a sample occupies at least one unsampled row, so D <= d + (n - r). In
// particular a full without-replacement scan pins the estimate to d.
// Non-finite raw values (possible in degenerate corners of some baseline
// formulas) clamp to the nearest bound: +inf/NaN -> upper, -inf -> d.
double ApplySanityBounds(double raw_estimate, const SampleSummary& summary);

// Convenience: validates the summary, requires r >= 1.
void CheckEstimatorInput(const SampleSummary& summary);

}  // namespace ndv

#endif  // NDV_ESTIMATORS_ESTIMATOR_H_
