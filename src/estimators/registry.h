#ifndef NDV_ESTIMATORS_REGISTRY_H_
#define NDV_ESTIMATORS_REGISTRY_H_

#include <memory>
#include <vector>

#include "estimators/estimator.h"

namespace ndv {

// All baseline (non-paper) estimators with default parameters, in a stable
// order. The paper's own estimators (GEE, AE, HYBGEE) live in ndv_core;
// MakeAllEstimators() there returns the combined set.
std::vector<std::unique_ptr<Estimator>> MakeBaselineEstimators();

// Creates a single baseline estimator by its name() string, or nullptr when
// unknown.
std::unique_ptr<Estimator> MakeBaselineEstimator(std::string_view name);

}  // namespace ndv

#endif  // NDV_ESTIMATORS_REGISTRY_H_
