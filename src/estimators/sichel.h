#ifndef NDV_ESTIMATORS_SICHEL_H_
#define NDV_ESTIMATORS_SICHEL_H_

#include <optional>

#include "estimators/estimator.h"

namespace ndv {

// Sichel's parametric estimator (Information Processing & Management,
// 1992; the paper's reference [28]): class abundances in the sample are
// modeled as a Poisson mixture whose rate follows an inverse Gaussian
// distribution (the gamma = -1/2 member of Sichel's generalized family).
//
// With mixing IG(mean mu, shape lambda), the per-class count pgf is
//   G(s) = exp( (lambda/mu) (1 - sqrt(1 + 2 mu^2 (1-s)/lambda)) ).
// Substituting t = sqrt(1 + 2 mu^2 / lambda) >= 1 gives the clean forms
//   P(0) = exp(-2 mu / (t + 1)),      P(1) = mu P(0) / t.
// The population parameters (D, mu, t) are fitted by moment matching:
//   r  = D mu                (total sample size)
//   d  = D (1 - P0)          (observed classes)
//   f1 = D P1                (observed singletons)
// and the estimate is D_hat = r / mu. The inner equation (in mu, for fixed
// t) and the outer equation (in t) are both monotone, so the fit is two
// nested bracketed root searches.

struct PoissonInverseGaussianFit {
  double mu = 0.0;       // mean per-class sample count
  double t = 1.0;        // sqrt(1 + 2 mu^2 / lambda)
  double p0 = 0.0;       // probability a class is unseen
  double d_hat = 0.0;    // fitted number of classes r / mu
};

// Fits the model to a sample's (r, d, f1). Returns std::nullopt when the
// moments are degenerate (d == r with no repeats, f1 == 0, or no solution
// in the admissible region).
std::optional<PoissonInverseGaussianFit> FitPoissonInverseGaussian(
    const SampleSummary& summary);

class Sichel final : public Estimator {
 public:
  std::string_view name() const override { return "Sichel"; }
  double Estimate(const SampleSummary& summary) const override;
};

}  // namespace ndv

#endif  // NDV_ESTIMATORS_SICHEL_H_
