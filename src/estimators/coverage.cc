#include "estimators/coverage.h"

#include <cmath>

#include "common/math_util.h"
#include "profile/skew_statistics.h"

namespace ndv {

double Chao::Raw(const SampleSummary& summary) {
  const double d = static_cast<double>(summary.d());
  const double f1 = static_cast<double>(summary.f(1));
  const double f2 = static_cast<double>(summary.f(2));
  if (f2 > 0.0) return d + f1 * f1 / (2.0 * f2);
  return d + f1 * (f1 - 1.0) / 2.0;
}

double Chao::Estimate(const SampleSummary& summary) const {
  CheckEstimatorInput(summary);
  return ApplySanityBounds(Raw(summary), summary);
}

double ChaoLee::Raw(const SampleSummary& summary) {
  const double d = static_cast<double>(summary.d());
  const double r = static_cast<double>(summary.r());
  const double f1 = static_cast<double>(summary.f(1));
  const double coverage = 1.0 - f1 / r;
  if (coverage <= 0.0) return INFINITY;  // Clamped to n by sanity bounds.
  const double d0 = d / coverage;
  const double gamma_sq = EstimatedSquaredCV(summary, std::fmax(d0, 1.0));
  return d0 + r * (1.0 - coverage) / coverage * gamma_sq;
}

double ChaoLee::Estimate(const SampleSummary& summary) const {
  CheckEstimatorInput(summary);
  return ApplySanityBounds(Raw(summary), summary);
}

double ChaoLee2::Raw(const SampleSummary& summary) {
  const double d = static_cast<double>(summary.d());
  const double r = static_cast<double>(summary.r());
  const double f1 = static_cast<double>(summary.f(1));
  const double coverage = 1.0 - f1 / r;
  if (coverage <= 0.0) return INFINITY;  // Clamped to the upper bound.
  const double d0 = d / coverage;
  const double gamma1_sq = EstimatedSquaredCV(summary, std::fmax(d0, 1.0));
  const double pairs = static_cast<double>(summary.freq.PairCount());
  const double gamma2_sq = std::fmax(
      gamma1_sq *
          (1.0 + (1.0 - coverage) * pairs / ((r - 1.0) * coverage)),
      0.0);
  return d0 + r * (1.0 - coverage) / coverage * gamma2_sq;
}

double ChaoLee2::Estimate(const SampleSummary& summary) const {
  CheckEstimatorInput(summary);
  return ApplySanityBounds(Raw(summary), summary);
}

double HorvitzThompson::Raw(const SampleSummary& summary) {
  const double d = static_cast<double>(summary.d());
  const double q = summary.q();
  if (q >= 1.0) return d;
  double estimate = 0.0;
  for (int64_t i = 1; i <= summary.freq.MaxFrequency(); ++i) {
    const double fi = static_cast<double>(summary.f(i));
    if (fi == 0.0) continue;
    const double assumed_size = static_cast<double>(i) / q;
    const double inclusion = 1.0 - PowOneMinus(q, assumed_size);
    estimate += fi / inclusion;
  }
  return estimate;
}

double HorvitzThompson::Estimate(const SampleSummary& summary) const {
  CheckEstimatorInput(summary);
  return ApplySanityBounds(Raw(summary), summary);
}

double Bootstrap::Raw(const SampleSummary& summary) {
  const double d = static_cast<double>(summary.d());
  const double r = static_cast<double>(summary.r());
  double unseen = 0.0;
  for (int64_t i = 1; i <= summary.freq.MaxFrequency(); ++i) {
    const double fi = static_cast<double>(summary.f(i));
    if (fi == 0.0) continue;
    unseen += fi * PowOneMinus(static_cast<double>(i) / r, r);
  }
  return d + unseen;
}

double Bootstrap::Estimate(const SampleSummary& summary) const {
  CheckEstimatorInput(summary);
  return ApplySanityBounds(Raw(summary), summary);
}

}  // namespace ndv
