#include "estimators/goodman.h"

#include <cmath>

#include "common/math_util.h"

namespace ndv {

double Goodman::Raw(const SampleSummary& summary) {
  const int64_t n = summary.n();
  const int64_t r = summary.r();
  const double d = static_cast<double>(summary.d());
  if (r >= n) return d;  // Full scan.
  double correction = 0.0;
  for (int64_t i = 1; i <= summary.freq.MaxFrequency(); ++i) {
    const int64_t fi = summary.f(i);
    if (fi == 0) continue;
    // log of (n-r+i-1)! / (n-r-1)!  ==  lgamma(n-r+i) - lgamma(n-r)
    // log of (r-i)! / r!            ==  lgamma(r-i+1) - lgamma(r+1)
    const double log_term = LogGamma(static_cast<double>(n - r + i)) -
                            LogGamma(static_cast<double>(n - r)) +
                            LogGamma(static_cast<double>(r - i + 1)) -
                            LogGamma(static_cast<double>(r + 1));
    const double term = std::exp(log_term) * static_cast<double>(fi);
    correction += (i % 2 == 1) ? term : -term;
  }
  return d + correction;
}

double Goodman::Estimate(const SampleSummary& summary) const {
  CheckEstimatorInput(summary);
  return ApplySanityBounds(Raw(summary), summary);
}

}  // namespace ndv
