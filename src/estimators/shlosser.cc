#include "estimators/shlosser.h"

#include <cmath>

#include "common/math_util.h"

namespace ndv {

double Shlosser::Raw(const SampleSummary& summary) {
  const double d = static_cast<double>(summary.d());
  const double f1 = static_cast<double>(summary.f(1));
  const double q = summary.q();
  if (q >= 1.0 || f1 == 0.0) return d;
  double numer = 0.0;
  double denom = 0.0;
  for (int64_t i = 1; i <= summary.freq.MaxFrequency(); ++i) {
    const double fi = static_cast<double>(summary.f(i));
    if (fi == 0.0) continue;
    const double ii = static_cast<double>(i);
    numer += PowOneMinus(q, ii) * fi;
    denom += ii * q * PowOneMinus(q, ii - 1.0) * fi;
  }
  if (denom <= 0.0) return d;
  return d + f1 * numer / denom;
}

double Shlosser::Estimate(const SampleSummary& summary) const {
  CheckEstimatorInput(summary);
  return ApplySanityBounds(Raw(summary), summary);
}

double ModifiedShlosser::Raw(const SampleSummary& summary) {
  const double d = static_cast<double>(summary.d());
  const double q = summary.q();
  if (q >= 1.0) return d;
  double estimate = 0.0;
  for (int64_t i = 1; i <= summary.freq.MaxFrequency(); ++i) {
    const double fi = static_cast<double>(summary.f(i));
    if (fi == 0.0) continue;
    // Inclusion probability of a class assumed to occupy i rows of the
    // table: 1 - (1-q)^i.
    const double inclusion = 1.0 - PowOneMinus(q, static_cast<double>(i));
    estimate += fi / inclusion;
  }
  return estimate;
}

double ModifiedShlosser::Estimate(const SampleSummary& summary) const {
  CheckEstimatorInput(summary);
  return ApplySanityBounds(Raw(summary), summary);
}

}  // namespace ndv
