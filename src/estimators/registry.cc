#include "estimators/registry.h"

#include "estimators/coverage.h"
#include "estimators/goodman.h"
#include "estimators/hybrid.h"
#include "estimators/jackknife.h"
#include "estimators/method_of_moments.h"
#include "estimators/shlosser.h"
#include "estimators/sichel.h"

namespace ndv {

std::vector<std::unique_ptr<Estimator>> MakeBaselineEstimators() {
  std::vector<std::unique_ptr<Estimator>> estimators;
  estimators.push_back(std::make_unique<NaiveScaleUp>());
  estimators.push_back(std::make_unique<MethodOfMoments>());
  estimators.push_back(std::make_unique<FiniteMethodOfMoments>());
  estimators.push_back(std::make_unique<Goodman>());
  estimators.push_back(std::make_unique<Sichel>());
  estimators.push_back(std::make_unique<Chao>());
  estimators.push_back(std::make_unique<ChaoLee>());
  estimators.push_back(std::make_unique<ChaoLee2>());
  estimators.push_back(std::make_unique<HorvitzThompson>());
  estimators.push_back(std::make_unique<Bootstrap>());
  estimators.push_back(std::make_unique<BurnhamOvertonJackknife>());
  estimators.push_back(std::make_unique<BurnhamOverton2Jackknife>());
  estimators.push_back(std::make_unique<UnsmoothedJackknife1>());
  estimators.push_back(std::make_unique<StabilizedJackknife1>());
  estimators.push_back(std::make_unique<UnsmoothedJackknife2>());
  estimators.push_back(std::make_unique<StabilizedJackknife>());
  estimators.push_back(std::make_unique<SmoothedJackknife>());
  estimators.push_back(std::make_unique<Shlosser>());
  estimators.push_back(std::make_unique<ModifiedShlosser>());
  estimators.push_back(std::make_unique<HybSkew>());
  estimators.push_back(std::make_unique<HybVar>());
  return estimators;
}

std::unique_ptr<Estimator> MakeBaselineEstimator(std::string_view name) {
  for (auto& estimator : MakeBaselineEstimators()) {
    if (estimator->name() == name) return std::move(estimator);
  }
  return nullptr;
}

}  // namespace ndv
