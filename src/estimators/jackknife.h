#ifndef NDV_ESTIMATORS_JACKKNIFE_H_
#define NDV_ESTIMATORS_JACKKNIFE_H_

#include "estimators/estimator.h"

namespace ndv {

// The (generalized) jackknife family of Haas, Naughton, Seshadri & Stokes
// (VLDB'95) and Haas & Stokes (JASA'98). All are of the paper's
// "D_hat = d + K * f1" shape for various choices of K. Throughout, q = r/n.

// Unsmoothed first-order jackknife:
//     D_uj1 = d / (1 - (1 - q) * f1 / r).
// This is the estimator PostgreSQL's ANALYZE uses. Exact to the published
// formula.
class UnsmoothedJackknife1 final : public Estimator {
 public:
  std::string_view name() const override { return "UJ1"; }
  double Estimate(const SampleSummary& summary) const override;

  // The raw (unclamped) value; shared with the second-order estimator.
  static double Raw(const SampleSummary& summary);
};

// Unsmoothed second-order jackknife:
//     D_uj2 = (1 - (1-q) f1 / r)^{-1} * (d - f1 (1-q) ln(1-q) gamma^2 / q),
// where gamma^2 is the estimated squared coefficient of variation of the
// class sizes evaluated at D_uj1. Exact to the published formula.
class UnsmoothedJackknife2 final : public Estimator {
 public:
  std::string_view name() const override { return "UJ2"; }
  double Estimate(const SampleSummary& summary) const override;

  static double Raw(const SampleSummary& summary);
};

// Stabilized second-order jackknife ("DUJ2A", recommended by Haas & Stokes):
// classes appearing more than `cutoff` times in the sample are treated as
// surely-seen and removed — uj2 runs on the reduced sample against the
// reduced population (n minus the scaled-up mass of the removed classes) —
// then the removed classes are added back. Reconstruction of the JASA'98
// construction; cutoff defaults to 50 as a moderate stabilization point.
class StabilizedJackknife final : public Estimator {
 public:
  explicit StabilizedJackknife(int64_t cutoff = 50);

  std::string_view name() const override { return "DUJ2A"; }
  double Estimate(const SampleSummary& summary) const override;

  static double Raw(const SampleSummary& summary, int64_t cutoff);

 private:
  int64_t cutoff_;
};

// Stabilized FIRST-order jackknife ("UJ1A"): the same
// remove-abundant-classes construction applied to uj1 (Haas & Stokes
// define the -a stabilization for both orders). Cheaper than DUJ2A and
// immune to the CV plug-in, at the cost of uj2's bias correction.
class StabilizedJackknife1 final : public Estimator {
 public:
  explicit StabilizedJackknife1(int64_t cutoff = 50);

  std::string_view name() const override { return "UJ1A"; }
  double Estimate(const SampleSummary& summary) const override;

  static double Raw(const SampleSummary& summary, int64_t cutoff);

 private:
  int64_t cutoff_;
};

// Smoothed first-order jackknife (VLDB'95): replaces the observed f1 in the
// uj1 formula with its expectation under the equal-class-size model at the
// current estimate and iterates to a fixed point:
//     D_{k+1} = d / (1 - (1-q) * (1 - 1/D_k)^{r-1}).
// Reconstruction of the VLDB'95 smoothing idea (see DESIGN.md §3); highly
// accurate on low-skew data, degrades on high skew — the property the
// hybrid estimators exploit.
class SmoothedJackknife final : public Estimator {
 public:
  std::string_view name() const override { return "SJ"; }
  double Estimate(const SampleSummary& summary) const override;

  static double Raw(const SampleSummary& summary);
};

// Classic Burnham-Overton first-order species jackknife,
//     D_hat = d + f1 * (r - 1) / r,
// included for canon completeness; it ignores n and therefore cannot scale
// to small sampling fractions (the statistics-literature failure the
// database papers report).
class BurnhamOvertonJackknife final : public Estimator {
 public:
  std::string_view name() const override { return "JK-BO1"; }
  double Estimate(const SampleSummary& summary) const override;
};

// Second-order Burnham-Overton species jackknife,
//   D_hat = d + f1 (2r - 3)/r - f2 (r - 2)^2 / (r (r - 1)),
// the classic bias-reduced refinement; like the first order it ignores n.
class BurnhamOverton2Jackknife final : public Estimator {
 public:
  std::string_view name() const override { return "JK-BO2"; }
  double Estimate(const SampleSummary& summary) const override;
};

}  // namespace ndv

#endif  // NDV_ESTIMATORS_JACKKNIFE_H_
