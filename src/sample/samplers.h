#ifndef NDV_SAMPLE_SAMPLERS_H_
#define NDV_SAMPLE_SAMPLERS_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace ndv {

// Uniform row-sampling schemes over a table of `n` rows (identified by
// indices 0..n-1). The paper assumes "standard efficient schemes for
// sampling from a table" (Olken); these are those schemes.
//
// All samplers are deterministic functions of the provided Rng.

// r independent uniform draws (sampling WITH replacement). Result order is
// the draw order; duplicates possible. Requires 0 <= r, n >= 1 when r > 0.
std::vector<int64_t> SampleWithReplacement(int64_t n, int64_t r, Rng& rng);

// Sampling WITHOUT replacement via Floyd's algorithm: O(r) expected time and
// O(r) space regardless of n. Result order is unspecified but deterministic
// for a given Rng state. Requires 0 <= r <= n.
std::vector<int64_t> SampleWithoutReplacementFloyd(int64_t n, int64_t r,
                                                   Rng& rng);

// Sampling WITHOUT replacement via a sparse partial Fisher-Yates shuffle
// (hash-map backed), O(r) time/space. The result is a uniformly random
// *ordered* r-permutation of 0..n-1. Requires 0 <= r <= n.
std::vector<int64_t> SampleWithoutReplacementFisherYates(int64_t n, int64_t r,
                                                         Rng& rng);

// Includes each row independently with probability q (Bernoulli sampling,
// the model Shlosser's estimator assumes). Expected size q*n. Requires
// q in [0, 1]. Uses geometric skips, O(q*n) expected time.
std::vector<int64_t> SampleBernoulli(int64_t n, double q, Rng& rng);

// Page-level (block) sampling: the table is divided into blocks of
// `rows_per_block` consecutive rows and `num_blocks` whole blocks are chosen
// without replacement; all rows of a chosen block are returned. This is the
// cheap-but-biased physical design real systems use; provided as an
// extension for studying layout sensitivity. Requires rows_per_block >= 1.
std::vector<int64_t> SampleBlocks(int64_t n, int64_t rows_per_block,
                                  int64_t num_blocks, Rng& rng);

// Sequential (single-pass, in-order) without-replacement sampling —
// Knuth's Algorithm S (TAOCP vol. 3, the paper's reference [20]): row i is
// selected with probability (still needed)/(rows remaining). Exactly
// uniform over r-subsets; output is sorted, which is the access pattern a
// table scan wants. Requires 0 <= r <= n.
std::vector<int64_t> SampleSequential(int64_t n, int64_t r, Rng& rng);

// Single-pass reservoir sampling, Algorithm R (Vitter). Produces a uniform
// without-replacement sample of min(capacity, items seen).
class ReservoirSamplerR {
 public:
  ReservoirSamplerR(int64_t capacity, Rng rng);

  // Feeds one item (any 64-bit payload, e.g. a row id or value hash).
  void Add(uint64_t item);

  int64_t items_seen() const { return seen_; }
  const std::vector<uint64_t>& sample() const { return reservoir_; }

 private:
  int64_t capacity_;
  int64_t seen_ = 0;
  std::vector<uint64_t> reservoir_;
  Rng rng_;
};

// Single-pass reservoir sampling, Algorithm L (Li, 1994): skips ahead
// geometrically so the per-item cost after the reservoir fills is O(1)
// amortized over skipped items. Distributionally identical to Algorithm R.
class ReservoirSamplerL {
 public:
  ReservoirSamplerL(int64_t capacity, Rng rng);

  void Add(uint64_t item);

  // Number of upcoming Add() calls guaranteed to discard their item (0
  // while the reservoir is still filling, or when the next item is kept).
  // Algorithm L's skip schedule is decided before the skipped items are
  // seen, so a scan may avoid computing their payloads entirely: skip up
  // to this many items via SkipDiscarded() instead of hashing + Add().
  int64_t DiscardRunLength() const;

  // Advances the stream past `count` items without inspecting them.
  // Requires 0 <= count <= DiscardRunLength(). Consumes no randomness:
  // a SkipDiscarded(k) followed by Add(x) leaves the sampler in exactly
  // the state k discarding Add() calls followed by Add(x) would.
  void SkipDiscarded(int64_t count);

  int64_t items_seen() const { return seen_; }
  const std::vector<uint64_t>& sample() const { return reservoir_; }

 private:
  void ScheduleNextAcceptance();

  int64_t capacity_;
  int64_t seen_ = 0;
  int64_t next_accept_ = 0;  // index (in items_seen) of the next item kept
  double w_ = 1.0;
  std::vector<uint64_t> reservoir_;
  Rng rng_;
};

}  // namespace ndv

#endif  // NDV_SAMPLE_SAMPLERS_H_
