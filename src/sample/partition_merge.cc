#include "sample/partition_merge.h"

#include <algorithm>

#include "common/check.h"

namespace ndv {

Status ValidatePartitionSample(const PartitionSample& partition,
                               int64_t target, int index) {
  if (partition.population < 0) {
    return InvalidArgumentError("partition %d: negative population %lld",
                                index,
                                static_cast<long long>(partition.population));
  }
  if (static_cast<int64_t>(partition.items.size()) > partition.population) {
    return DataLossError(
        "partition %d: sample of %lld items exceeds its population %lld",
        index, static_cast<long long>(partition.items.size()),
        static_cast<long long>(partition.population));
  }
  const int64_t required = std::min(target, partition.population);
  if (static_cast<int64_t>(partition.items.size()) < required) {
    return DataLossError(
        "partition %d: sample too small to serve any allocation: "
        "have %lld, need %lld",
        index, static_cast<long long>(partition.items.size()),
        static_cast<long long>(required));
  }
  return Status::Ok();
}

StatusOr<std::vector<uint64_t>> MergePartitionSamplesOrStatus(
    std::vector<PartitionSample> partitions, int64_t target, Rng& rng) {
  if (target < 0) {
    return InvalidArgumentError("negative merge target %lld",
                                static_cast<long long>(target));
  }
  int64_t total_population = 0;
  for (size_t p = 0; p < partitions.size(); ++p) {
    NDV_RETURN_IF_ERROR(ValidatePartitionSample(partitions[p], target,
                                                static_cast<int>(p)));
    total_population += partitions[p].population;
  }
  if (target > total_population) {
    return InvalidArgumentError(
        "cannot sample more rows than exist: target %lld > population %lld",
        static_cast<long long>(target),
        static_cast<long long>(total_population));
  }

  // Multivariate hypergeometric allocation: draw rows one at a time,
  // picking partition i with probability remaining_i / remaining_total.
  std::vector<int64_t> take(partitions.size(), 0);
  std::vector<int64_t> remaining(partitions.size());
  for (size_t p = 0; p < partitions.size(); ++p) {
    remaining[p] = partitions[p].population;
  }
  int64_t remaining_total = total_population;
  for (int64_t draw = 0; draw < target; ++draw) {
    uint64_t pick = rng.NextBounded(static_cast<uint64_t>(remaining_total));
    for (size_t p = 0; p < partitions.size(); ++p) {
      if (pick < static_cast<uint64_t>(remaining[p])) {
        ++take[p];
        --remaining[p];
        --remaining_total;
        break;
      }
      pick -= static_cast<uint64_t>(remaining[p]);
    }
  }

  // Serve each allocation with a random k_i-subset of the partition's own
  // uniform sample (a uniform subset of a uniform sample is uniform).
  std::vector<uint64_t> merged;
  merged.reserve(static_cast<size_t>(target));
  for (size_t p = 0; p < partitions.size(); ++p) {
    std::vector<uint64_t>& pool = partitions[p].items;
    NDV_CHECK(take[p] <= static_cast<int64_t>(pool.size()));
    // Partial Fisher-Yates over the pool.
    for (int64_t k = 0; k < take[p]; ++k) {
      const size_t j =
          static_cast<size_t>(k) +
          static_cast<size_t>(rng.NextBounded(pool.size() - static_cast<size_t>(k)));
      std::swap(pool[static_cast<size_t>(k)], pool[j]);
      merged.push_back(pool[static_cast<size_t>(k)]);
    }
  }
  return merged;
}

std::vector<uint64_t> MergePartitionSamples(
    std::vector<PartitionSample> partitions, int64_t target, Rng& rng) {
  auto merged =
      MergePartitionSamplesOrStatus(std::move(partitions), target, rng);
  NDV_CHECK_MSG(merged.ok(), "%s", merged.status().ToString().c_str());
  return std::move(merged).value();
}

}  // namespace ndv
