#include "sample/partition_merge.h"

#include <algorithm>

#include "common/check.h"

namespace ndv {

std::vector<uint64_t> MergePartitionSamples(
    std::vector<PartitionSample> partitions, int64_t target, Rng& rng) {
  NDV_CHECK(target >= 0);
  int64_t total_population = 0;
  for (const PartitionSample& partition : partitions) {
    NDV_CHECK(partition.population >= 0);
    NDV_CHECK(static_cast<int64_t>(partition.items.size()) <=
              partition.population);
    total_population += partition.population;
  }
  NDV_CHECK_MSG(target <= total_population,
                "cannot sample more rows than exist");
  for (const PartitionSample& partition : partitions) {
    const int64_t required = std::min(target, partition.population);
    NDV_CHECK_MSG(static_cast<int64_t>(partition.items.size()) >= required,
                  "partition sample too small to serve any allocation: "
                  "have %lld, need %lld",
                  static_cast<long long>(partition.items.size()),
                  static_cast<long long>(required));
  }

  // Multivariate hypergeometric allocation: draw rows one at a time,
  // picking partition i with probability remaining_i / remaining_total.
  std::vector<int64_t> take(partitions.size(), 0);
  std::vector<int64_t> remaining(partitions.size());
  for (size_t p = 0; p < partitions.size(); ++p) {
    remaining[p] = partitions[p].population;
  }
  int64_t remaining_total = total_population;
  for (int64_t draw = 0; draw < target; ++draw) {
    uint64_t pick = rng.NextBounded(static_cast<uint64_t>(remaining_total));
    for (size_t p = 0; p < partitions.size(); ++p) {
      if (pick < static_cast<uint64_t>(remaining[p])) {
        ++take[p];
        --remaining[p];
        --remaining_total;
        break;
      }
      pick -= static_cast<uint64_t>(remaining[p]);
    }
  }

  // Serve each allocation with a random k_i-subset of the partition's own
  // uniform sample (a uniform subset of a uniform sample is uniform).
  std::vector<uint64_t> merged;
  merged.reserve(static_cast<size_t>(target));
  for (size_t p = 0; p < partitions.size(); ++p) {
    std::vector<uint64_t>& pool = partitions[p].items;
    NDV_CHECK(take[p] <= static_cast<int64_t>(pool.size()));
    // Partial Fisher-Yates over the pool.
    for (int64_t k = 0; k < take[p]; ++k) {
      const size_t j =
          static_cast<size_t>(k) +
          static_cast<size_t>(rng.NextBounded(pool.size() - static_cast<size_t>(k)));
      std::swap(pool[static_cast<size_t>(k)], pool[j]);
      merged.push_back(pool[static_cast<size_t>(k)]);
    }
  }
  return merged;
}

}  // namespace ndv
