#include "sample/samplers.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"

namespace ndv {

std::vector<int64_t> SampleWithReplacement(int64_t n, int64_t r, Rng& rng) {
  NDV_CHECK(r >= 0);
  NDV_CHECK(r == 0 || n >= 1);
  std::vector<int64_t> rows;
  rows.reserve(static_cast<size_t>(r));
  for (int64_t i = 0; i < r; ++i) {
    rows.push_back(
        static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(n))));
  }
  return rows;
}

std::vector<int64_t> SampleWithoutReplacementFloyd(int64_t n, int64_t r,
                                                   Rng& rng) {
  NDV_CHECK(0 <= r && r <= n);
  // NOLINTNEXTLINE(ndv-no-std-hash-container): membership-only scratch set;
  // the output order comes from the rows vector, never from iteration.
  std::unordered_set<int64_t> chosen;
  chosen.reserve(static_cast<size_t>(r));
  std::vector<int64_t> rows;
  rows.reserve(static_cast<size_t>(r));
  // Floyd: for j = n-r .. n-1 pick t uniform in [0, j]; insert t unless
  // already present, in which case insert j. Every r-subset is equally
  // likely.
  for (int64_t j = n - r; j < n; ++j) {
    const int64_t t =
        static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(j) + 1));
    if (chosen.insert(t).second) {
      rows.push_back(t);
    } else {
      chosen.insert(j);
      rows.push_back(j);
    }
  }
  return rows;
}

std::vector<int64_t> SampleWithoutReplacementFisherYates(int64_t n, int64_t r,
                                                         Rng& rng) {
  NDV_CHECK(0 <= r && r <= n);
  // Sparse Fisher-Yates: `displaced[i]` holds the value currently sitting at
  // position i when it differs from i itself.
  // NOLINTNEXTLINE(ndv-no-std-hash-container): point lookups only; output
  // order is the draw order, never map iteration order.
  std::unordered_map<int64_t, int64_t> displaced;
  displaced.reserve(static_cast<size_t>(2 * r));
  std::vector<int64_t> rows;
  rows.reserve(static_cast<size_t>(r));
  for (int64_t i = 0; i < r; ++i) {
    const int64_t j =
        i + static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(n - i)));
    auto it = displaced.find(j);
    const int64_t value = (it == displaced.end()) ? j : it->second;
    auto it_i = displaced.find(i);
    const int64_t value_i = (it_i == displaced.end()) ? i : it_i->second;
    displaced[j] = value_i;
    rows.push_back(value);
  }
  return rows;
}

std::vector<int64_t> SampleBernoulli(int64_t n, double q, Rng& rng) {
  NDV_CHECK(q >= 0.0 && q <= 1.0);
  NDV_CHECK(n >= 0);
  std::vector<int64_t> rows;
  if (q == 0.0 || n == 0) return rows;
  if (q == 1.0) {
    rows.resize(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) rows[static_cast<size_t>(i)] = i;
    return rows;
  }
  rows.reserve(static_cast<size_t>(static_cast<double>(n) * q * 1.1) + 16);
  // Geometric skips: the gap to the next selected row is Geometric(q).
  const double log1mq = std::log1p(-q);
  int64_t i = -1;
  while (true) {
    const double u = 1.0 - rng.NextDouble();  // u in (0, 1]
    const double skip = std::floor(std::log(u) / log1mq);
    if (skip > static_cast<double>(n)) break;  // Guard against overflow.
    i += 1 + static_cast<int64_t>(skip);
    if (i >= n) break;
    rows.push_back(i);
  }
  return rows;
}

std::vector<int64_t> SampleBlocks(int64_t n, int64_t rows_per_block,
                                  int64_t num_blocks, Rng& rng) {
  NDV_CHECK(rows_per_block >= 1);
  NDV_CHECK(n >= 0);
  const int64_t total_blocks = (n + rows_per_block - 1) / rows_per_block;
  NDV_CHECK(num_blocks >= 0 && num_blocks <= total_blocks);
  std::vector<int64_t> blocks =
      SampleWithoutReplacementFloyd(total_blocks, num_blocks, rng);
  std::vector<int64_t> rows;
  rows.reserve(static_cast<size_t>(num_blocks * rows_per_block));
  for (int64_t b : blocks) {
    const int64_t begin = b * rows_per_block;
    const int64_t end = std::min(begin + rows_per_block, n);
    for (int64_t row = begin; row < end; ++row) rows.push_back(row);
  }
  return rows;
}

std::vector<int64_t> SampleSequential(int64_t n, int64_t r, Rng& rng) {
  NDV_CHECK(0 <= r && r <= n);
  std::vector<int64_t> rows;
  rows.reserve(static_cast<size_t>(r));
  int64_t needed = r;
  for (int64_t i = 0; i < n && needed > 0; ++i) {
    // P(select row i) = needed / (n - i).
    if (rng.NextBounded(static_cast<uint64_t>(n - i)) <
        static_cast<uint64_t>(needed)) {
      rows.push_back(i);
      --needed;
    }
  }
  NDV_CHECK(needed == 0);
  return rows;
}

ReservoirSamplerR::ReservoirSamplerR(int64_t capacity, Rng rng)
    : capacity_(capacity), rng_(rng) {
  NDV_CHECK(capacity >= 1);
  reservoir_.reserve(static_cast<size_t>(capacity));
}

void ReservoirSamplerR::Add(uint64_t item) {
  ++seen_;
  if (static_cast<int64_t>(reservoir_.size()) < capacity_) {
    reservoir_.push_back(item);
    NDV_DCHECK_EQ(static_cast<int64_t>(reservoir_.size()),
                  std::min(capacity_, seen_));
    return;
  }
  const int64_t j =
      static_cast<int64_t>(rng_.NextBounded(static_cast<uint64_t>(seen_)));
  if (j < capacity_) reservoir_[static_cast<size_t>(j)] = item;
  // A full reservoir stays exactly at capacity: replacements never resize.
  NDV_DCHECK_EQ(static_cast<int64_t>(reservoir_.size()), capacity_);
}

ReservoirSamplerL::ReservoirSamplerL(int64_t capacity, Rng rng)
    : capacity_(capacity), rng_(rng) {
  NDV_CHECK(capacity >= 1);
  reservoir_.reserve(static_cast<size_t>(capacity));
  next_accept_ = capacity_;  // First post-fill acceptance index; scheduled
                             // properly once the reservoir fills.
}

void ReservoirSamplerL::ScheduleNextAcceptance() {
  // Algorithm L: w *= exp(log(U)/k); the next accepted item is
  // floor(log(U')/log(1-w)) items past the current one.
  w_ *= std::exp(std::log(1.0 - rng_.NextDouble()) /
                 static_cast<double>(capacity_));
  // w is a product of exp(log(U)/k) factors with U in (0, 1), so it decays
  // monotonically within (0, 1]; log1p(-w_) below relies on it.
  NDV_DCHECK(w_ > 0.0 && w_ <= 1.0);
  const double u = 1.0 - rng_.NextDouble();
  const double skip = std::fmin(std::floor(std::log(u) / std::log1p(-w_)),
                                9.0e18);
  next_accept_ = seen_ + static_cast<int64_t>(skip);
  // Skip-schedule monotonicity: the next acceptance is never in the past.
  // Every item strictly before it is a guaranteed discard (DiscardRunLength
  // / SkipDiscarded depend on this never moving backwards).
  NDV_DCHECK_GE(next_accept_, seen_);
}

int64_t ReservoirSamplerL::DiscardRunLength() const {
  if (static_cast<int64_t>(reservoir_.size()) < capacity_) return 0;
  return std::max<int64_t>(0, next_accept_ - seen_);
}

void ReservoirSamplerL::SkipDiscarded(int64_t count) {
  NDV_CHECK(0 <= count && count <= DiscardRunLength());
  seen_ += count;
}

void ReservoirSamplerL::Add(uint64_t item) {
  const int64_t index = seen_;  // 0-based index of this item in the stream
  ++seen_;
  if (static_cast<int64_t>(reservoir_.size()) < capacity_) {
    reservoir_.push_back(item);
    if (static_cast<int64_t>(reservoir_.size()) == capacity_) {
      // Reservoir just filled: schedule the first replacement.
      w_ = 1.0;
      ScheduleNextAcceptance();
    }
    NDV_DCHECK_EQ(static_cast<int64_t>(reservoir_.size()),
                  std::min(capacity_, seen_));
    return;
  }
  if (index == next_accept_) {
    const int64_t slot = static_cast<int64_t>(
        rng_.NextBounded(static_cast<uint64_t>(capacity_)));
    reservoir_[static_cast<size_t>(slot)] = item;
    ScheduleNextAcceptance();
  }
  NDV_DCHECK_EQ(static_cast<int64_t>(reservoir_.size()),
                std::min(capacity_, seen_));
}

}  // namespace ndv
