#ifndef NDV_SAMPLE_BLOCK_SAMPLER_H_
#define NDV_SAMPLE_BLOCK_SAMPLER_H_

#include <cstdint>

#include "common/random.h"
#include "sample/samplers.h"
#include "table/column.h"

namespace ndv {

// Block-aligned reservoir scan: converts a row budget (the reservoir
// capacity) into aligned block reads over a column, feeding Algorithm L's
// skip schedule. Designed for mmap-backed columns, where the unit of I/O
// is a block of consecutive rows, not a row:
//
//  * Fill phase (first `capacity` rows): every row is kept, so whole
//    aligned blocks are batch-hashed with one HashSlice call per block —
//    sequential reads, no per-row virtual dispatch.
//  * Steady state: Algorithm L decides its skip runs before looking at the
//    skipped items, so runs are skipped without touching their rows.
//    Blocks that contain no accepted row are never read at all — for a
//    mapped column their pages are never faulted in.
//
// The sample is bit-identical to feeding rows [begin, end) one by one
// through ReservoirSamplerL::Add with the same rng, for every block size:
// skips consume no randomness, and the batch hash kernels equal HashAt
// value-for-value. In-memory and mapped columns therefore produce the
// same reservoir — the property the distributed workers rely on.

struct BlockSampleOptions {
  // Rows per aligned read block. Block boundaries are aligned to absolute
  // row indices (multiples of block_rows), independent of `begin`, so
  // partition scans line up with the storage layout. 4096 rows of an
  // 8-byte column is 8 pages per read. Must be >= 1.
  int64_t block_rows = 4096;
};

// Scans rows [begin, end) of `column` through an Algorithm-L reservoir of
// `capacity` items seeded by `rng`, reading in aligned blocks as described
// above. Requires 0 <= begin <= end <= column.size() and capacity >= 1.
ReservoirSamplerL BlockSampleColumn(const Column& column, int64_t begin,
                                    int64_t end, int64_t capacity, Rng rng,
                                    const BlockSampleOptions& options = {});

}  // namespace ndv

#endif  // NDV_SAMPLE_BLOCK_SAMPLER_H_
