#include "sample/block_sampler.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace ndv {

ReservoirSamplerL BlockSampleColumn(const Column& column, int64_t begin,
                                    int64_t end, int64_t capacity, Rng rng,
                                    const BlockSampleOptions& options) {
  NDV_CHECK(0 <= begin && begin <= end && end <= column.size());
  NDV_CHECK_GE(options.block_rows, 1);
  ReservoirSamplerL reservoir(capacity, rng);

  const int64_t block_rows = options.block_rows;
  int64_t row = begin;

  // Fill phase: the first min(capacity, end - begin) rows are all kept.
  // Hash them block by block; the first and last blocks may be partial
  // (begin need not be block-aligned), every interior read is one whole
  // aligned block.
  int64_t fill_remaining = std::min(capacity, end - begin);
  // The fill prefix is the one densely-read range of a sampled scan:
  // request readahead for exactly those rows (MADV_WILLNEED underneath for
  // file-backed columns). The steady state below touches isolated rows and
  // gets no advice — demand paging only faults the blocks Algorithm L
  // actually lands on.
  column.PrefetchRows(begin, begin + fill_remaining);
  constexpr int64_t kMaxBatch = 65536;  // caps the hash buffer, not the read
  std::vector<uint64_t> hashes(
      static_cast<size_t>(std::min({block_rows, fill_remaining, kMaxBatch})));
  while (fill_remaining > 0) {
    const int64_t block_end = (row / block_rows + 1) * block_rows;
    int64_t count = std::min({fill_remaining, block_end - row, end - row});
    while (count > 0) {
      const int64_t batch = std::min(count, kMaxBatch);
      column.HashSlice(row, row + batch, hashes.data());
      for (int64_t i = 0; i < batch; ++i) {
        reservoir.Add(hashes[static_cast<size_t>(i)]);
      }
      row += batch;
      count -= batch;
      fill_remaining -= batch;
    }
  }

  // Steady state: honor the skip schedule; only rows Algorithm L accepts
  // are hashed, so only their blocks are ever read.
  while (row < end) {
    const int64_t skip = std::min(reservoir.DiscardRunLength(), end - row);
    if (skip > 0) {
      reservoir.SkipDiscarded(skip);
      row += skip;
      continue;
    }
    reservoir.Add(column.HashAt(row));
    ++row;
  }
  return reservoir;
}

}  // namespace ndv
