#ifndef NDV_SAMPLE_PARTITION_MERGE_H_
#define NDV_SAMPLE_PARTITION_MERGE_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace ndv {

// Distributed / partitioned sampling: a large table is split across
// partitions (shards, workers, files); each partition returns a uniform
// without-replacement sample of its own rows (e.g. from a reservoir).
// MergePartitionSamples combines them into a single uniform
// without-replacement sample of the WHOLE table — the ingredient a
// parallel ANALYZE needs.
//
// Method: the number of merged-sample rows drawn from each partition
// follows the multivariate hypergeometric distribution with weights n_i
// (partition populations); conditioned on taking k_i rows from partition
// i, any k_i-subset of that partition is equally likely, and the
// partition's own uniform sample supplies one. Hence the merge is exactly
// uniform over r-subsets of the union.

struct PartitionSample {
  int64_t population = 0;        // rows in the partition (n_i)
  std::vector<uint64_t> items;   // uniform WOR sample of the partition
                                 // (value hashes or row payloads)
};

// Draws `target` items. Requirements:
//   * target <= sum of populations,
//   * every partition's sample has at least min(target, population) items
//     (so any hypergeometric allocation can be served). The common way to
//     guarantee this: run a reservoir of capacity >= target per partition.
// Deterministic in `rng`. The result order is unspecified.
std::vector<uint64_t> MergePartitionSamples(
    std::vector<PartitionSample> partitions, int64_t target, Rng& rng);

}  // namespace ndv

#endif  // NDV_SAMPLE_PARTITION_MERGE_H_
