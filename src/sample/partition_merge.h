#ifndef NDV_SAMPLE_PARTITION_MERGE_H_
#define NDV_SAMPLE_PARTITION_MERGE_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace ndv {

// Distributed / partitioned sampling: a large table is split across
// partitions (shards, workers, files); each partition returns a uniform
// without-replacement sample of its own rows (e.g. from a reservoir).
// MergePartitionSamples combines them into a single uniform
// without-replacement sample of the WHOLE table — the ingredient a
// parallel ANALYZE needs.
//
// Method: the number of merged-sample rows drawn from each partition
// follows the multivariate hypergeometric distribution with weights n_i
// (partition populations); conditioned on taking k_i rows from partition
// i, any k_i-subset of that partition is equally likely, and the
// partition's own uniform sample supplies one. Hence the merge is exactly
// uniform over r-subsets of the union.

struct PartitionSample {
  int64_t population = 0;        // rows in the partition (n_i)
  std::vector<uint64_t> items;   // uniform WOR sample of the partition
                                 // (value hashes or row payloads)
};

// Checks the preconditions MergePartitionSamples documents for partition
// index `index` (used only in diagnostics): population >= 0, sample no
// larger than its population, and sample large enough to serve any
// hypergeometric allocation (>= min(target, population) items — the common
// way to guarantee this is a reservoir of capacity >= target). Returns
// InvalidArgument/DataLoss describing the first violation. The distributed
// coordinator uses this to classify a worker reply as corrupt before
// merging.
Status ValidatePartitionSample(const PartitionSample& partition,
                               int64_t target, int index);

// Draws `target` items, validating every documented precondition:
//   * target >= 0 and target <= sum of populations,
//   * every partition passes ValidatePartitionSample.
// On violation returns a typed error instead of silently producing a
// non-uniform or out-of-bounds merge. Deterministic in `rng`; the rng is
// only advanced on success. The result order is unspecified.
StatusOr<std::vector<uint64_t>> MergePartitionSamplesOrStatus(
    std::vector<PartitionSample> partitions, int64_t target, Rng& rng);

// Aborting wrapper kept for callers that treat violations as programming
// errors (tests, examples with locally-constructed inputs).
std::vector<uint64_t> MergePartitionSamples(
    std::vector<PartitionSample> partitions, int64_t target, Rng& rng);

}  // namespace ndv

#endif  // NDV_SAMPLE_PARTITION_MERGE_H_
