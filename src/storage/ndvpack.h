#ifndef NDV_STORAGE_NDVPACK_H_
#define NDV_STORAGE_NDVPACK_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/mapped_file.h"
#include "table/table.h"

namespace ndv {

// ndvpack — the library's binary columnar interchange format. A packed
// table opens by mmap with no parse step: Int64/Double columns are raw
// little-endian arrays read in place, String columns are dictionary-encoded
// (int32 code array + offset-indexed UTF-8 blob). Estimates over a mapped
// table are bit-identical to the heap-column path because the mapped
// columns reuse the exact same hash kernels (Hash64 / HashDoubleValue /
// HashBytes over identical bytes).
//
// Wire layout (all integers little-endian; DESIGN.md §12):
//
//   [ 0..8)   magic "NDVPACK1"
//   [ 8..12)  uint32 version (currently 1)
//   [12..16)  uint32 column_count
//   [16..24)  uint64 row_count
//   [24..32)  uint64 directory_offset
//   [32..40)  uint64 directory_length
//   [40..)    payload blobs, each 8-byte aligned:
//               int64/double column: row_count x 8-byte values
//               string column: row_count x int32 codes,
//                              (dict_count + 1) x uint64 offsets
//                              (relative to the blob, offsets[0] == 0,
//                              non-decreasing, last == blob_length),
//                              blob bytes
//   directory_offset ..        per-column entries, parsed sequentially:
//     uint32 name_length, name bytes,
//     uint32 type (0 = int64, 1 = double, 2 = string),
//     int64/double: uint64 values_offset
//     string:       uint64 codes_offset, uint64 dict_count,
//                   uint64 dict_offsets_offset, uint64 dict_blob_offset,
//                   uint64 dict_blob_length
//   [size-8..size) uint64 checksum of bytes [0, size - 8)
//
// The deserializer fully validates before any column is materialized:
// header magic/version, checksum, every offset/length in bounds and
// aligned, every string code within its dictionary, dictionary offsets
// monotone. Malformed input yields a Status (never a crash or over-read) —
// fuzz/fuzz_ndvpack.cc holds that line.

inline constexpr std::string_view kPackMagic = "NDVPACK1";
inline constexpr uint32_t kPackVersion = 1;

// Checksum used by the format: 8 bytes at a time through the Hash64 mixer,
// seeded with the length, zero-padded tail word. ~memory-bandwidth fast.
uint64_t PackChecksum(std::span<const uint8_t> bytes);

// Zero-copy views into one validated pack image. Spans point into the
// parsed buffer; they are valid only while that buffer lives.
struct PackColumnView {
  std::string_view name;
  ColumnType type = ColumnType::kInt64;

  std::span<const int64_t> int64_values;   // type == kInt64
  std::span<const double> double_values;   // type == kDouble

  // type == kString: row codes, dictionary entry i spans
  // dict_blob[dict_offsets[i], dict_offsets[i + 1]).
  std::span<const int32_t> codes;
  std::span<const uint64_t> dict_offsets;  // dict_count + 1 entries
  const char* dict_blob = nullptr;
  uint64_t dict_count = 0;
};

struct PackView {
  uint64_t row_count = 0;
  std::vector<PackColumnView> columns;
};

// Serializes `table` into one ndvpack v1 image.
std::string SerializePack(const Table& table);

// Serializes `table` to `path`. Overwrites an existing file. Writes the
// current default format — ndvpack v2 with auto codec selection
// (storage/pack_writer.h); use WritePackFileV1 (or WritePackFileV2 with
// explicit options) to pin a format.
Status WritePackFile(const Table& table, const std::string& path);

// Serializes `table` to `path` in the v1 (uncompressed, non-blocked)
// format. v1 files remain fully readable; this exists for compatibility
// fixtures and for consumers that want aliasable whole-column arrays.
Status WritePackFileV1(const Table& table, const std::string& path);

// Parses and fully validates one ndvpack image. `bytes.data()` must be
// 8-byte aligned (mmap and malloc'd buffers both are); the views index
// into `bytes` and share its lifetime.
StatusOr<PackView> ParsePack(std::span<const uint8_t> bytes);

// Builds a Table of zero-copy mapped columns over `view`. Every column
// retains `owner`, so the Table may outlive the caller's reference to the
// backing buffer but never the buffer itself.
Table TableFromPack(const PackView& view, std::shared_ptr<const void> owner);

// Maps `path` and returns its table, dispatching on the magic: v1 images
// parse to mapped whole-column views, v2 images (storage/pack_reader.h)
// to block-granular columns. This is the whole "ingest" step for packed
// data.
StatusOr<Table> OpenPackFile(const std::string& path);

// True when `head` begins with either ndvpack magic — v1 "NDVPACK1" or v2
// "NDVPACK2" (used by the transparent loader to pick the pack path over
// CSV without trusting file extensions).
bool StartsWithPackMagic(std::string_view head);

}  // namespace ndv

#endif  // NDV_STORAGE_NDVPACK_H_
