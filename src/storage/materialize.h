#ifndef NDV_STORAGE_MATERIALIZE_H_
#define NDV_STORAGE_MATERIALIZE_H_

#include <memory>

#include "common/status.h"
#include "table/column.h"
#include "table/table.h"

namespace ndv {

// Heap materialization across every storage class. The table layer only
// knows abstract columns (hashes + debug strings); recovering typed values
// requires the concrete column classes, which live here in storage — so
// this is where "turn any column back into a heap column" must live. Used
// by the append workflow: concatenating freshly generated rows onto an
// existing dataset (CSV or ndvpack) regardless of how the base is stored.

// Copies rows [begin, end) of `column` into a heap column of the same
// type (Int64Column / DoubleColumn / StringColumn). Strings round-trip
// through the dictionary, numerics through typed copies — lossless for
// every column class the readers produce. Requires 0 <= begin <= end <=
// column.size(). Returns Internal for an unknown column class.
StatusOr<std::unique_ptr<Column>> MaterializeColumnSlice(
    const Column& column, int64_t begin, int64_t end);

// A heap table holding base's rows followed by appended's rows, column by
// column. The schemas must match (same column count, names, and types, in
// order); mismatches return InvalidArgument naming the first offender.
StatusOr<Table> ConcatTables(const Table& base, const Table& appended);

}  // namespace ndv

#endif  // NDV_STORAGE_MATERIALIZE_H_
