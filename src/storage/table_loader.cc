#include "storage/table_loader.h"

#include <fstream>

#include "storage/mapped_file.h"
#include "storage/ndvpack.h"
#include "table/csv.h"

namespace ndv {

namespace {

// Reads up to the magic's length from the head of the file. A short or
// unreadable file simply fails the sniff; the CSV path then reports the
// real error with full context.
bool SniffPackMagic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char head[8] = {};
  in.read(head, sizeof(head));
  return in.gcount() == sizeof(head) &&
         StartsWithPackMagic({head, sizeof(head)});
}

}  // namespace

StatusOr<Table> LoadTableAuto(const std::string& path) {
  if (SniffPackMagic(path)) return OpenPackFile(path);

  // CSV: one read into one string (no stream double-buffering), then parse.
  auto text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  auto table = ReadCsvInferredOrStatus(*text);
  if (!table.ok()) {
    return Status(table.status().code(),
                  path + ": " + table.status().message());
  }
  return table;
}

}  // namespace ndv
