#ifndef NDV_STORAGE_BLOCKED_COLUMN_H_
#define NDV_STORAGE_BLOCKED_COLUMN_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "storage/pack_codec.h"
#include "table/column.h"

namespace ndv {

// Column implementations over an ndvpack v2 block directory. Where v1's
// mapped columns alias one contiguous array, a v2 column is a sequence of
// independently-coded blocks: raw blocks are still aliased in place
// (zero-copy), compressed blocks (delta, narrow dict codes) decode on
// demand into a small per-thread scratch buffer — one block at a time, so
// a full scan runs in bounded memory and a sampled scan never decodes a
// block Algorithm L skipped.
//
// Thread safety / determinism: the decode scratch is thread_local (keyed
// by column + block index), so concurrent scans never share mutable state
// and hashing is bit-identical to the heap path at every thread count.
// All blocks must have been validated by the pack reader before a column
// is built; the decode loops only DCHECK.

// One block of a v2 column: directory metadata plus a pointer into the
// (validated) mapping.
struct PackBlockRef {
  PackBlockCodec codec = PackBlockCodec::kRaw;
  uint8_t param = 0;
  int64_t rows = 0;
  const uint8_t* data = nullptr;
  uint64_t length = 0;
};

// Column of int64 values over raw/delta blocks.
class BlockedInt64Column final : public Column {
 public:
  BlockedInt64Column(int64_t rows, int64_t block_rows,
                     std::vector<PackBlockRef> blocks,
                     std::shared_ptr<const void> owner);

  ColumnType type() const override { return ColumnType::kInt64; }
  int64_t size() const override { return rows_; }
  uint64_t HashAt(int64_t row) const override;
  void HashRange(std::span<const int64_t> rows, uint64_t* out) const override;
  void HashSlice(int64_t begin, int64_t end, uint64_t* out) const override;
  std::string ValueToString(int64_t row) const override;
  void PrepareFullScan() const override;
  void PrefetchRows(int64_t begin, int64_t end) const override;

  int64_t ValueAt(int64_t row) const;
  // Decodes rows [begin, end) into `out` (block at a time; bounded
  // scratch). The repack path uses this to stream a v2 column back
  // through a writer without materializing it.
  void CopyValues(int64_t begin, int64_t end, int64_t* out) const;
  int64_t block_rows() const { return block_rows_; }
  const std::vector<PackBlockRef>& blocks() const { return blocks_; }

 private:
  // Returns a pointer to the block's decoded values: the aliased payload
  // for raw blocks, the per-thread decode cache otherwise.
  const int64_t* BlockValues(int64_t block) const;

  uint64_t cache_id_;  // process-unique key for the thread decode caches
  int64_t rows_;
  int64_t block_rows_;
  std::vector<PackBlockRef> blocks_;
  std::shared_ptr<const void> owner_;
};

// Column of doubles. v2 stores doubles raw-only, so every block aliases.
class BlockedDoubleColumn final : public Column {
 public:
  BlockedDoubleColumn(int64_t rows, int64_t block_rows,
                      std::vector<PackBlockRef> blocks,
                      std::shared_ptr<const void> owner);

  ColumnType type() const override { return ColumnType::kDouble; }
  int64_t size() const override { return rows_; }
  uint64_t HashAt(int64_t row) const override;
  void HashRange(std::span<const int64_t> rows, uint64_t* out) const override;
  void HashSlice(int64_t begin, int64_t end, uint64_t* out) const override;
  std::string ValueToString(int64_t row) const override;
  void PrepareFullScan() const override;
  void PrefetchRows(int64_t begin, int64_t end) const override;

  double ValueAt(int64_t row) const;
  void CopyValues(int64_t begin, int64_t end, double* out) const;
  int64_t block_rows() const { return block_rows_; }

 private:
  const double* BlockValues(int64_t block) const;

  int64_t rows_;
  int64_t block_rows_;
  std::vector<PackBlockRef> blocks_;
  std::shared_ptr<const void> owner_;
};

// Dictionary string column over raw/narrow code blocks plus the shared
// per-column dictionary (offsets + blob aliased from the mapping, hashes
// precomputed at open like the v1 mapped column).
class BlockedStringColumn final : public Column {
 public:
  BlockedStringColumn(int64_t rows, int64_t block_rows,
                      std::vector<PackBlockRef> blocks,
                      std::span<const uint64_t> dict_offsets, const char* blob,
                      std::shared_ptr<const void> owner);

  ColumnType type() const override { return ColumnType::kString; }
  int64_t size() const override { return rows_; }
  uint64_t HashAt(int64_t row) const override;
  void HashRange(std::span<const int64_t> rows, uint64_t* out) const override;
  void HashSlice(int64_t begin, int64_t end, uint64_t* out) const override;
  std::string ValueToString(int64_t row) const override;
  void PrepareFullScan() const override;
  void PrefetchRows(int64_t begin, int64_t end) const override;

  int64_t dictionary_size() const {
    return static_cast<int64_t>(hashes_.size());
  }
  std::string_view DictionaryEntry(int32_t code) const {
    NDV_DCHECK(0 <= code && code < dictionary_size());
    const auto i = static_cast<size_t>(code);
    return {blob_ + dict_offsets_[i], dict_offsets_[i + 1] - dict_offsets_[i]};
  }
  int32_t CodeAt(int64_t row) const;
  void CopyCodes(int64_t begin, int64_t end, int32_t* out) const;
  int64_t block_rows() const { return block_rows_; }

 private:
  const int32_t* BlockCodes(int64_t block) const;

  uint64_t cache_id_;  // process-unique key for the thread decode caches
  int64_t rows_;
  int64_t block_rows_;
  std::vector<PackBlockRef> blocks_;
  std::span<const uint64_t> dict_offsets_;
  const char* blob_;
  std::vector<uint64_t> hashes_;  // one per dictionary entry
  std::shared_ptr<const void> owner_;
};

}  // namespace ndv

#endif  // NDV_STORAGE_BLOCKED_COLUMN_H_
