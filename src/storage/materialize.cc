#include "storage/materialize.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "storage/blocked_column.h"
#include "storage/mapped_column.h"

namespace ndv {
namespace {

// Appends rows [begin, end) of `column` as typed int64 values.
Status AppendInt64(const Column& column, int64_t begin, int64_t end,
                   std::vector<int64_t>* out) {
  if (const auto* heap = dynamic_cast<const Int64Column*>(&column)) {
    out->insert(out->end(), heap->values().begin() + begin,
                heap->values().begin() + end);
    return Status::Ok();
  }
  if (const auto* mapped = dynamic_cast<const MappedInt64Column*>(&column)) {
    const auto values = mapped->values();
    out->insert(out->end(), values.begin() + begin, values.begin() + end);
    return Status::Ok();
  }
  if (const auto* blocked =
          dynamic_cast<const BlockedInt64Column*>(&column)) {
    const size_t offset = out->size();
    out->resize(offset + static_cast<size_t>(end - begin));
    blocked->CopyValues(begin, end, out->data() + offset);
    return Status::Ok();
  }
  return InternalError("unsupported int64 column class");
}

Status AppendDouble(const Column& column, int64_t begin, int64_t end,
                    std::vector<double>* out) {
  if (const auto* heap = dynamic_cast<const DoubleColumn*>(&column)) {
    out->insert(out->end(), heap->values().begin() + begin,
                heap->values().begin() + end);
    return Status::Ok();
  }
  if (const auto* mapped =
          dynamic_cast<const MappedDoubleColumn*>(&column)) {
    const auto values = mapped->values();
    out->insert(out->end(), values.begin() + begin, values.begin() + end);
    return Status::Ok();
  }
  if (const auto* blocked =
          dynamic_cast<const BlockedDoubleColumn*>(&column)) {
    const size_t offset = out->size();
    out->resize(offset + static_cast<size_t>(end - begin));
    blocked->CopyValues(begin, end, out->data() + offset);
    return Status::Ok();
  }
  return InternalError("unsupported double column class");
}

// Strings go through ValueToString: every string column class renders the
// dictionary entry verbatim, so the round-trip is lossless (unlike the
// numeric types, where the debug rendering would truncate doubles).
void AppendStrings(const Column& column, int64_t begin, int64_t end,
                   std::vector<std::string>* out) {
  out->reserve(out->size() + static_cast<size_t>(end - begin));
  for (int64_t row = begin; row < end; ++row) {
    out->push_back(column.ValueToString(row));
  }
}

StatusOr<std::unique_ptr<Column>> MaterializeRange(const Column& column,
                                                   int64_t begin,
                                                   int64_t end) {
  switch (column.type()) {
    case ColumnType::kInt64: {
      std::vector<int64_t> values;
      values.reserve(static_cast<size_t>(end - begin));
      NDV_RETURN_IF_ERROR(AppendInt64(column, begin, end, &values));
      return std::unique_ptr<Column>(
          std::make_unique<Int64Column>(std::move(values)));
    }
    case ColumnType::kDouble: {
      std::vector<double> values;
      values.reserve(static_cast<size_t>(end - begin));
      NDV_RETURN_IF_ERROR(AppendDouble(column, begin, end, &values));
      return std::unique_ptr<Column>(
          std::make_unique<DoubleColumn>(std::move(values)));
    }
    case ColumnType::kString: {
      std::vector<std::string> values;
      AppendStrings(column, begin, end, &values);
      return std::unique_ptr<Column>(
          std::make_unique<StringColumn>(values));
    }
  }
  return InternalError("unsupported column type");
}

}  // namespace

StatusOr<std::unique_ptr<Column>> MaterializeColumnSlice(
    const Column& column, int64_t begin, int64_t end) {
  if (begin < 0 || begin > end || end > column.size()) {
    return InvalidArgumentError(
        "slice [%lld, %lld) out of bounds for a %lld-row column",
        static_cast<long long>(begin), static_cast<long long>(end),
        static_cast<long long>(column.size()));
  }
  return MaterializeRange(column, begin, end);
}

StatusOr<Table> ConcatTables(const Table& base, const Table& appended) {
  if (base.NumColumns() != appended.NumColumns()) {
    return InvalidArgumentError(
        "schema mismatch: %lld vs %lld columns",
        static_cast<long long>(base.NumColumns()),
        static_cast<long long>(appended.NumColumns()));
  }
  Table result;
  for (int64_t c = 0; c < base.NumColumns(); ++c) {
    const Column& head = base.column(c);
    const Column& tail = appended.column(c);
    if (base.column_name(c) != appended.column_name(c)) {
      return InvalidArgumentError(
          "schema mismatch at column %lld: '%s' vs '%s'",
          static_cast<long long>(c), base.column_name(c).c_str(),
          appended.column_name(c).c_str());
    }
    if (head.type() != tail.type()) {
      return InvalidArgumentError(
          "schema mismatch at column '%s': %s vs %s",
          base.column_name(c).c_str(),
          std::string(ColumnTypeName(head.type())).c_str(),
          std::string(ColumnTypeName(tail.type())).c_str());
    }
    switch (head.type()) {
      case ColumnType::kInt64: {
        std::vector<int64_t> values;
        values.reserve(static_cast<size_t>(head.size() + tail.size()));
        NDV_RETURN_IF_ERROR(AppendInt64(head, 0, head.size(), &values));
        NDV_RETURN_IF_ERROR(AppendInt64(tail, 0, tail.size(), &values));
        result.AddColumn(base.column_name(c),
                         std::make_unique<Int64Column>(std::move(values)));
        break;
      }
      case ColumnType::kDouble: {
        std::vector<double> values;
        values.reserve(static_cast<size_t>(head.size() + tail.size()));
        NDV_RETURN_IF_ERROR(AppendDouble(head, 0, head.size(), &values));
        NDV_RETURN_IF_ERROR(AppendDouble(tail, 0, tail.size(), &values));
        result.AddColumn(base.column_name(c),
                         std::make_unique<DoubleColumn>(std::move(values)));
        break;
      }
      case ColumnType::kString: {
        std::vector<std::string> values;
        AppendStrings(head, 0, head.size(), &values);
        AppendStrings(tail, 0, tail.size(), &values);
        result.AddColumn(base.column_name(c),
                         std::make_unique<StringColumn>(values));
        break;
      }
    }
  }
  return result;
}

}  // namespace ndv
