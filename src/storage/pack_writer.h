#ifndef NDV_STORAGE_PACK_WRITER_H_
#define NDV_STORAGE_PACK_WRITER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/pack_codec.h"
#include "table/table.h"

namespace ndv {

// Streaming ndvpack v2 writer (DESIGN.md §15). Where the v1 serializer
// builds the whole image in one string, PackWriter emits the file
// incrementally — one codec'd block (block_rows values) at a time — so a
// table far larger than RAM packs in O(block + dictionary) memory. The
// column directory and both checksums are finalized at close; the file
// path goes through the write-temp + fsync + rename seam (common/
// file_io.h), so a crash mid-pack never leaves a half-written file at the
// destination.
//
// v2 wire layout (all integers little-endian):
//
//   [ 0..8)   magic "NDVPACK2"
//   [ 8..12)  uint32 version (2)
//   [12..16)  uint32 column_count
//   [16..24)  uint64 row_count
//   [24..32)  uint64 block_rows (rows per block; last block may be short)
//   [32..40)  uint64 directory_offset
//   [40..48)  uint64 directory_length
//   [48..56)  uint64 header checksum (PackChecksumV2 of bytes [0, 48))
//   [56..)    block payloads, 8-aligned each, then per-string-column
//             dictionaries (uint64 offsets array 8-aligned, then the blob)
//   directory_offset ..       per-column entries, parsed sequentially:
//     uint32 name_length, name bytes,
//     uint32 type (0 = int64, 1 = double, 2 = string),
//     string only: uint64 dict_count, uint64 dict_offsets_offset,
//                  uint64 dict_blob_offset, uint64 dict_blob_length
//     uint32 block_count, then per block:
//       uint8 codec, uint8 param, uint16 reserved (0),
//       uint32 rows, uint64 offset, uint64 length
//   [size-8..size) uint64 trailer checksum of bytes
//                  [kPackV2HeaderBytes, size - 8) (streaming scheme,
//                  storage/pack_codec.h)
//
// Two checksums because the header is back-patched: the payload/directory
// stream folds incrementally as it is emitted (the writer never rereads
// it), and the header — written last into its reserved slot — carries its
// own. Every byte of the file is covered by exactly one of the two.

struct PackWriteOptions {
  int64_t block_rows = kDefaultPackBlockRows;
  PackCodecChoice codec = PackCodecChoice::kAutoCodec;
};

class PackWriter {
 public:
  // Streams to `path` via a temp file; the destination appears (with both
  // checksums intact) only at a successful Finalize.
  [[nodiscard]] static StatusOr<std::unique_ptr<PackWriter>> Create(
      const std::string& path, const PackWriteOptions& options = {});

  // Streams into `*out` (cleared first). Byte-identical to the file path:
  // tests diff the two and tools reuse one code path for stdout pipes.
  static std::unique_ptr<PackWriter> CreateInMemory(
      std::string* out, const PackWriteOptions& options = {});

  // Abandoning a writer without Finalize removes the temp file.
  ~PackWriter();

  PackWriter(const PackWriter&) = delete;
  PackWriter& operator=(const PackWriter&) = delete;

  // Begins the next column. Columns are written strictly one at a time:
  // StartColumn, appends of the matching type, FinishColumn.
  [[nodiscard]] Status StartColumn(std::string_view name, ColumnType type);

  // Append rows to the open column. Any chunking yields the same file —
  // the writer re-blocks internally at block_rows.
  [[nodiscard]] Status AppendInt64s(std::span<const int64_t> values);
  [[nodiscard]] Status AppendDoubles(std::span<const double> values);
  [[nodiscard]] Status AppendString(std::string_view value);

  // Closes the open column (flushes its partial block + dictionary).
  // Every column must end with the same row count; the first finished
  // column fixes it.
  [[nodiscard]] Status FinishColumn();

  // Writes the directory, trailer checksum, and header, then (file mode)
  // fsyncs and renames into place. No appends may follow.
  [[nodiscard]] Status Finalize();

 private:
  class Sink;
  class FileSink;
  class StringSink;

  struct BlockEntry {
    PackBlockCodec codec = PackBlockCodec::kRaw;
    uint8_t param = 0;
    uint32_t rows = 0;
    uint64_t offset = 0;
    uint64_t length = 0;
  };

  struct ColumnEntry {
    std::string name;
    ColumnType type = ColumnType::kInt64;
    int64_t rows = 0;
    std::vector<BlockEntry> blocks;
    // String columns only.
    uint64_t dict_count = 0;
    uint64_t dict_offsets_offset = 0;
    uint64_t dict_blob_offset = 0;
    uint64_t dict_blob_length = 0;
  };

  PackWriter(std::unique_ptr<Sink> sink, const PackWriteOptions& options);

  // Streams `bytes` through the trailer checksummer into the sink.
  Status Emit(std::string_view bytes);
  // Pads the stream with zeros to the next 8-byte boundary.
  Status PadTo8();
  // Encodes and emits the buffered block of the open column, if any.
  Status FlushBlock();
  // Emits the open string column's dictionary (offsets + blob).
  Status FlushDictionary();

  std::unique_ptr<Sink> sink_;
  PackWriteOptions options_;
  uint64_t offset_ = kPackV2HeaderBytes;  // next byte's file offset
  PackChecksummer trailer_sum_;

  std::vector<ColumnEntry> columns_;
  bool column_open_ = false;
  bool finalized_ = false;
  bool failed_ = false;       // a failed write poisons the writer
  int64_t row_count_ = -1;    // fixed by the first FinishColumn

  // Open-column block buffers (at most block_rows elements live).
  std::vector<int64_t> int64_buffer_;
  std::vector<double> double_buffer_;
  std::vector<int32_t> code_buffer_;
  std::string encode_buffer_;  // reused per-block encode scratch

  // Open string column's dictionary (the one unavoidable O(distinct)
  // writer state; rows stream through in O(block)). Transparent hashing so
  // AppendString(string_view) interns without a per-row allocation.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  // NOLINTNEXTLINE(ndv-no-std-hash-container): interning map is rebuilt
  // per column and never serialized, so iteration order cannot leak into
  // file bytes; transparent lookup needs the std container here.
  std::unordered_map<std::string, int32_t, StringHash, std::equal_to<>>
      dict_index_;
  std::vector<std::string> dict_entries_;
};

// Streams every row of table column `c` into `writer` in bounded chunks.
// Accepts heap, mapped (v1), and blocked (v2) columns, so repacking never
// materializes a full column. Caller brackets with StartColumn /
// FinishColumn.
[[nodiscard]] Status AppendTableColumn(PackWriter& writer, const Table& table,
                                       int64_t c);

// One-call conveniences over the streaming writer.
std::string SerializePackV2(const Table& table,
                            const PackWriteOptions& options = {});
[[nodiscard]] Status WritePackFileV2(const Table& table,
                                     const std::string& path,
                                     const PackWriteOptions& options = {});

}  // namespace ndv

#endif  // NDV_STORAGE_PACK_WRITER_H_
