#ifndef NDV_STORAGE_PACK_READER_H_
#define NDV_STORAGE_PACK_READER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/pack_codec.h"
#include "table/table.h"

namespace ndv {

// ndvpack v2 reader: validating parser + block-granular table opener
// (layout in storage/pack_writer.h, codecs in storage/pack_codec.h).
//
// Like the v1 parser, everything is validated before a single column
// materializes — header + trailer checksums, every directory field, every
// block's structure, every dictionary code — so the hot decode paths carry
// no data-dependent checks and malformed input always yields a typed
// Status (fuzz/fuzz_ndvpack_v2.cc holds that line). Unlike v1, opening
// does NOT decode any data: raw blocks alias the mapping and compressed
// blocks decode lazily per block, so a sampled scan touches only the
// blocks Algorithm L lands on.

// Per-block metadata, exposed for the verifier tool and tests.
struct PackV2BlockInfo {
  PackBlockCodec codec = PackBlockCodec::kRaw;
  uint8_t param = 0;
  int64_t rows = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
};

struct PackV2ColumnInfo {
  std::string_view name;
  ColumnType type = ColumnType::kInt64;
  std::vector<PackV2BlockInfo> blocks;
  // String columns only.
  uint64_t dict_count = 0;
  uint64_t dict_offsets_offset = 0;
  uint64_t dict_blob_offset = 0;
  uint64_t dict_blob_length = 0;

  // Encoded bytes of this column in the file (blocks + dictionary), and
  // what the same data costs in v1-style raw encoding — the verifier's
  // per-column compression ratio.
  uint64_t packed_bytes = 0;
  uint64_t raw_bytes = 0;
};

struct PackV2Info {
  uint64_t row_count = 0;
  int64_t block_rows = 0;
  uint64_t file_bytes = 0;
  std::vector<PackV2ColumnInfo> columns;
};

// True when `head` begins with the v2 magic.
bool StartsWithPackV2Magic(std::string_view head);

// Parses and fully validates one v2 image, returning its metadata. The
// name views index into `bytes` and share its lifetime. `bytes.data()`
// must be 8-aligned (mmap / malloc buffers both are).
StatusOr<PackV2Info> InspectPackV2(std::span<const uint8_t> bytes);

// Validates `bytes` and builds a Table of blocked columns over it. Every
// column retains `owner`, which must keep `bytes` alive.
StatusOr<Table> OpenPackV2FromBytes(std::span<const uint8_t> bytes,
                                    std::shared_ptr<const void> owner);

}  // namespace ndv

#endif  // NDV_STORAGE_PACK_READER_H_
