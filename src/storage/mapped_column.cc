#include "storage/mapped_column.h"

#include "common/simd_hash.h"
#include "storage/mapped_file.h"

namespace ndv {

// The batch loops route through the same runtime-dispatched kernels as the
// heap columns in table/column.cc; both funnel through the same per-value
// hash functions, which is what keeps packed and parsed estimates
// bit-identical (and identical across SIMD levels).
//
// The advice overrides translate the Column scan hints into madvise on the
// aliased payload ranges: a full scan walks the value array once front to
// back (SEQUENTIAL), a sampled scan touches one bounded row range
// (WILLNEED on exactly those bytes).

void MappedInt64Column::HashRange(std::span<const int64_t> rows,
                                  uint64_t* out) const {
#if NDV_DCHECK_ENABLED
  for (const int64_t row : rows) NDV_DCHECK(0 <= row && row < size());
#endif
  HashInt64Gather(values_.data(), rows.data(), rows.size(), out);
}

void MappedInt64Column::HashSlice(int64_t begin, int64_t end,
                                  uint64_t* out) const {
  NDV_DCHECK(0 <= begin && begin <= end && end <= size());
  HashInt64Span(values_.data() + begin, static_cast<size_t>(end - begin),
                out);
}

void MappedInt64Column::PrepareFullScan() const {
  AdviseSequentialRange(values_.data(), values_.size_bytes());
}

void MappedInt64Column::PrefetchRows(int64_t begin, int64_t end) const {
  NDV_DCHECK(0 <= begin && begin <= end && end <= size());
  AdviseWillNeedRange(values_.data() + begin,
                      static_cast<size_t>(end - begin) * sizeof(int64_t));
}

void MappedDoubleColumn::HashRange(std::span<const int64_t> rows,
                                   uint64_t* out) const {
#if NDV_DCHECK_ENABLED
  for (const int64_t row : rows) NDV_DCHECK(0 <= row && row < size());
#endif
  HashDoubleGather(values_.data(), rows.data(), rows.size(), out);
}

void MappedDoubleColumn::HashSlice(int64_t begin, int64_t end,
                                   uint64_t* out) const {
  NDV_DCHECK(0 <= begin && begin <= end && end <= size());
  HashDoubleSpan(values_.data() + begin, static_cast<size_t>(end - begin),
                 out);
}

void MappedDoubleColumn::PrepareFullScan() const {
  AdviseSequentialRange(values_.data(), values_.size_bytes());
}

void MappedDoubleColumn::PrefetchRows(int64_t begin, int64_t end) const {
  NDV_DCHECK(0 <= begin && begin <= end && end <= size());
  AdviseWillNeedRange(values_.data() + begin,
                      static_cast<size_t>(end - begin) * sizeof(double));
}

MappedStringColumn::MappedStringColumn(std::span<const int32_t> codes,
                                       std::span<const uint64_t> dict_offsets,
                                       const char* blob,
                                       std::shared_ptr<const void> owner)
    : codes_(codes),
      dict_offsets_(dict_offsets),
      blob_(blob),
      owner_(std::move(owner)) {
  NDV_CHECK_GE(dict_offsets_.size(), 1u);
  const size_t dict_count = dict_offsets_.size() - 1;
  hashes_.reserve(dict_count);
  for (size_t i = 0; i < dict_count; ++i) {
    NDV_CHECK_LE(dict_offsets_[i], dict_offsets_[i + 1]);
    hashes_.push_back(HashBytes(
        {blob_ + dict_offsets_[i], dict_offsets_[i + 1] - dict_offsets_[i]}));
  }
}

void MappedStringColumn::HashRange(std::span<const int64_t> rows,
                                   uint64_t* out) const {
  const int32_t* codes = codes_.data();
  const uint64_t* hashes = hashes_.data();
  for (size_t i = 0; i < rows.size(); ++i) {
    NDV_DCHECK(0 <= rows[i] && rows[i] < size());
    out[i] = hashes[static_cast<size_t>(codes[rows[i]])];
  }
}

void MappedStringColumn::HashSlice(int64_t begin, int64_t end,
                                   uint64_t* out) const {
  NDV_DCHECK(0 <= begin && begin <= end && end <= size());
  HashLookupCodes32(codes_.data() + begin, hashes_.data(),
                    static_cast<size_t>(end - begin), out);
}

void MappedStringColumn::PrepareFullScan() const {
  // Only the code array streams; the dictionary was already touched whole
  // when the hash cache was built at open.
  AdviseSequentialRange(codes_.data(), codes_.size_bytes());
}

void MappedStringColumn::PrefetchRows(int64_t begin, int64_t end) const {
  NDV_DCHECK(0 <= begin && begin <= end && end <= size());
  AdviseWillNeedRange(codes_.data() + begin,
                      static_cast<size_t>(end - begin) * sizeof(int32_t));
}

}  // namespace ndv
