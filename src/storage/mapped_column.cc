#include "storage/mapped_column.h"

namespace ndv {

// The batch loops mirror the heap columns in table/column.cc line for line;
// both funnel through the same per-value hash functions, which is what
// keeps packed and parsed estimates bit-identical.

void MappedInt64Column::HashRange(std::span<const int64_t> rows,
                                  uint64_t* out) const {
  const int64_t* values = values_.data();
  for (size_t i = 0; i < rows.size(); ++i) {
    NDV_DCHECK(0 <= rows[i] && rows[i] < size());
    out[i] = Hash64(static_cast<uint64_t>(values[rows[i]]));
  }
}

void MappedInt64Column::HashSlice(int64_t begin, int64_t end,
                                  uint64_t* out) const {
  NDV_DCHECK(0 <= begin && begin <= end && end <= size());
  const int64_t* values = values_.data() + begin;
  const int64_t count = end - begin;
  for (int64_t i = 0; i < count; ++i) {
    out[i] = Hash64(static_cast<uint64_t>(values[i]));
  }
}

void MappedDoubleColumn::HashRange(std::span<const int64_t> rows,
                                   uint64_t* out) const {
  const double* values = values_.data();
  for (size_t i = 0; i < rows.size(); ++i) {
    NDV_DCHECK(0 <= rows[i] && rows[i] < size());
    out[i] = HashDoubleValue(values[rows[i]]);
  }
}

void MappedDoubleColumn::HashSlice(int64_t begin, int64_t end,
                                   uint64_t* out) const {
  NDV_DCHECK(0 <= begin && begin <= end && end <= size());
  const double* values = values_.data() + begin;
  const int64_t count = end - begin;
  for (int64_t i = 0; i < count; ++i) out[i] = HashDoubleValue(values[i]);
}

MappedStringColumn::MappedStringColumn(std::span<const int32_t> codes,
                                       std::span<const uint64_t> dict_offsets,
                                       const char* blob,
                                       std::shared_ptr<const void> owner)
    : codes_(codes),
      dict_offsets_(dict_offsets),
      blob_(blob),
      owner_(std::move(owner)) {
  NDV_CHECK_GE(dict_offsets_.size(), 1u);
  const size_t dict_count = dict_offsets_.size() - 1;
  hashes_.reserve(dict_count);
  for (size_t i = 0; i < dict_count; ++i) {
    NDV_CHECK_LE(dict_offsets_[i], dict_offsets_[i + 1]);
    hashes_.push_back(HashBytes(
        {blob_ + dict_offsets_[i], dict_offsets_[i + 1] - dict_offsets_[i]}));
  }
}

void MappedStringColumn::HashRange(std::span<const int64_t> rows,
                                   uint64_t* out) const {
  const int32_t* codes = codes_.data();
  const uint64_t* hashes = hashes_.data();
  for (size_t i = 0; i < rows.size(); ++i) {
    NDV_DCHECK(0 <= rows[i] && rows[i] < size());
    out[i] = hashes[static_cast<size_t>(codes[rows[i]])];
  }
}

void MappedStringColumn::HashSlice(int64_t begin, int64_t end,
                                   uint64_t* out) const {
  NDV_DCHECK(0 <= begin && begin <= end && end <= size());
  const int32_t* codes = codes_.data() + begin;
  const uint64_t* hashes = hashes_.data();
  const int64_t count = end - begin;
  for (int64_t i = 0; i < count; ++i) {
    out[i] = hashes[static_cast<size_t>(codes[i])];
  }
}

}  // namespace ndv
