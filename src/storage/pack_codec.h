#ifndef NDV_STORAGE_PACK_CODEC_H_
#define NDV_STORAGE_PACK_CODEC_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/status.h"

namespace ndv {

// ndvpack v2 block-codec layer (DESIGN.md §15). The v2 format splits every
// column into fixed-size row blocks; each block carries its own codec tag
// and decodes independently, so a sampled scan only pays decompression for
// the blocks it actually touches. The codec split mirrors the file-codec /
// block-codec architecture of bcsv's stream + packet codecs: the file
// level owns layout, checksum, and the directory; the block level owns the
// bytes of one run of rows.
//
// Codecs:
//   raw (0)    int64/double: the little-endian value array, aliased in
//              place (offset 8-aligned). string: int32 code array.
//   delta (1)  int64 only. param = delta byte width w in {0, 1, 2, 4, 8}.
//              Payload: int64 base, then (rows - 1) deltas, each the low w
//              bytes of v[i] - v[i-1] in two's complement (sign-extended
//              on decode, wrap-around arithmetic throughout — INT64_MIN /
//              INT64_MAX neighbors are well-defined). w = 0 encodes a
//              zero-order-hold run: every row equals base, no delta bytes.
//   dict (2)   string only. param = code byte width w in {1, 2, 4}.
//              Payload: rows unsigned little-endian codes of w bytes each,
//              every code < the column's dictionary size (validated at
//              parse time, before any decode).
//
// Validation is split so the hot decode loops carry no data-dependent
// checks: Validate*Block rejects every malformed block with a typed
// Status (fuzz_ndvpack_v2 holds that line); Decode*Block then requires a
// validated block and only DCHECKs.

enum class PackBlockCodec : uint8_t {
  kRaw = 0,
  kDelta = 1,
  kDictCodes = 2,
};

// --- v2 file-level constants (layout in storage/pack_writer.h). -----------

inline constexpr std::string_view kPackV2Magic = "NDVPACK2";
inline constexpr uint32_t kPackV2Version = 2;
// 48 bytes of header fields plus the 8-byte header checksum; the payload
// stream starts here (8-aligned by construction).
inline constexpr uint64_t kPackV2HeaderBytes = 56;
inline constexpr uint64_t kPackV2TrailerBytes = 8;
// Default rows per block: small enough that one decoded block (32 KiB of
// int64) stays cache-resident, large enough to amortize per-block
// directory cost (24 bytes) to < 0.1%.
inline constexpr int64_t kDefaultPackBlockRows = 4096;
// Upper bound a reader will accept; bounds per-block decode scratch.
inline constexpr int64_t kMaxPackBlockRows = 1 << 20;

// Writer-side codec request. kAutoCodec picks per block: delta when it is
// strictly smaller than raw, narrow dict codes when the dictionary fits a
// sub-int32 width; doubles always encode raw (their bit patterns rarely
// delta well and raw keeps them aliasable).
enum class PackCodecChoice {
  kAutoCodec = 0,
  kForceRaw = 1,
  kForceDelta = 2,
  kForceDict = 3,
};

// Parses a --codec= style name (auto|raw|delta|dict). Returns false on
// unknown names.
bool ParsePackCodecChoice(std::string_view text, PackCodecChoice* out);
const char* PackCodecChoiceName(PackCodecChoice choice);
const char* PackBlockCodecName(PackBlockCodec codec);

// --- Streaming checksum. --------------------------------------------------

// Incremental version of the pack trailer checksum, so the streaming
// writer never needs the whole file in memory: Hash64-folds the stream 8
// LE bytes at a time (zero-padded tail), then folds the total length at
// Finish(). (v1 seeds with the length instead, which forces two passes;
// the v2 trailer uses this end-folded variant.)
class PackChecksummer {
 public:
  void Append(std::string_view bytes);
  // Finalizes over everything appended so far. Idempotent w.r.t. state:
  // does not consume the checksummer.
  uint64_t Finish() const;

 private:
  uint64_t h_ = 0x9e3779b97f4a7c15ULL;
  uint64_t total_bytes_ = 0;
  uint8_t pending_[8] = {};
  size_t pending_count_ = 0;
};

// Convenience: checksum of one contiguous buffer under the v2 scheme.
uint64_t PackChecksumV2(std::span<const uint8_t> bytes);

// --- Block encoding (writer side). ----------------------------------------

struct PackBlockEncoding {
  PackBlockCodec codec = PackBlockCodec::kRaw;
  uint8_t param = 0;
};

// Encodes one int64 block (values.size() >= 1) under `choice`, appending
// the payload bytes to `out`. kAutoCodec picks the smaller of raw and
// delta; kForceDelta always emits delta (minimal width); kForceDict is
// invalid for int64 and falls back to auto.
PackBlockEncoding EncodeInt64Block(std::span<const int64_t> values,
                                   PackCodecChoice choice, std::string* out);

// Encodes one double block: always raw (codec tag kRaw).
PackBlockEncoding EncodeDoubleBlock(std::span<const double> values,
                                    std::string* out);

// Encodes one string-code block. kAutoCodec / kForceDict narrow the codes
// to the width of the block's maximum code (dict wins only when narrower
// than int32 under auto); kForceRaw emits the int32 array.
PackBlockEncoding EncodeCodesBlock(std::span<const int32_t> codes,
                                   PackCodecChoice choice, std::string* out);

// --- Block validation + decode (reader side). -----------------------------

// Structural validation of an int64/double block claim: codec/param legal
// for the type, payload length exactly what codec+rows require. `rows` is
// the directory's row count for the block (>= 1).
Status ValidateValueBlock(PackBlockCodec codec, uint8_t param, bool is_double,
                          int64_t rows, uint64_t payload_length);

// Validation of a string-code block, including the data-dependent check
// that every code is < dict_count (scans the payload once).
Status ValidateCodesBlock(PackBlockCodec codec, uint8_t param, int64_t rows,
                          std::span<const uint8_t> payload,
                          uint64_t dict_count);

// Decodes a validated int64 block into out[0, rows). Raw blocks memcpy;
// callers that can alias raw payloads should do so instead and only call
// this for kDelta.
void DecodeInt64Block(PackBlockCodec codec, uint8_t param, int64_t rows,
                      const uint8_t* payload, int64_t* out);

// Decodes a validated code block into out[0, rows).
void DecodeCodesBlock(PackBlockCodec codec, uint8_t param, int64_t rows,
                      const uint8_t* payload, int32_t* out);

}  // namespace ndv

#endif  // NDV_STORAGE_PACK_CODEC_H_
