#ifndef NDV_STORAGE_TABLE_LOADER_H_
#define NDV_STORAGE_TABLE_LOADER_H_

#include <string>

#include "common/status.h"
#include "table/table.h"

namespace ndv {

// Loads a table from `path`, auto-detecting the format by content (not by
// extension): a file beginning with the ndvpack magic opens zero-copy by
// mmap; anything else parses as header-ed CSV with per-column type
// inference. Every failure — missing file, short read, malformed CSV,
// corrupt pack — surfaces as a Status naming the path.
StatusOr<Table> LoadTableAuto(const std::string& path);

}  // namespace ndv

#endif  // NDV_STORAGE_TABLE_LOADER_H_
