#include "storage/pack_codec.h"

#include <cstring>

#include "common/check.h"
#include "common/random.h"

namespace ndv {

namespace {

// Smallest signed two's-complement byte width in {1, 2, 4} that represents
// `delta` exactly, or 8 when none does.
uint8_t DeltaWidthFor(uint64_t delta) {
  const auto d = static_cast<int64_t>(delta);
  if (d >= -128 && d <= 127) return 1;
  if (d >= -32768 && d <= 32767) return 2;
  if (d >= -2147483648LL && d <= 2147483647LL) return 4;
  return 8;
}

void AppendLittleEndian(std::string* out, uint64_t value, size_t bytes) {
  for (size_t i = 0; i < bytes; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

uint64_t ReadLittleEndian(const uint8_t* bytes, size_t count) {
  uint64_t value = 0;
  for (size_t i = 0; i < count; ++i) {
    value |= static_cast<uint64_t>(bytes[i]) << (8 * i);
  }
  return value;
}

int64_t SignExtend(uint64_t value, size_t bytes) {
  const size_t shift = 64 - 8 * bytes;
  return static_cast<int64_t>(value << shift) >> shift;
}

}  // namespace

bool ParsePackCodecChoice(std::string_view text, PackCodecChoice* out) {
  if (text == "auto") {
    *out = PackCodecChoice::kAutoCodec;
    return true;
  }
  if (text == "raw") {
    *out = PackCodecChoice::kForceRaw;
    return true;
  }
  if (text == "delta") {
    *out = PackCodecChoice::kForceDelta;
    return true;
  }
  if (text == "dict") {
    *out = PackCodecChoice::kForceDict;
    return true;
  }
  return false;
}

const char* PackCodecChoiceName(PackCodecChoice choice) {
  switch (choice) {
    case PackCodecChoice::kAutoCodec:
      return "auto";
    case PackCodecChoice::kForceRaw:
      return "raw";
    case PackCodecChoice::kForceDelta:
      return "delta";
    case PackCodecChoice::kForceDict:
      return "dict";
  }
  return "unknown";
}

const char* PackBlockCodecName(PackBlockCodec codec) {
  switch (codec) {
    case PackBlockCodec::kRaw:
      return "raw";
    case PackBlockCodec::kDelta:
      return "delta";
    case PackBlockCodec::kDictCodes:
      return "dict";
  }
  return "unknown";
}

// --- Checksum. ------------------------------------------------------------

void PackChecksummer::Append(std::string_view bytes) {
  total_bytes_ += bytes.size();
  size_t i = 0;
  // Top up a partial word left by the previous Append.
  if (pending_count_ > 0) {
    while (pending_count_ < 8 && i < bytes.size()) {
      pending_[pending_count_++] = static_cast<uint8_t>(bytes[i++]);
    }
    if (pending_count_ < 8) return;
    uint64_t word;
    std::memcpy(&word, pending_, sizeof(word));
    h_ = Hash64(h_ ^ word);
    pending_count_ = 0;
  }
  for (; i + 8 <= bytes.size(); i += 8) {
    uint64_t word;
    std::memcpy(&word, bytes.data() + i, sizeof(word));
    h_ = Hash64(h_ ^ word);
  }
  while (i < bytes.size()) {
    pending_[pending_count_++] = static_cast<uint8_t>(bytes[i++]);
  }
}

uint64_t PackChecksummer::Finish() const {
  uint64_t h = h_;
  if (pending_count_ > 0) {
    uint8_t tail[8] = {};  // Zero-padded; the length fold disambiguates.
    std::memcpy(tail, pending_, pending_count_);
    uint64_t word;
    std::memcpy(&word, tail, sizeof(word));
    h = Hash64(h ^ word);
  }
  return Hash64(h ^ total_bytes_);
}

uint64_t PackChecksumV2(std::span<const uint8_t> bytes) {
  PackChecksummer sum;
  sum.Append({reinterpret_cast<const char*>(bytes.data()), bytes.size()});
  return sum.Finish();
}

// --- Encoding. ------------------------------------------------------------

PackBlockEncoding EncodeInt64Block(std::span<const int64_t> values,
                                   PackCodecChoice choice, std::string* out) {
  NDV_CHECK_GE(values.size(), 1u);
  if (choice != PackCodecChoice::kForceRaw) {
    // Width = widest delta in the block (wrapping arithmetic).
    uint8_t width = 0;
    for (size_t i = 1; i < values.size(); ++i) {
      const uint64_t delta = static_cast<uint64_t>(values[i]) -
                             static_cast<uint64_t>(values[i - 1]);
      if (delta != 0) {
        const uint8_t w = DeltaWidthFor(delta);
        if (w > width) width = w;
      }
    }
    const uint64_t delta_bytes =
        8 + static_cast<uint64_t>(width) * (values.size() - 1);
    const uint64_t raw_bytes = 8 * values.size();
    if (choice == PackCodecChoice::kForceDelta || delta_bytes < raw_bytes) {
      AppendLittleEndian(out, static_cast<uint64_t>(values[0]), 8);
      if (width > 0) {
        for (size_t i = 1; i < values.size(); ++i) {
          const uint64_t delta = static_cast<uint64_t>(values[i]) -
                                 static_cast<uint64_t>(values[i - 1]);
          AppendLittleEndian(out, delta, width);
        }
      }
      return {PackBlockCodec::kDelta, width};
    }
  }
  out->append(reinterpret_cast<const char*>(values.data()),
              values.size() * sizeof(int64_t));
  return {PackBlockCodec::kRaw, 0};
}

PackBlockEncoding EncodeDoubleBlock(std::span<const double> values,
                                    std::string* out) {
  NDV_CHECK_GE(values.size(), 1u);
  out->append(reinterpret_cast<const char*>(values.data()),
              values.size() * sizeof(double));
  return {PackBlockCodec::kRaw, 0};
}

PackBlockEncoding EncodeCodesBlock(std::span<const int32_t> codes,
                                   PackCodecChoice choice, std::string* out) {
  NDV_CHECK_GE(codes.size(), 1u);
  if (choice != PackCodecChoice::kForceRaw) {
    int32_t max_code = 0;
    for (const int32_t code : codes) {
      NDV_DCHECK(code >= 0);
      if (code > max_code) max_code = code;
    }
    const uint8_t width = max_code <= 0xff ? 1 : max_code <= 0xffff ? 2 : 4;
    if (choice == PackCodecChoice::kForceDict || width < 4) {
      for (const int32_t code : codes) {
        AppendLittleEndian(out, static_cast<uint64_t>(code), width);
      }
      return {PackBlockCodec::kDictCodes, width};
    }
  }
  out->append(reinterpret_cast<const char*>(codes.data()),
              codes.size() * sizeof(int32_t));
  return {PackBlockCodec::kRaw, 0};
}

// --- Validation. ----------------------------------------------------------

Status ValidateValueBlock(PackBlockCodec codec, uint8_t param, bool is_double,
                          int64_t rows, uint64_t payload_length) {
  if (rows < 1) return DataLossError("block with %lld rows",
                                     static_cast<long long>(rows));
  switch (codec) {
    case PackBlockCodec::kRaw: {
      if (param != 0) {
        return DataLossError("raw block with nonzero param %u", param);
      }
      const uint64_t want = static_cast<uint64_t>(rows) * 8;
      if (payload_length != want) {
        return DataLossError(
            "raw block length %llu != %llu for %lld rows",
            static_cast<unsigned long long>(payload_length),
            static_cast<unsigned long long>(want),
            static_cast<long long>(rows));
      }
      return Status::Ok();
    }
    case PackBlockCodec::kDelta: {
      if (is_double) return DataLossError("delta block in a double column");
      if (param != 0 && param != 1 && param != 2 && param != 4 && param != 8) {
        return DataLossError("delta block with width %u", param);
      }
      const uint64_t want =
          8 + static_cast<uint64_t>(param) * (static_cast<uint64_t>(rows) - 1);
      if (payload_length != want) {
        return DataLossError(
            "delta block length %llu != %llu (width %u, %lld rows)",
            static_cast<unsigned long long>(payload_length),
            static_cast<unsigned long long>(want), param,
            static_cast<long long>(rows));
      }
      return Status::Ok();
    }
    case PackBlockCodec::kDictCodes:
      return DataLossError("dict block in a value column");
  }
  return DataLossError("unknown block codec %u", static_cast<unsigned>(codec));
}

Status ValidateCodesBlock(PackBlockCodec codec, uint8_t param, int64_t rows,
                          std::span<const uint8_t> payload,
                          uint64_t dict_count) {
  if (rows < 1) return DataLossError("block with %lld rows",
                                     static_cast<long long>(rows));
  size_t width;
  switch (codec) {
    case PackBlockCodec::kRaw:
      if (param != 0) {
        return DataLossError("raw code block with nonzero param %u", param);
      }
      width = 4;
      break;
    case PackBlockCodec::kDictCodes:
      if (param != 1 && param != 2 && param != 4) {
        return DataLossError("dict code block with width %u", param);
      }
      width = param;
      break;
    case PackBlockCodec::kDelta:
      return DataLossError("delta block in a string column");
    default:
      return DataLossError("unknown block codec %u",
                           static_cast<unsigned>(codec));
  }
  const uint64_t want = static_cast<uint64_t>(rows) * width;
  if (payload.size() != want) {
    return DataLossError("code block length %zu != %llu (width %zu, %lld "
                         "rows)",
                         payload.size(),
                         static_cast<unsigned long long>(want), width,
                         static_cast<long long>(rows));
  }
  // Every code must index the dictionary. Raw stores int32 (negatives
  // possible on disk); dict widths store unsigned codes.
  for (int64_t i = 0; i < rows; ++i) {
    uint64_t code;
    if (codec == PackBlockCodec::kRaw) {
      int32_t raw;
      std::memcpy(&raw, payload.data() + static_cast<size_t>(i) * 4, 4);
      if (raw < 0) {
        return DataLossError("negative code %ld at block row %lld",
                             static_cast<long>(raw),
                             static_cast<long long>(i));
      }
      code = static_cast<uint64_t>(raw);
    } else {
      code = ReadLittleEndian(payload.data() + static_cast<size_t>(i) * width,
                              width);
    }
    if (code >= dict_count) {
      return DataLossError(
          "code %llu at block row %lld outside dictionary of %llu",
          static_cast<unsigned long long>(code), static_cast<long long>(i),
          static_cast<unsigned long long>(dict_count));
    }
  }
  return Status::Ok();
}

// --- Decode. --------------------------------------------------------------

void DecodeInt64Block(PackBlockCodec codec, uint8_t param, int64_t rows,
                      const uint8_t* payload, int64_t* out) {
  NDV_DCHECK(rows >= 1);
  if (codec == PackBlockCodec::kRaw) {
    std::memcpy(out, payload, static_cast<size_t>(rows) * sizeof(int64_t));
    return;
  }
  NDV_DCHECK(codec == PackBlockCodec::kDelta);
  uint64_t value = ReadLittleEndian(payload, 8);
  out[0] = static_cast<int64_t>(value);
  if (param == 0) {  // Zero-order hold: the whole block equals the base.
    for (int64_t i = 1; i < rows; ++i) out[i] = out[0];
    return;
  }
  const uint8_t* deltas = payload + 8;
  for (int64_t i = 1; i < rows; ++i) {
    const uint64_t raw = ReadLittleEndian(
        deltas + static_cast<size_t>(i - 1) * param, param);
    value += static_cast<uint64_t>(SignExtend(raw, param));
    out[i] = static_cast<int64_t>(value);
  }
}

void DecodeCodesBlock(PackBlockCodec codec, uint8_t param, int64_t rows,
                      const uint8_t* payload, int32_t* out) {
  NDV_DCHECK(rows >= 1);
  if (codec == PackBlockCodec::kRaw) {
    std::memcpy(out, payload, static_cast<size_t>(rows) * sizeof(int32_t));
    return;
  }
  NDV_DCHECK(codec == PackBlockCodec::kDictCodes);
  for (int64_t i = 0; i < rows; ++i) {
    out[i] = static_cast<int32_t>(ReadLittleEndian(
        payload + static_cast<size_t>(i) * param, param));
  }
}

}  // namespace ndv
