#ifndef NDV_STORAGE_MAPPED_COLUMN_H_
#define NDV_STORAGE_MAPPED_COLUMN_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "table/column.h"

namespace ndv {

// Zero-copy Column implementations over memory-mapped ndvpack payloads.
// Each column holds spans into the mapping plus a shared_ptr keeping the
// mapping (or any other backing buffer) alive — moving the owning Table
// around can never dangle the views.
//
// Hashing is bit-identical to the heap columns: the same Hash64 /
// HashDoubleValue / HashBytes functions over the same value bytes, so an
// estimate computed from a mapped table equals the CSV-parsed one exactly.

// Column of 64-bit integers read in place from the mapping.
class MappedInt64Column final : public Column {
 public:
  MappedInt64Column(std::span<const int64_t> values,
                    std::shared_ptr<const void> owner)
      : values_(values), owner_(std::move(owner)) {}

  ColumnType type() const override { return ColumnType::kInt64; }
  int64_t size() const override {
    return static_cast<int64_t>(values_.size());
  }
  uint64_t HashAt(int64_t row) const override {
    NDV_DCHECK(0 <= row && row < size());
    return Hash64(static_cast<uint64_t>(values_[static_cast<size_t>(row)]));
  }
  void HashRange(std::span<const int64_t> rows, uint64_t* out) const override;
  void HashSlice(int64_t begin, int64_t end, uint64_t* out) const override;
  void PrepareFullScan() const override;
  void PrefetchRows(int64_t begin, int64_t end) const override;
  std::string ValueToString(int64_t row) const override {
    return std::to_string(values_[static_cast<size_t>(row)]);
  }

  std::span<const int64_t> values() const { return values_; }

 private:
  std::span<const int64_t> values_;
  std::shared_ptr<const void> owner_;
};

// Column of doubles read in place from the mapping. Equality classes match
// DoubleColumn: -0.0 == +0.0, all NaN payloads collapse into one class.
class MappedDoubleColumn final : public Column {
 public:
  MappedDoubleColumn(std::span<const double> values,
                     std::shared_ptr<const void> owner)
      : values_(values), owner_(std::move(owner)) {}

  ColumnType type() const override { return ColumnType::kDouble; }
  int64_t size() const override {
    return static_cast<int64_t>(values_.size());
  }
  uint64_t HashAt(int64_t row) const override {
    NDV_DCHECK(0 <= row && row < size());
    return HashDoubleValue(values_[static_cast<size_t>(row)]);
  }
  void HashRange(std::span<const int64_t> rows, uint64_t* out) const override;
  void HashSlice(int64_t begin, int64_t end, uint64_t* out) const override;
  void PrepareFullScan() const override;
  void PrefetchRows(int64_t begin, int64_t end) const override;
  std::string ValueToString(int64_t row) const override {
    return std::to_string(values_[static_cast<size_t>(row)]);
  }

  std::span<const double> values() const { return values_; }

 private:
  std::span<const double> values_;
  std::shared_ptr<const void> owner_;
};

// Dictionary-encoded string column over the mapping: int32 codes + an
// offset-indexed blob, exactly the StringColumn representation but with the
// strings left in place. The only open-time allocation is the per-entry
// hash cache (8 bytes per distinct string). Codes must have been validated
// against dict_count by the pack deserializer.
class MappedStringColumn final : public Column {
 public:
  // `dict_offsets` has dict_count + 1 entries; entry i of the dictionary
  // spans blob[dict_offsets[i], dict_offsets[i + 1]).
  MappedStringColumn(std::span<const int32_t> codes,
                     std::span<const uint64_t> dict_offsets, const char* blob,
                     std::shared_ptr<const void> owner);

  ColumnType type() const override { return ColumnType::kString; }
  int64_t size() const override { return static_cast<int64_t>(codes_.size()); }
  uint64_t HashAt(int64_t row) const override {
    NDV_DCHECK(0 <= row && row < size());
    return hashes_[static_cast<size_t>(codes_[static_cast<size_t>(row)])];
  }
  void HashRange(std::span<const int64_t> rows, uint64_t* out) const override;
  void HashSlice(int64_t begin, int64_t end, uint64_t* out) const override;
  void PrepareFullScan() const override;
  void PrefetchRows(int64_t begin, int64_t end) const override;
  std::string ValueToString(int64_t row) const override {
    return std::string(DictionaryEntry(
        codes_[static_cast<size_t>(row)]));
  }

  int64_t dictionary_size() const {
    return static_cast<int64_t>(hashes_.size());
  }
  std::string_view DictionaryEntry(int32_t code) const {
    NDV_DCHECK(0 <= code && code < dictionary_size());
    const auto i = static_cast<size_t>(code);
    return {blob_ + dict_offsets_[i], dict_offsets_[i + 1] - dict_offsets_[i]};
  }
  std::span<const int32_t> codes() const { return codes_; }

 private:
  std::span<const int32_t> codes_;
  std::span<const uint64_t> dict_offsets_;
  const char* blob_;
  std::vector<uint64_t> hashes_;  // one per dictionary entry
  std::shared_ptr<const void> owner_;
};

}  // namespace ndv

#endif  // NDV_STORAGE_MAPPED_COLUMN_H_
