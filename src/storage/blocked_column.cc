#include "storage/blocked_column.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "common/simd_hash.h"
#include "common/value_hash.h"
#include "storage/mapped_file.h"

namespace ndv {

namespace {

// Per-thread single-block decode caches, shared by every blocked column in
// the process. A cache entry is keyed by (column instance id, block), so a
// thread re-hashing inside one block (Algorithm L's steady state, or a
// slice walk) decodes it once; a different thread never observes another
// thread's scratch. Column ids are process-unique (monotone counter), so a
// recycled heap address can never revive a dead column's cache entry.
uint64_t NextColumnId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

struct Int64BlockCache {
  uint64_t column = 0;
  int64_t block = -1;
  std::vector<int64_t> values;
};

Int64BlockCache& ThreadInt64Cache() {
  static thread_local Int64BlockCache cache;
  return cache;
}

struct CodeBlockCache {
  uint64_t column = 0;
  int64_t block = -1;
  std::vector<int32_t> codes;
};

CodeBlockCache& ThreadCodeCache() {
  static thread_local CodeBlockCache cache;
  return cache;
}

// Bounding byte range of blocks [first, last] (inclusive); the writer lays
// blocks out in offset order, but computing min/max keeps the advice
// correct for any validated directory.
void AdviseBlocks(const std::vector<PackBlockRef>& blocks, size_t first,
                  size_t last, bool sequential) {
  const uint8_t* lo = blocks[first].data;
  const uint8_t* hi = blocks[first].data + blocks[first].length;
  for (size_t b = first + 1; b <= last; ++b) {
    lo = std::min(lo, blocks[b].data);
    hi = std::max(hi, blocks[b].data + blocks[b].length);
  }
  if (sequential) {
    AdviseSequentialRange(lo, static_cast<size_t>(hi - lo));
  } else {
    AdviseWillNeedRange(lo, static_cast<size_t>(hi - lo));
  }
}

}  // namespace

// --- BlockedInt64Column. ---------------------------------------------------

BlockedInt64Column::BlockedInt64Column(int64_t rows, int64_t block_rows,
                                       std::vector<PackBlockRef> blocks,
                                       std::shared_ptr<const void> owner)
    : cache_id_(NextColumnId()),
      rows_(rows),
      block_rows_(block_rows),
      blocks_(std::move(blocks)),
      owner_(std::move(owner)) {
  NDV_CHECK_GE(block_rows_, 1);
  NDV_CHECK_GE(rows_, 0);
}

const int64_t* BlockedInt64Column::BlockValues(int64_t block) const {
  const PackBlockRef& blk = blocks_[static_cast<size_t>(block)];
  if (blk.codec == PackBlockCodec::kRaw) {
    // Raw payloads are 8-aligned in the file (validated at parse).
    return reinterpret_cast<const int64_t*>(blk.data);
  }
  Int64BlockCache& cache = ThreadInt64Cache();
  if (cache.column == cache_id_ && cache.block == block) {
    return cache.values.data();
  }
  cache.values.resize(static_cast<size_t>(blk.rows));
  DecodeInt64Block(blk.codec, blk.param, blk.rows, blk.data,
                   cache.values.data());
  cache.column = cache_id_;
  cache.block = block;
  return cache.values.data();
}

uint64_t BlockedInt64Column::HashAt(int64_t row) const {
  NDV_DCHECK(0 <= row && row < rows_);
  const int64_t block = row / block_rows_;
  const int64_t offset = row - block * block_rows_;
  return Hash64(static_cast<uint64_t>(BlockValues(block)[offset]));
}

void BlockedInt64Column::HashRange(std::span<const int64_t> rows,
                                   uint64_t* out) const {
  for (size_t i = 0; i < rows.size(); ++i) {
    NDV_DCHECK(0 <= rows[i] && rows[i] < rows_);
    const int64_t block = rows[i] / block_rows_;
    const int64_t offset = rows[i] - block * block_rows_;
    out[i] = Hash64(static_cast<uint64_t>(BlockValues(block)[offset]));
  }
}

void BlockedInt64Column::HashSlice(int64_t begin, int64_t end,
                                   uint64_t* out) const {
  NDV_DCHECK(0 <= begin && begin <= end && end <= rows_);
  int64_t row = begin;
  while (row < end) {
    const int64_t block = row / block_rows_;
    const int64_t block_begin = block * block_rows_;
    const int64_t offset = row - block_begin;
    const int64_t block_end =
        block_begin + blocks_[static_cast<size_t>(block)].rows;
    const int64_t take = std::min(end, block_end) - row;
    HashInt64Span(BlockValues(block) + offset, static_cast<size_t>(take),
                  out + (row - begin));
    row += take;
  }
}

std::string BlockedInt64Column::ValueToString(int64_t row) const {
  return std::to_string(ValueAt(row));
}

int64_t BlockedInt64Column::ValueAt(int64_t row) const {
  NDV_DCHECK(0 <= row && row < rows_);
  const int64_t block = row / block_rows_;
  return BlockValues(block)[row - block * block_rows_];
}

void BlockedInt64Column::CopyValues(int64_t begin, int64_t end,
                                    int64_t* out) const {
  NDV_DCHECK(0 <= begin && begin <= end && end <= rows_);
  int64_t row = begin;
  while (row < end) {
    const int64_t block = row / block_rows_;
    const int64_t block_begin = block * block_rows_;
    const int64_t offset = row - block_begin;
    const int64_t block_end =
        block_begin + blocks_[static_cast<size_t>(block)].rows;
    const int64_t take = std::min(end, block_end) - row;
    std::memcpy(out + (row - begin), BlockValues(block) + offset,
                static_cast<size_t>(take) * sizeof(int64_t));
    row += take;
  }
}

void BlockedInt64Column::PrepareFullScan() const {
  if (blocks_.empty()) return;
  AdviseBlocks(blocks_, 0, blocks_.size() - 1, /*sequential=*/true);
}

void BlockedInt64Column::PrefetchRows(int64_t begin, int64_t end) const {
  NDV_DCHECK(0 <= begin && begin <= end && end <= rows_);
  if (begin == end) return;
  const auto first = static_cast<size_t>(begin / block_rows_);
  const auto last = static_cast<size_t>((end - 1) / block_rows_);
  AdviseBlocks(blocks_, first, last, /*sequential=*/false);
}

// --- BlockedDoubleColumn. --------------------------------------------------

BlockedDoubleColumn::BlockedDoubleColumn(int64_t rows, int64_t block_rows,
                                         std::vector<PackBlockRef> blocks,
                                         std::shared_ptr<const void> owner)
    : rows_(rows),
      block_rows_(block_rows),
      blocks_(std::move(blocks)),
      owner_(std::move(owner)) {
  NDV_CHECK_GE(block_rows_, 1);
  NDV_CHECK_GE(rows_, 0);
#if NDV_DCHECK_ENABLED
  // The parser only admits raw double blocks, so every block aliases.
  for (const PackBlockRef& blk : blocks_) {
    NDV_DCHECK(blk.codec == PackBlockCodec::kRaw);
  }
#endif
}

const double* BlockedDoubleColumn::BlockValues(int64_t block) const {
  return reinterpret_cast<const double*>(
      blocks_[static_cast<size_t>(block)].data);
}

uint64_t BlockedDoubleColumn::HashAt(int64_t row) const {
  NDV_DCHECK(0 <= row && row < rows_);
  const int64_t block = row / block_rows_;
  return HashDoubleValue(BlockValues(block)[row - block * block_rows_]);
}

void BlockedDoubleColumn::HashRange(std::span<const int64_t> rows,
                                    uint64_t* out) const {
  for (size_t i = 0; i < rows.size(); ++i) {
    NDV_DCHECK(0 <= rows[i] && rows[i] < rows_);
    const int64_t block = rows[i] / block_rows_;
    out[i] = HashDoubleValue(BlockValues(block)[rows[i] - block * block_rows_]);
  }
}

void BlockedDoubleColumn::HashSlice(int64_t begin, int64_t end,
                                    uint64_t* out) const {
  NDV_DCHECK(0 <= begin && begin <= end && end <= rows_);
  int64_t row = begin;
  while (row < end) {
    const int64_t block = row / block_rows_;
    const int64_t block_begin = block * block_rows_;
    const int64_t offset = row - block_begin;
    const int64_t block_end =
        block_begin + blocks_[static_cast<size_t>(block)].rows;
    const int64_t take = std::min(end, block_end) - row;
    HashDoubleSpan(BlockValues(block) + offset, static_cast<size_t>(take),
                   out + (row - begin));
    row += take;
  }
}

std::string BlockedDoubleColumn::ValueToString(int64_t row) const {
  return std::to_string(ValueAt(row));
}

double BlockedDoubleColumn::ValueAt(int64_t row) const {
  NDV_DCHECK(0 <= row && row < rows_);
  const int64_t block = row / block_rows_;
  return BlockValues(block)[row - block * block_rows_];
}

void BlockedDoubleColumn::CopyValues(int64_t begin, int64_t end,
                                     double* out) const {
  NDV_DCHECK(0 <= begin && begin <= end && end <= rows_);
  int64_t row = begin;
  while (row < end) {
    const int64_t block = row / block_rows_;
    const int64_t block_begin = block * block_rows_;
    const int64_t offset = row - block_begin;
    const int64_t block_end =
        block_begin + blocks_[static_cast<size_t>(block)].rows;
    const int64_t take = std::min(end, block_end) - row;
    std::memcpy(out + (row - begin), BlockValues(block) + offset,
                static_cast<size_t>(take) * sizeof(double));
    row += take;
  }
}

void BlockedDoubleColumn::PrepareFullScan() const {
  if (blocks_.empty()) return;
  AdviseBlocks(blocks_, 0, blocks_.size() - 1, /*sequential=*/true);
}

void BlockedDoubleColumn::PrefetchRows(int64_t begin, int64_t end) const {
  NDV_DCHECK(0 <= begin && begin <= end && end <= rows_);
  if (begin == end) return;
  const auto first = static_cast<size_t>(begin / block_rows_);
  const auto last = static_cast<size_t>((end - 1) / block_rows_);
  AdviseBlocks(blocks_, first, last, /*sequential=*/false);
}

// --- BlockedStringColumn. --------------------------------------------------

BlockedStringColumn::BlockedStringColumn(int64_t rows, int64_t block_rows,
                                         std::vector<PackBlockRef> blocks,
                                         std::span<const uint64_t> dict_offsets,
                                         const char* blob,
                                         std::shared_ptr<const void> owner)
    : cache_id_(NextColumnId()),
      rows_(rows),
      block_rows_(block_rows),
      blocks_(std::move(blocks)),
      dict_offsets_(dict_offsets),
      blob_(blob),
      owner_(std::move(owner)) {
  NDV_CHECK_GE(block_rows_, 1);
  NDV_CHECK_GE(rows_, 0);
  NDV_CHECK_GE(dict_offsets_.size(), 1u);
  const size_t dict_count = dict_offsets_.size() - 1;
  hashes_.reserve(dict_count);
  for (size_t i = 0; i < dict_count; ++i) {
    NDV_CHECK_LE(dict_offsets_[i], dict_offsets_[i + 1]);
    hashes_.push_back(HashBytes(
        {blob_ + dict_offsets_[i], dict_offsets_[i + 1] - dict_offsets_[i]}));
  }
}

const int32_t* BlockedStringColumn::BlockCodes(int64_t block) const {
  const PackBlockRef& blk = blocks_[static_cast<size_t>(block)];
  if (blk.codec == PackBlockCodec::kRaw) {
    // Raw code payloads are 4-aligned in the file (validated at parse).
    return reinterpret_cast<const int32_t*>(blk.data);
  }
  CodeBlockCache& cache = ThreadCodeCache();
  if (cache.column == cache_id_ && cache.block == block) {
    return cache.codes.data();
  }
  cache.codes.resize(static_cast<size_t>(blk.rows));
  DecodeCodesBlock(blk.codec, blk.param, blk.rows, blk.data,
                   cache.codes.data());
  cache.column = cache_id_;
  cache.block = block;
  return cache.codes.data();
}

uint64_t BlockedStringColumn::HashAt(int64_t row) const {
  NDV_DCHECK(0 <= row && row < rows_);
  const int64_t block = row / block_rows_;
  const int32_t code = BlockCodes(block)[row - block * block_rows_];
  return hashes_[static_cast<size_t>(code)];
}

void BlockedStringColumn::HashRange(std::span<const int64_t> rows,
                                    uint64_t* out) const {
  for (size_t i = 0; i < rows.size(); ++i) {
    NDV_DCHECK(0 <= rows[i] && rows[i] < rows_);
    const int64_t block = rows[i] / block_rows_;
    const int32_t code = BlockCodes(block)[rows[i] - block * block_rows_];
    out[i] = hashes_[static_cast<size_t>(code)];
  }
}

void BlockedStringColumn::HashSlice(int64_t begin, int64_t end,
                                    uint64_t* out) const {
  NDV_DCHECK(0 <= begin && begin <= end && end <= rows_);
  int64_t row = begin;
  while (row < end) {
    const int64_t block = row / block_rows_;
    const int64_t block_begin = block * block_rows_;
    const int64_t offset = row - block_begin;
    const int64_t block_end =
        block_begin + blocks_[static_cast<size_t>(block)].rows;
    const int64_t take = std::min(end, block_end) - row;
    HashLookupCodes32(BlockCodes(block) + offset, hashes_.data(),
                      static_cast<size_t>(take), out + (row - begin));
    row += take;
  }
}

std::string BlockedStringColumn::ValueToString(int64_t row) const {
  return std::string(DictionaryEntry(CodeAt(row)));
}

int32_t BlockedStringColumn::CodeAt(int64_t row) const {
  NDV_DCHECK(0 <= row && row < rows_);
  const int64_t block = row / block_rows_;
  return BlockCodes(block)[row - block * block_rows_];
}

void BlockedStringColumn::CopyCodes(int64_t begin, int64_t end,
                                    int32_t* out) const {
  NDV_DCHECK(0 <= begin && begin <= end && end <= rows_);
  int64_t row = begin;
  while (row < end) {
    const int64_t block = row / block_rows_;
    const int64_t block_begin = block * block_rows_;
    const int64_t offset = row - block_begin;
    const int64_t block_end =
        block_begin + blocks_[static_cast<size_t>(block)].rows;
    const int64_t take = std::min(end, block_end) - row;
    std::memcpy(out + (row - begin), BlockCodes(block) + offset,
                static_cast<size_t>(take) * sizeof(int32_t));
    row += take;
  }
}

void BlockedStringColumn::PrepareFullScan() const {
  if (blocks_.empty()) return;
  AdviseBlocks(blocks_, 0, blocks_.size() - 1, /*sequential=*/true);
}

void BlockedStringColumn::PrefetchRows(int64_t begin, int64_t end) const {
  NDV_DCHECK(0 <= begin && begin <= end && end <= rows_);
  if (begin == end) return;
  const auto first = static_cast<size_t>(begin / block_rows_);
  const auto last = static_cast<size_t>((end - 1) / block_rows_);
  AdviseBlocks(blocks_, first, last, /*sequential=*/false);
}

}  // namespace ndv
