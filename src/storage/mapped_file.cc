#include "storage/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <utility>

namespace ndv {

namespace {

Status ErrnoStatus(const char* op, const std::string& path, int err) {
  if (err == ENOENT) {
    return NotFoundError("%s %s: %s", op, path.c_str(), std::strerror(err));
  }
  return InvalidArgumentError("%s %s: %s", op, path.c_str(),
                              std::strerror(err));
}

}  // namespace

StatusOr<std::shared_ptr<MappedFile>> MappedFile::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return ErrnoStatus("open", path, errno);

  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return ErrnoStatus("stat", path, err);
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return InvalidArgumentError("map %s: not a regular file", path.c_str());
  }

  const auto size = static_cast<size_t>(st.st_size);
  void* data = nullptr;
  if (size > 0) {
    data = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (data == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return ErrnoStatus("mmap", path, err);
    }
  }
  // The mapping survives the close; the fd is only needed to establish it.
  ::close(fd);
  return std::shared_ptr<MappedFile>(new MappedFile(path, data, size));
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

namespace {

// Aligns [data, data + length) down to a page boundary and issues the
// advice; best effort, errors ignored (the range may be heap memory, where
// the advice is simply meaningless).
void AdviseRange(const void* data, size_t length, int advice) {
  if (data == nullptr || length == 0) return;
  const auto page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  const auto addr = reinterpret_cast<uintptr_t>(data);
  const uintptr_t begin = (addr / page) * page;
  const size_t span = (addr - begin) + length;
  ::madvise(reinterpret_cast<void*>(begin), span, advice);
}

}  // namespace

void MappedFile::Prefetch(size_t offset, size_t length) const {
  if (data_ == nullptr || length == 0 || offset >= size_) return;
  if (length > size_ - offset) length = size_ - offset;
  AdviseRange(static_cast<const uint8_t*>(data_) + offset, length,
              MADV_WILLNEED);
}

void MappedFile::AdviseSequential(size_t offset, size_t length) const {
  if (data_ == nullptr || length == 0 || offset >= size_) return;
  if (length > size_ - offset) length = size_ - offset;
  AdviseRange(static_cast<const uint8_t*>(data_) + offset, length,
              MADV_SEQUENTIAL);
}

void AdviseSequentialRange(const void* data, size_t length) {
  AdviseRange(data, length, MADV_SEQUENTIAL);
}

void AdviseWillNeedRange(const void* data, size_t length) {
  AdviseRange(data, length, MADV_WILLNEED);
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return ErrnoStatus("open", path, errno);

  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return ErrnoStatus("stat", path, err);
  }

  std::string out;
  out.resize(static_cast<size_t>(st.st_size));
  size_t got = 0;
  while (got < out.size()) {
    const ssize_t n = ::read(fd, out.data() + got, out.size() - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return ErrnoStatus("read", path, err);
    }
    if (n == 0) break;  // File shrank mid-read; return what we got.
    got += static_cast<size_t>(n);
  }
  ::close(fd);
  out.resize(got);
  return out;
}

}  // namespace ndv
