#include "storage/pack_writer.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/file_io.h"
#include "storage/blocked_column.h"
#include "storage/mapped_column.h"

namespace ndv {

namespace {

constexpr uint32_t kTypeInt64 = 0;
constexpr uint32_t kTypeDouble = 1;
constexpr uint32_t kTypeString = 2;

// Rows per chunk when streaming an existing column through the writer.
constexpr int64_t kRepackChunkRows = 8192;

void AppendU32(std::string& out, uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendU64(std::string& out, uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

}  // namespace

// --- Sinks. ----------------------------------------------------------------

// Byte destination for the streamed file image. Append is the hot path;
// WriteAt exists solely to back-patch the reserved header region at
// Finalize.
class PackWriter::Sink {
 public:
  virtual ~Sink() = default;
  virtual Status Append(std::string_view bytes) = 0;
  virtual Status WriteAt(uint64_t offset, std::string_view bytes) = 0;
  // Makes the finished image visible at its destination (file mode: fsync
  // + rename into place).
  virtual Status Commit() = 0;
  // Abandons a never-committed image (file mode: unlink the temp file).
  virtual void Abandon() = 0;
};

class PackWriter::FileSink final : public Sink {
 public:
  static StatusOr<std::unique_ptr<FileSink>> Open(const std::string& path) {
    auto sink = std::unique_ptr<FileSink>(new FileSink(path));
    sink->fd_ = ::open(sink->tmp_path_.c_str(),
                       O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (sink->fd_ < 0) {
      return InternalError("open %s: %s", sink->tmp_path_.c_str(),
                           std::strerror(errno));
    }
    return sink;
  }

  ~FileSink() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view bytes) override {
    return WriteAllFd(fd_, bytes, "pack stream");
  }

  Status WriteAt(uint64_t offset, std::string_view bytes) override {
    size_t done = 0;
    while (done < bytes.size()) {
      const ssize_t n =
          ::pwrite(fd_, bytes.data() + done, bytes.size() - done,
                   static_cast<off_t>(offset + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return InternalError("pwrite %s at %llu: %s", tmp_path_.c_str(),
                             static_cast<unsigned long long>(offset + done),
                             std::strerror(errno));
      }
      done += static_cast<size_t>(n);
    }
    return Status::Ok();
  }

  Status Commit() override {
    NDV_RETURN_IF_ERROR(FsyncFd(fd_, tmp_path_.c_str()));
    if (::close(fd_) != 0) {
      fd_ = -1;
      return InternalError("close %s: %s", tmp_path_.c_str(),
                           std::strerror(errno));
    }
    fd_ = -1;
    NDV_RETURN_IF_ERROR(RenameFile(tmp_path_, path_));
    return FsyncDirOf(path_);
  }

  void Abandon() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    const Status ignored = RemoveFileIfExists(tmp_path_);
    static_cast<void>(ignored);
  }

 private:
  explicit FileSink(std::string path)
      : path_(std::move(path)), tmp_path_(path_ + ".tmp") {}

  std::string path_;
  std::string tmp_path_;
  int fd_ = -1;
};

class PackWriter::StringSink final : public Sink {
 public:
  explicit StringSink(std::string* out) : out_(out) { out_->clear(); }

  Status Append(std::string_view bytes) override {
    out_->append(bytes);
    return Status::Ok();
  }

  Status WriteAt(uint64_t offset, std::string_view bytes) override {
    NDV_CHECK_LE(offset + bytes.size(), out_->size());
    std::memcpy(out_->data() + offset, bytes.data(), bytes.size());
    return Status::Ok();
  }

  Status Commit() override { return Status::Ok(); }

  void Abandon() override { out_->clear(); }

 private:
  std::string* out_;
};

// --- PackWriter. -----------------------------------------------------------

PackWriter::PackWriter(std::unique_ptr<Sink> sink,
                       const PackWriteOptions& options)
    : sink_(std::move(sink)), options_(options) {
  NDV_CHECK_GE(options_.block_rows, 1);
  NDV_CHECK_LE(options_.block_rows, kMaxPackBlockRows);
  // Reserve the header region; it is back-patched at Finalize and is not
  // part of the trailer checksum stream.
  const std::string reserved(kPackV2HeaderBytes, '\0');
  failed_ = !sink_->Append(reserved).ok();
}

PackWriter::~PackWriter() {
  if (!finalized_) sink_->Abandon();
}

StatusOr<std::unique_ptr<PackWriter>> PackWriter::Create(
    const std::string& path, const PackWriteOptions& options) {
  auto sink = FileSink::Open(path);
  if (!sink.ok()) return sink.status();
  auto writer = std::unique_ptr<PackWriter>(
      new PackWriter(std::move(*sink), options));
  if (writer->failed_) {
    return InternalError("pack %s: failed to reserve header", path.c_str());
  }
  return writer;
}

std::unique_ptr<PackWriter> PackWriter::CreateInMemory(
    std::string* out, const PackWriteOptions& options) {
  auto writer = std::unique_ptr<PackWriter>(
      new PackWriter(std::make_unique<StringSink>(out), options));
  NDV_CHECK(!writer->failed_);  // String appends cannot fail.
  return writer;
}

Status PackWriter::Emit(std::string_view bytes) {
  trailer_sum_.Append(bytes);
  const Status status = sink_->Append(bytes);
  if (!status.ok()) {
    failed_ = true;
    return status;
  }
  offset_ += bytes.size();
  return Status::Ok();
}

Status PackWriter::PadTo8() {
  static constexpr char kZeros[8] = {};
  const uint64_t misalign = offset_ % 8;
  if (misalign == 0) return Status::Ok();
  return Emit({kZeros, static_cast<size_t>(8 - misalign)});
}

Status PackWriter::StartColumn(std::string_view name, ColumnType type) {
  NDV_CHECK(!column_open_ && !finalized_);
  if (failed_) return InternalError("pack writer already failed");
  NDV_CHECK_LE(name.size(),
               static_cast<size_t>(std::numeric_limits<uint32_t>::max()));
  ColumnEntry entry;
  entry.name = std::string(name);
  entry.type = type;
  columns_.push_back(std::move(entry));
  column_open_ = true;
  int64_buffer_.clear();
  double_buffer_.clear();
  code_buffer_.clear();
  dict_index_.clear();
  dict_entries_.clear();
  return Status::Ok();
}

Status PackWriter::FlushBlock() {
  ColumnEntry& column = columns_.back();
  size_t buffered = 0;
  encode_buffer_.clear();
  PackBlockEncoding encoding;
  switch (column.type) {
    case ColumnType::kInt64:
      buffered = int64_buffer_.size();
      if (buffered == 0) return Status::Ok();
      encoding = EncodeInt64Block(int64_buffer_, options_.codec,
                                  &encode_buffer_);
      break;
    case ColumnType::kDouble:
      buffered = double_buffer_.size();
      if (buffered == 0) return Status::Ok();
      encoding = EncodeDoubleBlock(double_buffer_, &encode_buffer_);
      break;
    case ColumnType::kString:
      buffered = code_buffer_.size();
      if (buffered == 0) return Status::Ok();
      encoding = EncodeCodesBlock(code_buffer_, options_.codec,
                                  &encode_buffer_);
      break;
  }
  NDV_RETURN_IF_ERROR(PadTo8());
  BlockEntry block;
  block.codec = encoding.codec;
  block.param = encoding.param;
  block.rows = static_cast<uint32_t>(buffered);
  block.offset = offset_;
  block.length = encode_buffer_.size();
  NDV_RETURN_IF_ERROR(Emit(encode_buffer_));
  column.blocks.push_back(block);
  column.rows += static_cast<int64_t>(buffered);
  int64_buffer_.clear();
  double_buffer_.clear();
  code_buffer_.clear();
  return Status::Ok();
}

Status PackWriter::AppendInt64s(std::span<const int64_t> values) {
  NDV_CHECK(column_open_);
  NDV_CHECK(columns_.back().type == ColumnType::kInt64);
  if (failed_) return InternalError("pack writer already failed");
  const auto block_rows = static_cast<size_t>(options_.block_rows);
  size_t i = 0;
  while (i < values.size()) {
    const size_t take =
        std::min(values.size() - i, block_rows - int64_buffer_.size());
    int64_buffer_.insert(int64_buffer_.end(), values.begin() + i,
                         values.begin() + i + take);
    i += take;
    if (int64_buffer_.size() == block_rows) NDV_RETURN_IF_ERROR(FlushBlock());
  }
  return Status::Ok();
}

Status PackWriter::AppendDoubles(std::span<const double> values) {
  NDV_CHECK(column_open_);
  NDV_CHECK(columns_.back().type == ColumnType::kDouble);
  if (failed_) return InternalError("pack writer already failed");
  const auto block_rows = static_cast<size_t>(options_.block_rows);
  size_t i = 0;
  while (i < values.size()) {
    const size_t take =
        std::min(values.size() - i, block_rows - double_buffer_.size());
    double_buffer_.insert(double_buffer_.end(), values.begin() + i,
                          values.begin() + i + take);
    i += take;
    if (double_buffer_.size() == block_rows) NDV_RETURN_IF_ERROR(FlushBlock());
  }
  return Status::Ok();
}

Status PackWriter::AppendString(std::string_view value) {
  NDV_CHECK(column_open_);
  NDV_CHECK(columns_.back().type == ColumnType::kString);
  if (failed_) return InternalError("pack writer already failed");
  auto it = dict_index_.find(value);
  int32_t code;
  if (it != dict_index_.end()) {
    code = it->second;
  } else {
    if (dict_entries_.size() >
        static_cast<size_t>(std::numeric_limits<int32_t>::max() - 1)) {
      return InvalidArgumentError(
          "string column '%s' exceeds int32 code space",
          columns_.back().name.c_str());
    }
    code = static_cast<int32_t>(dict_entries_.size());
    dict_entries_.emplace_back(value);
    dict_index_.emplace(dict_entries_.back(), code);
  }
  code_buffer_.push_back(code);
  if (code_buffer_.size() == static_cast<size_t>(options_.block_rows)) {
    NDV_RETURN_IF_ERROR(FlushBlock());
  }
  return Status::Ok();
}

Status PackWriter::FlushDictionary() {
  ColumnEntry& column = columns_.back();
  NDV_RETURN_IF_ERROR(PadTo8());
  column.dict_count = dict_entries_.size();
  column.dict_offsets_offset = offset_;
  std::string offsets;
  offsets.reserve((dict_entries_.size() + 1) * sizeof(uint64_t));
  uint64_t blob_length = 0;
  for (const std::string& entry : dict_entries_) {
    AppendU64(offsets, blob_length);
    blob_length += entry.size();
  }
  AppendU64(offsets, blob_length);
  NDV_RETURN_IF_ERROR(Emit(offsets));
  column.dict_blob_offset = offset_;
  column.dict_blob_length = blob_length;
  for (const std::string& entry : dict_entries_) {
    NDV_RETURN_IF_ERROR(Emit(entry));
  }
  return Status::Ok();
}

Status PackWriter::FinishColumn() {
  NDV_CHECK(column_open_);
  if (failed_) return InternalError("pack writer already failed");
  NDV_RETURN_IF_ERROR(FlushBlock());
  if (columns_.back().type == ColumnType::kString) {
    NDV_RETURN_IF_ERROR(FlushDictionary());
  }
  dict_index_.clear();
  dict_entries_.clear();
  column_open_ = false;
  const int64_t rows = columns_.back().rows;
  if (row_count_ < 0) {
    row_count_ = rows;
  } else if (rows != row_count_) {
    failed_ = true;
    return InvalidArgumentError(
        "column '%s' has %lld rows; previous columns have %lld",
        columns_.back().name.c_str(), static_cast<long long>(rows),
        static_cast<long long>(row_count_));
  }
  return Status::Ok();
}

Status PackWriter::Finalize() {
  NDV_CHECK(!column_open_ && !finalized_);
  if (failed_) return InternalError("pack writer already failed");

  NDV_RETURN_IF_ERROR(PadTo8());
  const uint64_t directory_offset = offset_;
  std::string directory;
  for (const ColumnEntry& column : columns_) {
    AppendU32(directory, static_cast<uint32_t>(column.name.size()));
    directory.append(column.name);
    switch (column.type) {
      case ColumnType::kInt64:
        AppendU32(directory, kTypeInt64);
        break;
      case ColumnType::kDouble:
        AppendU32(directory, kTypeDouble);
        break;
      case ColumnType::kString:
        AppendU32(directory, kTypeString);
        AppendU64(directory, column.dict_count);
        AppendU64(directory, column.dict_offsets_offset);
        AppendU64(directory, column.dict_blob_offset);
        AppendU64(directory, column.dict_blob_length);
        break;
    }
    AppendU32(directory, static_cast<uint32_t>(column.blocks.size()));
    for (const BlockEntry& block : column.blocks) {
      std::string entry;
      entry.push_back(static_cast<char>(block.codec));
      entry.push_back(static_cast<char>(block.param));
      entry.push_back('\0');  // reserved
      entry.push_back('\0');
      AppendU32(entry, block.rows);
      AppendU64(entry, block.offset);
      AppendU64(entry, block.length);
      directory.append(entry);
    }
  }
  NDV_RETURN_IF_ERROR(Emit(directory));

  // Trailer: checksum of everything streamed since the header region.
  std::string trailer;
  AppendU64(trailer, trailer_sum_.Finish());
  {
    const Status status = sink_->Append(trailer);
    if (!status.ok()) {
      failed_ = true;
      return status;
    }
    offset_ += trailer.size();
  }

  // Header, back-patched into the reserved region with its own checksum.
  std::string header;
  header.reserve(kPackV2HeaderBytes);
  header.append(kPackV2Magic);
  AppendU32(header, kPackV2Version);
  AppendU32(header, static_cast<uint32_t>(columns_.size()));
  AppendU64(header, row_count_ < 0 ? 0 : static_cast<uint64_t>(row_count_));
  AppendU64(header, static_cast<uint64_t>(options_.block_rows));
  AppendU64(header, directory_offset);
  AppendU64(header, directory.size());
  NDV_CHECK_EQ(header.size(), kPackV2HeaderBytes - 8);
  AppendU64(header,
            PackChecksumV2({reinterpret_cast<const uint8_t*>(header.data()),
                            header.size()}));
  {
    const Status status = sink_->WriteAt(0, header);
    if (!status.ok()) {
      failed_ = true;
      return status;
    }
  }

  const Status status = sink_->Commit();
  if (!status.ok()) {
    failed_ = true;
    return status;
  }
  finalized_ = true;
  return Status::Ok();
}

// --- Table streaming. ------------------------------------------------------

Status AppendTableColumn(PackWriter& writer, const Table& table, int64_t c) {
  const Column& column = table.column(c);
  const int64_t rows = column.size();
  switch (column.type()) {
    case ColumnType::kInt64: {
      if (const auto* heap = dynamic_cast<const Int64Column*>(&column)) {
        return writer.AppendInt64s(heap->values());
      }
      if (const auto* mapped =
              dynamic_cast<const MappedInt64Column*>(&column)) {
        return writer.AppendInt64s(mapped->values());
      }
      if (const auto* blocked =
              dynamic_cast<const BlockedInt64Column*>(&column)) {
        std::vector<int64_t> chunk(static_cast<size_t>(
            std::min<int64_t>(rows > 0 ? rows : 1, kRepackChunkRows)));
        for (int64_t begin = 0; begin < rows; begin += kRepackChunkRows) {
          const int64_t end = std::min(rows, begin + kRepackChunkRows);
          blocked->CopyValues(begin, end, chunk.data());
          NDV_RETURN_IF_ERROR(writer.AppendInt64s(
              {chunk.data(), static_cast<size_t>(end - begin)}));
        }
        return Status::Ok();
      }
      break;
    }
    case ColumnType::kDouble: {
      if (const auto* heap = dynamic_cast<const DoubleColumn*>(&column)) {
        return writer.AppendDoubles(heap->values());
      }
      if (const auto* mapped =
              dynamic_cast<const MappedDoubleColumn*>(&column)) {
        return writer.AppendDoubles(mapped->values());
      }
      if (const auto* blocked =
              dynamic_cast<const BlockedDoubleColumn*>(&column)) {
        std::vector<double> chunk(static_cast<size_t>(
            std::min<int64_t>(rows > 0 ? rows : 1, kRepackChunkRows)));
        for (int64_t begin = 0; begin < rows; begin += kRepackChunkRows) {
          const int64_t end = std::min(rows, begin + kRepackChunkRows);
          blocked->CopyValues(begin, end, chunk.data());
          NDV_RETURN_IF_ERROR(writer.AppendDoubles(
              {chunk.data(), static_cast<size_t>(end - begin)}));
        }
        return Status::Ok();
      }
      break;
    }
    case ColumnType::kString: {
      if (const auto* heap = dynamic_cast<const StringColumn*>(&column)) {
        const std::vector<std::string>& dict = heap->dictionary();
        for (const int32_t code : heap->codes()) {
          NDV_RETURN_IF_ERROR(
              writer.AppendString(dict[static_cast<size_t>(code)]));
        }
        return Status::Ok();
      }
      if (const auto* mapped =
              dynamic_cast<const MappedStringColumn*>(&column)) {
        for (const int32_t code : mapped->codes()) {
          NDV_RETURN_IF_ERROR(
              writer.AppendString(mapped->DictionaryEntry(code)));
        }
        return Status::Ok();
      }
      if (const auto* blocked =
              dynamic_cast<const BlockedStringColumn*>(&column)) {
        std::vector<int32_t> chunk(static_cast<size_t>(
            std::min<int64_t>(rows > 0 ? rows : 1, kRepackChunkRows)));
        for (int64_t begin = 0; begin < rows; begin += kRepackChunkRows) {
          const int64_t end = std::min(rows, begin + kRepackChunkRows);
          blocked->CopyCodes(begin, end, chunk.data());
          for (int64_t i = 0; i < end - begin; ++i) {
            NDV_RETURN_IF_ERROR(writer.AppendString(
                blocked->DictionaryEntry(chunk[static_cast<size_t>(i)])));
          }
        }
        return Status::Ok();
      }
      break;
    }
  }
  NDV_CHECK_MSG(false, "AppendTableColumn: unsupported column class (%s)",
                std::string(ColumnTypeName(column.type())).c_str());
  return Status::Ok();  // Unreachable.
}

std::string SerializePackV2(const Table& table,
                            const PackWriteOptions& options) {
  std::string out;
  auto writer = PackWriter::CreateInMemory(&out, options);
  for (int64_t c = 0; c < table.NumColumns(); ++c) {
    Status status = writer->StartColumn(table.column_name(c),
                                        table.column(c).type());
    NDV_CHECK_MSG(status.ok(), "%s", std::string(status.message()).c_str());
    status = AppendTableColumn(*writer, table, c);
    NDV_CHECK_MSG(status.ok(), "%s", std::string(status.message()).c_str());
    status = writer->FinishColumn();
    NDV_CHECK_MSG(status.ok(), "%s", std::string(status.message()).c_str());
  }
  const Status status = writer->Finalize();
  NDV_CHECK_MSG(status.ok(), "%s", std::string(status.message()).c_str());
  return out;
}

Status WritePackFileV2(const Table& table, const std::string& path,
                       const PackWriteOptions& options) {
  auto writer = PackWriter::Create(path, options);
  if (!writer.ok()) return writer.status();
  for (int64_t c = 0; c < table.NumColumns(); ++c) {
    NDV_RETURN_IF_ERROR((*writer)->StartColumn(table.column_name(c),
                                               table.column(c).type()));
    NDV_RETURN_IF_ERROR(AppendTableColumn(**writer, table, c));
    NDV_RETURN_IF_ERROR((*writer)->FinishColumn());
  }
  return (*writer)->Finalize();
}

}  // namespace ndv
