#include "storage/pack_reader.h"

#include <bit>
#include <cstring>
#include <limits>
#include <utility>

#include "common/check.h"
#include "storage/blocked_column.h"

namespace ndv {

static_assert(std::endian::native == std::endian::little,
              "ndvpack readers alias little-endian payloads in place");

namespace {

constexpr uint32_t kTypeInt64 = 0;
constexpr uint32_t kTypeDouble = 1;
constexpr uint32_t kTypeString = 2;

// Bounds-checked cursor over untrusted directory bytes (same shape as the
// v1 parser's).
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  bool ReadU8(uint8_t* out) { return ReadRaw(out, sizeof(*out)); }
  bool ReadU16(uint16_t* out) { return ReadRaw(out, sizeof(*out)); }
  bool ReadU32(uint32_t* out) { return ReadRaw(out, sizeof(*out)); }
  bool ReadU64(uint64_t* out) { return ReadRaw(out, sizeof(*out)); }

  bool ReadString(size_t length, std::string_view* out) {
    if (length > Remaining()) return false;
    *out = {reinterpret_cast<const char*>(bytes_.data() + pos_), length};
    pos_ += length;
    return true;
  }

  size_t Remaining() const { return bytes_.size() - pos_; }

 private:
  bool ReadRaw(void* out, size_t length) {
    if (length > Remaining()) return false;
    std::memcpy(out, bytes_.data() + pos_, length);
    pos_ += length;
    return true;
  }

  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
};

// Validates a payload region claim [offset, offset + length) inside
// [kPackV2HeaderBytes, payload_end) with `alignment`. Overflow-safe.
Status CheckRegion(uint64_t offset, uint64_t length, uint64_t alignment,
                   uint64_t payload_end, const char* what) {
  if (offset < kPackV2HeaderBytes || offset > payload_end ||
      length > payload_end - offset) {
    return DataLossError("%s [%llu, +%llu) outside payload [%llu, %llu)",
                         what, static_cast<unsigned long long>(offset),
                         static_cast<unsigned long long>(length),
                         static_cast<unsigned long long>(kPackV2HeaderBytes),
                         static_cast<unsigned long long>(payload_end));
  }
  if (offset % alignment != 0) {
    return DataLossError("%s offset %llu not %llu-byte aligned", what,
                         static_cast<unsigned long long>(offset),
                         static_cast<unsigned long long>(alignment));
  }
  return Status::Ok();
}

// Parses + validates the whole image into PackV2Info. Shared by Inspect
// (which returns it) and Open (which builds columns from it).
StatusOr<PackV2Info> ParsePackV2(std::span<const uint8_t> bytes) {
  NDV_CHECK(bytes.empty() ||
            reinterpret_cast<uintptr_t>(bytes.data()) % 8 == 0);

  const uint64_t min_bytes = kPackV2HeaderBytes + kPackV2TrailerBytes;
  if (bytes.size() < min_bytes) {
    return DataLossError("truncated pack: %zu bytes < minimum %llu",
                         bytes.size(),
                         static_cast<unsigned long long>(min_bytes));
  }
  if (!StartsWithPackV2Magic(
          {reinterpret_cast<const char*>(bytes.data()), bytes.size()})) {
    return InvalidArgumentError("not an ndvpack v2 file (bad magic)");
  }

  // Header checksum covers the 48 field bytes; a flipped bit anywhere in
  // the header (including in the stored checksum) is caught here, before
  // any field is trusted.
  uint64_t stored_header_sum;
  std::memcpy(&stored_header_sum, bytes.data() + kPackV2HeaderBytes - 8, 8);
  const uint64_t actual_header_sum =
      PackChecksumV2(bytes.subspan(0, kPackV2HeaderBytes - 8));
  if (stored_header_sum != actual_header_sum) {
    return DataLossError(
        "header checksum mismatch: stored %016llx, computed %016llx",
        static_cast<unsigned long long>(stored_header_sum),
        static_cast<unsigned long long>(actual_header_sum));
  }

  ByteReader header(bytes.subspan(kPackV2Magic.size()));
  uint32_t version, column_count;
  uint64_t row_count, block_rows_u64, directory_offset, directory_length;
  // The cursor-advancing reads live outside the macro: a contract
  // condition must be effect-free (ndv-check-macro-side-effects).
  const bool header_complete =
      header.ReadU32(&version) && header.ReadU32(&column_count) &&
      header.ReadU64(&row_count) && header.ReadU64(&block_rows_u64) &&
      header.ReadU64(&directory_offset) &&
      header.ReadU64(&directory_length);
  NDV_CHECK(header_complete);
  if (version != kPackV2Version) {
    return InvalidArgumentError("unsupported pack version %u (have %u)",
                                version, kPackV2Version);
  }
  if (block_rows_u64 < 1 ||
      block_rows_u64 > static_cast<uint64_t>(kMaxPackBlockRows)) {
    return DataLossError("block_rows %llu outside [1, %lld]",
                         static_cast<unsigned long long>(block_rows_u64),
                         static_cast<long long>(kMaxPackBlockRows));
  }
  if (row_count >
      static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
    return DataLossError("row_count %llu exceeds int64",
                         static_cast<unsigned long long>(row_count));
  }
  const auto block_rows = static_cast<int64_t>(block_rows_u64);

  // Trailer checksum covers every byte between header and trailer, so any
  // flip in payload or directory is caught before parsing the directory.
  const uint64_t payload_end = bytes.size() - kPackV2TrailerBytes;
  uint64_t stored_trailer_sum;
  std::memcpy(&stored_trailer_sum, bytes.data() + payload_end, 8);
  const uint64_t actual_trailer_sum = PackChecksumV2(bytes.subspan(
      kPackV2HeaderBytes, payload_end - kPackV2HeaderBytes));
  if (stored_trailer_sum != actual_trailer_sum) {
    return DataLossError(
        "trailer checksum mismatch: stored %016llx, computed %016llx",
        static_cast<unsigned long long>(stored_trailer_sum),
        static_cast<unsigned long long>(actual_trailer_sum));
  }

  if (directory_offset < kPackV2HeaderBytes ||
      directory_offset > payload_end ||
      directory_length > payload_end - directory_offset) {
    return DataLossError(
        "directory [%llu, +%llu) outside payload [%llu, %llu)",
        static_cast<unsigned long long>(directory_offset),
        static_cast<unsigned long long>(directory_length),
        static_cast<unsigned long long>(kPackV2HeaderBytes),
        static_cast<unsigned long long>(payload_end));
  }

  // Every column has the same block partition: ceil(row_count /
  // block_rows) blocks of block_rows rows, short last block.
  const uint64_t expected_blocks =
      row_count == 0 ? 0 : (row_count + block_rows_u64 - 1) / block_rows_u64;

  PackV2Info info;
  info.row_count = row_count;
  info.block_rows = block_rows;
  info.file_bytes = bytes.size();
  info.columns.reserve(std::min<uint64_t>(column_count, 1024));

  ByteReader dir(bytes.subspan(directory_offset, directory_length));
  for (uint32_t c = 0; c < column_count; ++c) {
    PackV2ColumnInfo column;
    uint32_t name_length, type;
    if (!dir.ReadU32(&name_length) ||
        !dir.ReadString(name_length, &column.name) || !dir.ReadU32(&type)) {
      return DataLossError("directory truncated in column %u of %u", c,
                           column_count);
    }
    bool is_string = false;
    switch (type) {
      case kTypeInt64:
        column.type = ColumnType::kInt64;
        break;
      case kTypeDouble:
        column.type = ColumnType::kDouble;
        break;
      case kTypeString:
        column.type = ColumnType::kString;
        is_string = true;
        break;
      default:
        return DataLossError("column %u of %u has unknown type %u", c,
                             column_count, type);
    }

    if (is_string) {
      if (!dir.ReadU64(&column.dict_count) ||
          !dir.ReadU64(&column.dict_offsets_offset) ||
          !dir.ReadU64(&column.dict_blob_offset) ||
          !dir.ReadU64(&column.dict_blob_length)) {
        return DataLossError("directory truncated in column %u of %u", c,
                             column_count);
      }
      if (column.dict_count >
          static_cast<uint64_t>(std::numeric_limits<int32_t>::max())) {
        return DataLossError(
            "dictionary of %llu entries exceeds int32 code space",
            static_cast<unsigned long long>(column.dict_count));
      }
      // (dict_count + 1) u64 offsets, 8-aligned; blob is unaligned bytes.
      if ((column.dict_count + 1) >
          (payload_end - kPackV2HeaderBytes) / sizeof(uint64_t)) {
        return DataLossError("dict offsets of '%.*s' overrun the payload",
                             static_cast<int>(column.name.size()),
                             column.name.data());
      }
      NDV_RETURN_IF_ERROR(CheckRegion(
          column.dict_offsets_offset,
          (column.dict_count + 1) * sizeof(uint64_t), 8, payload_end,
          "dict offsets"));
      NDV_RETURN_IF_ERROR(CheckRegion(column.dict_blob_offset,
                                      column.dict_blob_length, 1,
                                      payload_end, "dict blob"));
      const auto* offsets = reinterpret_cast<const uint64_t*>(
          bytes.data() + column.dict_offsets_offset);
      if (offsets[0] != 0 ||
          offsets[column.dict_count] != column.dict_blob_length) {
        return DataLossError("dict offsets of '%.*s' do not span the blob",
                             static_cast<int>(column.name.size()),
                             column.name.data());
      }
      for (uint64_t i = 0; i < column.dict_count; ++i) {
        if (offsets[i] > offsets[i + 1]) {
          return DataLossError(
              "dict offsets of '%.*s' decrease at entry %llu",
              static_cast<int>(column.name.size()), column.name.data(),
              static_cast<unsigned long long>(i));
        }
      }
      column.packed_bytes +=
          (column.dict_count + 1) * sizeof(uint64_t) + column.dict_blob_length;
      column.raw_bytes +=
          (column.dict_count + 1) * sizeof(uint64_t) + column.dict_blob_length;
    }

    uint32_t block_count;
    if (!dir.ReadU32(&block_count)) {
      return DataLossError("directory truncated in column %u of %u", c,
                           column_count);
    }
    if (block_count != expected_blocks) {
      return DataLossError(
          "column '%.*s' has %u blocks; %llu rows at %lld rows/block "
          "require %llu",
          static_cast<int>(column.name.size()), column.name.data(),
          block_count, static_cast<unsigned long long>(row_count),
          static_cast<long long>(block_rows),
          static_cast<unsigned long long>(expected_blocks));
    }
    column.blocks.reserve(block_count);
    uint64_t rows_seen = 0;
    for (uint32_t b = 0; b < block_count; ++b) {
      uint8_t codec_byte, param;
      uint16_t reserved;
      uint32_t rows_u32;
      uint64_t offset, length;
      if (!dir.ReadU8(&codec_byte) || !dir.ReadU8(&param) ||
          !dir.ReadU16(&reserved) || !dir.ReadU32(&rows_u32) ||
          !dir.ReadU64(&offset) || !dir.ReadU64(&length)) {
        return DataLossError("directory truncated in block %u of column "
                             "'%.*s'",
                             b, static_cast<int>(column.name.size()),
                             column.name.data());
      }
      if (codec_byte > static_cast<uint8_t>(PackBlockCodec::kDictCodes)) {
        return DataLossError("block %u of '%.*s' has unknown codec %u", b,
                             static_cast<int>(column.name.size()),
                             column.name.data(), codec_byte);
      }
      if (reserved != 0) {
        return DataLossError("block %u of '%.*s' has nonzero reserved field",
                             b, static_cast<int>(column.name.size()),
                             column.name.data());
      }
      // Every block except the last holds exactly block_rows rows.
      const uint64_t expected_rows =
          (b + 1 < block_count || row_count % block_rows_u64 == 0)
              ? block_rows_u64
              : row_count % block_rows_u64;
      if (rows_u32 != expected_rows) {
        return DataLossError(
            "block %u of '%.*s' claims %u rows; the partition requires %llu",
            b, static_cast<int>(column.name.size()), column.name.data(),
            rows_u32, static_cast<unsigned long long>(expected_rows));
      }
      const auto codec = static_cast<PackBlockCodec>(codec_byte);
      const auto rows = static_cast<int64_t>(rows_u32);
      // Raw value payloads alias int64/double arrays (8-aligned); raw code
      // payloads alias int32 arrays (4-aligned). Decoded codecs only need
      // byte access.
      const uint64_t alignment =
          codec == PackBlockCodec::kRaw ? (is_string ? 4 : 8) : 1;
      NDV_RETURN_IF_ERROR(
          CheckRegion(offset, length, alignment, payload_end, "block"));
      if (is_string) {
        NDV_RETURN_IF_ERROR(ValidateCodesBlock(
            codec, param, rows, bytes.subspan(offset, length),
            column.dict_count));
      } else {
        NDV_RETURN_IF_ERROR(ValidateValueBlock(
            codec, param, column.type == ColumnType::kDouble, rows, length));
      }
      column.blocks.push_back({codec, param, rows, offset, length});
      column.packed_bytes += length;
      column.raw_bytes +=
          static_cast<uint64_t>(rows) * (is_string ? 4 : 8);
      rows_seen += rows_u32;
    }
    NDV_CHECK_EQ(rows_seen, row_count);  // Implied by per-block checks.
    info.columns.push_back(std::move(column));
  }

  if (dir.Remaining() != 0) {
    return DataLossError("%zu trailing bytes after the last directory entry",
                         dir.Remaining());
  }
  return info;
}

}  // namespace

bool StartsWithPackV2Magic(std::string_view head) {
  return head.size() >= kPackV2Magic.size() &&
         head.substr(0, kPackV2Magic.size()) == kPackV2Magic;
}

StatusOr<PackV2Info> InspectPackV2(std::span<const uint8_t> bytes) {
  return ParsePackV2(bytes);
}

StatusOr<Table> OpenPackV2FromBytes(std::span<const uint8_t> bytes,
                                    std::shared_ptr<const void> owner) {
  auto info = ParsePackV2(bytes);
  if (!info.ok()) return info.status();

  Table table;
  const auto rows = static_cast<int64_t>(info->row_count);
  for (const PackV2ColumnInfo& column : info->columns) {
    std::vector<PackBlockRef> blocks;
    blocks.reserve(column.blocks.size());
    for (const PackV2BlockInfo& block : column.blocks) {
      blocks.push_back({block.codec, block.param, block.rows,
                        bytes.data() + block.offset, block.length});
    }
    std::unique_ptr<Column> built;
    switch (column.type) {
      case ColumnType::kInt64:
        built = std::make_unique<BlockedInt64Column>(
            rows, info->block_rows, std::move(blocks), owner);
        break;
      case ColumnType::kDouble:
        built = std::make_unique<BlockedDoubleColumn>(
            rows, info->block_rows, std::move(blocks), owner);
        break;
      case ColumnType::kString: {
        const std::span<const uint64_t> dict_offsets = {
            reinterpret_cast<const uint64_t*>(bytes.data() +
                                              column.dict_offsets_offset),
            static_cast<size_t>(column.dict_count) + 1};
        const auto* blob = reinterpret_cast<const char*>(
            bytes.data() + column.dict_blob_offset);
        built = std::make_unique<BlockedStringColumn>(
            rows, info->block_rows, std::move(blocks), dict_offsets, blob,
            owner);
        break;
      }
    }
    NDV_CHECK(built != nullptr);
    table.AddColumn(std::string(column.name), std::move(built));
  }
  return table;
}

}  // namespace ndv
