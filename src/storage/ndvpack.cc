#include "storage/ndvpack.h"

#include <bit>
#include <cstring>
#include <limits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/file_io.h"
#include "storage/blocked_column.h"
#include "storage/mapped_column.h"
#include "storage/pack_reader.h"
#include "storage/pack_writer.h"

namespace ndv {

// The format stores integers little-endian and the readers alias the
// payload in place; a big-endian port would need byte-swapping copies.
static_assert(std::endian::native == std::endian::little,
              "ndvpack readers alias little-endian payloads in place");

namespace {

constexpr uint64_t kHeaderBytes = 40;
constexpr uint64_t kTrailerBytes = 8;
constexpr uint32_t kTypeInt64 = 0;
constexpr uint32_t kTypeDouble = 1;
constexpr uint32_t kTypeString = 2;

void AppendU32(std::string& out, uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendU64(std::string& out, uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

// Pads `payload` (which starts at file offset kHeaderBytes) to the next
// 8-byte file boundary and returns the file offset of the next byte.
uint64_t AlignPayload8(std::string& payload) {
  while ((kHeaderBytes + payload.size()) % 8 != 0) payload.push_back('\0');
  return kHeaderBytes + payload.size();
}

// --------------------------------------------------------------------------
// Reader-side cursor over untrusted bytes: every read is bounds-checked and
// returns false instead of over-reading.

class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  bool ReadU32(uint32_t* out) { return ReadRaw(out, sizeof(*out)); }
  bool ReadU64(uint64_t* out) { return ReadRaw(out, sizeof(*out)); }

  bool ReadString(size_t length, std::string_view* out) {
    if (length > Remaining()) return false;
    *out = {reinterpret_cast<const char*>(bytes_.data() + pos_), length};
    pos_ += length;
    return true;
  }

  size_t Remaining() const { return bytes_.size() - pos_; }

 private:
  bool ReadRaw(void* out, size_t length) {
    if (length > Remaining()) return false;
    std::memcpy(out, bytes_.data() + pos_, length);
    pos_ += length;
    return true;
  }

  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
};

}  // namespace

uint64_t PackChecksum(std::span<const uint8_t> bytes) {
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ static_cast<uint64_t>(bytes.size());
  size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    uint64_t word;
    std::memcpy(&word, bytes.data() + i, sizeof(word));
    h = Hash64(h ^ word);
  }
  if (i < bytes.size()) {
    uint64_t word = 0;  // Zero-padded tail; the length seed disambiguates.
    std::memcpy(&word, bytes.data() + i, bytes.size() - i);
    h = Hash64(h ^ word);
  }
  return h;
}

bool StartsWithPackMagic(std::string_view head) {
  if (head.size() < kPackMagic.size()) return false;
  const std::string_view magic = head.substr(0, kPackMagic.size());
  return magic == kPackMagic || magic == kPackV2Magic;
}

// --------------------------------------------------------------------------
// Writer.

std::string SerializePack(const Table& table) {
  const auto row_count = static_cast<uint64_t>(table.NumRows());
  std::string payload;    // file bytes [kHeaderBytes, directory_offset)
  std::string directory;  // file bytes [directory_offset, checksum)

  for (int64_t c = 0; c < table.NumColumns(); ++c) {
    const Column& column = table.column(c);
    const std::string& name = table.column_name(c);
    NDV_CHECK_LE(name.size(),
                 static_cast<size_t>(std::numeric_limits<uint32_t>::max()));
    AppendU32(directory, static_cast<uint32_t>(name.size()));
    directory.append(name);

    // The writer accepts both heap and mapped columns, so repacking a
    // mapped table round-trips without materializing heap copies.
    if (const auto* i64 = dynamic_cast<const Int64Column*>(&column)) {
      AppendU32(directory, kTypeInt64);
      const uint64_t offset = AlignPayload8(payload);
      payload.append(reinterpret_cast<const char*>(i64->values().data()),
                     row_count * sizeof(int64_t));
      AppendU64(directory, offset);
    } else if (const auto* mi64 =
                   dynamic_cast<const MappedInt64Column*>(&column)) {
      AppendU32(directory, kTypeInt64);
      const uint64_t offset = AlignPayload8(payload);
      payload.append(reinterpret_cast<const char*>(mi64->values().data()),
                     row_count * sizeof(int64_t));
      AppendU64(directory, offset);
    } else if (const auto* dbl = dynamic_cast<const DoubleColumn*>(&column)) {
      AppendU32(directory, kTypeDouble);
      const uint64_t offset = AlignPayload8(payload);
      payload.append(reinterpret_cast<const char*>(dbl->values().data()),
                     row_count * sizeof(double));
      AppendU64(directory, offset);
    } else if (const auto* mdbl =
                   dynamic_cast<const MappedDoubleColumn*>(&column)) {
      AppendU32(directory, kTypeDouble);
      const uint64_t offset = AlignPayload8(payload);
      payload.append(reinterpret_cast<const char*>(mdbl->values().data()),
                     row_count * sizeof(double));
      AppendU64(directory, offset);
    } else if (const auto* str = dynamic_cast<const StringColumn*>(&column)) {
      AppendU32(directory, kTypeString);
      const uint64_t codes_offset = AlignPayload8(payload);
      payload.append(reinterpret_cast<const char*>(str->codes().data()),
                     row_count * sizeof(int32_t));
      const uint64_t offsets_offset = AlignPayload8(payload);
      uint64_t blob_length = 0;
      for (const std::string& entry : str->dictionary()) {
        AppendU64(payload, blob_length);
        blob_length += entry.size();
      }
      AppendU64(payload, blob_length);
      const uint64_t blob_offset = kHeaderBytes + payload.size();
      for (const std::string& entry : str->dictionary()) {
        payload.append(entry);
      }
      AppendU64(directory, codes_offset);
      AppendU64(directory, static_cast<uint64_t>(str->dictionary_size()));
      AppendU64(directory, offsets_offset);
      AppendU64(directory, blob_offset);
      AppendU64(directory, blob_length);
    } else if (const auto* mstr =
                   dynamic_cast<const MappedStringColumn*>(&column)) {
      AppendU32(directory, kTypeString);
      const uint64_t codes_offset = AlignPayload8(payload);
      payload.append(reinterpret_cast<const char*>(mstr->codes().data()),
                     row_count * sizeof(int32_t));
      const uint64_t offsets_offset = AlignPayload8(payload);
      uint64_t blob_length = 0;
      const int64_t dict_count = mstr->dictionary_size();
      for (int64_t i = 0; i < dict_count; ++i) {
        AppendU64(payload, blob_length);
        blob_length += mstr->DictionaryEntry(static_cast<int32_t>(i)).size();
      }
      AppendU64(payload, blob_length);
      const uint64_t blob_offset = kHeaderBytes + payload.size();
      for (int64_t i = 0; i < dict_count; ++i) {
        payload.append(mstr->DictionaryEntry(static_cast<int32_t>(i)));
      }
      AppendU64(directory, codes_offset);
      AppendU64(directory, static_cast<uint64_t>(dict_count));
      AppendU64(directory, offsets_offset);
      AppendU64(directory, blob_offset);
      AppendU64(directory, blob_length);
    } else if (const auto* bi64 =
                   dynamic_cast<const BlockedInt64Column*>(&column)) {
      // Blocked (v2) columns decode into a scratch buffer: downgrading a
      // compressed pack to v1 inherently materializes the raw values.
      AppendU32(directory, kTypeInt64);
      const uint64_t offset = AlignPayload8(payload);
      std::vector<int64_t> values(row_count);
      bi64->CopyValues(0, static_cast<int64_t>(row_count), values.data());
      payload.append(reinterpret_cast<const char*>(values.data()),
                     row_count * sizeof(int64_t));
      AppendU64(directory, offset);
    } else if (const auto* bdbl =
                   dynamic_cast<const BlockedDoubleColumn*>(&column)) {
      AppendU32(directory, kTypeDouble);
      const uint64_t offset = AlignPayload8(payload);
      std::vector<double> values(row_count);
      bdbl->CopyValues(0, static_cast<int64_t>(row_count), values.data());
      payload.append(reinterpret_cast<const char*>(values.data()),
                     row_count * sizeof(double));
      AppendU64(directory, offset);
    } else if (const auto* bstr =
                   dynamic_cast<const BlockedStringColumn*>(&column)) {
      AppendU32(directory, kTypeString);
      const uint64_t codes_offset = AlignPayload8(payload);
      std::vector<int32_t> codes(row_count);
      bstr->CopyCodes(0, static_cast<int64_t>(row_count), codes.data());
      payload.append(reinterpret_cast<const char*>(codes.data()),
                     row_count * sizeof(int32_t));
      const uint64_t offsets_offset = AlignPayload8(payload);
      uint64_t blob_length = 0;
      const int64_t dict_count = bstr->dictionary_size();
      for (int64_t i = 0; i < dict_count; ++i) {
        AppendU64(payload, blob_length);
        blob_length += bstr->DictionaryEntry(static_cast<int32_t>(i)).size();
      }
      AppendU64(payload, blob_length);
      const uint64_t blob_offset = kHeaderBytes + payload.size();
      for (int64_t i = 0; i < dict_count; ++i) {
        payload.append(bstr->DictionaryEntry(static_cast<int32_t>(i)));
      }
      AppendU64(directory, codes_offset);
      AppendU64(directory, static_cast<uint64_t>(dict_count));
      AppendU64(directory, offsets_offset);
      AppendU64(directory, blob_offset);
      AppendU64(directory, blob_length);
    } else {
      NDV_CHECK_MSG(false, "SerializePack: unsupported column class (%s)",
                    std::string(ColumnTypeName(column.type())).c_str());
    }
  }

  const uint64_t directory_offset = AlignPayload8(payload);

  std::string out;
  out.reserve(kHeaderBytes + payload.size() + directory.size() +
              kTrailerBytes);
  out.append(kPackMagic);
  AppendU32(out, kPackVersion);
  AppendU32(out, static_cast<uint32_t>(table.NumColumns()));
  AppendU64(out, row_count);
  AppendU64(out, directory_offset);
  AppendU64(out, directory.size());
  NDV_CHECK_EQ(out.size(), kHeaderBytes);
  out.append(payload);
  out.append(directory);
  AppendU64(out, PackChecksum({reinterpret_cast<const uint8_t*>(out.data()),
                               out.size()}));
  return out;
}

Status WritePackFile(const Table& table, const std::string& path) {
  // Default format: v2 with auto codec selection, streamed through the
  // bounded-memory writer (which carries its own temp + fsync + rename).
  return WritePackFileV2(table, path);
}

Status WritePackFileV1(const Table& table, const std::string& path) {
  // Write-temp + fsync + rename (common/file_io.h): a reader — or a crash
  // mid-write — never observes a half-written pack at `path`; it sees the
  // old file or the new one, both with intact trailers.
  return AtomicWriteFile(path, SerializePack(table));
}

// --------------------------------------------------------------------------
// Reader.

namespace {

// Validates one payload blob claim: `count` elements of `elem_bytes` each,
// starting at file offset `offset` with `alignment`, inside
// [kHeaderBytes, payload_end). All arithmetic is overflow-safe.
Status CheckBlob(uint64_t offset, uint64_t count, uint64_t elem_bytes,
                 uint64_t alignment, uint64_t payload_end, const char* what) {
  if (offset < kHeaderBytes || offset > payload_end) {
    return DataLossError("%s offset %llu outside payload [%llu, %llu)", what,
                         static_cast<unsigned long long>(offset),
                         static_cast<unsigned long long>(kHeaderBytes),
                         static_cast<unsigned long long>(payload_end));
  }
  if (offset % alignment != 0) {
    return DataLossError("%s offset %llu not %llu-byte aligned", what,
                         static_cast<unsigned long long>(offset),
                         static_cast<unsigned long long>(alignment));
  }
  if (elem_bytes != 0 && count > (payload_end - offset) / elem_bytes) {
    return DataLossError("%s overruns payload: %llu x %llu bytes at %llu",
                         what, static_cast<unsigned long long>(count),
                         static_cast<unsigned long long>(elem_bytes),
                         static_cast<unsigned long long>(offset));
  }
  return Status::Ok();
}

}  // namespace

StatusOr<PackView> ParsePack(std::span<const uint8_t> bytes) {
  // Alignment of the buffer itself is the caller's contract (mmap pages and
  // malloc'd blocks both satisfy it); a violation is a programming error,
  // not bad input.
  NDV_CHECK(bytes.empty() ||
            reinterpret_cast<uintptr_t>(bytes.data()) % 8 == 0);

  if (bytes.size() < kHeaderBytes + kTrailerBytes) {
    return DataLossError("truncated pack: %zu bytes < minimum %llu",
                         bytes.size(),
                         static_cast<unsigned long long>(kHeaderBytes +
                                                         kTrailerBytes));
  }
  if (!StartsWithPackMagic(
          {reinterpret_cast<const char*>(bytes.data()), bytes.size()})) {
    return InvalidArgumentError("not an ndvpack file (bad magic)");
  }

  uint64_t stored_checksum;
  std::memcpy(&stored_checksum, bytes.data() + bytes.size() - kTrailerBytes,
              sizeof(stored_checksum));
  const uint64_t actual_checksum =
      PackChecksum(bytes.subspan(0, bytes.size() - kTrailerBytes));
  if (stored_checksum != actual_checksum) {
    return DataLossError("checksum mismatch: stored %016llx, computed %016llx",
                         static_cast<unsigned long long>(stored_checksum),
                         static_cast<unsigned long long>(actual_checksum));
  }

  ByteReader header(bytes.subspan(kPackMagic.size()));
  uint32_t version, column_count;
  uint64_t row_count, directory_offset, directory_length;
  // The cursor-advancing reads live outside the macro: a contract
  // condition must be effect-free (ndv-check-macro-side-effects).
  const bool header_complete =
      header.ReadU32(&version) && header.ReadU32(&column_count) &&
      header.ReadU64(&row_count) && header.ReadU64(&directory_offset) &&
      header.ReadU64(&directory_length);
  NDV_CHECK(header_complete);
  if (version != kPackVersion) {
    return InvalidArgumentError("unsupported pack version %u (have %u)",
                                version, kPackVersion);
  }

  const uint64_t payload_end = bytes.size() - kTrailerBytes;
  if (directory_offset < kHeaderBytes || directory_offset > payload_end ||
      directory_length > payload_end - directory_offset) {
    return DataLossError(
        "directory [%llu, +%llu) outside payload [%llu, %llu)",
        static_cast<unsigned long long>(directory_offset),
        static_cast<unsigned long long>(directory_length),
        static_cast<unsigned long long>(kHeaderBytes),
        static_cast<unsigned long long>(payload_end));
  }

  PackView view;
  view.row_count = row_count;
  view.columns.reserve(std::min<uint64_t>(column_count, 1024));
  ByteReader dir(bytes.subspan(directory_offset, directory_length));
  const auto* base = bytes.data();

  for (uint32_t c = 0; c < column_count; ++c) {
    PackColumnView column;
    uint32_t name_length, type;
    if (!dir.ReadU32(&name_length) ||
        !dir.ReadString(name_length, &column.name) || !dir.ReadU32(&type)) {
      return DataLossError("directory truncated in column %u of %u", c,
                           column_count);
    }
    switch (type) {
      case kTypeInt64:
      case kTypeDouble: {
        uint64_t offset;
        if (!dir.ReadU64(&offset)) {
          return DataLossError("directory truncated in column %u of %u", c,
                               column_count);
        }
        NDV_RETURN_IF_ERROR(CheckBlob(offset, row_count, 8, 8, payload_end,
                                      "values"));
        if (type == kTypeInt64) {
          column.type = ColumnType::kInt64;
          column.int64_values = {
              reinterpret_cast<const int64_t*>(base + offset), row_count};
        } else {
          column.type = ColumnType::kDouble;
          column.double_values = {
              reinterpret_cast<const double*>(base + offset), row_count};
        }
        break;
      }
      case kTypeString: {
        column.type = ColumnType::kString;
        uint64_t codes_offset, dict_count, offsets_offset, blob_offset,
            blob_length;
        if (!dir.ReadU64(&codes_offset) || !dir.ReadU64(&dict_count) ||
            !dir.ReadU64(&offsets_offset) || !dir.ReadU64(&blob_offset) ||
            !dir.ReadU64(&blob_length)) {
          return DataLossError("directory truncated in column %u of %u", c,
                               column_count);
        }
        if (dict_count >
            static_cast<uint64_t>(std::numeric_limits<int32_t>::max())) {
          return DataLossError("dictionary of %llu entries exceeds int32 "
                               "code space",
                               static_cast<unsigned long long>(dict_count));
        }
        NDV_RETURN_IF_ERROR(
            CheckBlob(codes_offset, row_count, 4, 4, payload_end, "codes"));
        NDV_RETURN_IF_ERROR(CheckBlob(offsets_offset, dict_count + 1, 8, 8,
                                      payload_end, "dict offsets"));
        NDV_RETURN_IF_ERROR(
            CheckBlob(blob_offset, blob_length, 1, 1, payload_end,
                      "dict blob"));

        column.codes = {reinterpret_cast<const int32_t*>(base + codes_offset),
                        row_count};
        column.dict_offsets = {
            reinterpret_cast<const uint64_t*>(base + offsets_offset),
            dict_count + 1};
        column.dict_blob = reinterpret_cast<const char*>(base + blob_offset);
        column.dict_count = dict_count;

        if (column.dict_offsets.front() != 0 ||
            column.dict_offsets.back() != blob_length) {
          return DataLossError(
              "dict offsets of '%.*s' do not span the blob",
              static_cast<int>(column.name.size()), column.name.data());
        }
        for (uint64_t i = 0; i < dict_count; ++i) {
          if (column.dict_offsets[i] > column.dict_offsets[i + 1]) {
            return DataLossError(
                "dict offsets of '%.*s' decrease at entry %llu",
                static_cast<int>(column.name.size()), column.name.data(),
                static_cast<unsigned long long>(i));
          }
        }
        const auto dict_limit = static_cast<int32_t>(dict_count);
        for (uint64_t row = 0; row < row_count; ++row) {
          const int32_t code = column.codes[row];
          if (code < 0 || code >= dict_limit) {
            return DataLossError(
                "code %ld at row %llu of '%.*s' outside dictionary of %llu",
                static_cast<long>(code),
                static_cast<unsigned long long>(row),
                static_cast<int>(column.name.size()), column.name.data(),
                static_cast<unsigned long long>(dict_count));
          }
        }
        break;
      }
      default:
        return DataLossError("column %u of %u has unknown type %u", c,
                             column_count, type);
    }
    view.columns.push_back(column);
  }

  if (dir.Remaining() != 0) {
    return DataLossError("%zu trailing bytes after the last directory entry",
                         dir.Remaining());
  }
  return view;
}

Table TableFromPack(const PackView& view, std::shared_ptr<const void> owner) {
  Table table;
  for (const PackColumnView& column : view.columns) {
    std::unique_ptr<Column> built;
    switch (column.type) {
      case ColumnType::kInt64:
        built = std::make_unique<MappedInt64Column>(column.int64_values,
                                                    owner);
        break;
      case ColumnType::kDouble:
        built = std::make_unique<MappedDoubleColumn>(column.double_values,
                                                     owner);
        break;
      case ColumnType::kString:
        built = std::make_unique<MappedStringColumn>(
            column.codes, column.dict_offsets, column.dict_blob, owner);
        break;
    }
    NDV_CHECK(built != nullptr);
    table.AddColumn(std::string(column.name), std::move(built));
  }
  return table;
}

StatusOr<Table> OpenPackFile(const std::string& path) {
  auto file = MappedFile::Open(path);
  if (!file.ok()) return file.status();
  // Both parsers checksum the whole image front to back before any column
  // materializes — announce the one-pass read so the kernel streams it.
  (*file)->AdviseSequential(0, (*file)->size());
  const std::span<const uint8_t> bytes = (*file)->bytes();
  if (StartsWithPackV2Magic(
          {reinterpret_cast<const char*>(bytes.data()), bytes.size()})) {
    auto table = OpenPackV2FromBytes(bytes, *std::move(file));
    if (!table.ok()) {
      return Status(table.status().code(),
                    path + ": " + table.status().message());
    }
    return table;
  }
  auto view = ParsePack(bytes);
  if (!view.ok()) {
    return Status(view.status().code(),
                  path + ": " + view.status().message());
  }
  return TableFromPack(*view, *std::move(file));
}

}  // namespace ndv
