#ifndef NDV_STORAGE_MAPPED_FILE_H_
#define NDV_STORAGE_MAPPED_FILE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "common/status.h"

namespace ndv {

// A read-only memory-mapped file (POSIX mmap). The mapping is private and
// read-only; the bytes live for exactly as long as the MappedFile does.
// Consumers that hand out views into the mapping (the mmap-backed columns
// in storage/mapped_column.h) co-own it through a shared_ptr, so a view
// can never outlive its backing pages.
//
// An empty file maps to an empty span with no underlying mmap call.
class MappedFile {
 public:
  // Maps `path` read-only. Fails with NotFound / InvalidArgument /
  // Internal (with errno text) rather than aborting: file problems are
  // recoverable input errors under the library's error contract.
  static StatusOr<std::shared_ptr<MappedFile>> Open(const std::string& path);

  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  std::span<const uint8_t> bytes() const {
    return {static_cast<const uint8_t*>(data_), size_};
  }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

  // Hints the kernel that [offset, offset + length) will be read soon
  // (madvise WILLNEED). Best-effort: errors are ignored, the hint never
  // affects correctness. No-op for empty mappings or out-of-range spans.
  void Prefetch(size_t offset, size_t length) const;

  // Hints that [offset, offset + length) is about to be read once, front
  // to back (madvise SEQUENTIAL: aggressive readahead, early reclaim).
  // Same best-effort contract as Prefetch.
  void AdviseSequential(size_t offset, size_t length) const;

 private:
  MappedFile(std::string path, void* data, size_t size)
      : path_(std::move(path)), data_(data), size_(size) {}

  std::string path_;
  void* data_ = nullptr;  // nullptr iff size_ == 0
  size_t size_ = 0;
};

// Free-standing best-effort madvise hints over an arbitrary readable range
// (page-aligned internally, errors ignored). Valid on any mapped — or even
// heap — memory, so column implementations can advise through the raw
// pointers they hold without a handle on the MappedFile.
void AdviseSequentialRange(const void* data, size_t length);
void AdviseWillNeedRange(const void* data, size_t length);

// Reads the whole file at `path` into one string in a single pass (stat for
// the size, then read straight into the destination buffer — no
// stringstream double copy). Errors surface as Status, never as an abort.
StatusOr<std::string> ReadFileToString(const std::string& path);

}  // namespace ndv

#endif  // NDV_STORAGE_MAPPED_FILE_H_
