#include "catalog/concurrent_catalog.h"

#include <utility>

#include "common/check.h"

namespace ndv {
namespace {

std::shared_ptr<const CatalogEpoch> MakeEpoch(StatsCatalog catalog,
                                              uint64_t epoch) {
  auto generation = std::make_shared<CatalogEpoch>();
  generation->epoch = epoch;
  generation->catalog = std::move(catalog);
  return generation;
}

}  // namespace

ConcurrentStatsCatalog::ConcurrentStatsCatalog()
    : current_(std::make_shared<CatalogEpoch>()) {}

ConcurrentStatsCatalog::ConcurrentStatsCatalog(StatsCatalog initial)
    : ConcurrentStatsCatalog(std::move(initial), 1) {}

ConcurrentStatsCatalog::ConcurrentStatsCatalog(StatsCatalog initial,
                                               uint64_t initial_epoch)
    : current_(MakeEpoch(std::move(initial), initial_epoch)) {}

std::shared_ptr<const CatalogEpoch> ConcurrentStatsCatalog::Snapshot() const {
  MutexLock lock(snapshot_mutex_);
  return current_;
}

std::optional<ColumnStats> ConcurrentStatsCatalog::Find(
    std::string_view column_name) const {
  return Snapshot()->catalog.Find(column_name);
}

uint64_t ConcurrentStatsCatalog::PublishLocked(StatsCatalog catalog) {
  // writer_mutex_ is held: no competing writer can interleave between the
  // epoch read and the swap, so epochs are strictly increasing.
  auto next = std::make_shared<CatalogEpoch>();
  next->catalog = std::move(catalog);
  MutexLock lock(snapshot_mutex_);
  next->epoch = current_->epoch + 1;
  current_ = std::move(next);
  return current_->epoch;
}

uint64_t ConcurrentStatsCatalog::Put(ColumnStats stats) {
  MutexLock writer(writer_mutex_);
  StatsCatalog next = Snapshot()->catalog;  // copy outside snapshot_mutex_
  next.Put(std::move(stats));
  return PublishLocked(std::move(next));
}

uint64_t ConcurrentStatsCatalog::Publish(StatsCatalog catalog) {
  MutexLock writer(writer_mutex_);
  return PublishLocked(std::move(catalog));
}

uint64_t ConcurrentStatsCatalog::PublishAt(StatsCatalog catalog,
                                           uint64_t epoch) {
  MutexLock writer(writer_mutex_);
  auto next = std::make_shared<CatalogEpoch>();
  next->epoch = epoch;
  next->catalog = std::move(catalog);
  MutexLock lock(snapshot_mutex_);
  NDV_CHECK_GT(epoch, current_->epoch);
  current_ = std::move(next);
  return epoch;
}

uint64_t ConcurrentStatsCatalog::Update(
    const std::function<void(StatsCatalog&)>& mutate) {
  MutexLock writer(writer_mutex_);
  StatsCatalog next = Snapshot()->catalog;
  mutate(next);
  return PublishLocked(std::move(next));
}

}  // namespace ndv
