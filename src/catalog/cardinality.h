#ifndef NDV_CATALOG_CARDINALITY_H_
#define NDV_CATALOG_CARDINALITY_H_

#include <span>

#include "catalog/stats_catalog.h"

namespace ndv {

// Textbook cardinality formulas driven by distinct-value statistics — the
// consumers that make NDV accuracy matter (the paper's motivation: "the
// accuracy of distinct values estimation greatly impacts the query
// optimizer's ability to generate good plans").

// Equality predicate `col = const`: table_rows / D_hat rows.
double EstimateEqualityCardinality(const ColumnStats& stats);

// Equi-join R.a = S.b under containment-of-values:
//   |R| * |S| / max(D_a, D_b).
// Requires both estimates > 0.
double EstimateJoinCardinality(const ColumnStats& left,
                               const ColumnStats& right);

// GROUP BY over several columns, assuming attribute independence and
// capping at the row count:  min(prod_i D_i, table_rows).
double EstimateGroupByCardinality(std::span<const ColumnStats> columns);

// Distinct values surviving an equality/range filter with selectivity s:
// the standard "balls and bins" reduction  D * (1 - (1 - s)^{n/D}).
// Requires 0 <= selectivity <= 1 and a positive estimate.
double EstimateDistinctAfterFilter(const ColumnStats& stats,
                                   double selectivity);

}  // namespace ndv

#endif  // NDV_CATALOG_CARDINALITY_H_
