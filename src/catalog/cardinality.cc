#include "catalog/cardinality.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace ndv {

double EstimateEqualityCardinality(const ColumnStats& stats) {
  NDV_CHECK(stats.estimate > 0.0);
  return static_cast<double>(stats.table_rows) / stats.estimate;
}

double EstimateJoinCardinality(const ColumnStats& left,
                               const ColumnStats& right) {
  NDV_CHECK(left.estimate > 0.0);
  NDV_CHECK(right.estimate > 0.0);
  const double rows = static_cast<double>(left.table_rows) *
                      static_cast<double>(right.table_rows);
  return rows / std::max(left.estimate, right.estimate);
}

double EstimateGroupByCardinality(std::span<const ColumnStats> columns) {
  NDV_CHECK(!columns.empty());
  double groups = 1.0;
  double rows = 0.0;
  for (const ColumnStats& stats : columns) {
    NDV_CHECK(stats.estimate > 0.0);
    groups *= stats.estimate;
    rows = std::max(rows, static_cast<double>(stats.table_rows));
    if (groups > rows && rows > 0.0) groups = rows;  // Early cap.
  }
  return std::min(groups, rows);
}

double EstimateDistinctAfterFilter(const ColumnStats& stats,
                                   double selectivity) {
  NDV_CHECK(selectivity >= 0.0 && selectivity <= 1.0);
  NDV_CHECK(stats.estimate > 0.0);
  const double rows_per_class =
      static_cast<double>(stats.table_rows) / stats.estimate;
  return stats.estimate * (1.0 - PowOneMinus(selectivity, rows_per_class));
}

}  // namespace ndv
