#ifndef NDV_CATALOG_CONCURRENT_CATALOG_H_
#define NDV_CATALOG_CONCURRENT_CATALOG_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>

#include "catalog/stats_catalog.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace ndv {

// One immutable published generation of the catalog. Once a CatalogEpoch is
// visible to readers it is never mutated again; writers build a fresh copy
// and swap the pointer. Readers therefore see either the old generation or
// the new one in its entirety — never a torn mix, and never a dangling
// pointer into a vector a writer is growing.
struct CatalogEpoch {
  uint64_t epoch = 0;  // 0 = the initial empty generation
  StatsCatalog catalog;
};

// A concurrent, versioned facade over StatsCatalog for the serving path:
// many reader threads issue lookups while ANALYZE writers publish fresh
// statistics.
//
// Publication model (DESIGN.md §13): the current generation lives behind a
// std::shared_ptr<const CatalogEpoch>. Readers take the pointer under a
// light mutex held for a pointer copy only — O(1), no allocation, no
// dependence on catalog size — and then resolve every lookup against that
// immutable snapshot with no further synchronization. Writers serialize
// among themselves on a separate mutex, build the successor generation
// OUTSIDE any lock readers touch (copying the catalog can be arbitrarily
// slow without stalling a single read), and publish it with one pointer
// swap. Superseded generations are freed by shared_ptr when the last
// in-flight reader drops them.
//
// This structurally eliminates the StatsCatalog::Find pointer-invalidation
// bug: there is no reference into mutable storage anywhere in the read
// path, so no Put can invalidate what a reader holds.
class ConcurrentStatsCatalog {
 public:
  // Starts at epoch 0 with an empty catalog.
  ConcurrentStatsCatalog();
  // Starts at epoch 1 with `initial` already published.
  explicit ConcurrentStatsCatalog(StatsCatalog initial);
  // Starts with `initial` published at exactly `epoch` — the durable
  // recovery path, where the restarted process must resume the persistent
  // epoch sequence rather than restart from 1 (an epoch the WAL has
  // already journaled must never be reissued for different contents).
  ConcurrentStatsCatalog(StatsCatalog initial, uint64_t epoch);

  ConcurrentStatsCatalog(const ConcurrentStatsCatalog&) = delete;
  ConcurrentStatsCatalog& operator=(const ConcurrentStatsCatalog&) = delete;

  // The current generation. Never null; safe to hold indefinitely (it pins
  // only its own generation, not the writer).
  std::shared_ptr<const CatalogEpoch> Snapshot() const
      NDV_EXCLUDES(snapshot_mutex_);

  // Epoch of the current generation (monotonically increasing).
  uint64_t epoch() const NDV_EXCLUDES(snapshot_mutex_) {
    return Snapshot()->epoch;
  }

  // Convenience single lookup against the current generation, by value.
  std::optional<ColumnStats> Find(std::string_view column_name) const
      NDV_EXCLUDES(snapshot_mutex_);

  // Writers. Each returns the epoch of the generation it published.
  // Put: copy-on-write upsert of one column (StatsCatalog::Put semantics:
  // last write wins, no duplicates).
  uint64_t Put(ColumnStats stats)
      NDV_EXCLUDES(writer_mutex_, snapshot_mutex_);
  // Publish: wholesale replacement — the post-ANALYZE path.
  uint64_t Publish(StatsCatalog catalog)
      NDV_EXCLUDES(writer_mutex_, snapshot_mutex_);
  // Publish at an explicit epoch (must exceed the current one): the
  // durable-serving path, where the WAL assigns epochs and the in-memory
  // generation number must match what the journal acknowledged.
  uint64_t PublishAt(StatsCatalog catalog, uint64_t epoch)
      NDV_EXCLUDES(writer_mutex_, snapshot_mutex_);
  // Update: general read-copy-update; `mutate` runs on a private copy of
  // the current catalog while readers continue against the old generation.
  uint64_t Update(const std::function<void(StatsCatalog&)>& mutate)
      NDV_EXCLUDES(writer_mutex_, snapshot_mutex_);

 private:
  uint64_t PublishLocked(StatsCatalog catalog)
      NDV_REQUIRES(writer_mutex_) NDV_EXCLUDES(snapshot_mutex_);

  // Serializes writers across the whole copy-mutate-swap cycle. Declared
  // before snapshot_mutex_ in lock order: a writer takes writer_mutex_
  // for the whole cycle and snapshot_mutex_ only for the final swap.
  Mutex writer_mutex_ NDV_ACQUIRED_BEFORE(snapshot_mutex_);
  // Guards only the current_ pointer itself; held for a pointer copy (read
  // side) or a pointer swap (write side) — never across catalog work.
  mutable Mutex snapshot_mutex_;
  std::shared_ptr<const CatalogEpoch> current_
      NDV_GUARDED_BY(snapshot_mutex_);
};

}  // namespace ndv

#endif  // NDV_CATALOG_CONCURRENT_CATALOG_H_
