#include "catalog/incremental_stats.h"

#include <cmath>

#include "common/check.h"
#include "core/gee.h"

namespace ndv {

IncrementalColumnTracker::IncrementalColumnTracker(int64_t reservoir_capacity,
                                                   uint64_t seed)
    : reservoir_(reservoir_capacity, Rng(seed)) {}

void IncrementalColumnTracker::Insert(uint64_t value_hash) {
  reservoir_.Add(value_hash);
}

SampleSummary IncrementalColumnTracker::Summary() const {
  NDV_CHECK_MSG(rows() >= 1, "no rows inserted yet");
  SampleSummary summary;
  summary.table_rows = rows();
  summary.sample_rows = static_cast<int64_t>(reservoir_.sample().size());
  summary.freq = FrequencyProfile::FromValues(reservoir_.sample());
  summary.Validate();
  return summary;
}

ColumnStats IncrementalColumnTracker::Snapshot(std::string column_name,
                                               const Estimator& estimator) {
  const SampleSummary summary = Summary();
  const GeeBounds bounds = ComputeGeeBounds(summary);
  ColumnStats stats;
  stats.column_name = std::move(column_name);
  stats.table_rows = summary.n();
  stats.sample_rows = summary.r();
  stats.sample_distinct = summary.d();
  stats.estimate = estimator.Estimate(summary);
  stats.lower = bounds.lower;
  stats.upper = bounds.upper;
  stats.method = std::string(estimator.name());
  MarkFresh();
  return stats;
}

bool IncrementalColumnTracker::IsStale(double changed_fraction) const {
  // A bad knob (NaN, zero, negative) is clamped to 0 — "any insert since
  // the baseline is stale" — instead of aborting: a long-running server
  // must not crash on a client-supplied threshold.
  if (!(changed_fraction > 0.0)) changed_fraction = 0.0;
  if (rows_at_snapshot_ < 0) return true;
  if (rows_at_snapshot_ == 0) return rows() > 0;
  const double changed =
      static_cast<double>(rows() - rows_at_snapshot_) /
      static_cast<double>(rows_at_snapshot_);
  return changed > changed_fraction;
}

StatusOr<bool> IncrementalColumnTracker::IsStaleOrStatus(
    double changed_fraction) const {
  if (!std::isfinite(changed_fraction) || changed_fraction <= 0.0) {
    return InvalidArgumentError(
        "changed_fraction must be a finite positive number, got %g",
        changed_fraction);
  }
  return IsStale(changed_fraction);
}

}  // namespace ndv
