#include "catalog/incremental_stats.h"

#include "common/check.h"
#include "core/gee.h"

namespace ndv {

IncrementalColumnTracker::IncrementalColumnTracker(int64_t reservoir_capacity,
                                                   uint64_t seed)
    : reservoir_(reservoir_capacity, Rng(seed)) {}

void IncrementalColumnTracker::Insert(uint64_t value_hash) {
  reservoir_.Add(value_hash);
}

SampleSummary IncrementalColumnTracker::Summary() const {
  NDV_CHECK_MSG(rows() >= 1, "no rows inserted yet");
  SampleSummary summary;
  summary.table_rows = rows();
  summary.sample_rows = static_cast<int64_t>(reservoir_.sample().size());
  summary.freq = FrequencyProfile::FromValues(reservoir_.sample());
  summary.Validate();
  return summary;
}

ColumnStats IncrementalColumnTracker::Snapshot(std::string column_name,
                                               const Estimator& estimator) {
  const SampleSummary summary = Summary();
  const GeeBounds bounds = ComputeGeeBounds(summary);
  ColumnStats stats;
  stats.column_name = std::move(column_name);
  stats.table_rows = summary.n();
  stats.sample_rows = summary.r();
  stats.sample_distinct = summary.d();
  stats.estimate = estimator.Estimate(summary);
  stats.lower = bounds.lower;
  stats.upper = bounds.upper;
  stats.method = std::string(estimator.name());
  rows_at_snapshot_ = rows();
  return stats;
}

bool IncrementalColumnTracker::IsStale(double changed_fraction) const {
  NDV_CHECK(changed_fraction > 0.0);
  if (rows_at_snapshot_ < 0) return true;
  if (rows_at_snapshot_ == 0) return rows() > 0;
  const double changed =
      static_cast<double>(rows() - rows_at_snapshot_) /
      static_cast<double>(rows_at_snapshot_);
  return changed > changed_fraction;
}

}  // namespace ndv
