#include "catalog/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/gee.h"
#include "profile/frequency_profile.h"
#include "sample/samplers.h"

namespace ndv {
namespace {

// GEE estimate for one bucket: the bucket's sampled values form a uniform
// sample of the bucket's table rows (estimated as bucket_share * n).
double BucketDistinctEstimate(std::span<const int64_t> values,
                              double estimated_rows) {
  std::vector<uint64_t> hashes;
  hashes.reserve(values.size());
  for (int64_t v : values) hashes.push_back(Hash64(static_cast<uint64_t>(v)));
  SampleSummary summary;
  summary.freq = FrequencyProfile::FromValues(hashes);
  summary.sample_rows = summary.freq.TotalCount();
  summary.table_rows = std::max<int64_t>(
      summary.sample_rows, static_cast<int64_t>(std::llround(estimated_rows)));
  return ComputeGeeBounds(summary).estimate;
}

}  // namespace

EquiDepthHistogram EquiDepthHistogram::Build(
    std::span<const int64_t> sampled_values, int64_t table_rows,
    int64_t num_buckets) {
  NDV_CHECK(!sampled_values.empty());
  NDV_CHECK(num_buckets >= 1);
  NDV_CHECK(table_rows >= static_cast<int64_t>(sampled_values.size()));

  std::vector<int64_t> sorted(sampled_values.begin(), sampled_values.end());
  std::sort(sorted.begin(), sorted.end());
  const int64_t r = static_cast<int64_t>(sorted.size());
  const double rows_per_sample_row =
      static_cast<double>(table_rows) / static_cast<double>(r);

  EquiDepthHistogram histogram;
  histogram.table_rows_ = table_rows;
  histogram.sample_rows_ = r;

  const int64_t depth = std::max<int64_t>(1, r / num_buckets);
  int64_t begin = 0;
  while (begin < r) {
    int64_t end = std::min(begin + depth, r);
    // Never split one value across buckets: extend to the last copy.
    while (end < r && sorted[static_cast<size_t>(end)] ==
                          sorted[static_cast<size_t>(end - 1)]) {
      ++end;
    }
    HistogramBucket bucket;
    bucket.lower = sorted[static_cast<size_t>(begin)];
    bucket.upper = sorted[static_cast<size_t>(end - 1)];
    bucket.sample_rows = end - begin;
    bucket.estimated_rows =
        static_cast<double>(bucket.sample_rows) * rows_per_sample_row;
    bucket.estimated_distinct = BucketDistinctEstimate(
        std::span<const int64_t>(sorted.data() + begin,
                                 static_cast<size_t>(end - begin)),
        bucket.estimated_rows);
    histogram.buckets_.push_back(bucket);
    begin = end;
  }
  return histogram;
}

double EquiDepthHistogram::EstimateRangeRows(int64_t lo, int64_t hi) const {
  if (lo > hi) return 0.0;
  double rows = 0.0;
  for (const HistogramBucket& bucket : buckets_) {
    if (bucket.upper < lo || bucket.lower > hi) continue;
    const double width =
        static_cast<double>(bucket.upper - bucket.lower) + 1.0;
    const double overlap_lo = static_cast<double>(std::max(lo, bucket.lower));
    const double overlap_hi = static_cast<double>(std::min(hi, bucket.upper));
    const double overlap = overlap_hi - overlap_lo + 1.0;
    rows += bucket.estimated_rows * (overlap / width);
  }
  return rows;
}

double EquiDepthHistogram::EstimateEqualityRows(int64_t value) const {
  for (const HistogramBucket& bucket : buckets_) {
    if (value < bucket.lower || value > bucket.upper) continue;
    if (bucket.estimated_distinct <= 0.0) return 0.0;
    return bucket.estimated_rows / bucket.estimated_distinct;
  }
  return 0.0;
}

double EquiDepthHistogram::EstimatedDistinct() const {
  double total = 0.0;
  for (const HistogramBucket& bucket : buckets_) {
    total += bucket.estimated_distinct;
  }
  return total;
}

std::string EquiDepthHistogram::ToString() const {
  std::string out;
  for (const HistogramBucket& bucket : buckets_) {
    out += "[" + std::to_string(bucket.lower) + ", " +
           std::to_string(bucket.upper) + "] rows~" +
           std::to_string(static_cast<int64_t>(bucket.estimated_rows)) +
           " distinct~" +
           std::to_string(static_cast<int64_t>(bucket.estimated_distinct)) +
           "\n";
  }
  return out;
}

std::vector<int64_t> SampleInt64Values(const Int64Column& column,
                                       double fraction, Rng& rng) {
  NDV_CHECK(fraction > 0.0 && fraction <= 1.0);
  const int64_t n = column.size();
  NDV_CHECK(n >= 1);
  int64_t r = static_cast<int64_t>(
      std::llround(fraction * static_cast<double>(n)));
  if (r < 1) r = 1;
  if (r > n) r = n;
  const auto rows = SampleWithoutReplacementFloyd(n, r, rng);
  std::vector<int64_t> values;
  values.reserve(rows.size());
  for (int64_t row : rows) {
    values.push_back(column.values()[static_cast<size_t>(row)]);
  }
  return values;
}

}  // namespace ndv
