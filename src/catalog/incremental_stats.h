#ifndef NDV_CATALOG_INCREMENTAL_STATS_H_
#define NDV_CATALOG_INCREMENTAL_STATS_H_

#include <cstdint>
#include <string>

#include "catalog/stats_catalog.h"
#include "common/status.h"
#include "estimators/estimator.h"
#include "profile/frequency_profile.h"
#include "sample/samplers.h"

namespace ndv {

// Incremental statistics maintenance: instead of re-scanning on every
// ANALYZE, a tracker rides the insert path, keeping a single-pass
// reservoir (Algorithm L) over the column's values. At any moment it can
// materialize a uniform without-replacement sample summary and fresh
// ColumnStats; a staleness rule says when consumers should re-pull. This
// is the "keep optimizer statistics current" workflow the paper's
// estimators slot into.
class IncrementalColumnTracker {
 public:
  // `reservoir_capacity` bounds memory and the eventual sample size.
  IncrementalColumnTracker(int64_t reservoir_capacity, uint64_t seed = 1);

  // Observes one inserted row's value hash.
  void Insert(uint64_t value_hash);

  int64_t rows() const { return reservoir_.items_seen(); }

  // The current uniform sample as estimator-ready sufficient statistics.
  // Requires at least one inserted row.
  SampleSummary Summary() const;

  // Stats snapshot for `column_name` using `estimator`; calls MarkFresh().
  ColumnStats Snapshot(std::string column_name, const Estimator& estimator);

  // Records the current row count as the freshness baseline without
  // materializing statistics — what Snapshot() does implicitly, and what a
  // server does after publishing a full re-ANALYZE of the backing table.
  // Callable at any row count, including zero.
  void MarkFresh() { rows_at_snapshot_ = rows(); }

  // True when the rows inserted since the last Snapshot/MarkFresh exceed
  // `changed_fraction` of the rows at that baseline (PostgreSQL-style
  // autovacuum trigger). A tracker that was never marked fresh is always
  // stale. A non-finite or non-positive `changed_fraction` — a knob a
  // remote client may hand a server — must not crash the process: it is
  // clamped to 0, the conservative reading under which ANY insert since
  // the baseline makes the statistics stale.
  bool IsStale(double changed_fraction = 0.2) const;

  // Typed-error variant for the serving path: rejects a non-finite or
  // non-positive `changed_fraction` with InvalidArgument instead of
  // clamping, so the server can answer the client with an error frame.
  StatusOr<bool> IsStaleOrStatus(double changed_fraction) const;

  int64_t rows_at_last_snapshot() const { return rows_at_snapshot_; }

 private:
  ReservoirSamplerL reservoir_;
  int64_t rows_at_snapshot_ = -1;  // -1 = never snapshot
};

}  // namespace ndv

#endif  // NDV_CATALOG_INCREMENTAL_STATS_H_
