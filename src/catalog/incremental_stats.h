#ifndef NDV_CATALOG_INCREMENTAL_STATS_H_
#define NDV_CATALOG_INCREMENTAL_STATS_H_

#include <cstdint>
#include <string>

#include "catalog/stats_catalog.h"
#include "estimators/estimator.h"
#include "profile/frequency_profile.h"
#include "sample/samplers.h"

namespace ndv {

// Incremental statistics maintenance: instead of re-scanning on every
// ANALYZE, a tracker rides the insert path, keeping a single-pass
// reservoir (Algorithm L) over the column's values. At any moment it can
// materialize a uniform without-replacement sample summary and fresh
// ColumnStats; a staleness rule says when consumers should re-pull. This
// is the "keep optimizer statistics current" workflow the paper's
// estimators slot into.
class IncrementalColumnTracker {
 public:
  // `reservoir_capacity` bounds memory and the eventual sample size.
  IncrementalColumnTracker(int64_t reservoir_capacity, uint64_t seed = 1);

  // Observes one inserted row's value hash.
  void Insert(uint64_t value_hash);

  int64_t rows() const { return reservoir_.items_seen(); }

  // The current uniform sample as estimator-ready sufficient statistics.
  // Requires at least one inserted row.
  SampleSummary Summary() const;

  // Stats snapshot for `column_name` using `estimator`; calls MarkFresh().
  ColumnStats Snapshot(std::string column_name, const Estimator& estimator);

  // True when the rows inserted since the last Snapshot exceed
  // `changed_fraction` of the rows at that snapshot (PostgreSQL-style
  // autovacuum trigger). A tracker that never snapshot is always stale.
  bool IsStale(double changed_fraction = 0.2) const;

  int64_t rows_at_last_snapshot() const { return rows_at_snapshot_; }

 private:
  ReservoirSamplerL reservoir_;
  int64_t rows_at_snapshot_ = -1;  // -1 = never snapshot
};

}  // namespace ndv

#endif  // NDV_CATALOG_INCREMENTAL_STATS_H_
