#include "catalog/durable_catalog.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "common/crash_point.h"
#include "common/file_io.h"

namespace ndv {
namespace {

constexpr std::string_view kWalMagic = "NDVWAL1\n";
constexpr std::string_view kSnapshotMagic = "NDVSNAP1";
// u32 payload length + u64 payload checksum.
constexpr size_t kRecordHeaderBytes = 12;
// A single record above this is rejected as corrupt before any allocation
// happens off its length field (the WAL analogue of kMaxFramePayload).
constexpr size_t kMaxWalRecord = size_t{1} << 26;  // 64 MiB

enum class RecordKind : uint8_t {
  kPut = 1,      // one ColumnStats upsert
  kPublish = 2,  // whole-catalog replacement
};

// ---- Binary encoding, the serve wire conventions applied to disk:
// fixed-width little-endian integers, u32-length-prefixed strings, doubles
// as IEEE-754 bit patterns. The host is already static_asserted
// little-endian by ndvpack.

void PutU8(std::string* out, uint8_t value) {
  out->push_back(static_cast<char>(value));
}

void PutU32(std::string* out, uint32_t value) {
  char bytes[4];
  std::memcpy(bytes, &value, sizeof(value));
  out->append(bytes, sizeof(bytes));
}

void PutU64(std::string* out, uint64_t value) {
  char bytes[8];
  std::memcpy(bytes, &value, sizeof(value));
  out->append(bytes, sizeof(bytes));
}

void PutF64(std::string* out, double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, std::string_view value) {
  PutU32(out, static_cast<uint32_t>(value.size()));
  out->append(value.data(), value.size());
}

// Bounds-checked cursor; every Take* fails with DataLoss on truncation so
// record decoding is total over arbitrary bytes.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  Status TakeU8(uint8_t* out) {
    if (data_.size() - pos_ < 1) return Truncated("u8");
    *out = static_cast<uint8_t>(data_[pos_]);
    pos_ += 1;
    return Status::Ok();
  }

  Status TakeU32(uint32_t* out) {
    if (data_.size() - pos_ < 4) return Truncated("u32");
    std::memcpy(out, data_.data() + pos_, 4);
    pos_ += 4;
    return Status::Ok();
  }

  Status TakeU64(uint64_t* out) {
    if (data_.size() - pos_ < 8) return Truncated("u64");
    std::memcpy(out, data_.data() + pos_, 8);
    pos_ += 8;
    return Status::Ok();
  }

  Status TakeI64(int64_t* out) {
    uint64_t bits = 0;
    NDV_RETURN_IF_ERROR(TakeU64(&bits));
    *out = static_cast<int64_t>(bits);
    return Status::Ok();
  }

  Status TakeF64(double* out) {
    uint64_t bits = 0;
    NDV_RETURN_IF_ERROR(TakeU64(&bits));
    std::memcpy(out, &bits, sizeof(bits));
    return Status::Ok();
  }

  Status TakeBool(bool* out) {
    uint8_t byte = 0;
    NDV_RETURN_IF_ERROR(TakeU8(&byte));
    if (byte > 1) {
      return DataLossError("bool byte must be 0 or 1, got %u",
                           static_cast<unsigned>(byte));
    }
    *out = byte == 1;
    return Status::Ok();
  }

  Status TakeString(std::string* out) {
    uint32_t length = 0;
    NDV_RETURN_IF_ERROR(TakeU32(&length));
    if (length > kMaxWalRecord || data_.size() - pos_ < length) {
      return Truncated("string");
    }
    out->assign(data_.data() + pos_, length);
    pos_ += length;
    return Status::Ok();
  }

  // A record body must be consumed exactly: trailing bytes mean the
  // length prefix and the body disagree — corruption, not slack.
  Status ExpectEnd() const {
    if (pos_ != data_.size()) {
      return DataLossError("%zu trailing bytes after record body",
                           data_.size() - pos_);
    }
    return Status::Ok();
  }

 private:
  Status Truncated(const char* what) const {
    return DataLossError("truncated record: %s at offset %zu of %zu bytes",
                         what, pos_, data_.size());
  }

  std::string_view data_;
  size_t pos_ = 0;
};

void PutColumnStats(std::string* out, const ColumnStats& stats) {
  PutString(out, stats.column_name);
  PutU64(out, static_cast<uint64_t>(stats.table_rows));
  PutU64(out, static_cast<uint64_t>(stats.sample_rows));
  PutU64(out, static_cast<uint64_t>(stats.sample_distinct));
  PutF64(out, stats.estimate);
  PutF64(out, stats.lower);
  PutF64(out, stats.upper);
  PutF64(out, stats.coverage);
  PutU8(out, stats.degraded ? 1 : 0);
  PutString(out, stats.method);
}

Status TakeColumnStats(Reader* reader, ColumnStats* stats) {
  NDV_RETURN_IF_ERROR(reader->TakeString(&stats->column_name));
  NDV_RETURN_IF_ERROR(reader->TakeI64(&stats->table_rows));
  NDV_RETURN_IF_ERROR(reader->TakeI64(&stats->sample_rows));
  NDV_RETURN_IF_ERROR(reader->TakeI64(&stats->sample_distinct));
  NDV_RETURN_IF_ERROR(reader->TakeF64(&stats->estimate));
  NDV_RETURN_IF_ERROR(reader->TakeF64(&stats->lower));
  NDV_RETURN_IF_ERROR(reader->TakeF64(&stats->upper));
  NDV_RETURN_IF_ERROR(reader->TakeF64(&stats->coverage));
  NDV_RETURN_IF_ERROR(reader->TakeBool(&stats->degraded));
  NDV_RETURN_IF_ERROR(reader->TakeString(&stats->method));
  return Status::Ok();
}

// Snapshot image: magic | u64 epoch | u32 length | catalog v2 text |
// u64 Checksum64 of everything before the trailer. The catalog travels in
// its existing v2 text serialization so snapshot bytes stay debuggable
// with `cat` and compatible with StatsCatalog's own format evolution.
std::string EncodeSnapshot(const StatsCatalog& catalog, uint64_t epoch) {
  std::string out(kSnapshotMagic);
  PutU64(&out, epoch);
  PutString(&out, catalog.Serialize());
  PutU64(&out, Checksum64(out));
  return out;
}

struct DecodedSnapshot {
  StatsCatalog catalog;
  uint64_t epoch = 0;
  int64_t entries = 0;
};

StatusOr<DecodedSnapshot> DecodeSnapshot(std::string_view bytes) {
  if (bytes.size() < kSnapshotMagic.size() + 8 + 4 + 8) {
    return DataLossError("snapshot too small: %zu bytes", bytes.size());
  }
  if (bytes.substr(0, kSnapshotMagic.size()) != kSnapshotMagic) {
    return DataLossError("bad snapshot magic");
  }
  uint64_t stored = 0;
  std::memcpy(&stored, bytes.data() + bytes.size() - 8, 8);
  const uint64_t actual = Checksum64(bytes.substr(0, bytes.size() - 8));
  if (stored != actual) {
    return DataLossError("snapshot checksum mismatch: stored %016llx, "
                         "computed %016llx",
                         static_cast<unsigned long long>(stored),
                         static_cast<unsigned long long>(actual));
  }
  Reader reader(bytes.substr(kSnapshotMagic.size(), bytes.size() - 8 -
                                                        kSnapshotMagic.size()));
  DecodedSnapshot snapshot;
  NDV_RETURN_IF_ERROR(reader.TakeU64(&snapshot.epoch));
  std::string text;
  NDV_RETURN_IF_ERROR(reader.TakeString(&text));
  NDV_RETURN_IF_ERROR(reader.ExpectEnd());
  auto catalog = StatsCatalog::DeserializeOrStatus(text);
  if (!catalog.ok()) return catalog.status();
  snapshot.entries = static_cast<int64_t>(catalog->entries().size());
  snapshot.catalog = *std::move(catalog);
  return snapshot;
}

}  // namespace

DurableCatalog::DurableCatalog(DurableCatalogOptions options)
    : options_(std::move(options)) {}

DurableCatalog::~DurableCatalog() {
  // No thread may still be appending when the destructor runs, but taking
  // the lock keeps the wal_fd_ access inside its declared capability.
  MutexLock lock(mutex_);
  if (wal_fd_ >= 0) ::close(wal_fd_);
}

std::string DurableCatalog::PathTo(std::string_view file) const {
  std::string path = options_.dir;
  if (!path.empty() && path.back() != '/') path += '/';
  path += file;
  return path;
}

StatusOr<std::unique_ptr<DurableCatalog>> DurableCatalog::Open(
    DurableCatalogOptions options) {
  NDV_CHECK_MSG(!options.dir.empty(),
                "DurableCatalogOptions.dir must be set");
  std::unique_ptr<DurableCatalog> catalog(
      new DurableCatalog(std::move(options)));
  const auto start = std::chrono::steady_clock::now();
  NDV_RETURN_IF_ERROR(EnsureDirectory(catalog->options_.dir));
  {
    // Recovery runs single-threaded (nothing else holds the new object),
    // but Recover/OpenWalForAppend carry NDV_REQUIRES(mutex_), so honor
    // the contract rather than punching an analysis hole through it.
    MutexLock lock(catalog->mutex_);
    NDV_RETURN_IF_ERROR(catalog->Recover());
    NDV_RETURN_IF_ERROR(catalog->OpenWalForAppend());
    catalog->recovery_.epoch = catalog->epoch_;
  }
  catalog->recovery_.boot_millis =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  return catalog;
}

Status DurableCatalog::Recover() {
  // 1. Newest snapshot, falling back to the kept previous one. A missing
  //    primary on a fresh directory is not a fallback; an unreadable or
  //    corrupt primary with a usable previous is.
  const std::string primary = PathTo(kSnapshotFile);
  const std::string previous = PathTo(kSnapshotPrevFile);
  bool primary_present = FileExists(primary);
  for (const std::string* path : {&primary, &previous}) {
    auto bytes = ReadFileOrStatus(*path);
    if (!bytes.ok()) continue;
    auto snapshot = DecodeSnapshot(*bytes);
    if (!snapshot.ok()) continue;
    state_ = std::move(snapshot->catalog);
    epoch_ = snapshot->epoch;
    recovery_.snapshot_entries = snapshot->entries;
    recovery_.used_fallback_snapshot = path == &previous && primary_present;
    break;
  }

  // 2. Replay the rotated log first (epoch filtering makes it a no-op
  //    unless the snapshot fallback fired), then the live log, repairing
  //    its tail so the next append lands after the last valid record.
  NDV_RETURN_IF_ERROR(ReplayWal(PathTo(kWalPrevFile), /*repair=*/false));
  NDV_RETURN_IF_ERROR(ReplayWal(PathTo(kWalFile), /*repair=*/true));
  return Status::Ok();
}

Status DurableCatalog::ReplayWal(const std::string& path, bool repair) {
  auto bytes_or = ReadFileOrStatus(path);
  if (!bytes_or.ok()) {
    if (bytes_or.status().code() == StatusCode::kNotFound) {
      return Status::Ok();  // No log segment: nothing to replay.
    }
    return bytes_or.status();
  }
  const std::string& bytes = *bytes_or;

  // Exact-prefix scan: `valid_end` advances past each fully-validated,
  // fully-applied record; the first framing, checksum, decode, or epoch
  // failure stops the scan and everything after `valid_end` is discarded.
  size_t valid_end = 0;
  if (bytes.size() >= kWalMagic.size() &&
      std::string_view(bytes).substr(0, kWalMagic.size()) == kWalMagic) {
    valid_end = kWalMagic.size();
  }
  size_t pos = valid_end;
  uint64_t gap_epoch = 0;
  bool epoch_gap = false;
  while (valid_end > 0 && pos + kRecordHeaderBytes <= bytes.size()) {
    uint32_t length = 0;
    uint64_t stored = 0;
    std::memcpy(&length, bytes.data() + pos, 4);
    std::memcpy(&stored, bytes.data() + pos + 4, 8);
    if (length > kMaxWalRecord ||
        bytes.size() - pos - kRecordHeaderBytes < length) {
      break;  // Garbage length or torn tail.
    }
    const std::string_view payload(bytes.data() + pos + kRecordHeaderBytes,
                                   length);
    if (Checksum64(payload) != stored) break;  // Torn or flipped bytes.

    Reader reader(payload);
    uint8_t kind_byte = 0;
    uint64_t record_epoch = 0;
    StatsCatalog replacement;
    ColumnStats put_stats;
    bool decoded = reader.TakeU8(&kind_byte).ok() &&
                   reader.TakeU64(&record_epoch).ok();
    bool is_put = false;
    if (decoded && kind_byte == static_cast<uint8_t>(RecordKind::kPut)) {
      decoded = TakeColumnStats(&reader, &put_stats).ok() &&
                reader.ExpectEnd().ok();
      is_put = true;
    } else if (decoded &&
               kind_byte == static_cast<uint8_t>(RecordKind::kPublish)) {
      uint32_t count = 0;
      decoded = reader.TakeU32(&count).ok();
      for (uint32_t i = 0; decoded && i < count; ++i) {
        ColumnStats stats;
        decoded = TakeColumnStats(&reader, &stats).ok();
        if (decoded) replacement.Put(std::move(stats));
      }
      decoded = decoded && reader.ExpectEnd().ok();
    } else {
      decoded = false;  // Unknown record kind.
    }
    if (!decoded) break;

    if (record_epoch <= epoch_) {
      // Already covered by the snapshot (or the rotated log's overlap
      // with it); skipping keeps replay idempotent across interrupted
      // compactions.
      ++recovery_.skipped_records;
    } else if (record_epoch == epoch_ + 1) {
      if (is_put) {
        state_.Put(std::move(put_stats));
      } else {
        state_ = std::move(replacement);
      }
      epoch_ = record_epoch;
      ++recovery_.replayed_records;
    } else {
      // Epoch gap: the record is fully valid (framing, checksum, body all
      // pass) but its predecessor — an earlier record or the snapshot that
      // covered it — is missing. Trust nothing after it.
      epoch_gap = true;
      gap_epoch = record_epoch;
      break;
    }
    pos += kRecordHeaderBytes + length;
    valid_end = pos;
  }

  if (epoch_gap) {
    // Unlike a torn or corrupt tail, a gap with valid framing means a whole
    // snapshot/log generation is gone (e.g. both snapshots unreadable).
    // Truncating here would permanently destroy intact records an operator
    // could still recover (say, by restoring a snapshot from backup), so
    // refuse to open instead of silently repairing.
    return DataLossError(
        "WAL %s holds a valid record at epoch %llu but recovered state is "
        "at epoch %llu: a snapshot/log generation is missing; refusing to "
        "repair — restore snapshots from backup or clear the directory",
        path.c_str(), static_cast<unsigned long long>(gap_epoch),
        static_cast<unsigned long long>(epoch_));
  }

  const int64_t discarded = static_cast<int64_t>(bytes.size() - valid_end);
  recovery_.truncated_bytes += discarded;
  if (repair && discarded > 0) {
    NDV_RETURN_IF_ERROR(
        TruncateFile(path, static_cast<int64_t>(valid_end)));
    NDV_CRASH_POINT("wal.repair.truncated");
    NDV_RETURN_IF_ERROR(FsyncDirOf(path));
  }
  return Status::Ok();
}

Status DurableCatalog::OpenWalForAppend() {
  const std::string path = PathTo(kWalFile);
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return InternalError("open %s for append failed: %s", path.c_str(),
                         std::strerror(errno));
  }
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < static_cast<off_t>(kWalMagic.size())) {
    // Fresh log (or one whose header write was itself torn): restart it.
    if (::ftruncate(fd, 0) < 0) {
      const Status status = InternalError("ftruncate %s failed: %s",
                                          path.c_str(), std::strerror(errno));
      ::close(fd);
      return status;
    }
    const Status written = WriteAllFd(fd, kWalMagic, "wal header");
    if (!written.ok()) {
      ::close(fd);
      return written;
    }
    NDV_CRASH_POINT("wal.create.header_written");
    const Status synced = FsyncFd(fd, path.c_str());
    if (!synced.ok()) {
      ::close(fd);
      return synced;
    }
    const Status dir_synced = FsyncDirOf(path);
    if (!dir_synced.ok()) {
      ::close(fd);
      return dir_synced;
    }
    NDV_CRASH_POINT("wal.create.synced");
  }
  wal_fd_ = fd;
  return Status::Ok();
}

Status DurableCatalog::AppendRecord(std::string payload) {
  if (wal_fd_ < 0) {
    return InternalError("WAL is not open (an earlier append or rotation "
                         "failure closed it); a successful Compact() "
                         "rebuilds the log");
  }
  if (payload.size() > kMaxWalRecord) {
    return InvalidArgumentError("WAL record of %zu bytes exceeds the %zu "
                                "byte cap",
                                payload.size(), kMaxWalRecord);
  }
  std::string frame;
  frame.reserve(kRecordHeaderBytes + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU64(&frame, Checksum64(payload));
  frame += payload;

  // Pre-append boundary, so a failed append can be rolled back. A torn
  // record must never stay in front of a later append that returns OK:
  // exact-prefix replay stops at the torn record and would silently
  // discard the acknowledged one behind it.
  struct stat st;
  if (::fstat(wal_fd_, &st) < 0) {
    return InternalError("fstat wal failed: %s", std::strerror(errno));
  }
  const off_t append_start = st.st_size;

  NDV_CRASH_POINT("wal.append.start");
  // Two physical writes on purpose: a crash between them leaves a torn
  // record on disk, which is exactly the case replay's checksum must
  // catch. (A crash inside either write can tear anywhere too; the split
  // just guarantees the chaos schedule exercises a mid-record kill.)
  const size_t half = frame.size() / 2;
  Status status = WriteAllFd(
      wal_fd_, std::string_view(frame).substr(0, half),
      "wal record (first half)");
  if (status.ok()) {
    NDV_CRASH_POINT("wal.append.torn");
    status = WriteAllFd(wal_fd_, std::string_view(frame).substr(half),
                        "wal record (second half)");
  }
  if (status.ok()) {
    NDV_CRASH_POINT("wal.append.written");
    if (options_.fsync == FsyncPolicy::kEveryRecord) {
      status = FsyncFd(wal_fd_, "wal");
      if (status.ok()) NDV_CRASH_POINT("wal.append.synced");
    }
  }
  if (!status.ok()) {
    // Roll the log back to the pre-append boundary (a partial write, or a
    // record whose durability is indeterminate after a failed fsync). If
    // the rollback itself cannot be made durable, poison the fd: every
    // later append fails with a Status until Compact() rebuilds the log
    // from the in-memory state.
    if (::ftruncate(wal_fd_, append_start) != 0 ||
        !FsyncFd(wal_fd_, "wal rollback").ok()) {
      ::close(wal_fd_);
      wal_fd_ = -1;
    }
    return status;
  }
  return Status::Ok();
}

Status DurableCatalog::AppendPut(const ColumnStats& stats) {
  MutexLock lock(mutex_);
  std::string payload;
  PutU8(&payload, static_cast<uint8_t>(RecordKind::kPut));
  PutU64(&payload, epoch_ + 1);
  PutColumnStats(&payload, stats);
  NDV_RETURN_IF_ERROR(AppendRecord(std::move(payload)));
  // The record is durable (per policy): apply and acknowledge.
  state_.Put(stats);
  ++epoch_;
  ++records_since_snapshot_;
  if (options_.snapshot_every_records > 0 &&
      records_since_snapshot_ >= options_.snapshot_every_records) {
    NDV_RETURN_IF_ERROR(CompactLocked());
  }
  return Status::Ok();
}

Status DurableCatalog::AppendPublish(const StatsCatalog& catalog) {
  MutexLock lock(mutex_);
  std::string payload;
  PutU8(&payload, static_cast<uint8_t>(RecordKind::kPublish));
  PutU64(&payload, epoch_ + 1);
  PutU32(&payload, static_cast<uint32_t>(catalog.entries().size()));
  for (const ColumnStats& stats : catalog.entries()) {
    PutColumnStats(&payload, stats);
  }
  NDV_RETURN_IF_ERROR(AppendRecord(std::move(payload)));
  state_ = catalog;
  ++epoch_;
  ++records_since_snapshot_;
  if (options_.snapshot_every_records > 0 &&
      records_since_snapshot_ >= options_.snapshot_every_records) {
    NDV_RETURN_IF_ERROR(CompactLocked());
  }
  return Status::Ok();
}

Status DurableCatalog::Compact() {
  MutexLock lock(mutex_);
  return CompactLocked();
}

Status DurableCatalog::CompactLocked() {
  // Phase 1 — publish the snapshot. Until the final rename lands, readers
  // of the directory still see the old snapshot + full WAL; afterwards
  // they see the new snapshot and (possibly) a WAL whose records are all
  // at or below its epoch — which replay skips.
  const std::string primary = PathTo(kSnapshotFile);
  const std::string previous = PathTo(kSnapshotPrevFile);
  const std::string temp = primary + ".tmp";
  const std::string image = EncodeSnapshot(state_, epoch_);
  {
    const int fd = ::open(temp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
      return InternalError("open %s failed: %s", temp.c_str(),
                           std::strerror(errno));
    }
    Status status = WriteAllFd(fd, image, "snapshot");
    NDV_CRASH_POINT("snapshot.written");
    if (status.ok()) status = FsyncFd(fd, temp.c_str());
    ::close(fd);
    NDV_RETURN_IF_ERROR(status);
    NDV_CRASH_POINT("snapshot.synced");
  }
  if (FileExists(primary)) {
    // Keep the outgoing snapshot as the fallback generation. A crash
    // after this rename leaves no snapshot.ndv; recovery then uses the
    // previous snapshot plus the still-intact WAL.
    NDV_RETURN_IF_ERROR(RenameFile(primary, previous));
    NDV_CRASH_POINT("snapshot.prev_renamed");
  }
  NDV_RETURN_IF_ERROR(RenameFile(temp, primary));
  NDV_CRASH_POINT("snapshot.renamed");
  NDV_RETURN_IF_ERROR(FsyncDirOf(primary));
  NDV_CRASH_POINT("snapshot.dir_synced");

  // Phase 2 — rotate the WAL under the new snapshot. Any crash inside
  // this phase leaves some mix of {wal.log, wal.prev.log, wal.new} whose
  // records are all <= the snapshot epoch, so replay order and epoch
  // filtering reconstruct the same state regardless of where we died.
  if (wal_fd_ >= 0) {
    ::close(wal_fd_);
    wal_fd_ = -1;
  }
  const Status rotated = RotateWalLocked();
  if (!rotated.ok()) {
    // The append fd is already closed, but every on-disk state a failed
    // rotation can leave behind replays consistently (all its records are
    // at or below the snapshot epoch). Reopen so a transient disk error
    // here stays a recoverable Status instead of wedging every later
    // append; if the reopen fails too, Append*/Sync report the closed WAL.
    const Status reopened = OpenWalForAppend();
    (void)reopened;
    return rotated;
  }
  records_since_snapshot_ = 0;
  return OpenWalForAppend();
}

Status DurableCatalog::RotateWalLocked() {
  const std::string wal = PathTo(kWalFile);
  const std::string wal_prev = PathTo(kWalPrevFile);
  const std::string wal_new = wal + ".new";
  {
    const int fd = ::open(wal_new.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
      return InternalError("open %s failed: %s", wal_new.c_str(),
                           std::strerror(errno));
    }
    Status status = WriteAllFd(fd, kWalMagic, "rotated wal header");
    if (status.ok()) status = FsyncFd(fd, wal_new.c_str());
    ::close(fd);
    NDV_RETURN_IF_ERROR(status);
    NDV_CRASH_POINT("wal.rotate.created");
  }
  NDV_RETURN_IF_ERROR(RenameFile(wal, wal_prev));
  NDV_CRASH_POINT("wal.rotate.prev_renamed");
  NDV_RETURN_IF_ERROR(RenameFile(wal_new, wal));
  NDV_CRASH_POINT("wal.rotate.renamed");
  NDV_RETURN_IF_ERROR(FsyncDirOf(wal));
  NDV_CRASH_POINT("wal.rotate.dir_synced");
  return Status::Ok();
}

Status DurableCatalog::Sync() {
  MutexLock lock(mutex_);
  if (wal_fd_ < 0) {
    return InternalError("WAL is not open (an earlier append or rotation "
                         "failure closed it); a successful Compact() "
                         "rebuilds the log");
  }
  return FsyncFd(wal_fd_, "wal");
}

}  // namespace ndv
